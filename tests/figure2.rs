//! The paper's Figure 2, end to end: compile the worked example and check
//! the generated HLI reproduces every structural fact the figure shows.

use hli_core::query::{EquivAcc, HliQuery};
use hli_core::{DepKind, Distance, EquivKind, ItemType, RegionId};
use hli_frontend::generate_hli;
use hli_lang::compile_to_ast;

/// The paper's example `foo` (line numbers chosen to echo the figure).
const SRC: &str = "int a[10];
int b[10];
int sum;




int foo()
{
    int i;
    int j;
    for (i = 0; i < 10; i++) {
        sum += a[i];
    }

    for (i = 0; i < 10; i++) {
        a[i] = b[0];

        for (j = 1; j < 10; j++) {
            b[j] = b[j] + b[j-1];
            sum = sum + a[i];
        }
    }
    return sum;
}

int main() { return foo(); }
";

fn build() -> hli_core::HliEntry {
    let (p, s) = compile_to_ast(SRC).unwrap();
    let hli = generate_hli(&p, &s);
    hli.entry("foo").unwrap().clone()
}

#[test]
fn region_tree_matches_figure() {
    let e = build();
    // Region 1 (unit) with two i-loop children; the second has the j loop.
    assert_eq!(e.regions.len(), 4);
    let unit = e.region(RegionId(0));
    assert_eq!(unit.subregions.len(), 2);
    let first_i = e.region(unit.subregions[0]);
    let second_i = e.region(unit.subregions[1]);
    assert!(first_i.subregions.is_empty());
    assert_eq!(second_i.subregions.len(), 1);
    let j_loop = e.region(second_i.subregions[0]);
    assert!(j_loop.is_loop());
    assert!(e.validate().is_empty(), "{:?}", e.validate());
}

#[test]
fn unit_region_has_three_collapsed_classes() {
    let e = build();
    let unit = e.region(RegionId(0));
    assert_eq!(unit.equiv_classes.len(), 3);
    let names: Vec<&str> = unit.equiv_classes.iter().map(|c| c.name_hint.as_str()).collect();
    assert!(names.contains(&"sum"));
    assert!(names.iter().any(|n| n.starts_with('a')), "{names:?}");
    assert!(names.iter().any(|n| n.starts_with('b')), "{names:?}");
    // sum is one location → definite; the array summaries are maybe.
    for c in &unit.equiv_classes {
        if c.name_hint == "sum" {
            assert_eq!(c.kind, EquivKind::Definite);
        } else {
            assert_eq!(c.kind, EquivKind::Maybe, "{}", c.name_hint);
        }
    }
}

#[test]
fn j_loop_has_distance_one_lcdd() {
    let e = build();
    let unit = e.region(RegionId(0));
    let second_i = e.region(unit.subregions[1]);
    let j_loop = e.region(second_i.subregions[0]);
    // The figure: the only cross-class definite-distance arc is
    // b[j] → b[j-1], dist 1 (sum's accumulator self-arc is also distance 1
    // but the figure only draws the b arc).
    let exact: Vec<_> = j_loop
        .lcdd_table
        .iter()
        .filter(|d| d.distance == Distance::Const(1) && d.src != d.dst)
        .collect();
    assert_eq!(exact.len(), 1, "{:?}", j_loop.lcdd_table);
    assert_eq!(exact[0].kind, DepKind::Definite);
    let src_name = &j_loop.class(exact[0].src).unwrap().name_hint;
    let dst_name = &j_loop.class(exact[0].dst).unwrap().name_hint;
    assert!(src_name.starts_with("b["), "{src_name}");
    assert!(dst_name.starts_with("b["), "{dst_name}");
    assert_ne!(src_name, dst_name);
}

#[test]
fn second_i_loop_aliases_b0_with_section() {
    let e = build();
    let unit = e.region(RegionId(0));
    let second_i = e.region(unit.subregions[1]);
    let b0 = second_i
        .equiv_classes
        .iter()
        .find(|c| c.name_hint.starts_with("b[0]"))
        .expect("b[0] class");
    let section = second_i
        .equiv_classes
        .iter()
        .find(|c| c.id != b0.id && c.name_hint.starts_with("b["))
        .expect("b section class");
    assert_eq!(section.kind, EquivKind::Maybe);
    assert!(second_i
        .alias_table
        .iter()
        .any(|a| a.classes.contains(&b0.id) && a.classes.contains(&section.id)));
}

#[test]
fn figure_queries_answer_as_the_paper_describes() {
    let e = build();
    let q = HliQuery::new(&e);
    // Items on line 20: loads b[j], b[j-1]; store b[j].
    let l20 = e.line_table.entry(20).unwrap();
    let (bj_ld, bj1_ld, bj_st) = (l20.items[0].id, l20.items[1].id, l20.items[2].id);
    assert_eq!(q.get_equiv_acc(bj_ld, bj_st), EquivAcc::Definite);
    assert_eq!(
        q.get_equiv_acc(bj1_ld, bj_st),
        EquivAcc::None,
        "distinct within iteration"
    );
    let arc = q.get_lcdd(bj_st, bj1_ld).expect("carried arc");
    assert_eq!(arc.distance, Distance::Const(1));
    // Item 11-equivalent: a[i] inside the j loop vs the a[i] store on
    // line 17: same i → definitely the same element.
    let l21 = e.line_table.entry(21).unwrap();
    let ai_ld = l21.items[1].id;
    let l17 = e.line_table.entry(17).unwrap();
    let ai_st = l17.items.iter().find(|it| it.ty == ItemType::Store).unwrap().id;
    assert_eq!(q.get_equiv_acc(ai_ld, ai_st), EquivAcc::Definite);
    // sum in loop 1 vs sum in the j loop: same variable across regions.
    let l13 = e.line_table.entry(13).unwrap();
    let sum_st = l13.items.iter().find(|it| it.ty == ItemType::Store).unwrap().id;
    let sum_ld_inner = l21.items[0].id;
    assert_eq!(q.get_equiv_acc(sum_st, sum_ld_inner), EquivAcc::Definite);
}

#[test]
fn line_table_matches_figure_items() {
    let e = build();
    // Line 13 (sum += a[i]): load sum, load a[i], store sum.
    let tys = |line: u32| -> Vec<ItemType> {
        e.line_table.entry(line).unwrap().items.iter().map(|i| i.ty).collect()
    };
    assert_eq!(tys(13), vec![ItemType::Load, ItemType::Load, ItemType::Store]);
    // Line 17 (a[i] = b[0]): load b[0], store a[i].
    assert_eq!(tys(17), vec![ItemType::Load, ItemType::Store]);
    // Line 20 (b[j] = b[j] + b[j-1]): two loads, one store.
    assert_eq!(tys(20), vec![ItemType::Load, ItemType::Load, ItemType::Store]);
    // Line 21 (sum = sum + a[i]): two loads, one store.
    assert_eq!(tys(21), vec![ItemType::Load, ItemType::Load, ItemType::Store]);
}
