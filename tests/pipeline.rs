//! Cross-crate integration: the full pipeline (source → sema → HLI → RTL →
//! mapping → scheduling → machines) over the whole benchmark suite, with
//! the AST interpreter as semantic oracle.

use hli_backend::ddg::DepMode;
use hli_backend::lower::lower_program;
use hli_backend::mapping::map_function;
use hli_backend::sched::schedule_program;
use hli_frontend::generate_hli;
use hli_lang::compile_to_ast;
use hli_suite::Scale;

#[test]
fn every_benchmark_validates_and_agrees_across_all_schedules() {
    for b in hli_suite::all(Scale::tiny()) {
        let (prog, sema) = compile_to_ast(&b.source).unwrap_or_else(|e| panic!("{}: {e}", b.name));
        let oracle = hli_lang::interp::run_program(&prog, &sema)
            .unwrap_or_else(|e| panic!("{}: {e}", b.name));
        let hli = generate_hli(&prog, &sema);
        for e in &hli.entries {
            let errs = e.validate();
            assert!(errs.is_empty(), "{} `{}`: {errs:?}", b.name, e.unit_name);
        }
        let rtl = lower_program(&prog, &sema);
        for mode in [DepMode::GccOnly, DepMode::HliOnly, DepMode::Combined] {
            let (build, _) =
                schedule_program(&rtl, &hli, mode, hli_machine::backend_by_name("r4600").unwrap());
            let res =
                hli_machine::execute(&build).unwrap_or_else(|e| panic!("{} {mode:?}: {e}", b.name));
            assert_eq!(res.ret, oracle.ret, "{} {mode:?}: wrong result", b.name);
            assert_eq!(
                res.global_checksum, oracle.global_checksum,
                "{} {mode:?}: wrong memory state",
                b.name
            );
        }
    }
}

#[test]
fn every_benchmark_maps_all_items() {
    for b in hli_suite::all(Scale::tiny()) {
        let (prog, sema) = compile_to_ast(&b.source).unwrap();
        let hli = generate_hli(&prog, &sema);
        let rtl = lower_program(&prog, &sema);
        for f in &rtl.funcs {
            let entry = hli.entry(&f.name).unwrap();
            let map = map_function(f, entry);
            assert!(
                map.unmapped_insns.is_empty() && map.unmapped_items.is_empty(),
                "{} `{}`: {} unmapped insns, {} unmapped items",
                b.name,
                f.name,
                map.unmapped_insns.len(),
                map.unmapped_items.len()
            );
            assert_eq!(map.insn_to_item.len(), entry.line_table.item_count());
        }
    }
}

#[test]
fn combined_yes_never_exceeds_either_side() {
    for b in hli_suite::all(Scale::tiny()) {
        let (prog, sema) = compile_to_ast(&b.source).unwrap();
        let hli = generate_hli(&prog, &sema);
        let rtl = lower_program(&prog, &sema);
        let (_, stats) = schedule_program(
            &rtl,
            &hli,
            DepMode::Combined,
            hli_machine::backend_by_name("r4600").unwrap(),
        );
        assert!(stats.combined_yes <= stats.gcc_yes, "{}", b.name);
        assert!(stats.combined_yes <= stats.hli_yes, "{}", b.name);
        assert!(stats.gcc_yes <= stats.total_tests, "{}", b.name);
        assert!(stats.hli_yes <= stats.total_tests, "{}", b.name);
    }
}

#[test]
fn serialization_roundtrips_whole_suite() {
    use hli_core::serialize::{decode_file, encode_file, SerializeOpts};
    for b in hli_suite::all(Scale::tiny()) {
        let (prog, sema) = compile_to_ast(&b.source).unwrap();
        let hli = generate_hli(&prog, &sema);
        for opts in [
            SerializeOpts::default(),
            SerializeOpts { include_names: true },
        ] {
            let bytes = encode_file(&hli, opts);
            let back = decode_file(&bytes, opts).unwrap_or_else(|e| panic!("{}: {e}", b.name));
            assert_eq!(back.entries.len(), hli.entries.len(), "{}", b.name);
            for (a, z) in hli.entries.iter().zip(&back.entries) {
                assert_eq!(a.unit_name, z.unit_name);
                assert_eq!(a.line_table, z.line_table, "{}", b.name);
                assert_eq!(a.regions.len(), z.regions.len());
            }
        }
    }
}

#[test]
fn query_answers_are_symmetric_over_suite() {
    use hli_core::query::HliQuery;
    for b in hli_suite::all(Scale::tiny()).into_iter().take(6) {
        let (prog, sema) = compile_to_ast(&b.source).unwrap();
        let hli = generate_hli(&prog, &sema);
        for e in &hli.entries {
            let q = HliQuery::new(e);
            let items: Vec<_> = e
                .line_table
                .items()
                .filter(|(_, it)| it.ty != hli_core::ItemType::Call)
                .map(|(_, it)| it.id)
                .collect();
            for (i, &a) in items.iter().enumerate() {
                for &z in items.iter().skip(i) {
                    assert_eq!(
                        q.get_equiv_acc(a, z),
                        q.get_equiv_acc(z, a),
                        "{} `{}`: asymmetric answer for {a} vs {z}",
                        b.name,
                        e.unit_name
                    );
                }
            }
        }
    }
}

#[test]
fn interpreter_and_machine_count_same_memory_traffic() {
    // Loads/stores attributable to the program (not ABI) should broadly
    // agree between the two executors on pointer-free programs.
    let src = "int a[32]; int g;\nint main() { int i; for (i = 0; i < 32; i++) { a[i] = g + i; g = a[i] - 1; } return g; }";
    let (prog, sema) = compile_to_ast(src).unwrap();
    let interp = hli_lang::interp::run_program(&prog, &sema).unwrap();
    let rtl = lower_program(&prog, &sema);
    let mach = hli_machine::execute(&rtl).unwrap();
    assert_eq!(interp.stats.loads, mach.loads);
    assert_eq!(interp.stats.stores, mach.stores);
}
