int g;
int h;
int unrelated;
int a[16];
int b[16];

void side() { unrelated = unrelated + 1; }

int pure_g() { return g; }

int kernel(int n) {
    int i;
    int s;
    s = 0;
    for (i = 0; i < n; i++) {
        a[i] = b[i] + g;
        s = s + a[i];
    }
    return s;
}

int main() {
    int x;
    int y;
    g = 3;
    x = g;
    side();
    y = g;
    h = 1;
    h = pure_g() + h;
    return x + y + h + kernel(16);
}
