//! Property-based tests over randomly generated MiniC programs.
//!
//! A structural generator produces arbitrary (but well-typed, terminating,
//! in-bounds) programs; every pipeline invariant must hold on all of them:
//!
//! * the pretty-printer's output reparses to a behaviorally identical
//!   program;
//! * the AST interpreter and the RTL machine agree (return value and
//!   global-memory checksum);
//! * ITEMGEN's event stream equals the lowerer's memory-reference stream
//!   (the Section 3.1.1 contract);
//! * generated HLI validates structurally and survives a serialization
//!   round trip;
//! * the (line, order) mapping binds every item;
//! * scheduling under any dependence mode preserves semantics.

use hli_backend::ddg::DepMode;
use hli_backend::lower::lower_program;
use hli_backend::mapping::map_function;
use hli_backend::sched::{schedule_program, LatencyModel};
use hli_frontend::generate_hli;
use hli_lang::compile_to_ast;
use hli_lang::interp::run_program_limited;
use hli_lang::memwalk::{walk_function, AccessKind};
use proptest::prelude::*;

/// Generate an integer expression of bounded depth. Every variable it can
/// mention is defined and initialized in the template below; array indices
/// are masked in-bounds; divisors are non-zero literals.
fn expr(depth: u32) -> BoxedStrategy<String> {
    let leaf = prop_oneof![
        (-20i64..20).prop_map(|v| v.to_string()),
        Just("x".to_string()),
        Just("g0".to_string()),
        Just("g1".to_string()),
        Just("arr[x & 15]".to_string()),
        Just("arr[g0 & 15]".to_string()),
        Just("*gp".to_string()),
    ];
    leaf.prop_recursive(depth, 24, 3, |inner| {
        prop_oneof![
            (inner.clone(), inner.clone(), prop_oneof![
                Just("+"), Just("-"), Just("*"), Just("&"), Just("|"), Just("^"),
                Just("<"), Just("<="), Just("=="), Just("!=")
            ])
                .prop_map(|(a, b, op)| format!("({a} {op} {b})")),
            (inner.clone(), 2i64..9).prop_map(|(a, d)| format!("({a} / {d})")),
            (inner.clone(), 2i64..9).prop_map(|(a, m)| format!("({a} % {m})")),
            inner.clone().prop_map(|a| format!("(0 - {a})")),
            inner.clone().prop_map(|a| format!("(!{a})")),
            inner.clone().prop_map(|a| format!("f1({a})")),
        ]
    })
    .boxed()
}

/// Generate a statement (possibly compound) of bounded nesting.
fn stmt(depth: u32) -> BoxedStrategy<String> {
    let simple = prop_oneof![
        expr(2).prop_map(|e| format!("x = {e};")),
        expr(2).prop_map(|e| format!("g0 = {e};")),
        expr(2).prop_map(|e| format!("g1 += {e};")),
        expr(2).prop_map(|e| format!("arr[x & 15] = {e};")),
        expr(2).prop_map(|e| format!("arr[g1 & 15] = {e};")),
        expr(1).prop_map(|e| format!("*gp = {e};")),
        expr(1).prop_map(|e| format!("y = y * 0.5 + {e};")),
        Just("f2();".to_string()),
        Just("g0++;".to_string()),
        Just("x--;".to_string()),
    ];
    if depth == 0 {
        return simple.boxed();
    }
    let nested = prop_oneof![
        6 => simple.clone(),
        2 => (1u32..6, prop::collection::vec(stmt(depth - 1), 1..4)).prop_map(move |(n, body)| {
            // Each nesting depth owns its induction variable, or nested
            // loops would reset their parent's counter and never finish.
            let v = if depth >= 2 { "i" } else { "i2" };
            format!("for ({v} = 0; {v} < {n}; {v}++) {{ {} }}", body.join(" "))
        }),
        2 => (expr(1), prop::collection::vec(stmt(depth - 1), 1..3), prop::collection::vec(stmt(depth - 1), 0..2))
            .prop_map(|(c, t, e)| {
                if e.is_empty() {
                    format!("if ({c}) {{ {} }}", t.join(" "))
                } else {
                    format!("if ({c}) {{ {} }} else {{ {} }}", t.join(" "), e.join(" "))
                }
            }),
    ];
    nested.boxed()
}

/// A whole program around the generated body.
fn program() -> impl Strategy<Value = String> {
    prop::collection::vec(stmt(2), 1..8).prop_map(|body| {
        format!(
            "int g0; int g1 = 3; int arr[16]; int target; int *gp;\n\
             double acc;\n\
             int f1(int a) {{ return a * 3 + g0; }}\n\
             void f2() {{ g1 = g1 + 1; }}\n\
             int main() {{\n\
               int i; int i2; int x; double y;\n\
               x = 1; y = 0.5; gp = &target;\n\
               {}\n\
               acc = y;\n\
               return (x ^ g0 ^ g1 ^ arr[3] ^ arr[12] ^ target) & 65535;\n\
             }}",
            body.join("\n  ")
        )
    })
}

const STEP_BUDGET: u64 = 3_000_000;

proptest! {
    #![proptest_config(ProptestConfig { cases: 48, .. ProptestConfig::default() })]

    #[test]
    fn generated_programs_compile_and_run(src in program()) {
        let (prog, sema) = compile_to_ast(&src)
            .unwrap_or_else(|e| panic!("generator produced invalid program: {e}\n{src}"));
        // Division by zero cannot happen (non-zero literal divisors);
        // interpretation must succeed.
        run_program_limited(&prog, &sema, STEP_BUDGET)
            .unwrap_or_else(|e| panic!("interp failed: {e}\n{src}"));
    }

    #[test]
    fn pretty_print_roundtrip_preserves_behaviour(src in program()) {
        let (p1, s1) = compile_to_ast(&src).unwrap();
        let r1 = run_program_limited(&p1, &s1, STEP_BUDGET).unwrap();
        let printed = hli_lang::pretty::program_to_string(&p1);
        let (p2, s2) = compile_to_ast(&printed)
            .unwrap_or_else(|e| panic!("pretty output fails to parse: {e}\n{printed}"));
        let r2 = run_program_limited(&p2, &s2, STEP_BUDGET).unwrap();
        prop_assert_eq!(r1.ret, r2.ret);
        prop_assert_eq!(r1.global_checksum, r2.global_checksum);
    }

    #[test]
    fn interpreter_and_machine_agree(src in program()) {
        let (prog, sema) = compile_to_ast(&src).unwrap();
        let oracle = run_program_limited(&prog, &sema, STEP_BUDGET).unwrap();
        let rtl = lower_program(&prog, &sema);
        let mach = hli_machine::execute(&rtl)
            .unwrap_or_else(|e| panic!("machine failed: {e}\n{src}"));
        prop_assert_eq!(oracle.ret, mach.ret, "return value diverged\n{}", src);
        prop_assert_eq!(oracle.global_checksum, mach.global_checksum, "memory diverged\n{}", src);
    }

    #[test]
    fn itemgen_matches_lowering_order(src in program()) {
        let (prog, sema) = compile_to_ast(&src).unwrap();
        let rtl = lower_program(&prog, &sema);
        for f in &prog.funcs {
            let events: Vec<(u32, AccessKind)> = walk_function(f, &sema)
                .into_iter()
                .map(|ev| (ev.line, ev.kind))
                .collect();
            let rf = rtl.func(&f.name).unwrap();
            let refs: Vec<(u32, AccessKind)> = rf
                .insns
                .iter()
                .filter_map(|i| match &i.op {
                    hli_backend::rtl::Op::Load(..) => Some((i.line, AccessKind::Load)),
                    hli_backend::rtl::Op::Store(..) => Some((i.line, AccessKind::Store)),
                    hli_backend::rtl::Op::Call { .. } => Some((i.line, AccessKind::Call)),
                    _ => None,
                })
                .collect();
            prop_assert_eq!(&events, &refs, "contract broken for `{}`\n{}", f.name, src);
        }
    }

    #[test]
    fn hli_validates_and_roundtrips(src in program()) {
        let (prog, sema) = compile_to_ast(&src).unwrap();
        let hli = generate_hli(&prog, &sema);
        for e in &hli.entries {
            let errs = e.validate();
            prop_assert!(errs.is_empty(), "invalid HLI for `{}`: {errs:?}\n{src}", e.unit_name);
        }
        let bytes = hli_core::serialize::encode_file(&hli, Default::default());
        let back = hli_core::serialize::decode_file(&bytes, Default::default()).unwrap();
        prop_assert_eq!(back.entries.len(), hli.entries.len());
        for (a, b) in hli.entries.iter().zip(&back.entries) {
            prop_assert_eq!(&a.line_table, &b.line_table);
        }
    }

    #[test]
    fn mapping_is_total(src in program()) {
        let (prog, sema) = compile_to_ast(&src).unwrap();
        let hli = generate_hli(&prog, &sema);
        let rtl = lower_program(&prog, &sema);
        for f in &rtl.funcs {
            let entry = hli.entry(&f.name).unwrap();
            let map = map_function(f, entry);
            prop_assert!(map.unmapped_insns.is_empty(), "unmapped insns in `{}`\n{}", f.name, src);
            prop_assert!(map.unmapped_items.is_empty(), "unmapped items in `{}`\n{}", f.name, src);
        }
    }

    #[test]
    fn scheduling_preserves_semantics(src in program()) {
        let (prog, sema) = compile_to_ast(&src).unwrap();
        let oracle = run_program_limited(&prog, &sema, STEP_BUDGET).unwrap();
        let hli = generate_hli(&prog, &sema);
        let rtl = lower_program(&prog, &sema);
        for mode in [DepMode::GccOnly, DepMode::HliOnly, DepMode::Combined] {
            let (build, stats) = schedule_program(&rtl, &hli, mode, &LatencyModel::default());
            let res = hli_machine::execute(&build)
                .unwrap_or_else(|e| panic!("{mode:?} failed: {e}\n{src}"));
            prop_assert_eq!(oracle.ret, res.ret, "{:?} changed the result\n{}", mode, src);
            prop_assert_eq!(oracle.global_checksum, res.global_checksum,
                "{:?} changed memory\n{}", mode, src);
            prop_assert!(stats.combined_yes <= stats.gcc_yes);
            prop_assert!(stats.combined_yes <= stats.hli_yes);
        }
    }
}
