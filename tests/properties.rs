//! Property-based tests over randomly generated MiniC programs.
//!
//! A structural generator produces arbitrary (but well-typed, terminating,
//! in-bounds) programs; every pipeline invariant must hold on all of them:
//!
//! * the pretty-printer's output reparses to a behaviorally identical
//!   program;
//! * the AST interpreter and the RTL machine agree (return value and
//!   global-memory checksum);
//! * ITEMGEN's event stream equals the lowerer's memory-reference stream
//!   (the Section 3.1.1 contract);
//! * generated HLI validates structurally and survives a serialization
//!   round trip;
//! * the (line, order) mapping binds every item;
//! * scheduling under any dependence mode preserves semantics.
//!
//! The generator is driven by a local xorshift64 PRNG with fixed seeds, so
//! runs are deterministic and the test needs no external dependencies; a
//! failing case prints the full program source for replay.

use hli_backend::ddg::DepMode;
use hli_backend::lower::lower_program;
use hli_backend::mapping::map_function;
use hli_backend::sched::schedule_program;
use hli_frontend::generate_hli;
use hli_lang::compile_to_ast;
use hli_lang::interp::run_program_limited;
use hli_lang::memwalk::{walk_function, AccessKind};

/// xorshift64 — deterministic, dependency-free.
struct Rng(u64);

impl Rng {
    fn new(seed: u64) -> Self {
        Rng(if seed == 0 {
            0x9E37_79B9_7F4A_7C15
        } else {
            seed
        })
    }

    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.0 = x;
        x
    }

    fn below(&mut self, n: u64) -> u64 {
        self.next() % n
    }

    /// Uniform in `lo..hi`.
    fn range(&mut self, lo: i64, hi: i64) -> i64 {
        lo + self.below((hi - lo) as u64) as i64
    }
}

/// An integer expression of bounded depth. Every variable it can mention
/// is defined and initialized in the template below; array indices are
/// masked in-bounds; divisors are non-zero literals.
fn expr(r: &mut Rng, depth: u32) -> String {
    if depth == 0 || r.below(3) == 0 {
        return match r.below(7) {
            0 => r.range(-20, 20).to_string(),
            1 => "x".into(),
            2 => "g0".into(),
            3 => "g1".into(),
            4 => "arr[x & 15]".into(),
            5 => "arr[g0 & 15]".into(),
            _ => "*gp".into(),
        };
    }
    match r.below(6) {
        0 => {
            let op = ["+", "-", "*", "&", "|", "^", "<", "<=", "==", "!="][r.below(10) as usize];
            let a = expr(r, depth - 1);
            let b = expr(r, depth - 1);
            format!("({a} {op} {b})")
        }
        1 => format!("({} / {})", expr(r, depth - 1), r.range(2, 9)),
        2 => format!("({} % {})", expr(r, depth - 1), r.range(2, 9)),
        3 => format!("(0 - {})", expr(r, depth - 1)),
        4 => format!("(!{})", expr(r, depth - 1)),
        _ => format!("f1({})", expr(r, depth - 1)),
    }
}

/// A statement (possibly compound) of bounded nesting.
fn stmt(r: &mut Rng, depth: u32) -> String {
    let simple = |r: &mut Rng| match r.below(10) {
        0 => format!("x = {};", expr(r, 2)),
        1 => format!("g0 = {};", expr(r, 2)),
        2 => format!("g1 += {};", expr(r, 2)),
        3 => format!("arr[x & 15] = {};", expr(r, 2)),
        4 => format!("arr[g1 & 15] = {};", expr(r, 2)),
        5 => format!("*gp = {};", expr(r, 1)),
        6 => format!("y = y * 0.5 + {};", expr(r, 1)),
        7 => "f2();".into(),
        8 => "g0++;".into(),
        _ => "x--;".into(),
    };
    if depth == 0 || r.below(10) < 6 {
        return simple(r);
    }
    if r.below(2) == 0 {
        // Each nesting depth owns its induction variable, or nested loops
        // would reset their parent's counter and never finish.
        let v = if depth >= 2 { "i" } else { "i2" };
        let n = r.range(1, 6);
        let body: Vec<String> = (0..r.range(1, 4)).map(|_| stmt(r, depth - 1)).collect();
        format!("for ({v} = 0; {v} < {n}; {v}++) {{ {} }}", body.join(" "))
    } else {
        let c = expr(r, 1);
        let t: Vec<String> = (0..r.range(1, 3)).map(|_| stmt(r, depth - 1)).collect();
        let e: Vec<String> = (0..r.range(0, 2)).map(|_| stmt(r, depth - 1)).collect();
        if e.is_empty() {
            format!("if ({c}) {{ {} }}", t.join(" "))
        } else {
            format!("if ({c}) {{ {} }} else {{ {} }}", t.join(" "), e.join(" "))
        }
    }
}

/// A whole program around a generated body.
fn program(r: &mut Rng) -> String {
    let body: Vec<String> = (0..r.range(1, 8)).map(|_| stmt(r, 2)).collect();
    format!(
        "int g0; int g1 = 3; int arr[16]; int target; int *gp;\n\
         double acc;\n\
         int f1(int a) {{ return a * 3 + g0; }}\n\
         void f2() {{ g1 = g1 + 1; }}\n\
         int main() {{\n\
           int i; int i2; int x; double y;\n\
           x = 1; y = 0.5; gp = &target;\n\
           {}\n\
           acc = y;\n\
           return (x ^ g0 ^ g1 ^ arr[3] ^ arr[12] ^ target) & 65535;\n\
         }}",
        body.join("\n  ")
    )
}

const STEP_BUDGET: u64 = 3_000_000;
const CASES: u64 = 48;

/// Run `check` over `CASES` deterministic programs (seed varies per case
/// and per property so the properties don't all see the same programs).
fn for_cases(property_salt: u64, check: impl Fn(&str)) {
    for case in 0..CASES {
        let mut rng = Rng::new(
            0xA076_1D64_78BD_642F
                ^ property_salt.wrapping_mul(0x9E37_79B9_7F4A_7C15)
                ^ case.wrapping_mul(0xE703_7ED1_A0B4_28DB),
        );
        let src = program(&mut rng);
        check(&src);
    }
}

#[test]
fn generated_programs_compile_and_run() {
    for_cases(1, |src| {
        let (prog, sema) = compile_to_ast(src)
            .unwrap_or_else(|e| panic!("generator produced invalid program: {e}\n{src}"));
        // Division by zero cannot happen (non-zero literal divisors);
        // interpretation must succeed.
        run_program_limited(&prog, &sema, STEP_BUDGET)
            .unwrap_or_else(|e| panic!("interp failed: {e}\n{src}"));
    });
}

#[test]
fn pretty_print_roundtrip_preserves_behaviour() {
    for_cases(2, |src| {
        let (p1, s1) = compile_to_ast(src).unwrap();
        let r1 = run_program_limited(&p1, &s1, STEP_BUDGET).unwrap();
        let printed = hli_lang::pretty::program_to_string(&p1);
        let (p2, s2) = compile_to_ast(&printed)
            .unwrap_or_else(|e| panic!("pretty output fails to parse: {e}\n{printed}"));
        let r2 = run_program_limited(&p2, &s2, STEP_BUDGET).unwrap();
        assert_eq!(r1.ret, r2.ret, "{src}");
        assert_eq!(r1.global_checksum, r2.global_checksum, "{src}");
    });
}

#[test]
fn interpreter_and_machine_agree() {
    for_cases(3, |src| {
        let (prog, sema) = compile_to_ast(src).unwrap();
        let oracle = run_program_limited(&prog, &sema, STEP_BUDGET).unwrap();
        let rtl = lower_program(&prog, &sema);
        let mach =
            hli_machine::execute(&rtl).unwrap_or_else(|e| panic!("machine failed: {e}\n{src}"));
        assert_eq!(oracle.ret, mach.ret, "return value diverged\n{src}");
        assert_eq!(oracle.global_checksum, mach.global_checksum, "memory diverged\n{src}");
    });
}

#[test]
fn itemgen_matches_lowering_order() {
    for_cases(4, |src| {
        let (prog, sema) = compile_to_ast(src).unwrap();
        let rtl = lower_program(&prog, &sema);
        for f in &prog.funcs {
            let events: Vec<(u32, AccessKind)> =
                walk_function(f, &sema).into_iter().map(|ev| (ev.line, ev.kind)).collect();
            let rf = rtl.func(&f.name).unwrap();
            let refs: Vec<(u32, AccessKind)> = rf
                .insns
                .iter()
                .filter_map(|i| match &i.op {
                    hli_backend::rtl::Op::Load(..) => Some((i.line, AccessKind::Load)),
                    hli_backend::rtl::Op::Store(..) => Some((i.line, AccessKind::Store)),
                    hli_backend::rtl::Op::Call { .. } => Some((i.line, AccessKind::Call)),
                    _ => None,
                })
                .collect();
            assert_eq!(events, refs, "contract broken for `{}`\n{src}", f.name);
        }
    });
}

#[test]
fn hli_validates_and_roundtrips() {
    for_cases(5, |src| {
        let (prog, sema) = compile_to_ast(src).unwrap();
        let hli = generate_hli(&prog, &sema);
        for e in &hli.entries {
            let errs = e.validate();
            assert!(errs.is_empty(), "invalid HLI for `{}`: {errs:?}\n{src}", e.unit_name);
        }
        let bytes = hli_core::serialize::encode_file(&hli, Default::default());
        let back = hli_core::serialize::decode_file(&bytes, Default::default()).unwrap();
        assert_eq!(back.entries.len(), hli.entries.len());
        for (a, b) in hli.entries.iter().zip(&back.entries) {
            assert_eq!(a.line_table, b.line_table);
        }
    });
}

#[test]
fn mapping_is_total() {
    for_cases(6, |src| {
        let (prog, sema) = compile_to_ast(src).unwrap();
        let hli = generate_hli(&prog, &sema);
        let rtl = lower_program(&prog, &sema);
        for f in &rtl.funcs {
            let entry = hli.entry(&f.name).unwrap();
            let map = map_function(f, entry);
            assert!(map.unmapped_insns.is_empty(), "unmapped insns in `{}`\n{src}", f.name);
            assert!(map.unmapped_items.is_empty(), "unmapped items in `{}`\n{src}", f.name);
        }
    });
}

#[test]
fn scheduling_preserves_semantics() {
    for_cases(7, |src| {
        let (prog, sema) = compile_to_ast(src).unwrap();
        let oracle = run_program_limited(&prog, &sema, STEP_BUDGET).unwrap();
        let hli = generate_hli(&prog, &sema);
        let rtl = lower_program(&prog, &sema);
        for mode in [DepMode::GccOnly, DepMode::HliOnly, DepMode::Combined] {
            let (build, stats) =
                schedule_program(&rtl, &hli, mode, hli_machine::backend_by_name("r4600").unwrap());
            let res = hli_machine::execute(&build)
                .unwrap_or_else(|e| panic!("{mode:?} failed: {e}\n{src}"));
            assert_eq!(oracle.ret, res.ret, "{mode:?} changed the result\n{src}");
            assert_eq!(
                oracle.global_checksum, res.global_checksum,
                "{mode:?} changed memory\n{src}"
            );
            assert!(stats.combined_yes <= stats.gcc_yes);
            assert!(stats.combined_yes <= stats.hli_yes);
        }
    });
}
