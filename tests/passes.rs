//! Optimization-pass integration: every pass combination must preserve the
//! oracle semantics and keep the HLI entry valid and mapped.

use hli_backend::cse::cse_function;
use hli_backend::ddg::DepMode;
use hli_backend::licm::licm_function;
use hli_backend::lower::lower_with_loops;
use hli_backend::mapping::map_function;
use hli_backend::sched::schedule_function;
use hli_backend::unroll::unroll_function;
use hli_core::QueryCache;
use hli_frontend::generate_hli;
use hli_lang::compile_to_ast;

const PROGRAMS: &[(&str, &str)] = &[
    (
        "accumulate",
        "int a[24]; int g = 2;\nint main() { int i; int s; s = 0; for (i = 0; i < 24; i++) { a[i] = g * i; s += a[i]; } return s; }",
    ),
    (
        "stencil",
        "double v[40];\nint main() { int i; v[0] = 1.0; for (i = 1; i < 40; i++) v[i] = v[i-1] * 0.5 + i; return v[39] * 100.0; }",
    ),
    (
        "pointer_kernels",
        "double x[20]; double y[20];\nvoid k(double *p, double *q, int n) { int i; for (i = 0; i < n; i++) { p[i] = p[i] + q[i] * 2.0; } }\nint main() { int i; for (i = 0; i < 20; i++) { x[i] = i; y[i] = 20 - i; } k(x, y, 20); return x[7] + y[3]; }",
    ),
    (
        "calls_and_globals",
        "int g; int h;\nint bump() { g = g + 1; return g; }\nint pure_h() { return h; }\nint main() { int i; int s; s = 0; h = 5; for (i = 0; i < 10; i++) { s = s + bump() + pure_h(); } return s; }",
    ),
    (
        "branches",
        "int a[16];\nint main() { int i; int s; s = 0; for (i = 0; i < 16; i++) { if (i % 3 == 0) a[i] = i; else a[i] = -i; } for (i = 0; i < 16; i++) s += a[i]; return s; }",
    ),
];

/// Apply all passes in sequence with HLI maintenance and re-execute.
fn full_pass_stack(name: &str, src: &str, mode: DepMode, unroll_factor: Option<u32>) {
    let (prog, sema) = compile_to_ast(src).unwrap_or_else(|e| panic!("{name}: {e}"));
    let oracle = hli_lang::interp::run_program(&prog, &sema).unwrap();
    let (rtl, loops) = lower_with_loops(&prog, &sema);
    let hli = generate_hli(&prog, &sema);
    let mut out = rtl.clone();
    for f in &rtl.funcs {
        let mut entry = hli.entry(&f.name).unwrap().clone();
        let mut map = map_function(f, &entry);
        let mut cur = f.clone();
        if let Some(u) = unroll_factor {
            let r = unroll_function(
                &cur,
                &loops[&f.name],
                u,
                Some((&mut entry, &mut map)),
                hli_machine::backend_by_name("r4600").unwrap(),
            );
            cur = r.func;
        }
        let r = cse_function(
            &cur,
            Some((&mut entry, &mut map)),
            mode,
            hli_machine::backend_by_name("r4600").unwrap(),
        );
        cur = r.func;
        let r = licm_function(
            &cur,
            Some((&mut entry, &mut map)),
            mode,
            hli_machine::backend_by_name("r4600").unwrap(),
        );
        cur = r.func;
        // HLI must stay structurally valid after all maintenance.
        let errs = entry.validate();
        assert!(errs.is_empty(), "{name} `{}` after passes: {errs:?}", f.name);
        // And the (possibly rewritten) code must still schedule legally.
        let cache = QueryCache::new();
        let q = cache.attach(&entry);
        let side = hli_backend::ddg::HliSide { query: &q, map: &map };
        let r = schedule_function(
            &cur,
            Some(&side),
            mode,
            hli_machine::backend_by_name("r4600").unwrap(),
        );
        *out.func_mut(&f.name).unwrap() = r.func;
    }
    let res = hli_machine::execute(&out)
        .unwrap_or_else(|e| panic!("{name} [{mode:?}, unroll {unroll_factor:?}]: {e}"));
    assert_eq!(res.ret, oracle.ret, "{name} [{mode:?}, unroll {unroll_factor:?}]");
    assert_eq!(
        res.global_checksum, oracle.global_checksum,
        "{name} [{mode:?}, unroll {unroll_factor:?}]: memory state"
    );
}

#[test]
fn pass_stack_preserves_semantics_gcc_mode() {
    for (name, src) in PROGRAMS {
        full_pass_stack(name, src, DepMode::GccOnly, None);
    }
}

#[test]
fn pass_stack_preserves_semantics_combined_mode() {
    for (name, src) in PROGRAMS {
        full_pass_stack(name, src, DepMode::Combined, None);
    }
}

#[test]
fn pass_stack_with_unrolling() {
    for factor in [2u32, 3, 4] {
        for (name, src) in PROGRAMS {
            full_pass_stack(name, src, DepMode::Combined, Some(factor));
        }
    }
}

#[test]
fn cse_improvement_is_monotone_in_information() {
    // More information can only keep equal-or-more loads.
    for (name, src) in PROGRAMS {
        let (prog, sema) = compile_to_ast(src).unwrap();
        let rtl = hli_backend::lower::lower_program(&prog, &sema);
        let hli = generate_hli(&prog, &sema);
        for f in &rtl.funcs {
            let plain = cse_function(
                f,
                None,
                DepMode::GccOnly,
                hli_machine::backend_by_name("r4600").unwrap(),
            );
            let mut entry = hli.entry(&f.name).unwrap().clone();
            let mut map = map_function(f, &entry);
            let smart = cse_function(
                f,
                Some((&mut entry, &mut map)),
                DepMode::Combined,
                hli_machine::backend_by_name("r4600").unwrap(),
            );
            assert!(
                smart.loads_eliminated >= plain.loads_eliminated,
                "{name} `{}`: {} < {}",
                f.name,
                smart.loads_eliminated,
                plain.loads_eliminated
            );
        }
    }
}

#[test]
fn licm_never_hoists_conflicting_loads() {
    // A loop whose load aliases its store must not hoist in either mode.
    let src =
        "int a[8];\nint main() { int i; for (i = 1; i < 8; i++) a[i] = a[i-1] + 1; return a[7]; }";
    let (prog, sema) = compile_to_ast(src).unwrap();
    let rtl = hli_backend::lower::lower_program(&prog, &sema);
    let hli = generate_hli(&prog, &sema);
    let f = rtl.func("main").unwrap();
    for mode in [DepMode::GccOnly, DepMode::Combined] {
        let mut entry = hli.entry("main").unwrap().clone();
        let mut map = map_function(f, &entry);
        let r = licm_function(
            f,
            Some((&mut entry, &mut map)),
            mode,
            hli_machine::backend_by_name("r4600").unwrap(),
        );
        assert_eq!(r.hoisted, 0, "{mode:?} must not hoist the recurrence load");
    }
}

#[test]
fn licm_never_speculates_guarded_pointer_loads() {
    // The guard (`ok`, always false) is what keeps the bad pointer from
    // being dereferenced; hoisting the load would fault. Regression test
    // for a real miscompile: LICM must leave conditionally executed
    // register-based loads alone.
    let src = "int ok;\n\
        int zero() { return 0; }\n\
        int main() {\n\
          int i; int t; int s; int *p;\n\
          p = &ok + zero() - 1000000;\n\
          t = 0; s = 0; ok = 0;\n\
          for (i = 0; i < 8; i++) {\n\
            if (ok) { t = *p; }\n\
            s = s + t + i;\n\
          }\n\
          return s;\n\
        }";
    let (p, se) = compile_to_ast(src).unwrap();
    let oracle = hli_lang::interp::run_program(&p, &se).unwrap();
    let rtl = hli_backend::lower::lower_program(&p, &se);
    let hli = generate_hli(&p, &se);
    let f = rtl.func("main").unwrap();
    let mut entry = hli.entry("main").unwrap().clone();
    let mut map = map_function(f, &entry);
    let r = licm_function(
        f,
        Some((&mut entry, &mut map)),
        DepMode::Combined,
        hli_machine::backend_by_name("r4600").unwrap(),
    );
    let mut p2 = rtl.clone();
    *p2.func_mut("main").unwrap() = r.func;
    let res = hli_machine::execute(&p2)
        .expect("hoisting must not introduce a fault the program never raises");
    assert_eq!(res.ret, oracle.ret);
}

#[test]
fn licm_still_hoists_named_object_loads_in_bodies() {
    // Globals are always-valid addresses: body loads of them may hoist
    // even though they sit past the loop's exit branch.
    let src = "int g; int x[32];\n\
        int main() { int i; for (i = 0; i < 32; i++) x[i] = g; return x[7]; }";
    let (p, se) = compile_to_ast(src).unwrap();
    let oracle = hli_lang::interp::run_program(&p, &se).unwrap();
    let rtl = hli_backend::lower::lower_program(&p, &se);
    let hli = generate_hli(&p, &se);
    let f = rtl.func("main").unwrap();
    let mut entry = hli.entry("main").unwrap().clone();
    let mut map = map_function(f, &entry);
    let r = licm_function(
        f,
        Some((&mut entry, &mut map)),
        DepMode::Combined,
        hli_machine::backend_by_name("r4600").unwrap(),
    );
    assert_eq!(r.hoisted, 1, "the g load must still hoist");
    let mut p2 = rtl.clone();
    *p2.func_mut("main").unwrap() = r.func;
    assert_eq!(hli_machine::execute(&p2).unwrap().ret, oracle.ret);
}
