//! HLI explorer: dump the line table and region tree (Figure-2 style) of
//! every function in a MiniC file.
//!
//! ```text
//! cargo run -p hli-harness --example hli_explorer [path/to/file.c]
//! ```
//!
//! Without an argument it explores a built-in stencil demo. Pass a path to
//! inspect your own program; pass a suite benchmark name prefixed with `@`
//! (e.g. `@102.swim`) to inspect a generated workload.

use hli_core::textdump::dump_entry;
use hli_frontend::generate_hli;
use hli_lang::compile_to_ast;

const DEMO: &str = "double grid[32][32]; double tmp[32][32];
void relax() {
    int i;
    int j;
    for (i = 1; i < 31; i++) {
        for (j = 1; j < 31; j++) {
            tmp[i][j] = 0.25 * (grid[i-1][j] + grid[i+1][j] + grid[i][j-1] + grid[i][j+1]);
        }
    }
}
int main() {
    int i;
    for (i = 0; i < 32; i++) grid[i][i] = 1.0;
    relax();
    return tmp[5][5] * 1000.0;
}
";

fn main() {
    let arg = std::env::args().nth(1);
    let src = match arg.as_deref() {
        None => DEMO.to_string(),
        Some(name) if name.starts_with('@') => {
            match hli_suite::by_name(&name[1..], hli_suite::Scale::default()) {
                Some(b) => b.source,
                None => {
                    eprintln!("unknown benchmark `{}`", &name[1..]);
                    std::process::exit(1);
                }
            }
        }
        Some(path) => std::fs::read_to_string(path).unwrap_or_else(|e| {
            eprintln!("cannot read {path}: {e}");
            std::process::exit(1);
        }),
    };
    let (prog, sema) = match compile_to_ast(&src) {
        Ok(x) => x,
        Err(e) => {
            eprintln!("compile error: {e}");
            std::process::exit(1);
        }
    };
    let hli = generate_hli(&prog, &sema);
    let bytes = hli_core::serialize::encode_file(&hli, Default::default());
    println!(
        "{} program unit(s), {} bytes of compact HLI ({:.1} bytes per source line)\n",
        hli.entries.len(),
        bytes.len(),
        bytes.len() as f64 / src.lines().count() as f64
    );
    for e in &hli.entries {
        print!("{}", dump_entry(e));
        let errs = e.validate();
        if !errs.is_empty() {
            println!("  !! INVALID: {errs:?}");
        }
        println!();
    }
}
