//! LCDD-driven software-pipelining bounds (the paper's Section 3.2.2
//! "indispensable for cyclic scheduling" use of the HLI).
//!
//! ```text
//! cargo run -p hli-harness --example software_pipelining
//! ```
//!
//! For a set of loop kernels, prints the modulo-scheduling lower bound
//! (MII = max(ResMII, RecMII)) a cyclic scheduler would see with GCC-local
//! dependence information vs with the HLI's loop-carried distances.

use hli_backend::ddg::DepMode;
use hli_backend::lower::lower_program;
use hli_backend::mapping::map_function;
use hli_backend::swp::{analyze_function, Resources, SwpLatency};
use hli_core::query::HliQuery;
use hli_frontend::generate_hli;
use hli_lang::compile_to_ast;

const KERNELS: &[(&str, &str)] = &[
    (
        "independent stream  x[i] = y[i]*2",
        "double a[64]; double b[64];\nvoid k(double *x, double *y) { int i; for (i = 0; i < 64; i++) x[i] = y[i] * 2.0; }\nint main() { k(a, b); return 0; }",
    ),
    (
        "distance-1 stencil  v[i] = v[i-1]*c",
        "double v[128];\nvoid k(double *v) { int i; for (i = 1; i < 128; i++) v[i] = v[i-1] * 1.5; }\nint main() { k(v); return 0; }",
    ),
    (
        "distance-4 stencil  v[i] = v[i-4]*c",
        "double v[128];\nvoid k(double *v) { int i; for (i = 4; i < 128; i++) v[i] = v[i-4] * 1.5; }\nint main() { k(v); return 0; }",
    ),
    (
        "accumulator         s += x[i]",
        "double a[64]; double s;\nvoid k(double *x) { int i; for (i = 0; i < 64; i++) s = s + x[i]; }\nint main() { k(a); return 0; }",
    ),
];

fn main() {
    println!(
        "{:<36} {:>8} {:>8} | {:>11} {:>11}",
        "kernel", "ops", "ResMII", "RecMII(GCC)", "RecMII(HLI)"
    );
    println!("{}", "-".repeat(82));
    for (label, src) in KERNELS {
        let (prog, sema) = compile_to_ast(src).unwrap();
        let rtl = lower_program(&prog, &sema);
        let hli = generate_hli(&prog, &sema);
        let f = rtl.func("k").unwrap();
        let entry = hli.entry("k").unwrap();
        let q = HliQuery::new(entry);
        let map = map_function(f, entry);
        let lat = SwpLatency::default();
        let res = Resources::default();
        let gcc = analyze_function(f, None, DepMode::GccOnly, &lat, &res);
        let smart = analyze_function(f, Some((&q, &map)), DepMode::Combined, &lat, &res);
        let (g, h) = (&gcc[0], &smart[0]);
        println!(
            "{label:<36} {:>8} {:>8} | {:>11} {:>11}",
            g.body_ops, g.res_mii, g.rec_mii, h.rec_mii
        );
    }
    println!(
        "\nRecMII = max over dependence cycles of ceil(latency/distance). Without the\n\
         LCDD table every may-conflict memory pair is a distance-1 recurrence; with it,\n\
         independent streams pipeline at the resource bound and a distance-4 recurrence\n\
         initiates 4x more often than a distance-1 one."
    );
}
