//! Figure 6 demo: loop unrolling with full HLI maintenance.
//!
//! ```text
//! cargo run -p hli-harness --example unroll_maintenance [factor]
//! ```
//!
//! Unrolls a first-order recurrence, prints the LCDD tables before and
//! after, and proves the unrolled binary still computes the same result.

use hli_backend::lower::lower_with_loops;
use hli_backend::mapping::map_function;
use hli_backend::unroll::unroll_function;
use hli_core::textdump::dump_entry;
use hli_frontend::generate_hli;
use hli_lang::compile_to_ast;

const SRC: &str = "int a[64];
int main() {
    int i;
    a[0] = 1;
    for (i = 1; i < 64; i++) {
        a[i] = a[i-1] * 3 + i;
    }
    return a[63] & 65535;
}
";

fn main() {
    let factor: u32 = std::env::args().nth(1).and_then(|a| a.parse().ok()).unwrap_or(4);
    let (prog, sema) = compile_to_ast(SRC).unwrap();
    let oracle = hli_lang::interp::run_program(&prog, &sema).unwrap();
    let hli = generate_hli(&prog, &sema);
    let (rtl, loops) = lower_with_loops(&prog, &sema);

    println!("==== HLI before unrolling ====");
    print!("{}", dump_entry(hli.entry("main").unwrap()));

    let f = rtl.func("main").unwrap();
    let mut entry = hli.entry("main").unwrap().clone();
    let mut map = map_function(f, &entry);
    let r = unroll_function(
        f,
        &loops["main"],
        factor,
        Some((&mut entry, &mut map)),
        hli_machine::backend_by_name("r4600").unwrap(),
    );
    println!(
        "\nunrolled {} loop(s) by {factor} (skipped {}); {} items now in the line table",
        r.unrolled,
        r.skipped,
        entry.line_table.item_count()
    );

    println!("\n==== HLI after unrolling (Figure-6 LCDD remap) ====");
    print!("{}", dump_entry(&entry));
    let errs = entry.validate();
    println!(
        "\nHLI validation: {}",
        if errs.is_empty() {
            "ok".into()
        } else {
            format!("{errs:?}")
        }
    );

    // Execute the unrolled program and compare with the interpreter.
    let mut prog2 = rtl.clone();
    *prog2.func_mut("main").unwrap() = r.func;
    let res = hli_machine::execute(&prog2).unwrap();
    println!(
        "\nresult check: interpreter {} vs unrolled machine {} — {}",
        oracle.ret,
        res.ret,
        if oracle.ret == res.ret {
            "MATCH"
        } else {
            "MISMATCH"
        }
    );
    assert_eq!(oracle.ret, res.ret);
    assert_eq!(oracle.global_checksum, res.global_checksum);
}
