//! Scheduler speedup demo: the paper's Section 4.3 experiment on one
//! kernel, end to end, with per-machine cycle breakdowns.
//!
//! ```text
//! cargo run --release -p hli-harness --example scheduler_speedup [benchmark]
//! ```
//!
//! Default benchmark: `077.mdljsp2` (the paper's biggest R10000 winner).

use hli_backend::ddg::DepMode;
use hli_backend::lower::lower_program;
use hli_backend::sched::schedule_program;
use hli_frontend::generate_hli;
use hli_lang::compile_to_ast;
use hli_machine::{r10000_cycles, r4600_cycles, R10000Config, R4600Config};
use hli_suite::Scale;

fn main() {
    let name = std::env::args().nth(1).unwrap_or_else(|| "077.mdljsp2".into());
    let Some(b) = hli_suite::by_name(&name, Scale::default()) else {
        eprintln!("unknown benchmark `{name}`");
        std::process::exit(1);
    };
    println!("benchmark: {} ({})", b.name, b.suite);

    let (prog, sema) = compile_to_ast(&b.source).unwrap();
    let oracle = hli_lang::interp::run_program(&prog, &sema).unwrap();
    let hli = generate_hli(&prog, &sema);
    let rtl = lower_program(&prog, &sema);
    let lat = hli_machine::backend_by_name("r4600").unwrap();

    let (gcc_build, _) = schedule_program(&rtl, &hli, DepMode::GccOnly, lat);
    let (hli_build, stats) = schedule_program(&rtl, &hli, DepMode::Combined, lat);
    println!(
        "dependence queries {} | GCC yes {} | HLI yes {} | combined {} | reduction {:.0}%",
        stats.total_tests,
        stats.gcc_yes,
        stats.hli_yes,
        stats.combined_yes,
        stats.reduction() * 100.0
    );

    let (gr, gt) = hli_machine::execute_with_trace(&gcc_build).unwrap();
    let (hr, ht) = hli_machine::execute_with_trace(&hli_build).unwrap();
    assert_eq!(gr.ret, oracle.ret);
    assert_eq!(hr.ret, oracle.ret);
    println!("both builds validated against the interpreter (result {})", oracle.ret);
    println!("dynamic instructions: {}", gr.dyn_insns);

    let c4 = R4600Config::default();
    let g4 = r4600_cycles(&gt, &c4);
    let h4 = r4600_cycles(&ht, &c4);
    println!(
        "R4600 : GCC {:>9} cycles ({} stall) | HLI {:>9} cycles ({} stall) | speedup {:.3}",
        g4.cycles,
        g4.stall_cycles,
        h4.cycles,
        h4.stall_cycles,
        g4.cycles as f64 / h4.cycles as f64
    );
    let c10 = R10000Config::default();
    let g10 = r10000_cycles(&gt, &c10);
    let h10 = r10000_cycles(&ht, &c10);
    println!(
        "R10000: GCC {:>9} cycles ({} LSQ stalls) | HLI {:>9} cycles ({} LSQ stalls) | speedup {:.3}",
        g10.cycles,
        g10.lsq_stalls,
        h10.cycles,
        h10.lsq_stalls,
        g10.cycles as f64 / h10.cycles as f64
    );
    println!(
        "\npaper's mechanism: HLI lets the scheduler move loads above stores it can prove\n\
         independent; the R10000's load/store queue then issues them without waiting\n\
         (LSQ stall delta above is exactly that effect)."
    );
}
