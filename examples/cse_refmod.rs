//! Figure 4 demo: CSE across function calls with REF/MOD evidence.
//!
//! ```text
//! cargo run -p hli-harness --example cse_refmod
//! ```
//!
//! GCC without interprocedural information must purge every memory-backed
//! subexpression at a call; the HLI's call REF/MOD table lets CSE purge
//! only what the callee may actually modify.

use hli_backend::cse::cse_function;
use hli_backend::ddg::DepMode;
use hli_backend::lower::lower_program;
use hli_backend::mapping::map_function;
use hli_frontend::generate_hli;
use hli_lang::compile_to_ast;

const SRC: &str = "int price[64]; int taxed[64]; int audit_count;
int rate;
void audit() {
    audit_count = audit_count + 1;
}
void update_rate() {
    rate = rate + 1;
}
int main() {
    int i;
    int t;
    rate = 7;
    for (i = 0; i < 64; i++) price[i] = i * 3;
    t = 0;
    for (i = 0; i < 64; i++) {
        taxed[i] = price[i] * rate;
        audit();
        t = t + price[i] * rate;
    }
    update_rate();
    t = t + rate;
    return t & 65535;
}
";

fn main() {
    let (prog, sema) = compile_to_ast(SRC).unwrap();
    let oracle = hli_lang::interp::run_program(&prog, &sema).unwrap();
    let rtl = lower_program(&prog, &sema);
    let hli = generate_hli(&prog, &sema);
    let f = rtl.func("main").unwrap();

    // GCC alone: every call clobbers the expression table.
    let plain = cse_function(
        f,
        None,
        DepMode::GccOnly,
        hli_machine::backend_by_name("r4600").unwrap(),
    );
    println!(
        "GCC CSE : {} loads eliminated, {} availability entries purged at calls",
        plain.loads_eliminated, plain.purged_by_call
    );

    // With HLI: `audit` only touches audit_count, so `price[i]`/`rate`
    // stay available across it; `update_rate` really does kill `rate`.
    let mut entry = hli.entry("main").unwrap().clone();
    let mut map = map_function(f, &entry);
    let smart = cse_function(
        f,
        Some((&mut entry, &mut map)),
        DepMode::Combined,
        hli_machine::backend_by_name("r4600").unwrap(),
    );
    println!(
        "HLI CSE : {} loads eliminated, {} entries kept across calls, {} purged",
        smart.loads_eliminated, smart.kept_across_call, smart.purged_by_call
    );
    assert!(smart.loads_eliminated > plain.loads_eliminated);

    // Both rewritten functions still compute the original answer.
    for (label, rewritten) in [("gcc", plain.func), ("hli", smart.func)] {
        let mut p2 = rtl.clone();
        *p2.func_mut("main").unwrap() = rewritten;
        let res = hli_machine::execute(&p2).unwrap();
        assert_eq!(res.ret, oracle.ret, "{label} CSE must preserve semantics");
    }
    println!("both CSE'd builds validated (result {})", oracle.ret);
    println!(
        "\nHLI deleted {} items from the line table; entry still valid: {}",
        smart.deleted_items.len(),
        entry.validate().is_empty()
    );
}
