//! Quickstart: the whole HLI round trip on a small program.
//!
//! ```text
//! cargo run --release -p hli-harness --example quickstart
//! ```
//!
//! Pipeline: MiniC source → front-end analyses → HLI file → RTL lowering →
//! item↔instruction mapping → dependence queries (GCC vs HLI vs Figure-5
//! combined) → basic-block scheduling → machine-model timing.

use hli_backend::ddg::DepMode;
use hli_backend::lower::lower_program;
use hli_backend::mapping::map_function;
use hli_backend::sched::schedule_program;
use hli_core::query::HliQuery;
use hli_core::serialize::{encode_file, SerializeOpts};
use hli_frontend::generate_hli;
use hli_lang::compile_to_ast;
use hli_machine::{r10000_cycles, r4600_cycles, R10000Config, R4600Config};

const SRC: &str = "double xs[256]; double ys[256];
void saxpy(double *x, double *y, double a, int n) {
    int i;
    for (i = 0; i < n; i++) {
        y[i] = y[i] + a * x[i];
    }
}
int main() {
    int i;
    for (i = 0; i < 256; i++) { xs[i] = i; ys[i] = 256 - i; }
    saxpy(xs, ys, 3.0, 256);
    return ys[10];
}
";

fn main() {
    // 1. Front end: parse, analyze, build the HLI.
    let (prog, sema) = compile_to_ast(SRC).expect("valid MiniC");
    let hli = generate_hli(&prog, &sema);
    let bytes = encode_file(&hli, SerializeOpts::default());
    println!(
        "HLI generated: {} program units, {} bytes serialized",
        hli.entries.len(),
        bytes.len()
    );

    // 2. Ask the paper's Figure-5 question for saxpy's loop body:
    //    may `x[i]` (load) and `y[i]` (store) touch the same location?
    let entry = hli.entry("saxpy").unwrap();
    let q = HliQuery::new(entry);
    let line = entry.line_table.lines.iter().find(|l| l.items.len() >= 3).unwrap();
    let (y_load, x_load, y_store) = (line.items[0].id, line.items[1].id, line.items[2].id);
    println!(
        "HLI_GetEquivAcc(y[i] load, y[i] store) = {:?}   (same element)",
        q.get_equiv_acc(y_load, y_store)
    );
    println!(
        "HLI_GetEquivAcc(x[i] load, y[i] store) = {:?}   (points-to proves disjoint)",
        q.get_equiv_acc(x_load, y_store)
    );

    // 3. Back end: lower, map, schedule both ways.
    let rtl = lower_program(&prog, &sema);
    let f = rtl.func("saxpy").unwrap();
    let map = map_function(f, entry);
    println!(
        "mapping: {} items bound, {} unmapped",
        map.insn_to_item.len(),
        map.unmapped_insns.len()
    );
    let lat = hli_machine::backend_by_name("r4600").unwrap();
    let (gcc_build, _) = schedule_program(&rtl, &hli, DepMode::GccOnly, lat);
    let (hli_build, stats) = schedule_program(&rtl, &hli, DepMode::Combined, lat);
    println!(
        "dependence queries: {} total, GCC yes {}, HLI yes {}, combined {} (reduction {:.0}%)",
        stats.total_tests,
        stats.gcc_yes,
        stats.hli_yes,
        stats.combined_yes,
        stats.reduction() * 100.0
    );

    // 4. Machines: identical results, different cycles.
    let (gr, gt) = hli_machine::execute_with_trace(&gcc_build).unwrap();
    let (hr, ht) = hli_machine::execute_with_trace(&hli_build).unwrap();
    assert_eq!(gr.ret, hr.ret, "schedules must agree");
    println!("program result: {} (both builds agree)", gr.ret);
    let (c4, c10) = (R4600Config::default(), R10000Config::default());
    let (g4, h4) = (r4600_cycles(&gt, &c4).cycles, r4600_cycles(&ht, &c4).cycles);
    let (g10, h10) = (r10000_cycles(&gt, &c10).cycles, r10000_cycles(&ht, &c10).cycles);
    println!(
        "R4600 : GCC {g4} cycles, HLI {h4} cycles (speedup {:.3})",
        g4 as f64 / h4 as f64
    );
    println!(
        "R10000: GCC {g10} cycles, HLI {h10} cycles (speedup {:.3})",
        g10 as f64 / h10 as f64
    );
}
