//! Minimal JSON support shared by the metric and trace emitters.
//!
//! Two halves: a writer ([`escape_into`], [`push_f64`]) used when emitting
//! snapshots, and a small recursive-descent parser ([`parse`]) used by
//! tests to check that emitted output is well-formed JSON without pulling
//! an external crate into an offline build.

use std::collections::BTreeMap;
use std::fmt::Write as _;

/// A parsed JSON value. Object keys are sorted (BTreeMap) so equality and
/// debug output are deterministic.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    Null,
    Bool(bool),
    Num(f64),
    Str(String),
    Arr(Vec<Json>),
    Obj(BTreeMap<String, Json>),
}

impl Json {
    /// Object field access, `None` on non-objects / missing keys.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(m) => m.get(key),
            _ => None,
        }
    }

    pub fn as_num(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(v) => Some(v),
            _ => None,
        }
    }
}

/// Append `s` as a JSON string literal (with quotes) to `out`.
pub fn escape_into(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Append a finite float; JSON has no NaN/Inf, so those become `null`.
pub fn push_f64(out: &mut String, v: f64) {
    if v.is_finite() {
        let _ = write!(out, "{v}");
    } else {
        out.push_str("null");
    }
}

/// Parse a complete JSON document; trailing non-whitespace is an error.
pub fn parse(text: &str) -> Result<Json, String> {
    let mut p = Parser { bytes: text.as_bytes(), pos: 0 };
    p.skip_ws();
    let v = p.value(0)?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(format!("trailing data at byte {}", p.pos));
    }
    Ok(v)
}

const MAX_DEPTH: u32 = 128;

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!("expected `{}` at byte {}", b as char, self.pos))
        }
    }

    fn value(&mut self, depth: u32) -> Result<Json, String> {
        if depth > MAX_DEPTH {
            return Err("too deeply nested".into());
        }
        match self.peek() {
            Some(b'{') => self.object(depth),
            Some(b'[') => self.array(depth),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'n') => self.literal("null", Json::Null),
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(b) => Err(format!("unexpected byte `{}` at {}", b as char, self.pos)),
            None => Err("unexpected end of input".into()),
        }
    }

    fn literal(&mut self, word: &str, v: Json) -> Result<Json, String> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            Err(format!("bad literal at byte {}", self.pos))
        }
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-')) {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap();
        text.parse::<f64>()
            .map(Json::Num)
            .map_err(|e| format!("bad number `{text}`: {e}"))
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err("unterminated string".into()),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or("truncated \\u escape")?;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex).map_err(|_| "bad \\u escape")?,
                                16,
                            )
                            .map_err(|_| "bad \\u escape")?;
                            // Surrogate pairs are not needed by our emitters.
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                            self.pos += 4;
                        }
                        _ => return Err(format!("bad escape at byte {}", self.pos)),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (input is a &str, so this is
                    // always well-formed).
                    let rest =
                        std::str::from_utf8(&self.bytes[self.pos..]).map_err(|e| e.to_string())?;
                    let c = rest.chars().next().unwrap();
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn array(&mut self, depth: u32) -> Result<Json, String> {
        self.expect(b'[')?;
        let mut v = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(v));
        }
        loop {
            self.skip_ws();
            v.push(self.value(depth + 1)?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(v));
                }
                _ => return Err(format!("expected `,` or `]` at byte {}", self.pos)),
            }
        }
    }

    fn object(&mut self, depth: u32) -> Result<Json, String> {
        self.expect(b'{')?;
        let mut m = BTreeMap::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(m));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let val = self.value(depth + 1)?;
            m.insert(key, val);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(m));
                }
                _ => return Err(format!("expected `,` or `}}` at byte {}", self.pos)),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_escapes() {
        let mut out = String::new();
        escape_into(&mut out, "a\"b\\c\nd\te\u{1}");
        let back = parse(&out).unwrap();
        assert_eq!(back, Json::Str("a\"b\\c\nd\te\u{1}".into()));
    }

    #[test]
    fn parses_nested_document() {
        let v = parse(r#"{"a": [1, 2.5, -3e2], "b": {"c": true, "d": null}, "e": "x"}"#).unwrap();
        assert_eq!(v.get("a").unwrap().as_arr().unwrap().len(), 3);
        assert_eq!(v.get("a").unwrap().as_arr().unwrap()[2].as_num(), Some(-300.0));
        assert_eq!(v.get("b").unwrap().get("c"), Some(&Json::Bool(true)));
        assert_eq!(v.get("e").unwrap().as_str(), Some("x"));
    }

    #[test]
    fn rejects_garbage() {
        for bad in ["", "{", "[1,", "{\"a\"}", "tru", "1 2", "\"abc", "{\"a\":}"] {
            assert!(parse(bad).is_err(), "`{bad}` should not parse");
        }
    }

    #[test]
    fn rejects_pathological_nesting() {
        let deep = "[".repeat(10_000) + &"]".repeat(10_000);
        assert!(parse(&deep).is_err());
    }

    #[test]
    fn non_finite_floats_become_null() {
        let mut out = String::new();
        push_f64(&mut out, f64::NAN);
        assert_eq!(out, "null");
        let mut out = String::new();
        push_f64(&mut out, 1.5);
        assert_eq!(out, "1.5");
    }
}
