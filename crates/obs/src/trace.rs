//! Span/phase tracer: RAII guards around named phases, nested into a
//! trace tree, exportable as indented text and as Chrome `trace_event`
//! JSON (loadable in `chrome://tracing` / `ui.perfetto.dev`).
//!
//! Each thread keeps its own open-span stack in a thread-local, so nesting
//! is tracked without locks; completed spans are appended to the tracer's
//! shared log under a mutex (one lock per span *close*, not per event).
//! The log is capped; spans past the cap are counted, not stored.

use crate::json::{escape_into, push_f64};
use std::fmt::Write as _;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};
use std::time::Instant;

/// A completed span.
#[derive(Debug, Clone, PartialEq)]
pub struct SpanRec {
    pub name: String,
    /// Nanoseconds since the tracer's epoch.
    pub start_ns: u64,
    pub dur_ns: u64,
    /// Nesting depth at the time the span opened (0 = top level).
    pub depth: u32,
    /// Thread that ran the span (dense id assigned per tracer).
    pub tid: u64,
}

/// Default cap on stored spans. Far above anything a single `hlicc` run
/// produces, but bounds memory if instrumentation ends up in a hot loop.
const DEFAULT_CAP: usize = 1 << 16;

/// What a tracer's timestamps mean.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Clock {
    /// Nanoseconds of wall time since the tracer's epoch (the default;
    /// what `--trace-out` ships to `chrome://tracing`).
    Wall,
    /// A deterministic event counter: each span open and close draws one
    /// tick, `start_ns` is the open tick, `dur_ns` is close − open ticks,
    /// and `tid` is always 0. Byte-identical output for identical span
    /// sequences — the mode [`crate::shard::capture`] uses so traces can
    /// be pinned across `--jobs` values.
    Logical,
}

/// A tracer instance. Usually used through [`global`] + [`span`].
#[derive(Debug)]
pub struct Tracer {
    epoch: Instant,
    clock: Clock,
    /// Logical tick counter (next tick to issue); unused under `Wall`.
    seq: AtomicU64,
    enabled: AtomicBool,
    spans: Mutex<Vec<SpanRec>>,
    dropped: AtomicU64,
    cap: usize,
    next_tid: AtomicU64,
}

impl Default for Tracer {
    fn default() -> Self {
        Self::new()
    }
}

impl Tracer {
    pub fn new() -> Self {
        Self::with_cap(DEFAULT_CAP)
    }

    pub fn with_cap(cap: usize) -> Self {
        Self::with_cap_clock(cap, Clock::Wall)
    }

    /// A deterministic tracer ([`Clock::Logical`]).
    pub fn logical() -> Self {
        Self::with_cap_clock(DEFAULT_CAP, Clock::Logical)
    }

    fn with_cap_clock(cap: usize, clock: Clock) -> Self {
        Tracer {
            epoch: Instant::now(),
            clock,
            seq: AtomicU64::new(0),
            enabled: AtomicBool::new(true),
            spans: Mutex::new(Vec::new()),
            dropped: AtomicU64::new(0),
            cap,
            next_tid: AtomicU64::new(0),
        }
    }

    pub fn clock(&self) -> Clock {
        self.clock
    }

    pub fn is_logical(&self) -> bool {
        self.clock == Clock::Logical
    }

    /// Logical ticks issued so far (0 under [`Clock::Wall`]). A shard
    /// commit reserves this many ticks in the parent with
    /// [`Tracer::absorb_logical`].
    pub fn seq_used(&self) -> u64 {
        self.seq.load(Ordering::Relaxed)
    }

    /// Enable or disable recording. Guards created while disabled still
    /// nest correctly (depth bookkeeping continues) but record nothing.
    pub fn set_enabled(&self, on: bool) {
        self.enabled.store(on, Ordering::Relaxed);
    }

    pub fn is_enabled(&self) -> bool {
        self.enabled.load(Ordering::Relaxed)
    }

    /// Open a span; it closes (and is recorded) when the guard drops.
    pub fn span(self: &Arc<Self>, name: impl Into<String>) -> SpanGuard {
        let depth = THREAD.with(|t| {
            let mut t = t.borrow_mut();
            let d = t.depth;
            t.depth += 1;
            d
        });
        let open_seq = match self.clock {
            Clock::Wall => 0,
            Clock::Logical => self.seq.fetch_add(1, Ordering::Relaxed),
        };
        SpanGuard {
            tracer: self.clone(),
            name: name.into(),
            start: Instant::now(),
            open_seq,
            depth,
        }
    }

    fn record(&self, name: String, start: Instant, open_seq: u64, depth: u32) {
        if !self.is_enabled() {
            return;
        }
        let (start_ns, dur_ns, tid) = match self.clock {
            Clock::Wall => {
                let dur_ns = start.elapsed().as_nanos() as u64;
                let start_ns = start.duration_since(self.epoch).as_nanos() as u64;
                let tid = THREAD.with(|t| {
                    let mut t = t.borrow_mut();
                    match t.tid {
                        Some(id) => id,
                        None => {
                            let id = self.next_tid.fetch_add(1, Ordering::Relaxed);
                            t.tid = Some(id);
                            id
                        }
                    }
                });
                (start_ns, dur_ns, tid)
            }
            Clock::Logical => {
                let close_seq = self.seq.fetch_add(1, Ordering::Relaxed);
                (open_seq, close_seq - open_seq, 0)
            }
        };
        let mut spans = self.spans.lock().unwrap();
        if spans.len() >= self.cap {
            self.dropped.fetch_add(1, Ordering::Relaxed);
        } else {
            spans.push(SpanRec { name, start_ns, dur_ns, depth, tid });
        }
    }

    /// Take every recorded span (close order), leaving the tracer empty.
    pub fn drain_spans(&self) -> Vec<SpanRec> {
        std::mem::take(&mut *self.spans.lock().unwrap())
    }

    /// Merge a worker shard's logical spans: reserve `seq_used` ticks in
    /// this tracer's counter and append `spans` rebased by the reserved
    /// offset. Committing shards in a stable order reproduces exactly the
    /// tick numbering a sequential run would have produced (the trace
    /// analogue of [`crate::provenance::claim_ids`]). No-op on a
    /// [`Clock::Wall`] tracer — wall timestamps from another tracer's
    /// epoch are meaningless here.
    pub fn absorb_logical(&self, spans: Vec<SpanRec>, seq_used: u64) {
        if !self.is_logical() || !self.is_enabled() {
            return;
        }
        let offset = self.seq.fetch_add(seq_used, Ordering::Relaxed);
        let mut log = self.spans.lock().unwrap();
        for mut s in spans {
            if log.len() >= self.cap {
                self.dropped.fetch_add(1, Ordering::Relaxed);
            } else {
                s.start_ns += offset;
                log.push(s);
            }
        }
    }

    /// Number of spans discarded because the cap was reached.
    pub fn dropped(&self) -> u64 {
        self.dropped.load(Ordering::Relaxed)
    }

    /// Completed spans in close order.
    pub fn finished_spans(&self) -> Vec<SpanRec> {
        self.spans.lock().unwrap().clone()
    }

    /// Discard all recorded spans (keeps the epoch).
    pub fn clear(&self) {
        self.spans.lock().unwrap().clear();
        self.dropped.store(0, Ordering::Relaxed);
    }

    /// Indented text rendering, spans sorted by start time.
    pub fn to_text(&self) -> String {
        let mut spans = self.finished_spans();
        spans.sort_by_key(|s| (s.tid, s.start_ns));
        let mut out = String::new();
        for s in &spans {
            let _ = writeln!(
                out,
                "{:indent$}{} {:.3} ms",
                "",
                s.name,
                s.dur_ns as f64 / 1e6,
                indent = (s.depth as usize) * 2
            );
        }
        let d = self.dropped();
        if d != 0 {
            let _ = writeln!(out, "({d} spans dropped past cap)");
        }
        out
    }

    /// Chrome `trace_event` JSON: an object with a `traceEvents` array of
    /// complete (`"ph":"X"`) events; `ts`/`dur` are microseconds as the
    /// format requires.
    pub fn to_chrome_json(&self) -> String {
        let spans = self.finished_spans();
        let mut out = String::from("{\"traceEvents\": [");
        for (i, s) in spans.iter().enumerate() {
            out.push_str(if i == 0 { "\n  " } else { ",\n  " });
            out.push_str("{\"name\": ");
            escape_into(&mut out, &s.name);
            out.push_str(", \"ph\": \"X\", \"ts\": ");
            push_f64(&mut out, s.start_ns as f64 / 1e3);
            out.push_str(", \"dur\": ");
            push_f64(&mut out, s.dur_ns as f64 / 1e3);
            let _ = write!(out, ", \"pid\": 1, \"tid\": {}}}", s.tid);
        }
        out.push_str("\n]}\n");
        out
    }
}

struct ThreadState {
    depth: u32,
    tid: Option<u64>,
}

thread_local! {
    static THREAD: std::cell::RefCell<ThreadState> =
        const { std::cell::RefCell::new(ThreadState { depth: 0, tid: None }) };
}

/// RAII guard for an open span; records the span on drop.
pub struct SpanGuard {
    tracer: Arc<Tracer>,
    name: String,
    start: Instant,
    open_seq: u64,
    depth: u32,
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        THREAD.with(|t| {
            let mut t = t.borrow_mut();
            t.depth = t.depth.saturating_sub(1);
        });
        self.tracer
            .record(std::mem::take(&mut self.name), self.start, self.open_seq, self.depth);
    }
}

static GLOBAL: OnceLock<Arc<Tracer>> = OnceLock::new();

/// The process-global tracer.
pub fn global() -> Arc<Tracer> {
    GLOBAL.get_or_init(|| Arc::new(Tracer::new())).clone()
}

thread_local! {
    static SCOPED: std::cell::RefCell<Vec<Arc<Tracer>>> =
        const { std::cell::RefCell::new(Vec::new()) };
}

/// Install `tracer` as this thread's current tracer until the guard drops
/// (shadows the global one for [`span`] / [`cur`]). Mirrors
/// [`crate::metrics::scoped`] / [`crate::provenance::scoped`].
pub fn scoped(tracer: Arc<Tracer>) -> ScopedTracer {
    SCOPED.with(|s| s.borrow_mut().push(tracer));
    ScopedTracer { _priv: () }
}

/// RAII guard returned by [`scoped`].
pub struct ScopedTracer {
    _priv: (),
}

impl Drop for ScopedTracer {
    fn drop(&mut self) {
        SCOPED.with(|s| {
            s.borrow_mut().pop();
        });
    }
}

/// The tracer [`span`] appends to right now: the innermost thread-scoped
/// tracer, else the global one.
pub fn cur() -> Arc<Tracer> {
    SCOPED.with(|s| s.borrow().last().cloned()).unwrap_or_else(global)
}

/// Open a span on the current tracer — the usual entry point:
///
/// ```
/// {
///     let _g = hli_obs::span("frontend.itemgen");
///     // ... phase body ...
/// } // span recorded here
/// ```
pub fn span(name: impl Into<String>) -> SpanGuard {
    cur().span(name)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// xorshift64 — local copy so the property-style tests stay dep-free.
    struct Rng(u64);
    impl Rng {
        fn next(&mut self) -> u64 {
            let mut x = self.0;
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            self.0 = x;
            x
        }
    }

    #[test]
    fn spans_nest_and_record_depth() {
        let t = Arc::new(Tracer::new());
        {
            let _a = t.span("outer");
            {
                let _b = t.span("inner");
            }
            let _c = t.span("sibling");
        }
        let spans = t.finished_spans();
        let by_name = |n: &str| spans.iter().find(|s| s.name == n).unwrap();
        assert_eq!(spans.len(), 3);
        assert_eq!(by_name("outer").depth, 0);
        assert_eq!(by_name("inner").depth, 1);
        assert_eq!(by_name("sibling").depth, 1);
        // Children close before parents.
        assert_eq!(spans.last().unwrap().name, "outer");
    }

    /// Property-style: for random open/close sequences, recorded depths
    /// always match the nesting structure, every span's interval lies
    /// within its parent's, and depth returns to 0 at the end.
    #[test]
    fn random_nesting_invariants() {
        let mut rng = Rng(0x9E3779B97F4A7C15);
        for round in 0..50 {
            let t = Arc::new(Tracer::new());
            let mut stack: Vec<(SpanGuard, u32)> = Vec::new();
            let mut expect: Vec<(String, u32)> = Vec::new();
            for step in 0..40 {
                let open = stack.is_empty() || rng.next().is_multiple_of(2);
                if open && stack.len() < 12 {
                    let name = format!("s{round}_{step}");
                    let depth = stack.len() as u32;
                    expect.push((name.clone(), depth));
                    stack.push((t.span(name), depth));
                } else {
                    stack.pop(); // guard dropped here
                }
            }
            stack.drain(..).rev().for_each(drop);
            THREAD.with(|th| assert_eq!(th.borrow().depth, 0));
            let spans = t.finished_spans();
            assert_eq!(spans.len(), expect.len());
            for (name, depth) in &expect {
                let s = spans.iter().find(|s| &s.name == name).unwrap();
                assert_eq!(s.depth, *depth, "depth mismatch for {name}");
            }
            // Interval containment: each deeper span that closed while its
            // parent was open must lie within some depth-1 span's window.
            for s in &spans {
                if s.depth == 0 {
                    continue;
                }
                let parent_ok = spans.iter().any(|p| {
                    p.depth + 1 == s.depth
                        && p.start_ns <= s.start_ns
                        && s.start_ns + s.dur_ns <= p.start_ns + p.dur_ns
                });
                assert!(parent_ok, "span {} has no enclosing parent", s.name);
            }
        }
    }

    #[test]
    fn cap_drops_and_counts() {
        let t = Arc::new(Tracer::with_cap(2));
        for i in 0..5 {
            let _g = t.span(format!("s{i}"));
        }
        assert_eq!(t.finished_spans().len(), 2);
        assert_eq!(t.dropped(), 3);
        assert!(t.to_text().contains("3 spans dropped"));
    }

    #[test]
    fn disabled_tracer_records_nothing() {
        let t = Arc::new(Tracer::new());
        t.set_enabled(false);
        {
            let _g = t.span("ghost");
        }
        assert!(t.finished_spans().is_empty());
    }

    #[test]
    fn chrome_json_parses_and_has_events() {
        let t = Arc::new(Tracer::new());
        {
            let _a = t.span("phase \"x\"");
            let _b = t.span("sub");
        }
        let text = t.to_chrome_json();
        let v = crate::json::parse(&text).expect("chrome trace must be valid JSON");
        let events = v.get("traceEvents").unwrap().as_arr().unwrap();
        assert_eq!(events.len(), 2);
        for e in events {
            assert_eq!(e.get("ph").unwrap().as_str(), Some("X"));
            assert!(e.get("ts").unwrap().as_num().is_some());
            assert!(e.get("dur").unwrap().as_num().is_some());
        }
        assert!(events.iter().any(|e| e.get("name").unwrap().as_str() == Some("phase \"x\"")));
    }

    #[test]
    fn logical_clock_is_deterministic() {
        let run = || {
            let t = Arc::new(Tracer::logical());
            {
                let _a = t.span("outer");
                let _b = t.span("inner");
            }
            {
                let _c = t.span("next");
            }
            (t.seq_used(), t.finished_spans(), t.to_chrome_json())
        };
        let (seq1, spans1, json1) = run();
        let (seq2, spans2, json2) = run();
        assert_eq!(seq1, 6, "3 spans = 6 ticks");
        assert_eq!(seq1, seq2);
        assert_eq!(spans1, spans2, "logical spans carry no wall time");
        assert_eq!(json1, json2);
        assert!(spans1.iter().all(|s| s.tid == 0));
        // outer opened at tick 0, closed at tick 3.
        let outer = spans1.iter().find(|s| s.name == "outer").unwrap();
        assert_eq!((outer.start_ns, outer.dur_ns), (0, 3));
    }

    #[test]
    fn absorb_logical_rebases_shard_ticks() {
        let parent = Arc::new(Tracer::logical());
        {
            let _w = parent.span("warmup"); // ticks 0..2
        }
        let shard = Arc::new(Tracer::logical());
        {
            let _s = shard.span("worker"); // local ticks 0..2
        }
        parent.absorb_logical(shard.drain_spans(), shard.seq_used());
        let spans = parent.finished_spans();
        let worker = spans.iter().find(|s| s.name == "worker").unwrap();
        assert_eq!(worker.start_ns, 2, "rebased past parent's 2 used ticks");
        assert_eq!(parent.seq_used(), 4);
        // Wall tracers refuse foreign logical ticks.
        let wall = Arc::new(Tracer::new());
        wall.absorb_logical(vec![worker.clone()], 2);
        assert!(wall.finished_spans().is_empty());
    }

    #[test]
    fn scoped_tracer_shadows_global_for_span() {
        let local = Arc::new(Tracer::logical());
        {
            let _g = scoped(local.clone());
            assert!(Arc::ptr_eq(&cur(), &local));
            let _s = span("scoped.only");
        }
        assert_eq!(local.finished_spans().len(), 1);
        assert!(
            global().finished_spans().iter().all(|s| s.name != "scoped.only"),
            "global untouched by scoped recording"
        );
        assert!(Arc::ptr_eq(&cur(), &global()));
    }
}
