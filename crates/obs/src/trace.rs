//! Span/phase tracer: RAII guards around named phases, nested into a
//! trace tree, exportable as indented text and as Chrome `trace_event`
//! JSON (loadable in `chrome://tracing` / `ui.perfetto.dev`).
//!
//! Each thread keeps its own open-span stack in a thread-local, so nesting
//! is tracked without locks; completed spans are appended to the tracer's
//! shared log under a mutex (one lock per span *close*, not per event).
//! The log is capped; spans past the cap are counted, not stored.

use crate::json::{escape_into, push_f64};
use std::fmt::Write as _;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};
use std::time::Instant;

/// A completed span.
#[derive(Debug, Clone, PartialEq)]
pub struct SpanRec {
    pub name: String,
    /// Nanoseconds since the tracer's epoch.
    pub start_ns: u64,
    pub dur_ns: u64,
    /// Nesting depth at the time the span opened (0 = top level).
    pub depth: u32,
    /// Thread that ran the span (dense id assigned per tracer).
    pub tid: u64,
}

/// Default cap on stored spans. Far above anything a single `hlicc` run
/// produces, but bounds memory if instrumentation ends up in a hot loop.
const DEFAULT_CAP: usize = 1 << 16;

/// A tracer instance. Usually used through [`global`] + [`span`].
#[derive(Debug)]
pub struct Tracer {
    epoch: Instant,
    enabled: AtomicBool,
    spans: Mutex<Vec<SpanRec>>,
    dropped: AtomicU64,
    cap: usize,
    next_tid: AtomicU64,
}

impl Default for Tracer {
    fn default() -> Self {
        Self::new()
    }
}

impl Tracer {
    pub fn new() -> Self {
        Self::with_cap(DEFAULT_CAP)
    }

    pub fn with_cap(cap: usize) -> Self {
        Tracer {
            epoch: Instant::now(),
            enabled: AtomicBool::new(true),
            spans: Mutex::new(Vec::new()),
            dropped: AtomicU64::new(0),
            cap,
            next_tid: AtomicU64::new(0),
        }
    }

    /// Enable or disable recording. Guards created while disabled still
    /// nest correctly (depth bookkeeping continues) but record nothing.
    pub fn set_enabled(&self, on: bool) {
        self.enabled.store(on, Ordering::Relaxed);
    }

    pub fn is_enabled(&self) -> bool {
        self.enabled.load(Ordering::Relaxed)
    }

    /// Open a span; it closes (and is recorded) when the guard drops.
    pub fn span(self: &Arc<Self>, name: impl Into<String>) -> SpanGuard {
        let depth = THREAD.with(|t| {
            let mut t = t.borrow_mut();
            let d = t.depth;
            t.depth += 1;
            d
        });
        SpanGuard {
            tracer: self.clone(),
            name: name.into(),
            start: Instant::now(),
            depth,
        }
    }

    fn record(&self, name: String, start: Instant, depth: u32) {
        if !self.is_enabled() {
            return;
        }
        let dur_ns = start.elapsed().as_nanos() as u64;
        let start_ns = start.duration_since(self.epoch).as_nanos() as u64;
        let tid = THREAD.with(|t| {
            let mut t = t.borrow_mut();
            match t.tid {
                Some(id) => id,
                None => {
                    let id = self.next_tid.fetch_add(1, Ordering::Relaxed);
                    t.tid = Some(id);
                    id
                }
            }
        });
        let mut spans = self.spans.lock().unwrap();
        if spans.len() >= self.cap {
            self.dropped.fetch_add(1, Ordering::Relaxed);
        } else {
            spans.push(SpanRec { name, start_ns, dur_ns, depth, tid });
        }
    }

    /// Number of spans discarded because the cap was reached.
    pub fn dropped(&self) -> u64 {
        self.dropped.load(Ordering::Relaxed)
    }

    /// Completed spans in close order.
    pub fn finished_spans(&self) -> Vec<SpanRec> {
        self.spans.lock().unwrap().clone()
    }

    /// Discard all recorded spans (keeps the epoch).
    pub fn clear(&self) {
        self.spans.lock().unwrap().clear();
        self.dropped.store(0, Ordering::Relaxed);
    }

    /// Indented text rendering, spans sorted by start time.
    pub fn to_text(&self) -> String {
        let mut spans = self.finished_spans();
        spans.sort_by_key(|s| (s.tid, s.start_ns));
        let mut out = String::new();
        for s in &spans {
            let _ = writeln!(
                out,
                "{:indent$}{} {:.3} ms",
                "",
                s.name,
                s.dur_ns as f64 / 1e6,
                indent = (s.depth as usize) * 2
            );
        }
        let d = self.dropped();
        if d != 0 {
            let _ = writeln!(out, "({d} spans dropped past cap)");
        }
        out
    }

    /// Chrome `trace_event` JSON: an object with a `traceEvents` array of
    /// complete (`"ph":"X"`) events; `ts`/`dur` are microseconds as the
    /// format requires.
    pub fn to_chrome_json(&self) -> String {
        let spans = self.finished_spans();
        let mut out = String::from("{\"traceEvents\": [");
        for (i, s) in spans.iter().enumerate() {
            out.push_str(if i == 0 { "\n  " } else { ",\n  " });
            out.push_str("{\"name\": ");
            escape_into(&mut out, &s.name);
            out.push_str(", \"ph\": \"X\", \"ts\": ");
            push_f64(&mut out, s.start_ns as f64 / 1e3);
            out.push_str(", \"dur\": ");
            push_f64(&mut out, s.dur_ns as f64 / 1e3);
            let _ = write!(out, ", \"pid\": 1, \"tid\": {}}}", s.tid);
        }
        out.push_str("\n]}\n");
        out
    }
}

struct ThreadState {
    depth: u32,
    tid: Option<u64>,
}

thread_local! {
    static THREAD: std::cell::RefCell<ThreadState> =
        const { std::cell::RefCell::new(ThreadState { depth: 0, tid: None }) };
}

/// RAII guard for an open span; records the span on drop.
pub struct SpanGuard {
    tracer: Arc<Tracer>,
    name: String,
    start: Instant,
    depth: u32,
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        THREAD.with(|t| {
            let mut t = t.borrow_mut();
            t.depth = t.depth.saturating_sub(1);
        });
        self.tracer.record(std::mem::take(&mut self.name), self.start, self.depth);
    }
}

static GLOBAL: OnceLock<Arc<Tracer>> = OnceLock::new();

/// The process-global tracer.
pub fn global() -> Arc<Tracer> {
    GLOBAL.get_or_init(|| Arc::new(Tracer::new())).clone()
}

/// Open a span on the global tracer — the usual entry point:
///
/// ```
/// {
///     let _g = hli_obs::span("frontend.itemgen");
///     // ... phase body ...
/// } // span recorded here
/// ```
pub fn span(name: impl Into<String>) -> SpanGuard {
    global().span(name)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// xorshift64 — local copy so the property-style tests stay dep-free.
    struct Rng(u64);
    impl Rng {
        fn next(&mut self) -> u64 {
            let mut x = self.0;
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            self.0 = x;
            x
        }
    }

    #[test]
    fn spans_nest_and_record_depth() {
        let t = Arc::new(Tracer::new());
        {
            let _a = t.span("outer");
            {
                let _b = t.span("inner");
            }
            let _c = t.span("sibling");
        }
        let spans = t.finished_spans();
        let by_name = |n: &str| spans.iter().find(|s| s.name == n).unwrap();
        assert_eq!(spans.len(), 3);
        assert_eq!(by_name("outer").depth, 0);
        assert_eq!(by_name("inner").depth, 1);
        assert_eq!(by_name("sibling").depth, 1);
        // Children close before parents.
        assert_eq!(spans.last().unwrap().name, "outer");
    }

    /// Property-style: for random open/close sequences, recorded depths
    /// always match the nesting structure, every span's interval lies
    /// within its parent's, and depth returns to 0 at the end.
    #[test]
    fn random_nesting_invariants() {
        let mut rng = Rng(0x9E3779B97F4A7C15);
        for round in 0..50 {
            let t = Arc::new(Tracer::new());
            let mut stack: Vec<(SpanGuard, u32)> = Vec::new();
            let mut expect: Vec<(String, u32)> = Vec::new();
            for step in 0..40 {
                let open = stack.is_empty() || rng.next().is_multiple_of(2);
                if open && stack.len() < 12 {
                    let name = format!("s{round}_{step}");
                    let depth = stack.len() as u32;
                    expect.push((name.clone(), depth));
                    stack.push((t.span(name), depth));
                } else {
                    stack.pop(); // guard dropped here
                }
            }
            stack.drain(..).rev().for_each(drop);
            THREAD.with(|th| assert_eq!(th.borrow().depth, 0));
            let spans = t.finished_spans();
            assert_eq!(spans.len(), expect.len());
            for (name, depth) in &expect {
                let s = spans.iter().find(|s| &s.name == name).unwrap();
                assert_eq!(s.depth, *depth, "depth mismatch for {name}");
            }
            // Interval containment: each deeper span that closed while its
            // parent was open must lie within some depth-1 span's window.
            for s in &spans {
                if s.depth == 0 {
                    continue;
                }
                let parent_ok = spans.iter().any(|p| {
                    p.depth + 1 == s.depth
                        && p.start_ns <= s.start_ns
                        && s.start_ns + s.dur_ns <= p.start_ns + p.dur_ns
                });
                assert!(parent_ok, "span {} has no enclosing parent", s.name);
            }
        }
    }

    #[test]
    fn cap_drops_and_counts() {
        let t = Arc::new(Tracer::with_cap(2));
        for i in 0..5 {
            let _g = t.span(format!("s{i}"));
        }
        assert_eq!(t.finished_spans().len(), 2);
        assert_eq!(t.dropped(), 3);
        assert!(t.to_text().contains("3 spans dropped"));
    }

    #[test]
    fn disabled_tracer_records_nothing() {
        let t = Arc::new(Tracer::new());
        t.set_enabled(false);
        {
            let _g = t.span("ghost");
        }
        assert!(t.finished_spans().is_empty());
    }

    #[test]
    fn chrome_json_parses_and_has_events() {
        let t = Arc::new(Tracer::new());
        {
            let _a = t.span("phase \"x\"");
            let _b = t.span("sub");
        }
        let text = t.to_chrome_json();
        let v = crate::json::parse(&text).expect("chrome trace must be valid JSON");
        let events = v.get("traceEvents").unwrap().as_arr().unwrap();
        assert_eq!(events.len(), 2);
        for e in events {
            assert_eq!(e.get("ph").unwrap().as_str(), Some("X"));
            assert!(e.get("ts").unwrap().as_num().is_some());
            assert!(e.get("dur").unwrap().as_num().is_some());
        }
        assert!(events.iter().any(|e| e.get("name").unwrap().as_str() == Some("phase \"x\"")));
    }
}
