//! Process-memory introspection: peak and current RSS.
//!
//! On Linux the kernel already maintains the high-water mark (`VmHWM` in
//! `/proc/self/status`), so sampling is one small file read with no
//! syscall tricks and no background thread. On other platforms the
//! functions return `None` and every consumer degrades to omitting the
//! `obs.mem.*` gauges — a graceful no-op rather than a porting burden.

/// Peak resident-set size of this process in kilobytes (`VmHWM`), or
/// `None` off Linux / when procfs is unavailable.
pub fn peak_rss_kb() -> Option<u64> {
    status_field("VmHWM:")
}

/// Current resident-set size in kilobytes (`VmRSS`), or `None` off Linux.
pub fn current_rss_kb() -> Option<u64> {
    status_field("VmRSS:")
}

#[cfg(target_os = "linux")]
fn status_field(field: &str) -> Option<u64> {
    let status = std::fs::read_to_string("/proc/self/status").ok()?;
    parse_status_field(&status, field)
}

#[cfg(not(target_os = "linux"))]
fn status_field(_field: &str) -> Option<u64> {
    None
}

/// Extract `<field> <n> kB` from a `/proc/self/status` body. Kept
/// platform-independent so the parser is testable everywhere.
fn parse_status_field(status: &str, field: &str) -> Option<u64> {
    status
        .lines()
        .find(|l| l.starts_with(field))?
        .split_ascii_whitespace()
        .nth(1)?
        .parse()
        .ok()
}

/// Record the `obs.mem.peak_rss_kb` / `obs.mem.current_rss_kb` gauges
/// into `snap` (the snapshot a `--stats` emitter is about to print).
/// Gauges are used because RSS is a level, not a monotone count; `obsdiff`
/// skips gauges by default, so the machine-dependent values never trip
/// the counter-determinism gates.
pub fn stamp_rss(snap: &mut crate::MetricsSnapshot) {
    if let Some(kb) = peak_rss_kb() {
        snap.gauges.insert("obs.mem.peak_rss_kb".into(), kb as i64);
    }
    if let Some(kb) = current_rss_kb() {
        snap.gauges.insert("obs.mem.current_rss_kb".into(), kb as i64);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parser_reads_kb_fields() {
        let body = "Name:\tx\nVmRSS:\t  123 kB\nVmHWM:\t  456 kB\n";
        assert_eq!(parse_status_field(body, "VmRSS:"), Some(123));
        assert_eq!(parse_status_field(body, "VmHWM:"), Some(456));
        assert_eq!(parse_status_field(body, "VmSwap:"), None);
        assert_eq!(parse_status_field("VmHWM:\tgarbage kB\n", "VmHWM:"), None);
    }

    #[cfg(target_os = "linux")]
    #[test]
    fn linux_reports_a_nonzero_peak_at_least_current() {
        let peak = peak_rss_kb().expect("procfs available");
        let cur = current_rss_kb().expect("procfs available");
        assert!(peak > 0 && peak >= cur);
        let mut snap = crate::MetricsSnapshot::default();
        stamp_rss(&mut snap);
        assert_eq!(snap.gauges["obs.mem.peak_rss_kb"], peak as i64);
    }
}
