//! Process-memory introspection: peak and current RSS.
//!
//! On Linux the kernel already maintains the high-water mark (`VmHWM` in
//! `/proc/self/status`), so sampling is one small file read with no
//! syscall tricks and no background thread. On other platforms the
//! functions return `None` and every consumer degrades to omitting the
//! `obs.mem.*` gauges — a graceful no-op rather than a porting burden.

/// Peak resident-set size of this process in kilobytes (`VmHWM`), or
/// `None` off Linux / when procfs is unavailable.
pub fn peak_rss_kb() -> Option<u64> {
    rss_pair().0
}

/// Current resident-set size in kilobytes (`VmRSS`), or `None` off Linux.
pub fn current_rss_kb() -> Option<u64> {
    rss_pair().1
}

/// `(VmHWM, VmRSS)` from one read of `/proc/self/status`. Both fields
/// come from the same snapshot: the old per-field helper read and parsed
/// the whole file once per field, doubling the procfs traffic per stamp
/// and letting the two values disagree about the moment they describe.
#[cfg(target_os = "linux")]
fn rss_pair() -> (Option<u64>, Option<u64>) {
    match std::fs::read_to_string("/proc/self/status") {
        Ok(status) => parse_rss_pair(&status),
        Err(_) => (None, None),
    }
}

#[cfg(not(target_os = "linux"))]
fn rss_pair() -> (Option<u64>, Option<u64>) {
    (None, None)
}

/// Extract `(VmHWM, VmRSS)` from a `/proc/self/status` body in a single
/// pass. Kept platform-independent so the parser is testable everywhere.
fn parse_rss_pair(status: &str) -> (Option<u64>, Option<u64>) {
    let (mut peak, mut cur) = (None, None);
    for line in status.lines() {
        if line.starts_with("VmHWM:") {
            peak = parse_kb_value(line);
        } else if line.starts_with("VmRSS:") {
            cur = parse_kb_value(line);
        }
        if peak.is_some() && cur.is_some() {
            break;
        }
    }
    (peak, cur)
}

/// Parse the `<n>` out of a `Vm...:\t  <n> kB` status line.
fn parse_kb_value(line: &str) -> Option<u64> {
    line.split_ascii_whitespace().nth(1)?.parse().ok()
}

/// Reset the kernel's RSS high-water mark (`VmHWM`) to the current RSS by
/// writing `5` to `/proc/self/clear_refs`, so a caller can measure the
/// peak of one phase rather than of the whole process lifetime. Returns
/// `false` off Linux or when the write is not permitted (some sandboxes
/// mount procfs read-only); callers must treat the peak as
/// process-lifetime when it fails.
pub fn reset_peak_rss() -> bool {
    #[cfg(target_os = "linux")]
    {
        std::fs::write("/proc/self/clear_refs", "5").is_ok()
    }
    #[cfg(not(target_os = "linux"))]
    {
        false
    }
}

/// Record the `obs.mem.peak_rss_kb` / `obs.mem.current_rss_kb` gauges
/// into `snap` (the snapshot a `--stats` emitter is about to print).
/// Gauges are used because RSS is a level, not a monotone count; `obsdiff`
/// skips gauges by default, so the machine-dependent values never trip
/// the counter-determinism gates. One procfs read serves both gauges.
pub fn stamp_rss(snap: &mut crate::MetricsSnapshot) {
    let (peak, cur) = rss_pair();
    if let Some(kb) = peak {
        snap.gauges.insert("obs.mem.peak_rss_kb".into(), kb as i64);
    }
    if let Some(kb) = cur {
        snap.gauges.insert("obs.mem.current_rss_kb".into(), kb as i64);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parser_reads_kb_fields() {
        // Field order in /proc/self/status is VmHWM before VmRSS on real
        // kernels, but the single-pass parser must not depend on it.
        let body = "Name:\tx\nVmRSS:\t  123 kB\nVmHWM:\t  456 kB\n";
        assert_eq!(parse_rss_pair(body), (Some(456), Some(123)));
        let kernel_order = "Name:\tx\nVmHWM:\t  456 kB\nVmRSS:\t  123 kB\nVmSwap:\t 0 kB\n";
        assert_eq!(parse_rss_pair(kernel_order), (Some(456), Some(123)));
        assert_eq!(parse_rss_pair("Name:\tx\n"), (None, None));
        assert_eq!(parse_rss_pair("VmHWM:\tgarbage kB\nVmRSS:\t 9 kB\n"), (None, Some(9)));
    }

    #[test]
    fn stamp_is_one_snapshot() {
        // Regression for the double-read: both gauges must come from one
        // parse of the same status body, so a body carrying only one of
        // the two fields yields exactly that gauge.
        assert_eq!(parse_rss_pair("VmHWM:\t 77 kB\n"), (Some(77), None));
        assert_eq!(parse_rss_pair("VmRSS:\t 33 kB\n"), (None, Some(33)));
    }

    #[cfg(target_os = "linux")]
    #[test]
    fn linux_reports_a_nonzero_peak_at_least_current() {
        // One snapshot: within a single read of /proc/self/status the
        // high-water mark can never trail the current RSS. (Two separate
        // reads — the pre-fix behaviour — can see RSS grow past a stale
        // peak, which is precisely why `stamp_rss` reads once now.)
        let (peak, cur) = rss_pair();
        let peak = peak.expect("procfs available");
        let cur = cur.expect("procfs available");
        assert!(
            peak > 0 && peak >= cur,
            "peak {peak} kB < current {cur} kB in one snapshot"
        );
        let mut snap = crate::MetricsSnapshot::default();
        stamp_rss(&mut snap);
        assert!(snap.gauges["obs.mem.peak_rss_kb"] as u64 >= peak, "VmHWM is monotone");
        assert!(snap.gauges.contains_key("obs.mem.current_rss_kb"));
        // Resetting the high-water mark is best-effort (read-only procfs
        // mounts refuse the write); either way the pair must stay readable.
        let _ = reset_peak_rss();
        let (p2, c2) = rss_pair();
        assert!(p2.is_some() && c2.is_some());
    }
}
