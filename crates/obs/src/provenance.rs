//! Decision provenance: an auditable record of every back-end decision an
//! HLI answer justified.
//!
//! The metrics registry says *how many* dependence tests were made
//! (`backend.ddg.*`); it cannot say *which* reorder each `HLI_GetEquivAcc`
//! answer enabled, nor which CSE entry a `HLI_GetCallAcc` answer kept
//! alive across a call. This module closes that gap: optimizing passes
//! append one [`DecisionRecord`] per decision — applied or blocked, with
//! the chain of query ids that produced the verdict — into a lock-free
//! sink, exportable as JSONL (one record per line, each line valid JSON
//! for [`crate::json::parse`]) and as aligned text.
//!
//! Query ids come from one process-wide monotonic counter
//! ([`next_query_id`]); `hli_core::query::HliQuery` stamps an id on every
//! basic query answered while a sink is active, so a record's
//! `hli_queries` cites the exact query chain behind the verdict.
//!
//! Scoping mirrors [`crate::metrics`]: there is one process-global sink
//! ([`global`]), **disabled by default** so plain runs pay one relaxed
//! atomic load per pass entry; tests and the harness can install a
//! thread-scoped sink with [`scoped`], which shadows the global one on
//! that thread. Every `record` also mirrors a `provenance.<pass>.<verdict>`
//! counter into the current metrics registry, so decision counts show up
//! in `--stats` snapshots and can be diffed by `obsdiff`.

use crate::json::{escape_into, Json};
use std::fmt::Write as _;
use std::sync::atomic::{AtomicBool, AtomicPtr, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, OnceLock};

/// The id of one basic HLI query, stamped by [`next_query_id`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct QueryRef(pub u64);

static QUERY_ID: AtomicU64 = AtomicU64::new(1);

thread_local! {
    static SCOPED_IDS: std::cell::RefCell<Vec<Arc<AtomicU64>>> =
        const { std::cell::RefCell::new(Vec::new()) };
}

/// Install `src` as this thread's query-id source until the guard drops.
///
/// This is the deterministic-parallelism hook: a worker running one
/// function's compilation under [`crate::shard::capture`] stamps ids from
/// a private counter starting at 1, and the merge step renumbers them into
/// the parent's id space with [`claim_ids`] — in a stable function order —
/// so `--provenance-out` is byte-identical no matter how many workers ran.
pub fn scoped_ids(src: Arc<AtomicU64>) -> ScopedIds {
    SCOPED_IDS.with(|s| s.borrow_mut().push(src));
    ScopedIds { _priv: () }
}

/// RAII guard returned by [`scoped_ids`].
pub struct ScopedIds {
    _priv: (),
}

impl Drop for ScopedIds {
    fn drop(&mut self) {
        SCOPED_IDS.with(|s| {
            s.borrow_mut().pop();
        });
    }
}

/// Allocate the next query id (monotonic, starts at 1) from the innermost
/// [`scoped_ids`] source on this thread, or the process-wide counter.
pub fn next_query_id() -> QueryRef {
    let scoped = SCOPED_IDS.with(|s| s.borrow().last().cloned());
    match scoped {
        Some(src) => QueryRef(src.fetch_add(1, Ordering::Relaxed)),
        None => QueryRef(QUERY_ID.fetch_add(1, Ordering::Relaxed)),
    }
}

/// Reserve `n` consecutive ids from this thread's current id source and
/// return the offset to add to a 1-based local id to land it inside the
/// reserved block. Claiming shards in a stable order reproduces exactly
/// the numbering a sequential run would have produced.
pub fn claim_ids(n: u64) -> u64 {
    let scoped = SCOPED_IDS.with(|s| s.borrow().last().cloned());
    let first = match scoped {
        Some(src) => src.fetch_add(n, Ordering::Relaxed),
        None => QUERY_ID.fetch_add(n, Ordering::Relaxed),
    };
    first - 1
}

/// Exclusive upper bound on ids issued so far: every stamped id is in
/// `1..query_id_watermark()`. Tests use windows of this to check that
/// records cite ids that actually occurred.
pub fn query_id_watermark() -> u64 {
    QUERY_ID.load(Ordering::Relaxed)
}

/// Allocate a causal span id. Span ids share the query-id space (one
/// monotonic counter covers both), so the single block-reservation offset
/// [`crate::shard::commit`] computes renumbers a shard's query ids *and*
/// its span ids uniformly — `--provenance-out` stays byte-identical across
/// `--jobs` values without a second counter to keep in sync. `0` is never
/// issued and means "no span" on a [`DecisionRecord`].
pub fn next_span_id() -> u64 {
    next_query_id().0
}

/// The outcome of one optimization decision.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Verdict {
    /// The optimization was performed (load hoisted, entry kept across a
    /// call, reorder permitted, ...).
    Applied,
    /// The optimization was rejected, with the analyzer's reason.
    Blocked { reason: String },
}

impl Verdict {
    pub fn is_applied(&self) -> bool {
        matches!(self, Verdict::Applied)
    }
}

/// One audited back-end decision.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DecisionRecord {
    /// Which decision point: `sched.pair`, `sched.call`, `sched.block`,
    /// `cse.call`, `licm.hoist`, `unroll.loop`, `maintain.*` (namespace
    /// documented in DESIGN.md).
    pub pass: String,
    /// Compilation unit (function) the decision was made in.
    pub function: String,
    /// HLI region the decided item belongs to, when known.
    pub region_id: Option<u32>,
    /// Source line (or program order) of the RTL reference decided about.
    pub order: u32,
    /// Causal span id from [`next_span_id`] linking this record to every
    /// other record made under the same decision context (the block-DDG
    /// build for `sched.*`, the call site for `cse.call`, the candidate
    /// for `licm.hoist`, the loop for `unroll.loop`). `0` means no span
    /// (maintenance and quarantine records). Renumbered together with
    /// query ids on shard commit, so it is `--jobs`-invariant.
    pub span: u64,
    /// Benefit the pass estimated *at decision time*, in model cycles
    /// (0 for blocked decisions and passes without an estimate model;
    /// the per-pass formulas are documented in DESIGN.md). `obsreport`
    /// joins this against the measured per-function cycle delta.
    pub est_cycles: u64,
    /// The query chain that produced the verdict, in issue order.
    pub hli_queries: Vec<QueryRef>,
    pub verdict: Verdict,
}

impl DecisionRecord {
    /// One JSONL line (no trailing newline); always parses back with
    /// [`DecisionRecord::parse_line`] and with [`crate::json::parse`].
    pub fn to_json_line(&self) -> String {
        let mut s = String::from("{\"pass\": ");
        escape_into(&mut s, &self.pass);
        s.push_str(", \"function\": ");
        escape_into(&mut s, &self.function);
        s.push_str(", \"region\": ");
        match self.region_id {
            Some(r) => {
                let _ = write!(s, "{r}");
            }
            None => s.push_str("null"),
        }
        let _ = write!(s, ", \"order\": {}", self.order);
        let _ = write!(s, ", \"span\": {}, \"est\": {}", self.span, self.est_cycles);
        s.push_str(", \"queries\": [");
        for (i, q) in self.hli_queries.iter().enumerate() {
            if i > 0 {
                s.push_str(", ");
            }
            let _ = write!(s, "{}", q.0);
        }
        s.push_str("], \"verdict\": ");
        match &self.verdict {
            Verdict::Applied => s.push_str("\"applied\""),
            Verdict::Blocked { reason } => {
                s.push_str("\"blocked\", \"reason\": ");
                escape_into(&mut s, reason);
            }
        }
        s.push('}');
        s
    }

    /// Parse one JSONL line back into a record (the inverse of
    /// [`DecisionRecord::to_json_line`]).
    pub fn parse_line(line: &str) -> Result<DecisionRecord, String> {
        let v = crate::json::parse(line)?;
        let str_field = |k: &str| -> Result<String, String> {
            v.get(k)
                .and_then(Json::as_str)
                .map(str::to_owned)
                .ok_or_else(|| format!("missing string field `{k}`"))
        };
        let num_field = |k: &str| -> Result<f64, String> {
            v.get(k)
                .and_then(Json::as_num)
                .ok_or_else(|| format!("missing number field `{k}`"))
        };
        let region_id = match v.get("region") {
            Some(Json::Null) => None,
            Some(n) => Some(n.as_num().ok_or("`region` must be a number or null")? as u32),
            None => return Err("missing field `region`".into()),
        };
        let queries = v
            .get("queries")
            .and_then(Json::as_arr)
            .ok_or("missing array field `queries`")?
            .iter()
            .map(|q| q.as_num().map(|n| QueryRef(n as u64)).ok_or("non-numeric query id"))
            .collect::<Result<Vec<_>, _>>()?;
        let verdict = match str_field("verdict")?.as_str() {
            "applied" => Verdict::Applied,
            "blocked" => Verdict::Blocked { reason: str_field("reason")? },
            other => return Err(format!("unknown verdict `{other}`")),
        };
        // `span`/`est` were added in PR 7; lines written before then lack
        // them and parse as 0 ("no span" / "no estimate").
        let opt_u64 =
            |k: &str| -> u64 { v.get(k).and_then(Json::as_num).map(|n| n as u64).unwrap_or(0) };
        Ok(DecisionRecord {
            pass: str_field("pass")?,
            function: str_field("function")?,
            region_id,
            order: num_field("order")? as u32,
            span: opt_u64("span"),
            est_cycles: opt_u64("est"),
            hli_queries: queries,
            verdict,
        })
    }
}

/// Render records as JSONL, one line each, in slice order.
pub fn to_jsonl(records: &[DecisionRecord]) -> String {
    let mut out = String::new();
    for r in records {
        out.push_str(&r.to_json_line());
        out.push('\n');
    }
    out
}

/// Human-readable rendering, one record per line.
pub fn to_text(records: &[DecisionRecord]) -> String {
    let mut out = String::new();
    for r in records {
        let region = r.region_id.map(|x| format!("r{x}")).unwrap_or_else(|| "-".into());
        let verdict = match &r.verdict {
            Verdict::Applied => "applied".to_string(),
            Verdict::Blocked { reason } => format!("blocked ({reason})"),
        };
        let qids: Vec<String> = r.hli_queries.iter().map(|q| q.0.to_string()).collect();
        let span = if r.span == 0 {
            "-".into()
        } else {
            format!("s{}", r.span)
        };
        let _ = writeln!(
            out,
            "{:<18} {:<16} {:>4} line {:<5} {:<6} est {:<5} [{}] {}",
            r.pass,
            r.function,
            region,
            r.order,
            span,
            r.est_cycles,
            qids.join(","),
            verdict
        );
    }
    out
}

struct Node {
    rec: DecisionRecord,
    next: *mut Node,
}

/// Lock-free append sink for decision records (a Treiber stack: one CAS
/// per record on the writer side, so instrumented passes never contend on
/// a mutex). [`ProvenanceSink::drain`] restores per-thread append order.
pub struct ProvenanceSink {
    enabled: AtomicBool,
    head: AtomicPtr<Node>,
    len: AtomicUsize,
}

// The raw node pointers are owned exclusively by the stack; records are
// plain owned data, so moving them across threads is sound.
unsafe impl Send for ProvenanceSink {}
unsafe impl Sync for ProvenanceSink {}

impl ProvenanceSink {
    /// A fresh sink, enabled (the global one is constructed disabled).
    pub fn new() -> Self {
        ProvenanceSink {
            enabled: AtomicBool::new(true),
            head: AtomicPtr::new(std::ptr::null_mut()),
            len: AtomicUsize::new(0),
        }
    }

    pub fn set_enabled(&self, on: bool) {
        self.enabled.store(on, Ordering::Relaxed);
    }

    pub fn is_enabled(&self) -> bool {
        self.enabled.load(Ordering::Relaxed)
    }

    /// Append one record (no-op when disabled). Also mirrors a
    /// `provenance.<pass>.<applied|blocked>` counter into the current
    /// metrics registry so decision counts appear in `--stats` snapshots.
    pub fn record(&self, rec: DecisionRecord) {
        if !self.is_enabled() {
            return;
        }
        let key = format!(
            "provenance.{}.{}",
            rec.pass,
            if rec.verdict.is_applied() {
                "applied"
            } else {
                "blocked"
            }
        );
        crate::metrics::cur().counter(&key).inc();
        let node = Box::into_raw(Box::new(Node { rec, next: std::ptr::null_mut() }));
        let mut head = self.head.load(Ordering::Acquire);
        loop {
            unsafe { (*node).next = head };
            match self.head.compare_exchange_weak(head, node, Ordering::AcqRel, Ordering::Acquire) {
                Ok(_) => break,
                Err(cur) => head = cur,
            }
        }
        self.len.fetch_add(1, Ordering::Relaxed);
    }

    /// Append already-accounted records (a merge of a worker shard). Unlike
    /// [`ProvenanceSink::record`] this does **not** mirror
    /// `provenance.<pass>.*` counters — the records were counted into the
    /// worker's metrics snapshot when first recorded, and that snapshot is
    /// absorbed separately; mirroring again would double-count.
    pub fn extend(&self, records: impl IntoIterator<Item = DecisionRecord>) {
        if !self.is_enabled() {
            return;
        }
        for rec in records {
            let node = Box::into_raw(Box::new(Node { rec, next: std::ptr::null_mut() }));
            let mut head = self.head.load(Ordering::Acquire);
            loop {
                unsafe { (*node).next = head };
                match self.head.compare_exchange_weak(
                    head,
                    node,
                    Ordering::AcqRel,
                    Ordering::Acquire,
                ) {
                    Ok(_) => break,
                    Err(cur) => head = cur,
                }
            }
            self.len.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Take every record appended so far. Records from a single thread
    /// come back in append order; interleaving across threads is
    /// unspecified.
    pub fn drain(&self) -> Vec<DecisionRecord> {
        let mut head = self.head.swap(std::ptr::null_mut(), Ordering::AcqRel);
        let mut out = Vec::new();
        while !head.is_null() {
            let node = unsafe { Box::from_raw(head) };
            head = node.next;
            out.push(node.rec);
        }
        self.len.fetch_sub(out.len(), Ordering::Relaxed);
        out.reverse();
        out
    }

    /// Records currently buffered.
    pub fn len(&self) -> usize {
        self.len.load(Ordering::Relaxed)
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl Default for ProvenanceSink {
    fn default() -> Self {
        Self::new()
    }
}

impl Drop for ProvenanceSink {
    fn drop(&mut self) {
        let _ = self.drain();
    }
}

static GLOBAL: OnceLock<Arc<ProvenanceSink>> = OnceLock::new();

/// The process-global sink. Starts **disabled**; the harness enables it
/// when `--provenance-out` is passed.
pub fn global() -> Arc<ProvenanceSink> {
    GLOBAL
        .get_or_init(|| {
            let s = ProvenanceSink::new();
            s.set_enabled(false);
            Arc::new(s)
        })
        .clone()
}

thread_local! {
    static SCOPED: std::cell::RefCell<Vec<Arc<ProvenanceSink>>> =
        const { std::cell::RefCell::new(Vec::new()) };
}

/// Install `sink` as this thread's current sink until the guard drops
/// (shadows the global one, including its enabled flag).
pub fn scoped(sink: Arc<ProvenanceSink>) -> ScopedSink {
    SCOPED.with(|s| s.borrow_mut().push(sink));
    ScopedSink { _priv: () }
}

/// RAII guard returned by [`scoped`].
pub struct ScopedSink {
    _priv: (),
}

impl Drop for ScopedSink {
    fn drop(&mut self) {
        SCOPED.with(|s| {
            s.borrow_mut().pop();
        });
    }
}

/// The sink instrumented code should append to right now: the innermost
/// thread-scoped sink, else the global one — and only if it is enabled.
/// `None` means provenance is off and passes should skip record
/// construction entirely.
pub fn active() -> Option<Arc<ProvenanceSink>> {
    let sink = SCOPED.with(|s| s.borrow().last().cloned()).unwrap_or_else(global);
    sink.is_enabled().then_some(sink)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(pass: &str, verdict: Verdict) -> DecisionRecord {
        DecisionRecord {
            pass: pass.into(),
            function: "main".into(),
            region_id: Some(2),
            order: 14,
            span: 5,
            est_cycles: 3,
            hli_queries: vec![QueryRef(3), QueryRef(4)],
            verdict,
        }
    }

    #[test]
    fn sink_preserves_single_thread_order() {
        let s = ProvenanceSink::new();
        s.record(rec("a", Verdict::Applied));
        s.record(rec("b", Verdict::Applied));
        s.record(rec("c", Verdict::Blocked { reason: "x".into() }));
        assert_eq!(s.len(), 3);
        let out = s.drain();
        assert_eq!(
            out.iter().map(|r| r.pass.as_str()).collect::<Vec<_>>(),
            vec!["a", "b", "c"]
        );
        assert!(s.is_empty());
    }

    #[test]
    fn disabled_sink_records_nothing() {
        let s = ProvenanceSink::new();
        s.set_enabled(false);
        s.record(rec("a", Verdict::Applied));
        assert!(s.is_empty());
    }

    #[test]
    fn concurrent_pushes_lose_nothing() {
        let s = Arc::new(ProvenanceSink::new());
        std::thread::scope(|scope| {
            for t in 0..4 {
                let s = s.clone();
                scope.spawn(move || {
                    for i in 0..200 {
                        s.record(DecisionRecord {
                            pass: format!("t{t}"),
                            function: format!("f{i}"),
                            region_id: None,
                            order: i,
                            span: 0,
                            est_cycles: 0,
                            hli_queries: vec![],
                            verdict: Verdict::Applied,
                        });
                    }
                });
            }
        });
        let out = s.drain();
        assert_eq!(out.len(), 800);
        // Per-thread order survived the Treiber stack + reverse.
        for t in 0..4 {
            let orders: Vec<u32> =
                out.iter().filter(|r| r.pass == format!("t{t}")).map(|r| r.order).collect();
            assert_eq!(orders, (0..200).collect::<Vec<_>>());
        }
    }

    #[test]
    fn jsonl_roundtrips_including_escapes() {
        let r = DecisionRecord {
            pass: "cse.call".into(),
            function: "we\"ird\\name\n".into(),
            region_id: None,
            order: 7,
            span: 12,
            est_cycles: 2,
            hli_queries: vec![QueryRef(1), QueryRef(99)],
            verdict: Verdict::Blocked { reason: "call may\tmodify".into() },
        };
        let line = r.to_json_line();
        assert!(crate::json::parse(&line).is_ok(), "line must be valid JSON: {line}");
        assert_eq!(DecisionRecord::parse_line(&line).unwrap(), r);
        let a = rec("sched.pair", Verdict::Applied);
        assert_eq!(DecisionRecord::parse_line(&a.to_json_line()).unwrap(), a);
    }

    #[test]
    fn parse_defaults_span_and_est_for_pre_pr7_lines() {
        // A line written before `span`/`est` existed still parses, with 0s.
        let old = "{\"pass\": \"sched.pair\", \"function\": \"f\", \"region\": 1, \
                   \"order\": 3, \"queries\": [7], \"verdict\": \"applied\"}";
        let r = DecisionRecord::parse_line(old).unwrap();
        assert_eq!(r.span, 0);
        assert_eq!(r.est_cycles, 0);
        assert_eq!(r.hli_queries, vec![QueryRef(7)]);
    }

    #[test]
    fn span_ids_share_the_query_id_space() {
        let src = Arc::new(AtomicU64::new(1));
        let _g = scoped_ids(src);
        let q = next_query_id();
        let s = next_span_id();
        let q2 = next_query_id();
        assert_eq!(s, q.0 + 1, "span ids interleave in the same counter");
        assert_eq!(q2.0, s + 1);
    }

    #[test]
    fn parse_rejects_malformed_lines() {
        for bad in [
            "",
            "{}",
            "{\"pass\": \"x\"}",
            "{\"pass\": 1, \"function\": \"f\", \"region\": null, \"order\": 0, \"queries\": [], \"verdict\": \"applied\"}",
            "{\"pass\": \"x\", \"function\": \"f\", \"region\": null, \"order\": 0, \"queries\": [], \"verdict\": \"maybe\"}",
        ] {
            assert!(DecisionRecord::parse_line(bad).is_err(), "`{bad}` must not parse");
        }
    }

    #[test]
    fn scoped_sink_shadows_global() {
        let local = Arc::new(ProvenanceSink::new());
        {
            let _g = scoped(local.clone());
            active().expect("scoped sink is active").record(rec("x", Verdict::Applied));
        }
        assert_eq!(local.len(), 1);
        assert!(global().is_empty(), "global sink untouched by scoped recording");
        // With no scope, the disabled global sink means provenance is off.
        assert!(active().is_none() || global().is_enabled());
    }

    #[test]
    fn query_ids_are_monotonic() {
        let a = next_query_id();
        let b = next_query_id();
        assert!(b.0 > a.0);
        assert!(query_id_watermark() > b.0);
    }

    #[test]
    fn record_mirrors_metrics_counters() {
        let reg = Arc::new(crate::metrics::MetricsRegistry::new());
        let _m = crate::metrics::scoped(reg.clone());
        let s = ProvenanceSink::new();
        s.record(rec("licm.hoist", Verdict::Applied));
        s.record(rec("licm.hoist", Verdict::Blocked { reason: "conflict".into() }));
        let snap = reg.snapshot();
        assert_eq!(snap.counter("provenance.licm.hoist.applied"), 1);
        assert_eq!(snap.counter("provenance.licm.hoist.blocked"), 1);
    }

    #[test]
    fn text_export_mentions_every_record() {
        let recs = vec![
            rec("a.b", Verdict::Applied),
            rec("c.d", Verdict::Blocked { reason: "r".into() }),
        ];
        let text = to_text(&recs);
        assert!(text.contains("a.b") && text.contains("c.d") && text.contains("blocked (r)"));
        let jsonl = to_jsonl(&recs);
        assert_eq!(jsonl.lines().count(), 2);
    }
}
