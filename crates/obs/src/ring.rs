//! Bounded ring buffer for high-frequency debug events (per-instruction,
//! per-query). **Off by default**: when disabled, `push` costs a single
//! relaxed atomic load, so leaving call sites in hot paths is free.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Mutex;

/// A single debug event: a static category plus a formatted payload.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Event {
    pub category: &'static str,
    pub message: String,
    /// Monotonic sequence number across the ring's lifetime.
    pub seq: u64,
}

/// Fixed-capacity event ring; oldest events are overwritten when full.
#[derive(Debug)]
pub struct EventRing {
    enabled: AtomicBool,
    seq: AtomicU64,
    dropped: AtomicU64,
    buf: Mutex<VecDeque<Event>>,
    cap: usize,
}

impl EventRing {
    pub fn new(cap: usize) -> Self {
        EventRing {
            enabled: AtomicBool::new(false),
            seq: AtomicU64::new(0),
            dropped: AtomicU64::new(0),
            buf: Mutex::new(VecDeque::with_capacity(cap.min(1024))),
            cap: cap.max(1),
        }
    }

    pub fn set_enabled(&self, on: bool) {
        self.enabled.store(on, Ordering::Relaxed);
    }

    pub fn is_enabled(&self) -> bool {
        self.enabled.load(Ordering::Relaxed)
    }

    /// Record an event if enabled. The message closure only runs when the
    /// ring is on, so formatting costs nothing in the disabled case.
    pub fn push_with(&self, category: &'static str, message: impl FnOnce() -> String) {
        if !self.is_enabled() {
            return;
        }
        let seq = self.seq.fetch_add(1, Ordering::Relaxed);
        let ev = Event { category, message: message(), seq };
        let mut buf = self.buf.lock().unwrap();
        if buf.len() == self.cap {
            buf.pop_front();
            self.dropped.fetch_add(1, Ordering::Relaxed);
        }
        buf.push_back(ev);
    }

    /// Events overwritten because the ring was full (mirrors
    /// [`crate::trace::Tracer::dropped`]); surfaced in `--stats` output as
    /// the `obs.ring.dropped` counter.
    pub fn dropped(&self) -> u64 {
        self.dropped.load(Ordering::Relaxed)
    }

    /// Take all buffered events, oldest first, leaving the ring empty.
    pub fn drain(&self) -> Vec<Event> {
        self.buf.lock().unwrap().drain(..).collect()
    }

    pub fn len(&self) -> usize {
        self.buf.lock().unwrap().len()
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Total events ever pushed (including ones already overwritten).
    pub fn total_pushed(&self) -> u64 {
        self.seq.load(Ordering::Relaxed)
    }
}

impl Default for EventRing {
    fn default() -> Self {
        Self::new(4096)
    }
}

static GLOBAL: std::sync::OnceLock<std::sync::Arc<EventRing>> = std::sync::OnceLock::new();

/// The process-global debug ring (disabled until someone calls
/// `set_enabled(true)`, e.g. `hlicc --debug-events`).
pub fn global() -> std::sync::Arc<EventRing> {
    GLOBAL.get_or_init(|| std::sync::Arc::new(EventRing::default())).clone()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_ring_records_nothing_and_skips_formatting() {
        let ring = EventRing::new(8);
        let mut formatted = false;
        ring.push_with("ddg", || {
            formatted = true;
            "never".into()
        });
        assert!(!formatted);
        assert!(ring.is_empty());
        assert_eq!(ring.total_pushed(), 0);
    }

    #[test]
    fn ring_overwrites_oldest_at_capacity() {
        let ring = EventRing::new(3);
        ring.set_enabled(true);
        for i in 0..5 {
            ring.push_with("exec", || format!("insn {i}"));
        }
        let evs = ring.drain();
        assert_eq!(ring.total_pushed(), 5);
        assert_eq!(ring.dropped(), 2);
        assert_eq!(evs.len(), 3);
        assert_eq!(
            evs.iter().map(|e| e.message.as_str()).collect::<Vec<_>>(),
            vec!["insn 2", "insn 3", "insn 4"]
        );
        assert_eq!(evs[0].seq, 2);
        assert!(ring.is_empty());
    }
}
