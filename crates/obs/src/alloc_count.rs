//! Optional counting global allocator (feature `count-alloc`).
//!
//! When the `count-alloc` feature is enabled, [`CountingAlloc`] is
//! installed as the process global allocator: every `alloc`/`dealloc`
//! delegates to [`std::alloc::System`] and bumps a handful of relaxed
//! atomics — call counts, cumulative bytes, live bytes and the live-bytes
//! high-water mark. `--stats` emitters surface them as `obs.mem.alloc.*`
//! gauges (machine/run dependent, so gauges: `obsdiff` skips them by
//! default and the counter-determinism gates never see them).
//!
//! Without the feature nothing is registered and [`active`] is `false`;
//! the module still compiles so consumers need no `cfg` of their own —
//! [`stats`] just reports zeros.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

static ALLOC_CALLS: AtomicU64 = AtomicU64::new(0);
static DEALLOC_CALLS: AtomicU64 = AtomicU64::new(0);
static BYTES_TOTAL: AtomicU64 = AtomicU64::new(0);
static BYTES_LIVE: AtomicU64 = AtomicU64::new(0);
static BYTES_LIVE_PEAK: AtomicU64 = AtomicU64::new(0);

/// A counting wrapper around the system allocator.
pub struct CountingAlloc;

// SAFETY: pure delegation to `System`; the atomics add no aliasing.
unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        let p = System.alloc(layout);
        if !p.is_null() {
            note_alloc(layout.size() as u64);
        }
        p
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout);
        note_dealloc(layout.size() as u64);
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        let p = System.realloc(ptr, layout, new_size);
        if !p.is_null() {
            note_dealloc(layout.size() as u64);
            note_alloc(new_size as u64);
        }
        p
    }
}

fn note_alloc(size: u64) {
    ALLOC_CALLS.fetch_add(1, Ordering::Relaxed);
    BYTES_TOTAL.fetch_add(size, Ordering::Relaxed);
    let live = BYTES_LIVE.fetch_add(size, Ordering::Relaxed) + size;
    BYTES_LIVE_PEAK.fetch_max(live, Ordering::Relaxed);
}

fn note_dealloc(size: u64) {
    DEALLOC_CALLS.fetch_add(1, Ordering::Relaxed);
    BYTES_LIVE.fetch_sub(size, Ordering::Relaxed);
}

#[cfg(feature = "count-alloc")]
#[global_allocator]
static COUNTING_ALLOC: CountingAlloc = CountingAlloc;

/// Whether the counting allocator is installed in this build.
pub const fn active() -> bool {
    cfg!(feature = "count-alloc")
}

/// Frozen allocator counters (all zero when [`active`] is false).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct AllocStats {
    pub alloc_calls: u64,
    pub dealloc_calls: u64,
    /// Cumulative bytes ever allocated.
    pub bytes_total: u64,
    /// Bytes currently live.
    pub bytes_live: u64,
    /// High-water mark of live heap bytes.
    pub bytes_live_peak: u64,
}

/// Read the current allocator counters.
pub fn stats() -> AllocStats {
    AllocStats {
        alloc_calls: ALLOC_CALLS.load(Ordering::Relaxed),
        dealloc_calls: DEALLOC_CALLS.load(Ordering::Relaxed),
        bytes_total: BYTES_TOTAL.load(Ordering::Relaxed),
        bytes_live: BYTES_LIVE.load(Ordering::Relaxed),
        bytes_live_peak: BYTES_LIVE_PEAK.load(Ordering::Relaxed),
    }
}

/// Record `obs.mem.alloc.*` gauges into a snapshot about to be printed.
/// No-op when the feature is off, so default builds emit no misleading
/// zero rows.
pub fn stamp_alloc(snap: &mut crate::MetricsSnapshot) {
    if !active() {
        return;
    }
    let s = stats();
    snap.gauges.insert("obs.mem.alloc.calls".into(), s.alloc_calls as i64);
    snap.gauges.insert("obs.mem.alloc.bytes_total".into(), s.bytes_total as i64);
    snap.gauges.insert("obs.mem.alloc.bytes_live".into(), s.bytes_live as i64);
    snap.gauges
        .insert("obs.mem.alloc.bytes_live_peak".into(), s.bytes_live_peak as i64);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stamp_matches_feature_state() {
        let mut snap = crate::MetricsSnapshot::default();
        stamp_alloc(&mut snap);
        if active() {
            // With the allocator installed, this test body itself
            // allocates, so every counter is live.
            assert!(stats().alloc_calls > 0);
            assert!(stats().bytes_live_peak >= stats().bytes_live);
            assert!(snap.gauges.contains_key("obs.mem.alloc.bytes_live_peak"));
        } else {
            assert_eq!(stats(), AllocStats::default());
            assert!(snap.gauges.is_empty());
        }
    }

    #[cfg(feature = "count-alloc")]
    #[test]
    fn allocations_move_the_counters() {
        let before = stats();
        let v: Vec<u8> = Vec::with_capacity(1 << 16);
        let mid = stats();
        assert!(mid.bytes_live >= before.bytes_live + (1 << 16));
        drop(v);
        let after = stats();
        assert!(after.dealloc_calls > mid.dealloc_calls.saturating_sub(1));
        assert!(after.bytes_live_peak >= before.bytes_live + (1 << 16));
    }
}
