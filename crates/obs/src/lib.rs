//! # hli-obs — observability for the whole compiler pipeline
//!
//! The paper's evaluation is counter-driven: Table 2 is literally "how many
//! dependence tests did the back-end issue, and how often did each analyzer
//! answer no". This crate gives every layer of the reproduction one shared
//! way to produce such numbers — and the timing behind them — instead of
//! ad-hoc structs per pass:
//!
//! * [`trace`] — a span/phase tracer: RAII guards around named phases with
//!   wall-clock timing, nested into a trace tree, exportable as indented
//!   text and as Chrome `trace_event` JSON (loadable in `chrome://tracing`
//!   or `ui.perfetto.dev`);
//! * [`metrics`] — a registry of cheap atomic counters, gauges and
//!   power-of-two histograms keyed by dotted string names
//!   (`frontend.*`, `backend.ddg.*`, `machine.*`, `hli.query.*`), with a
//!   hand-rolled JSON emitter and mergeable snapshots;
//! * [`ring`] — a bounded ring buffer for per-instruction / per-query
//!   debug events, **off by default** so the hot paths pay one relaxed
//!   atomic load when disabled;
//! * [`provenance`] — decision provenance: a lock-free append sink of
//!   [`provenance::DecisionRecord`]s, one per back-end decision an HLI
//!   answer justified (reorder allowed, CSE entry purged, load hoisted),
//!   each citing the monotonic query ids behind the verdict; exportable
//!   as JSONL and text, off by default;
//! * [`json`] — the tiny JSON writer the emitters share, plus a minimal
//!   parser used by tests to validate emitted output without external
//!   dependencies.
//!
//! The crate is std-only by design: the build environment has no registry
//! access, and the instrumented crates must never pull a dependency tree
//! into the measurement path.
//!
//! ## Scoping model
//!
//! There is one process-global registry ([`metrics::global`]) and one
//! process-global tracer ([`trace::global`]). Code that needs per-task
//! isolation (the harness measuring one benchmark on one worker thread)
//! installs a thread-scoped registry with [`metrics::scoped`]; every
//! instrumented layer resolves [`metrics::cur`] at phase entry, so the
//! whole pipeline below that thread writes into the scoped registry. The
//! scope owner then merges its snapshot into the global registry with
//! [`metrics::MetricsRegistry::absorb`].

pub mod alloc_count;
pub mod json;
pub mod mem;
pub mod metrics;
pub mod phase;
pub mod provenance;
pub mod ring;
pub mod shard;
pub mod timing;
pub mod trace;

pub use metrics::{Counter, Gauge, Histogram, MetricsRegistry, MetricsSnapshot};
pub use provenance::{DecisionRecord, ProvenanceSink, QueryRef, Verdict};
pub use ring::EventRing;
pub use shard::{capture, capture_cfg, commit, CaptureCfg, ObsShard};
pub use trace::{span, Clock, SpanGuard, Tracer};

/// Version of every JSON artifact this workspace emits (`--stats json`
/// snapshots, the provenance JSONL header record, `BENCH_*.json` perf
/// checkpoints). Bump it when a field changes meaning or moves;
/// `obsdiff` and `perfbench --compare` refuse to diff artifacts whose
/// versions disagree, so a stale baseline fails loudly instead of
/// producing a nonsense comparison. Artifacts written before the field
/// existed are treated as version 1.
pub const SCHEMA_VERSION: u64 = 2;
