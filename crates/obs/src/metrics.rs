//! The metrics registry: atomic counters, gauges and histograms keyed by
//! dotted string names.
//!
//! Handles ([`Counter`], [`Gauge`], [`Histogram`]) are `Arc`-backed and
//! cheap to clone; instrumented code fetches them once per phase (e.g. at
//! `HliQuery::new` or at scheduler entry) and then pays one atomic RMW per
//! event. The registry itself is only locked at handle-fetch and snapshot
//! time, never on the hot path.
//!
//! Key namespace (documented in DESIGN.md): `frontend.*` for ITEMGEN /
//! TBLCONST, `backend.*` for lowering, mapping, DDG (`backend.ddg.*`),
//! scheduling and the maintenance passes, `machine.*` for the executor and
//! the two timing models, and `hli.*` for the format itself (query calls,
//! serialization sizes, maintenance operations).

use crate::json::{escape_into, push_f64};
use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

/// A monotonically increasing counter.
#[derive(Debug, Clone, Default)]
pub struct Counter(Arc<AtomicU64>);

impl Counter {
    pub fn inc(&self) {
        self.0.fetch_add(1, Ordering::Relaxed);
    }

    pub fn add(&self, n: u64) {
        if n != 0 {
            self.0.fetch_add(n, Ordering::Relaxed);
        }
    }

    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A last-write-wins signed value.
#[derive(Debug, Clone, Default)]
pub struct Gauge(Arc<AtomicI64>);

impl Gauge {
    pub fn set(&self, v: i64) {
        self.0.store(v, Ordering::Relaxed);
    }

    pub fn add(&self, d: i64) {
        self.0.fetch_add(d, Ordering::Relaxed);
    }

    pub fn get(&self) -> i64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// Power-of-two bucket histogram over `u64` observations.
///
/// Bucket `i` counts values whose bit length is `i` (bucket 0 holds the
/// value 0, bucket 1 holds 1, bucket 2 holds 2–3, ...), which is precise
/// enough for occupancy/pressure distributions at a fixed 65-slot cost.
#[derive(Debug, Clone, Default)]
pub struct Histogram(Arc<HistInner>);

#[derive(Debug)]
struct HistInner {
    count: AtomicU64,
    sum: AtomicU64,
    max: AtomicU64,
    buckets: [AtomicU64; 65],
}

impl Default for HistInner {
    fn default() -> Self {
        HistInner {
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            max: AtomicU64::new(0),
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
        }
    }
}

fn bucket_of(v: u64) -> usize {
    (64 - v.leading_zeros()) as usize
}

impl Histogram {
    pub fn observe(&self, v: u64) {
        let h = &self.0;
        h.count.fetch_add(1, Ordering::Relaxed);
        h.sum.fetch_add(v, Ordering::Relaxed);
        h.max.fetch_max(v, Ordering::Relaxed);
        h.buckets[bucket_of(v)].fetch_add(1, Ordering::Relaxed);
    }

    pub fn count(&self) -> u64 {
        self.0.count.load(Ordering::Relaxed)
    }

    fn snapshot(&self) -> HistSnapshot {
        let h = &self.0;
        let mut buckets = Vec::new();
        for (i, b) in h.buckets.iter().enumerate() {
            let n = b.load(Ordering::Relaxed);
            if n != 0 {
                // Lower bound of the bucket: 0, 1, 2, 4, 8, ...
                let lo = if i == 0 { 0 } else { 1u64 << (i - 1) };
                buckets.push((lo, n));
            }
        }
        HistSnapshot {
            count: h.count.load(Ordering::Relaxed),
            sum: h.sum.load(Ordering::Relaxed),
            max: h.max.load(Ordering::Relaxed),
            buckets,
        }
    }
}

/// Frozen histogram state.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct HistSnapshot {
    pub count: u64,
    pub sum: u64,
    pub max: u64,
    /// `(bucket lower bound, count)` for non-empty buckets, ascending.
    pub buckets: Vec<(u64, u64)>,
}

impl HistSnapshot {
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Approximate quantile: the lower bound of the power-of-two bucket
    /// holding the `q`-th observation (so `quantile(1.0)` can undershoot
    /// `max` by up to one bucket). 0 on an empty histogram.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut seen = 0u64;
        for &(lo, n) in &self.buckets {
            seen += n;
            if seen >= rank {
                return lo;
            }
        }
        self.max
    }

    pub fn p50(&self) -> u64 {
        self.quantile(0.50)
    }

    pub fn p95(&self) -> u64 {
        self.quantile(0.95)
    }

    pub fn p99(&self) -> u64 {
        self.quantile(0.99)
    }

    fn merge(&mut self, other: &HistSnapshot) {
        self.count += other.count;
        self.sum += other.sum;
        self.max = self.max.max(other.max);
        for &(lo, n) in &other.buckets {
            match self.buckets.binary_search_by_key(&lo, |b| b.0) {
                Ok(i) => self.buckets[i].1 += n,
                Err(i) => self.buckets.insert(i, (lo, n)),
            }
        }
    }
}

#[derive(Debug, Clone)]
enum Metric {
    Counter(Counter),
    Gauge(Gauge),
    Histogram(Histogram),
}

/// A registry of named metrics. One global instance exists for the
/// process; the harness additionally creates short-lived instances scoped
/// to a worker thread (see [`scoped`]).
#[derive(Debug, Default)]
pub struct MetricsRegistry {
    metrics: Mutex<BTreeMap<String, Metric>>,
}

impl MetricsRegistry {
    pub fn new() -> Self {
        Self::default()
    }

    /// Fetch-or-create the counter named `key`.
    ///
    /// Panics if `key` is already registered as a different metric kind —
    /// keys are compile-time constants in the instrumented crates, so a
    /// mismatch is a bug, not an input condition.
    pub fn counter(&self, key: &str) -> Counter {
        let mut m = self.metrics.lock().unwrap();
        match m.entry(key.to_string()).or_insert_with(|| Metric::Counter(Counter::default())) {
            Metric::Counter(c) => c.clone(),
            _ => panic!("metric `{key}` is not a counter"),
        }
    }

    /// Fetch-or-create the gauge named `key` (same kind rule as `counter`).
    pub fn gauge(&self, key: &str) -> Gauge {
        let mut m = self.metrics.lock().unwrap();
        match m.entry(key.to_string()).or_insert_with(|| Metric::Gauge(Gauge::default())) {
            Metric::Gauge(g) => g.clone(),
            _ => panic!("metric `{key}` is not a gauge"),
        }
    }

    /// Fetch-or-create the histogram named `key` (same kind rule).
    pub fn histogram(&self, key: &str) -> Histogram {
        let mut m = self.metrics.lock().unwrap();
        match m
            .entry(key.to_string())
            .or_insert_with(|| Metric::Histogram(Histogram::default()))
        {
            Metric::Histogram(h) => h.clone(),
            _ => panic!("metric `{key}` is not a histogram"),
        }
    }

    /// Freeze current values into a snapshot (deterministic key order).
    pub fn snapshot(&self) -> MetricsSnapshot {
        let m = self.metrics.lock().unwrap();
        let mut snap = MetricsSnapshot::default();
        for (k, v) in m.iter() {
            match v {
                Metric::Counter(c) => {
                    snap.counters.insert(k.clone(), c.get());
                }
                Metric::Gauge(g) => {
                    snap.gauges.insert(k.clone(), g.get());
                }
                Metric::Histogram(h) => {
                    snap.histograms.insert(k.clone(), h.snapshot());
                }
            }
        }
        snap
    }

    /// Merge a snapshot into this registry: counters and histograms add,
    /// gauges take the snapshot's value. This is how worker-scoped
    /// registries fold into the global one.
    pub fn absorb(&self, snap: &MetricsSnapshot) {
        for (k, &v) in &snap.counters {
            self.counter(k).add(v);
        }
        for (k, &v) in &snap.gauges {
            self.gauge(k).set(v);
        }
        for (k, h) in &snap.histograms {
            let dst = self.histogram(k);
            // The bucket lower bound maps back to the same bucket index.
            for &(lo, n) in &h.buckets {
                dst.0.buckets[bucket_of(lo)].fetch_add(n, Ordering::Relaxed);
            }
            dst.0.count.fetch_add(h.count, Ordering::Relaxed);
            dst.0.sum.fetch_add(h.sum, Ordering::Relaxed);
            dst.0.max.fetch_max(h.max, Ordering::Relaxed);
        }
    }
}

/// Frozen values of a whole registry. `Clone + PartialEq` so reports can
/// carry and compare them.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct MetricsSnapshot {
    pub counters: BTreeMap<String, u64>,
    pub gauges: BTreeMap<String, i64>,
    pub histograms: BTreeMap<String, HistSnapshot>,
}

impl MetricsSnapshot {
    /// Counter value, 0 when absent.
    pub fn counter(&self, key: &str) -> u64 {
        self.counters.get(key).copied().unwrap_or(0)
    }

    /// Sum of all counters under a dotted prefix (`backend.` matches
    /// `backend.ddg.tests` but not `backendx.y`).
    pub fn counter_prefix_sum(&self, prefix: &str) -> u64 {
        self.counters
            .iter()
            .filter(|(k, _)| k.starts_with(prefix))
            .map(|(_, v)| *v)
            .sum()
    }

    /// Merge another snapshot into this one (same rules as
    /// [`MetricsRegistry::absorb`]).
    pub fn merge(&mut self, other: &MetricsSnapshot) {
        for (k, &v) in &other.counters {
            *self.counters.entry(k.clone()).or_insert(0) += v;
        }
        for (k, &v) in &other.gauges {
            self.gauges.insert(k.clone(), v);
        }
        for (k, h) in &other.histograms {
            self.histograms.entry(k.clone()).or_default().merge(h);
        }
    }

    /// Human-readable table, one metric per line, keys sorted.
    pub fn to_text(&self) -> String {
        let mut out = String::new();
        for (k, v) in &self.counters {
            let _ = writeln!(out, "{k:<44} {v:>14}");
        }
        for (k, v) in &self.gauges {
            let _ = writeln!(out, "{k:<44} {v:>14}");
        }
        for (k, h) in &self.histograms {
            let _ = writeln!(
                out,
                "{k:<44} count={} mean={:.2} p50={} p95={} p99={} max={}",
                h.count,
                h.mean(),
                h.p50(),
                h.p95(),
                h.p99(),
                h.max
            );
        }
        out
    }

    /// The JSON form the `--stats json` flags emit. Carries the artifact
    /// [`crate::SCHEMA_VERSION`] so differs can reject stale baselines.
    pub fn to_json(&self) -> String {
        let mut out = format!(
            "{{\n  \"schema_version\": {},\n  \"counters\": {{",
            crate::SCHEMA_VERSION
        );
        for (i, (k, v)) in self.counters.iter().enumerate() {
            out.push_str(if i == 0 { "\n    " } else { ",\n    " });
            escape_into(&mut out, k);
            let _ = write!(out, ": {v}");
        }
        out.push_str("\n  },\n  \"gauges\": {");
        for (i, (k, v)) in self.gauges.iter().enumerate() {
            out.push_str(if i == 0 { "\n    " } else { ",\n    " });
            escape_into(&mut out, k);
            let _ = write!(out, ": {v}");
        }
        out.push_str("\n  },\n  \"histograms\": {");
        for (i, (k, h)) in self.histograms.iter().enumerate() {
            out.push_str(if i == 0 { "\n    " } else { ",\n    " });
            escape_into(&mut out, k);
            let _ = write!(
                out,
                ": {{\"count\": {}, \"sum\": {}, \"max\": {}, \"mean\": ",
                h.count, h.sum, h.max
            );
            push_f64(&mut out, h.mean());
            let _ = write!(
                out,
                ", \"p50\": {}, \"p95\": {}, \"p99\": {}",
                h.p50(),
                h.p95(),
                h.p99()
            );
            out.push_str(", \"buckets\": [");
            for (j, (lo, n)) in h.buckets.iter().enumerate() {
                if j > 0 {
                    out.push_str(", ");
                }
                let _ = write!(out, "[{lo}, {n}]");
            }
            out.push_str("]}");
        }
        out.push_str("\n  }\n}\n");
        out
    }
}

static GLOBAL: OnceLock<Arc<MetricsRegistry>> = OnceLock::new();

/// The process-global registry.
pub fn global() -> Arc<MetricsRegistry> {
    GLOBAL.get_or_init(|| Arc::new(MetricsRegistry::new())).clone()
}

thread_local! {
    static SCOPED: std::cell::RefCell<Vec<Arc<MetricsRegistry>>> =
        const { std::cell::RefCell::new(Vec::new()) };
}

/// The registry instrumented code should write to: the innermost
/// thread-scoped registry if one is installed, else the global one.
pub fn cur() -> Arc<MetricsRegistry> {
    SCOPED.with(|s| s.borrow().last().cloned()).unwrap_or_else(global)
}

/// Install `reg` as this thread's current registry until the guard drops.
pub fn scoped(reg: Arc<MetricsRegistry>) -> ScopedRegistry {
    SCOPED.with(|s| s.borrow_mut().push(reg));
    ScopedRegistry { _priv: () }
}

/// RAII guard returned by [`scoped`].
pub struct ScopedRegistry {
    _priv: (),
}

impl Drop for ScopedRegistry {
    fn drop(&mut self) {
        SCOPED.with(|s| {
            s.borrow_mut().pop();
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate_and_snapshot() {
        let r = MetricsRegistry::new();
        let c = r.counter("a.b");
        c.inc();
        c.add(4);
        // Second fetch returns the same underlying cell.
        r.counter("a.b").inc();
        assert_eq!(r.counter("a.b").get(), 6);
        let snap = r.snapshot();
        assert_eq!(snap.counter("a.b"), 6);
        assert_eq!(snap.counter("missing"), 0);
    }

    #[test]
    fn gauges_last_write_wins() {
        let r = MetricsRegistry::new();
        let g = r.gauge("x");
        g.set(10);
        g.add(-3);
        assert_eq!(r.snapshot().gauges["x"], 7);
    }

    #[test]
    fn histogram_buckets_and_mean() {
        let r = MetricsRegistry::new();
        let h = r.histogram("h");
        for v in [0, 1, 2, 3, 9, 1000] {
            h.observe(v);
        }
        let s = &r.snapshot().histograms["h"];
        assert_eq!(s.count, 6);
        assert_eq!(s.sum, 1015);
        assert_eq!(s.max, 1000);
        assert!((s.mean() - 1015.0 / 6.0).abs() < 1e-9);
        // 0 → bucket 0; 1 → bucket lo=1; 2,3 → lo=2; 9 → lo=8; 1000 → lo=512.
        assert_eq!(s.buckets, vec![(0, 1), (1, 1), (2, 2), (8, 1), (512, 1)]);
    }

    #[test]
    fn histogram_percentiles_from_buckets() {
        let r = MetricsRegistry::new();
        let h = r.histogram("h");
        // 98 small values and 2 big ones: the tail only shows up past p95.
        for _ in 0..98 {
            h.observe(1);
        }
        h.observe(1000);
        h.observe(1500);
        let s = &r.snapshot().histograms["h"];
        assert_eq!(s.p50(), 1);
        assert_eq!(s.p95(), 1);
        assert_eq!(s.p99(), 512); // lower bound of the 512..1024 bucket
        assert_eq!(s.quantile(1.0), 1024);
        assert_eq!(HistSnapshot::default().p99(), 0);
        let text = r.snapshot().to_text();
        assert!(text.contains("p50=1 p95=1 p99=512"), "text was: {text}");
        let v = crate::json::parse(&r.snapshot().to_json()).unwrap();
        let hj = v.get("histograms").unwrap().get("h").unwrap();
        assert_eq!(hj.get("p99").unwrap().as_num(), Some(512.0));
        assert_eq!(hj.get("p50").unwrap().as_num(), Some(1.0));
    }

    #[test]
    #[should_panic(expected = "not a counter")]
    fn kind_mismatch_panics() {
        let r = MetricsRegistry::new();
        r.gauge("k");
        r.counter("k");
    }

    #[test]
    fn absorb_adds_counters_and_merges_histograms() {
        let a = MetricsRegistry::new();
        a.counter("c").add(5);
        a.histogram("h").observe(4);
        let b = MetricsRegistry::new();
        b.counter("c").add(2);
        b.histogram("h").observe(100);
        a.absorb(&b.snapshot());
        let s = a.snapshot();
        assert_eq!(s.counter("c"), 7);
        assert_eq!(s.histograms["h"].count, 2);
        assert_eq!(s.histograms["h"].sum, 104);
        assert_eq!(s.histograms["h"].max, 100);
    }

    #[test]
    fn snapshot_merge_matches_absorb() {
        let a = MetricsRegistry::new();
        a.counter("x").add(1);
        let b = MetricsRegistry::new();
        b.counter("x").add(2);
        b.counter("y").add(3);
        let mut s = a.snapshot();
        s.merge(&b.snapshot());
        assert_eq!(s.counter("x"), 3);
        assert_eq!(s.counter("y"), 3);
    }

    #[test]
    fn prefix_sum_respects_dotted_namespace() {
        let r = MetricsRegistry::new();
        r.counter("backend.ddg.tests").add(4);
        r.counter("backend.lower.insns").add(6);
        r.counter("machine.exec.loads").add(100);
        let s = r.snapshot();
        assert_eq!(s.counter_prefix_sum("backend."), 10);
        assert_eq!(s.counter_prefix_sum("machine."), 100);
    }

    #[test]
    fn scoped_registry_shadows_global_on_this_thread() {
        let local = Arc::new(MetricsRegistry::new());
        {
            let _g = scoped(local.clone());
            cur().counter("scoped.only").inc();
        }
        assert_eq!(local.snapshot().counter("scoped.only"), 1);
        assert_eq!(global().snapshot().counter("scoped.only"), 0);
        // Other threads are unaffected while a scope is active.
        let local2 = Arc::new(MetricsRegistry::new());
        let _g = scoped(local2.clone());
        std::thread::scope(|s| {
            s.spawn(|| {
                cur().counter("scoped.other_thread").inc();
            });
        });
        assert_eq!(local2.snapshot().counter("scoped.other_thread"), 0);
    }

    #[test]
    fn json_emission_parses_with_validator() {
        let r = MetricsRegistry::new();
        r.counter("a\"weird\\key").add(1);
        r.gauge("g").set(-5);
        r.histogram("h").observe(7);
        let text = r.snapshot().to_json();
        let v = crate::json::parse(&text).expect("emitted JSON must parse");
        assert_eq!(
            v.get("counters").unwrap().get("a\"weird\\key").unwrap().as_num(),
            Some(1.0)
        );
        assert_eq!(v.get("gauges").unwrap().get("g").unwrap().as_num(), Some(-5.0));
        assert_eq!(
            v.get("histograms").unwrap().get("h").unwrap().get("count").unwrap().as_num(),
            Some(1.0)
        );
    }
}
