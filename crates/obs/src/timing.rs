//! The one wall-clock helper every harness times through.
//!
//! `hli-bench`'s self-calibrating `bench()` loop, `importbench`'s
//! configuration grid and `perfbench`'s corpus runs all need the same two
//! things: "run this once and tell me how long it took" ([`time`]) and
//! "summarize a set of per-iteration samples robustly" ([`Samples`] —
//! min/median/p95, not a single mean a slow outlier can poison). Keeping
//! both here means every binary times identically and prints comparable
//! numbers.

use std::time::{Duration, Instant};

/// Run `f` once, returning its result and the elapsed wall-clock time.
pub fn time<R>(f: impl FnOnce() -> R) -> (R, Duration) {
    let start = Instant::now();
    let r = f();
    (r, start.elapsed())
}

/// Format a wall-clock duration the way every harness prints one:
/// milliseconds with one decimal (`12.3 ms`). `importbench`'s grid,
/// `faultbench`'s campaign phases and `perfbench`'s corpus runs all used
/// to hand-roll `as_secs_f64() * 1e3`; one helper keeps the outputs
/// comparable.
pub fn fmt_ms(d: Duration) -> String {
    format!("{:.1} ms", d.as_secs_f64() * 1e3)
}

/// A set of per-iteration duration samples (nanoseconds).
#[derive(Debug, Clone, Default)]
pub struct Samples {
    ns: Vec<u64>,
}

impl Samples {
    pub fn new() -> Self {
        Samples::default()
    }

    pub fn push(&mut self, d: Duration) {
        self.ns.push(d.as_nanos() as u64);
    }

    pub fn len(&self) -> usize {
        self.ns.len()
    }

    pub fn is_empty(&self) -> bool {
        self.ns.is_empty()
    }

    /// Exact quantile over the recorded samples: the value at ceil(q*n)
    /// rank (nearest-rank method). 0 when empty.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.ns.is_empty() {
            return 0;
        }
        let mut sorted = self.ns.clone();
        sorted.sort_unstable();
        let rank = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
        sorted[rank - 1]
    }

    pub fn min_ns(&self) -> u64 {
        self.ns.iter().copied().min().unwrap_or(0)
    }

    pub fn median_ns(&self) -> u64 {
        self.quantile(0.50)
    }

    pub fn p95_ns(&self) -> u64 {
        self.quantile(0.95)
    }

    pub fn total(&self) -> Duration {
        Duration::from_nanos(self.ns.iter().sum())
    }

    /// The `min/median/p95 (iters)` line every timing harness prints.
    pub fn summary(&self) -> String {
        format!(
            "min {} / median {} / p95 {} ns/iter   ({} iters)",
            self.min_ns(),
            self.median_ns(),
            self.p95_ns(),
            self.len()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn time_returns_result_and_duration() {
        let (v, d) = time(|| 41 + 1);
        assert_eq!(v, 42);
        assert!(d.as_nanos() > 0);
    }

    #[test]
    fn samples_quantiles_are_exact() {
        let mut s = Samples::new();
        // 1..=100 microseconds, shuffled order must not matter.
        for v in (1..=100u64).rev() {
            s.push(Duration::from_nanos(v));
        }
        assert_eq!(s.len(), 100);
        assert_eq!(s.min_ns(), 1);
        assert_eq!(s.median_ns(), 50);
        assert_eq!(s.p95_ns(), 95);
        assert_eq!(s.quantile(1.0), 100);
        assert_eq!(s.total(), Duration::from_nanos(5050));
        assert!(s.summary().contains("median 50"));
    }

    #[test]
    fn fmt_ms_is_one_decimal_milliseconds() {
        assert_eq!(fmt_ms(Duration::from_millis(12)), "12.0 ms");
        assert_eq!(fmt_ms(Duration::from_micros(1250)), "1.2 ms");
        assert_eq!(fmt_ms(Duration::ZERO), "0.0 ms");
    }

    #[test]
    fn empty_samples_are_zero() {
        let s = Samples::new();
        assert!(s.is_empty());
        assert_eq!(s.min_ns(), 0);
        assert_eq!(s.median_ns(), 0);
        assert_eq!(s.p95_ns(), 0);
    }
}
