//! Deterministic fork/join for observability state.
//!
//! The parallel drivers (`hli-pool` workers running one function or one
//! benchmark each) must not write metrics or provenance records straight
//! into the parent's sinks: worker interleaving would make `--stats json`
//! gauge values and `--provenance-out` record order and query-id values
//! depend on OS scheduling. Instead each work item runs under
//! [`capture`] — a fresh thread-scoped metrics registry, provenance sink
//! and query-id counter — and returns an [`ObsShard`]. The parent then
//! [`commit`]s the shards **in a stable order** (input order for the
//! suite, name-sorted function order in the back-end driver):
//!
//! * counters/histograms add commutatively, and gauges now apply in a
//!   deterministic order;
//! * each shard's locally-stamped query ids (1-based) are renumbered into
//!   the parent's id space via [`crate::provenance::claim_ids`], which is
//!   exactly the numbering a sequential run would have produced;
//! * records append to the parent's active sink in shard order.
//!
//! Because a `--jobs 1` run goes through the same capture/commit pair,
//! its output is byte-identical to a `--jobs N` run by construction.
//! Shards nest: a suite-level shard may contain function-level commits,
//! since the function-level [`commit`] resolves the *benchmark's* scoped
//! registry/sink/ids on the committing thread.

use crate::metrics::{self, MetricsRegistry, MetricsSnapshot};
use crate::provenance::{self, DecisionRecord, ProvenanceSink};
use crate::trace::{self, SpanRec, Tracer};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Everything one work item observed, detached from the parent's sinks.
#[derive(Debug, Default)]
pub struct ObsShard {
    /// The worker-scoped registry's final state.
    pub metrics: MetricsSnapshot,
    /// Decision records in the worker's append order, citing **local**
    /// query ids and span ids `1..=ids_used` (renumbered at [`commit`]).
    pub records: Vec<DecisionRecord>,
    /// How many query/span ids the work item stamped.
    pub ids_used: u64,
    /// Logical spans the work item traced (local ticks `0..seq_used`,
    /// rebased at [`commit`]); empty unless the capture ran with
    /// [`CaptureCfg::trace`].
    pub spans: Vec<SpanRec>,
    /// Logical trace ticks the work item consumed.
    pub seq_used: u64,
}

/// What a [`capture`] should isolate, decided on the *parent* thread —
/// a pool worker cannot see the parent's thread-scoped sinks, so neither
/// flag may be probed inside the work item.
#[derive(Debug, Clone, Copy, Default)]
pub struct CaptureCfg {
    /// Capture decision records + query ids (normally
    /// `provenance::active().is_some()` on the parent thread).
    pub provenance: bool,
    /// Capture spans into a deterministic logical tracer (normally
    /// `trace::cur().is_logical()` on the parent thread: a logical parent
    /// wants jobs-invariant traces; a wall-clock parent — the `--trace-out`
    /// global — keeps receiving worker spans directly, timestamps and all).
    pub trace: bool,
}

impl CaptureCfg {
    /// Probe both flags from the calling thread's current sinks.
    pub fn from_env() -> Self {
        CaptureCfg {
            provenance: provenance::active().is_some(),
            trace: trace::cur().is_logical(),
        }
    }
}

/// Run `f` under a fresh scoped metrics registry — plus, when
/// `provenance_on`, a fresh enabled provenance sink and a local query-id
/// counter — and return its result with the captured [`ObsShard`].
///
/// `provenance_on` must be decided by the *caller* (normally
/// `provenance::active().is_some()` on the parent thread) rather than
/// probed here: a pool worker thread cannot see the parent's thread-scoped
/// sink, and the decision must not depend on which thread the item happens
/// to run on. Use [`capture_cfg`] to also capture logical trace spans.
pub fn capture<R>(provenance_on: bool, f: impl FnOnce() -> R) -> (R, ObsShard) {
    capture_cfg(CaptureCfg { provenance: provenance_on, trace: false }, f)
}

/// [`capture`] with explicit control over every captured dimension.
pub fn capture_cfg<R>(cfg: CaptureCfg, f: impl FnOnce() -> R) -> (R, ObsShard) {
    let reg = Arc::new(MetricsRegistry::new());
    // With provenance off we still install a (disabled) scoped sink: the
    // caller's verdict must hold on whatever thread the item runs on, even
    // if that thread could otherwise see an enabled global sink.
    let scoped_sink = Arc::new(ProvenanceSink::new());
    scoped_sink.set_enabled(cfg.provenance);
    let sink = cfg.provenance.then(|| scoped_sink.clone());
    let ids = cfg.provenance.then(|| Arc::new(AtomicU64::new(1)));
    let tracer = cfg.trace.then(|| Arc::new(Tracer::logical()));
    let out = {
        let _m = metrics::scoped(reg.clone());
        let _s = provenance::scoped(scoped_sink.clone());
        let _i = ids.clone().map(provenance::scoped_ids);
        let _t = tracer.clone().map(trace::scoped);
        f()
    };
    let shard = ObsShard {
        metrics: reg.snapshot(),
        records: sink.map(|s| s.drain()).unwrap_or_default(),
        ids_used: ids.map(|i| i.load(Ordering::Relaxed) - 1).unwrap_or(0),
        spans: tracer.as_ref().map(|t| t.drain_spans()).unwrap_or_default(),
        seq_used: tracer.map(|t| t.seq_used()).unwrap_or(0),
    };
    (out, shard)
}

/// Fold a shard into the parent's observability state on the calling
/// thread: absorb the metrics into [`metrics::cur`], reserve the shard's
/// id block from this thread's id source, renumber the records into it,
/// and append them to the active provenance sink.
///
/// Call once per shard, in a stable order — the order *is* the output
/// determinism.
pub fn commit(shard: ObsShard) {
    metrics::cur().absorb(&shard.metrics);
    if !shard.spans.is_empty() || shard.seq_used > 0 {
        trace::cur().absorb_logical(shard.spans, shard.seq_used);
    }
    if shard.ids_used == 0 && shard.records.is_empty() {
        return;
    }
    // A shard can carry records that cite no queries at all (e.g. a
    // quarantined unit's `Blocked` decision, recorded before any HLI was
    // attached). Those must still append — only the id renumbering is
    // conditional on ids having been stamped.
    let offset = if shard.ids_used > 0 {
        provenance::claim_ids(shard.ids_used)
    } else {
        0
    };
    if let Some(sink) = provenance::active() {
        sink.extend(shard.records.into_iter().map(|mut r| {
            for q in &mut r.hli_queries {
                q.0 += offset;
            }
            // Span ids share the query-id space, so the same offset
            // relocates them; 0 stays 0 ("no span").
            if r.span != 0 {
                r.span += offset;
            }
            r
        }));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Verdict;

    fn rec(pass: &str, queries: &[u64]) -> DecisionRecord {
        DecisionRecord {
            pass: pass.into(),
            function: "f".into(),
            region_id: None,
            order: 1,
            span: 0,
            est_cycles: 0,
            hli_queries: queries.iter().map(|&q| provenance::QueryRef(q)).collect(),
            verdict: Verdict::Applied,
        }
    }

    #[test]
    fn capture_isolates_metrics_and_commit_absorbs() {
        let parent = Arc::new(MetricsRegistry::new());
        let _g = metrics::scoped(parent.clone());
        let ((), shard) = capture(false, || {
            metrics::cur().counter("shard.test").add(3);
        });
        assert_eq!(parent.snapshot().counter("shard.test"), 0, "capture isolates");
        assert_eq!(shard.metrics.counter("shard.test"), 3);
        commit(shard);
        assert_eq!(parent.snapshot().counter("shard.test"), 3, "commit absorbs");
    }

    #[test]
    fn commit_renumbers_ids_in_claim_order() {
        // Two shards stamped local ids 1..=2 and 1..=3; committing under a
        // parent id space starting at 1 must yield 1..=2 then 3..=5 —
        // exactly what a sequential run would have stamped.
        let parent_ids = Arc::new(AtomicU64::new(1));
        let parent_sink = Arc::new(ProvenanceSink::new());
        let _i = provenance::scoped_ids(parent_ids.clone());
        let _s = provenance::scoped(parent_sink.clone());
        let ((), a) = capture(true, || {
            provenance::next_query_id();
            provenance::next_query_id();
            provenance::active().unwrap().record(rec("a", &[1, 2]));
        });
        let ((), b) = capture(true, || {
            provenance::next_query_id();
            provenance::next_query_id();
            provenance::next_query_id();
            provenance::active().unwrap().record(rec("b", &[2, 3]));
        });
        assert_eq!(a.ids_used, 2);
        assert_eq!(b.ids_used, 3);
        commit(a);
        commit(b);
        let out = parent_sink.drain();
        assert_eq!(out.len(), 2);
        assert_eq!(
            out[0].hli_queries,
            vec![provenance::QueryRef(1), provenance::QueryRef(2)]
        );
        assert_eq!(
            out[1].hli_queries,
            vec![provenance::QueryRef(4), provenance::QueryRef(5)]
        );
        assert_eq!(parent_ids.load(Ordering::Relaxed), 6, "parent space consumed 5 ids");
    }

    #[test]
    fn query_less_records_survive_commit() {
        // Regression: commit used to gate record append on `ids_used > 0`,
        // silently dropping decisions that cite no queries — exactly what
        // a quarantined unit's `Blocked` record looks like.
        let parent_ids = Arc::new(AtomicU64::new(1));
        let parent_sink = Arc::new(ProvenanceSink::new());
        let _i = provenance::scoped_ids(parent_ids.clone());
        let _s = provenance::scoped(parent_sink.clone());
        let ((), shard) = capture(true, || {
            provenance::active().unwrap().record(rec("quarantine.unit", &[]));
        });
        assert_eq!(shard.ids_used, 0);
        commit(shard);
        let out = parent_sink.drain();
        assert_eq!(out.len(), 1, "query-less record must be committed");
        assert_eq!(out[0].pass, "quarantine.unit");
        assert_eq!(parent_ids.load(Ordering::Relaxed), 1, "no ids claimed");
    }

    #[test]
    fn capture_without_provenance_skips_sink_and_ids() {
        let ((), shard) = capture(false, || {
            assert!(
                provenance::active().is_none(),
                "provenance stays off inside a prov-off capture"
            );
        });
        assert_eq!(shard.ids_used, 0);
        assert!(shard.records.is_empty());
    }

    #[test]
    fn nested_captures_compose() {
        // A benchmark-level capture containing two function-level
        // capture/commit pairs: the inner commits land in the outer shard,
        // and the outer commit renumbers the whole block at once.
        let parent_ids = Arc::new(AtomicU64::new(11));
        let parent_sink = Arc::new(ProvenanceSink::new());
        let _i = provenance::scoped_ids(parent_ids);
        let _s = provenance::scoped(parent_sink.clone());
        let ((), outer) = capture(true, || {
            for pass in ["f1", "f2"] {
                let ((), inner) = capture(true, || {
                    provenance::next_query_id();
                    provenance::active().unwrap().record(rec(pass, &[1]));
                });
                commit(inner);
            }
        });
        assert_eq!(outer.ids_used, 2);
        commit(outer);
        let out = parent_sink.drain();
        assert_eq!(out[0].hli_queries, vec![provenance::QueryRef(11)]);
        assert_eq!(out[1].hli_queries, vec![provenance::QueryRef(12)]);
    }

    #[test]
    fn commit_renumbers_span_ids_with_the_query_offset() {
        let parent_ids = Arc::new(AtomicU64::new(21));
        let parent_sink = Arc::new(ProvenanceSink::new());
        let _i = provenance::scoped_ids(parent_ids);
        let _s = provenance::scoped(parent_sink.clone());
        let ((), shard) = capture(true, || {
            let span = provenance::next_span_id(); // local id 1
            provenance::next_query_id(); // local id 2
            let mut r = rec("sched.pair", &[2]);
            r.span = span;
            provenance::active().unwrap().record(r);
            let r2 = rec("quarantine.unit", &[]); // span 0 stays 0
            provenance::active().unwrap().record(r2);
        });
        assert_eq!(shard.ids_used, 2);
        commit(shard);
        let out = parent_sink.drain();
        assert_eq!(out[0].span, 21, "span renumbered by the same offset");
        assert_eq!(out[0].hli_queries, vec![provenance::QueryRef(22)]);
        assert_eq!(out[1].span, 0, "no-span records keep 0");
    }

    #[test]
    fn capture_cfg_traces_logically_and_commit_rebases() {
        // A logical parent tracer + two committed shards: spans land
        // rebased in commit order, independent of which thread ran what.
        let parent = Arc::new(Tracer::logical());
        let _t = trace::scoped(parent.clone());
        assert!(CaptureCfg::from_env().trace, "logical parent ⇒ capture traces");
        let mut shards = Vec::new();
        for name in ["f1", "f2"] {
            let ((), shard) = capture_cfg(CaptureCfg { provenance: false, trace: true }, || {
                let _g = trace::span(name);
            });
            assert_eq!(shard.seq_used, 2);
            shards.push(shard);
        }
        for s in shards {
            commit(s);
        }
        let spans = parent.finished_spans();
        assert_eq!(
            spans.iter().map(|s| (s.name.as_str(), s.start_ns)).collect::<Vec<_>>(),
            vec![("f1", 0), ("f2", 2)]
        );
    }
}
