//! Phase timers: scoped wall-clock measurement per pipeline stage,
//! feeding the metrics registry under the `obs.phase.*` namespace.
//!
//! A [`PhaseGuard`] measures the wall-clock time between its creation and
//! its drop and records the duration (nanoseconds) into a histogram named
//! `obs.phase.<stage>.ns` — so `--stats` snapshots carry, next to the
//! paper's counters, *where the compile time went*: count, mean, p50/p95
//! and max per stage.
//!
//! ## Determinism contract
//!
//! Phase durations are wall-clock and therefore nondeterministic, while
//! the `--jobs` contract (see `crates/harness/tests/parallel.rs`) pins
//! scoped `--stats json` snapshots byte-identical across worker counts.
//! Phase timers therefore **always write to the process-global registry**
//! ([`crate::metrics::global`]), never to a thread-scoped one: scoped
//! snapshots (and the [`crate::capture`] shards the parallel driver
//! commits) stay free of timing noise, and `obsdiff` ignores histograms
//! by design. Tools that want the timings read the global snapshot — the
//! same one every binary's `--stats` flag prints.

use crate::metrics::{global, Histogram, MetricsSnapshot};
use std::time::Instant;

/// Open a phase timer; the elapsed time is recorded when the guard drops.
///
/// ```
/// {
///     let _p = hli_obs::phase::timed("frontend.generate");
///     // ... the stage ...
/// } // records into histogram `obs.phase.frontend.generate.ns`
/// ```
pub fn timed(stage: &str) -> PhaseGuard {
    PhaseGuard {
        hist: global().histogram(&format!("obs.phase.{stage}.ns")),
        start: Instant::now(),
    }
}

/// RAII guard returned by [`timed`]. Records on drop.
pub struct PhaseGuard {
    hist: Histogram,
    start: Instant,
}

impl Drop for PhaseGuard {
    fn drop(&mut self) {
        self.hist.observe(self.start.elapsed().as_nanos() as u64);
    }
}

/// Total nanoseconds recorded for one stage in `snap` (the histogram
/// sum of `obs.phase.<stage>.ns`), 0 when the stage never ran.
pub fn total_ns(snap: &MetricsSnapshot, stage: &str) -> u64 {
    snap.histograms
        .get(&format!("obs.phase.{stage}.ns"))
        .map(|h| h.sum)
        .unwrap_or(0)
}

/// [`total_ns`] summed over every stage whose name starts with `prefix`
/// (e.g. `"hli."` covers `hli.encode`, `hli.decode`, `hli.reader.open`).
pub fn total_ns_prefix(snap: &MetricsSnapshot, prefix: &str) -> u64 {
    let full = format!("obs.phase.{prefix}");
    snap.histograms
        .iter()
        .filter(|(k, _)| k.starts_with(&full) && k.ends_with(".ns"))
        .map(|(_, h)| h.sum)
        .sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn phase_records_into_the_global_registry() {
        {
            let _p = timed("test.phase_unit");
            std::hint::black_box(1 + 1);
        }
        let snap = global().snapshot();
        let h = &snap.histograms["obs.phase.test.phase_unit.ns"];
        assert!(h.count >= 1);
        assert_eq!(total_ns(&snap, "test.phase_unit"), h.sum);
    }

    #[test]
    fn phase_ignores_scoped_registries() {
        let local = std::sync::Arc::new(crate::MetricsRegistry::new());
        {
            let _g = crate::metrics::scoped(local.clone());
            let _p = timed("test.phase_scoped");
        }
        assert!(
            local.snapshot().histograms.is_empty(),
            "phase timers must not leak wall-clock into scoped snapshots"
        );
        assert!(global().snapshot().histograms.contains_key("obs.phase.test.phase_scoped.ns"));
    }

    #[test]
    fn prefix_totals_sum_stages() {
        {
            let _a = timed("test.pfx.a");
        }
        {
            let _b = timed("test.pfx.b");
        }
        let snap = global().snapshot();
        assert_eq!(
            total_ns_prefix(&snap, "test.pfx."),
            total_ns(&snap, "test.pfx.a") + total_ns(&snap, "test.pfx.b")
        );
        assert_eq!(total_ns_prefix(&snap, "test.nosuch."), 0);
    }
}
