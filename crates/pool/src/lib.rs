//! # hli-pool — a std-only work-stealing thread pool
//!
//! The paper's on-demand, per-function HLI import (Section 3.2.1) makes
//! each program unit a self-contained piece of compilation work: the
//! back-end can fetch one unit's tables, build its DDG, schedule it and
//! maintain its HLI without touching any other unit. This crate supplies
//! the scheduling substrate that exploits that: a scoped, work-stealing
//! parallel map over a slice of work items.
//!
//! The workspace is intentionally dependency-free, so this is plain `std`:
//!
//! * each worker owns a deque of item indices, seeded with a contiguous
//!   chunk of the input;
//! * a worker pops from the **back** of its own deque (LIFO, cache-warm)
//!   and, when empty, steals the **front half** of the fullest victim's
//!   deque (FIFO, oldest work first) — the classic Cilk/Chase-Lev
//!   discipline, here with a mutex per deque instead of a lock-free deque
//!   because work items (whole functions through the back-end pipeline)
//!   are far coarser than the lock;
//! * results land in per-index slots, so the output order is the input
//!   order no matter which worker ran which item or when it finished.
//!
//! Callers that need deterministic side effects (metrics, provenance)
//! should capture them per item and merge in input order after [`run`]
//! returns — see `hli_obs::shard` for the capture/commit pair the
//! compiler drivers use.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Resolve a `--jobs` request: `0` means "one worker per available CPU",
/// anything else is taken literally (including 1 = fully sequential).
pub fn resolve_jobs(requested: usize) -> usize {
    if requested == 0 {
        std::thread::available_parallelism().map(|p| p.get()).unwrap_or(1)
    } else {
        requested
    }
}

/// Counters describing one [`run_with_stats`] execution, for tests and
/// benchmarks that want to see the pool actually balancing load. Not
/// mirrored into the metrics registry: steal counts depend on OS
/// scheduling and would make `--stats` output nondeterministic.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct PoolStats {
    /// Workers that executed at least one item.
    pub workers_used: usize,
    /// Successful steal operations (batches moved, not items).
    pub steals: u64,
    /// Items executed by a worker other than the one they were seeded to.
    pub stolen_items: u64,
}

/// Work-stealing parallel map: apply `f` to every item of `items` on up to
/// `jobs` workers (`0` = one per CPU) and return the results in input
/// order. `f` receives `(worker_index, &item)`; worker indices are in
/// `0..jobs` and stable for the duration of the call, so callers can keep
/// per-worker scratch state keyed by them.
///
/// `jobs <= 1` (or a 0/1-item input) runs everything inline on the caller
/// thread as worker 0 — same code path, no thread spawn — so a `--jobs 1`
/// run is a true sequential baseline.
pub fn run<T, R, F>(jobs: usize, items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T) -> R + Sync,
{
    run_with_stats(jobs, items, f).0
}

/// [`run`], also returning the load-balance counters.
pub fn run_with_stats<T, R, F>(jobs: usize, items: &[T], f: F) -> (Vec<R>, PoolStats)
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T) -> R + Sync,
{
    let n = items.len();
    let jobs = resolve_jobs(jobs).min(n.max(1));
    if jobs <= 1 || n <= 1 {
        let out = items.iter().map(|t| f(0, t)).collect();
        return (
            out,
            PoolStats { workers_used: usize::from(n > 0), ..PoolStats::default() },
        );
    }

    // Seed each worker's deque with a contiguous chunk (ceil division so
    // the leading workers absorb the remainder).
    let chunk = n.div_ceil(jobs);
    let queues: Vec<Mutex<VecDeque<usize>>> = (0..jobs)
        .map(|w| Mutex::new((w * chunk..((w + 1) * chunk).min(n)).collect()))
        .collect();
    let done = AtomicUsize::new(0);
    let panic_payload: Mutex<Option<Box<dyn std::any::Any + Send>>> = Mutex::new(None);
    let steals = AtomicUsize::new(0);
    let stolen_items = AtomicUsize::new(0);
    let mut slots: Vec<Option<R>> = Vec::with_capacity(n);
    slots.resize_with(n, || None);
    let slots = Mutex::new(slots);
    let worker_used: Vec<AtomicUsize> = (0..jobs).map(|_| AtomicUsize::new(0)).collect();

    std::thread::scope(|s| {
        for w in 0..jobs {
            let queues = &queues;
            let done = &done;
            let panic_payload = &panic_payload;
            let steals = &steals;
            let stolen_items = &stolen_items;
            let slots = &slots;
            let worker_used = &worker_used;
            let f = &f;
            s.spawn(move || {
                let mut idle_spins = 0u32;
                loop {
                    // Own work first: LIFO keeps the most recently seeded
                    // (cache-warm) indices local.
                    let mine = queues[w].lock().unwrap().pop_back();
                    let task = mine.or_else(|| {
                        // Steal the front half of the fullest victim.
                        // `try_lock` when sizing: a busy queue is being
                        // popped by its owner and can be skipped this
                        // round rather than waited on.
                        let victim = (0..jobs)
                            .filter(|&v| v != w)
                            .max_by_key(|&v| queues[v].try_lock().map(|q| q.len()).unwrap_or(0))?;
                        let mut vq = queues[victim].lock().unwrap();
                        let take = vq.len().div_ceil(2);
                        if take == 0 {
                            return None;
                        }
                        let batch: Vec<usize> = vq.drain(..take).collect();
                        drop(vq);
                        steals.fetch_add(1, Ordering::Relaxed);
                        stolen_items.fetch_add(batch.len(), Ordering::Relaxed);
                        let mut q = queues[w].lock().unwrap();
                        q.extend(batch);
                        q.pop_back()
                    });
                    match task {
                        Some(i) => {
                            idle_spins = 0;
                            if panic_payload.lock().unwrap().is_some() {
                                // Already unwinding: drain without running.
                                done.fetch_add(1, Ordering::Relaxed);
                                continue;
                            }
                            worker_used[w].store(1, Ordering::Relaxed);
                            // A panicking item must not leave the other
                            // workers spinning on a `done` count that can
                            // never complete: capture the payload, count
                            // the item as done, rethrow after the join.
                            match std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                                f(w, &items[i])
                            })) {
                                Ok(r) => slots.lock().unwrap()[i] = Some(r),
                                Err(p) => {
                                    panic_payload.lock().unwrap().get_or_insert(p);
                                }
                            }
                            done.fetch_add(1, Ordering::Relaxed);
                        }
                        None => {
                            if done.load(Ordering::Acquire) >= n {
                                break;
                            }
                            // Someone else still runs the tail items; back
                            // off politely instead of hammering the locks.
                            // Exponential up to ~3 ms: work items are whole
                            // functions or benchmarks, so a parked thief
                            // waking a few hundred times a second loses
                            // nothing — while busy-polling here measurably
                            // starves the workers on small machines.
                            idle_spins += 1;
                            if idle_spins > 16 {
                                let exp = (idle_spins - 16).min(6);
                                std::thread::sleep(std::time::Duration::from_micros(50u64 << exp));
                            } else {
                                std::thread::yield_now();
                            }
                        }
                    }
                }
            });
        }
    });

    if let Some(p) = panic_payload.into_inner().unwrap() {
        std::panic::resume_unwind(p);
    }
    let out: Vec<R> = slots
        .into_inner()
        .unwrap()
        .into_iter()
        .map(|r| r.expect("every index was claimed by exactly one worker"))
        .collect();
    let stats = PoolStats {
        workers_used: worker_used.iter().filter(|u| u.load(Ordering::Relaxed) != 0).count(),
        steals: steals.load(Ordering::Relaxed) as u64,
        stolen_items: stolen_items.load(Ordering::Relaxed) as u64,
    };
    (out, stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;
    use std::time::Duration;

    #[test]
    fn results_come_back_in_input_order() {
        let items: Vec<u64> = (0..257).collect();
        let out = run(4, &items, |_, &x| x * 2);
        assert_eq!(out, items.iter().map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn jobs_one_is_inline_and_sequential() {
        let items = [1, 2, 3];
        let (out, stats) = run_with_stats(1, &items, |w, &x| {
            assert_eq!(w, 0, "sequential path runs as worker 0");
            x + 1
        });
        assert_eq!(out, vec![2, 3, 4]);
        assert_eq!(stats.steals, 0);
        assert_eq!(stats.workers_used, 1);
    }

    #[test]
    fn empty_and_single_inputs() {
        let none: Vec<u32> = Vec::new();
        assert!(run(8, &none, |_, &x| x).is_empty());
        assert_eq!(run(8, &[7u32], |_, &x| x), vec![7]);
    }

    #[test]
    fn idle_workers_steal_from_a_blocked_one() {
        // Two workers, chunked seeding: worker 0 gets indices 0..4, worker
        // 1 gets 4..8. Workers pop their own deque from the back, so item 3
        // is the first thing worker 0 runs; it parks worker 0 for a long
        // time, and worker 1 — done with its fast chunk — must steal the
        // still-queued items 0..3.
        let ran_by: Vec<AtomicU64> = (0..8).map(|_| AtomicU64::new(u64::MAX)).collect();
        let items: Vec<usize> = (0..8).collect();
        let (_, stats) = run_with_stats(2, &items, |w, &i| {
            if i == 3 {
                std::thread::sleep(Duration::from_millis(150));
            }
            ran_by[i].store(w as u64, Ordering::Relaxed);
        });
        assert!(stats.steals > 0, "worker 1 must have stolen from worker 0");
        for (i, by) in ran_by.iter().enumerate().take(3) {
            assert_eq!(
                by.load(Ordering::Relaxed),
                1,
                "item {i} was seeded to the blocked worker and must be stolen"
            );
        }
        assert_eq!(stats.workers_used, 2);
    }

    #[test]
    fn more_jobs_than_items_is_fine() {
        let items = [10u32, 20];
        let out = run(16, &items, |_, &x| x / 10);
        assert_eq!(out, vec![1, 2]);
    }

    #[test]
    fn resolve_jobs_zero_means_all_cpus() {
        assert!(resolve_jobs(0) >= 1);
        assert_eq!(resolve_jobs(3), 3);
    }

    #[test]
    fn panicking_worker_propagates() {
        let items: Vec<u32> = (0..4).collect();
        let res = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            run(2, &items, |_, &x| {
                if x == 2 {
                    panic!("boom");
                }
                x
            })
        }));
        assert!(res.is_err(), "a panic in a work item must not be swallowed");
    }
}
