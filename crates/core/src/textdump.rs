//! Human-readable rendering of HLI entries, in the spirit of the paper's
//! Figure 2 (region tree with equivalent access classes, alias sets, LCDD
//! arcs and call REF/MOD facts).

use crate::ids::{ItemId, RegionId, UNIT_REGION};
use crate::tables::*;
use std::fmt::Write as _;

/// Render a full entry as an indented region tree.
pub fn dump_entry(e: &HliEntry) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "HLI entry for `{}`", e.unit_name);
    let _ = writeln!(
        out,
        "  line table: {} lines, {} items",
        e.line_table.lines.len(),
        e.line_table.item_count()
    );
    for l in &e.line_table.lines {
        let items: Vec<String> = l
            .items
            .iter()
            .map(|it| {
                format!(
                    "{}{}",
                    it.id,
                    match it.ty {
                        ItemType::Load => ":ld",
                        ItemType::Store => ":st",
                        ItemType::Call => ":call",
                    }
                )
            })
            .collect();
        let _ = writeln!(out, "    line {:>4}: {}", l.line, items.join(" "));
    }
    dump_region(e, UNIT_REGION, 1, &mut out);
    out
}

fn class_label(c: &EquivClass) -> String {
    if c.name_hint.is_empty() {
        c.id.to_string()
    } else {
        format!("{}({})", c.id, c.name_hint)
    }
}

fn lookup_label(r: &Region, id: ItemId) -> String {
    r.class(id).map(class_label).unwrap_or_else(|| id.to_string())
}

fn dump_region(e: &HliEntry, id: RegionId, depth: usize, out: &mut String) {
    let pad = "  ".repeat(depth);
    let r = e.region(id);
    match r.kind {
        RegionKind::Unit => {
            let _ = writeln!(out, "{pad}region {id} (unit) lines {}..{}", r.scope.0, r.scope.1);
        }
        RegionKind::Loop { header_line } => {
            let _ = writeln!(
                out,
                "{pad}region {id} (loop @ line {header_line}) lines {}..{}",
                r.scope.0, r.scope.1
            );
        }
    }
    for c in &r.equiv_classes {
        let members: Vec<String> = c
            .members
            .iter()
            .map(|m| match m {
                MemberRef::Item(i) => i.to_string(),
                MemberRef::SubClass { region, class } => format!("{region}/{class}"),
            })
            .collect();
        let _ = writeln!(
            out,
            "{pad}  class {} [{}] = {{{}}}",
            class_label(c),
            match c.kind {
                EquivKind::Definite => "definite",
                EquivKind::Maybe => "maybe",
            },
            members.join(", ")
        );
    }
    for a in &r.alias_table {
        let names: Vec<String> = a.classes.iter().map(|&c| lookup_label(r, c)).collect();
        let _ = writeln!(out, "{pad}  alias {{{}}}", names.join(", "));
    }
    for d in &r.lcdd_table {
        let _ = writeln!(
            out,
            "{pad}  lcdd {} -> {} [{}] distance {}",
            lookup_label(r, d.src),
            lookup_label(r, d.dst),
            match d.kind {
                DepKind::Definite => "definite",
                DepKind::Maybe => "maybe",
            },
            match d.distance {
                Distance::Const(k) => k.to_string(),
                Distance::Unknown => "?".into(),
            }
        );
    }
    for crm in &r.call_refmod {
        let callee = match crm.callee {
            CallRef::Item(i) => format!("call {i}"),
            CallRef::SubRegion(s) => format!("calls in {s}"),
        };
        let refs: Vec<String> = crm.refs.iter().map(|&c| lookup_label(r, c)).collect();
        let mods: Vec<String> = crm.mods.iter().map(|&c| lookup_label(r, c)).collect();
        let _ = writeln!(
            out,
            "{pad}  refmod {callee}: ref {{{}}} mod {{{}}}",
            refs.join(", "),
            mods.join(", ")
        );
    }
    for &s in &r.subregions {
        dump_region(e, s, depth + 1, out);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tables::tests::figure2_like;

    #[test]
    fn dump_mentions_figure2_classes() {
        let e = figure2_like();
        let s = dump_entry(&e);
        assert!(s.contains("b[0..9]"));
        assert!(s.contains("a[0..9]"));
        assert!(s.contains("lcdd"));
        assert!(s.contains("alias"));
        assert!(s.contains("(loop @ line 19)"));
    }

    #[test]
    fn dump_region_nesting_is_indented() {
        let e = figure2_like();
        let s = dump_entry(&e);
        let unit_line = s.lines().find(|l| l.contains("(unit)")).unwrap();
        let inner_line = s.lines().find(|l| l.contains("loop @ line 19")).unwrap();
        let indent = |l: &str| l.len() - l.trim_start().len();
        assert!(indent(inner_line) > indent(unit_line));
    }
}
