//! The HLI query interface (Section 3.2.2 of the paper).
//!
//! *"To provide a common interface across different back-ends, the stored
//! HLI can be retrieved only via a set of query functions. There are five
//! basic query functions that can be used to construct more complex query
//! functions."*
//!
//! The five basic queries here are:
//!
//! 1. [`HliQuery::get_equiv_acc`] — may two items access the same memory
//!    location within one iteration? (the paper's `HLI_GetEquivAcc`,
//!    Figure 5); folds in the alias table, since aliased classes may
//!    overlap.
//! 2. [`HliQuery::get_alias`] — the raw alias-table relation between two
//!    classes of a region.
//! 3. [`HliQuery::get_lcdd`] — the loop-carried dependence (kind and
//!    distance) between two items with respect to a loop region.
//! 4. [`HliQuery::get_call_acc`] — how a call affects a memory item (the
//!    paper's `HLI_GetCallAcc`, Figure 4).
//! 5. [`HliQuery::region_info`] / [`HliQuery::region_of_item`] — region
//!    structure lookups (scope, kind, nesting) that scheduling heuristics
//!    consume.
//!
//! All answers distinguish *"the tables say no"* ([`EquivAcc::None`]) from
//! *"the HLI cannot answer"* ([`EquivAcc::Unknown`]); the paper attributes
//! part of its HLI-vs-combined gap to exactly these unknowns (Section 4.2).
//!
//! Every call increments its `hli.query.*` counter (`get_equiv_acc`,
//! `get_alias`, `get_lcdd`, `get_call_acc`, `region_info`) in the active
//! metrics registry; the `obsreport` harness bin reads those counters as
//! the *cost* side of its per-HLI-table benefit/cost rollup, and, while a
//! provenance sink is active, each call stamps a query id that decision
//! records cite — see docs/QUERYBOOK.md ("What each query costs, and what
//! it buys") for the query→table map.

use crate::ids::{ItemId, RegionId, UNIT_REGION};
use crate::image::{EntryRef, RegionMeta};
use crate::tables::*;
use hli_obs::provenance::{self, QueryRef};
use hli_obs::Counter;
use std::cell::RefCell;
use std::collections::{HashMap, HashSet};

/// Answer of an equivalent-access query.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EquivAcc {
    /// The two items definitely access the same location (each iteration).
    Definite,
    /// They may access the same location.
    Maybe,
    /// They definitely do not overlap (within one iteration).
    None,
    /// The HLI has no information (e.g. an unmapped item).
    Unknown,
}

impl EquivAcc {
    /// The Figure-5 collapse: does this answer force a dependence edge?
    pub fn may_overlap(self) -> bool {
        !matches!(self, EquivAcc::None)
    }
}

/// Answer of a call REF/MOD query.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CallAcc {
    /// The call does not touch the item's memory.
    None,
    /// The call may read it.
    Ref,
    /// The call may write it.
    Mod,
    /// The call may read and write it.
    RefMod,
    /// No REF/MOD entry covers this call — assume the worst.
    Unknown,
}

impl CallAcc {
    /// May the call write the location (the Figure-4 purge condition)?
    pub fn may_modify(self) -> bool {
        matches!(self, CallAcc::Mod | CallAcc::RefMod | CallAcc::Unknown)
    }

    /// May the call read the location?
    pub fn may_reference(self) -> bool {
        matches!(self, CallAcc::Ref | CallAcc::RefMod | CallAcc::Unknown)
    }
}

/// A resolved loop-carried dependence between two items.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LcddAnswer {
    /// Definite or maybe.
    pub kind: DepKind,
    /// Iteration distance of the dependence.
    pub distance: Distance,
    /// True if the dependence runs from `b` to `a` (the query argument
    /// order was against the normalized `>` direction).
    pub reversed: bool,
}

/// Prebuilt index over one [`HliEntry`] (or a zero-copy
/// [`crate::image::HliEntryView`], via [`EntryRef`]) answering the basic
/// queries in (amortized) constant time. Construction is a single
/// bottom-up pass — this is the "hash table constructed as the mapping
/// procedure proceeds" of Section 3.2.1.
pub struct HliQuery<'a> {
    entry: EntryRef<'a>,
    /// Per region: item → the class representing it at that region.
    class_at: Vec<HashMap<ItemId, ItemId>>,
    /// Per region: class id → kind.
    class_kind: Vec<HashMap<ItemId, EquivKind>>,
    /// Per region: unordered aliased class pairs.
    alias_pairs: Vec<HashSet<(ItemId, ItemId)>>,
    /// Item → innermost region that directly owns it.
    owner: HashMap<ItemId, RegionId>,
    /// Item → (line, type).
    item_info: HashMap<ItemId, (u32, ItemType)>,
    /// Call item → its direct region: the one whose call REF/MOD table
    /// names it as an `Item`, falling back to innermost line scope for
    /// calls named by no table (hand-built entries).
    call_region: HashMap<ItemId, RegionId>,
    /// Per-query call counters (`hli.query.*`), resolved once at index
    /// construction so each query pays one relaxed atomic add.
    counters: QueryCounters,
    /// True when a provenance sink was active at construction: every basic
    /// query then stamps a process-monotonic id into `qlog`, so optimizing
    /// passes can cite the exact query chain behind a decision (see
    /// [`HliQuery::query_mark`] / [`HliQuery::queries_since`]).
    prov_active: bool,
    qlog: RefCell<Vec<QueryRef>>,
}

/// Cached `hli.query.*` counter handles, one per basic query function.
struct QueryCounters {
    equiv_acc: Counter,
    alias: Counter,
    lcdd: Counter,
    call_acc: Counter,
    region_info: Counter,
}

impl QueryCounters {
    fn new() -> Self {
        let r = hli_obs::metrics::cur();
        QueryCounters {
            equiv_acc: r.counter("hli.query.get_equiv_acc"),
            alias: r.counter("hli.query.get_alias"),
            lcdd: r.counter("hli.query.get_lcdd"),
            call_acc: r.counter("hli.query.get_call_acc"),
            region_info: r.counter("hli.query.region_info"),
        }
    }
}

impl<'a> HliQuery<'a> {
    /// Build the index over one owned entry (a single bottom-up pass).
    pub fn new(entry: &'a HliEntry) -> Self {
        Self::new_ref(EntryRef::Owned(entry))
    }

    /// Build the index over an owned entry *or* a zero-copy view. The
    /// sweep reads every table exactly once through the [`EntryRef`]
    /// accessors, so views pay no decode and no owned-table allocation —
    /// only the same hash maps an owned entry's index costs.
    pub fn new_ref(entry: EntryRef<'a>) -> Self {
        let n = entry.num_regions();
        let mut class_at: Vec<HashMap<ItemId, ItemId>> = vec![HashMap::new(); n];
        let mut class_kind: Vec<HashMap<ItemId, EquivKind>> = vec![HashMap::new(); n];
        let mut alias_pairs: Vec<HashSet<(ItemId, ItemId)>> = vec![HashSet::new(); n];
        let mut owner = HashMap::new();

        // Children always have larger ids than their parents (regions are
        // appended during a top-down construction), so a reverse id sweep
        // is a bottom-up traversal.
        for idx in (0..n).rev() {
            let r = RegionId(idx as u32);
            let rid = entry.region_meta(r).id;
            for c in entry.classes(r) {
                class_kind[idx].insert(c.id(), c.kind());
                for m in c.members() {
                    match m {
                        MemberRef::Item(it) => {
                            class_at[idx].insert(it, c.id());
                            owner.insert(it, rid);
                        }
                        MemberRef::SubClass { region, class } => {
                            let sub: Vec<ItemId> = class_at[region.0 as usize]
                                .iter()
                                .filter(|(_, cls)| **cls == class)
                                .map(|(it, _)| *it)
                                .collect();
                            for it in sub {
                                class_at[idx].insert(it, c.id());
                            }
                        }
                    }
                }
            }
            for a in entry.alias_entries(r) {
                let classes: Vec<ItemId> = a.classes().collect();
                for i in 0..classes.len() {
                    for j in i + 1..classes.len() {
                        let (x, y) = (classes[i].min(classes[j]), classes[i].max(classes[j]));
                        alias_pairs[idx].insert((x, y));
                    }
                }
            }
        }

        // A call belongs to the region whose REF/MOD table names it as a
        // direct `CallRef::Item`. Deriving this from the call's source line
        // instead is wrong: one line can span several regions (a loop body
        // plus the statements after the closing brace), and a misattributed
        // call makes the LCA walk in `get_call_acc` match another call's
        // SubRegion summary — answering `None` for locations the call does
        // modify.
        let mut call_region = HashMap::new();
        for idx in 0..n {
            let r = RegionId(idx as u32);
            let rid = entry.region_meta(r).id;
            for crm in entry.call_refmods(r) {
                if let CallRef::Item(it) = crm.callee() {
                    call_region.entry(it).or_insert(rid);
                }
            }
        }
        let mut item_info = HashMap::new();
        for (line, it) in entry.line_items() {
            item_info.insert(it.id, (line, it.ty));
            if it.ty == ItemType::Call {
                call_region
                    .entry(it.id)
                    .or_insert_with(|| innermost_region_by_line(entry, line));
            }
        }

        HliQuery {
            entry,
            class_at,
            class_kind,
            alias_pairs,
            owner,
            item_info,
            call_region,
            counters: QueryCounters::new(),
            prov_active: provenance::active().is_some(),
            qlog: RefCell::new(Vec::new()),
        }
    }

    /// Stamp one query id into the log (no-op unless a provenance sink was
    /// active when this index was built, so plain runs pay one branch).
    fn stamp(&self) {
        if self.prov_active {
            self.qlog.borrow_mut().push(provenance::next_query_id());
        }
    }

    /// Position marker into the query log; pair with
    /// [`HliQuery::queries_since`] to capture the chain of basic queries a
    /// single optimization decision consumed.
    pub fn query_mark(&self) -> usize {
        self.qlog.borrow().len()
    }

    /// The ids stamped since `mark`, in issue order.
    pub fn queries_since(&self, mark: usize) -> Vec<QueryRef> {
        let log = self.qlog.borrow();
        log[mark.min(log.len())..].to_vec()
    }

    /// The entry this index serves.
    pub fn entry_ref(&self) -> EntryRef<'a> {
        self.entry
    }

    /// True when a provenance sink was active at construction. The
    /// memoization layer ([`crate::cache::CachedQuery`]) bypasses its memo
    /// tables in that case so every decision still cites a freshly-stamped
    /// query chain.
    pub fn provenance_active(&self) -> bool {
        self.prov_active
    }

    /// Basic query 5a: region metadata. Returns the `Copy`
    /// [`RegionMeta`] header (id, kind, parent, scope) rather than a
    /// borrowed [`Region`], since a zero-copy view has no owned region
    /// to lend out; the region's tables are reached through the other
    /// four queries.
    pub fn region_info(&self, r: RegionId) -> RegionMeta {
        self.counters.region_info.inc();
        self.stamp();
        self.entry.region_meta(r)
    }

    /// Basic query 5b: the innermost region owning an item (for call items,
    /// the innermost region whose scope covers the call's line).
    pub fn region_of_item(&self, item: ItemId) -> Option<RegionId> {
        self.counters.region_info.inc();
        self.stamp();
        self.owner_of(item)
    }

    /// Like [`Self::region_of_item`] but without counting or stamping a
    /// query id: provenance recording itself uses this to attribute a
    /// decision to a region, and must not perturb `hli.query.*` totals.
    pub fn owner_of(&self, item: ItemId) -> Option<RegionId> {
        self.owner.get(&item).or_else(|| self.call_region.get(&item)).copied()
    }

    /// Line and access type of an item.
    pub fn item_info(&self, item: ItemId) -> Option<(u32, ItemType)> {
        self.item_info.get(&item).copied()
    }

    /// The class representing `item` at `region`, if the item is inside it.
    pub fn class_of_item_at(&self, region: RegionId, item: ItemId) -> Option<ItemId> {
        self.class_at[region.0 as usize].get(&item).copied()
    }

    /// Basic query 1 (`HLI_GetEquivAcc`): may two memory items touch the
    /// same location within a single iteration of every enclosing loop?
    pub fn get_equiv_acc(&self, a: ItemId, b: ItemId) -> EquivAcc {
        self.counters.equiv_acc.inc();
        self.stamp();
        if a == b {
            return EquivAcc::Definite;
        }
        let (Some(&ra), Some(&rb)) = (self.owner.get(&a), self.owner.get(&b)) else {
            return EquivAcc::Unknown;
        };
        let lca = self.entry.region_lca(ra, rb);
        let l = lca.0 as usize;
        let (Some(&ca), Some(&cb)) = (self.class_at[l].get(&a), self.class_at[l].get(&b)) else {
            return EquivAcc::Unknown;
        };
        if ca == cb {
            return match self.class_kind[l].get(&ca) {
                Some(EquivKind::Definite) => EquivAcc::Definite,
                Some(EquivKind::Maybe) => EquivAcc::Maybe,
                None => EquivAcc::Unknown,
            };
        }
        if self.get_alias(lca, ca, cb) {
            return EquivAcc::Maybe;
        }
        EquivAcc::None
    }

    /// Basic query 2: are two classes of `region` listed as aliased?
    pub fn get_alias(&self, region: RegionId, ca: ItemId, cb: ItemId) -> bool {
        self.counters.alias.inc();
        self.stamp();
        let key = (ca.min(cb), ca.max(cb));
        self.alias_pairs[region.0 as usize].contains(&key)
    }

    /// Basic query 3: the loop-carried dependence between two items with
    /// respect to the innermost loop enclosing both. Returns `None` when
    /// the table has no arc between their classes.
    pub fn get_lcdd(&self, a: ItemId, b: ItemId) -> Option<LcddAnswer> {
        self.counters.lcdd.inc();
        self.stamp();
        let (&ra, &rb) = (self.owner.get(&a)?, self.owner.get(&b)?);
        let lca = self.entry.region_lca(ra, rb);
        self.get_lcdd_at(lca, a, b)
    }

    /// Like [`Self::get_lcdd`] but against an explicit loop region.
    pub fn get_lcdd_at(&self, region: RegionId, a: ItemId, b: ItemId) -> Option<LcddAnswer> {
        let l = region.0 as usize;
        let (&ca, &cb) = (self.class_at[l].get(&a)?, self.class_at[l].get(&b)?);
        for e in self.entry.lcdd(region) {
            if e.src == ca && e.dst == cb {
                return Some(LcddAnswer { kind: e.kind, distance: e.distance, reversed: false });
            }
            if e.src == cb && e.dst == ca {
                return Some(LcddAnswer { kind: e.kind, distance: e.distance, reversed: true });
            }
        }
        None
    }

    /// Basic query 4 (`HLI_GetCallAcc`): how does `call` affect the memory
    /// accessed by `mem`?
    pub fn get_call_acc(&self, mem: ItemId, call: ItemId) -> CallAcc {
        self.counters.call_acc.inc();
        self.stamp();
        let Some(&rmem) = self.owner.get(&mem) else { return CallAcc::Unknown };
        let Some(&rcall) = self.call_region.get(&call) else { return CallAcc::Unknown };
        let lca = self.entry.region_lca(rmem, rcall);
        let call_path = self.entry.region_path(rcall);
        // Search outward from the LCA: a region that records no entry for
        // this call defers to its ancestors (whose classes also represent
        // the item — coarser, still sound).
        let mut region = Some(lca);
        while let Some(cur) = region {
            let l = cur.0 as usize;
            // The entry is keyed by the call item when the call is directly
            // in `cur`, else by `cur`'s child on the path down to the call.
            let callee_ref = if rcall == cur {
                CallRef::Item(call)
            } else {
                let pos = call_path.iter().position(|&r| r == cur).expect("on path");
                CallRef::SubRegion(call_path[pos + 1])
            };
            if let Some(entry) = self.entry.call_refmods(cur).find(|c| c.callee() == callee_ref) {
                let Some(&cmem) = self.class_at[l].get(&mem) else {
                    return CallAcc::Unknown;
                };
                let r = entry.refs().any(|c| c == cmem);
                let m = entry.mods().any(|c| c == cmem);
                return match (r, m) {
                    (false, false) => CallAcc::None,
                    (true, false) => CallAcc::Ref,
                    (false, true) => CallAcc::Mod,
                    (true, true) => CallAcc::RefMod,
                };
            }
            region = self.entry.region_meta(cur).parent;
        }
        CallAcc::Unknown
    }
}

/// Innermost region whose line scope contains `line`.
fn innermost_region_by_line(entry: EntryRef<'_>, line: u32) -> RegionId {
    let mut best = UNIT_REGION;
    let mut best_width = u32::MAX;
    for idx in 0..entry.num_regions() {
        let meta = entry.region_meta(RegionId(idx as u32));
        let (lo, hi) = meta.scope;
        if lo <= line && line <= hi {
            let width = hi - lo;
            if width < best_width || (width == best_width && meta.id.0 > best.0) {
                best = meta.id;
                best_width = width;
            }
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tables::tests::figure2_like;

    fn q(entry: &HliEntry) -> HliQuery<'_> {
        HliQuery::new(entry)
    }

    #[test]
    fn same_item_is_definite() {
        let e = figure2_like();
        let qx = q(&e);
        assert_eq!(qx.get_equiv_acc(ItemId(0), ItemId(0)), EquivAcc::Definite);
    }

    #[test]
    fn same_class_same_region_definite() {
        let e = figure2_like();
        let qx = q(&e);
        // Items 9 & 10: sum load/store in region 4 — same definite class.
        assert_eq!(qx.get_equiv_acc(ItemId(9), ItemId(10)), EquivAcc::Definite);
        // Items 5 & 7: b[j] load/store.
        assert_eq!(qx.get_equiv_acc(ItemId(5), ItemId(7)), EquivAcc::Definite);
    }

    #[test]
    fn different_classes_no_alias_none() {
        let e = figure2_like();
        let qx = q(&e);
        // b[j] vs b[j-1] within region 4: distinct classes, no alias entry
        // in region 4 (the LCDD covers the cross-iteration case).
        assert_eq!(qx.get_equiv_acc(ItemId(5), ItemId(6)), EquivAcc::None);
        // sum vs a[i] never overlap.
        assert_eq!(qx.get_equiv_acc(ItemId(9), ItemId(8)), EquivAcc::None);
    }

    #[test]
    fn aliased_classes_maybe() {
        let e = figure2_like();
        let qx = q(&e);
        // b[0] (item 3, region 3) vs b[j] (item 5, region 4): LCA is region
        // 3 where b[0] and b[0..9] are aliased.
        assert_eq!(qx.get_equiv_acc(ItemId(3), ItemId(5)), EquivAcc::Maybe);
    }

    #[test]
    fn cross_region_same_variable_maybe_via_parent_kind() {
        let e = figure2_like();
        let qx = q(&e);
        // a[i] in region 2 (item 1) vs a[i] in region 3 (item 4): LCA is the
        // unit where class a[0..9] is Maybe.
        assert_eq!(qx.get_equiv_acc(ItemId(1), ItemId(4)), EquivAcc::Maybe);
        // sum in region 2 (item 0) vs sum in region 4 (item 9): the unit
        // class for sum is Definite.
        assert_eq!(qx.get_equiv_acc(ItemId(0), ItemId(9)), EquivAcc::Definite);
    }

    #[test]
    fn unknown_for_unindexed_item() {
        let e = figure2_like();
        let qx = q(&e);
        assert_eq!(qx.get_equiv_acc(ItemId(0), ItemId(999)), EquivAcc::Unknown);
        assert!(EquivAcc::Unknown.may_overlap());
        assert!(!EquivAcc::None.may_overlap());
    }

    #[test]
    fn lcdd_lookup_both_directions() {
        let e = figure2_like();
        let qx = q(&e);
        // b[j] (5) → b[j-1] (6), distance 1, region 4.
        let fwd = qx.get_lcdd(ItemId(5), ItemId(6)).unwrap();
        assert_eq!(fwd.distance, Distance::Const(1));
        assert!(!fwd.reversed);
        let rev = qx.get_lcdd(ItemId(6), ItemId(5)).unwrap();
        assert!(rev.reversed);
        // No LCDD between sum items.
        assert!(qx.get_lcdd(ItemId(9), ItemId(10)).is_none());
    }

    #[test]
    fn region_of_item_and_info() {
        let e = figure2_like();
        let qx = q(&e);
        assert_eq!(qx.region_of_item(ItemId(5)), Some(RegionId(3)));
        assert_eq!(qx.item_info(ItemId(7)), Some((20, ItemType::Store)));
        assert!(qx.region_info(RegionId(3)).is_loop());
    }

    #[test]
    fn call_refmod_queries() {
        let mut e = figure2_like();
        // Add a call on line 13 (inside region 2's loop) and REF/MOD info
        // at region 2: the call may modify the "sum" class, not "a[i]".
        let call = e.fresh_id();
        e.line_table.push_item(13, ItemEntry { id: call, ty: ItemType::Call });
        let r2 = RegionId(1);
        e.region_mut(r2).scope = (12, 14);
        e.region_mut(RegionId(2)).scope = (16, 21);
        e.region_mut(RegionId(3)).scope = (19, 21);
        let (c_sum, c_ai) = {
            let r = e.region(r2);
            (r.equiv_classes[0].id, r.equiv_classes[1].id)
        };
        e.region_mut(r2).call_refmod.push(CallRefMod {
            callee: CallRef::Item(call),
            refs: vec![c_sum],
            mods: vec![c_sum],
        });
        let qx = q(&e);
        // Item 0 is sum in region 2.
        assert_eq!(qx.get_call_acc(ItemId(0), call), CallAcc::RefMod);
        // Item 1 is a[i] in region 2: entry exists, class not listed.
        assert_eq!(qx.get_call_acc(ItemId(1), call), CallAcc::None);
        let _ = c_ai;
        assert!(CallAcc::RefMod.may_modify() && CallAcc::RefMod.may_reference());
        assert!(!CallAcc::None.may_modify());
        assert!(CallAcc::Unknown.may_modify());
    }

    #[test]
    fn call_refmod_via_subregion_entry() {
        let mut e = figure2_like();
        // Call inside region 4 (line 20, innermost = RegionId(3)); REF/MOD
        // listed at region 3 (RegionId(2)) under the child on the path:
        // region 4 (RegionId(3)). It modifies b[0..9].
        let call = e.fresh_id();
        e.line_table.push_item(20, ItemEntry { id: call, ty: ItemType::Call });
        e.region_mut(RegionId(0)).scope = (10, 22);
        e.region_mut(RegionId(1)).scope = (12, 14);
        e.region_mut(RegionId(2)).scope = (16, 21);
        e.region_mut(RegionId(3)).scope = (19, 21);
        let c3_ball = e
            .region(RegionId(2))
            .equiv_classes
            .iter()
            .find(|c| c.name_hint == "b[0..9]")
            .unwrap()
            .id;
        e.region_mut(RegionId(2)).call_refmod.push(CallRefMod {
            callee: CallRef::SubRegion(RegionId(3)),
            refs: vec![],
            mods: vec![c3_ball],
        });
        let qx = q(&e);
        // Item 3 (b[0], region 3): entry exists at the LCA (region 3) and
        // b[0]'s class is not listed.
        assert_eq!(qx.get_call_acc(ItemId(3), call), CallAcc::None);
        // Item 5 (b[j], region 4): resolves to b[0..9] at region 3 → Mod.
        assert_eq!(qx.get_call_acc(ItemId(5), call), CallAcc::Mod);
        // Item 0 (sum, first loop): LCA is the unit, which has no entry.
        assert_eq!(qx.get_call_acc(ItemId(0), call), CallAcc::Unknown);
    }

    #[test]
    fn call_without_refmod_entry_is_unknown() {
        let mut e = figure2_like();
        let call = e.fresh_id();
        e.line_table.push_item(13, ItemEntry { id: call, ty: ItemType::Call });
        e.region_mut(RegionId(1)).scope = (12, 14);
        let qx = q(&e);
        assert_eq!(qx.get_call_acc(ItemId(0), call), CallAcc::Unknown);
    }

    #[test]
    fn queries_stamp_ids_only_under_a_provenance_sink() {
        use hli_obs::provenance::{self, ProvenanceSink};
        use std::sync::Arc;
        let e = figure2_like();
        // No sink: nothing is stamped.
        let plain = q(&e);
        let _ = plain.get_equiv_acc(ItemId(5), ItemId(6));
        assert!(plain.queries_since(0).is_empty());
        // Scoped sink: every basic query stamps a monotonic id, including
        // the alias query issued internally by get_equiv_acc.
        let sink = Arc::new(ProvenanceSink::new());
        let _g = provenance::scoped(sink);
        let lo = provenance::query_id_watermark();
        let qx = q(&e);
        let mark = qx.query_mark();
        let _ = qx.get_equiv_acc(ItemId(5), ItemId(6));
        let ids = qx.queries_since(mark);
        assert_eq!(ids.len(), 2, "equiv_acc over distinct classes also asks get_alias");
        assert!(ids.windows(2).all(|w| w[0] < w[1]));
        let hi = provenance::query_id_watermark();
        assert!(ids.iter().all(|i| i.0 >= lo && i.0 < hi));
        // owner_of neither counts nor stamps.
        let mark2 = qx.query_mark();
        assert_eq!(qx.owner_of(ItemId(5)), Some(RegionId(3)));
        assert!(qx.queries_since(mark2).is_empty());
    }

    #[test]
    fn class_resolution_propagates_to_unit() {
        let e = figure2_like();
        let qx = q(&e);
        // Item 5 (b[j], region 4) resolves at the unit region to b[0..9].
        let c = qx.class_of_item_at(UNIT_REGION, ItemId(5)).unwrap();
        let unit = e.region(UNIT_REGION);
        assert_eq!(unit.class(c).unwrap().name_hint, "b[0..9]");
    }
}
