//! On-demand HLI import (Section 3.2.1 of the paper).
//!
//! *"The HLI file is read on demand as GCC compiles a program function by
//! function. This approach eliminates the need to keep all of the HLI in
//! memory at the same time."*
//!
//! [`HliReader`] opens a version-2 (`HLI\x02`) image by parsing only its
//! per-unit directory; each program unit's entry is decoded on the first
//! [`HliReader::get`] for that unit and memoized, so repeated back-end
//! passes over the same function pay the decode cost once. Version-1
//! (`HLI\x01`) images are still accepted — they carry no directory, so the
//! whole file is decoded eagerly at open, preserving the old behaviour.
//!
//! Reader activity is mirrored into the metrics registry:
//!
//! * `hli.reader.opens` — images opened;
//! * `hli.reader.units_total` — units listed across all opened directories;
//! * `hli.reader.units_decoded` — units actually decoded (lazy opens decode
//!   strictly fewer than `units_total` when the back-end skips functions);
//! * `hli.reader.reused` — `get` calls served from an already-decoded unit.

use crate::serialize::{
    count_decoded, decode_entry, decode_file, get_len, get_str, read_magic, DecodeError,
    SerializeOpts, MAGIC, MAGIC_V2,
};
use crate::tables::HliEntry;
use hli_obs::Counter;
use std::cell::UnsafeCell;
use std::collections::HashMap;
use std::sync::Once;

/// One directory entry with its decode-once memo slot.
///
/// The memo is a [`Once`] plus an [`UnsafeCell`] rather than a plain
/// `OnceLock`: `Once::call_once` guarantees the decode closure runs
/// **exactly once** even when several back-end workers request the same
/// unit simultaneously — losers of the race block until the winner's
/// result is published, instead of redundantly decoding and discarding.
struct Unit {
    name: String,
    off: usize,
    len: usize,
    once: Once,
    /// Written exactly once, inside `once`; read only after
    /// `once.is_completed()`. That discipline is what makes the manual
    /// `Sync` impl below sound.
    slot: UnsafeCell<Option<Result<HliEntry, DecodeError>>>,
}

// SAFETY: `slot` is mutated only inside `once.call_once`, which provides
// the necessary happens-before edge; all other accesses are shared reads
// after `is_completed()` returns true.
unsafe impl Sync for Unit {}

impl Unit {
    fn new(name: String, off: usize, len: usize) -> Self {
        Unit {
            name,
            off,
            len,
            once: Once::new(),
            slot: UnsafeCell::new(None),
        }
    }

    fn decoded(&self) -> Option<&Result<HliEntry, DecodeError>> {
        if self.once.is_completed() {
            // SAFETY: completed => the slot was published and is now
            // immutable (see the `Sync` justification above).
            unsafe { (*self.slot.get()).as_ref() }
        } else {
            None
        }
    }
}

/// Run `decode` at most once for this unit and memoize its result. A
/// *panicking* decode is memoized as a [`DecodeError`] rather than
/// allowed to escape: letting the unwind cross `call_once` would poison
/// the `Once`, leaving the slot forever unwritten, and every later `get`
/// for the unit would then die at `decoded().expect(..)` with a message
/// pointing nowhere near the real bug. Returns the memoized result and
/// whether *this* call ran the decode (false = memo served).
fn decode_once(
    u: &Unit,
    decode: impl FnOnce() -> Result<HliEntry, DecodeError>,
) -> (&Result<HliEntry, DecodeError>, bool) {
    let mut ran = false;
    u.once.call_once(|| {
        ran = true;
        let entry = std::panic::catch_unwind(std::panic::AssertUnwindSafe(decode)).unwrap_or_else(
            |payload| {
                Err(DecodeError(format!(
                    "unit `{}` decode panicked: {}",
                    u.name,
                    panic_message(payload.as_ref())
                )))
            },
        );
        // SAFETY: inside this unit's `call_once`, the sole writer.
        unsafe { *u.slot.get() = Some(entry) };
    });
    (u.decoded().expect("call_once completed"), ran)
}

/// Best-effort rendering of a panic payload (the `&str`/`String` cases
/// `panic!` produces).
fn panic_message(payload: &(dyn std::any::Any + Send)) -> &str {
    payload
        .downcast_ref::<&str>()
        .copied()
        .or_else(|| payload.downcast_ref::<String>().map(String::as_str))
        .unwrap_or("non-string panic payload")
}

/// Lazily-decoding reader over an `HLI\x02` (or, eagerly, `HLI\x01`) image.
pub struct HliReader {
    data: Vec<u8>,
    opts: SerializeOpts,
    directory: Vec<Unit>,
    /// Name → directory index, built once at open so every `get` is a
    /// hash probe instead of a linear directory scan (which made
    /// `preload` and per-function back-end access O(n²) in unit count).
    /// On duplicate names the first entry wins, matching the old linear
    /// `find` semantics.
    index: HashMap<String, usize>,
    units_decoded: Counter,
    reused: Counter,
}

impl HliReader {
    /// Open an HLI image. For `HLI\x02` only the directory is parsed; for
    /// `HLI\x01` the whole file is decoded eagerly (backward compatibility).
    pub fn open(data: Vec<u8>, opts: SerializeOpts) -> Result<Self, DecodeError> {
        let _t = hli_obs::phase::timed("hli.reader.open");
        let r = hli_obs::metrics::cur();
        let opens = r.counter("hli.reader.opens");
        let units_total = r.counter("hli.reader.units_total");
        let units_decoded = r.counter("hli.reader.units_decoded");
        let reused = r.counter("hli.reader.reused");
        let mut rest = data.as_slice();
        let magic = read_magic(&mut rest)?;
        let directory = if magic == MAGIC_V2 {
            let b = &mut rest;
            let n = get_len(b)?;
            let mut lens = Vec::with_capacity(n.min(4096));
            for _ in 0..n {
                let name = get_str(b)?;
                let len = get_len(b)?;
                lens.push((name, len));
            }
            let mut offset = data.len() - b.len();
            let mut directory = Vec::with_capacity(lens.len());
            for (name, len) in lens {
                // `checked_add`: a hostile directory can declare a length
                // up to u64::MAX, and `offset + len` would wrap right past
                // this bounds check on release builds.
                let end = offset
                    .checked_add(len)
                    .filter(|&end| end <= data.len())
                    .ok_or_else(|| DecodeError(format!("entry `{name}` extends past end")))?;
                directory.push(Unit::new(name, offset, len));
                offset = end;
            }
            if offset != data.len() {
                return Err(DecodeError(format!(
                    "{} trailing byte(s) after last entry",
                    data.len() - offset
                )));
            }
            directory
        } else if magic == MAGIC {
            // v1 carries no directory: decode everything now (this also
            // meters the whole buffer as `hli.deserialize.bytes`).
            let file = decode_file(&data, opts)?;
            units_decoded.add(file.entries.len() as u64);
            file.entries
                .into_iter()
                .map(|e| {
                    let u = Unit::new(e.unit_name.clone(), 0, 0);
                    u.once.call_once(|| {
                        // SAFETY: inside this unit's `call_once`, the sole
                        // writer of the slot.
                        unsafe { *u.slot.get() = Some(Ok(e)) };
                    });
                    u
                })
                .collect()
        } else {
            return Err(DecodeError("bad magic".into()));
        };
        opens.inc();
        units_total.add(directory.len() as u64);
        let mut index = HashMap::with_capacity(directory.len());
        for (i, u) in directory.iter().enumerate() {
            index.entry(u.name.clone()).or_insert(i);
        }
        Ok(HliReader { data, opts, directory, index, units_decoded, reused })
    }

    /// Unit names in file order.
    pub fn units(&self) -> impl Iterator<Item = &str> {
        self.directory.iter().map(|u| u.name.as_str())
    }

    /// Number of units in the file's directory (decoded or not).
    pub fn len(&self) -> usize {
        self.directory.len()
    }

    /// True if the file holds no units at all.
    pub fn is_empty(&self) -> bool {
        self.directory.is_empty()
    }

    /// How many units have been decoded so far.
    pub fn decoded_units(&self) -> usize {
        self.directory.iter().filter(|u| u.once.is_completed()).count()
    }

    /// The entry for `unit`, decoding it on first request and serving the
    /// memoized copy afterwards. `Ok(None)` when the directory has no such
    /// unit.
    ///
    /// Thread-safe: when several workers request the same unit at once,
    /// exactly one decodes it (and counts `units_decoded`); the others
    /// block on the memo and count `reused`, like any later caller.
    pub fn get(&self, unit: &str) -> Result<Option<&HliEntry>, DecodeError> {
        let Some(u) = self.index.get(unit).map(|&i| &self.directory[i]) else {
            return Ok(None);
        };
        let (res, ran) = decode_once(u, || {
            let mut slice = &self.data[u.off..u.off + u.len];
            let entry = decode_entry(&mut slice, self.opts).and_then(|e| {
                if slice.is_empty() {
                    Ok(e)
                } else {
                    Err(DecodeError(format!("trailing bytes after `{unit}`")))
                }
            });
            if entry.is_ok() {
                count_decoded(u.len);
                self.units_decoded.inc();
            }
            entry
        });
        if !ran {
            self.reused.inc();
        }
        match res {
            Ok(e) => Ok(Some(e)),
            Err(err) => Err(err.clone()),
        }
    }

    /// Decode every unit now — the eager-import path expressed through the
    /// same reader, so callers can flip between eager and lazy behaviour
    /// with one call.
    pub fn preload(&self) -> Result<(), DecodeError> {
        let names: Vec<String> = self.units().map(String::from).collect();
        for n in &names {
            self.get(n)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::serialize::{encode_file, encode_file_v2};
    use crate::tables::tests::figure2_like;
    use crate::tables::HliFile;

    fn two_unit_file() -> HliFile {
        let mut e2 = figure2_like();
        e2.unit_name = "bar".into();
        HliFile { entries: vec![figure2_like(), e2] }
    }

    #[test]
    fn v2_reads_on_demand_and_memoizes() {
        let file = two_unit_file();
        let opts = SerializeOpts { include_names: true };
        let bytes = encode_file_v2(&file, opts);
        let rdr = HliReader::open(bytes, opts).unwrap();
        assert_eq!(rdr.len(), 2);
        assert_eq!(rdr.units().collect::<Vec<_>>(), vec!["foo", "bar"]);
        assert_eq!(rdr.decoded_units(), 0, "open parses only the directory");
        // Random access: read the second unit without touching the first.
        let bar = rdr.get("bar").unwrap().unwrap();
        assert_eq!(*bar, file.entries[1]);
        assert_eq!(rdr.decoded_units(), 1);
        // A second get serves the memoized entry (still one decode).
        let again = rdr.get("bar").unwrap().unwrap();
        assert!(std::ptr::eq(bar, again));
        assert_eq!(rdr.decoded_units(), 1);
        assert!(rdr.get("baz").unwrap().is_none());
    }

    #[test]
    fn v1_image_decodes_eagerly_for_compat() {
        let file = two_unit_file();
        let opts = SerializeOpts { include_names: true };
        let v1 = encode_file(&file, opts);
        let rdr = HliReader::open(v1, opts).unwrap();
        assert_eq!(rdr.decoded_units(), 2, "v1 has no directory: eager");
        assert_eq!(*rdr.get("foo").unwrap().unwrap(), file.entries[0]);
        assert_eq!(*rdr.get("bar").unwrap().unwrap(), file.entries[1]);
    }

    #[test]
    fn lazy_open_meters_fewer_bytes_than_eager() {
        let reg = std::sync::Arc::new(hli_obs::MetricsRegistry::new());
        let file = two_unit_file();
        let opts = SerializeOpts::default();
        let v1 = encode_file(&file, opts);
        let v2 = encode_file_v2(&file, opts);
        let eager = {
            let _g = hli_obs::metrics::scoped(reg.clone());
            HliReader::open(v1, opts).unwrap();
            reg.snapshot().counter("hli.deserialize.bytes")
        };
        let reg2 = std::sync::Arc::new(hli_obs::MetricsRegistry::new());
        let lazy = {
            let _g = hli_obs::metrics::scoped(reg2.clone());
            let rdr = HliReader::open(v2, opts).unwrap();
            rdr.preload().unwrap();
            reg2.snapshot().counter("hli.deserialize.bytes")
        };
        assert!(
            lazy < eager,
            "lazy decodes only bodies ({lazy}) vs eager whole file ({eager})"
        );
    }

    #[test]
    fn racing_threads_decode_each_unit_exactly_once() {
        // Satellite of the parallel-driver work: two threads hit the same
        // lazy unit through the same barrier; `Once` must let exactly one
        // of them decode while the other blocks and reuses the memo.
        use std::sync::{Arc, Barrier};
        let reg = Arc::new(hli_obs::MetricsRegistry::new());
        let file = two_unit_file();
        let opts = SerializeOpts { include_names: true };
        // Open under the scoped registry: the reader binds its counter
        // handles at open, so every thread's `get` meters into `reg`.
        let rdr = {
            let _g = hli_obs::metrics::scoped(reg.clone());
            HliReader::open(encode_file_v2(&file, opts), opts).unwrap()
        };
        let barrier = Barrier::new(2);
        let ptrs = std::thread::scope(|s| {
            let handles: Vec<_> = (0..2)
                .map(|_| {
                    let (rdr, barrier) = (&rdr, &barrier);
                    s.spawn(move || {
                        barrier.wait();
                        rdr.get("bar").unwrap().unwrap() as *const HliEntry as usize
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect::<Vec<_>>()
        });
        assert_eq!(ptrs[0], ptrs[1], "both threads see the same memoized entry");
        assert_eq!(rdr.decoded_units(), 1);
        let snap = reg.snapshot();
        assert_eq!(
            snap.counter("hli.reader.units_decoded"),
            1,
            "exactly one thread decoded the racing unit"
        );
        assert_eq!(
            snap.counter("hli.reader.reused"),
            1,
            "the losing thread reused the winner's memo"
        );
    }

    #[test]
    fn panicking_decode_memoizes_an_error_instead_of_poisoning() {
        // Regression: a panic escaping the decode closure used to poison
        // the unit's `Once`, so every later `get` for that unit panicked
        // at `decoded().expect("call_once completed")`. The memoizer must
        // turn the panic into a structured, repeatable `Err`.
        let u = Unit::new("boom".into(), 0, 0);
        let (res, ran) = decode_once(&u, || panic!("injected decode bug"));
        assert!(ran, "first call runs the decode");
        let err = res.as_ref().expect_err("panic must surface as Err").clone();
        assert!(
            err.0.contains("decode panicked") && err.0.contains("injected decode bug"),
            "error must carry the panic payload: {err:?}"
        );
        // Later requests serve the same memoized error — no poisoned-Once
        // panic, and the decode closure never runs again.
        let (res2, ran2) = decode_once(&u, || unreachable!("memo must be served"));
        assert!(!ran2, "second call must not re-decode");
        assert_eq!(res2.as_ref().err(), Some(&err));
    }

    #[test]
    fn hostile_directory_length_cannot_wrap_the_bounds_check() {
        // Regression: `offset + len > data.len()` wrapped on a declared
        // length near u64::MAX (debug builds panicked on the overflow;
        // release builds wrapped past the check and registered a unit
        // whose body slice would read out of bounds). A max-varint length
        // must be rejected at open with a clean error.
        let mut hostile = Vec::new();
        hostile.extend_from_slice(&MAGIC_V2);
        hostile.push(1); // one directory entry
        hostile.push(3);
        hostile.extend_from_slice(b"foo"); // name
                                           // LEB128 for u64::MAX: nine 0xFF continuation bytes + 0x01.
        hostile.extend_from_slice(&[0xFF; 9]);
        hostile.push(0x01);
        let err = match HliReader::open(hostile, SerializeOpts::default()) {
            Err(e) => e,
            Ok(_) => panic!("u64::MAX body length must be rejected"),
        };
        assert!(err.0.contains("extends past end"), "got: {err:?}");
    }

    #[test]
    fn many_unit_lookup_is_indexed_not_linear() {
        // Regression for the O(n²) `preload`: `get` used to scan the
        // directory linearly per call. With the name→index map, the cost
        // of a (missing-name) lookup is independent of directory size, so
        // k probes against a 100×-larger directory must not cost anywhere
        // near 100× more. Missing names are probed so no decode time can
        // mask the lookup cost; the 20× bound leaves a wide margin over
        // the ~1× expected of a hash probe while staying far below the
        // ~100× a linear scan exhibits.
        let opts = SerializeOpts::default();
        let build = |n: usize| {
            let entries = (0..n)
                .map(|i| {
                    let mut e = figure2_like();
                    e.unit_name = format!("unit_{i:06}");
                    e
                })
                .collect();
            HliReader::open(encode_file_v2(&HliFile { entries }, opts), opts).unwrap()
        };
        let small = build(40);
        let large = build(4000);
        let probes = 40_000;
        let time_probes = |rdr: &HliReader| {
            let start = std::time::Instant::now();
            for i in 0..probes {
                // Same name shape as real units so comparison cost matches.
                assert!(rdr.get(&format!("unit_{i:06}_missing")).unwrap().is_none());
            }
            start.elapsed()
        };
        // Warm up allocator/caches once before timing either side.
        time_probes(&small);
        let t_small = time_probes(&small).max(std::time::Duration::from_micros(100));
        let t_large = time_probes(&large);
        let ratio = t_large.as_secs_f64() / t_small.as_secs_f64();
        assert!(
            ratio < 20.0,
            "lookup cost scaled with directory size (100x units -> {ratio:.1}x \
             time; a linear scan shows ~100x, an index ~1x)"
        );
        // The index must agree with directory order and still find real units.
        assert_eq!(large.get("unit_003999").unwrap().unwrap().unit_name, "unit_003999");
        assert_eq!(large.decoded_units(), 1);
    }

    #[test]
    fn corruption_fails_cleanly_never_panics() {
        let file = HliFile { entries: vec![figure2_like()] };
        let bytes = encode_file_v2(&file, SerializeOpts::default());
        assert!(HliReader::open(b"NOPE".to_vec(), SerializeOpts::default()).is_err());
        // A directory entry declaring a max-varint (u64::MAX) body length
        // must fail the checked bounds test, not wrap it (see
        // `hostile_directory_length_cannot_wrap_the_bounds_check`).
        let mut maxlen = Vec::new();
        maxlen.extend_from_slice(&MAGIC_V2);
        maxlen.push(1);
        maxlen.push(1);
        maxlen.push(b'f');
        maxlen.extend_from_slice(&[0xFF; 9]);
        maxlen.push(0x01);
        assert!(HliReader::open(maxlen, SerializeOpts::default()).is_err());
        // Trailing garbage after the last body is rejected at open, matching
        // the v1 decoder's strictness.
        let mut trailing = bytes.clone();
        trailing.extend_from_slice(b"XX");
        assert!(HliReader::open(trailing, SerializeOpts::default()).is_err());
        // Truncations fail at open or at get, never panic.
        for cut in 0..bytes.len() {
            let slice = bytes[..cut].to_vec();
            if let Ok(r) = HliReader::open(slice, SerializeOpts::default()) {
                let _ = r.get("foo");
            }
        }
    }
}
