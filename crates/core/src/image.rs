//! Zero-copy HLI images (`HLI\x03`).
//!
//! The v1/v2 containers decode each unit into an owned [`HliEntry`], so
//! import cost and peak RSS grow with corpus size even when the back-end
//! only *reads* the tables. The v3 container stores every table as
//! fixed-width little-endian `u32` words so a borrowed
//! [`HliEntryView`] can serve the five basic queries **directly from the
//! image bytes** — no per-unit allocation, no decode pass.
//!
//! Layout contract (see DESIGN.md "Zero-copy image layout & overlay
//! contract" for the full rules):
//!
//! * everything is `u32` little-endian words; the file length must be a
//!   multiple of 4 ("misaligned" images are rejected at open), and every
//!   intra-file table offset is expressed in words, so no view read can
//!   ever be torn or unaligned — words are assembled with
//!   `u32::from_le_bytes`, which is defined for any byte position;
//! * file = magic word `HLI\x03` · unit count · directory
//!   (4 words per unit: name byte-offset/byte-length, body
//!   word-offset/word-length) · names pool (padded) · word-aligned bodies;
//! * body = 8 header words (`next_id`, flags, `n_lines`, `n_items`,
//!   `n_regions`, string-pool word offset, string-pool byte length,
//!   reserved 0) · line records (3 words) · item records (2 words) ·
//!   region records (16 words) · auxiliary pools (class/member/alias/
//!   LCDD/REF-MOD records and raw id pools) · string pool (padded).
//!
//! Trust boundary: [`HliImage::open`] checks only the file frame; the
//! first access to a unit runs a **structural** validation pass
//! (memoized) proving every offset, count and tag in the body in-bounds
//! and well-formed, which is what makes all view accessors infallible —
//! a truncated, bit-flipped or misaligned image fails at open or at view
//! construction with a [`DecodeError`], never a panic or an
//! out-of-bounds read. *Semantic* validity (partition property, alias
//! locality, …) remains [`HliEntry::verify`]'s job: the back-end's
//! `vet_unit` materializes a transient owned entry from the view and
//! verifies it, keeping `verify` the single trust boundary for blindly
//! mapped bytes.
//!
//! Mutation: views are immutable. [`HliImage::entry_mut`] materializes a
//! copy-on-write overlay ([`HliEntry`]) for exactly the units the
//! maintenance API touches; [`HliImage::get_ref`] then serves the
//! overlay (with its live [`HliEntry::generation`]) instead of the view,
//! so `QueryCache`'s `(unit, generation)` validity key keeps working
//! unchanged — views report generation 0, the same value a freshly
//! decoded owned entry carries.
//!
//! Reader activity is mirrored into the metrics registry under
//! `hli.image.*`: `opens`, `units_total`, `units_validated` (structural
//! passes run), `overlays` (units materialized for mutation). Bytes
//! consumed by the open itself (magic + directory + names) are counted
//! as `hli.deserialize.bytes`, so importbench's eager/lazy/zero-copy
//! byte comparison stays honest; view accesses decode nothing and count
//! nothing.

use crate::ids::{ItemId, RegionId, UNIT_REGION};
use crate::serialize::{count_decoded, count_encoded, DecodeError, SerializeOpts};
use crate::tables::{
    AliasEntry, CallRef, CallRefMod, DepKind, Distance, EquivClass, EquivKind, HliEntry, HliFile,
    ItemEntry, ItemType, LcddEntry, LineTable, MemberRef, Region, RegionKind,
};
use std::collections::HashMap;
use std::sync::OnceLock;

/// Magic bytes of the zero-copy container: `HLI\x03`.
pub const MAGIC_V3: [u8; 4] = *b"HLI\x03";

const HDR_WORDS: u32 = 8;
const LINE_WORDS: u32 = 3;
const ITEM_WORDS: u32 = 2;
const REGION_WORDS: u32 = 16;
const CLASS_WORDS: u32 = 6;
const MEMBER_WORDS: u32 = 3;
const ALIAS_WORDS: u32 = 2;
const LCDD_WORDS: u32 = 5;
const CRM_WORDS: u32 = 6;

// ---------------------------------------------------------------------------
// Encoding
// ---------------------------------------------------------------------------

fn item_ty_tag(ty: ItemType) -> u32 {
    match ty {
        ItemType::Load => 0,
        ItemType::Store => 1,
        ItemType::Call => 2,
    }
}

fn push_sp(sp: &mut Vec<u8>, s: &str) -> (u32, u32) {
    let off = sp.len() as u32;
    sp.extend_from_slice(s.as_bytes());
    (off, s.len() as u32)
}

/// Encode one entry as a word-aligned v3 body.
fn encode_entry_v3(e: &HliEntry, opts: SerializeOpts) -> Vec<u32> {
    let mut b = vec![0u32; HDR_WORDS as usize];
    let mut sp: Vec<u8> = Vec::new();
    // Line records, then the flat item array they index into.
    let n_lines = e.line_table.lines.len() as u32;
    let mut first = 0u32;
    for l in &e.line_table.lines {
        b.push(l.line);
        b.push(first);
        b.push(l.items.len() as u32);
        first += l.items.len() as u32;
    }
    let n_items = first;
    for l in &e.line_table.lines {
        for it in &l.items {
            b.push(it.id.0);
            b.push(item_ty_tag(it.ty));
        }
    }
    // Region records are fixed-width, so reserve the block and patch each
    // record after its auxiliary pools are laid down.
    let reg_base = b.len();
    b.resize(reg_base + e.regions.len() * REGION_WORDS as usize, 0);
    for (i, r) in e.regions.iter().enumerate() {
        let sub_off = b.len() as u32;
        for s in &r.subregions {
            b.push(s.0);
        }
        // Per-class member pools (and string-pool hints) first, then the
        // contiguous class-record block they are referenced from.
        let mut class_meta = Vec::with_capacity(r.equiv_classes.len());
        for c in &r.equiv_classes {
            let member_off = b.len() as u32;
            for m in &c.members {
                match *m {
                    MemberRef::Item(id) => b.extend_from_slice(&[0, id.0, 0]),
                    MemberRef::SubClass { region, class } => {
                        b.extend_from_slice(&[1, region.0, class.0])
                    }
                }
            }
            let (hint_off, hint_len) = if opts.include_names {
                push_sp(&mut sp, &c.name_hint)
            } else {
                (0, 0)
            };
            class_meta.push((member_off, hint_off, hint_len));
        }
        let class_off = b.len() as u32;
        for (c, (member_off, hint_off, hint_len)) in r.equiv_classes.iter().zip(&class_meta) {
            let kind = match c.kind {
                EquivKind::Definite => 0,
                EquivKind::Maybe => 1,
            };
            b.extend_from_slice(&[
                c.id.0,
                kind,
                *member_off,
                c.members.len() as u32,
                *hint_off,
                *hint_len,
            ]);
        }
        let mut alias_meta = Vec::with_capacity(r.alias_table.len());
        for a in &r.alias_table {
            let off = b.len() as u32;
            for c in &a.classes {
                b.push(c.0);
            }
            alias_meta.push((off, a.classes.len() as u32));
        }
        let alias_off = b.len() as u32;
        for (off, count) in &alias_meta {
            b.extend_from_slice(&[*off, *count]);
        }
        let lcdd_off = b.len() as u32;
        for d in &r.lcdd_table {
            let kind = match d.kind {
                DepKind::Definite => 0,
                DepKind::Maybe => 1,
            };
            let (dist_tag, dist_val) = match d.distance {
                Distance::Const(k) => (0, k),
                Distance::Unknown => (1, 0),
            };
            b.extend_from_slice(&[d.src.0, d.dst.0, kind, dist_tag, dist_val]);
        }
        let mut crm_meta = Vec::with_capacity(r.call_refmod.len());
        for c in &r.call_refmod {
            let refs_off = b.len() as u32;
            for id in &c.refs {
                b.push(id.0);
            }
            let mods_off = b.len() as u32;
            for id in &c.mods {
                b.push(id.0);
            }
            crm_meta.push((refs_off, mods_off));
        }
        let crm_off = b.len() as u32;
        for (c, (refs_off, mods_off)) in r.call_refmod.iter().zip(&crm_meta) {
            let (callee_tag, callee_id) = match c.callee {
                CallRef::Item(id) => (0, id.0),
                CallRef::SubRegion(rg) => (1, rg.0),
            };
            b.extend_from_slice(&[
                callee_tag,
                callee_id,
                *refs_off,
                c.refs.len() as u32,
                *mods_off,
                c.mods.len() as u32,
            ]);
        }
        let rec = reg_base + i * REGION_WORDS as usize;
        let (kind_tag, header_line) = match r.kind {
            RegionKind::Unit => (0, 0),
            RegionKind::Loop { header_line } => (1, header_line),
        };
        b[rec] = r.id.0;
        b[rec + 1] = kind_tag;
        b[rec + 2] = header_line;
        b[rec + 3] = r.parent.map_or(0, |p| p.0 + 1);
        b[rec + 4] = r.scope.0;
        b[rec + 5] = r.scope.1;
        b[rec + 6] = class_off;
        b[rec + 7] = r.equiv_classes.len() as u32;
        b[rec + 8] = alias_off;
        b[rec + 9] = r.alias_table.len() as u32;
        b[rec + 10] = lcdd_off;
        b[rec + 11] = r.lcdd_table.len() as u32;
        b[rec + 12] = crm_off;
        b[rec + 13] = r.call_refmod.len() as u32;
        b[rec + 14] = sub_off;
        b[rec + 15] = r.subregions.len() as u32;
    }
    let str_off = b.len() as u32;
    let str_len = sp.len() as u32;
    while !sp.len().is_multiple_of(4) {
        sp.push(0);
    }
    for chunk in sp.chunks_exact(4) {
        b.push(u32::from_le_bytes(chunk.try_into().unwrap()));
    }
    b[0] = e.next_id;
    b[1] = u32::from(opts.include_names);
    b[2] = n_lines;
    b[3] = n_items;
    b[4] = e.regions.len() as u32;
    b[5] = str_off;
    b[6] = str_len;
    b[7] = 0;
    b
}

/// Serialize a whole HLI file as a zero-copy `HLI\x03` image: a
/// word-aligned directory plus one fixed-width word-table body per unit,
/// readable through [`HliImage`] without decoding.
pub fn encode_file_v3(file: &HliFile, opts: SerializeOpts) -> Vec<u8> {
    let _t = hli_obs::phase::timed("hli.encode");
    let bodies: Vec<Vec<u32>> = file.entries.iter().map(|e| encode_entry_v3(e, opts)).collect();
    let n = file.entries.len();
    let dir_words = 2 + 4 * n;
    let mut names: Vec<u8> = Vec::new();
    let mut name_meta = Vec::with_capacity(n);
    for e in &file.entries {
        let off = dir_words * 4 + names.len();
        names.extend_from_slice(e.unit_name.as_bytes());
        name_meta.push((off as u32, e.unit_name.len() as u32));
    }
    while !names.len().is_multiple_of(4) {
        names.push(0);
    }
    let mut body_off = (dir_words + names.len() / 4) as u32;
    let mut out: Vec<u8> = Vec::with_capacity(
        (dir_words + names.len() / 4 + bodies.iter().map(Vec::len).sum::<usize>()) * 4,
    );
    out.extend_from_slice(&MAGIC_V3);
    out.extend_from_slice(&(n as u32).to_le_bytes());
    for ((name_off, name_len), body) in name_meta.iter().zip(&bodies) {
        out.extend_from_slice(&name_off.to_le_bytes());
        out.extend_from_slice(&name_len.to_le_bytes());
        out.extend_from_slice(&body_off.to_le_bytes());
        out.extend_from_slice(&(body.len() as u32).to_le_bytes());
        body_off += body.len() as u32;
    }
    out.extend_from_slice(&names);
    for body in &bodies {
        for w in body {
            out.extend_from_slice(&w.to_le_bytes());
        }
    }
    count_encoded(out.len());
    out
}

// ---------------------------------------------------------------------------
// Structural validation
// ---------------------------------------------------------------------------

fn word_at(data: &[u8], w: usize) -> u32 {
    let o = w * 4;
    u32::from_le_bytes(data[o..o + 4].try_into().unwrap())
}

/// Fallible word reader used only while a body is still untrusted.
struct Check<'a> {
    b: &'a [u8],
    unit: &'a str,
}

impl Check<'_> {
    fn n_words(&self) -> u64 {
        (self.b.len() / 4) as u64
    }

    fn w(&self, i: u64, what: &str) -> Result<u32, DecodeError> {
        if i >= self.n_words() {
            return Err(DecodeError(format!(
                "unit `{}`: {what} at word {i} is past the body end ({} words)",
                self.unit,
                self.n_words()
            )));
        }
        Ok(word_at(self.b, i as usize))
    }

    /// Check `off + count*size` stays within `lim` words and return `off`.
    fn range(
        &self,
        off: u32,
        count: u32,
        size: u32,
        lim: u64,
        what: &str,
    ) -> Result<u64, DecodeError> {
        let end = u64::from(off) + u64::from(count) * u64::from(size);
        if end > lim {
            return Err(DecodeError(format!(
                "unit `{}`: {what} [{off} +{count}x{size}] extends past word {lim}",
                self.unit
            )));
        }
        Ok(u64::from(off))
    }

    fn tag(&self, v: u32, max: u32, what: &str) -> Result<u32, DecodeError> {
        if v > max {
            return Err(DecodeError(format!("unit `{}`: bad {what} tag {v}", self.unit)));
        }
        Ok(v)
    }
}

/// One structural pass over a body: prove every offset, count and tag a
/// view accessor will ever follow in-bounds and well-formed, so the
/// accessors themselves can be infallible. Semantic validity is *not*
/// checked here — that stays with [`HliEntry::verify`].
fn validate_body(b: &[u8], unit: &str) -> Result<(), DecodeError> {
    let c = Check { b, unit };
    if c.n_words() < u64::from(HDR_WORDS) {
        return Err(DecodeError(format!("unit `{unit}`: body shorter than its header")));
    }
    let flags = c.w(1, "flags")?;
    if flags & !1 != 0 {
        return Err(DecodeError(format!("unit `{unit}`: unknown flags {flags:#x}")));
    }
    if c.w(7, "reserved")? != 0 {
        return Err(DecodeError(format!("unit `{unit}`: nonzero reserved header word")));
    }
    let n_lines = c.w(2, "n_lines")?;
    let n_items = c.w(3, "n_items")?;
    let n_regions = c.w(4, "n_regions")?;
    if n_regions == 0 {
        return Err(DecodeError(format!("unit `{unit}`: no unit region")));
    }
    let str_off = c.w(5, "str_off")?;
    let str_len = c.w(6, "str_len")?;
    // The string pool must close the body exactly (padded to a word), and
    // every word table must sit strictly below it — this both bounds all
    // table offsets and rejects trailing garbage.
    let str_words = u64::from(str_len).div_ceil(4);
    if u64::from(str_off) < u64::from(HDR_WORDS) || u64::from(str_off) + str_words != c.n_words() {
        return Err(DecodeError(format!(
            "unit `{unit}`: string pool [{str_off} +{str_len}B] does not close the body"
        )));
    }
    let lim = u64::from(str_off);
    let sp = &b[str_off as usize * 4..str_off as usize * 4 + str_len as usize];
    let lines_off = c.range(HDR_WORDS, n_lines, LINE_WORDS, lim, "line table")?;
    let items_off = lines_off + u64::from(n_lines) * u64::from(LINE_WORDS);
    c.range(items_off as u32, n_items, ITEM_WORDS, lim, "item table")?;
    let regs_off = items_off + u64::from(n_items) * u64::from(ITEM_WORDS);
    c.range(regs_off as u32, n_regions, REGION_WORDS, lim, "region table")?;
    // Fixed tables can silently overflow u32 in the running offsets above
    // only if their sizes already exceeded `lim`, which range() rejects
    // (lim < 2^30 since body bytes fit memory); keep the arithmetic in
    // u64 regardless.
    for i in 0..u64::from(n_lines) {
        let rec = lines_off + i * u64::from(LINE_WORDS);
        let first = c.w(rec + 1, "line first_item")?;
        let count = c.w(rec + 2, "line item count")?;
        if u64::from(first) + u64::from(count) > u64::from(n_items) {
            return Err(DecodeError(format!(
                "unit `{unit}`: line record {i} spans items [{first} +{count}] of {n_items}"
            )));
        }
    }
    for i in 0..u64::from(n_items) {
        c.tag(c.w(items_off + i * 2 + 1, "item type")?, 2, "item type")?;
    }
    for i in 0..u64::from(n_regions) {
        let rec = regs_off + i * u64::from(REGION_WORDS);
        c.tag(c.w(rec + 1, "region kind")?, 1, "region kind")?;
        let parent_plus1 = c.w(rec + 3, "region parent")?;
        // Parents must come strictly before their children so the view's
        // parent chase (region_path / region_lca) always terminates.
        if parent_plus1 != 0 && u64::from(parent_plus1 - 1) >= i {
            return Err(DecodeError(format!(
                "unit `{unit}`: region {i} has parent {} not before it",
                parent_plus1 - 1
            )));
        }
        if i == 0 && parent_plus1 != 0 {
            return Err(DecodeError(format!("unit `{unit}`: region 0 has a parent")));
        }
        let class_off = c.w(rec + 6, "class_off")?;
        let class_count = c.w(rec + 7, "class_count")?;
        let classes = c.range(class_off, class_count, CLASS_WORDS, lim, "class table")?;
        for k in 0..u64::from(class_count) {
            let crec = classes + k * u64::from(CLASS_WORDS);
            c.tag(c.w(crec + 1, "class kind")?, 1, "class kind")?;
            let member_off = c.w(crec + 2, "member_off")?;
            let member_count = c.w(crec + 3, "member_count")?;
            let members = c.range(member_off, member_count, MEMBER_WORDS, lim, "member pool")?;
            for m in 0..u64::from(member_count) {
                let mrec = members + m * u64::from(MEMBER_WORDS);
                let tag = c.tag(c.w(mrec, "member")?, 1, "member")?;
                if tag == 1 && c.w(mrec + 1, "member region")? >= n_regions {
                    return Err(DecodeError(format!(
                        "unit `{unit}`: member references region {} of {n_regions}",
                        c.w(mrec + 1, "member region")?
                    )));
                }
            }
            let hint_off = c.w(crec + 4, "hint_off")?;
            let hint_len = c.w(crec + 5, "hint_len")?;
            let hint_end = u64::from(hint_off) + u64::from(hint_len);
            if hint_end > u64::from(str_len) {
                return Err(DecodeError(format!(
                    "unit `{unit}`: hint [{hint_off} +{hint_len}B] outside the string pool"
                )));
            }
            if std::str::from_utf8(&sp[hint_off as usize..hint_end as usize]).is_err() {
                return Err(DecodeError(format!("unit `{unit}`: hint is not UTF-8")));
            }
        }
        let alias_off = c.w(rec + 8, "alias_off")?;
        let alias_count = c.w(rec + 9, "alias_count")?;
        let aliases = c.range(alias_off, alias_count, ALIAS_WORDS, lim, "alias table")?;
        for k in 0..u64::from(alias_count) {
            let arec = aliases + k * u64::from(ALIAS_WORDS);
            c.range(
                c.w(arec, "alias ids_off")?,
                c.w(arec + 1, "alias ids_count")?,
                1,
                lim,
                "alias id pool",
            )?;
        }
        let lcdd_off = c.w(rec + 10, "lcdd_off")?;
        let lcdd_count = c.w(rec + 11, "lcdd_count")?;
        let lcdds = c.range(lcdd_off, lcdd_count, LCDD_WORDS, lim, "LCDD table")?;
        for k in 0..u64::from(lcdd_count) {
            let lrec = lcdds + k * u64::from(LCDD_WORDS);
            c.tag(c.w(lrec + 2, "LCDD kind")?, 1, "LCDD kind")?;
            c.tag(c.w(lrec + 3, "LCDD distance")?, 1, "LCDD distance")?;
        }
        let crm_off = c.w(rec + 12, "crm_off")?;
        let crm_count = c.w(rec + 13, "crm_count")?;
        let crms = c.range(crm_off, crm_count, CRM_WORDS, lim, "REF/MOD table")?;
        for k in 0..u64::from(crm_count) {
            let crec = crms + k * u64::from(CRM_WORDS);
            let tag = c.tag(c.w(crec, "callee")?, 1, "callee")?;
            if tag == 1 && c.w(crec + 1, "callee region")? >= n_regions {
                return Err(DecodeError(format!(
                    "unit `{unit}`: REF/MOD callee region out of range"
                )));
            }
            c.range(
                c.w(crec + 2, "refs_off")?,
                c.w(crec + 3, "refs_count")?,
                1,
                lim,
                "ref pool",
            )?;
            c.range(
                c.w(crec + 4, "mods_off")?,
                c.w(crec + 5, "mods_count")?,
                1,
                lim,
                "mod pool",
            )?;
        }
        let sub_off = c.w(rec + 14, "sub_off")?;
        let sub_count = c.w(rec + 15, "sub_count")?;
        let subs = c.range(sub_off, sub_count, 1, lim, "subregion pool")?;
        for k in 0..u64::from(sub_count) {
            if c.w(subs + k, "subregion")? >= n_regions {
                return Err(DecodeError(format!("unit `{unit}`: subregion id out of range")));
            }
        }
    }
    Ok(())
}

// ---------------------------------------------------------------------------
// The borrowed view
// ---------------------------------------------------------------------------

/// Header-plus-scope metadata of one region, copied out of an image or an
/// owned [`Region`]. This is the `Copy` answer [`EntryRef::region_meta`]
/// (and the query layer's `region_info`) returns, since a view has no
/// owned [`Region`] to borrow.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RegionMeta {
    /// The region's ID.
    pub id: RegionId,
    /// Unit region or loop region.
    pub kind: RegionKind,
    /// The enclosing region; `None` only for the unit region.
    pub parent: Option<RegionId>,
    /// Source-line span `[lo, hi]` of the region.
    pub scope: (u32, u32),
}

impl RegionMeta {
    /// Is this a loop region (vs. the unit region)?
    pub fn is_loop(&self) -> bool {
        matches!(self.kind, RegionKind::Loop { .. })
    }

    fn of(r: &Region) -> Self {
        RegionMeta { id: r.id, kind: r.kind, parent: r.parent, scope: r.scope }
    }
}

/// A borrowed, structurally-validated window over one unit's body in an
/// `HLI\x03` image. All accessors read the image words directly — nothing
/// is decoded or allocated — and are infallible because the structural
/// validation pass ran before the view was handed out. `Copy`, so it
/// can be passed around as freely as `&HliEntry`.
#[derive(Clone, Copy)]
pub struct HliEntryView<'a> {
    name: &'a str,
    body: &'a [u8],
}

impl<'a> HliEntryView<'a> {
    fn w(&self, i: u32) -> u32 {
        word_at(self.body, i as usize)
    }

    /// Name of the program unit the view describes.
    pub fn unit_name(&self) -> &'a str {
        self.name
    }

    /// The unit's next free item/class ID (header word 0).
    pub fn next_id(&self) -> u32 {
        self.w(0)
    }

    /// Whether the image carries class name hints (flags bit 0).
    pub fn has_name_hints(&self) -> bool {
        self.w(1) & 1 != 0
    }

    /// Number of regions in the unit.
    pub fn num_regions(&self) -> usize {
        self.w(4) as usize
    }

    fn n_lines(&self) -> u32 {
        self.w(2)
    }

    fn n_items(&self) -> u32 {
        self.w(3)
    }

    fn lines_off(&self) -> u32 {
        HDR_WORDS
    }

    fn items_off(&self) -> u32 {
        self.lines_off() + self.n_lines() * LINE_WORDS
    }

    fn region_rec(&self, r: usize) -> u32 {
        assert!(r < self.num_regions(), "region {r} out of range");
        self.items_off() + self.n_items() * ITEM_WORDS + r as u32 * REGION_WORDS
    }

    fn strings(&self) -> &'a [u8] {
        let off = self.w(5) as usize * 4;
        &self.body[off..off + self.w(6) as usize]
    }

    fn item_at(&self, i: u32) -> ItemEntry {
        let rec = self.items_off() + i * ITEM_WORDS;
        let ty = match self.w(rec + 1) {
            0 => ItemType::Load,
            1 => ItemType::Store,
            _ => ItemType::Call,
        };
        ItemEntry { id: ItemId(self.w(rec)), ty }
    }

    /// Region header metadata. Panics if `r` is out of range, matching
    /// the owned [`HliEntry::region`] accessor.
    pub fn region_meta(&self, r: RegionId) -> RegionMeta {
        let rec = self.region_rec(r.0 as usize);
        let kind = if self.w(rec + 1) == 0 {
            RegionKind::Unit
        } else {
            RegionKind::Loop { header_line: self.w(rec + 2) }
        };
        let p = self.w(rec + 3);
        RegionMeta {
            id: RegionId(self.w(rec)),
            kind,
            parent: (p != 0).then(|| RegionId(p - 1)),
            scope: (self.w(rec + 4), self.w(rec + 5)),
        }
    }

    /// All line-table items in line order then intra-line order, as
    /// `(line, item)` pairs — the view analogue of `LineTable::items`.
    pub fn line_items(&self) -> LineItems<'a> {
        LineItems {
            inner: LineItemsInner::View { img: *self, line: 0, in_line: 0 },
        }
    }

    /// The classes defined at region `r`.
    pub fn classes(&self, r: RegionId) -> Classes<'a> {
        let rec = self.region_rec(r.0 as usize);
        Classes {
            inner: ClassesInner::View { img: *self, off: self.w(rec + 6), left: self.w(rec + 7) },
        }
    }

    /// The alias entries of region `r`.
    pub fn alias_entries(&self, r: RegionId) -> Aliases<'a> {
        let rec = self.region_rec(r.0 as usize);
        Aliases {
            inner: AliasesInner::View { img: *self, off: self.w(rec + 8), left: self.w(rec + 9) },
        }
    }

    /// The loop-carried dependence arcs of region `r`.
    pub fn lcdd(&self, r: RegionId) -> Lcdds<'a> {
        let rec = self.region_rec(r.0 as usize);
        Lcdds {
            inner: LcddsInner::View { img: *self, off: self.w(rec + 10), left: self.w(rec + 11) },
        }
    }

    /// The call REF/MOD entries of region `r`.
    pub fn call_refmods(&self, r: RegionId) -> Crms<'a> {
        let rec = self.region_rec(r.0 as usize);
        Crms {
            inner: CrmsInner::View { img: *self, off: self.w(rec + 12), left: self.w(rec + 13) },
        }
    }

    /// The immediate sub-regions of region `r`, in stored order.
    pub fn subregions(&self, r: RegionId) -> SubRegions<'a> {
        let rec = self.region_rec(r.0 as usize);
        SubRegions {
            inner: SubRegionsInner::View {
                img: *self,
                off: self.w(rec + 14),
                left: self.w(rec + 15),
            },
        }
    }

    /// Decode the view into an owned [`HliEntry`] (generation 0). This is
    /// the bridge to the mutable world: `vet_unit` verifies the
    /// materialized copy, and [`HliImage::entry_mut`] stores one as the
    /// unit's copy-on-write overlay. Deliberately **not** metered as
    /// `hli.deserialize.bytes` — materialization is an explicit opt-out
    /// of the zero-copy read path, accounted under `hli.image.*`.
    pub fn materialize(&self) -> HliEntry {
        let mut line_table = LineTable::default();
        for i in 0..self.n_lines() {
            let rec = self.lines_off() + i * LINE_WORDS;
            let (line, first, count) = (self.w(rec), self.w(rec + 1), self.w(rec + 2));
            for k in 0..count {
                line_table.push_item(line, self.item_at(first + k));
            }
        }
        let regions = (0..self.num_regions())
            .map(|ri| {
                let r = RegionId(ri as u32);
                let meta = self.region_meta(r);
                Region {
                    id: meta.id,
                    kind: meta.kind,
                    parent: meta.parent,
                    subregions: self.subregions(r).collect(),
                    scope: meta.scope,
                    equiv_classes: self
                        .classes(r)
                        .map(|c| EquivClass {
                            id: c.id(),
                            kind: c.kind(),
                            members: c.members().collect(),
                            name_hint: c.name_hint().to_string(),
                        })
                        .collect(),
                    alias_table: self
                        .alias_entries(r)
                        .map(|a| AliasEntry { classes: a.classes().collect() })
                        .collect(),
                    lcdd_table: self.lcdd(r).collect(),
                    call_refmod: self
                        .call_refmods(r)
                        .map(|c| CallRefMod {
                            callee: c.callee(),
                            refs: c.refs().collect(),
                            mods: c.mods().collect(),
                        })
                        .collect(),
                }
            })
            .collect();
        HliEntry {
            unit_name: self.name.to_string(),
            line_table,
            regions,
            next_id: self.next_id(),
            generation: 0,
        }
    }
}

// ---------------------------------------------------------------------------
// EntryRef: one accessor surface over owned entries and views
// ---------------------------------------------------------------------------

/// A borrowed HLI entry that is either an owned [`HliEntry`] (v1/v2
/// import, or a COW overlay) or a zero-copy [`HliEntryView`]. `Copy`, so
/// the back-end can hand it through lookups exactly like the `&HliEntry`
/// it used to pass; the query layer reads both shapes through one
/// accessor surface.
#[derive(Clone, Copy)]
pub enum EntryRef<'a> {
    /// A decoded (or overlaid) owned entry.
    Owned(&'a HliEntry),
    /// A borrowed view straight over image bytes.
    View(HliEntryView<'a>),
}

impl<'a> EntryRef<'a> {
    /// Name of the program unit.
    pub fn unit_name(&self) -> &'a str {
        match self {
            EntryRef::Owned(e) => &e.unit_name,
            EntryRef::View(v) => v.unit_name(),
        }
    }

    /// The entry's maintenance generation. Views are immutable, so they
    /// report 0 — the same value a freshly decoded owned entry carries —
    /// keeping `QueryCache`'s `(unit, generation)` validity key sound:
    /// any mutation goes through a materialized overlay whose generation
    /// is bumped past 0 by the maintenance API.
    pub fn generation(&self) -> u64 {
        match self {
            EntryRef::Owned(e) => e.generation,
            EntryRef::View(_) => 0,
        }
    }

    /// Number of regions in the unit.
    pub fn num_regions(&self) -> usize {
        match self {
            EntryRef::Owned(e) => e.regions.len(),
            EntryRef::View(v) => v.num_regions(),
        }
    }

    /// Region header metadata. Panics if `r` is out of range, like
    /// [`HliEntry::region`].
    pub fn region_meta(&self, r: RegionId) -> RegionMeta {
        match self {
            EntryRef::Owned(e) => RegionMeta::of(e.region(r)),
            EntryRef::View(v) => v.region_meta(r),
        }
    }

    /// All line-table items in line order then intra-line order.
    pub fn line_items(&self) -> LineItems<'a> {
        match self {
            EntryRef::Owned(e) => LineItems {
                inner: LineItemsInner::Owned { lines: e.line_table.lines.iter(), cur: None },
            },
            EntryRef::View(v) => v.line_items(),
        }
    }

    /// The classes defined at region `r`.
    pub fn classes(&self, r: RegionId) -> Classes<'a> {
        match self {
            EntryRef::Owned(e) => {
                Classes { inner: ClassesInner::Owned(e.region(r).equiv_classes.iter()) }
            }
            EntryRef::View(v) => v.classes(r),
        }
    }

    /// The alias entries of region `r`.
    pub fn alias_entries(&self, r: RegionId) -> Aliases<'a> {
        match self {
            EntryRef::Owned(e) => {
                Aliases { inner: AliasesInner::Owned(e.region(r).alias_table.iter()) }
            }
            EntryRef::View(v) => v.alias_entries(r),
        }
    }

    /// The loop-carried dependence arcs of region `r`.
    pub fn lcdd(&self, r: RegionId) -> Lcdds<'a> {
        match self {
            EntryRef::Owned(e) => Lcdds { inner: LcddsInner::Owned(e.region(r).lcdd_table.iter()) },
            EntryRef::View(v) => v.lcdd(r),
        }
    }

    /// The call REF/MOD entries of region `r`.
    pub fn call_refmods(&self, r: RegionId) -> Crms<'a> {
        match self {
            EntryRef::Owned(e) => Crms { inner: CrmsInner::Owned(e.region(r).call_refmod.iter()) },
            EntryRef::View(v) => v.call_refmods(r),
        }
    }

    /// The immediate sub-regions of region `r`, in stored order.
    pub fn subregions(&self, r: RegionId) -> SubRegions<'a> {
        match self {
            EntryRef::Owned(e) => {
                SubRegions { inner: SubRegionsInner::Owned(e.region(r).subregions.iter()) }
            }
            EntryRef::View(v) => v.subregions(r),
        }
    }

    /// Path from the unit region down to `region` (inclusive), mirroring
    /// [`HliEntry::region_path`]. Terminates on views because structural
    /// validation requires parents to precede their children.
    pub fn region_path(&self, region: RegionId) -> Vec<RegionId> {
        let mut path = vec![region];
        let mut cur = region;
        while let Some(p) = self.region_meta(cur).parent {
            path.push(p);
            cur = p;
        }
        path.reverse();
        path
    }

    /// Lowest common ancestor of two regions, mirroring
    /// [`HliEntry::region_lca`].
    pub fn region_lca(&self, a: RegionId, b: RegionId) -> RegionId {
        let pa = self.region_path(a);
        let pb = self.region_path(b);
        let mut lca = UNIT_REGION;
        for (x, y) in pa.iter().zip(pb.iter()) {
            if x == y {
                lca = *x;
            } else {
                break;
            }
        }
        lca
    }

    /// An owned copy of the entry: a clone for `Owned`, a decode for
    /// `View`. The back-end's `vet_unit` runs [`HliEntry::verify`] on
    /// this copy, keeping `verify` the single trust boundary.
    pub fn materialize(&self) -> HliEntry {
        match self {
            EntryRef::Owned(e) => (*e).clone(),
            EntryRef::View(v) => v.materialize(),
        }
    }

    /// Do the entry's serializable tables equal `other`'s? (`Owned`
    /// compares directly; a view is materialized first.)
    pub fn same_tables(&self, other: &HliEntry) -> bool {
        match self {
            EntryRef::Owned(e) => *e == other,
            EntryRef::View(v) => v.materialize() == *other,
        }
    }
}

// ---------------------------------------------------------------------------
// Iterators and per-record handles
// ---------------------------------------------------------------------------

/// Iterator over `(line, item)` pairs (see [`EntryRef::line_items`]).
pub struct LineItems<'a> {
    inner: LineItemsInner<'a>,
}

enum LineItemsInner<'a> {
    Owned {
        lines: std::slice::Iter<'a, crate::tables::LineEntry>,
        cur: Option<(u32, std::slice::Iter<'a, ItemEntry>)>,
    },
    View {
        img: HliEntryView<'a>,
        line: u32,
        in_line: u32,
    },
}

impl Iterator for LineItems<'_> {
    type Item = (u32, ItemEntry);

    fn next(&mut self) -> Option<(u32, ItemEntry)> {
        match &mut self.inner {
            LineItemsInner::Owned { lines, cur } => loop {
                if let Some((line, items)) = cur {
                    if let Some(it) = items.next() {
                        return Some((*line, *it));
                    }
                }
                let l = lines.next()?;
                *cur = Some((l.line, l.items.iter()));
            },
            LineItemsInner::View { img, line, in_line } => loop {
                if *line >= img.n_lines() {
                    return None;
                }
                let rec = img.lines_off() + *line * LINE_WORDS;
                let (src, first, count) = (img.w(rec), img.w(rec + 1), img.w(rec + 2));
                if *in_line < count {
                    let it = img.item_at(first + *in_line);
                    *in_line += 1;
                    return Some((src, it));
                }
                *line += 1;
                *in_line = 0;
            },
        }
    }
}

/// One equivalent-access class, borrowed from an owned entry or an image.
#[derive(Clone, Copy)]
pub struct ClassRef<'a> {
    inner: ClassRefInner<'a>,
}

#[derive(Clone, Copy)]
enum ClassRefInner<'a> {
    Owned(&'a EquivClass),
    View { img: HliEntryView<'a>, rec: u32 },
}

impl<'a> ClassRef<'a> {
    /// The class's ID.
    pub fn id(&self) -> ItemId {
        match self.inner {
            ClassRefInner::Owned(c) => c.id,
            ClassRefInner::View { img, rec } => ItemId(img.w(rec)),
        }
    }

    /// Definite equivalence, or a may-alias merge.
    pub fn kind(&self) -> EquivKind {
        match self.inner {
            ClassRefInner::Owned(c) => c.kind,
            ClassRefInner::View { img, rec } => {
                if img.w(rec + 1) == 0 {
                    EquivKind::Definite
                } else {
                    EquivKind::Maybe
                }
            }
        }
    }

    /// The class's members.
    pub fn members(&self) -> Members<'a> {
        match self.inner {
            ClassRefInner::Owned(c) => Members { inner: MembersInner::Owned(c.members.iter()) },
            ClassRefInner::View { img, rec } => Members {
                inner: MembersInner::View { img, off: img.w(rec + 2), left: img.w(rec + 3) },
            },
        }
    }

    /// Debug label (empty when the image was encoded without names).
    pub fn name_hint(&self) -> &'a str {
        match self.inner {
            ClassRefInner::Owned(c) => &c.name_hint,
            ClassRefInner::View { img, rec } => {
                let (off, len) = (img.w(rec + 4) as usize, img.w(rec + 5) as usize);
                // Validated: in-bounds and UTF-8.
                std::str::from_utf8(&img.strings()[off..off + len]).unwrap()
            }
        }
    }
}

/// Iterator over a region's classes (see [`EntryRef::classes`]).
pub struct Classes<'a> {
    inner: ClassesInner<'a>,
}

enum ClassesInner<'a> {
    Owned(std::slice::Iter<'a, EquivClass>),
    View {
        img: HliEntryView<'a>,
        off: u32,
        left: u32,
    },
}

impl<'a> Iterator for Classes<'a> {
    type Item = ClassRef<'a>;

    fn next(&mut self) -> Option<ClassRef<'a>> {
        match &mut self.inner {
            ClassesInner::Owned(it) => {
                it.next().map(|c| ClassRef { inner: ClassRefInner::Owned(c) })
            }
            ClassesInner::View { img, off, left } => {
                if *left == 0 {
                    return None;
                }
                let rec = *off;
                *off += CLASS_WORDS;
                *left -= 1;
                Some(ClassRef { inner: ClassRefInner::View { img: *img, rec } })
            }
        }
    }
}

/// Iterator over a class's members (see [`ClassRef::members`]).
pub struct Members<'a> {
    inner: MembersInner<'a>,
}

enum MembersInner<'a> {
    Owned(std::slice::Iter<'a, MemberRef>),
    View {
        img: HliEntryView<'a>,
        off: u32,
        left: u32,
    },
}

impl Iterator for Members<'_> {
    type Item = MemberRef;

    fn next(&mut self) -> Option<MemberRef> {
        match &mut self.inner {
            MembersInner::Owned(it) => it.next().copied(),
            MembersInner::View { img, off, left } => {
                if *left == 0 {
                    return None;
                }
                let rec = *off;
                *off += MEMBER_WORDS;
                *left -= 1;
                Some(if img.w(rec) == 0 {
                    MemberRef::Item(ItemId(img.w(rec + 1)))
                } else {
                    MemberRef::SubClass {
                        region: RegionId(img.w(rec + 1)),
                        class: ItemId(img.w(rec + 2)),
                    }
                })
            }
        }
    }
}

/// One alias entry, borrowed from an owned entry or an image.
#[derive(Clone, Copy)]
pub struct AliasRef<'a> {
    inner: AliasRefInner<'a>,
}

#[derive(Clone, Copy)]
enum AliasRefInner<'a> {
    Owned(&'a AliasEntry),
    View { img: HliEntryView<'a>, rec: u32 },
}

impl AliasRef<'_> {
    /// The classes that may overlap; all defined at the owning region.
    pub fn classes(&self) -> Ids<'_> {
        match self.inner {
            AliasRefInner::Owned(a) => Ids { inner: IdsInner::Owned(a.classes.iter()) },
            AliasRefInner::View { img, rec } => Ids {
                inner: IdsInner::View { img, off: img.w(rec), left: img.w(rec + 1) },
            },
        }
    }
}

/// Iterator over a region's alias entries (see [`EntryRef::alias_entries`]).
pub struct Aliases<'a> {
    inner: AliasesInner<'a>,
}

enum AliasesInner<'a> {
    Owned(std::slice::Iter<'a, AliasEntry>),
    View {
        img: HliEntryView<'a>,
        off: u32,
        left: u32,
    },
}

impl<'a> Iterator for Aliases<'a> {
    type Item = AliasRef<'a>;

    fn next(&mut self) -> Option<AliasRef<'a>> {
        match &mut self.inner {
            AliasesInner::Owned(it) => {
                it.next().map(|a| AliasRef { inner: AliasRefInner::Owned(a) })
            }
            AliasesInner::View { img, off, left } => {
                if *left == 0 {
                    return None;
                }
                let rec = *off;
                *off += ALIAS_WORDS;
                *left -= 1;
                Some(AliasRef { inner: AliasRefInner::View { img: *img, rec } })
            }
        }
    }
}

/// Iterator over a region's immediate sub-region IDs.
pub struct SubRegions<'a> {
    inner: SubRegionsInner<'a>,
}

enum SubRegionsInner<'a> {
    Owned(std::slice::Iter<'a, RegionId>),
    View {
        img: HliEntryView<'a>,
        off: u32,
        left: u32,
    },
}

impl Iterator for SubRegions<'_> {
    type Item = RegionId;

    fn next(&mut self) -> Option<RegionId> {
        match &mut self.inner {
            SubRegionsInner::Owned(it) => it.next().copied(),
            SubRegionsInner::View { img, off, left } => {
                if *left == 0 {
                    return None;
                }
                let id = RegionId(img.w(*off));
                *off += 1;
                *left -= 1;
                Some(id)
            }
        }
    }
}

/// Iterator over a pool of [`ItemId`]s (alias classes, REF/MOD lists).
pub struct Ids<'a> {
    inner: IdsInner<'a>,
}

enum IdsInner<'a> {
    Owned(std::slice::Iter<'a, ItemId>),
    View {
        img: HliEntryView<'a>,
        off: u32,
        left: u32,
    },
}

impl Iterator for Ids<'_> {
    type Item = ItemId;

    fn next(&mut self) -> Option<ItemId> {
        match &mut self.inner {
            IdsInner::Owned(it) => it.next().copied(),
            IdsInner::View { img, off, left } => {
                if *left == 0 {
                    return None;
                }
                let id = ItemId(img.w(*off));
                *off += 1;
                *left -= 1;
                Some(id)
            }
        }
    }
}

/// Iterator over a region's LCDD arcs (see [`EntryRef::lcdd`]).
pub struct Lcdds<'a> {
    inner: LcddsInner<'a>,
}

enum LcddsInner<'a> {
    Owned(std::slice::Iter<'a, LcddEntry>),
    View {
        img: HliEntryView<'a>,
        off: u32,
        left: u32,
    },
}

impl Iterator for Lcdds<'_> {
    type Item = LcddEntry;

    fn next(&mut self) -> Option<LcddEntry> {
        match &mut self.inner {
            LcddsInner::Owned(it) => it.next().copied(),
            LcddsInner::View { img, off, left } => {
                if *left == 0 {
                    return None;
                }
                let rec = *off;
                *off += LCDD_WORDS;
                *left -= 1;
                Some(LcddEntry {
                    src: ItemId(img.w(rec)),
                    dst: ItemId(img.w(rec + 1)),
                    kind: if img.w(rec + 2) == 0 {
                        DepKind::Definite
                    } else {
                        DepKind::Maybe
                    },
                    distance: if img.w(rec + 3) == 0 {
                        Distance::Const(img.w(rec + 4))
                    } else {
                        Distance::Unknown
                    },
                })
            }
        }
    }
}

/// One call REF/MOD entry, borrowed from an owned entry or an image.
#[derive(Clone, Copy)]
pub struct CrmRef<'a> {
    inner: CrmRefInner<'a>,
}

#[derive(Clone, Copy)]
enum CrmRefInner<'a> {
    Owned(&'a CallRefMod),
    View { img: HliEntryView<'a>, rec: u32 },
}

impl CrmRef<'_> {
    /// Which call(s) the entry describes.
    pub fn callee(&self) -> CallRef {
        match self.inner {
            CrmRefInner::Owned(c) => c.callee,
            CrmRefInner::View { img, rec } => {
                if img.w(rec) == 0 {
                    CallRef::Item(ItemId(img.w(rec + 1)))
                } else {
                    CallRef::SubRegion(RegionId(img.w(rec + 1)))
                }
            }
        }
    }

    /// Classes possibly read by the call(s).
    pub fn refs(&self) -> Ids<'_> {
        match self.inner {
            CrmRefInner::Owned(c) => Ids { inner: IdsInner::Owned(c.refs.iter()) },
            CrmRefInner::View { img, rec } => Ids {
                inner: IdsInner::View { img, off: img.w(rec + 2), left: img.w(rec + 3) },
            },
        }
    }

    /// Classes possibly written by the call(s).
    pub fn mods(&self) -> Ids<'_> {
        match self.inner {
            CrmRefInner::Owned(c) => Ids { inner: IdsInner::Owned(c.mods.iter()) },
            CrmRefInner::View { img, rec } => Ids {
                inner: IdsInner::View { img, off: img.w(rec + 4), left: img.w(rec + 5) },
            },
        }
    }
}

/// Iterator over a region's REF/MOD entries (see [`EntryRef::call_refmods`]).
pub struct Crms<'a> {
    inner: CrmsInner<'a>,
}

enum CrmsInner<'a> {
    Owned(std::slice::Iter<'a, CallRefMod>),
    View {
        img: HliEntryView<'a>,
        off: u32,
        left: u32,
    },
}

impl<'a> Iterator for Crms<'a> {
    type Item = CrmRef<'a>;

    fn next(&mut self) -> Option<CrmRef<'a>> {
        match &mut self.inner {
            CrmsInner::Owned(it) => it.next().map(|c| CrmRef { inner: CrmRefInner::Owned(c) }),
            CrmsInner::View { img, off, left } => {
                if *left == 0 {
                    return None;
                }
                let rec = *off;
                *off += CRM_WORDS;
                *left -= 1;
                Some(CrmRef { inner: CrmRefInner::View { img: *img, rec } })
            }
        }
    }
}

// ---------------------------------------------------------------------------
// The image
// ---------------------------------------------------------------------------

struct ImageUnit {
    /// Byte range of the unit's name in the file (validated UTF-8).
    name: (usize, usize),
    /// Word range of the unit's body in the file.
    body_off: u32,
    body_len: u32,
    /// Memoized structural-validation verdict: run at most once per unit,
    /// shared by every later view request (including across threads).
    validated: OnceLock<Result<(), DecodeError>>,
}

/// A zero-copy `HLI\x03` image: serves [`HliEntryView`]s straight over
/// the file bytes, with copy-on-write [`HliEntry`] overlays for units the
/// maintenance API mutates. Shareable across back-end workers (`Sync`).
pub struct HliImage {
    data: Vec<u8>,
    units: Vec<ImageUnit>,
    index: HashMap<String, usize>,
    /// COW arena: `Some` only for units [`HliImage::entry_mut`] touched.
    overlays: Vec<Option<Box<HliEntry>>>,
    units_validated: hli_obs::Counter,
}

impl HliImage {
    /// Open an image from in-memory bytes. Only the file frame (magic,
    /// directory, names) is checked and metered here — O(units), not
    /// O(bytes); bodies are validated lazily on first access.
    pub fn open(data: Vec<u8>, _opts: SerializeOpts) -> Result<Self, DecodeError> {
        let _t = hli_obs::phase::timed("hli.image.open");
        let r = hli_obs::metrics::cur();
        if !data.len().is_multiple_of(4) {
            return Err(DecodeError(format!("image length {} is not word-aligned", data.len())));
        }
        let n_words = data.len() / 4;
        if n_words < 2 {
            return Err(DecodeError("image shorter than its header".into()));
        }
        if data[0..4] != MAGIC_V3 {
            return Err(DecodeError("bad magic".into()));
        }
        let n = word_at(&data, 1) as usize;
        let dir_words = 2usize
            .checked_add(n.checked_mul(4).ok_or_else(|| DecodeError("unit count overflow".into()))?)
            .ok_or_else(|| DecodeError("unit count overflow".into()))?;
        if dir_words > n_words {
            return Err(DecodeError(format!("directory of {n} units past the image end")));
        }
        let mut units = Vec::with_capacity(n);
        let mut names_bytes = 0usize;
        let mut max_end = dir_words as u64;
        for i in 0..n {
            let rec = 2 + 4 * i;
            let name_off = word_at(&data, rec) as usize;
            let name_len = word_at(&data, rec + 1) as usize;
            let body_off = word_at(&data, rec + 2);
            let body_len = word_at(&data, rec + 3);
            let name_end = name_off
                .checked_add(name_len)
                .filter(|&e| e <= data.len())
                .ok_or_else(|| DecodeError(format!("unit {i}: name extends past end")))?;
            std::str::from_utf8(&data[name_off..name_end])
                .map_err(|_| DecodeError(format!("unit {i}: name is not UTF-8")))?;
            let body_end = u64::from(body_off) + u64::from(body_len);
            if body_end > n_words as u64 {
                return Err(DecodeError(format!(
                    "unit {i}: body [{body_off} +{body_len}w] extends past end"
                )));
            }
            max_end = max_end.max(body_end).max((name_end as u64).div_ceil(4));
            names_bytes += name_len;
            units.push(ImageUnit {
                name: (name_off, name_end),
                body_off,
                body_len,
                validated: OnceLock::new(),
            });
        }
        if max_end != n_words as u64 {
            return Err(DecodeError(format!(
                "{} trailing word(s) after the last body",
                n_words as u64 - max_end
            )));
        }
        let mut index = HashMap::with_capacity(n);
        for (i, u) in units.iter().enumerate() {
            let name = std::str::from_utf8(&data[u.name.0..u.name.1]).unwrap();
            index.entry(name.to_string()).or_insert(i);
        }
        r.counter("hli.image.opens").inc();
        r.counter("hli.image.units_total").add(n as u64);
        // The open consumed exactly the frame: header + directory + names.
        count_decoded(dir_words * 4 + names_bytes);
        let overlays = (0..n).map(|_| None).collect();
        Ok(HliImage {
            data,
            units,
            index,
            overlays,
            units_validated: r.counter("hli.image.units_validated"),
        })
    }

    /// Open an image file with positioned reads (`pread`) into a private
    /// buffer — the portable stand-in for `mmap` in a std-only workspace:
    /// one up-front copy, after which every access is zero-copy against
    /// the buffer.
    pub fn open_file(path: &std::path::Path, opts: SerializeOpts) -> Result<Self, DecodeError> {
        let data = read_file_pread(path)
            .map_err(|e| DecodeError(format!("read `{}`: {e}", path.display())))?;
        Self::open(data, opts)
    }

    /// Unit names in file order.
    pub fn units(&self) -> impl Iterator<Item = &str> {
        self.units.iter().map(|u| self.name_of(u))
    }

    fn name_of(&self, u: &ImageUnit) -> &str {
        // Validated UTF-8 at open.
        std::str::from_utf8(&self.data[u.name.0..u.name.1]).unwrap()
    }

    /// Number of units in the image's directory.
    pub fn len(&self) -> usize {
        self.units.len()
    }

    /// True if the image holds no units at all.
    pub fn is_empty(&self) -> bool {
        self.units.is_empty()
    }

    /// How many units have passed (or failed) structural validation.
    pub fn validated_units(&self) -> usize {
        self.units.iter().filter(|u| u.validated.get().is_some()).count()
    }

    /// How many units have a copy-on-write overlay.
    pub fn overlaid_units(&self) -> usize {
        self.overlays.iter().filter(|o| o.is_some()).count()
    }

    fn view_at(&self, i: usize) -> Result<HliEntryView<'_>, DecodeError> {
        let u = &self.units[i];
        let name = self.name_of(u);
        let body = &self.data[u.body_off as usize * 4..(u.body_off + u.body_len) as usize * 4];
        let verdict = u.validated.get_or_init(|| {
            self.units_validated.inc();
            validate_body(body, name)
        });
        match verdict {
            Ok(()) => Ok(HliEntryView { name, body }),
            Err(e) => Err(e.clone()),
        }
    }

    /// The entry for `unit`: its COW overlay when one exists, otherwise a
    /// zero-copy view (structurally validated on first access, memoized —
    /// thread-safe like `HliReader::get`). `Ok(None)` when the directory
    /// has no such unit; `Err` when the unit's body fails validation.
    pub fn get_ref(&self, unit: &str) -> Result<Option<EntryRef<'_>>, DecodeError> {
        let Some(&i) = self.index.get(unit) else {
            return Ok(None);
        };
        if let Some(e) = self.overlays[i].as_deref() {
            return Ok(Some(EntryRef::Owned(e)));
        }
        self.view_at(i).map(|v| Some(EntryRef::View(v)))
    }

    /// Mutable access for the maintenance API: materializes the unit's
    /// copy-on-write overlay on first call (counted as
    /// `hli.image.overlays`) and returns it on every later one. The
    /// overlay starts at generation 0 — the same value its view reported —
    /// and the maintenance ops bump it from there, so query caches keyed
    /// on `(unit, generation)` invalidate exactly as with owned files.
    pub fn entry_mut(&mut self, unit: &str) -> Result<Option<&mut HliEntry>, DecodeError> {
        let Some(&i) = self.index.get(unit) else {
            return Ok(None);
        };
        if self.overlays[i].is_none() {
            let e = self.view_at(i)?.materialize();
            hli_obs::metrics::cur().counter("hli.image.overlays").inc();
            self.overlays[i] = Some(Box::new(e));
        }
        Ok(self.overlays[i].as_deref_mut())
    }
}

#[cfg(unix)]
fn read_file_pread(path: &std::path::Path) -> std::io::Result<Vec<u8>> {
    use std::os::unix::fs::FileExt;
    let f = std::fs::File::open(path)?;
    let len = usize::try_from(f.metadata()?.len())
        .map_err(|_| std::io::Error::new(std::io::ErrorKind::InvalidData, "file too large"))?;
    let mut buf = vec![0u8; len];
    let mut off = 0;
    while off < len {
        let n = f.read_at(&mut buf[off..], off as u64)?;
        if n == 0 {
            return Err(std::io::Error::new(
                std::io::ErrorKind::UnexpectedEof,
                "file shrank while reading",
            ));
        }
        off += n;
    }
    Ok(buf)
}

#[cfg(not(unix))]
fn read_file_pread(path: &std::path::Path) -> std::io::Result<Vec<u8>> {
    std::fs::read(path)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tables::tests::figure2_like;

    fn two_unit_file() -> HliFile {
        let mut e2 = figure2_like();
        e2.unit_name = "bar".into();
        HliFile { entries: vec![figure2_like(), e2] }
    }

    #[test]
    fn materialized_views_round_trip_exactly() {
        for include_names in [true, false] {
            let opts = SerializeOpts { include_names };
            let file = two_unit_file();
            let bytes = encode_file_v3(&file, opts);
            let img = HliImage::open(bytes, opts).unwrap();
            assert_eq!(img.len(), 2);
            assert_eq!(img.units().collect::<Vec<_>>(), vec!["foo", "bar"]);
            for want in &file.entries {
                let got = match img.get_ref(&want.unit_name).unwrap().unwrap() {
                    EntryRef::View(v) => v.materialize(),
                    EntryRef::Owned(_) => panic!("fresh image must serve views"),
                };
                if include_names {
                    assert_eq!(got, *want);
                } else {
                    // Hints are dropped by compact encoding on every path.
                    let mut stripped = want.clone();
                    for r in &mut stripped.regions {
                        for c in &mut r.equiv_classes {
                            c.name_hint.clear();
                        }
                    }
                    assert_eq!(got, stripped);
                }
            }
        }
    }

    #[test]
    fn views_match_owned_accessors() {
        let opts = SerializeOpts { include_names: true };
        let e = figure2_like();
        let file = HliFile { entries: vec![e.clone()] };
        let img = HliImage::open(encode_file_v3(&file, opts), opts).unwrap();
        let view = img.get_ref("foo").unwrap().unwrap();
        let owned = EntryRef::Owned(&e);
        assert_eq!(view.unit_name(), "foo");
        assert_eq!(view.generation(), 0);
        assert_eq!(view.num_regions(), owned.num_regions());
        assert_eq!(
            view.line_items().collect::<Vec<_>>(),
            owned.line_items().collect::<Vec<_>>()
        );
        for ri in 0..e.regions.len() {
            let r = RegionId(ri as u32);
            assert_eq!(view.region_meta(r), owned.region_meta(r));
            assert_eq!(view.region_path(r), e.region_path(r));
            let vc: Vec<_> = view
                .classes(r)
                .map(|c| {
                    (
                        c.id(),
                        c.kind(),
                        c.members().collect::<Vec<_>>(),
                        c.name_hint().to_string(),
                    )
                })
                .collect();
            let oc: Vec<_> = owned
                .classes(r)
                .map(|c| {
                    (
                        c.id(),
                        c.kind(),
                        c.members().collect::<Vec<_>>(),
                        c.name_hint().to_string(),
                    )
                })
                .collect();
            assert_eq!(vc, oc);
            assert_eq!(
                view.alias_entries(r)
                    .map(|a| a.classes().collect::<Vec<_>>())
                    .collect::<Vec<_>>(),
                owned
                    .alias_entries(r)
                    .map(|a| a.classes().collect::<Vec<_>>())
                    .collect::<Vec<_>>()
            );
            assert_eq!(view.lcdd(r).collect::<Vec<_>>(), owned.lcdd(r).collect::<Vec<_>>());
            let vcrm: Vec<_> = view
                .call_refmods(r)
                .map(|c| (c.callee(), c.refs().collect::<Vec<_>>(), c.mods().collect::<Vec<_>>()))
                .collect();
            let ocrm: Vec<_> = owned
                .call_refmods(r)
                .map(|c| (c.callee(), c.refs().collect::<Vec<_>>(), c.mods().collect::<Vec<_>>()))
                .collect();
            assert_eq!(vcrm, ocrm);
        }
        assert_eq!(
            view.region_lca(RegionId(3), RegionId(2)),
            e.region_lca(RegionId(3), RegionId(2))
        );
        assert!(view.same_tables(&e));
    }

    #[test]
    fn open_decodes_only_the_directory() {
        let reg = std::sync::Arc::new(hli_obs::MetricsRegistry::new());
        let opts = SerializeOpts::default();
        let bytes = encode_file_v3(&two_unit_file(), opts);
        let total = bytes.len() as u64;
        let _g = hli_obs::metrics::scoped(reg.clone());
        let img = HliImage::open(bytes, opts).unwrap();
        let open_bytes = reg.snapshot().counter("hli.deserialize.bytes");
        assert!(
            open_bytes > 0 && open_bytes < total / 4,
            "open must meter only the frame ({open_bytes} of {total} B)"
        );
        // Serving and walking a view decodes nothing further.
        let r = img.get_ref("foo").unwrap().unwrap();
        let _ = r.line_items().count();
        assert_eq!(reg.snapshot().counter("hli.deserialize.bytes"), open_bytes);
        assert_eq!(reg.snapshot().counter("hli.image.units_validated"), 1);
    }

    #[test]
    fn cow_overlay_is_allocated_only_for_mutated_units() {
        let opts = SerializeOpts { include_names: true };
        let file = two_unit_file();
        let mut img = HliImage::open(encode_file_v3(&file, opts), opts).unwrap();
        assert_eq!(img.overlaid_units(), 0);
        // Mutate `foo` through the maintenance API on its overlay.
        let e = img.entry_mut("foo").unwrap().unwrap();
        assert_eq!(e.generation, 0);
        crate::maintain::delete_item(e, ItemId(0)).unwrap();
        assert!(e.generation > 0, "maintenance bumps the overlay generation");
        assert_eq!(img.overlaid_units(), 1, "only the mutated unit pays for an overlay");
        // The overlay (with its bumped generation) now shadows the view...
        let foo = img.get_ref("foo").unwrap().unwrap();
        assert!(matches!(foo, EntryRef::Owned(_)));
        assert!(foo.generation() > 0);
        assert!(!foo.same_tables(&file.entries[0]), "the mutation is visible");
        // ...while the untouched unit keeps being served zero-copy.
        let bar = img.get_ref("bar").unwrap().unwrap();
        assert!(matches!(bar, EntryRef::View(_)));
        assert!(bar.same_tables(&file.entries[1]));
        assert!(img.entry_mut("missing").unwrap().is_none());
    }

    #[test]
    fn pread_open_matches_in_memory_open() {
        let opts = SerializeOpts { include_names: true };
        let bytes = encode_file_v3(&two_unit_file(), opts);
        let dir = std::path::Path::new(concat!(env!("CARGO_MANIFEST_DIR"), "/../../target"));
        let path = dir.join(format!("zero-copy-pread-test-{}.hli", std::process::id()));
        std::fs::write(&path, &bytes).unwrap();
        let img = HliImage::open_file(&path, opts).unwrap();
        std::fs::remove_file(&path).ok();
        assert_eq!(img.len(), 2);
        let got = img.get_ref("bar").unwrap().unwrap().materialize();
        assert_eq!(got, two_unit_file().entries[1]);
        assert!(HliImage::open_file(&dir.join("no-such-image.hli"), opts).is_err());
    }

    #[test]
    fn misaligned_truncated_and_corrupt_images_fail_cleanly() {
        let opts = SerializeOpts { include_names: true };
        let bytes = encode_file_v3(&two_unit_file(), opts);
        // A clean image must open and validate.
        assert!(HliImage::open(bytes.clone(), opts).is_ok());
        // Misaligned: any non-word length is rejected at open.
        for cut in [1usize, 2, 3] {
            let err = HliImage::open(bytes[..bytes.len() - cut].to_vec(), opts)
                .err()
                .expect("misaligned image must be rejected");
            assert!(err.0.contains("word-aligned"), "got: {err:?}");
        }
        assert!(HliImage::open(b"HLI".to_vec(), opts).is_err());
        assert!(HliImage::open(b"NOPE0000".to_vec(), opts).is_err());
        // Trailing words after the last body are rejected (v1/v2 parity).
        let mut trailing = bytes.clone();
        trailing.extend_from_slice(&[0, 0, 0, 0]);
        assert!(HliImage::open(trailing, opts).is_err());
        // Word-aligned truncations must fail at open or at view
        // construction/walk — never panic, never read out of bounds.
        for cut in (0..bytes.len()).step_by(4) {
            let img = match HliImage::open(bytes[..cut].to_vec(), opts) {
                Ok(img) => img,
                Err(_) => continue,
            };
            for unit in ["foo", "bar"] {
                if let Ok(Some(r)) = img.get_ref(unit) {
                    let _ = r.materialize();
                }
            }
        }
    }

    #[test]
    fn every_single_byte_flip_is_contained() {
        // The zero-copy trust boundary, exhaustively: flip each byte of
        // the image in turn; open + validate + a full materializing walk
        // must either fail with a DecodeError or produce *some* entry —
        // never panic, never touch out-of-bounds memory. (Semantic damage
        // that survives this structural gauntlet is vet_unit's job.)
        let opts = SerializeOpts { include_names: true };
        let file = HliFile { entries: vec![figure2_like()] };
        let bytes = encode_file_v3(&file, opts);
        for i in 0..bytes.len() {
            let mut mutated = bytes.clone();
            mutated[i] ^= 0xA5;
            let Ok(img) = HliImage::open(mutated, opts) else { continue };
            let names: Vec<String> = img.units().map(String::from).collect();
            for unit in names {
                if let Ok(Some(r)) = img.get_ref(&unit) {
                    let e = r.materialize();
                    // The materialized entry may be semantically bogus;
                    // verify (the semantic boundary) must stay panic-free.
                    let _ = e.verify();
                }
            }
        }
    }

    #[test]
    fn hostile_offsets_cannot_escape_the_body() {
        let opts = SerializeOpts { include_names: true };
        let file = HliFile { entries: vec![figure2_like()] };
        let clean = encode_file_v3(&file, opts);
        let img = HliImage::open(clean.clone(), opts).unwrap();
        let body_off = {
            // Word 4 of the directory record = body_off of unit 0.
            word_at(&clean, 4) as usize
        };
        // Poison the region table's class_off with a huge word offset;
        // validation must reject it rather than let a view chase it.
        let n_lines = word_at(&clean, body_off + 2) as usize;
        let n_items = word_at(&clean, body_off + 3) as usize;
        let reg0 = body_off + 8 + n_lines * 3 + n_items * 2;
        let mut evil = clean.clone();
        evil[(reg0 + 6) * 4..(reg0 + 6) * 4 + 4].copy_from_slice(&u32::MAX.to_le_bytes());
        let img2 = HliImage::open(evil, opts).unwrap();
        let err = match img2.get_ref("foo") {
            Err(e) => e,
            Ok(_) => panic!("hostile class_off must fail view construction"),
        };
        assert!(err.0.contains("class table"), "got: {err:?}");
        // And the memo serves the same error again without re-validating.
        assert!(img2.get_ref("foo").is_err());
        assert_eq!(img2.validated_units(), 1);
        drop(img);
    }
}
