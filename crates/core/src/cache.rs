//! Memoized query layer over [`HliQuery`].
//!
//! The back-end asks the same dependence questions repeatedly — the DDG
//! builder probes every item pair per block, and a second scheduling pass
//! (or a later pass like CSE/LICM over the same function) re-asks questions
//! the first pass already answered. [`QueryCache`] memoizes the answers of
//! the five basic query functions keyed on item/region IDs, and
//! [`CachedQuery`] exposes the same surface as [`HliQuery`] so passes
//! consume it unchanged.
//!
//! ## Invalidation contract
//!
//! Memoized answers are valid for one `(unit_name, generation)` pair. Every
//! successful maintenance operation ([`crate::maintain`]) bumps the entry's
//! generation; [`QueryCache::attach`] compares the stored pair against the
//! entry it is handed and flushes every memo on mismatch (counted as
//! `backend.query_cache.invalidate`). Passes that know exactly which items
//! they touched can instead call [`QueryCache::invalidate_items`] — sound
//! for item deletion and motion, whose collapse/cascade rules leave answers
//! between untouched items unchanged — and keep the rest of the memo warm.
//! Unrolling rewrites whole tables, so it relies on the wholesale flush.
//!
//! ## Provenance bypass
//!
//! When a decision-provenance sink is active, every basic query must stamp
//! a fresh query id so optimization decisions cite their full query chain.
//! A memo hit would skip the stamp, so the wrapper delegates directly to
//! [`HliQuery`] (no memo reads or writes, no hit/miss counting) whenever
//! the underlying index was built under a sink. Provenance output is
//! therefore byte-identical with and without the cache.
//!
//! Cache traffic is metered as `backend.query_cache.{hit,miss,invalidate}`.

use crate::ids::{ItemId, RegionId};
use crate::query::{CallAcc, EquivAcc, HliQuery, LcddAnswer};
use crate::tables::{HliEntry, ItemType, Region};
use hli_obs::provenance::QueryRef;
use hli_obs::Counter;
use std::cell::{Cell, RefCell};
use std::collections::HashMap;

/// Memo storage for one program unit's query answers. Create one per
/// function (or share one across passes over the same function) and
/// [`attach`](QueryCache::attach) it to the entry before querying.
pub struct QueryCache {
    /// Validity key: the unit and generation the memos were computed from.
    unit: RefCell<String>,
    generation: Cell<u64>,
    equiv: RefCell<HashMap<(ItemId, ItemId), EquivAcc>>,
    alias: RefCell<HashMap<(RegionId, ItemId, ItemId), bool>>,
    lcdd: RefCell<HashMap<(ItemId, ItemId), Option<LcddAnswer>>>,
    lcdd_at: RefCell<HashMap<(RegionId, ItemId, ItemId), Option<LcddAnswer>>>,
    call: RefCell<HashMap<(ItemId, ItemId), CallAcc>>,
    hits: Counter,
    misses: Counter,
    invalidates: Counter,
}

impl Default for QueryCache {
    fn default() -> Self {
        Self::new()
    }
}

impl QueryCache {
    pub fn new() -> Self {
        let r = hli_obs::metrics::cur();
        QueryCache {
            unit: RefCell::new(String::new()),
            generation: Cell::new(0),
            equiv: RefCell::new(HashMap::new()),
            alias: RefCell::new(HashMap::new()),
            lcdd: RefCell::new(HashMap::new()),
            lcdd_at: RefCell::new(HashMap::new()),
            call: RefCell::new(HashMap::new()),
            hits: r.counter("backend.query_cache.hit"),
            misses: r.counter("backend.query_cache.miss"),
            invalidates: r.counter("backend.query_cache.invalidate"),
        }
    }

    /// Number of memoized answers currently held.
    pub fn memo_len(&self) -> usize {
        self.equiv.borrow().len()
            + self.alias.borrow().len()
            + self.lcdd.borrow().len()
            + self.lcdd_at.borrow().len()
            + self.call.borrow().len()
    }

    fn flush(&self) {
        let dropped = self.memo_len();
        if dropped > 0 {
            self.invalidates.add(dropped as u64);
        }
        self.equiv.borrow_mut().clear();
        self.alias.borrow_mut().clear();
        self.lcdd.borrow_mut().clear();
        self.lcdd_at.borrow_mut().clear();
        self.call.borrow_mut().clear();
    }

    /// Build a cached query view of `entry`. Memos survive across attaches
    /// as long as the entry's `(unit_name, generation)` key is unchanged;
    /// any mismatch flushes them (counted as invalidations).
    pub fn attach<'a>(&'a self, entry: &'a HliEntry) -> CachedQuery<'a> {
        if *self.unit.borrow() != entry.unit_name || self.generation.get() != entry.generation {
            self.flush();
            *self.unit.borrow_mut() = entry.unit_name.clone();
            self.generation.set(entry.generation);
        }
        CachedQuery { cache: self, inner: HliQuery::new(entry) }
    }

    /// Surgical invalidation: drop only the memos whose keys mention one of
    /// `items`, then adopt `entry`'s generation so the next
    /// [`attach`](QueryCache::attach) keeps the remaining memos.
    ///
    /// Sound for [`crate::maintain::delete_item`] and
    /// [`crate::maintain::move_item_to_region`]: their collapse/cascade
    /// rules only change answers for pairs involving the touched items
    /// (classes disappear only once their last member is gone). The alias
    /// memo is keyed by class IDs, which those cascades *can* remove, so it
    /// is flushed wholesale — it is only populated by direct `get_alias`
    /// calls and stays small. Do **not** use this after
    /// [`crate::maintain::unroll_loop`]; let the generation mismatch flush
    /// everything instead.
    pub fn invalidate_items(&self, entry: &HliEntry, items: &[ItemId]) {
        if *self.unit.borrow() != entry.unit_name {
            // Different unit: nothing here belongs to `entry` at all.
            self.flush();
            *self.unit.borrow_mut() = entry.unit_name.clone();
            self.generation.set(entry.generation);
            return;
        }
        let hit = |a: &ItemId, b: &ItemId| items.contains(a) || items.contains(b);
        let mut dropped = 0usize;
        macro_rules! retain_pairs {
            ($map:expr) => {{
                let mut m = $map.borrow_mut();
                let before = m.len();
                m.retain(|(a, b), _| !hit(a, b));
                dropped += before - m.len();
            }};
        }
        retain_pairs!(self.equiv);
        retain_pairs!(self.lcdd);
        retain_pairs!(self.call);
        {
            let mut m = self.lcdd_at.borrow_mut();
            let before = m.len();
            m.retain(|(_, a, b), _| !hit(a, b));
            dropped += before - m.len();
        }
        {
            let mut m = self.alias.borrow_mut();
            dropped += m.len();
            m.clear();
        }
        if dropped > 0 {
            self.invalidates.add(dropped as u64);
        }
        self.generation.set(entry.generation);
    }
}

/// A memoizing view over one entry, mirroring the [`HliQuery`] surface.
pub struct CachedQuery<'a> {
    cache: &'a QueryCache,
    inner: HliQuery<'a>,
}

/// Reorient an LCDD answer stored for `(lo, hi)` argument order to the
/// caller's order.
fn reorient(v: Option<LcddAnswer>, swapped: bool) -> Option<LcddAnswer> {
    match (v, swapped) {
        (Some(ans), true) => Some(LcddAnswer { reversed: !ans.reversed, ..ans }),
        _ => v,
    }
}

impl<'a> CachedQuery<'a> {
    /// The memo-bypass condition: under a provenance sink every query must
    /// stamp its id, so serve nothing from (and record nothing into) memos.
    fn bypass(&self) -> bool {
        self.inner.provenance_active()
    }

    /// The entry this view serves.
    pub fn entry(&self) -> &'a HliEntry {
        self.inner.entry()
    }

    /// Direct access to the underlying index.
    pub fn inner(&self) -> &HliQuery<'a> {
        &self.inner
    }

    pub fn query_mark(&self) -> usize {
        self.inner.query_mark()
    }

    pub fn queries_since(&self, mark: usize) -> Vec<QueryRef> {
        self.inner.queries_since(mark)
    }

    /// Region metadata (uncached: already a direct index into the entry).
    pub fn region_info(&self, r: RegionId) -> &'a Region {
        self.inner.region_info(r)
    }

    pub fn region_of_item(&self, item: ItemId) -> Option<RegionId> {
        self.inner.region_of_item(item)
    }

    pub fn owner_of(&self, item: ItemId) -> Option<RegionId> {
        self.inner.owner_of(item)
    }

    pub fn item_info(&self, item: ItemId) -> Option<(u32, ItemType)> {
        self.inner.item_info(item)
    }

    pub fn class_of_item_at(&self, region: RegionId, item: ItemId) -> Option<ItemId> {
        self.inner.class_of_item_at(region, item)
    }

    /// Memoized [`HliQuery::get_equiv_acc`] (symmetric: keyed on the
    /// unordered pair).
    pub fn get_equiv_acc(&self, a: ItemId, b: ItemId) -> EquivAcc {
        if self.bypass() {
            return self.inner.get_equiv_acc(a, b);
        }
        let key = (a.min(b), a.max(b));
        if let Some(&v) = self.cache.equiv.borrow().get(&key) {
            self.cache.hits.inc();
            return v;
        }
        self.cache.misses.inc();
        let v = self.inner.get_equiv_acc(a, b);
        self.cache.equiv.borrow_mut().insert(key, v);
        v
    }

    /// Memoized [`HliQuery::get_alias`] (symmetric in the class pair).
    pub fn get_alias(&self, region: RegionId, ca: ItemId, cb: ItemId) -> bool {
        if self.bypass() {
            return self.inner.get_alias(region, ca, cb);
        }
        let key = (region, ca.min(cb), ca.max(cb));
        if let Some(&v) = self.cache.alias.borrow().get(&key) {
            self.cache.hits.inc();
            return v;
        }
        self.cache.misses.inc();
        let v = self.inner.get_alias(region, ca, cb);
        self.cache.alias.borrow_mut().insert(key, v);
        v
    }

    /// Memoized [`HliQuery::get_lcdd`]. Answers are stored for the
    /// `(lo, hi)` argument order; a swapped call flips `reversed`, which is
    /// exactly how the underlying two-direction table match behaves.
    pub fn get_lcdd(&self, a: ItemId, b: ItemId) -> Option<LcddAnswer> {
        if self.bypass() {
            return self.inner.get_lcdd(a, b);
        }
        let swapped = b < a;
        let key = (a.min(b), a.max(b));
        if let Some(&v) = self.cache.lcdd.borrow().get(&key) {
            self.cache.hits.inc();
            return reorient(v, swapped);
        }
        self.cache.misses.inc();
        let v = self.inner.get_lcdd(a, b);
        self.cache.lcdd.borrow_mut().insert(key, reorient(v, swapped));
        v
    }

    /// Memoized [`HliQuery::get_lcdd_at`], same orientation rule.
    pub fn get_lcdd_at(&self, region: RegionId, a: ItemId, b: ItemId) -> Option<LcddAnswer> {
        if self.bypass() {
            return self.inner.get_lcdd_at(region, a, b);
        }
        let swapped = b < a;
        let key = (region, a.min(b), a.max(b));
        if let Some(&v) = self.cache.lcdd_at.borrow().get(&key) {
            self.cache.hits.inc();
            return reorient(v, swapped);
        }
        self.cache.misses.inc();
        let v = self.inner.get_lcdd_at(region, a, b);
        self.cache.lcdd_at.borrow_mut().insert(key, reorient(v, swapped));
        v
    }

    /// Memoized [`HliQuery::get_call_acc`] (directional: `(mem, call)`).
    pub fn get_call_acc(&self, mem: ItemId, call: ItemId) -> CallAcc {
        if self.bypass() {
            return self.inner.get_call_acc(mem, call);
        }
        let key = (mem, call);
        if let Some(&v) = self.cache.call.borrow().get(&key) {
            self.cache.hits.inc();
            return v;
        }
        self.cache.misses.inc();
        let v = self.inner.get_call_acc(mem, call);
        self.cache.call.borrow_mut().insert(key, v);
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::maintain;
    use crate::tables::tests::figure2_like;
    use crate::tables::Distance;
    use std::sync::Arc;

    fn scoped_registry() -> (Arc<hli_obs::MetricsRegistry>, hli_obs::metrics::ScopedRegistry) {
        let reg = Arc::new(hli_obs::MetricsRegistry::new());
        let g = hli_obs::metrics::scoped(reg.clone());
        (reg, g)
    }

    #[test]
    fn repeat_queries_hit_and_agree() {
        let (reg, _g) = scoped_registry();
        let e = figure2_like();
        let cache = QueryCache::new();
        let q = cache.attach(&e);
        let first = q.get_equiv_acc(ItemId(9), ItemId(10));
        let second = q.get_equiv_acc(ItemId(9), ItemId(10));
        assert_eq!(first, second);
        assert_eq!(first, EquivAcc::Definite);
        let snap = reg.snapshot();
        assert_eq!(snap.counter("backend.query_cache.miss"), 1);
        assert_eq!(snap.counter("backend.query_cache.hit"), 1);
    }

    #[test]
    fn symmetric_queries_share_one_memo() {
        let (reg, _g) = scoped_registry();
        let e = figure2_like();
        let cache = QueryCache::new();
        let q = cache.attach(&e);
        assert_eq!(
            q.get_equiv_acc(ItemId(5), ItemId(6)),
            q.get_equiv_acc(ItemId(6), ItemId(5))
        );
        let snap = reg.snapshot();
        assert_eq!(snap.counter("backend.query_cache.miss"), 1);
        assert_eq!(snap.counter("backend.query_cache.hit"), 1);
    }

    #[test]
    fn lcdd_hit_flips_direction_for_swapped_args() {
        let (_reg, _g) = scoped_registry();
        let e = figure2_like();
        let cache = QueryCache::new();
        let q = cache.attach(&e);
        let plain = HliQuery::new(&e);
        // Warm with one order, then hit with the other; both must match
        // the uncached answers exactly.
        let fwd = q.get_lcdd(ItemId(5), ItemId(6)).unwrap();
        let rev = q.get_lcdd(ItemId(6), ItemId(5)).unwrap();
        assert_eq!(Some(fwd), plain.get_lcdd(ItemId(5), ItemId(6)));
        assert_eq!(Some(rev), plain.get_lcdd(ItemId(6), ItemId(5)));
        assert_eq!(fwd.distance, Distance::Const(1));
        assert!(!fwd.reversed);
        assert!(rev.reversed);
    }

    #[test]
    fn memos_survive_reattach_on_same_generation() {
        let (reg, _g) = scoped_registry();
        let e = figure2_like();
        let cache = QueryCache::new();
        {
            let q = cache.attach(&e);
            let _ = q.get_equiv_acc(ItemId(9), ItemId(10));
        }
        {
            let q = cache.attach(&e);
            let _ = q.get_equiv_acc(ItemId(9), ItemId(10));
        }
        let snap = reg.snapshot();
        assert_eq!(snap.counter("backend.query_cache.hit"), 1, "second pass hits");
        assert_eq!(snap.counter("backend.query_cache.invalidate"), 0);
    }

    #[test]
    fn maintenance_bumps_generation_and_invalidates() {
        let (reg, _g) = scoped_registry();
        let mut e = figure2_like();
        let cache = QueryCache::new();
        {
            let q = cache.attach(&e);
            assert_eq!(q.get_equiv_acc(ItemId(9), ItemId(10)), EquivAcc::Definite);
        }
        let gen_before = e.generation;
        maintain::delete_item(&mut e, ItemId(9)).unwrap();
        assert!(e.generation > gen_before);
        {
            let q = cache.attach(&e);
            // Stale memo was flushed; the fresh answer sees the deletion.
            assert_eq!(q.get_equiv_acc(ItemId(9), ItemId(10)), EquivAcc::Unknown);
        }
        let snap = reg.snapshot();
        assert!(snap.counter("backend.query_cache.invalidate") > 0);
        assert_eq!(snap.counter("backend.query_cache.hit"), 0);
    }

    #[test]
    fn failed_maintenance_leaves_memos_valid() {
        let (reg, _g) = scoped_registry();
        let mut e = figure2_like();
        let cache = QueryCache::new();
        {
            let q = cache.attach(&e);
            let _ = q.get_equiv_acc(ItemId(9), ItemId(10));
        }
        assert!(maintain::delete_item(&mut e, ItemId(999)).is_err());
        {
            let q = cache.attach(&e);
            let _ = q.get_equiv_acc(ItemId(9), ItemId(10));
        }
        let snap = reg.snapshot();
        assert_eq!(snap.counter("backend.query_cache.hit"), 1);
        assert_eq!(snap.counter("backend.query_cache.invalidate"), 0);
    }

    #[test]
    fn surgical_invalidation_keeps_unrelated_memos() {
        let (reg, _g) = scoped_registry();
        let mut e = figure2_like();
        let cache = QueryCache::new();
        {
            let q = cache.attach(&e);
            let _ = q.get_equiv_acc(ItemId(9), ItemId(10)); // sum pair
            let _ = q.get_equiv_acc(ItemId(5), ItemId(7)); // b[j] pair
        }
        maintain::delete_item(&mut e, ItemId(9)).unwrap();
        cache.invalidate_items(&e, &[ItemId(9)]);
        {
            let q = cache.attach(&e);
            // Unrelated pair still memoized; touched pair recomputed.
            assert_eq!(q.get_equiv_acc(ItemId(5), ItemId(7)), EquivAcc::Definite);
            assert_eq!(q.get_equiv_acc(ItemId(9), ItemId(10)), EquivAcc::Unknown);
        }
        let snap = reg.snapshot();
        assert_eq!(snap.counter("backend.query_cache.hit"), 1);
        assert_eq!(snap.counter("backend.query_cache.invalidate"), 1);
    }

    #[test]
    fn attaching_a_different_unit_flushes() {
        let (reg, _g) = scoped_registry();
        let e1 = figure2_like();
        let mut e2 = figure2_like();
        e2.unit_name = "bar".into();
        let cache = QueryCache::new();
        {
            let q = cache.attach(&e1);
            let _ = q.get_equiv_acc(ItemId(9), ItemId(10));
        }
        {
            // Same item IDs, different unit: must not reuse foo's answers.
            let q = cache.attach(&e2);
            let _ = q.get_equiv_acc(ItemId(9), ItemId(10));
        }
        let snap = reg.snapshot();
        assert_eq!(snap.counter("backend.query_cache.hit"), 0);
        assert_eq!(snap.counter("backend.query_cache.invalidate"), 1);
        assert_eq!(snap.counter("backend.query_cache.miss"), 2);
    }

    #[test]
    fn provenance_bypass_stamps_every_query_and_skips_memos() {
        use hli_obs::provenance::{self, ProvenanceSink};
        let (reg, _g) = scoped_registry();
        let e = figure2_like();
        let cache = QueryCache::new();
        let sink = Arc::new(ProvenanceSink::new());
        let _p = provenance::scoped(sink);
        let q = cache.attach(&e);
        let mark = q.query_mark();
        let _ = q.get_equiv_acc(ItemId(5), ItemId(6));
        let _ = q.get_equiv_acc(ItemId(5), ItemId(6));
        // Both calls stamped their full chain (equiv + internal alias).
        assert_eq!(q.queries_since(mark).len(), 4);
        assert_eq!(cache.memo_len(), 0, "bypass must not populate memos");
        let snap = reg.snapshot();
        assert_eq!(snap.counter("backend.query_cache.hit"), 0);
        assert_eq!(snap.counter("backend.query_cache.miss"), 0);
    }

    #[test]
    fn cached_answers_match_uncached_exhaustively() {
        let (_reg, _g) = scoped_registry();
        let e = figure2_like();
        let cache = QueryCache::new();
        let q = cache.attach(&e);
        let plain = HliQuery::new(&e);
        for a in 0..12u32 {
            for b in 0..12u32 {
                let (a, b) = (ItemId(a), ItemId(b));
                assert_eq!(q.get_equiv_acc(a, b), plain.get_equiv_acc(a, b), "{a} {b}");
                assert_eq!(q.get_lcdd(a, b), plain.get_lcdd(a, b), "{a} {b}");
            }
        }
    }
}
