//! Memoized query layer over [`HliQuery`].
//!
//! The back-end asks the same dependence questions repeatedly — the DDG
//! builder probes every item pair per block, and a second scheduling pass
//! (or a later pass like CSE/LICM over the same function) re-asks questions
//! the first pass already answered. [`QueryCache`] memoizes the answers of
//! the five basic query functions keyed on item/region IDs, and
//! [`CachedQuery`] exposes the same surface as [`HliQuery`] so passes
//! consume it unchanged.
//!
//! ## Invalidation contract
//!
//! Memoized answers are valid for one `(unit_name, generation)` pair. Every
//! successful maintenance operation ([`crate::maintain`]) bumps the entry's
//! generation; [`QueryCache::attach`] compares the stored pair against the
//! entry it is handed and flushes every memo on mismatch (counted as
//! `backend.query_cache.invalidate`). Passes that know exactly which items
//! they touched can instead call [`QueryCache::invalidate_items`] — sound
//! for item deletion and motion, whose collapse/cascade rules leave answers
//! between untouched items unchanged — and keep the rest of the memo warm.
//! Unrolling rewrites whole tables, so it relies on the wholesale flush.
//!
//! ## Provenance bypass
//!
//! When a decision-provenance sink is active, every basic query must stamp
//! a fresh query id so optimization decisions cite their full query chain.
//! A memo hit would skip the stamp, so the wrapper delegates directly to
//! [`HliQuery`] (no memo reads or writes, no hit/miss counting) whenever
//! the underlying index was built under a sink. Provenance output is
//! therefore byte-identical with and without the cache.
//!
//! Cache traffic is metered as `backend.query_cache.{hit,miss,invalidate}`.

use crate::ids::{ItemId, RegionId};
use crate::image::{EntryRef, RegionMeta};
use crate::query::{CallAcc, EquivAcc, HliQuery, LcddAnswer};
use crate::tables::{HliEntry, ItemType};
use hli_obs::provenance::QueryRef;
use hli_obs::Counter;
use std::collections::HashMap;
use std::sync::Mutex;

/// The mutable interior of a [`QueryCache`]: the validity key plus the
/// five memo maps, guarded together by one mutex so a key change and its
/// flush are atomic with respect to concurrent readers.
#[derive(Default)]
struct CacheState {
    /// Validity key: the unit and generation the memos were computed from.
    unit: String,
    generation: u64,
    equiv: HashMap<(ItemId, ItemId), EquivAcc>,
    alias: HashMap<(RegionId, ItemId, ItemId), bool>,
    lcdd: HashMap<(ItemId, ItemId), Option<LcddAnswer>>,
    lcdd_at: HashMap<(RegionId, ItemId, ItemId), Option<LcddAnswer>>,
    call: HashMap<(ItemId, ItemId), CallAcc>,
}

impl CacheState {
    fn memo_len(&self) -> usize {
        self.equiv.len() + self.alias.len() + self.lcdd.len() + self.lcdd_at.len() + self.call.len()
    }
}

/// Memo storage for one program unit's query answers. Create one per
/// function (or share one across passes over the same function) and
/// [`attach`](QueryCache::attach) it to the entry before querying.
///
/// `Send + Sync`: the state sits behind a single `Mutex`, so one cache
/// may be probed from several threads — though the intended sharing
/// discipline (one cache per function, owned by whichever pool worker
/// holds that function) keeps the lock uncontended.
pub struct QueryCache {
    state: Mutex<CacheState>,
    hits: Counter,
    misses: Counter,
    invalidates: Counter,
}

impl Default for QueryCache {
    fn default() -> Self {
        Self::new()
    }
}

impl QueryCache {
    /// An empty cache bound to the current metrics registry (counter
    /// handles are resolved here, once, not per query).
    pub fn new() -> Self {
        let r = hli_obs::metrics::cur();
        QueryCache {
            state: Mutex::new(CacheState::default()),
            hits: r.counter("backend.query_cache.hit"),
            misses: r.counter("backend.query_cache.miss"),
            invalidates: r.counter("backend.query_cache.invalidate"),
        }
    }

    /// Number of memoized answers currently held.
    pub fn memo_len(&self) -> usize {
        self.state.lock().unwrap().memo_len()
    }

    fn flush(&self, s: &mut CacheState) {
        let dropped = s.memo_len();
        if dropped > 0 {
            self.invalidates.add(dropped as u64);
        }
        s.equiv.clear();
        s.alias.clear();
        s.lcdd.clear();
        s.lcdd_at.clear();
        s.call.clear();
    }

    /// Build a cached query view of `entry`. Memos survive across attaches
    /// as long as the entry's `(unit_name, generation)` key is unchanged;
    /// any mismatch flushes them (counted as invalidations).
    pub fn attach<'a>(&'a self, entry: &'a HliEntry) -> CachedQuery<'a> {
        self.attach_ref(EntryRef::Owned(entry))
    }

    /// [`attach`](QueryCache::attach) over an [`EntryRef`], so zero-copy
    /// views get the same memoization. The `(unit, generation)` validity
    /// key carries over unchanged: views report generation 0, and any
    /// mutation happens on a materialized overlay whose generation the
    /// maintenance API bumps past 0 — so a view→overlay transition always
    /// flushes, and view→view reattaches keep memos warm.
    pub fn attach_ref<'a>(&'a self, entry: EntryRef<'a>) -> CachedQuery<'a> {
        let mut s = self.state.lock().unwrap();
        if s.unit != entry.unit_name() || s.generation != entry.generation() {
            self.flush(&mut s);
            s.unit = entry.unit_name().to_string();
            s.generation = entry.generation();
        }
        drop(s);
        CachedQuery { cache: self, inner: HliQuery::new_ref(entry) }
    }

    /// Surgical invalidation: drop only the memos whose keys mention one of
    /// `items`, then adopt `entry`'s generation so the next
    /// [`attach`](QueryCache::attach) keeps the remaining memos.
    ///
    /// Sound for [`crate::maintain::delete_item`] and
    /// [`crate::maintain::move_item_to_region`]: their collapse/cascade
    /// rules only change answers for pairs involving the touched items
    /// (classes disappear only once their last member is gone). The alias
    /// memo is keyed by class IDs, which those cascades *can* remove, so it
    /// is flushed wholesale — it is only populated by direct `get_alias`
    /// calls and stays small. Do **not** use this after
    /// [`crate::maintain::unroll_loop`]; let the generation mismatch flush
    /// everything instead.
    pub fn invalidate_items(&self, entry: &HliEntry, items: &[ItemId]) {
        let mut s = self.state.lock().unwrap();
        if s.unit != entry.unit_name {
            // Different unit: nothing here belongs to `entry` at all.
            self.flush(&mut s);
            s.unit = entry.unit_name.clone();
            s.generation = entry.generation;
            return;
        }
        let hit = |a: &ItemId, b: &ItemId| items.contains(a) || items.contains(b);
        let mut dropped = 0usize;
        macro_rules! retain_pairs {
            ($map:expr) => {{
                let m = &mut $map;
                let before = m.len();
                m.retain(|(a, b), _| !hit(a, b));
                dropped += before - m.len();
            }};
        }
        retain_pairs!(s.equiv);
        retain_pairs!(s.lcdd);
        retain_pairs!(s.call);
        {
            let m = &mut s.lcdd_at;
            let before = m.len();
            m.retain(|(_, a, b), _| !hit(a, b));
            dropped += before - m.len();
        }
        dropped += s.alias.len();
        s.alias.clear();
        if dropped > 0 {
            self.invalidates.add(dropped as u64);
        }
        s.generation = entry.generation;
    }
}

/// A memoizing view over one entry, mirroring the [`HliQuery`] surface.
pub struct CachedQuery<'a> {
    cache: &'a QueryCache,
    inner: HliQuery<'a>,
}

/// Reorient an LCDD answer stored for `(lo, hi)` argument order to the
/// caller's order.
fn reorient(v: Option<LcddAnswer>, swapped: bool) -> Option<LcddAnswer> {
    match (v, swapped) {
        (Some(ans), true) => Some(LcddAnswer { reversed: !ans.reversed, ..ans }),
        _ => v,
    }
}

impl<'a> CachedQuery<'a> {
    /// The memo-bypass condition: under a provenance sink every query must
    /// stamp its id, so serve nothing from (and record nothing into) memos.
    fn bypass(&self) -> bool {
        self.inner.provenance_active()
    }

    /// The entry this view serves.
    pub fn entry_ref(&self) -> EntryRef<'a> {
        self.inner.entry_ref()
    }

    /// Direct access to the underlying index.
    pub fn inner(&self) -> &HliQuery<'a> {
        &self.inner
    }

    /// See [`HliQuery::query_mark`].
    pub fn query_mark(&self) -> usize {
        self.inner.query_mark()
    }

    /// See [`HliQuery::queries_since`].
    pub fn queries_since(&self, mark: usize) -> Vec<QueryRef> {
        self.inner.queries_since(mark)
    }

    /// Region metadata (uncached: already a direct index into the entry).
    pub fn region_info(&self, r: RegionId) -> RegionMeta {
        self.inner.region_info(r)
    }

    /// See [`HliQuery::region_of_item`] (uncached: a plain index lookup).
    pub fn region_of_item(&self, item: ItemId) -> Option<RegionId> {
        self.inner.region_of_item(item)
    }

    /// See [`HliQuery::owner_of`] (uncached: a plain index lookup).
    pub fn owner_of(&self, item: ItemId) -> Option<RegionId> {
        self.inner.owner_of(item)
    }

    /// See [`HliQuery::item_info`] (uncached: a plain index lookup).
    pub fn item_info(&self, item: ItemId) -> Option<(u32, ItemType)> {
        self.inner.item_info(item)
    }

    /// See [`HliQuery::class_of_item_at`] (uncached: a plain index lookup).
    pub fn class_of_item_at(&self, region: RegionId, item: ItemId) -> Option<ItemId> {
        self.inner.class_of_item_at(region, item)
    }

    /// Memoized [`HliQuery::get_equiv_acc`] (symmetric: keyed on the
    /// unordered pair).
    pub fn get_equiv_acc(&self, a: ItemId, b: ItemId) -> EquivAcc {
        if self.bypass() {
            return self.inner.get_equiv_acc(a, b);
        }
        let key = (a.min(b), a.max(b));
        if let Some(&v) = self.cache.state.lock().unwrap().equiv.get(&key) {
            self.cache.hits.inc();
            return v;
        }
        self.cache.misses.inc();
        let v = self.inner.get_equiv_acc(a, b);
        self.cache.state.lock().unwrap().equiv.insert(key, v);
        v
    }

    /// Memoized [`HliQuery::get_alias`] (symmetric in the class pair).
    pub fn get_alias(&self, region: RegionId, ca: ItemId, cb: ItemId) -> bool {
        if self.bypass() {
            return self.inner.get_alias(region, ca, cb);
        }
        let key = (region, ca.min(cb), ca.max(cb));
        if let Some(&v) = self.cache.state.lock().unwrap().alias.get(&key) {
            self.cache.hits.inc();
            return v;
        }
        self.cache.misses.inc();
        let v = self.inner.get_alias(region, ca, cb);
        self.cache.state.lock().unwrap().alias.insert(key, v);
        v
    }

    /// Memoized [`HliQuery::get_lcdd`]. Answers are stored for the
    /// `(lo, hi)` argument order; a swapped call flips `reversed`, which is
    /// exactly how the underlying two-direction table match behaves.
    pub fn get_lcdd(&self, a: ItemId, b: ItemId) -> Option<LcddAnswer> {
        if self.bypass() {
            return self.inner.get_lcdd(a, b);
        }
        let swapped = b < a;
        let key = (a.min(b), a.max(b));
        if let Some(&v) = self.cache.state.lock().unwrap().lcdd.get(&key) {
            self.cache.hits.inc();
            return reorient(v, swapped);
        }
        self.cache.misses.inc();
        let v = self.inner.get_lcdd(a, b);
        self.cache.state.lock().unwrap().lcdd.insert(key, reorient(v, swapped));
        v
    }

    /// Memoized [`HliQuery::get_lcdd_at`], same orientation rule.
    pub fn get_lcdd_at(&self, region: RegionId, a: ItemId, b: ItemId) -> Option<LcddAnswer> {
        if self.bypass() {
            return self.inner.get_lcdd_at(region, a, b);
        }
        let swapped = b < a;
        let key = (region, a.min(b), a.max(b));
        if let Some(&v) = self.cache.state.lock().unwrap().lcdd_at.get(&key) {
            self.cache.hits.inc();
            return reorient(v, swapped);
        }
        self.cache.misses.inc();
        let v = self.inner.get_lcdd_at(region, a, b);
        self.cache.state.lock().unwrap().lcdd_at.insert(key, reorient(v, swapped));
        v
    }

    /// Memoized [`HliQuery::get_call_acc`] (directional: `(mem, call)`).
    pub fn get_call_acc(&self, mem: ItemId, call: ItemId) -> CallAcc {
        if self.bypass() {
            return self.inner.get_call_acc(mem, call);
        }
        let key = (mem, call);
        if let Some(&v) = self.cache.state.lock().unwrap().call.get(&key) {
            self.cache.hits.inc();
            return v;
        }
        self.cache.misses.inc();
        let v = self.inner.get_call_acc(mem, call);
        self.cache.state.lock().unwrap().call.insert(key, v);
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::maintain;
    use crate::tables::tests::figure2_like;
    use crate::tables::Distance;
    use std::sync::Arc;

    fn scoped_registry() -> (Arc<hli_obs::MetricsRegistry>, hli_obs::metrics::ScopedRegistry) {
        let reg = Arc::new(hli_obs::MetricsRegistry::new());
        let g = hli_obs::metrics::scoped(reg.clone());
        (reg, g)
    }

    #[test]
    fn repeat_queries_hit_and_agree() {
        let (reg, _g) = scoped_registry();
        let e = figure2_like();
        let cache = QueryCache::new();
        let q = cache.attach(&e);
        let first = q.get_equiv_acc(ItemId(9), ItemId(10));
        let second = q.get_equiv_acc(ItemId(9), ItemId(10));
        assert_eq!(first, second);
        assert_eq!(first, EquivAcc::Definite);
        let snap = reg.snapshot();
        assert_eq!(snap.counter("backend.query_cache.miss"), 1);
        assert_eq!(snap.counter("backend.query_cache.hit"), 1);
    }

    #[test]
    fn symmetric_queries_share_one_memo() {
        let (reg, _g) = scoped_registry();
        let e = figure2_like();
        let cache = QueryCache::new();
        let q = cache.attach(&e);
        assert_eq!(
            q.get_equiv_acc(ItemId(5), ItemId(6)),
            q.get_equiv_acc(ItemId(6), ItemId(5))
        );
        let snap = reg.snapshot();
        assert_eq!(snap.counter("backend.query_cache.miss"), 1);
        assert_eq!(snap.counter("backend.query_cache.hit"), 1);
    }

    #[test]
    fn lcdd_hit_flips_direction_for_swapped_args() {
        let (_reg, _g) = scoped_registry();
        let e = figure2_like();
        let cache = QueryCache::new();
        let q = cache.attach(&e);
        let plain = HliQuery::new(&e);
        // Warm with one order, then hit with the other; both must match
        // the uncached answers exactly.
        let fwd = q.get_lcdd(ItemId(5), ItemId(6)).unwrap();
        let rev = q.get_lcdd(ItemId(6), ItemId(5)).unwrap();
        assert_eq!(Some(fwd), plain.get_lcdd(ItemId(5), ItemId(6)));
        assert_eq!(Some(rev), plain.get_lcdd(ItemId(6), ItemId(5)));
        assert_eq!(fwd.distance, Distance::Const(1));
        assert!(!fwd.reversed);
        assert!(rev.reversed);
    }

    #[test]
    fn memos_survive_reattach_on_same_generation() {
        let (reg, _g) = scoped_registry();
        let e = figure2_like();
        let cache = QueryCache::new();
        {
            let q = cache.attach(&e);
            let _ = q.get_equiv_acc(ItemId(9), ItemId(10));
        }
        {
            let q = cache.attach(&e);
            let _ = q.get_equiv_acc(ItemId(9), ItemId(10));
        }
        let snap = reg.snapshot();
        assert_eq!(snap.counter("backend.query_cache.hit"), 1, "second pass hits");
        assert_eq!(snap.counter("backend.query_cache.invalidate"), 0);
    }

    #[test]
    fn maintenance_bumps_generation_and_invalidates() {
        let (reg, _g) = scoped_registry();
        let mut e = figure2_like();
        let cache = QueryCache::new();
        {
            let q = cache.attach(&e);
            assert_eq!(q.get_equiv_acc(ItemId(9), ItemId(10)), EquivAcc::Definite);
        }
        let gen_before = e.generation;
        maintain::delete_item(&mut e, ItemId(9)).unwrap();
        assert!(e.generation > gen_before);
        {
            let q = cache.attach(&e);
            // Stale memo was flushed; the fresh answer sees the deletion.
            assert_eq!(q.get_equiv_acc(ItemId(9), ItemId(10)), EquivAcc::Unknown);
        }
        let snap = reg.snapshot();
        assert!(snap.counter("backend.query_cache.invalidate") > 0);
        assert_eq!(snap.counter("backend.query_cache.hit"), 0);
    }

    #[test]
    fn failed_maintenance_leaves_memos_valid() {
        let (reg, _g) = scoped_registry();
        let mut e = figure2_like();
        let cache = QueryCache::new();
        {
            let q = cache.attach(&e);
            let _ = q.get_equiv_acc(ItemId(9), ItemId(10));
        }
        assert!(maintain::delete_item(&mut e, ItemId(999)).is_err());
        {
            let q = cache.attach(&e);
            let _ = q.get_equiv_acc(ItemId(9), ItemId(10));
        }
        let snap = reg.snapshot();
        assert_eq!(snap.counter("backend.query_cache.hit"), 1);
        assert_eq!(snap.counter("backend.query_cache.invalidate"), 0);
    }

    #[test]
    fn surgical_invalidation_keeps_unrelated_memos() {
        let (reg, _g) = scoped_registry();
        let mut e = figure2_like();
        let cache = QueryCache::new();
        {
            let q = cache.attach(&e);
            let _ = q.get_equiv_acc(ItemId(9), ItemId(10)); // sum pair
            let _ = q.get_equiv_acc(ItemId(5), ItemId(7)); // b[j] pair
        }
        maintain::delete_item(&mut e, ItemId(9)).unwrap();
        cache.invalidate_items(&e, &[ItemId(9)]);
        {
            let q = cache.attach(&e);
            // Unrelated pair still memoized; touched pair recomputed.
            assert_eq!(q.get_equiv_acc(ItemId(5), ItemId(7)), EquivAcc::Definite);
            assert_eq!(q.get_equiv_acc(ItemId(9), ItemId(10)), EquivAcc::Unknown);
        }
        let snap = reg.snapshot();
        assert_eq!(snap.counter("backend.query_cache.hit"), 1);
        assert_eq!(snap.counter("backend.query_cache.invalidate"), 1);
    }

    #[test]
    fn attaching_a_different_unit_flushes() {
        let (reg, _g) = scoped_registry();
        let e1 = figure2_like();
        let mut e2 = figure2_like();
        e2.unit_name = "bar".into();
        let cache = QueryCache::new();
        {
            let q = cache.attach(&e1);
            let _ = q.get_equiv_acc(ItemId(9), ItemId(10));
        }
        {
            // Same item IDs, different unit: must not reuse foo's answers.
            let q = cache.attach(&e2);
            let _ = q.get_equiv_acc(ItemId(9), ItemId(10));
        }
        let snap = reg.snapshot();
        assert_eq!(snap.counter("backend.query_cache.hit"), 0);
        assert_eq!(snap.counter("backend.query_cache.invalidate"), 1);
        assert_eq!(snap.counter("backend.query_cache.miss"), 2);
    }

    #[test]
    fn provenance_bypass_stamps_every_query_and_skips_memos() {
        use hli_obs::provenance::{self, ProvenanceSink};
        let (reg, _g) = scoped_registry();
        let e = figure2_like();
        let cache = QueryCache::new();
        let sink = Arc::new(ProvenanceSink::new());
        let _p = provenance::scoped(sink);
        let q = cache.attach(&e);
        let mark = q.query_mark();
        let _ = q.get_equiv_acc(ItemId(5), ItemId(6));
        let _ = q.get_equiv_acc(ItemId(5), ItemId(6));
        // Both calls stamped their full chain (equiv + internal alias).
        assert_eq!(q.queries_since(mark).len(), 4);
        assert_eq!(cache.memo_len(), 0, "bypass must not populate memos");
        let snap = reg.snapshot();
        assert_eq!(snap.counter("backend.query_cache.hit"), 0);
        assert_eq!(snap.counter("backend.query_cache.miss"), 0);
    }

    #[test]
    fn concurrent_maintenance_only_invalidates_its_own_unit() {
        // The parallel driver hands each worker its own function's cache
        // from one shared `HashMap<String, QueryCache>`. Maintenance on one
        // worker's function bumps only that entry's generation, so the
        // other unit's memos must stay warm: the `(unit, generation)` key
        // isolates invalidation per cache.
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<QueryCache>();

        let (reg, _g) = scoped_registry();
        let e_foo = figure2_like();
        let mut e_bar = figure2_like();
        e_bar.unit_name = "bar".into();
        let mut caches = std::collections::HashMap::new();
        caches.insert(e_foo.unit_name.clone(), QueryCache::new());
        caches.insert(e_bar.unit_name.clone(), QueryCache::new());
        // Warm both caches, then maintain `bar` on another thread while
        // `foo`'s worker keeps querying through the shared map.
        let _ = caches[&e_foo.unit_name].attach(&e_foo).get_equiv_acc(ItemId(9), ItemId(10));
        let _ = caches[&e_bar.unit_name].attach(&e_bar).get_equiv_acc(ItemId(9), ItemId(10));
        std::thread::scope(|s| {
            let (caches, e_foo) = (&caches, &e_foo);
            let e_bar = &mut e_bar;
            s.spawn(move || {
                maintain::delete_item(e_bar, ItemId(9)).unwrap();
                let c = &caches[&e_bar.unit_name];
                c.invalidate_items(e_bar, &[ItemId(9)]);
                assert_eq!(c.attach(e_bar).get_equiv_acc(ItemId(9), ItemId(10)), EquivAcc::Unknown);
            });
            s.spawn(move || {
                for _ in 0..50 {
                    let q = caches[&e_foo.unit_name].attach(e_foo);
                    assert_eq!(q.get_equiv_acc(ItemId(9), ItemId(10)), EquivAcc::Definite);
                }
            });
        });
        let snap = reg.snapshot();
        assert_eq!(
            snap.counter("backend.query_cache.invalidate"),
            1,
            "only bar's touched memo dropped; foo's stayed warm"
        );
        assert_eq!(
            snap.counter("backend.query_cache.miss"),
            3,
            "foo warm + bar warm + bar redo"
        );
        assert_eq!(snap.counter("backend.query_cache.hit"), 50, "every foo re-query hit");
    }

    #[test]
    fn cached_answers_match_uncached_exhaustively() {
        let (_reg, _g) = scoped_registry();
        let e = figure2_like();
        let cache = QueryCache::new();
        let q = cache.attach(&e);
        let plain = HliQuery::new(&e);
        for a in 0..12u32 {
            for b in 0..12u32 {
                let (a, b) = (ItemId(a), ItemId(b));
                assert_eq!(q.get_equiv_acc(a, b), plain.get_equiv_acc(a, b), "{a} {b}");
                assert_eq!(q.get_lcdd(a, b), plain.get_lcdd(a, b), "{a} {b}");
            }
        }
    }
}
