//! HLI maintenance functions (Section 3.2.3 of the paper).
//!
//! As the back-end optimizes, memory references are deleted (CSE), moved
//! (loop-invariant code motion) or duplicated (loop unrolling), and the HLI
//! must be updated to stay consistent:
//!
//! * [`delete_item`] — CSE removed a memory reference: drop the item,
//!   collapsing classes that become empty (and their upward references);
//! * [`gen_item_like`] — a pass materialized a new memory reference that
//!   accesses the same location as an existing one: allocate a new item
//!   *inheriting* the prototype's class membership;
//! * [`move_item_to_region`] — LICM hoisted a reference out of a loop:
//!   re-home the item into an ancestor region's corresponding class;
//! * [`unroll_loop`] — the Figure 6 update: replicate the loop body's items
//!   and classes per unrolled copy, remap each LCDD arc `(src, dst, d)` to
//!   copies `k → (k+d) mod u` with new distance `(k+d) div u` (distance-0
//!   results become intra-iteration alias entries), and optionally build a
//!   preconditioning (remainder) loop region with the original dependence
//!   structure.
//!
//! Every successful operation bumps [`HliEntry::bump_generation`]; this is
//! the invalidation hook [`crate::cache::QueryCache`] keys on, so memoized
//! query answers never outlive the tables they were computed from. Failed
//! operations leave both the entry and its generation unchanged.

use crate::ids::{ItemId, RegionId};
use crate::tables::*;
use std::collections::HashMap;
use std::fmt;

/// A maintenance-operation failure. The entry is left unchanged on error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MaintainError(pub String);

impl fmt::Display for MaintainError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "HLI maintenance error: {}", self.0)
    }
}

impl std::error::Error for MaintainError {}

fn err<T>(msg: impl Into<String>) -> Result<T, MaintainError> {
    Err(MaintainError(msg.into()))
}

/// Record one completed maintenance operation with the active provenance
/// sink (no-op when provenance is off). Maintenance is the
/// invalidation/regeneration side of the audit trail: it explains why a
/// later query's answer changed.
fn prov_applied(e: &HliEntry, op: &str, region: Option<RegionId>, line: u32) {
    if let Some(sink) = hli_obs::provenance::active() {
        sink.record(hli_obs::DecisionRecord {
            pass: format!("maintain.{op}"),
            function: e.unit_name.clone(),
            region_id: region.map(|r| r.0),
            order: line,
            // Maintenance keeps tables consistent rather than making an
            // optimization decision: no causal span, no benefit estimate.
            span: 0,
            est_cycles: 0,
            hli_queries: Vec::new(),
            verdict: hli_obs::Verdict::Applied,
        });
    }
}

/// Delete an item (e.g. CSE eliminated its memory reference). Classes that
/// become empty are removed, and every table referencing them is cleaned,
/// cascading upward through enclosing regions.
pub fn delete_item(e: &mut HliEntry, id: ItemId) -> Result<(), MaintainError> {
    hli_obs::metrics::cur().counter("hli.maintain.delete_item").inc();
    let line = e.line_table.find(id).map(|(l, _)| l).unwrap_or(0);
    if !e.line_table.remove_item(id) {
        return err(format!("item {id} not in line table"));
    }
    let Some(region) = e.owning_region(id) else {
        // Call items are not class members, but their REF/MOD entries must
        // not dangle.
        for r in &mut e.regions {
            r.call_refmod.retain(|c| c.callee != CallRef::Item(id));
        }
        e.bump_generation();
        prov_applied(e, "delete_item", None, line);
        return Ok(());
    };
    let class = class_of_direct_item(e, region, id).expect("owning class");
    let r = e.region_mut(region);
    let c = r.class_mut(class).unwrap();
    c.members.retain(|m| !matches!(m, MemberRef::Item(i) if *i == id));
    cleanup_if_empty(e, region, class);
    e.bump_generation();
    prov_applied(e, "delete_item", Some(region), line);
    Ok(())
}

/// Generate a new item that *inherits* the class membership (and therefore
/// every dependence/alias fact) of `proto`. The new item is appended to
/// `line`'s item list with access type `ty`. Returns the new item's ID.
pub fn gen_item_like(
    e: &mut HliEntry,
    proto: ItemId,
    line: u32,
    ty: ItemType,
) -> Result<ItemId, MaintainError> {
    hli_obs::metrics::cur().counter("hli.maintain.gen_item").inc();
    let Some(region) = e.owning_region(proto) else {
        return err(format!("prototype {proto} has no owning class"));
    };
    let class = class_of_direct_item(e, region, proto).expect("owning class");
    let id = e.fresh_id();
    e.line_table.push_item(line, ItemEntry { id, ty });
    e.region_mut(region).class_mut(class).unwrap().members.push(MemberRef::Item(id));
    e.bump_generation();
    prov_applied(e, "gen_item", Some(region), line);
    Ok(id)
}

/// Move an item to an ancestor region (LICM hoisted it out of a loop). The
/// item joins the class that already represents it at `target` and is
/// re-keyed in the line table to `new_line`.
pub fn move_item_to_region(
    e: &mut HliEntry,
    id: ItemId,
    target: RegionId,
    new_line: u32,
) -> Result<(), MaintainError> {
    hli_obs::metrics::cur().counter("hli.maintain.move_item").inc();
    let Some(cur) = e.owning_region(id) else {
        return err(format!("item {id} has no owning class"));
    };
    if cur == target {
        return err(format!("item {id} already owned by region {target}"));
    }
    if !e.region_path(cur).contains(&target) {
        return err(format!("region {target} is not an ancestor of {cur}"));
    }
    let Some((_, ty)) = e.line_table.find(id) else {
        return err(format!("item {id} not in line table"));
    };
    // The class representing the item at the target region.
    let Some(target_class) = resolve_class_at(e, target, id) else {
        return err(format!("item {id} has no class at region {target}"));
    };
    // Add to the target class first so cleanup can never remove it.
    e.region_mut(target)
        .class_mut(target_class)
        .unwrap()
        .members
        .push(MemberRef::Item(id));
    // Then detach from the inner class and cascade-clean.
    let inner_class = class_of_direct_item(e, cur, id).expect("owning class");
    e.region_mut(cur)
        .class_mut(inner_class)
        .unwrap()
        .members
        .retain(|m| !matches!(m, MemberRef::Item(i) if *i == id));
    cleanup_if_empty(e, cur, inner_class);
    // Re-key the line table.
    e.line_table.remove_item(id);
    e.line_table.push_item(new_line, ItemEntry { id, ty });
    e.bump_generation();
    prov_applied(e, "move_item", Some(target), new_line);
    Ok(())
}

/// Maps from original item/class IDs to their copies after unrolling.
#[derive(Debug, Clone, Default)]
pub struct UnrollMaps {
    /// `body_items[k]` maps an original item to its copy in unrolled body
    /// copy `k+1` (copy 0 is the original itself).
    pub body_items: Vec<HashMap<ItemId, ItemId>>,
    /// Item map for the preconditioning (remainder) loop, if one was built.
    pub precond_items: HashMap<ItemId, ItemId>,
    /// The preconditioning region, if built.
    pub precond_region: Option<RegionId>,
}

/// Unroll a loop region by `factor` (Figure 6 of the paper). Restricted to
/// innermost loops (no sub-regions) — the shape the back-end unroller
/// handles. Items and classes are replicated per copy; LCDD arcs are
/// remapped with the `(k+d) mod u` / `(k+d) div u` rule; distance-0 results
/// become intra-iteration alias entries. When `make_precond` is set, a
/// remainder loop region with the original dependence structure is added
/// after the unrolled loop.
pub fn unroll_loop(
    e: &mut HliEntry,
    region: RegionId,
    factor: u32,
    make_precond: bool,
) -> Result<UnrollMaps, MaintainError> {
    hli_obs::metrics::cur().counter("hli.maintain.unroll_loop").inc();
    if factor < 2 {
        return err("unroll factor must be at least 2");
    }
    let r = e.region(region);
    if !r.is_loop() {
        return err(format!("region {region} is not a loop"));
    }
    if !r.subregions.is_empty() {
        return err(format!("region {region} has sub-regions (only innermost loops unroll)"));
    }
    let parent = r.parent.expect("loops have parents");
    let kind = r.kind;
    let scope = r.scope;
    let orig_classes: Vec<EquivClass> = r.equiv_classes.clone();
    let orig_alias: Vec<AliasEntry> = r.alias_table.clone();
    let orig_lcdd: Vec<LcddEntry> = r.lcdd_table.clone();

    // Direct items of the region, with their line-table info, in line order.
    let mut direct_items: Vec<(ItemId, u32, ItemType)> = Vec::new();
    for (line, it) in e.line_table.items() {
        if class_of_direct_item(e, region, it.id).is_some() {
            direct_items.push((it.id, line, it.ty));
        }
    }

    let u = factor;
    let mut maps = UnrollMaps::default();

    // --- Replicate classes and items for body copies 1..u-1. -------------
    // class_copy[k][orig_class] = class id of copy k (copy 0 = original).
    let mut class_copy: Vec<HashMap<ItemId, ItemId>> = vec![HashMap::new(); u as usize];
    for c in &orig_classes {
        class_copy[0].insert(c.id, c.id);
    }
    for k in 1..u {
        let mut item_map = HashMap::new();
        // Items first (line table order), so per-line ordering is: all of
        // copy k-1's items before copy k's.
        for &(orig, line, ty) in &direct_items {
            let id = e.fresh_id();
            e.line_table.push_item(line, ItemEntry { id, ty });
            item_map.insert(orig, id);
        }
        for c in &orig_classes {
            let id = e.fresh_id();
            class_copy[k as usize].insert(c.id, id);
            let members = c
                .members
                .iter()
                .map(|m| match m {
                    MemberRef::Item(i) => MemberRef::Item(item_map[i]),
                    MemberRef::SubClass { .. } => unreachable!("innermost loop"),
                })
                .collect();
            e.region_mut(region).equiv_classes.push(EquivClass {
                id,
                kind: c.kind,
                members,
                name_hint: if c.name_hint.is_empty() {
                    String::new()
                } else {
                    format!("{}#u{k}", c.name_hint)
                },
            });
            // The parent class holding SubClass{region, orig} also holds
            // the copy.
            attach_subclass_to_parent(e, parent, region, c.id, id);
        }
        maps.body_items.push(item_map);
    }

    // --- Replicate alias entries per copy. --------------------------------
    let mut new_alias: Vec<AliasEntry> = Vec::new();
    for a in &orig_alias {
        for k in 0..u {
            if k == 0 {
                continue; // original entry already present
            }
            new_alias.push(AliasEntry {
                classes: a.classes.iter().map(|c| class_copy[k as usize][c]).collect(),
            });
        }
    }

    // --- Remap LCDD arcs (the Figure 6 rule). -----------------------------
    let mut new_lcdd: Vec<LcddEntry> = Vec::new();
    for d in &orig_lcdd {
        match d.distance {
            Distance::Const(dist) => {
                for k in 0..u {
                    let tgt_copy = (k + dist) % u;
                    let new_dist = (k + dist) / u;
                    let src = class_copy[k as usize][&d.src];
                    let dst = class_copy[tgt_copy as usize][&d.dst];
                    if new_dist == 0 {
                        // Became an intra-iteration dependence: the two
                        // copies may touch the same location within one
                        // unrolled iteration — an alias fact now.
                        new_alias.push(AliasEntry { classes: vec![src, dst] });
                    } else {
                        new_lcdd.push(LcddEntry {
                            src,
                            dst,
                            kind: d.kind,
                            distance: Distance::Const(new_dist),
                        });
                    }
                }
            }
            Distance::Unknown => {
                // Unknown distance: every copy pair may conflict, both
                // within an iteration and across.
                for k in 0..u {
                    for j in 0..u {
                        let src = class_copy[k as usize][&d.src];
                        let dst = class_copy[j as usize][&d.dst];
                        if src != dst {
                            new_alias.push(AliasEntry { classes: vec![src, dst] });
                        }
                        new_lcdd.push(LcddEntry {
                            src,
                            dst,
                            kind: DepKind::Maybe,
                            distance: Distance::Unknown,
                        });
                    }
                }
            }
        }
    }
    {
        let r = e.region_mut(region);
        // Original LCDD entries are replaced by the remapped set.
        r.lcdd_table = new_lcdd;
        r.alias_table.extend(new_alias);
        dedup_alias(&mut r.alias_table);
    }

    // --- Preconditioning (remainder) loop. --------------------------------
    if make_precond {
        let pre = e.add_region(parent, kind, scope);
        maps.precond_region = Some(pre);
        let mut item_map = HashMap::new();
        for &(orig, line, ty) in &direct_items {
            let id = e.fresh_id();
            e.line_table.push_item(line, ItemEntry { id, ty });
            item_map.insert(orig, id);
        }
        let mut pre_class: HashMap<ItemId, ItemId> = HashMap::new();
        for c in &orig_classes {
            let id = e.fresh_id();
            pre_class.insert(c.id, id);
            let members = c
                .members
                .iter()
                .map(|m| match m {
                    MemberRef::Item(i) => MemberRef::Item(item_map[i]),
                    MemberRef::SubClass { .. } => unreachable!("innermost loop"),
                })
                .collect();
            e.region_mut(pre).equiv_classes.push(EquivClass {
                id,
                kind: c.kind,
                members,
                name_hint: if c.name_hint.is_empty() {
                    String::new()
                } else {
                    format!("{}#pre", c.name_hint)
                },
            });
            attach_subclass_to_parent_new(e, parent, region, c.id, pre, id);
        }
        // The remainder loop keeps the original dependence structure.
        let r = e.region_mut(pre);
        r.alias_table = orig_alias
            .iter()
            .map(|a| AliasEntry { classes: a.classes.iter().map(|c| pre_class[c]).collect() })
            .collect();
        r.lcdd_table = orig_lcdd
            .iter()
            .map(|d| LcddEntry {
                src: pre_class[&d.src],
                dst: pre_class[&d.dst],
                kind: d.kind,
                distance: d.distance,
            })
            .collect();
        maps.precond_items = item_map;
    }

    e.bump_generation();
    prov_applied(e, "unroll_loop", Some(region), scope.0);
    Ok(maps)
}

/// The class of `region` that directly lists `item` as a member.
fn class_of_direct_item(e: &HliEntry, region: RegionId, item: ItemId) -> Option<ItemId> {
    e.region(region)
        .equiv_classes
        .iter()
        .find(|c| c.members.iter().any(|m| matches!(m, MemberRef::Item(i) if *i == item)))
        .map(|c| c.id)
}

/// Resolve the class representing `item` at an ancestor region by chasing
/// the subclass chain upward.
fn resolve_class_at(e: &HliEntry, target: RegionId, item: ItemId) -> Option<ItemId> {
    let mut region = e.owning_region(item)?;
    let mut class = class_of_direct_item(e, region, item)?;
    while region != target {
        let parent = e.region(region).parent?;
        let pc = e.region(parent).equiv_classes.iter().find(|c| {
            c.members.iter().any(
                |m| matches!(m, MemberRef::SubClass { region: r, class: cl } if *r == region && *cl == class),
            )
        })?;
        class = pc.id;
        region = parent;
    }
    Some(class)
}

/// After removing a member: if the class is empty, remove it and every
/// reference to it, cascading to the parent.
fn cleanup_if_empty(e: &mut HliEntry, region: RegionId, class: ItemId) {
    let r = e.region(region);
    let Some(c) = r.class(class) else { return };
    if !c.members.is_empty() {
        return;
    }
    let parent = r.parent;
    {
        let r = e.region_mut(region);
        r.equiv_classes.retain(|c| c.id != class);
        for a in &mut r.alias_table {
            a.classes.retain(|&x| x != class);
        }
        r.alias_table.retain(|a| a.classes.len() >= 2);
        r.lcdd_table.retain(|d| d.src != class && d.dst != class);
        for crm in &mut r.call_refmod {
            crm.refs.retain(|&x| x != class);
            crm.mods.retain(|&x| x != class);
        }
    }
    if let Some(p) = parent {
        // Remove the SubClass reference from the parent's class.
        let mut parent_class = None;
        for pc in &mut e.region_mut(p).equiv_classes {
            let before = pc.members.len();
            pc.members.retain(
                |m| !matches!(m, MemberRef::SubClass { region: r, class: cl } if *r == region && *cl == class),
            );
            if pc.members.len() != before {
                parent_class = Some(pc.id);
            }
        }
        if let Some(pc) = parent_class {
            cleanup_if_empty(e, p, pc);
        }
    }
}

/// Add `SubClass{region, copy}` next to the existing `SubClass{region,
/// orig}` reference in the parent's classes.
fn attach_subclass_to_parent(
    e: &mut HliEntry,
    parent: RegionId,
    region: RegionId,
    orig: ItemId,
    copy: ItemId,
) {
    for pc in &mut e.region_mut(parent).equiv_classes {
        let has = pc.members.iter().any(
            |m| matches!(m, MemberRef::SubClass { region: r, class: c } if *r == region && *c == orig),
        );
        if has {
            pc.members.push(MemberRef::SubClass { region, class: copy });
            return;
        }
    }
}

/// Same, but the copy lives in a *different* (new) region.
fn attach_subclass_to_parent_new(
    e: &mut HliEntry,
    parent: RegionId,
    orig_region: RegionId,
    orig: ItemId,
    new_region: RegionId,
    copy: ItemId,
) {
    for pc in &mut e.region_mut(parent).equiv_classes {
        let has = pc.members.iter().any(
            |m| matches!(m, MemberRef::SubClass { region: r, class: c } if *r == orig_region && *c == orig),
        );
        if has {
            pc.members.push(MemberRef::SubClass { region: new_region, class: copy });
            return;
        }
    }
}

fn dedup_alias(table: &mut Vec<AliasEntry>) {
    let mut seen = std::collections::HashSet::new();
    table.retain(|a| {
        let mut key: Vec<ItemId> = a.classes.clone();
        key.sort();
        key.dedup();
        if key.len() < 2 {
            return false;
        }
        seen.insert(key)
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::UNIT_REGION;
    use crate::query::{EquivAcc, HliQuery};
    use crate::tables::tests::figure2_like;

    #[test]
    fn delete_item_keeps_entry_valid() {
        let mut e = figure2_like();
        delete_item(&mut e, ItemId(9)).unwrap();
        assert!(e.validate().is_empty(), "{:?}", e.validate());
        assert!(e.line_table.find(ItemId(9)).is_none());
        // Partner item 10 still classed.
        assert!(e.owning_region(ItemId(10)).is_some());
    }

    #[test]
    fn delete_last_item_collapses_class_chain() {
        let mut e = figure2_like();
        // Items 0 and 2 are the only members of region-2's sum class; the
        // unit's sum class also references region 3's — deleting both
        // region-2 items must drop that subclass ref but keep the unit
        // class alive.
        delete_item(&mut e, ItemId(0)).unwrap();
        delete_item(&mut e, ItemId(2)).unwrap();
        assert!(e.validate().is_empty(), "{:?}", e.validate());
        let unit_sum = e
            .region(UNIT_REGION)
            .equiv_classes
            .iter()
            .find(|c| c.name_hint == "sum")
            .expect("unit sum class survives");
        assert_eq!(unit_sum.members.len(), 1);
    }

    #[test]
    fn delete_whole_variable_removes_unit_class() {
        let mut e = figure2_like();
        for id in [0u32, 2, 9, 10] {
            delete_item(&mut e, ItemId(id)).unwrap();
        }
        assert!(e.validate().is_empty(), "{:?}", e.validate());
        assert!(e.region(UNIT_REGION).equiv_classes.iter().all(|c| c.name_hint != "sum"));
    }

    #[test]
    fn delete_call_item_cleans_refmod_entries() {
        let mut e = figure2_like();
        let call = e.fresh_id();
        e.line_table.push_item(13, ItemEntry { id: call, ty: ItemType::Call });
        let c_sum = e.region(RegionId(1)).equiv_classes[0].id;
        e.region_mut(RegionId(1)).call_refmod.push(CallRefMod {
            callee: CallRef::Item(call),
            refs: vec![c_sum],
            mods: vec![c_sum],
        });
        assert!(e.validate().is_empty());
        delete_item(&mut e, call).unwrap();
        assert!(
            e.validate().is_empty(),
            "deleting a call must not leave dangling REF/MOD entries: {:?}",
            e.validate()
        );
        assert!(e.region(RegionId(1)).call_refmod.is_empty());
    }

    #[test]
    fn delete_missing_item_errors() {
        let mut e = figure2_like();
        assert!(delete_item(&mut e, ItemId(999)).is_err());
    }

    #[test]
    fn gen_item_inherits_equivalence() {
        let mut e = figure2_like();
        let new = gen_item_like(&mut e, ItemId(5), 20, ItemType::Load).unwrap();
        assert!(e.validate().is_empty(), "{:?}", e.validate());
        let q = HliQuery::new(&e);
        assert_eq!(q.get_equiv_acc(new, ItemId(5)), EquivAcc::Definite);
        assert_eq!(q.get_equiv_acc(new, ItemId(7)), EquivAcc::Definite);
        assert_eq!(q.get_equiv_acc(new, ItemId(6)), EquivAcc::None);
    }

    #[test]
    fn move_item_to_ancestor_region() {
        let mut e = figure2_like();
        // Hoist item 8 (a[i] load in region 4) to region 3 (RegionId(2)).
        move_item_to_region(&mut e, ItemId(8), RegionId(2), 16).unwrap();
        assert!(e.validate().is_empty(), "{:?}", e.validate());
        assert_eq!(e.owning_region(ItemId(8)), Some(RegionId(2)));
        assert_eq!(e.line_table.find(ItemId(8)), Some((16, ItemType::Load)));
        // It still may-overlap its old classmates at the unit level.
        let q = HliQuery::new(&e);
        assert_ne!(q.get_equiv_acc(ItemId(8), ItemId(11)), EquivAcc::Unknown);
    }

    #[test]
    fn move_rejects_non_ancestor() {
        let mut e = figure2_like();
        // Region 1 (first i loop) is not an ancestor of item 8.
        assert!(move_item_to_region(&mut e, ItemId(8), RegionId(1), 12).is_err());
    }

    #[test]
    fn unroll_rejects_bad_inputs() {
        let mut e = figure2_like();
        assert!(unroll_loop(&mut e, RegionId(3), 1, false).is_err());
        assert!(unroll_loop(&mut e, UNIT_REGION, 2, false).is_err());
        // Region 2 has a subregion (region 4 = RegionId(3)).
        assert!(unroll_loop(&mut e, RegionId(2), 2, false).is_err());
    }

    #[test]
    fn unroll_by_2_distance_1_becomes_intra_iteration() {
        let mut e = figure2_like();
        let items_before = e.line_table.item_count();
        let maps = unroll_loop(&mut e, RegionId(3), 2, false).unwrap();
        assert!(e.validate().is_empty(), "{:?}", e.validate());
        assert_eq!(maps.body_items.len(), 1);
        // Region 4 (id 3) had 7 direct items; one extra copy.
        assert_eq!(e.line_table.item_count(), items_before + 7);
        let r = e.region(RegionId(3));
        // Original arc (b[j] → b[j-1], d=1, u=2):
        //   k=0 → copy 1, new distance 0  → alias entry;
        //   k=1 → copy 0, new distance 1  → LCDD arc.
        assert_eq!(r.lcdd_table.len(), 1);
        assert_eq!(r.lcdd_table[0].distance, Distance::Const(1));
        assert!(!r.alias_table.is_empty());
    }

    #[test]
    fn unroll_by_4_distance_1_chains_copies() {
        let mut e = figure2_like();
        unroll_loop(&mut e, RegionId(3), 4, false).unwrap();
        assert!(e.validate().is_empty(), "{:?}", e.validate());
        let r = e.region(RegionId(3));
        // d=1, u=4: k=0,1,2 give distance 0 (alias); k=3 gives distance 1.
        assert_eq!(r.lcdd_table.len(), 1);
        assert_eq!(r.lcdd_table[0].distance, Distance::Const(1));
        assert!(r.alias_table.iter().filter(|a| a.classes.len() == 2).count() >= 3);
    }

    #[test]
    fn unroll_distance_wider_than_factor() {
        let mut e = figure2_like();
        // Rewrite the arc to distance 5, then unroll by 2:
        // k=0: (0+5)%2=1, d=2 ; k=1: (1+5)%2=0, d=3.
        e.region_mut(RegionId(3)).lcdd_table[0].distance = Distance::Const(5);
        unroll_loop(&mut e, RegionId(3), 2, false).unwrap();
        let r = e.region(RegionId(3));
        let dists: Vec<Distance> = r.lcdd_table.iter().map(|d| d.distance).collect();
        assert!(dists.contains(&Distance::Const(2)));
        assert!(dists.contains(&Distance::Const(3)));
        assert_eq!(r.lcdd_table.len(), 2);
    }

    #[test]
    fn unroll_unknown_distance_goes_conservative() {
        let mut e = figure2_like();
        e.region_mut(RegionId(3)).lcdd_table[0].distance = Distance::Unknown;
        unroll_loop(&mut e, RegionId(3), 2, false).unwrap();
        let r = e.region(RegionId(3));
        assert_eq!(r.lcdd_table.len(), 4, "all copy pairs get unknown arcs");
        assert!(r.lcdd_table.iter().all(|d| d.distance == Distance::Unknown));
    }

    #[test]
    fn unroll_with_precond_builds_remainder_region() {
        let mut e = figure2_like();
        let n_regions = e.regions.len();
        let maps = unroll_loop(&mut e, RegionId(3), 2, true).unwrap();
        assert!(e.validate().is_empty(), "{:?}", e.validate());
        assert_eq!(e.regions.len(), n_regions + 1);
        let pre = maps.precond_region.unwrap();
        let r = e.region(pre);
        // The remainder loop keeps the original arc unchanged.
        assert_eq!(r.lcdd_table.len(), 1);
        assert_eq!(r.lcdd_table[0].distance, Distance::Const(1));
        assert_eq!(maps.precond_items.len(), 7);
        // Parent of precond is region 3's parent (region 2 = RegionId(2)).
        assert_eq!(r.parent, Some(RegionId(2)));
    }

    #[test]
    fn precond_region_carries_intra_iteration_alias_entries() {
        let mut e = figure2_like();
        // Give the innermost loop an intra-iteration (distance-0) overlap
        // fact: two of its classes may touch the same memory within one
        // iteration. Figure 6's remainder loop keeps the original
        // dependence structure, so the fact must survive — remapped onto
        // the preconditioning region's class copies.
        let (ca, cb) = {
            let r = e.region(RegionId(3));
            (r.equiv_classes[0].id, r.equiv_classes[1].id)
        };
        e.region_mut(RegionId(3)).alias_table.push(AliasEntry { classes: vec![ca, cb] });
        assert!(e.validate().is_empty(), "{:?}", e.validate());

        let maps = unroll_loop(&mut e, RegionId(3), 2, true).unwrap();
        assert!(e.validate().is_empty(), "{:?}", e.validate());
        let pre = maps.precond_region.unwrap();

        // Resolve each original class's precond copy through a member
        // item: original item -> precond item -> its class at `pre`.
        let precond_class_of = |orig: ItemId| -> ItemId {
            let member = e
                .region(RegionId(3))
                .class(orig)
                .unwrap()
                .members
                .iter()
                .find_map(|m| match m {
                    MemberRef::Item(i) => Some(*i),
                    MemberRef::SubClass { .. } => None,
                })
                .expect("innermost-loop classes hold items");
            class_of_direct_item(&e, pre, maps.precond_items[&member]).unwrap()
        };
        let (pa, pb) = (precond_class_of(ca), precond_class_of(cb));
        let r = e.region(pre);
        assert_eq!(r.alias_table.len(), 1, "exactly the one original alias fact: {r:?}");
        assert_eq!(r.alias_table[0].classes, vec![pa, pb]);
        // And the copies are fresh classes of the precond region, not the
        // unrolled loop's.
        assert_ne!(pa, ca);
        assert_ne!(pb, cb);
    }

    #[test]
    fn unrolled_copies_answer_queries() {
        let mut e = figure2_like();
        let maps = unroll_loop(&mut e, RegionId(3), 2, false).unwrap();
        let q = HliQuery::new(&e);
        let copy_of_5 = maps.body_items[0][&ItemId(5)];
        // The copy belongs to its own class: b[j] of copy 1 vs copy 0 are
        // different iterations — distinct locations (distance-1 arc went to
        // the alias entry between b[j] copy 0 and b[j-1] copy 1).
        let copy_of_6 = maps.body_items[0][&ItemId(6)];
        assert_eq!(q.get_equiv_acc(ItemId(5), copy_of_6), EquivAcc::Maybe);
        // And the copies still resolve at the unit region.
        assert!(q.class_of_item_at(UNIT_REGION, copy_of_5).is_some());
    }
}
