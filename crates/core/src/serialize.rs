//! Compact binary serialization of HLI files.
//!
//! Table 1 of the paper reports the HLI size in KB per benchmark (10–69
//! bytes per source line); this module defines the byte format those
//! numbers are measured against in the reproduction. IDs, lines and counts
//! are LEB128 varints; enums are single bytes. Debug name hints are
//! excluded unless [`SerializeOpts::include_names`] is set (the harness
//! measures the compact form).
//!
//! Byte sizes crossing this boundary are mirrored into the metrics
//! registry (`hli.serialize.bytes` / `hli.deserialize.bytes`), making the
//! paper's §4 HLI-size claim a measured metric.

use crate::ids::{ItemId, RegionId};
use crate::tables::*;
use std::fmt;

/// Magic number of an HLI file: "HLI" + version 1 (monolithic, decoded
/// eagerly).
pub const MAGIC: [u8; 4] = *b"HLI\x01";

/// Magic number of a version-2 HLI file: a per-unit directory follows the
/// header so a reader can decode one program unit at a time (the paper's
/// §3.2.1 on-demand import model). See [`crate::reader::HliReader`].
pub const MAGIC_V2: [u8; 4] = *b"HLI\x02";

/// Serialization options.
#[derive(Debug, Clone, Copy, Default)]
pub struct SerializeOpts {
    /// Include class name hints (debug builds of the HLI).
    pub include_names: bool,
}

/// A deserialization error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DecodeError(pub String);

impl fmt::Display for DecodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "HLI decode error: {}", self.0)
    }
}

impl std::error::Error for DecodeError {}

pub(crate) fn count_encoded(n: usize) {
    let r = hli_obs::metrics::cur();
    r.counter("hli.serialize.bytes").add(n as u64);
    r.counter("hli.serialize.calls").inc();
}

pub(crate) fn count_decoded(n: usize) {
    let r = hli_obs::metrics::cur();
    r.counter("hli.deserialize.bytes").add(n as u64);
    r.counter("hli.deserialize.calls").inc();
}

/// Serialize a whole HLI file.
pub fn encode_file(file: &HliFile, opts: SerializeOpts) -> Vec<u8> {
    let _t = hli_obs::phase::timed("hli.encode");
    let mut b = Vec::new();
    b.extend_from_slice(&MAGIC);
    put_varint(&mut b, file.entries.len() as u64);
    for e in &file.entries {
        encode_entry_into(e, opts, &mut b);
    }
    count_encoded(b.len());
    b
}

/// Serialize one program unit's entry (the on-demand per-function unit the
/// back-end reads, Section 3.2.1).
pub fn encode_entry(e: &HliEntry, opts: SerializeOpts) -> Vec<u8> {
    let mut b = Vec::new();
    encode_entry_into(e, opts, &mut b);
    count_encoded(b.len());
    b
}

fn encode_entry_into(e: &HliEntry, opts: SerializeOpts, b: &mut Vec<u8>) {
    put_str(b, &e.unit_name);
    put_varint(b, e.next_id as u64);
    // Line table.
    put_varint(b, e.line_table.lines.len() as u64);
    for l in &e.line_table.lines {
        put_varint(b, l.line as u64);
        put_varint(b, l.items.len() as u64);
        for it in &l.items {
            put_varint(b, it.id.0 as u64);
            b.push(match it.ty {
                ItemType::Load => 0,
                ItemType::Store => 1,
                ItemType::Call => 2,
            });
        }
    }
    // Region table.
    put_varint(b, e.regions.len() as u64);
    for r in &e.regions {
        put_varint(b, r.id.0 as u64);
        match r.kind {
            RegionKind::Unit => b.push(0),
            RegionKind::Loop { header_line } => {
                b.push(1);
                put_varint(b, header_line as u64);
            }
        }
        put_varint(b, r.parent.map(|p| p.0 as u64 + 1).unwrap_or(0));
        put_varint(b, r.subregions.len() as u64);
        for s in &r.subregions {
            put_varint(b, s.0 as u64);
        }
        put_varint(b, r.scope.0 as u64);
        put_varint(b, r.scope.1 as u64);
        // Equivalent access table.
        put_varint(b, r.equiv_classes.len() as u64);
        for c in &r.equiv_classes {
            put_varint(b, c.id.0 as u64);
            b.push(match c.kind {
                EquivKind::Definite => 0,
                EquivKind::Maybe => 1,
            });
            if opts.include_names {
                put_str(b, &c.name_hint);
            }
            put_varint(b, c.members.len() as u64);
            for m in &c.members {
                match m {
                    MemberRef::Item(it) => {
                        b.push(0);
                        put_varint(b, it.0 as u64);
                    }
                    MemberRef::SubClass { region, class } => {
                        b.push(1);
                        put_varint(b, region.0 as u64);
                        put_varint(b, class.0 as u64);
                    }
                }
            }
        }
        // Alias table.
        put_varint(b, r.alias_table.len() as u64);
        for a in &r.alias_table {
            put_varint(b, a.classes.len() as u64);
            for c in &a.classes {
                put_varint(b, c.0 as u64);
            }
        }
        // LCDD table.
        put_varint(b, r.lcdd_table.len() as u64);
        for d in &r.lcdd_table {
            put_varint(b, d.src.0 as u64);
            put_varint(b, d.dst.0 as u64);
            b.push(match d.kind {
                DepKind::Definite => 0,
                DepKind::Maybe => 1,
            });
            match d.distance {
                Distance::Const(k) => {
                    b.push(0);
                    put_varint(b, k as u64);
                }
                Distance::Unknown => b.push(1),
            }
        }
        // Call REF/MOD table.
        put_varint(b, r.call_refmod.len() as u64);
        for crm in &r.call_refmod {
            match crm.callee {
                CallRef::Item(it) => {
                    b.push(0);
                    put_varint(b, it.0 as u64);
                }
                CallRef::SubRegion(s) => {
                    b.push(1);
                    put_varint(b, s.0 as u64);
                }
            }
            put_varint(b, crm.refs.len() as u64);
            for c in &crm.refs {
                put_varint(b, c.0 as u64);
            }
            put_varint(b, crm.mods.len() as u64);
            for c in &crm.mods {
                put_varint(b, c.0 as u64);
            }
        }
    }
}

/// Read the 4-byte magic header, advancing `b` past it. The one shared
/// length-checked entry point for every image-opening code path (the v1
/// decoder here and [`crate::reader::HliReader::open`]), so no caller can
/// reintroduce the unchecked `b[..4]` slice the fuzzer guards against.
pub(crate) fn read_magic(b: &mut &[u8]) -> Result<[u8; 4], DecodeError> {
    if b.len() < 4 {
        return Err(DecodeError("truncated header".into()));
    }
    let (head, rest) = b.split_at(4);
    *b = rest;
    Ok(head.try_into().expect("split_at(4) yields 4 bytes"))
}

/// Deserialize a whole HLI file.
pub fn decode_file(buf: &[u8], opts: SerializeOpts) -> Result<HliFile, DecodeError> {
    let _t = hli_obs::phase::timed("hli.decode");
    let total = buf.len();
    let mut buf = buf;
    let b = &mut buf;
    if read_magic(b)? != MAGIC {
        return Err(DecodeError("bad magic".into()));
    }
    let n = get_len(b)?;
    let mut entries = Vec::with_capacity(n.min(1024));
    for _ in 0..n {
        entries.push(decode_entry(b, opts)?);
    }
    if !b.is_empty() {
        return Err(DecodeError(format!("trailing bytes: {} after last entry", b.len())));
    }
    count_decoded(total);
    Ok(HliFile { entries })
}

pub(crate) fn decode_entry(b: &mut &[u8], opts: SerializeOpts) -> Result<HliEntry, DecodeError> {
    let unit_name = get_str(b)?;
    let next_id = get_u32(b)?;
    let mut line_table = LineTable::default();
    let nlines = get_len(b)?;
    for _ in 0..nlines {
        let line = get_u32(b)?;
        let nitems = get_len(b)?;
        let mut items = Vec::with_capacity(nitems.min(4096));
        for _ in 0..nitems {
            let id = ItemId(get_u32(b)?);
            let ty = match get_u8(b)? {
                0 => ItemType::Load,
                1 => ItemType::Store,
                2 => ItemType::Call,
                x => return Err(DecodeError(format!("bad item type {x}"))),
            };
            items.push(ItemEntry { id, ty });
        }
        line_table.lines.push(LineEntry { line, items });
    }
    let nregions = get_len(b)?;
    let mut regions = Vec::with_capacity(nregions.min(4096));
    for _ in 0..nregions {
        let id = RegionId(get_u32(b)?);
        let kind = match get_u8(b)? {
            0 => RegionKind::Unit,
            1 => RegionKind::Loop { header_line: get_u32(b)? },
            x => return Err(DecodeError(format!("bad region kind {x}"))),
        };
        let praw = get_varint(b)?;
        let parent = if praw == 0 {
            None
        } else {
            Some(RegionId(narrow_u32(praw - 1)?))
        };
        let nsub = get_len(b)?;
        let mut subregions = Vec::with_capacity(nsub.min(4096));
        for _ in 0..nsub {
            subregions.push(RegionId(get_u32(b)?));
        }
        let scope = (get_u32(b)?, get_u32(b)?);
        let nclasses = get_len(b)?;
        let mut equiv_classes = Vec::with_capacity(nclasses.min(4096));
        for _ in 0..nclasses {
            let cid = ItemId(get_u32(b)?);
            let kind = match get_u8(b)? {
                0 => EquivKind::Definite,
                1 => EquivKind::Maybe,
                x => return Err(DecodeError(format!("bad equiv kind {x}"))),
            };
            let name_hint = if opts.include_names {
                get_str(b)?
            } else {
                String::new()
            };
            let nm = get_len(b)?;
            let mut members = Vec::with_capacity(nm.min(4096));
            for _ in 0..nm {
                members.push(match get_u8(b)? {
                    0 => MemberRef::Item(ItemId(get_u32(b)?)),
                    1 => MemberRef::SubClass {
                        region: RegionId(get_u32(b)?),
                        class: ItemId(get_u32(b)?),
                    },
                    x => return Err(DecodeError(format!("bad member tag {x}"))),
                });
            }
            equiv_classes.push(EquivClass { id: cid, kind, members, name_hint });
        }
        let nalias = get_len(b)?;
        let mut alias_table = Vec::with_capacity(nalias.min(4096));
        for _ in 0..nalias {
            let nc = get_len(b)?;
            let mut classes = Vec::with_capacity(nc.min(4096));
            for _ in 0..nc {
                classes.push(ItemId(get_u32(b)?));
            }
            alias_table.push(AliasEntry { classes });
        }
        let nlcdd = get_len(b)?;
        let mut lcdd_table = Vec::with_capacity(nlcdd.min(4096));
        for _ in 0..nlcdd {
            let src = ItemId(get_u32(b)?);
            let dst = ItemId(get_u32(b)?);
            let kind = match get_u8(b)? {
                0 => DepKind::Definite,
                1 => DepKind::Maybe,
                x => return Err(DecodeError(format!("bad dep kind {x}"))),
            };
            let distance = match get_u8(b)? {
                0 => Distance::Const(get_u32(b)?),
                1 => Distance::Unknown,
                x => return Err(DecodeError(format!("bad distance tag {x}"))),
            };
            lcdd_table.push(LcddEntry { src, dst, kind, distance });
        }
        let ncrm = get_len(b)?;
        let mut call_refmod = Vec::with_capacity(ncrm.min(4096));
        for _ in 0..ncrm {
            let callee = match get_u8(b)? {
                0 => CallRef::Item(ItemId(get_u32(b)?)),
                1 => CallRef::SubRegion(RegionId(get_u32(b)?)),
                x => return Err(DecodeError(format!("bad callee tag {x}"))),
            };
            let nr = get_len(b)?;
            let mut refs = Vec::with_capacity(nr.min(4096));
            for _ in 0..nr {
                refs.push(ItemId(get_u32(b)?));
            }
            let nm = get_len(b)?;
            let mut mods = Vec::with_capacity(nm.min(4096));
            for _ in 0..nm {
                mods.push(ItemId(get_u32(b)?));
            }
            call_refmod.push(CallRefMod { callee, refs, mods });
        }
        regions.push(Region {
            id,
            kind,
            parent,
            subregions,
            scope,
            equiv_classes,
            alias_table,
            lcdd_table,
            call_refmod,
        });
    }
    Ok(HliEntry { unit_name, line_table, regions, next_id, generation: 0 })
}

/// Encode a version-2 (`HLI\x02`) file: magic, unit count, then a directory
/// of (unit name, body length) followed by the entry bodies in order. The
/// directory lets [`crate::reader::HliReader`] locate and decode exactly one
/// program unit per request, realizing the paper's §3.2.1 on-demand import:
/// *"The HLI file is read on demand as GCC compiles a program function by
/// function. This approach eliminates the need to keep all of the HLI in
/// memory at the same time."*
pub fn encode_file_v2(file: &HliFile, opts: SerializeOpts) -> Vec<u8> {
    let _t = hli_obs::phase::timed("hli.encode");
    // Encode entries first to learn their extents.
    let mut bodies: Vec<(String, Vec<u8>)> = Vec::with_capacity(file.entries.len());
    for e in &file.entries {
        let mut b = Vec::new();
        encode_entry_into(e, opts, &mut b);
        bodies.push((e.unit_name.clone(), b));
    }
    let mut out = Vec::new();
    out.extend_from_slice(&MAGIC_V2);
    put_varint(&mut out, bodies.len() as u64);
    // Directory: name, length (offsets are implied by order).
    for (name, body) in &bodies {
        put_str(&mut out, name);
        put_varint(&mut out, body.len() as u64);
    }
    for (_, body) in &bodies {
        out.extend_from_slice(body);
    }
    count_encoded(out.len());
    out
}

fn put_varint(b: &mut Vec<u8>, mut v: u64) {
    loop {
        let byte = (v & 0x7f) as u8;
        v >>= 7;
        if v == 0 {
            b.push(byte);
            return;
        }
        b.push(byte | 0x80);
    }
}

pub(crate) fn get_varint(b: &mut &[u8]) -> Result<u64, DecodeError> {
    let mut v: u64 = 0;
    let mut shift = 0;
    loop {
        let byte = get_u8(b)?;
        v |= u64::from(byte & 0x7f) << shift;
        if byte & 0x80 == 0 {
            return Ok(v);
        }
        shift += 7;
        if shift >= 64 {
            return Err(DecodeError("varint overflow".into()));
        }
    }
}

/// Narrow a decoded varint into the u32 range all IDs, lines and distances
/// live in, rejecting (rather than wrapping) out-of-range values.
fn narrow_u32(v: u64) -> Result<u32, DecodeError> {
    u32::try_from(v).map_err(|_| DecodeError(format!("varint {v} out of u32 range")))
}

/// Decode a varint that must fit in a u32 (IDs, source lines, distances).
fn get_u32(b: &mut &[u8]) -> Result<u32, DecodeError> {
    narrow_u32(get_varint(b)?)
}

/// Decode a varint used as an in-memory count or length, rejecting values
/// that would wrap `usize` on narrower targets.
pub(crate) fn get_len(b: &mut &[u8]) -> Result<usize, DecodeError> {
    let v = get_varint(b)?;
    usize::try_from(v).map_err(|_| DecodeError(format!("varint {v} out of usize range")))
}

fn get_u8(b: &mut &[u8]) -> Result<u8, DecodeError> {
    let (&first, rest) =
        b.split_first().ok_or_else(|| DecodeError("unexpected end of input".into()))?;
    *b = rest;
    Ok(first)
}

fn put_str(b: &mut Vec<u8>, s: &str) {
    put_varint(b, s.len() as u64);
    b.extend_from_slice(s.as_bytes());
}

pub(crate) fn get_str(b: &mut &[u8]) -> Result<String, DecodeError> {
    let len = get_len(b)?;
    if b.len() < len {
        return Err(DecodeError("truncated string".into()));
    }
    let (head, rest) = b.split_at(len);
    let s = String::from_utf8(head.to_vec()).map_err(|e| DecodeError(format!("bad utf8: {e}")))?;
    *b = rest;
    Ok(s)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tables::tests::figure2_like;

    #[test]
    fn roundtrip_without_names() {
        let mut e = figure2_like();
        // Names are dropped in compact mode; blank them for comparison.
        let file = HliFile { entries: vec![e.clone()] };
        let bytes = encode_file(&file, SerializeOpts::default());
        let back = decode_file(&bytes, SerializeOpts::default()).unwrap();
        for r in &mut e.regions {
            for c in &mut r.equiv_classes {
                c.name_hint.clear();
            }
        }
        assert_eq!(back.entries.len(), 1);
        assert_eq!(back.entries[0], e);
    }

    #[test]
    fn roundtrip_with_names() {
        let e = figure2_like();
        let opts = SerializeOpts { include_names: true };
        let file = HliFile { entries: vec![e.clone()] };
        let bytes = encode_file(&file, opts);
        let back = decode_file(&bytes, opts).unwrap();
        assert_eq!(back.entries[0], e);
    }

    #[test]
    fn compact_is_smaller_than_named() {
        let e = figure2_like();
        let file = HliFile { entries: vec![e] };
        let compact = encode_file(&file, SerializeOpts::default());
        let named = encode_file(&file, SerializeOpts { include_names: true });
        assert!(compact.len() < named.len());
    }

    #[test]
    fn entry_roundtrip() {
        let e = figure2_like();
        let bytes = encode_entry(&e, SerializeOpts { include_names: true });
        let mut slice = &bytes[..];
        let back = decode_entry(&mut slice, SerializeOpts { include_names: true }).unwrap();
        assert_eq!(back, e);
        assert!(slice.is_empty(), "decoder consumed everything");
    }

    #[test]
    fn bad_magic_rejected() {
        let err = decode_file(b"NOPE....", SerializeOpts::default()).unwrap_err();
        assert!(err.0.contains("bad magic"));
    }

    #[test]
    fn truncation_rejected_not_panicking() {
        let file = HliFile { entries: vec![figure2_like()] };
        let bytes = encode_file(&file, SerializeOpts::default());
        // Every prefix must fail cleanly, never panic.
        for cut in 0..bytes.len() {
            assert!(decode_file(&bytes[..cut], SerializeOpts::default()).is_err());
        }
    }

    #[test]
    fn varint_roundtrip_extremes() {
        for v in [0u64, 1, 127, 128, 300, 1 << 20, u32::MAX as u64, u64::MAX] {
            let mut b = Vec::new();
            put_varint(&mut b, v);
            let mut s = &b[..];
            assert_eq!(get_varint(&mut s).unwrap(), v);
            assert!(s.is_empty());
        }
    }

    #[test]
    fn empty_file_roundtrip() {
        let f = HliFile::default();
        let bytes = encode_file(&f, SerializeOpts::default());
        assert_eq!(decode_file(&bytes, SerializeOpts::default()).unwrap(), f);
    }

    #[test]
    fn trailing_garbage_rejected() {
        let file = HliFile { entries: vec![figure2_like()] };
        let mut bytes = encode_file(&file, SerializeOpts::default());
        bytes.extend_from_slice(b"junk");
        let err = decode_file(&bytes, SerializeOpts::default()).unwrap_err();
        assert!(err.0.contains("trailing bytes"), "got: {err}");
    }

    #[test]
    fn oversize_varints_rejected_not_wrapped() {
        // An id of u32::MAX + 1 must be a decode error, not a silent wrap
        // to ItemId(0). Build a file body by hand: magic, 1 entry, empty
        // name, then the oversized next_id varint.
        let mut bytes = Vec::new();
        bytes.extend_from_slice(&MAGIC);
        put_varint(&mut bytes, 1); // one entry
        put_str(&mut bytes, ""); // unit_name
        put_varint(&mut bytes, u64::from(u32::MAX) + 1); // next_id
        let err = decode_file(&bytes, SerializeOpts::default()).unwrap_err();
        assert!(err.0.contains("out of u32 range"), "got: {err}");
    }

    #[test]
    fn size_is_modest() {
        // The paper reports tens of bytes per source line; the figure-2
        // fixture covers ~12 lines and should stay in the hundreds.
        let e = figure2_like();
        let bytes = encode_entry(&e, SerializeOpts::default());
        assert!(bytes.len() < 400, "compact entry is {} bytes", bytes.len());
    }

    #[test]
    fn serialize_sizes_are_metered() {
        let reg = std::sync::Arc::new(hli_obs::MetricsRegistry::new());
        let _g = hli_obs::metrics::scoped(reg.clone());
        let file = HliFile { entries: vec![figure2_like()] };
        let bytes = encode_file(&file, SerializeOpts::default());
        decode_file(&bytes, SerializeOpts::default()).unwrap();
        let snap = reg.snapshot();
        assert_eq!(snap.counter("hli.serialize.bytes"), bytes.len() as u64);
        assert_eq!(snap.counter("hli.deserialize.bytes"), bytes.len() as u64);
        assert_eq!(snap.counter("hli.serialize.calls"), 1);
        assert_eq!(snap.counter("hli.deserialize.calls"), 1);
    }
}
