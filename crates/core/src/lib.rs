//! # hli-core — the High-Level Information format
//!
//! This crate is the paper's primary contribution rendered as a Rust
//! library: the **HLI file format** (Section 2) plus the APIs the paper's
//! Section 3 builds around it.
//!
//! An HLI file carries, for every program unit, the analysis results that
//! are *"important for back-end optimizations, but only available or
//! computable in the front-end"*:
//!
//! * a **line table** ([`tables::LineTable`]) connecting front-end *items*
//!   (memory accesses and calls, in back-end emission order) to source
//!   lines;
//! * a **region table** ([`tables::Region`]) — a hierarchy of program-unit
//!   and loop regions, each holding four sub-tables:
//!   * the **equivalent access table** ([`tables::EquivClass`]) partitioning
//!     every item in the region (including those of sub-regions) into
//!     mutually-exclusive access classes, each *definitely* or *maybe*
//!     equivalent;
//!   * the **alias table** ([`tables::AliasEntry`]) — class sets that may
//!     overlap within one iteration;
//!   * the **LCDD table** ([`tables::LcddEntry`]) — loop-carried data
//!     dependences with normalized (`>`) direction and distances;
//!   * the **call REF/MOD table** ([`tables::CallRefMod`]) — interprocedural
//!     side effects per call item or per sub-region.
//!
//! On top of the data model this crate provides:
//!
//! * [`serialize`] — the compact binary encoding whose size Table 1 of the
//!   paper reports, plus a reader;
//! * [`query`] — the *query function* interface of Section 3.2.2 (the five
//!   basic queries: equivalent access, alias, LCDD, call REF/MOD, region
//!   info), backed by a prebuilt index so back-end passes pay hash-lookup
//!   cost, not table scans;
//! * [`maintain`] — the *maintenance function* interface of Section 3.2.3:
//!   deleting, generating, inheriting and moving items as CSE, LICM and
//!   loop unrolling rewrite the back-end IR, including the Figure-6 LCDD
//!   distance update for unrolling;
//! * [`verify`] — structural *and* semantic invariants (partition
//!   property, normalized LCDD distances, dangling references, scope
//!   nesting) as typed [`verify::VerifyError`]s — the trust boundary the
//!   back-end checks before believing an imported unit
//!   ([`validate`](tables::HliEntry::validate) remains as a string-based
//!   compatibility wrapper);
//! * [`textdump`] — a human-readable rendering in the style of the paper's
//!   Figure 2.

#![deny(missing_docs)]

pub mod cache;
pub mod ids;
pub mod image;
pub mod maintain;
pub mod query;
pub mod reader;
pub mod serialize;
pub mod tables;
pub mod textdump;
pub mod verify;

pub use cache::{CachedQuery, QueryCache};
pub use ids::{ItemId, RegionId};
pub use image::{encode_file_v3, EntryRef, HliEntryView, HliImage, RegionMeta};
pub use query::{CallAcc, EquivAcc, HliQuery};
pub use reader::HliReader;
pub use tables::{
    AliasEntry, CallRef, CallRefMod, DepKind, Distance, EquivClass, EquivKind, HliEntry, HliFile,
    ItemEntry, ItemType, LcddEntry, LineEntry, LineTable, MemberRef, Region, RegionKind,
};
pub use verify::{verify_file, TableKind, VerifyError};

/// Compiles and runs every example in `docs/QUERYBOOK.md` as a doctest,
/// so the query book's worked answers are pinned by `cargo test --doc`.
#[cfg(doctest)]
#[doc = include_str!("../../../docs/QUERYBOOK.md")]
pub struct QueryBookDoctests;
