//! The HLI data model: line table, region table, and the four per-region
//! sub-tables (Section 2 of the paper). Structural and semantic
//! validation lives in [`crate::verify`] ([`HliEntry::verify`] /
//! [`HliEntry::validate`]).

use crate::ids::{ItemId, RegionId, UNIT_REGION};

/// Access type of an item (the line-table `type` field).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ItemType {
    /// A memory read.
    Load,
    /// A memory write.
    Store,
    /// A call site.
    Call,
}

/// One item in a line's item list.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ItemEntry {
    /// The item's ID, unique within the unit's shared item/class space.
    pub id: ItemId,
    /// Whether the item is a load, store or call.
    pub ty: ItemType,
}

/// One line's entry: the items generated for that source line, **in
/// back-end emission order** (this order is the whole mapping contract).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LineEntry {
    /// Source line number (1-based, as the front-end emits it).
    pub line: u32,
    /// Items on this line, in back-end emission order.
    pub items: Vec<ItemEntry>,
}

/// The line table of a program unit.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct LineTable {
    /// Sorted by `line`.
    pub lines: Vec<LineEntry>,
}

impl LineTable {
    /// All items in line order then intra-line order.
    pub fn items(&self) -> impl Iterator<Item = (u32, ItemEntry)> + '_ {
        self.lines.iter().flat_map(|l| l.items.iter().map(move |it| (l.line, *it)))
    }

    /// Look up one line's entry by source line number.
    pub fn entry(&self, line: u32) -> Option<&LineEntry> {
        self.lines.binary_search_by_key(&line, |l| l.line).ok().map(|i| &self.lines[i])
    }

    /// Append an item to a line, creating the line entry if needed,
    /// keeping lines sorted.
    pub fn push_item(&mut self, line: u32, item: ItemEntry) {
        match self.lines.binary_search_by_key(&line, |l| l.line) {
            Ok(i) => self.lines[i].items.push(item),
            Err(i) => self.lines.insert(i, LineEntry { line, items: vec![item] }),
        }
    }

    /// Remove an item wherever it appears. Returns true if found.
    pub fn remove_item(&mut self, id: ItemId) -> bool {
        for l in &mut self.lines {
            if let Some(pos) = l.items.iter().position(|it| it.id == id) {
                l.items.remove(pos);
                return true;
            }
        }
        false
    }

    /// Find the line and type of an item.
    pub fn find(&self, id: ItemId) -> Option<(u32, ItemType)> {
        self.items().find(|(_, it)| it.id == id).map(|(l, it)| (l, it.ty))
    }

    /// Total number of items across all lines.
    pub fn item_count(&self) -> usize {
        self.lines.iter().map(|l| l.items.len()).sum()
    }
}

/// What a region is (region-header `type` field).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RegionKind {
    /// The whole program unit (always region 0).
    Unit,
    /// A loop; `header_line` is the loop statement's source line.
    Loop {
        /// Source line of the loop statement itself.
        header_line: u32,
    },
}

/// Is a class's membership definitely-equivalent or merged ("maybe")?
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EquivKind {
    /// All members definitely access the same memory.
    Definite,
    /// Classes merged by may-alias analysis: members *may* overlap.
    Maybe,
}

/// A member of an equivalent access class: either an item directly enclosed
/// by the region (not inside any sub-region), or a whole class of an
/// immediate sub-region.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MemberRef {
    /// An item directly enclosed by the defining region.
    Item(ItemId),
    /// A whole class defined in an immediate sub-region.
    SubClass {
        /// The immediate sub-region that defines the class.
        region: RegionId,
        /// The class's ID inside that sub-region.
        class: ItemId,
    },
}

/// An equivalent access class. Class IDs share the item ID space (the paper:
/// *"Each equivalent access class has a unique item ID"*), so an item may
/// also "represent an equivalent access class or a whole region".
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EquivClass {
    /// The class's ID, drawn from the unit's shared item/class ID space.
    pub id: ItemId,
    /// Definite equivalence, or a may-alias merge.
    pub kind: EquivKind,
    /// Items and sub-region classes that belong to the class.
    pub members: Vec<MemberRef>,
    /// Debug label (e.g. `a[0..9]`); not serialized in compact mode.
    pub name_hint: String,
}

/// An alias entry: a set of classes (defined at this region) that may touch
/// the same memory within one iteration.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AliasEntry {
    /// The classes that may overlap; all defined at the owning region.
    pub classes: Vec<ItemId>,
}

/// Is a dependence definite or maybe?
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DepKind {
    /// The dependence provably exists.
    Definite,
    /// The dependence cannot be ruled out.
    Maybe,
}

/// A loop-carried dependence distance. Direction is always normalized `>`
/// (from an earlier to a later iteration), so distances are ≥ 1.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Distance {
    /// A known constant iteration distance (≥ 1).
    Const(u32),
    /// The distance could not be computed.
    Unknown,
}

/// One loop-carried data dependence arc between two classes of this region.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LcddEntry {
    /// Source class (earlier iteration).
    pub src: ItemId,
    /// Sink class (later iteration).
    pub dst: ItemId,
    /// Definite or maybe.
    pub kind: DepKind,
    /// Iteration distance of the dependence.
    pub distance: Distance,
}

/// What a call REF/MOD entry describes: one call item directly enclosed by
/// the region, or all calls inside a sub-region.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CallRef {
    /// One call item directly enclosed by the region.
    Item(ItemId),
    /// All calls anywhere inside the given sub-region.
    SubRegion(RegionId),
}

/// Side effects of calls on this region's classes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CallRefMod {
    /// Which call(s) the entry describes.
    pub callee: CallRef,
    /// Classes possibly read by the call(s).
    pub refs: Vec<ItemId>,
    /// Classes possibly written by the call(s).
    pub mods: Vec<ItemId>,
}

/// One region entry: header plus the four sub-tables.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Region {
    /// The region's ID; index into [`HliEntry::regions`].
    pub id: RegionId,
    /// Unit region or loop region.
    pub kind: RegionKind,
    /// The enclosing region; `None` only for the unit region.
    pub parent: Option<RegionId>,
    /// Immediate sub-regions, in source order.
    pub subregions: Vec<RegionId>,
    /// Source-line span `[lo, hi]` of the region.
    pub scope: (u32, u32),
    /// Equivalent-access-class sub-table.
    pub equiv_classes: Vec<EquivClass>,
    /// Alias sub-table (within-iteration overlaps).
    pub alias_table: Vec<AliasEntry>,
    /// Loop-carried data dependence sub-table.
    pub lcdd_table: Vec<LcddEntry>,
    /// Call REF/MOD sub-table.
    pub call_refmod: Vec<CallRefMod>,
}

impl Region {
    /// Is this a loop region (vs. the unit region)?
    pub fn is_loop(&self) -> bool {
        matches!(self.kind, RegionKind::Loop { .. })
    }

    /// Find a class defined at this region by its ID.
    pub fn class(&self, id: ItemId) -> Option<&EquivClass> {
        self.equiv_classes.iter().find(|c| c.id == id)
    }

    /// Mutable variant of [`Region::class`].
    pub fn class_mut(&mut self, id: ItemId) -> Option<&mut EquivClass> {
        self.equiv_classes.iter_mut().find(|c| c.id == id)
    }
}

/// The HLI entry of one program unit.
#[derive(Debug, Clone)]
pub struct HliEntry {
    /// Name of the program unit (function) the entry describes.
    pub unit_name: String,
    /// The unit's line table.
    pub line_table: LineTable,
    /// Indexed by `RegionId` (dense). Region 0 is the unit region.
    pub regions: Vec<Region>,
    /// Next free ID in the shared item/class ID space (maintenance
    /// operations allocate from here).
    pub next_id: u32,
    /// Mutation counter bumped by every successful maintenance operation
    /// ([`crate::maintain`]); [`crate::cache::QueryCache`] uses it to
    /// detect stale memoized answers. Not serialized, and ignored by
    /// equality so round-tripped entries still compare equal.
    pub generation: u64,
}

impl PartialEq for HliEntry {
    fn eq(&self, other: &Self) -> bool {
        self.unit_name == other.unit_name
            && self.line_table == other.line_table
            && self.regions == other.regions
            && self.next_id == other.next_id
    }
}

impl Eq for HliEntry {}

/// A whole HLI file: one entry per program unit.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct HliFile {
    /// One entry per program unit, in file order.
    pub entries: Vec<HliEntry>,
}

impl HliFile {
    /// Find a unit's entry by name.
    pub fn entry(&self, unit: &str) -> Option<&HliEntry> {
        self.entries.iter().find(|e| e.unit_name == unit)
    }

    /// Mutable variant of [`HliFile::entry`].
    pub fn entry_mut(&mut self, unit: &str) -> Option<&mut HliEntry> {
        self.entries.iter_mut().find(|e| e.unit_name == unit)
    }
}

impl HliEntry {
    /// An empty entry holding only the unit region (region 0).
    pub fn new(unit_name: impl Into<String>) -> Self {
        HliEntry {
            unit_name: unit_name.into(),
            line_table: LineTable::default(),
            regions: vec![Region {
                id: UNIT_REGION,
                kind: RegionKind::Unit,
                parent: None,
                subregions: Vec::new(),
                scope: (0, 0),
                equiv_classes: Vec::new(),
                alias_table: Vec::new(),
                lcdd_table: Vec::new(),
                call_refmod: Vec::new(),
            }],
            next_id: 0,
            generation: 0,
        }
    }

    /// Record that a maintenance operation mutated this entry, so query
    /// caches keyed on (unit, generation) discard their memoized answers.
    pub fn bump_generation(&mut self) {
        self.generation += 1;
    }

    /// The region with the given ID. Panics if out of range.
    pub fn region(&self, id: RegionId) -> &Region {
        &self.regions[id.0 as usize]
    }

    /// Mutable variant of [`HliEntry::region`].
    pub fn region_mut(&mut self, id: RegionId) -> &mut Region {
        &mut self.regions[id.0 as usize]
    }

    /// Allocate a fresh ID from the shared item/class space.
    pub fn fresh_id(&mut self) -> ItemId {
        let id = ItemId(self.next_id);
        self.next_id += 1;
        id
    }

    /// Add a sub-region under `parent`; returns its ID.
    pub fn add_region(
        &mut self,
        parent: RegionId,
        kind: RegionKind,
        scope: (u32, u32),
    ) -> RegionId {
        let id = RegionId(self.regions.len() as u32);
        self.regions.push(Region {
            id,
            kind,
            parent: Some(parent),
            subregions: Vec::new(),
            scope,
            equiv_classes: Vec::new(),
            alias_table: Vec::new(),
            lcdd_table: Vec::new(),
            call_refmod: Vec::new(),
        });
        self.region_mut(parent).subregions.push(id);
        id
    }

    /// The innermost region that lists `item` as a direct member of one of
    /// its classes.
    pub fn owning_region(&self, item: ItemId) -> Option<RegionId> {
        for r in &self.regions {
            for c in &r.equiv_classes {
                if c.members.iter().any(|m| matches!(m, MemberRef::Item(i) if *i == item)) {
                    return Some(r.id);
                }
            }
        }
        None
    }

    /// Path from the unit region down to `region` (inclusive).
    pub fn region_path(&self, region: RegionId) -> Vec<RegionId> {
        let mut path = vec![region];
        let mut cur = region;
        while let Some(p) = self.region(cur).parent {
            path.push(p);
            cur = p;
        }
        path.reverse();
        path
    }

    /// Lowest common ancestor of two regions.
    pub fn region_lca(&self, a: RegionId, b: RegionId) -> RegionId {
        let pa = self.region_path(a);
        let pb = self.region_path(b);
        let mut lca = UNIT_REGION;
        for (x, y) in pa.iter().zip(pb.iter()) {
            if x == y {
                lca = *x;
            } else {
                break;
            }
        }
        lca
    }

    /// Total number of memory-access (non-call) items.
    pub fn mem_item_count(&self) -> usize {
        self.line_table.items().filter(|(_, it)| it.ty != ItemType::Call).count()
    }
}

#[cfg(test)]
pub(crate) mod tests {
    use super::*;

    /// Hand-build the paper's Figure 2 structure (abridged: Region 1 with
    /// sub-regions 2 and 3, region 4 inside 3).
    pub(crate) fn figure2_like() -> HliEntry {
        let mut e = HliEntry::new("foo");
        let r1 = UNIT_REGION;
        let r2 = e.add_region(r1, RegionKind::Loop { header_line: 12 }, (12, 14));
        let r3 = e.add_region(r1, RegionKind::Loop { header_line: 16 }, (16, 21));
        let r4 = e.add_region(r3, RegionKind::Loop { header_line: 19 }, (19, 21));

        // Items: line 13: sum load/store + a[i] load (region 2)
        // line 17: a[i] store, b[0] load (region 3)
        // line 20: b[j] store, b[j] load, b[j-1] load, a[i] load, sum ls (region 4)
        let ids: Vec<ItemId> = (0..12).map(|_| e.fresh_id()).collect();
        use ItemType::*;
        for (line, id, ty) in [
            (13, ids[0], Load),   // sum
            (13, ids[1], Load),   // a[i]
            (13, ids[2], Store),  // sum
            (17, ids[3], Load),   // b[0]
            (17, ids[4], Store),  // a[i]
            (20, ids[5], Load),   // b[j]
            (20, ids[6], Load),   // b[j-1]
            (20, ids[7], Store),  // b[j]
            (20, ids[8], Load),   // a[i]
            (20, ids[9], Load),   // sum
            (20, ids[10], Store), // sum
            (20, ids[11], Load),  // extra a[i]
        ] {
            e.line_table.push_item(line, ItemEntry { id, ty });
        }

        // Region 4 classes: sum{9,10}, a[i]{8,11}, b[j]{5,7}, b[j-1]{6}.
        let c4_sum = e.fresh_id();
        let c4_ai = e.fresh_id();
        let c4_bj = e.fresh_id();
        let c4_bj1 = e.fresh_id();
        {
            let r = e.region_mut(r4);
            r.equiv_classes = vec![
                EquivClass {
                    id: c4_sum,
                    kind: EquivKind::Definite,
                    members: vec![MemberRef::Item(ids[9]), MemberRef::Item(ids[10])],
                    name_hint: "sum".into(),
                },
                EquivClass {
                    id: c4_ai,
                    kind: EquivKind::Definite,
                    members: vec![MemberRef::Item(ids[8]), MemberRef::Item(ids[11])],
                    name_hint: "a[i]".into(),
                },
                EquivClass {
                    id: c4_bj,
                    kind: EquivKind::Definite,
                    members: vec![MemberRef::Item(ids[5]), MemberRef::Item(ids[7])],
                    name_hint: "b[j]".into(),
                },
                EquivClass {
                    id: c4_bj1,
                    kind: EquivKind::Definite,
                    members: vec![MemberRef::Item(ids[6])],
                    name_hint: "b[j-1]".into(),
                },
            ];
            r.lcdd_table = vec![LcddEntry {
                src: c4_bj,
                dst: c4_bj1,
                kind: DepKind::Definite,
                distance: Distance::Const(1),
            }];
        }

        // Region 3 classes: sum, a[i], b[0], b[0..9].
        let c3_sum = e.fresh_id();
        let c3_ai = e.fresh_id();
        let c3_b0 = e.fresh_id();
        let c3_ball = e.fresh_id();
        {
            let r = e.region_mut(r3);
            r.equiv_classes = vec![
                EquivClass {
                    id: c3_sum,
                    kind: EquivKind::Definite,
                    members: vec![MemberRef::SubClass { region: r4, class: c4_sum }],
                    name_hint: "sum".into(),
                },
                EquivClass {
                    id: c3_ai,
                    kind: EquivKind::Definite,
                    members: vec![
                        MemberRef::Item(ids[4]),
                        MemberRef::SubClass { region: r4, class: c4_ai },
                    ],
                    name_hint: "a[i]".into(),
                },
                EquivClass {
                    id: c3_b0,
                    kind: EquivKind::Definite,
                    members: vec![MemberRef::Item(ids[3])],
                    name_hint: "b[0]".into(),
                },
                EquivClass {
                    id: c3_ball,
                    kind: EquivKind::Maybe,
                    members: vec![
                        MemberRef::SubClass { region: r4, class: c4_bj },
                        MemberRef::SubClass { region: r4, class: c4_bj1 },
                    ],
                    name_hint: "b[0..9]".into(),
                },
            ];
            r.alias_table = vec![AliasEntry { classes: vec![c3_b0, c3_ball] }];
        }

        // Region 2 classes: sum{0,2}, a[i]{1}.
        let c2_sum = e.fresh_id();
        let c2_ai = e.fresh_id();
        {
            let r = e.region_mut(r2);
            r.equiv_classes = vec![
                EquivClass {
                    id: c2_sum,
                    kind: EquivKind::Definite,
                    members: vec![MemberRef::Item(ids[0]), MemberRef::Item(ids[2])],
                    name_hint: "sum".into(),
                },
                EquivClass {
                    id: c2_ai,
                    kind: EquivKind::Definite,
                    members: vec![MemberRef::Item(ids[1])],
                    name_hint: "a[i]".into(),
                },
            ];
        }

        // Region 1 (unit): sum, a[0..9], b[0..9].
        let c1_sum = e.fresh_id();
        let c1_a = e.fresh_id();
        let c1_b = e.fresh_id();
        {
            let r = e.region_mut(r1);
            r.scope = (10, 22);
            r.equiv_classes = vec![
                EquivClass {
                    id: c1_sum,
                    kind: EquivKind::Definite,
                    members: vec![
                        MemberRef::SubClass { region: r2, class: c2_sum },
                        MemberRef::SubClass { region: r3, class: c3_sum },
                    ],
                    name_hint: "sum".into(),
                },
                EquivClass {
                    id: c1_a,
                    kind: EquivKind::Maybe,
                    members: vec![
                        MemberRef::SubClass { region: r2, class: c2_ai },
                        MemberRef::SubClass { region: r3, class: c3_ai },
                    ],
                    name_hint: "a[0..9]".into(),
                },
                EquivClass {
                    id: c1_b,
                    kind: EquivKind::Maybe,
                    members: vec![
                        MemberRef::SubClass { region: r3, class: c3_b0 },
                        MemberRef::SubClass { region: r3, class: c3_ball },
                    ],
                    name_hint: "b[0..9]".into(),
                },
            ];
        }
        e
    }

    #[test]
    fn figure2_structure_validates() {
        let e = figure2_like();
        let errs = e.validate();
        assert!(errs.is_empty(), "unexpected violations: {errs:?}");
    }

    #[test]
    fn line_table_ops() {
        let mut lt = LineTable::default();
        lt.push_item(10, ItemEntry { id: ItemId(0), ty: ItemType::Load });
        lt.push_item(5, ItemEntry { id: ItemId(1), ty: ItemType::Store });
        lt.push_item(10, ItemEntry { id: ItemId(2), ty: ItemType::Call });
        assert_eq!(lt.lines.len(), 2);
        assert_eq!(lt.lines[0].line, 5, "lines stay sorted");
        assert_eq!(lt.item_count(), 3);
        assert_eq!(lt.find(ItemId(2)), Some((10, ItemType::Call)));
        assert!(lt.remove_item(ItemId(0)));
        assert!(!lt.remove_item(ItemId(0)));
        assert_eq!(lt.item_count(), 2);
        assert_eq!(lt.entry(10).unwrap().items.len(), 1);
    }

    #[test]
    fn owning_region_finds_direct_member() {
        let e = figure2_like();
        // Item 0 (sum load in region 2's loop).
        let r = e.owning_region(ItemId(0)).unwrap();
        assert_eq!(r, RegionId(1));
        // Item 5 (b[j] in region 4).
        assert_eq!(e.owning_region(ItemId(5)).unwrap(), RegionId(3));
    }

    #[test]
    fn region_path_and_lca() {
        let e = figure2_like();
        assert_eq!(e.region_path(RegionId(3)), vec![RegionId(0), RegionId(2), RegionId(3)]);
        assert_eq!(e.region_lca(RegionId(1), RegionId(3)), RegionId(0));
        assert_eq!(e.region_lca(RegionId(3), RegionId(2)), RegionId(2));
        assert_eq!(e.region_lca(RegionId(3), RegionId(3)), RegionId(3));
    }

    #[test]
    fn validate_catches_double_ownership() {
        let mut e = figure2_like();
        // Add item 0 to a class in region 3 as well.
        let extra = MemberRef::Item(ItemId(0));
        e.region_mut(RegionId(2)).equiv_classes[0].members.push(extra);
        let errs = e.validate();
        assert!(errs.iter().any(|m| m.contains("directly owned by both")));
    }

    #[test]
    fn validate_catches_zero_distance() {
        let mut e = figure2_like();
        e.region_mut(RegionId(3)).lcdd_table[0].distance = Distance::Const(0);
        assert!(e.validate().iter().any(|m| m.contains("distance 0")));
    }

    #[test]
    fn validate_catches_orphan_item() {
        let mut e = figure2_like();
        let id = e.fresh_id();
        e.line_table.push_item(30, ItemEntry { id, ty: ItemType::Load });
        assert!(e.validate().iter().any(|m| m.contains("belongs to no class")));
    }

    #[test]
    fn validate_catches_foreign_alias_class() {
        let mut e = figure2_like();
        e.region_mut(RegionId(1))
            .alias_table
            .push(AliasEntry { classes: vec![ItemId(900), ItemId(901)] });
        assert!(e.validate().iter().any(|m| m.contains("foreign class")));
    }

    #[test]
    fn validate_catches_lcdd_outside_loop() {
        let mut e = figure2_like();
        let (src, dst) = {
            let r0 = e.region(UNIT_REGION);
            (r0.equiv_classes[0].id, r0.equiv_classes[1].id)
        };
        e.region_mut(UNIT_REGION).lcdd_table.push(LcddEntry {
            src,
            dst,
            kind: DepKind::Maybe,
            distance: Distance::Unknown,
        });
        assert!(e.validate().iter().any(|m| m.contains("non-loop region")));
    }

    #[test]
    fn hlifile_entry_lookup() {
        let mut f = HliFile::default();
        f.entries.push(HliEntry::new("alpha"));
        f.entries.push(HliEntry::new("beta"));
        assert!(f.entry("alpha").is_some());
        assert!(f.entry("gamma").is_none());
        f.entry_mut("beta").unwrap().next_id = 7;
        assert_eq!(f.entry("beta").unwrap().next_id, 7);
    }
}
