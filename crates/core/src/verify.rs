//! Semantic verification of HLI tables — the import trust boundary.
//!
//! The paper's central hazard (Section 3.2.3) is that stale or
//! inconsistent HLI silently miscompiles: the back-end trusts
//! equivalence/alias/LCDD answers it cannot re-derive. This module is the
//! machine-checkable well-formedness judgement the back-end runs on every
//! unit *before* trusting it (the ASDL lesson: a serialized
//! compiler-interchange format lives or dies by checkable invariants).
//!
//! [`HliEntry::verify`] extends the historical structural checks with the
//! semantic ones a fault injector actually trips:
//!
//! * **Region tree** — dense ids, parents strictly smaller than children
//!   (the acyclicity + bottom-up-sweep invariant `HliQuery` relies on),
//!   parent/subregion links agreeing in *both* directions, scopes with
//!   `lo <= hi` nested inside the parent's scope, loop headers inside
//!   their own scope.
//! * **Line table** — strictly increasing line numbers, unique item ids
//!   below `next_id` (the emission-order contract `mapping.rs` replays).
//! * **Equivalence classes** — the partition property (every memory item
//!   directly owned by exactly one class of exactly one region; calls in
//!   no class; no empty classes; subclass links resolving to an immediate
//!   child and consumed by exactly one parent class), and direct members
//!   of a *loop* region lying inside that loop's line scope.
//! * **Alias table** — entries of ≥ 2 distinct classes, all defined at
//!   the owning region (alias symmetry is representational: an entry *is*
//!   the unordered overlap set, so `A~B` and `B~A` cannot diverge).
//! * **LCDD table** — loop regions only, both endpoints defined at the
//!   owning loop (hence covering only its subtree), and distances
//!   normalized to the `>` direction: `Const(0)` is always a violation.
//! * **Call REF/MOD** — callees that are call items of the line table or
//!   immediate child regions, and REF/MOD sets naming only classes the
//!   owning region defines.
//!
//! Errors are *typed* ([`VerifyError`]): they carry the offending table,
//! region and item/class id, so the back-end's quarantine path can report
//! and count precisely what it refused. [`HliEntry::validate`] remains as
//! a thin `Vec<String>` compatibility wrapper.
//!
//! Verification is total: it never panics or loops, even on adversarial
//! decoded input. Deep checks that must index regions by id run only
//! after the region-tree pass found no violations.

use crate::ids::{ItemId, RegionId};
use crate::tables::{
    CallRef, Distance, HliEntry, HliFile, ItemType, MemberRef, Region, RegionKind,
};
use std::collections::{HashMap, HashSet};
use std::fmt;

/// Which HLI table a [`VerifyError`] is about.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TableKind {
    /// The region tree itself (ids, parents, subregion links, scopes).
    RegionTree,
    /// The per-unit line table.
    LineTable,
    /// A region's equivalent-access-class sub-table.
    EquivTable,
    /// A region's alias sub-table.
    AliasTable,
    /// A region's loop-carried data dependence sub-table.
    LcddTable,
    /// A region's call REF/MOD sub-table.
    CallRefModTable,
    /// The file-level unit directory (duplicate unit names).
    UnitDirectory,
}

impl TableKind {
    /// Stable lowercase label used in `Display` output and reports.
    pub fn label(self) -> &'static str {
        match self {
            TableKind::RegionTree => "region-tree",
            TableKind::LineTable => "line-table",
            TableKind::EquivTable => "equiv-table",
            TableKind::AliasTable => "alias-table",
            TableKind::LcddTable => "lcdd-table",
            TableKind::CallRefModTable => "call-refmod-table",
            TableKind::UnitDirectory => "unit-directory",
        }
    }
}

impl fmt::Display for TableKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// One violation of the HLI well-formedness rules.
///
/// The `region` and `item` fields attribute the violation for quarantine
/// reporting; `message` carries the human-readable detail (and preserves
/// the historical `validate()` wording, which tests and tools grep).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct VerifyError {
    /// The table the violation lives in.
    pub table: TableKind,
    /// The region owning the offending sub-table entry, when attributable.
    pub region: Option<RegionId>,
    /// The offending item or class id, when attributable.
    pub item: Option<ItemId>,
    /// Human-readable description of the violation.
    pub message: String,
}

impl fmt::Display for VerifyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{}] {}", self.table, self.message)
    }
}

/// Accumulator keeping the check bodies terse.
struct Sink {
    errs: Vec<VerifyError>,
}

impl Sink {
    fn push(
        &mut self,
        table: TableKind,
        region: Option<RegionId>,
        item: Option<ItemId>,
        message: String,
    ) {
        self.errs.push(VerifyError { table, region, item, message });
    }
}

impl HliEntry {
    /// Check every structural and semantic invariant of this unit's
    /// tables. Returns all violations found (empty = the unit is safe to
    /// trust); never panics, even on adversarial decoded input.
    pub fn verify(&self) -> Vec<VerifyError> {
        let mut sink = Sink { errs: Vec::new() };
        verify_region_tree(self, &mut sink);
        if !sink.errs.is_empty() {
            // A broken region tree makes the deeper checks (which index
            // regions by parent/subregion id) meaningless and unsafe.
            return sink.errs;
        }
        let line_items = verify_line_table(self, &mut sink);
        verify_equiv_tables(self, &line_items, &mut sink);
        verify_region_subtables(self, &line_items, &mut sink);
        sink.errs
    }

    /// Compatibility wrapper over [`HliEntry::verify`]: the same checks,
    /// rendered to strings. Prefer `verify` in new code — it keeps the
    /// table/region/item attribution quarantine reporting needs.
    pub fn validate(&self) -> Vec<String> {
        self.verify().iter().map(|e| e.to_string()).collect()
    }
}

/// Verify a whole HLI file: every entry, plus the file-level invariant
/// that unit names are unique (the on-demand reader's directory key).
/// Each violation is paired with the offending unit's name.
pub fn verify_file(file: &HliFile) -> Vec<(String, VerifyError)> {
    let mut out = Vec::new();
    let mut seen: HashSet<&str> = HashSet::new();
    for e in &file.entries {
        if !seen.insert(e.unit_name.as_str()) {
            out.push((
                e.unit_name.clone(),
                VerifyError {
                    table: TableKind::UnitDirectory,
                    region: None,
                    item: None,
                    message: format!("unit `{}` defined twice in file", e.unit_name),
                },
            ));
        }
        for err in e.verify() {
            out.push((e.unit_name.clone(), err));
        }
    }
    out
}

/// Region-tree shape: dense ids, parent ordering/acyclicity, two-way
/// parent/subregion agreement, scope sanity and nesting.
fn verify_region_tree(e: &HliEntry, sink: &mut Sink) {
    let t = TableKind::RegionTree;
    if e.regions.is_empty() {
        sink.push(t, None, None, "entry has no regions (unit region required)".into());
        return;
    }
    let n = e.regions.len();
    for (i, r) in e.regions.iter().enumerate() {
        if r.id.0 as usize != i {
            sink.push(t, Some(r.id), None, format!("region index {} holds id {}", i, r.id));
        }
        if (i == 0) != r.parent.is_none() {
            sink.push(t, Some(r.id), None, format!("region {} has wrong parent-ness", r.id));
        }
        if (i == 0) != matches!(r.kind, RegionKind::Unit) {
            sink.push(
                t,
                Some(r.id),
                None,
                format!("region {} kind disagrees with its position (unit = region 0)", r.id),
            );
        }
        if let Some(p) = r.parent {
            if p.0 as usize >= n {
                sink.push(t, Some(r.id), None, format!("region {} has missing parent {}", r.id, p));
            } else if p.0 >= r.id.0 {
                // Children strictly after parents: the invariant that makes
                // the tree acyclic and the query index's bottom-up
                // reverse-id sweep correct.
                sink.push(
                    t,
                    Some(r.id),
                    None,
                    format!("region {} has parent {} with a later or equal id", r.id, p),
                );
            }
        }
        let mut listed: HashSet<RegionId> = HashSet::new();
        for &s in &r.subregions {
            if s.0 as usize >= n {
                sink.push(
                    t,
                    Some(r.id),
                    None,
                    format!("region {} lists missing subregion {}", r.id, s),
                );
                continue;
            }
            if !listed.insert(s) {
                sink.push(
                    t,
                    Some(r.id),
                    None,
                    format!("region {} lists subregion {} twice", r.id, s),
                );
            }
            if e.regions[s.0 as usize].parent != Some(r.id) {
                sink.push(
                    t,
                    Some(r.id),
                    None,
                    format!("subregion {} of {} disagrees on parent", s, r.id),
                );
            }
        }
        if r.scope.0 > r.scope.1 {
            sink.push(
                t,
                Some(r.id),
                None,
                format!("region {} scope [{}, {}] is inverted", r.id, r.scope.0, r.scope.1),
            );
        }
        if let RegionKind::Loop { header_line } = r.kind {
            if header_line < r.scope.0 || header_line > r.scope.1 {
                sink.push(
                    t,
                    Some(r.id),
                    None,
                    format!(
                        "loop region {} header line {} outside its scope [{}, {}]",
                        r.id, header_line, r.scope.0, r.scope.1
                    ),
                );
            }
        }
    }
    if !sink.errs.is_empty() {
        return;
    }
    // With ids, parents and bounds sound, check the remaining shape
    // properties that index through them.
    for r in e.regions.iter().skip(1) {
        let p = &e.regions[r.parent.unwrap().0 as usize];
        if !p.subregions.contains(&r.id) {
            sink.push(
                t,
                Some(r.id),
                None,
                format!("region {} is not listed among parent {}'s subregions", r.id, p.id),
            );
        }
        if r.scope.0 < p.scope.0 || r.scope.1 > p.scope.1 {
            sink.push(
                t,
                Some(r.id),
                None,
                format!(
                    "region {} scope [{}, {}] escapes parent {}'s scope [{}, {}]",
                    r.id, r.scope.0, r.scope.1, p.id, p.scope.0, p.scope.1
                ),
            );
        }
    }
}

/// Line-table invariants. Returns the (id -> type) map of line items for
/// the later passes.
fn verify_line_table(e: &HliEntry, sink: &mut Sink) -> HashMap<ItemId, ItemType> {
    let t = TableKind::LineTable;
    for w in e.line_table.lines.windows(2) {
        if w[0].line >= w[1].line {
            sink.push(
                t,
                None,
                None,
                format!(
                    "line table not strictly sorted: line {} then line {}",
                    w[0].line, w[1].line
                ),
            );
        }
    }
    let mut line_items: HashMap<ItemId, ItemType> = HashMap::new();
    for (_, it) in e.line_table.items() {
        if line_items.insert(it.id, it.ty).is_some() {
            sink.push(
                t,
                None,
                Some(it.id),
                format!("item {} appears twice in the line table", it.id),
            );
        }
        if it.id.0 >= e.next_id {
            sink.push(
                t,
                None,
                Some(it.id),
                format!("item {} beyond next_id {}", it.id, e.next_id),
            );
        }
    }
    line_items
}

/// Equivalence-class invariants: unique class ids, the partition
/// property, subclass link resolution, and loop-scope containment of
/// direct members.
fn verify_equiv_tables(e: &HliEntry, line_items: &HashMap<ItemId, ItemType>, sink: &mut Sink) {
    let t = TableKind::EquivTable;
    let mut class_ids: HashSet<ItemId> = HashSet::new();
    for r in &e.regions {
        for c in &r.equiv_classes {
            if !class_ids.insert(c.id) {
                sink.push(t, Some(r.id), Some(c.id), format!("class {} defined twice", c.id));
            }
            if line_items.contains_key(&c.id) {
                sink.push(
                    t,
                    Some(r.id),
                    Some(c.id),
                    format!("class {} collides with a line item", c.id),
                );
            }
            if c.id.0 >= e.next_id {
                sink.push(
                    t,
                    Some(r.id),
                    Some(c.id),
                    format!("class {} beyond next_id {}", c.id, e.next_id),
                );
            }
            if c.members.is_empty() {
                sink.push(t, Some(r.id), Some(c.id), format!("class {} has no members", c.id));
            }
        }
    }
    // Partition property: every *memory* item is a direct member of
    // exactly one class, in exactly one region.
    let mut direct_owner: HashMap<ItemId, RegionId> = HashMap::new();
    for r in &e.regions {
        for c in &r.equiv_classes {
            for m in &c.members {
                match m {
                    MemberRef::Item(it) => {
                        if let Some(prev) = direct_owner.insert(*it, r.id) {
                            sink.push(
                                t,
                                Some(r.id),
                                Some(*it),
                                format!("item {} directly owned by both {} and {}", it, prev, r.id),
                            );
                        }
                        match line_items.get(it) {
                            None => sink.push(
                                t,
                                Some(r.id),
                                Some(*it),
                                format!("class {} member {} is not a line item", c.id, it),
                            ),
                            Some(ItemType::Call) => sink.push(
                                t,
                                Some(r.id),
                                Some(*it),
                                format!("call item {} appears in an equivalence class", it),
                            ),
                            _ => {
                                // Direct members of a loop region must lie
                                // inside the loop's line scope (items
                                // hoisted out of a loop are re-homed to the
                                // parent, whose scope still covers them).
                                if r.is_loop() {
                                    if let Some((line, _)) = e.line_table.find(*it) {
                                        if line < r.scope.0 || line > r.scope.1 {
                                            sink.push(
                                                t,
                                                Some(r.id),
                                                Some(*it),
                                                format!(
                                                    "item {} at line {} outside owning loop {}'s scope [{}, {}]",
                                                    it, line, r.id, r.scope.0, r.scope.1
                                                ),
                                            );
                                        }
                                    }
                                }
                            }
                        }
                    }
                    MemberRef::SubClass { region, class } => {
                        if region.0 as usize >= e.regions.len() {
                            sink.push(
                                t,
                                Some(r.id),
                                Some(*class),
                                format!("subclass ref to missing region {region}"),
                            );
                            continue;
                        }
                        if e.region(*region).parent != Some(r.id) {
                            sink.push(
                                t,
                                Some(r.id),
                                Some(*class),
                                format!(
                                    "class {} references class {} of non-child region {}",
                                    c.id, class, region
                                ),
                            );
                        }
                        if e.region(*region).class(*class).is_none() {
                            sink.push(
                                t,
                                Some(r.id),
                                Some(*class),
                                format!(
                                    "class {} references missing class {} in region {}",
                                    c.id, class, region
                                ),
                            );
                        }
                    }
                }
            }
        }
    }
    for (it, ty) in line_items {
        if *ty != ItemType::Call && !direct_owner.contains_key(it) {
            sink.push(t, None, Some(*it), format!("memory item {} belongs to no class", it));
        }
    }
    // Every subregion class is referenced by exactly one parent class
    // (the subtree-coverage half of the partition property).
    for r in &e.regions {
        let Some(pid) = r.parent else { continue };
        let parent = e.region(pid);
        for c in &r.equiv_classes {
            let uses: usize = parent
                .equiv_classes
                .iter()
                .flat_map(|pc| pc.members.iter())
                .filter(
                    |m| matches!(m, MemberRef::SubClass { region, class } if *region == r.id && *class == c.id),
                )
                .count();
            if uses != 1 {
                sink.push(
                    t,
                    Some(pid),
                    Some(c.id),
                    format!(
                        "class {} of region {} referenced {} times by parent {}",
                        c.id, r.id, uses, parent.id
                    ),
                );
            }
        }
    }
}

/// Alias, LCDD and call REF/MOD invariants, all per-region.
fn verify_region_subtables(e: &HliEntry, line_items: &HashMap<ItemId, ItemType>, sink: &mut Sink) {
    for r in &e.regions {
        let defined: HashSet<ItemId> = r.equiv_classes.iter().map(|c| c.id).collect();
        verify_alias_table(r, &defined, sink);
        verify_lcdd_table(r, &defined, sink);
        verify_call_refmod(e, r, line_items, &defined, sink);
    }
}

fn verify_alias_table(r: &Region, defined: &HashSet<ItemId>, sink: &mut Sink) {
    let t = TableKind::AliasTable;
    for a in &r.alias_table {
        if a.classes.len() < 2 {
            sink.push(t, Some(r.id), None, format!("alias entry in {} with <2 classes", r.id));
        }
        let mut seen: HashSet<ItemId> = HashSet::new();
        for c in &a.classes {
            if !defined.contains(c) {
                sink.push(
                    t,
                    Some(r.id),
                    Some(*c),
                    format!("alias entry in {} names foreign class {}", r.id, c),
                );
            }
            if !seen.insert(*c) {
                sink.push(
                    t,
                    Some(r.id),
                    Some(*c),
                    format!("alias entry in {} names class {} twice", r.id, c),
                );
            }
        }
    }
}

fn verify_lcdd_table(r: &Region, defined: &HashSet<ItemId>, sink: &mut Sink) {
    let t = TableKind::LcddTable;
    for d in &r.lcdd_table {
        if !r.is_loop() {
            sink.push(t, Some(r.id), None, format!("LCDD entry in non-loop region {}", r.id));
        }
        if !defined.contains(&d.src) || !defined.contains(&d.dst) {
            sink.push(
                t,
                Some(r.id),
                Some(d.src),
                format!("LCDD in {} names foreign class", r.id),
            );
        }
        if let Distance::Const(k) = d.distance {
            if k == 0 {
                sink.push(
                    t,
                    Some(r.id),
                    Some(d.src),
                    format!("LCDD in {} has distance 0 (direction must be normalized >)", r.id),
                );
            }
        }
    }
}

fn verify_call_refmod(
    e: &HliEntry,
    r: &Region,
    line_items: &HashMap<ItemId, ItemType>,
    defined: &HashSet<ItemId>,
    sink: &mut Sink,
) {
    let t = TableKind::CallRefModTable;
    for crm in &r.call_refmod {
        match crm.callee {
            CallRef::Item(it) => match line_items.get(&it) {
                Some(ItemType::Call) => {}
                _ => sink.push(
                    t,
                    Some(r.id),
                    Some(it),
                    format!("call REF/MOD in {} names non-call item {}", r.id, it),
                ),
            },
            CallRef::SubRegion(s) => {
                if e.regions.get(s.0 as usize).map(|x| x.parent) != Some(Some(r.id)) {
                    sink.push(
                        t,
                        Some(r.id),
                        None,
                        format!("call REF/MOD in {} names non-child region {}", r.id, s),
                    );
                }
            }
        }
        for c in crm.refs.iter().chain(crm.mods.iter()) {
            if !defined.contains(c) {
                sink.push(
                    t,
                    Some(r.id),
                    Some(*c),
                    format!("call REF/MOD in {} names foreign class {}", r.id, c),
                );
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tables::tests::figure2_like;

    #[test]
    fn figure2_entry_verifies_clean() {
        let e = figure2_like();
        let errs = e.verify();
        assert!(errs.is_empty(), "clean fixture must verify: {errs:?}");
    }

    #[test]
    fn broken_region_tree_short_circuits_deeper_checks() {
        let mut e = figure2_like();
        // Make region 2's parent point forward — acyclicity violation.
        e.regions[2].parent = Some(RegionId(3));
        let errs = e.verify();
        assert!(!errs.is_empty());
        assert!(
            errs.iter().all(|er| er.table == TableKind::RegionTree),
            "tree errors must suppress deeper passes: {errs:?}"
        );
        assert!(errs.iter().any(|er| er.message.contains("later or equal id")));
    }

    #[test]
    fn inverted_scope_and_unsorted_lines_are_reported() {
        let mut e = figure2_like();
        e.regions[2].scope = (14, 12);
        let errs = e.verify();
        assert!(errs.iter().any(|er| er.table == TableKind::RegionTree
            && er.region == Some(RegionId(2))
            && er.message.contains("inverted")));

        let mut e = figure2_like();
        e.line_table.lines.swap(0, 1);
        let errs = e.verify();
        assert!(errs.iter().any(
            |er| er.table == TableKind::LineTable && er.message.contains("not strictly sorted")
        ));
    }

    #[test]
    fn typed_errors_carry_region_and_item_attribution() {
        let mut e = figure2_like();
        // Point an alias entry at a class the region does not define
        // (class 22 is defined at the unit region, not region 2).
        e.regions[2].alias_table[0].classes[0] = ItemId(22);
        let errs = e.verify();
        let err = errs
            .iter()
            .find(|er| er.table == TableKind::AliasTable)
            .expect("alias violation reported");
        assert_eq!(err.region, Some(RegionId(2)));
        assert_eq!(err.item, Some(ItemId(22)));
        assert!(err.to_string().contains("foreign class"));
    }

    #[test]
    fn verify_file_rejects_duplicate_unit_names() {
        let f = HliFile { entries: vec![figure2_like(), figure2_like()] };
        let errs = verify_file(&f);
        assert!(errs.iter().any(|(u, er)| u == "foo" && er.table == TableKind::UnitDirectory));
    }
}
