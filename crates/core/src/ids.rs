//! Identifier newtypes for the HLI tables.

use std::fmt;

/// Identifier of an *item* — a memory access or call in the line table, or
/// an equivalent access class (the paper gives classes IDs from the same
/// space so class members can refer to sub-region classes uniformly).
/// Unique within one program unit (one [`crate::tables::HliEntry`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ItemId(pub u32);

/// Identifier of a region within a program unit. Region 0 is always the
/// program unit itself.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct RegionId(pub u32);

impl fmt::Display for ItemId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "i{}", self.0)
    }
}

impl fmt::Display for RegionId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "r{}", self.0)
    }
}

/// The program-unit (outermost) region.
pub const UNIT_REGION: RegionId = RegionId(0);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_forms() {
        assert_eq!(ItemId(7).to_string(), "i7");
        assert_eq!(RegionId(2).to_string(), "r2");
    }

    #[test]
    fn ordering_follows_numeric() {
        assert!(ItemId(3) < ItemId(10));
        assert!(RegionId(0) < RegionId(1));
    }
}
