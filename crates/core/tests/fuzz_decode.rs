//! Decoder robustness: arbitrary bytes must produce errors, never panics
//! or unbounded allocations. Property-style but dependency-free: inputs
//! come from a seeded xorshift64 stream, so every run checks the same
//! cases deterministically.

use hli_core::serialize::{decode_file, encode_file, IndexedReader, SerializeOpts};

/// xorshift64 — tiny deterministic PRNG for test-input generation.
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.0 = x;
        x
    }

    fn bytes(&mut self, max_len: usize) -> Vec<u8> {
        let len = (self.next() as usize) % (max_len + 1);
        (0..len).map(|_| self.next() as u8).collect()
    }
}

#[test]
fn decode_never_panics() {
    let mut rng = Rng(0x1234_5678_9abc_def1);
    for _ in 0..512 {
        let bytes = rng.bytes(512);
        let _ = decode_file(&bytes, SerializeOpts::default());
        let _ = decode_file(&bytes, SerializeOpts { include_names: true });
    }
}

#[test]
fn decode_never_panics_with_magic() {
    let mut rng = Rng(0xfeed_beef_cafe_f00d);
    for _ in 0..512 {
        let mut data = b"HLI\x01".to_vec();
        data.extend(rng.bytes(256));
        let _ = decode_file(&data, SerializeOpts::default());
    }
}

#[test]
fn indexed_open_never_panics() {
    let mut rng = Rng(0x0bad_c0de_dead_beef);
    for round in 0..512 {
        let mut bytes = rng.bytes(256);
        // Half the rounds start with the right magic so the directory
        // parser actually runs.
        if round % 2 == 0 {
            bytes.splice(0..0, *b"HLIX");
        }
        if let Ok(r) = IndexedReader::open(bytes, SerializeOpts::default()) {
            for unit in r.units().map(str::to_owned).collect::<Vec<_>>() {
                let _ = r.read(&unit);
            }
        }
    }
}

#[test]
fn bitflips_in_valid_files_fail_cleanly() {
    // Take a real encoded file, flip one bit, decode: error or a
    // (possibly different) valid structure — never a panic.
    let src = "int a[10]; int main() { int i; for (i = 0; i < 10; i++) a[i] = i; return a[3]; }";
    let (p, s) = hli_lang::compile_to_ast(src).unwrap();
    let hli = hli_frontend::generate_hli(&p, &s);
    let clean = encode_file(&hli, SerializeOpts::default());
    for flip_at in 4..clean.len().min(200) {
        for flip_bit in 0..8u8 {
            let mut bytes = clean.clone();
            bytes[flip_at] ^= 1 << flip_bit;
            let _ = decode_file(&bytes, SerializeOpts::default());
        }
    }
}
