//! Decoder robustness: arbitrary bytes must produce errors, never panics
//! or unbounded allocations. Property-style but dependency-free: inputs
//! come from a seeded xorshift64 stream, so every run checks the same
//! cases deterministically.

use hli_core::serialize::{decode_file, encode_file, encode_file_v2, SerializeOpts};
use hli_core::HliReader;

/// xorshift64 — tiny deterministic PRNG for test-input generation.
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.0 = x;
        x
    }

    fn bytes(&mut self, max_len: usize) -> Vec<u8> {
        let len = (self.next() as usize) % (max_len + 1);
        (0..len).map(|_| self.next() as u8).collect()
    }
}

fn sample_hli() -> hli_core::HliFile {
    let src = "int a[10]; int main() { int i; for (i = 0; i < 10; i++) a[i] = i; return a[3]; }";
    let (p, s) = hli_lang::compile_to_ast(src).unwrap();
    hli_frontend::generate_hli(&p, &s)
}

#[test]
fn decode_never_panics() {
    let mut rng = Rng(0x1234_5678_9abc_def1);
    for _ in 0..512 {
        let bytes = rng.bytes(512);
        let _ = decode_file(&bytes, SerializeOpts::default());
        let _ = decode_file(&bytes, SerializeOpts { include_names: true });
    }
}

#[test]
fn decode_never_panics_with_magic() {
    let mut rng = Rng(0xfeed_beef_cafe_f00d);
    for _ in 0..512 {
        let mut data = b"HLI\x01".to_vec();
        data.extend(rng.bytes(256));
        let _ = decode_file(&data, SerializeOpts::default());
    }
}

#[test]
fn reader_open_never_panics() {
    let mut rng = Rng(0x0bad_c0de_dead_beef);
    for round in 0..512 {
        let mut bytes = rng.bytes(256);
        // Cycle the rounds through the v2 and v1 magics so both the
        // directory parser and the eager fallback actually run.
        match round % 3 {
            0 => drop(bytes.splice(0..0, *b"HLI\x02")),
            1 => drop(bytes.splice(0..0, *b"HLI\x01")),
            _ => (),
        };
        if let Ok(r) = HliReader::open(bytes, SerializeOpts::default()) {
            for unit in r.units().map(str::to_owned).collect::<Vec<_>>() {
                let _ = r.get(&unit);
            }
        }
    }
}

#[test]
fn bitflips_in_valid_files_fail_cleanly() {
    // Take a real encoded file, flip one bit, decode: error or a
    // (possibly different) valid structure — never a panic.
    let hli = sample_hli();
    let clean = encode_file(&hli, SerializeOpts::default());
    for flip_at in 4..clean.len().min(200) {
        for flip_bit in 0..8u8 {
            let mut bytes = clean.clone();
            bytes[flip_at] ^= 1 << flip_bit;
            let _ = decode_file(&bytes, SerializeOpts::default());
        }
    }
}

#[test]
fn truncations_of_valid_files_fail_cleanly() {
    let hli = sample_hli();
    for opts in [
        SerializeOpts::default(),
        SerializeOpts { include_names: true },
    ] {
        let v1 = encode_file(&hli, opts);
        for cut in 0..v1.len() {
            assert!(decode_file(&v1[..cut], opts).is_err(), "truncated at {cut}");
        }
        let v2 = encode_file_v2(&hli, opts);
        for cut in 0..v2.len() {
            let slice = v2[..cut].to_vec();
            if let Ok(r) = HliReader::open(slice, opts) {
                // Directory may parse; decoding any unit of a truncated
                // image must error, never panic.
                for unit in r.units().map(str::to_owned).collect::<Vec<_>>() {
                    let _ = r.get(&unit);
                }
            }
        }
    }
}

#[test]
fn roundtrip_with_names_from_frontend_output() {
    let hli = sample_hli();
    let opts = SerializeOpts { include_names: true };
    let bytes = encode_file(&hli, opts);
    let back = decode_file(&bytes, opts).unwrap();
    assert_eq!(back, hli, "named round-trip must be lossless");
}

#[test]
fn trailing_garbage_after_valid_file_rejected() {
    let hli = sample_hli();
    let mut rng = Rng(0x5eed_5eed_5eed_5eed);
    let clean = encode_file(&hli, SerializeOpts::default());
    for _ in 0..64 {
        let mut bytes = clean.clone();
        let mut junk = rng.bytes(32);
        junk.push(0xff); // at least one trailing byte
        bytes.extend(junk);
        let err = decode_file(&bytes, SerializeOpts::default()).unwrap_err();
        assert!(err.0.contains("trailing bytes"), "got: {err}");
    }
}

#[test]
fn v1_and_v2_images_agree_unit_by_unit() {
    let hli = sample_hli();
    let opts = SerializeOpts { include_names: true };
    let v1 = HliReader::open(encode_file(&hli, opts), opts).unwrap();
    let v2 = HliReader::open(encode_file_v2(&hli, opts), opts).unwrap();
    assert_eq!(v1.len(), v2.len());
    assert_eq!(v1.units().collect::<Vec<_>>(), v2.units().collect::<Vec<_>>());
    for unit in hli.entries.iter().map(|e| e.unit_name.clone()) {
        let a = v1.get(&unit).unwrap().unwrap();
        let b = v2.get(&unit).unwrap().unwrap();
        assert_eq!(a, b, "unit `{unit}` differs between v1 and v2");
    }
}
