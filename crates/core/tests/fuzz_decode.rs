//! Decoder robustness: arbitrary bytes must produce errors, never panics
//! or unbounded allocations.

use hli_core::serialize::{decode_file, encode_file, IndexedReader, SerializeOpts};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig { cases: 512, .. ProptestConfig::default() })]

    #[test]
    fn decode_never_panics(bytes in prop::collection::vec(any::<u8>(), 0..512)) {
        let _ = decode_file(&bytes, SerializeOpts::default());
        let _ = decode_file(&bytes, SerializeOpts { include_names: true });
    }

    #[test]
    fn decode_never_panics_with_magic(
        mut bytes in prop::collection::vec(any::<u8>(), 0..256)
    ) {
        let mut data = b"HLI\x01".to_vec();
        data.append(&mut bytes);
        let _ = decode_file(&data, SerializeOpts::default());
    }

    #[test]
    fn indexed_open_never_panics(bytes in prop::collection::vec(any::<u8>(), 0..256)) {
        if let Ok(r) = IndexedReader::open(bytes::Bytes::from(bytes), SerializeOpts::default()) {
            for unit in r.units().map(str::to_owned).collect::<Vec<_>>() {
                let _ = r.read(&unit);
            }
        }
    }

    #[test]
    fn bitflips_in_valid_files_fail_cleanly(
        flip_at in 4usize..200,
        flip_bit in 0u8..8,
    ) {
        // Take a real encoded file, flip one bit, decode: error or a
        // (possibly different) valid structure — never a panic.
        let src = "int a[10]; int main() { int i; for (i = 0; i < 10; i++) a[i] = i; return a[3]; }";
        let (p, s) = hli_lang::compile_to_ast(src).unwrap();
        let hli = hli_frontend::generate_hli(&p, &s);
        let mut bytes = encode_file(&hli, SerializeOpts::default()).to_vec();
        if flip_at < bytes.len() {
            bytes[flip_at] ^= 1 << flip_bit;
            let _ = decode_file(&bytes, SerializeOpts::default());
        }
    }
}
