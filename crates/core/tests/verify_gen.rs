//! Generative verification tests: a seeded builder produces random
//! well-formed HLI entries, and the verifier must (a) accept every one of
//! them, before and after an encode/decode round trip, and (b) report the
//! *right table* for every single semantic mutation applied to them.
//!
//! The builder constructs entries bottom-up the way the front-end does —
//! nested region scopes, items placed inside their owning region's scope,
//! classes partitioning the items with each subregion class consumed by
//! exactly one parent class — so a verifier complaint about a generated
//! entry is a verifier bug, not a generator artifact.

use hli_core::serialize::{decode_file, encode_file, SerializeOpts};
use hli_core::{
    AliasEntry, CallRef, CallRefMod, DepKind, Distance, EquivClass, EquivKind, HliEntry, HliFile,
    ItemEntry, ItemId, ItemType, LcddEntry, LineTable, MemberRef, Region, RegionId, RegionKind,
    TableKind,
};

/// xorshift64 — deterministic seed stream, same idiom as `fuzz_decode`.
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.0 = x;
        x
    }

    fn range(&mut self, n: u64) -> u64 {
        self.next() % n
    }
}

/// Build a random well-formed entry: 1–4 regions, 1–3 memory items per
/// region, a call item at the unit region, classes partitioning the
/// items, and randomly populated alias/LCDD/REF-MOD sub-tables.
fn gen_entry(rng: &mut Rng) -> HliEntry {
    let nregions = 1 + rng.range(4) as usize;
    let mut regions: Vec<Region> = vec![Region {
        id: RegionId(0),
        kind: RegionKind::Unit,
        parent: None,
        subregions: Vec::new(),
        scope: (1, 200),
        equiv_classes: Vec::new(),
        alias_table: Vec::new(),
        lcdd_table: Vec::new(),
        call_refmod: Vec::new(),
    }];
    for i in 1..nregions {
        let parent = RegionId(rng.range(i as u64) as u32);
        let (plo, phi) = regions[parent.0 as usize].scope;
        let a = plo + rng.range((phi - plo + 1) as u64) as u32;
        let b = plo + rng.range((phi - plo + 1) as u64) as u32;
        let scope = (a.min(b), a.max(b));
        regions.push(Region {
            id: RegionId(i as u32),
            kind: RegionKind::Loop { header_line: scope.0 },
            parent: Some(parent),
            subregions: Vec::new(),
            scope,
            equiv_classes: Vec::new(),
            alias_table: Vec::new(),
            lcdd_table: Vec::new(),
            call_refmod: Vec::new(),
        });
        regions[parent.0 as usize].subregions.push(RegionId(i as u32));
    }

    // Items: 1–3 loads/stores per region inside its scope, plus one call
    // at the unit region (calls belong to no class).
    let mut next_id = 0u32;
    let mut line_table = LineTable::default();
    let mut direct_items: Vec<Vec<ItemId>> = vec![Vec::new(); nregions];
    for (ri, r) in regions.iter().enumerate() {
        for _ in 0..1 + rng.range(3) {
            let id = ItemId(next_id);
            next_id += 1;
            let ty = if rng.range(2) == 0 {
                ItemType::Load
            } else {
                ItemType::Store
            };
            let line = r.scope.0 + rng.range((r.scope.1 - r.scope.0 + 1) as u64) as u32;
            line_table.push_item(line, ItemEntry { id, ty });
            direct_items[ri].push(id);
        }
    }
    let call_id = ItemId(next_id);
    next_id += 1;
    line_table.push_item(1, ItemEntry { id: call_id, ty: ItemType::Call });

    // Classes, children first: partition each region's direct items plus
    // its subregions' classes, so every subregion class is consumed by
    // exactly one parent class.
    let mut child_classes: Vec<Vec<(RegionId, ItemId)>> = vec![Vec::new(); nregions];
    for ri in (0..nregions).rev() {
        let mut pool: Vec<MemberRef> =
            direct_items[ri].iter().map(|&it| MemberRef::Item(it)).collect();
        for &(region, class) in &child_classes[ri] {
            pool.push(MemberRef::SubClass { region, class });
        }
        let nclasses = if pool.len() >= 2 && rng.range(2) == 0 {
            2
        } else {
            1
        };
        for c in 0..nclasses {
            // Deal the pool round-robin so every class is non-empty.
            let members: Vec<MemberRef> = pool.iter().skip(c).step_by(nclasses).copied().collect();
            let id = ItemId(next_id);
            next_id += 1;
            regions[ri].equiv_classes.push(EquivClass {
                id,
                kind: if rng.range(2) == 0 {
                    EquivKind::Definite
                } else {
                    EquivKind::Maybe
                },
                members,
                name_hint: String::new(),
            });
            if let Some(p) = regions[ri].parent {
                child_classes[p.0 as usize].push((RegionId(ri as u32), id));
            }
        }
    }

    // Sub-tables over the classes each region defines.
    for (ri, r) in regions.iter_mut().enumerate() {
        let ids: Vec<ItemId> = r.equiv_classes.iter().map(|c| c.id).collect();
        if ids.len() >= 2 && rng.range(2) == 0 {
            r.alias_table.push(AliasEntry { classes: vec![ids[0], ids[1]] });
        }
        if ri > 0 && !ids.is_empty() && rng.range(2) == 0 {
            r.lcdd_table.push(LcddEntry {
                src: ids[0],
                dst: *ids.last().unwrap(),
                kind: if rng.range(2) == 0 {
                    DepKind::Definite
                } else {
                    DepKind::Maybe
                },
                distance: if rng.range(2) == 0 {
                    Distance::Const(1 + rng.range(4) as u32)
                } else {
                    Distance::Unknown
                },
            });
        }
    }
    let unit_ids: Vec<ItemId> = regions[0].equiv_classes.iter().map(|c| c.id).collect();
    regions[0].call_refmod.push(CallRefMod {
        callee: CallRef::Item(call_id),
        refs: unit_ids.clone(),
        mods: if rng.range(2) == 0 {
            unit_ids
        } else {
            Vec::new()
        },
    });
    if nregions > 1 && rng.range(2) == 0 {
        // Whole-subregion REF/MOD entries are valid for immediate children.
        let child = regions[0].subregions[0];
        regions[0].call_refmod.push(CallRefMod {
            callee: CallRef::SubRegion(child),
            refs: Vec::new(),
            mods: Vec::new(),
        });
    }

    HliEntry {
        unit_name: "gen".to_string(),
        line_table,
        regions,
        next_id,
        generation: 0,
    }
}

#[test]
fn generated_entries_verify_clean() {
    for seed in 1..=64u64 {
        let e = gen_entry(&mut Rng(seed * 0x9E37_79B9));
        let errs = e.verify();
        assert!(errs.is_empty(), "seed {seed}: generated entry must verify: {errs:?}");
    }
}

#[test]
fn generated_entries_round_trip_and_still_verify() {
    for seed in 1..=32u64 {
        let e = gen_entry(&mut Rng(seed * 0x517C_C1B7));
        let file = HliFile { entries: vec![e] };
        for opts in [
            SerializeOpts::default(),
            SerializeOpts { include_names: true },
        ] {
            let bytes = encode_file(&file, opts);
            let back = decode_file(&bytes, opts).expect("round trip decodes");
            assert_eq!(back.entries, file.entries, "seed {seed}: round trip must be lossless");
            assert!(
                hli_core::verify_file(&back).is_empty(),
                "seed {seed}: decoded entry verifies"
            );
        }
    }
}

/// One semantic mutation: applies itself if the entry has a site for it,
/// returning the table the verifier must then attribute a violation to.
type Mutation = fn(&mut HliEntry, &mut Rng) -> Option<TableKind>;

const MUTATIONS: &[(&str, Mutation)] = &[
    ("forward-parent", |e, _| {
        let last = e.regions.len() - 1;
        if last == 0 {
            return None;
        }
        e.regions[last].parent = Some(RegionId(last as u32));
        Some(TableKind::RegionTree)
    }),
    ("inverted-scope", |e, rng| {
        let r = rng.range(e.regions.len() as u64) as usize;
        let (lo, hi) = e.regions[r].scope;
        if lo == hi {
            return None;
        }
        e.regions[r].scope = (hi, lo);
        Some(TableKind::RegionTree)
    }),
    ("unsorted-lines", |e, _| {
        if e.line_table.lines.len() < 2 {
            return None;
        }
        e.line_table.lines.swap(0, 1);
        Some(TableKind::LineTable)
    }),
    ("item-beyond-next-id", |e, _| {
        let l = e.line_table.lines.first_mut()?;
        let it = l.items.first_mut()?;
        it.id = ItemId(e.next_id + 7);
        Some(TableKind::LineTable)
    }),
    ("duplicate-ownership", |e, _| {
        for r in &mut e.regions {
            for c in &mut r.equiv_classes {
                if let Some(&m @ MemberRef::Item(_)) = c.members.first() {
                    c.members.push(m);
                    return Some(TableKind::EquivTable);
                }
            }
        }
        None
    }),
    ("empty-class", |e, rng| {
        let r = rng.range(e.regions.len() as u64) as usize;
        let c = e.regions[r].equiv_classes.first_mut()?;
        c.members.clear();
        Some(TableKind::EquivTable)
    }),
    ("alias-foreign-class", |e, _| {
        let foreign = ItemId(e.next_id + 1);
        let r = e.regions.iter_mut().find(|r| !r.equiv_classes.is_empty())?;
        let c = r.equiv_classes[0].id;
        r.alias_table.push(AliasEntry { classes: vec![c, foreign] });
        Some(TableKind::AliasTable)
    }),
    ("lcdd-in-unit-region", |e, _| {
        let c = e.regions[0].equiv_classes.first()?.id;
        e.regions[0].lcdd_table.push(LcddEntry {
            src: c,
            dst: c,
            kind: DepKind::Maybe,
            distance: Distance::Unknown,
        });
        Some(TableKind::LcddTable)
    }),
    ("lcdd-distance-zero", |e, _| {
        let r = e.regions.iter_mut().find(|r| r.is_loop() && !r.equiv_classes.is_empty())?;
        let c = r.equiv_classes[0].id;
        r.lcdd_table.push(LcddEntry {
            src: c,
            dst: c,
            kind: DepKind::Definite,
            distance: Distance::Const(0),
        });
        Some(TableKind::LcddTable)
    }),
    ("refmod-non-call-callee", |e, _| {
        let mem = e
            .line_table
            .items()
            .find(|(_, it)| it.ty != ItemType::Call)
            .map(|(_, it)| it.id)?;
        e.regions[0].call_refmod.push(CallRefMod {
            callee: CallRef::Item(mem),
            refs: Vec::new(),
            mods: Vec::new(),
        });
        Some(TableKind::CallRefModTable)
    }),
];

#[test]
fn single_semantic_mutations_report_the_mutated_table() {
    for seed in 1..=24u64 {
        for (name, mutate) in MUTATIONS {
            let mut rng = Rng(seed * 0xA24B_AED4);
            let mut e = gen_entry(&mut rng);
            let Some(expected) = mutate(&mut e, &mut rng) else {
                continue; // no site for this mutation in this entry
            };
            let errs = e.verify();
            assert!(
                errs.iter().any(|er| er.table == expected),
                "seed {seed}: mutation `{name}` must be attributed to {expected:?}, got {errs:?}"
            );
        }
    }
}

#[test]
fn every_mutation_fires_somewhere_in_the_seed_range() {
    // Guard against the mutation list silently going dead (e.g. the
    // generator shape changing so a site never exists).
    for (name, mutate) in MUTATIONS {
        let fired = (1..=24u64).any(|seed| {
            let mut rng = Rng(seed * 0xA24B_AED4);
            let mut e = gen_entry(&mut rng);
            mutate(&mut e, &mut rng).is_some()
        });
        assert!(fired, "mutation `{name}` never found a site across all seeds");
    }
}
