//! ITEMGEN — memory access item generation (Section 3.1.1 of the paper).
//!
//! Enumerates the memory accesses and calls of a function in back-end
//! emission order (the [`hli_lang::memwalk`] contract), assigns each a
//! unique ID, and records everything TBLCONST needs: the event itself plus
//! its position in the line table.

use hli_core::{ItemEntry, ItemId, ItemType, LineTable};
use hli_lang::ast::FuncDef;
use hli_lang::memwalk::{walk_function, AccessKind, MemEvent};
use hli_lang::sema::Sema;

/// One generated item: the HLI id plus the memwalk event it came from.
#[derive(Debug, Clone)]
pub struct Item {
    pub id: ItemId,
    pub event: MemEvent,
}

/// The ITEMGEN result for one function.
#[derive(Debug, Clone)]
pub struct ItemGen {
    pub items: Vec<Item>,
    pub line_table: LineTable,
}

/// Run ITEMGEN over one function.
pub fn run(f: &FuncDef, sema: &Sema) -> ItemGen {
    let events = walk_function(f, sema);
    let mut items = Vec::with_capacity(events.len());
    let mut line_table = LineTable::default();
    for (i, event) in events.into_iter().enumerate() {
        let id = ItemId(i as u32);
        let ty = match event.kind {
            AccessKind::Load => ItemType::Load,
            AccessKind::Store => ItemType::Store,
            AccessKind::Call => ItemType::Call,
        };
        line_table.push_item(event.line, ItemEntry { id, ty });
        items.push(Item { id, event });
    }
    let reg = hli_obs::metrics::cur();
    reg.counter("frontend.itemgen.funcs").inc();
    reg.counter("frontend.itemgen.items").add(items.len() as u64);
    ItemGen { items, line_table }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hli_lang::compile_to_ast;

    fn gen(src: &str, func: &str) -> (ItemGen, Sema) {
        let (p, s) = compile_to_ast(src).unwrap();
        let g = run(p.func(func).unwrap(), &s);
        (g, s)
    }

    #[test]
    fn ids_are_dense_and_ordered() {
        let (g, _) = gen(
            "int a[10]; int g;\nint main() {\n int i;\n for (i = 0; i < 10; i++)\n  a[i] = g + a[i];\n return g;\n}",
            "main",
        );
        for (i, item) in g.items.iter().enumerate() {
            assert_eq!(item.id, ItemId(i as u32));
        }
        // Line table holds exactly the same ids.
        assert_eq!(g.line_table.item_count(), g.items.len());
    }

    #[test]
    fn intra_line_order_matches_event_order() {
        let (g, _) = gen("int g; int h;\nint main() { g = h + g; return g; }", "main");
        // Events on line 2: load h, load g, store g; then load g (return).
        let entry = g.line_table.entry(2).unwrap();
        let types: Vec<ItemType> = entry.items.iter().map(|e| e.ty).collect();
        assert_eq!(
            types,
            vec![
                ItemType::Load,
                ItemType::Load,
                ItemType::Store,
                ItemType::Load
            ]
        );
        // IDs within a line ascend (emission order).
        let ids: Vec<u32> = entry.items.iter().map(|e| e.id.0).collect();
        let mut sorted = ids.clone();
        sorted.sort();
        assert_eq!(ids, sorted);
    }

    #[test]
    fn register_only_function_generates_no_items() {
        let (g, _) = gen(
            "int add(int a, int b) { int t; t = a + b; return t; } int main() { return add(1,2); }",
            "add",
        );
        assert!(g.items.is_empty());
    }

    #[test]
    fn call_items_present() {
        let (g, _) = gen("int f(int x) { return x; } int main() { return f(1) + f(2); }", "main");
        let calls = g.items.iter().filter(|i| matches!(i.event.kind, AccessKind::Call)).count();
        assert_eq!(calls, 2);
    }
}
