//! # hli-frontend — HLI generation (the SUIF side of the paper)
//!
//! Section 3.1: *"The HLI generation in the front-end contains two major
//! phases — memory access item generation (ITEMGEN) and HLI table
//! construction (TBLCONST)."*
//!
//! * [`itemgen`] — enumerates memory-access and call items per function in
//!   the back-end's emission order (via the shared
//!   [`hli_lang::memwalk`] contract), assigns item IDs, and builds the
//!   line table.
//! * [`tblconst`] — two conceptual traversals: build the hierarchical
//!   region structure and group items into equivalent access classes, then
//!   propagate bottom-up computing LCDD arcs, alias sets and call REF/MOD
//!   entries per region, using the `hli-analysis` machinery (affine
//!   dependence tests, regular sections, points-to, interprocedural
//!   REF/MOD).
//!
//! The entry point is [`generate_hli`]; [`FrontendOptions`] exposes the
//! precision knobs the ablation benchmarks sweep (disable array dependence
//! testing or pointer analysis to see how much each contributes to the
//! Table 2 reductions).

pub mod itemgen;
pub mod tblconst;

use hli_core::HliFile;
use hli_lang::ast::Program;
use hli_lang::sema::Sema;

/// Precision knobs for HLI generation.
#[derive(Debug, Clone, Copy)]
pub struct FrontendOptions {
    /// Run the affine dependence-test ladder. When off, every same-array
    /// class pair is a maybe-dependence (ablation: "no array analysis").
    pub array_analysis: bool,
    /// Use Andersen points-to for pointer classes. When off, every pointer
    /// access is unbounded (ablation: "no pointer analysis").
    pub pointer_analysis: bool,
    /// Build call REF/MOD tables. When off, calls stay opaque.
    pub refmod_analysis: bool,
}

impl Default for FrontendOptions {
    fn default() -> Self {
        FrontendOptions {
            array_analysis: true,
            pointer_analysis: true,
            refmod_analysis: true,
        }
    }
}

/// Generate the HLI file for a program: one entry per function.
pub fn generate_hli(prog: &Program, sema: &Sema) -> HliFile {
    generate_hli_with(prog, sema, FrontendOptions::default())
}

/// [`generate_hli`] with explicit precision options.
pub fn generate_hli_with(prog: &Program, sema: &Sema, opts: FrontendOptions) -> HliFile {
    let _phase = hli_obs::span("frontend.generate_hli");
    let _t = hli_obs::phase::timed("frontend.generate");
    let pts = {
        let _s = hli_obs::span("frontend.pointsto");
        if opts.pointer_analysis {
            hli_analysis::pointsto::analyze(prog, sema)
        } else {
            hli_analysis::PointsTo::default()
        }
    };
    let refmod = {
        let _s = hli_obs::span("frontend.refmod");
        if opts.refmod_analysis {
            Some(hli_analysis::refmod::analyze(prog, sema, &pts))
        } else {
            None
        }
    };
    let mut file = HliFile::default();
    for f in &prog.funcs {
        let items = {
            let _s = hli_obs::span("frontend.itemgen");
            itemgen::run(f, sema)
        };
        let entry = {
            let _s = hli_obs::span("frontend.tblconst");
            tblconst::run(f, sema, items, &pts, refmod.as_ref(), opts)
        };
        file.entries.push(entry);
    }
    file
}
