//! TBLCONST — HLI table construction (Section 3.1.2 of the paper).
//!
//! Two conceptual traversals over the front-end IR:
//!
//! 1. build the hierarchical region structure and group every memory item
//!    into per-region equivalent access classes (exact-subscript matches
//!    merge *definitely*; loop summaries merge into *maybe* section
//!    classes);
//! 2. walk the region tree bottom-up, running the dependence-test ladder
//!    per class pair to fill the LCDD table, the points-to results to fill
//!    the alias table, and the interprocedural REF/MOD summaries to fill
//!    the call REF/MOD table; then summarize each class (regular sections
//!    over the loop's iteration space) for the enclosing region.
//!
//! Grouping rules (calibrated against the paper's Figure 2):
//!
//! * within a loop region, units with identical affine access paths merge
//!   into one *definite* class; all imprecise (section/vague) units of the
//!   same array merge into one *maybe* class (region 3's `b[0..9]`), while
//!   exact units stay separate with alias entries where sections overlap
//!   (region 3's `b[0]` vs `b[0..9]`);
//! * at the unit region, everything with the same base object collapses
//!   into one class (region 1's `a[0..9]`, `b[0..9]`), *maybe* unless the
//!   accesses are provably one location — "maybe" propagates outward as
//!   Section 2.2.1 requires.

use crate::itemgen::{Item, ItemGen};
use crate::FrontendOptions;
use hli_analysis::affine::{self, Affine};
use hli_analysis::deptest::{siv_test, DepTest};
use hli_analysis::pointsto::PointsTo;
use hli_analysis::refmod::RefMod;
use hli_analysis::regiontree::{build_region_tree, RegionTree};
use hli_analysis::sections::{subscript_range, DimRange};
use hli_core::*;
use hli_lang::ast::{Expr, ExprId, ExprKind, FuncDef, Stmt};
use hli_lang::memwalk::{AccessKind, AccessPath};
use hli_lang::sema::{CanonLoop, Sema, SymId};
use std::collections::{HashMap, HashSet};

/// Run TBLCONST for one function.
pub fn run(
    f: &FuncDef,
    sema: &Sema,
    items: ItemGen,
    pts: &PointsTo,
    refmod: Option<&RefMod>,
    opts: FrontendOptions,
) -> HliEntry {
    let tree = build_region_tree(f, sema);
    let mut entry = HliEntry::new(&f.name);
    entry.next_id = items.items.len() as u32;
    entry.line_table = items.line_table.clone();
    entry.region_mut(RegionId(0)).scope = tree.unit().span;
    for node in tree.nodes.iter().skip(1) {
        let header_line = node.stmt.map(|_| node.span.0).expect("loop regions have statements");
        let id = entry.add_region(
            RegionId(node.parent.unwrap() as u32),
            RegionKind::Loop { header_line },
            node.span,
        );
        debug_assert_eq!(id.0 as usize, node.id);
    }

    let cx = Builder {
        sema,
        tree: &tree,
        pts,
        refmod,
        opts,
        expr_map: build_expr_map(f),
        modified: modified_per_region(f, &tree, sema),
    };
    cx.fill(&mut entry, &items.items);
    let reg = hli_obs::metrics::cur();
    reg.counter("frontend.tblconst.funcs").inc();
    reg.counter("frontend.tblconst.regions").add(entry.regions.len() as u64);
    entry
}

/// What an access-class unit is keyed on.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
enum BaseKey {
    Scalar(SymId),
    Array(SymId),
    /// Access through a known root pointer (treated as a virtual array).
    PtrRoot(SymId),
    /// Access through an unknown pointer (unique per unit).
    PtrUnknown(u32),
    /// An ABI stack slot (unique per unit).
    Stack(u32),
}

/// Per-dimension access summary.
#[derive(Debug, Clone, PartialEq, Eq)]
enum DimSummary {
    /// A loop-invariant-symbol affine subscript, exact.
    Exact(Affine),
    /// A constant element range (from summarizing a loop).
    Range(DimRange),
    /// Unanalyzable.
    Vague,
}

/// One unit entering the grouping at a region: a direct item or a child
/// region's class summary.
#[derive(Debug, Clone)]
struct Unit {
    base: BaseKey,
    dims: Vec<DimSummary>,
    kind: EquivKind,
    member: MemberRef,
    has_store: bool,
    has_load: bool,
}

/// A class built at a region, kept for summarization to the parent.
#[derive(Debug, Clone)]
struct ClassBuild {
    id: ItemId,
    base: BaseKey,
    dims: Vec<DimSummary>,
    kind: EquivKind,
    members: Vec<MemberRef>,
    has_store: bool,
    has_load: bool,
    /// Tree nodes of subregions contributing members (for REF/MOD scoping).
    from_regions: HashSet<usize>,
}

struct Builder<'a> {
    sema: &'a Sema,
    tree: &'a RegionTree,
    pts: &'a PointsTo,
    refmod: Option<&'a RefMod>,
    opts: FrontendOptions,
    expr_map: HashMap<ExprId, &'a Expr>,
    /// Per tree node: symbols assigned anywhere within the region.
    modified: Vec<HashSet<SymId>>,
}

fn build_expr_map(f: &FuncDef) -> HashMap<ExprId, &Expr> {
    let mut map = HashMap::new();
    for s in &f.body.stmts {
        s.walk_stmts(&mut |st: &Stmt| {
            st.own_exprs(&mut |e: &Expr| {
                e.walk(&mut |x| {
                    map.insert(x.id, x);
                })
            })
        });
    }
    map
}

fn modified_per_region(f: &FuncDef, tree: &RegionTree, sema: &Sema) -> Vec<HashSet<SymId>> {
    // Collect assignments per innermost region, then accumulate upward.
    let mut sets: Vec<HashSet<SymId>> = vec![HashSet::new(); tree.nodes.len()];
    for s in &f.body.stmts {
        s.walk_stmts(&mut |st: &Stmt| {
            st.own_exprs(&mut |e: &Expr| {
                e.walk(&mut |x| {
                    if let ExprKind::Assign(l, _)
                    | ExprKind::CompoundAssign(_, l, _)
                    | ExprKind::IncDec(_, l) = &x.kind
                    {
                        if matches!(l.kind, ExprKind::Ident(_)) {
                            if let Some(&sym) = sema.ident_sym.get(&l.id) {
                                let r = tree.region_of_expr(x.id);
                                sets[r].insert(sym);
                            }
                        }
                    }
                })
            })
        });
    }
    for i in (1..sets.len()).rev() {
        let here: Vec<SymId> = sets[i].iter().copied().collect();
        let p = tree.nodes[i].parent.unwrap();
        sets[p].extend(here);
    }
    sets
}

impl<'a> Builder<'a> {
    fn fill(&self, entry: &mut HliEntry, items: &[Item]) {
        let n = self.tree.nodes.len();
        // Items per region.
        let mut direct: Vec<Vec<&Item>> = vec![Vec::new(); n];
        let mut calls: Vec<Vec<&Item>> = vec![Vec::new(); n];
        for it in items {
            let r = match it.event.expr {
                Some(e) => self.tree.region_of_expr(e),
                None => 0,
            };
            if it.event.kind == AccessKind::Call {
                calls[r].push(it);
            } else {
                direct[r].push(it);
            }
        }

        // Stack-arg items belonging to each call item (memwalk emits the
        // arg stores right before their call, same line).
        let stack_args = associate_stack_args(items);

        // Callee REF/MOD accumulated per region subtree (for the
        // `CallRef::SubRegion` entries).
        let mut subtree_rm: Vec<Option<hli_analysis::RefModSet>> = vec![None; n];
        if let Some(rm) = self.refmod {
            for i in (0..n).rev() {
                let mut acc: Option<hli_analysis::RefModSet> = None;
                let mut add = |set: &hli_analysis::RefModSet| {
                    let a = acc.get_or_insert_with(Default::default);
                    a.refs.extend(set.refs.iter().copied());
                    a.mods.extend(set.mods.iter().copied());
                    a.unknown |= set.unknown;
                };
                for c in &calls[i] {
                    if let AccessPath::Call { callee } = &c.event.path {
                        if let Some(set) = rm.of(callee) {
                            add(set);
                        }
                    }
                }
                let children = self.tree.nodes[i].children.clone();
                for ch in children {
                    if let Some(set) = subtree_rm[ch].clone() {
                        add(&set);
                    }
                }
                subtree_rm[i] = acc;
            }
        }

        // Bottom-up class construction.
        let mut summaries: Vec<Vec<ClassBuild>> = vec![Vec::new(); n];
        let mut unknown_ctr = 0u32;
        for node in self.tree.bottom_up() {
            let canon = self.tree.nodes[node].canon.as_ref();
            let is_unit = node == 0;
            // Build units.
            let mut units: Vec<Unit> = Vec::new();
            for it in &direct[node] {
                units.push(self.unit_of_item(it, node, &mut unknown_ctr));
            }
            for child in &self.tree.nodes[node].children {
                for cls in &summaries[*child] {
                    units.push(Unit {
                        base: cls.base.clone(),
                        dims: cls.dims.clone(),
                        kind: cls.kind,
                        member: MemberRef::SubClass {
                            region: RegionId(*child as u32),
                            class: cls.id,
                        },
                        has_store: cls.has_store,
                        has_load: cls.has_load,
                    });
                }
            }

            // Group units into classes.
            let mut classes = self.group(entry, units, is_unit);
            // Record contributing subregions.
            for c in &mut classes {
                for m in &c.members {
                    if let MemberRef::SubClass { region, .. } = m {
                        c.from_regions.insert(region.0 as usize);
                    }
                }
            }

            // Relation tables.
            let region_id = RegionId(node as u32);
            let mut alias: Vec<AliasEntry> = Vec::new();
            let mut lcdd: Vec<LcddEntry> = Vec::new();
            let is_loop = !is_unit;
            for i in 0..classes.len() {
                for j in i..classes.len() {
                    let (a, b) = (&classes[i], &classes[j]);
                    if i != j && self.may_alias_classes(a, b) {
                        alias.push(AliasEntry { classes: vec![a.id, b.id] });
                    }
                    if is_loop && (a.has_store || b.has_store) {
                        if let Some(e) = self.lcdd_between(a, b, i == j, canon) {
                            lcdd.push(e);
                        }
                    }
                }
            }

            // Call REF/MOD entries.
            let mut refmod_entries: Vec<CallRefMod> = Vec::new();
            if let Some(rm) = self.refmod {
                for c in &calls[node] {
                    let AccessPath::Call { callee } = &c.event.path else { continue };
                    let Some(set) = rm.of(callee) else { continue };
                    let mut e = self.map_refmod(set, &classes);
                    // The call reads its own stack-argument slots.
                    if let Some(args) = stack_args.get(&c.id) {
                        for cls in &classes {
                            let holds = cls
                                .members
                                .iter()
                                .any(|m| matches!(m, MemberRef::Item(i) if args.contains(i)));
                            if holds && !e.0.contains(&cls.id) {
                                e.0.push(cls.id);
                            }
                        }
                    }
                    refmod_entries.push(CallRefMod {
                        callee: CallRef::Item(c.id),
                        refs: e.0,
                        mods: e.1,
                    });
                }
                for child in &self.tree.nodes[node].children {
                    if let Some(set) = &subtree_rm[*child] {
                        let mut e = self.map_refmod(set, &classes);
                        // Calls inside the subregion also read the stack
                        // slots represented by that subregion's summaries.
                        for cls in &classes {
                            if matches!(cls.base, BaseKey::Stack(_))
                                && cls.from_regions.contains(child)
                                && !e.0.contains(&cls.id)
                            {
                                e.0.push(cls.id);
                            }
                        }
                        refmod_entries.push(CallRefMod {
                            callee: CallRef::SubRegion(RegionId(*child as u32)),
                            refs: e.0,
                            mods: e.1,
                        });
                    }
                }
            }

            // Install into the entry.
            {
                let r = entry.region_mut(region_id);
                r.equiv_classes = classes
                    .iter()
                    .map(|c| EquivClass {
                        id: c.id,
                        kind: c.kind,
                        members: c.members.clone(),
                        name_hint: self.name_hint(c),
                    })
                    .collect();
                r.alias_table = alias;
                r.lcdd_table = lcdd;
                r.call_refmod = refmod_entries;
            }

            // Summarize for the parent.
            if !is_unit {
                summaries[node] = classes
                    .into_iter()
                    .map(|mut c| {
                        c.dims = c.dims.into_iter().map(|d| self.summarize_dim(d, canon)).collect();
                        c
                    })
                    .collect();
            }
        }
    }

    /// Build the grouping unit of one direct item.
    fn unit_of_item(&self, it: &Item, node: usize, unknown_ctr: &mut u32) -> Unit {
        let (has_load, has_store) = match it.event.kind {
            AccessKind::Load => (true, false),
            AccessKind::Store => (false, true),
            AccessKind::Call => unreachable!("calls are not grouped"),
        };
        let member = MemberRef::Item(it.id);
        let (base, dims) = match &it.event.path {
            AccessPath::Var(s) => (BaseKey::Scalar(*s), Vec::new()),
            AccessPath::ArrayElem(sym, expr) => {
                let dims = self.subscript_dims_of(*expr, node);
                (BaseKey::Array(*sym), dims)
            }
            AccessPath::PtrAccess(root, expr) => match root {
                Some(p) => {
                    let dims = if self.modified[node].contains(p) && !self.is_region_ivar(node, *p)
                    {
                        // Walking pointer: location varies within the region.
                        vec![DimSummary::Vague]
                    } else {
                        self.ptr_sub_dims(*expr, node)
                    };
                    (BaseKey::PtrRoot(*p), dims)
                }
                None => {
                    *unknown_ctr += 1;
                    (BaseKey::PtrUnknown(*unknown_ctr), vec![DimSummary::Vague])
                }
            },
            AccessPath::StackArg { .. } | AccessPath::StackParamEntry { .. } => {
                *unknown_ctr += 1;
                (BaseKey::Stack(*unknown_ctr), Vec::new())
            }
            AccessPath::Call { .. } => unreachable!(),
        };
        Unit {
            base,
            dims,
            kind: EquivKind::Definite,
            member,
            has_store,
            has_load,
        }
    }

    fn is_region_ivar(&self, node: usize, sym: SymId) -> bool {
        // The region's own induction variable (and those of enclosing
        // canonical loops) are fixed within one iteration.
        let mut cur = Some(node);
        while let Some(nd) = cur {
            if let Some(cl) = &self.tree.nodes[nd].canon {
                if cl.ivar == sym {
                    return true;
                }
            }
            cur = self.tree.nodes[nd].parent;
        }
        false
    }

    /// Per-dimension summaries of an array access expression.
    fn subscript_dims_of(&self, expr: ExprId, node: usize) -> Vec<DimSummary> {
        let Some(e) = self.expr_map.get(&expr) else { return vec![DimSummary::Vague] };
        let Some((_, subs)) = hli_lang::memwalk::resolve_array_access(e, self.sema) else {
            return vec![DimSummary::Vague];
        };
        subs.iter().map(|s| self.dim_of_expr(s, node)).collect()
    }

    /// Subscript dims of a pointer access: `*p` → `[0]`, `p[i]` → `[i]`,
    /// `p[i][j]` → `[i, j]`.
    fn ptr_sub_dims(&self, expr: ExprId, node: usize) -> Vec<DimSummary> {
        let Some(e) = self.expr_map.get(&expr) else { return vec![DimSummary::Vague] };
        match &e.kind {
            ExprKind::Deref(_) => vec![DimSummary::Exact(Affine::constant(0))],
            ExprKind::Index(..) => {
                let mut subs = Vec::new();
                let mut cur: &Expr = e;
                while let ExprKind::Index(b, i) = &cur.kind {
                    subs.push(self.dim_of_expr(i, node));
                    cur = b;
                }
                subs.reverse();
                subs
            }
            _ => vec![DimSummary::Vague],
        }
    }

    fn dim_of_expr(&self, e: &Expr, node: usize) -> DimSummary {
        if !self.opts.array_analysis {
            return DimSummary::Vague;
        }
        match affine::extract(e, self.sema) {
            Some(aff) => {
                let variant = aff
                    .symbols()
                    .any(|s| self.modified[node].contains(&s) && !self.is_region_ivar(node, s));
                if variant {
                    DimSummary::Vague
                } else {
                    DimSummary::Exact(aff)
                }
            }
            None => DimSummary::Vague,
        }
    }

    /// Group units into classes per the Figure-2 rules.
    fn group(
        &self,
        entry: &mut HliEntry,
        units: Vec<Unit>,
        is_unit_region: bool,
    ) -> Vec<ClassBuild> {
        let mut classes: Vec<ClassBuild> = Vec::new();
        'units: for u in units {
            for c in &mut classes {
                if self.unit_joins(c, &u, is_unit_region) {
                    c.members.push(u.member);
                    c.has_store |= u.has_store;
                    c.has_load |= u.has_load;
                    let exact_match = c.dims == u.dims
                        && c.dims.iter().all(|d| matches!(d, DimSummary::Exact(_)));
                    if u.kind == EquivKind::Maybe || !exact_match {
                        c.kind = EquivKind::Maybe;
                    }
                    // Widen dims to cover the newcomer.
                    c.dims = merge_dims(&c.dims, &u.dims);
                    continue 'units;
                }
            }
            classes.push(ClassBuild {
                id: entry.fresh_id(),
                base: u.base,
                dims: u.dims,
                kind: u.kind,
                members: vec![u.member],
                has_store: u.has_store,
                has_load: u.has_load,
                from_regions: HashSet::new(),
            });
        }
        classes
    }

    /// May `u` join class `c`?
    fn unit_joins(&self, c: &ClassBuild, u: &Unit, is_unit_region: bool) -> bool {
        if c.base != u.base {
            return false;
        }
        match &u.base {
            BaseKey::Scalar(_) => true,
            BaseKey::Stack(_) | BaseKey::PtrUnknown(_) => false, // unique keys never collide
            BaseKey::Array(_) | BaseKey::PtrRoot(_) => {
                if is_unit_region {
                    // The unit region collapses per base object.
                    return true;
                }
                let c_exact = c.dims.iter().all(|d| matches!(d, DimSummary::Exact(_)));
                let u_exact = u.dims.iter().all(|d| matches!(d, DimSummary::Exact(_)));
                if c_exact && u_exact {
                    // Exact units merge only on identical access paths.
                    c.dims == u.dims
                } else {
                    // Imprecise units of the same base pool into the
                    // section class; exact units stay out of it.
                    !c_exact && !u_exact
                }
            }
        }
    }

    /// May two classes overlap within one iteration?
    fn may_alias_classes(&self, a: &ClassBuild, b: &ClassBuild) -> bool {
        use BaseKey::*;
        match (&a.base, &b.base) {
            (Stack(_), _) | (_, Stack(_)) => false,
            (PtrUnknown(_), other) | (other, PtrUnknown(_)) => !matches!(other, Stack(_)),
            (Scalar(x), Scalar(y)) => x == y && a.id != b.id, // same sym ⇒ same class anyway
            (Array(x), Array(y)) => {
                if x != y {
                    return false;
                }
                self.dims_may_overlap(&a.dims, &b.dims)
            }
            (PtrRoot(p), PtrRoot(q)) => {
                if p == q {
                    return self.dims_may_overlap(&a.dims, &b.dims);
                }
                self.pts.may_alias(*p, *q)
            }
            (PtrRoot(p), Scalar(s) | Array(s)) | (Scalar(s) | Array(s), PtrRoot(p)) => {
                self.pts.may_point_to(*p, *s)
            }
            (Scalar(_), Array(_)) | (Array(_), Scalar(_)) => false,
        }
    }

    /// Same-iteration overlap between two same-base dim vectors that are
    /// *not* identical (identical would have merged).
    fn dims_may_overlap(&self, a: &[DimSummary], b: &[DimSummary]) -> bool {
        if a.len() != b.len() {
            return true; // different shapes: be conservative
        }
        for (da, db) in a.iter().zip(b) {
            let disjoint = match (da, db) {
                (DimSummary::Exact(x), DimSummary::Exact(y)) => {
                    matches!(x.const_difference(y), Some(k) if k != 0)
                }
                (DimSummary::Exact(x), DimSummary::Range(r))
                | (DimSummary::Range(r), DimSummary::Exact(x)) => {
                    x.is_constant() && !DimRange::point(x.constant).may_overlap(r)
                }
                (DimSummary::Range(x), DimSummary::Range(y)) => !x.may_overlap(y),
                _ => false,
            };
            if disjoint {
                return false;
            }
        }
        true
    }

    /// The LCDD arc between two classes (or a class and itself) for a loop
    /// region.
    fn lcdd_between(
        &self,
        a: &ClassBuild,
        b: &ClassBuild,
        self_pair: bool,
        canon: Option<&CanonLoop>,
    ) -> Option<LcddEntry> {
        use BaseKey::*;
        let maybe_arc = |kind: DepKind| {
            Some(LcddEntry { src: a.id, dst: b.id, kind, distance: Distance::Unknown })
        };
        if self_pair {
            // A class against itself across iterations.
            return match &a.base {
                Stack(_) => None,
                Scalar(_) => Some(LcddEntry {
                    src: a.id,
                    dst: a.id,
                    kind: if a.kind == EquivKind::Definite {
                        DepKind::Definite
                    } else {
                        DepKind::Maybe
                    },
                    distance: Distance::Const(1),
                }),
                PtrUnknown(_) => maybe_arc(DepKind::Maybe),
                Array(_) | PtrRoot(_) => {
                    let all_exact_invariant = canon.is_some()
                        && a.dims.iter().all(|d| match d {
                            DimSummary::Exact(aff) => aff.coeff(canon.unwrap().ivar) == 0,
                            _ => false,
                        });
                    let any_ivar_exact = canon.is_some()
                        && a.dims.iter().all(|d| matches!(d, DimSummary::Exact(_)))
                        && a.dims.iter().any(|d| match d {
                            DimSummary::Exact(aff) => aff.coeff(canon.unwrap().ivar) != 0,
                            _ => false,
                        });
                    if all_exact_invariant {
                        // One fixed location every iteration.
                        Some(LcddEntry {
                            src: a.id,
                            dst: a.id,
                            kind: if a.kind == EquivKind::Definite {
                                DepKind::Definite
                            } else {
                                DepKind::Maybe
                            },
                            distance: Distance::Const(1),
                        })
                    } else if any_ivar_exact {
                        // Moves with the loop: distinct element each
                        // iteration (e.g. a[i]) — no self arc. Strides that
                        // revisit are impossible for a single affine form.
                        None
                    } else {
                        // Sections / vague: conservatively carried.
                        maybe_arc(DepKind::Maybe)
                    }
                }
            };
        }
        match (&a.base, &b.base) {
            (Stack(_), _) | (_, Stack(_)) => None,
            (PtrUnknown(_), _) | (_, PtrUnknown(_)) => maybe_arc(DepKind::Maybe),
            (Scalar(x), Scalar(y)) => {
                if x == y {
                    maybe_arc(DepKind::Maybe)
                } else {
                    None
                }
            }
            (Array(x), Array(y)) if x == y => self.same_base_lcdd(a, b, canon),
            (PtrRoot(p), PtrRoot(q)) if p == q => self.same_base_lcdd(a, b, canon),
            (PtrRoot(p), PtrRoot(q)) => {
                if self.pts.may_alias(*p, *q) {
                    maybe_arc(DepKind::Maybe)
                } else {
                    None
                }
            }
            (PtrRoot(p), Scalar(s) | Array(s)) | (Scalar(s) | Array(s), PtrRoot(p)) => {
                if self.pts.may_point_to(*p, *s) {
                    maybe_arc(DepKind::Maybe)
                } else {
                    None
                }
            }
            _ => None,
        }
    }

    /// LCDD between two distinct classes over the same array / pointer root.
    fn same_base_lcdd(
        &self,
        a: &ClassBuild,
        b: &ClassBuild,
        canon: Option<&CanonLoop>,
    ) -> Option<LcddEntry> {
        let Some(cl) = canon else {
            return Some(LcddEntry {
                src: a.id,
                dst: b.id,
                kind: DepKind::Maybe,
                distance: Distance::Unknown,
            });
        };
        let a_exact = a.dims.iter().all(|d| matches!(d, DimSummary::Exact(_)));
        let b_exact = b.dims.iter().all(|d| matches!(d, DimSummary::Exact(_)));
        if a_exact && b_exact && a.dims.len() == b.dims.len() {
            let trip = cl.trip_count();
            let mut signed: Option<i64> = None;
            let reg = hli_obs::metrics::cur();
            for (da, db) in a.dims.iter().zip(&b.dims) {
                let (DimSummary::Exact(fa), DimSummary::Exact(fb)) = (da, db) else {
                    unreachable!()
                };
                // Classify the ladder rung (same structure `siv_test` keys
                // off: induction-variable coefficients on both sides).
                let (c1, c2) = (fa.coeff(cl.ivar), fb.coeff(cl.ivar));
                let rung = match (c1, c2) {
                    (0, 0) => "frontend.deptest.ziv",
                    (0, _) | (_, 0) => "frontend.deptest.weak_zero_siv",
                    _ if c1 == c2 => "frontend.deptest.strong_siv",
                    _ => "frontend.deptest.miv",
                };
                reg.counter(rung).inc();
                match siv_test(fa, fb, cl.ivar, trip) {
                    DepTest::Independent => return None,
                    DepTest::Unknown => {
                        return Some(LcddEntry {
                            src: a.id,
                            dst: b.id,
                            kind: DepKind::Maybe,
                            distance: Distance::Unknown,
                        })
                    }
                    DepTest::Invariant => {}
                    DepTest::SameIteration => match signed {
                        None => signed = Some(0),
                        Some(0) => {}
                        Some(_) => return None,
                    },
                    DepTest::Carried { distance, a_to_b } => {
                        let s = if a_to_b { distance } else { -distance };
                        match signed {
                            None => signed = Some(s),
                            Some(prev) if prev == s => {}
                            Some(_) => return None,
                        }
                    }
                }
            }
            return match signed {
                // All dims invariant: same fixed location(s) both classes —
                // but distinct exact classes with all-invariant equal dims
                // merge; unequal invariant dims are Independent. Reaching
                // here means every dim was `Invariant`: overlap every
                // iteration.
                None => Some(LcddEntry {
                    src: a.id,
                    dst: b.id,
                    kind: DepKind::Maybe,
                    distance: Distance::Unknown,
                }),
                Some(0) => None, // pure same-iteration overlap is the alias table's job
                Some(s) if s > 0 => Some(LcddEntry {
                    src: a.id,
                    dst: b.id,
                    kind: dep_kind(a, b),
                    distance: Distance::Const(s as u32),
                }),
                Some(s) => Some(LcddEntry {
                    src: b.id,
                    dst: a.id,
                    kind: dep_kind(a, b),
                    distance: Distance::Const((-s) as u32),
                }),
            };
        }
        // Imprecise on at least one side: refute by disjoint sections.
        if !self.dims_may_overlap(&a.dims, &b.dims) {
            // Disjoint *within* an iteration; across iterations sections
            // summarize the whole loop already, so disjoint sections of the
            // same array never meet.
            return None;
        }
        Some(LcddEntry {
            src: a.id,
            dst: b.id,
            kind: DepKind::Maybe,
            distance: Distance::Unknown,
        })
    }

    /// Summarize a dimension for the parent region.
    fn summarize_dim(&self, d: DimSummary, canon: Option<&CanonLoop>) -> DimSummary {
        match (d, canon) {
            (DimSummary::Exact(aff), Some(cl)) => {
                if aff.coeff(cl.ivar) == 0 {
                    DimSummary::Exact(aff)
                } else {
                    let r = subscript_range(&aff, cl.ivar, cl);
                    DimSummary::Range(r)
                }
            }
            (DimSummary::Exact(aff), None) => {
                if aff.is_constant() {
                    DimSummary::Exact(aff)
                } else {
                    // Unknown iteration pattern: any symbol may have varied.
                    DimSummary::Vague
                }
            }
            (other, _) => other,
        }
    }

    /// Map an interprocedural REF/MOD set onto a region's classes.
    fn map_refmod(
        &self,
        set: &hli_analysis::RefModSet,
        classes: &[ClassBuild],
    ) -> (Vec<ItemId>, Vec<ItemId>) {
        let covers = |objs: &std::collections::BTreeSet<SymId>, c: &ClassBuild| -> bool {
            if set.unknown {
                return !matches!(c.base, BaseKey::Stack(_));
            }
            match &c.base {
                BaseKey::Scalar(s) | BaseKey::Array(s) => objs.contains(s),
                BaseKey::PtrRoot(p) => match self.pts.targets(*p) {
                    Some(t) => t.iter().any(|o| objs.contains(o)),
                    None => true,
                },
                BaseKey::PtrUnknown(_) => true,
                BaseKey::Stack(_) => false,
            }
        };
        let refs = classes.iter().filter(|c| covers(&set.refs, c)).map(|c| c.id).collect();
        let mods = classes.iter().filter(|c| covers(&set.mods, c)).map(|c| c.id).collect();
        (refs, mods)
    }

    fn name_hint(&self, c: &ClassBuild) -> String {
        let base = match &c.base {
            BaseKey::Scalar(s) | BaseKey::Array(s) => self.sema.sym(*s).name.clone(),
            BaseKey::PtrRoot(p) => format!("*{}", self.sema.sym(*p).name),
            BaseKey::PtrUnknown(k) => format!("*?{k}"),
            BaseKey::Stack(k) => format!("stack{k}"),
        };
        if c.dims.is_empty() {
            return base;
        }
        let dims: Vec<String> = c
            .dims
            .iter()
            .map(|d| match d {
                DimSummary::Exact(aff) => format!("[{aff}]"),
                DimSummary::Range(r) => format!("[{r}]"),
                DimSummary::Vague => "[?]".to_string(),
            })
            .collect();
        format!("{base}{}", dims.join(""))
    }
}

fn dep_kind(a: &ClassBuild, b: &ClassBuild) -> DepKind {
    if a.kind == EquivKind::Definite && b.kind == EquivKind::Definite {
        DepKind::Definite
    } else {
        DepKind::Maybe
    }
}

/// Widen class dims to also cover a joining unit.
fn merge_dims(c: &[DimSummary], u: &[DimSummary]) -> Vec<DimSummary> {
    if c.len() != u.len() {
        return vec![DimSummary::Vague; c.len().max(u.len()).max(1)];
    }
    c.iter()
        .zip(u)
        .map(|(a, b)| match (a, b) {
            (DimSummary::Exact(x), DimSummary::Exact(y)) if x == y => DimSummary::Exact(x.clone()),
            (DimSummary::Exact(x), DimSummary::Exact(y)) if x.is_constant() && y.is_constant() => {
                DimSummary::Range(DimRange::range(
                    x.constant.min(y.constant),
                    x.constant.max(y.constant),
                ))
            }
            (DimSummary::Range(x), DimSummary::Range(y)) => DimSummary::Range(x.hull(y)),
            (DimSummary::Range(r), DimSummary::Exact(x))
            | (DimSummary::Exact(x), DimSummary::Range(r))
                if x.is_constant() =>
            {
                DimSummary::Range(r.hull(&DimRange::point(x.constant)))
            }
            _ => DimSummary::Vague,
        })
        .collect()
}

/// Associate each call item with the stack-arg store items emitted for it
/// (they directly precede the call in emission order).
fn associate_stack_args(items: &[Item]) -> HashMap<ItemId, HashSet<ItemId>> {
    let mut map: HashMap<ItemId, HashSet<ItemId>> = HashMap::new();
    let mut pending: Vec<ItemId> = Vec::new();
    for it in items {
        match &it.event.path {
            AccessPath::StackArg { .. } => pending.push(it.id),
            AccessPath::Call { .. } if !pending.is_empty() => {
                map.insert(it.id, pending.drain(..).collect());
            }
            _ => {}
        }
    }
    map
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generate_hli;
    use hli_core::query::{EquivAcc, HliQuery};
    use hli_core::textdump::dump_entry;
    use hli_lang::compile_to_ast;

    fn hli_of(src: &str) -> HliFile {
        let (p, s) = compile_to_ast(src).unwrap();
        generate_hli(&p, &s)
    }

    fn entry<'f>(f: &'f HliFile, name: &str) -> &'f HliEntry {
        f.entry(name).unwrap()
    }

    #[test]
    fn every_entry_validates() {
        let f = hli_of(
            "int a[10]; int b[10]; int sum;\n\
             int foo() {\n\
               int i; int j;\n\
               for (i = 0; i < 10; i++) {\n\
                 sum += a[i];\n\
               }\n\
               for (i = 0; i < 10; i++) {\n\
                 a[i] = b[0];\n\
                 for (j = 1; j < 10; j++) {\n\
                   b[j] = b[j] + b[j-1];\n\
                   sum = sum + a[i];\n\
                 }\n\
               }\n\
               return sum;\n\
             }\n\
             int main() { return foo(); }",
        );
        for e in &f.entries {
            let errs = e.verify();
            assert!(errs.is_empty(), "{}: {errs:?}\n{}", e.unit_name, dump_entry(e));
        }
    }

    /// The paper's Figure 2, end to end.
    #[test]
    fn figure2_structure_reproduced() {
        let f = hli_of(
            "int a[10]; int b[10]; int sum;\n\
             int foo() {\n\
               int i; int j;\n\
               for (i = 0; i < 10; i++) {\n\
                 sum += a[i];\n\
               }\n\
               for (i = 0; i < 10; i++) {\n\
                 a[i] = b[0];\n\
                 for (j = 1; j < 10; j++) {\n\
                   b[j] = b[j] + b[j-1];\n\
                   sum = sum + a[i];\n\
                 }\n\
               }\n\
               return sum;\n\
             }\n\
             int main() { return foo(); }",
        );
        let e = entry(&f, "foo");
        // Region structure: unit + 2 sibling i-loops + inner j-loop.
        assert_eq!(e.regions.len(), 4);
        assert_eq!(e.region(RegionId(0)).subregions.len(), 2);
        let second_i = e.region(RegionId(0)).subregions[1];
        assert_eq!(e.region(second_i).subregions.len(), 1);
        let j_loop = e.region(second_i).subregions[0];

        // The j-loop has the b[j] → b[j-1] distance-1 LCDD.
        let jl = e.region(j_loop);
        let dist1: Vec<&LcddEntry> =
            jl.lcdd_table.iter().filter(|d| d.distance == Distance::Const(1)).collect();
        assert!(
            !dist1.is_empty(),
            "expected a distance-1 arc in the j loop:\n{}",
            dump_entry(e)
        );

        // Region 3 (second i loop): b[0] aliases the b-section class.
        let r3 = e.region(second_i);
        let b0 = r3
            .equiv_classes
            .iter()
            .find(|c| c.name_hint.starts_with("b[0]"))
            .unwrap_or_else(|| panic!("no b[0] class:\n{}", dump_entry(e)));
        let bsec = r3
            .equiv_classes
            .iter()
            .find(|c| c.id != b0.id && c.name_hint.starts_with("b["))
            .expect("b section class");
        assert_eq!(bsec.kind, EquivKind::Maybe);
        assert!(
            r3.alias_table
                .iter()
                .any(|a| { a.classes.contains(&b0.id) && a.classes.contains(&bsec.id) }),
            "b[0] must alias the section:\n{}",
            dump_entry(e)
        );

        // The unit region collapses to one class per variable: sum
        // (definite), a (maybe), b (maybe).
        let unit = e.region(RegionId(0));
        assert_eq!(unit.equiv_classes.len(), 3, "{}", dump_entry(e));
        let sum = unit.equiv_classes.iter().find(|c| c.name_hint == "sum").unwrap();
        assert_eq!(sum.kind, EquivKind::Definite);
        let a = unit.equiv_classes.iter().find(|c| c.name_hint.starts_with('a')).unwrap();
        assert_eq!(a.kind, EquivKind::Maybe);
    }

    #[test]
    fn equiv_queries_disambiguate_distinct_elements() {
        let f = hli_of(
            "int a[10]; int b[10];\n\
             int main() {\n\
               int i;\n\
               for (i = 1; i < 10; i++) {\n\
                 a[i] = b[i] + b[i-1];\n\
               }\n\
               return a[0];\n\
             }",
        );
        let e = entry(&f, "main");
        let q = HliQuery::new(e);
        // Find the loop-line items: loads b[i], b[i-1]; store a[i].
        let line5 = e.line_table.entry(5).unwrap();
        let ids: Vec<ItemId> = line5.items.iter().map(|x| x.id).collect();
        let tys: Vec<ItemType> = line5.items.iter().map(|x| x.ty).collect();
        assert_eq!(tys, vec![ItemType::Load, ItemType::Load, ItemType::Store]);
        let (bi, bi1, ai) = (ids[0], ids[1], ids[2]);
        // b[i] vs b[i-1]: distinct within an iteration.
        assert_eq!(q.get_equiv_acc(bi, bi1), EquivAcc::None);
        // a[i] store vs b loads: different arrays.
        assert_eq!(q.get_equiv_acc(ai, bi), EquivAcc::None);
        // And no LCDD between a and b.
        assert!(q.get_lcdd(ai, bi).is_none());
    }

    #[test]
    fn scalar_accumulator_gets_self_arc() {
        let f = hli_of(
            "int a[10]; int sum;\n\
             int main() {\n\
               int i;\n\
               for (i = 0; i < 10; i++) sum += a[i];\n\
               return sum;\n\
             }",
        );
        let e = entry(&f, "main");
        let q = HliQuery::new(e);
        let line4 = e.line_table.entry(4).unwrap();
        // Events: load sum, load a[i], store sum.
        let sum_ld = line4.items[0].id;
        let sum_st = line4.items[2].id;
        assert_eq!(q.get_equiv_acc(sum_ld, sum_st), EquivAcc::Definite);
        let arc = q.get_lcdd(sum_ld, sum_st).expect("self LCDD on sum");
        assert_eq!(arc.distance, Distance::Const(1));
        assert_eq!(arc.kind, DepKind::Definite);
    }

    #[test]
    fn streaming_array_has_no_self_arc() {
        let f = hli_of(
            "int a[10];\n\
             int main() {\n\
               int i;\n\
               for (i = 0; i < 10; i++) a[i] = i;\n\
               return a[0];\n\
             }",
        );
        let e = entry(&f, "main");
        let q = HliQuery::new(e);
        let line4 = e.line_table.entry(4).unwrap();
        let st = line4.items[0].id;
        assert!(q.get_lcdd(st, st).is_none(), "a[i] never revisits an element");
    }

    #[test]
    fn pointer_params_disambiguated_by_points_to() {
        let f = hli_of(
            "double x[64]; double y[64];\n\
             void axpy(double *p, double *q, double s, int n) {\n\
               int i;\n\
               for (i = 0; i < n; i++) p[i] = p[i] + s * q[i];\n\
             }\n\
             int main() { axpy(x, y, 2.0, 64); return 0; }",
        );
        let e = entry(&f, "axpy");
        let q = HliQuery::new(e);
        let line4 = e.line_table.entry(4).unwrap();
        // Events: load p[i], load q[i], store p[i].
        let p_ld = line4.items[0].id;
        let q_ld = line4.items[1].id;
        let p_st = line4.items[2].id;
        assert_eq!(q.get_equiv_acc(p_ld, p_st), EquivAcc::Definite);
        assert_eq!(
            q.get_equiv_acc(q_ld, p_st),
            EquivAcc::None,
            "points-to proves p and q disjoint:\n{}",
            dump_entry(e)
        );
    }

    #[test]
    fn aliased_pointer_params_stay_aliased() {
        let f = hli_of(
            "double x[64];\n\
             void f(double *p, double *q) { p[0] = q[1]; }\n\
             int main() { f(x, x); return 0; }",
        );
        let e = entry(&f, "f");
        let q = HliQuery::new(e);
        let line2 = e.line_table.entry(2).unwrap();
        let q1_ld = line2.items[0].id;
        let p0_st = line2.items[1].id;
        assert_eq!(q.get_equiv_acc(q1_ld, p0_st), EquivAcc::Maybe);
    }

    #[test]
    fn call_refmod_entries_generated() {
        let f = hli_of(
            "int g; int h;\n\
             void bump() { g = g + 1; }\n\
             int main() {\n\
               h = 1;\n\
               bump();\n\
               return h + g;\n\
             }",
        );
        let e = entry(&f, "main");
        let q = HliQuery::new(e);
        let call = e
            .line_table
            .items()
            .find(|(_, it)| it.ty == ItemType::Call)
            .map(|(_, it)| it.id)
            .unwrap();
        let h_store = e.line_table.entry(4).unwrap().items[0].id;
        let g_load = e
            .line_table
            .entry(6)
            .unwrap()
            .items
            .iter()
            .rev()
            .find(|it| it.ty == ItemType::Load)
            .unwrap()
            .id;
        use hli_core::query::CallAcc;
        assert_eq!(q.get_call_acc(h_store, call), CallAcc::None, "{}", dump_entry(e));
        assert_eq!(q.get_call_acc(g_load, call), CallAcc::RefMod);
    }

    #[test]
    fn stack_args_are_refs_of_their_call() {
        let f = hli_of(
            "int f(int a, int b, int c, int d, int e, int x) { return a+b+c+d+e+x; }\n\
             int main() { return f(1, 2, 3, 4, 5, 6); }",
        );
        let e = entry(&f, "main");
        let q = HliQuery::new(e);
        let items: Vec<(u32, ItemEntry)> = e.line_table.items().collect();
        let call = items.iter().find(|(_, it)| it.ty == ItemType::Call).unwrap().1.id;
        let stores: Vec<ItemId> = items
            .iter()
            .filter(|(_, it)| it.ty == ItemType::Store)
            .map(|(_, it)| it.id)
            .collect();
        assert_eq!(stores.len(), 2);
        use hli_core::query::CallAcc;
        for s in stores {
            assert_eq!(q.get_call_acc(s, call), CallAcc::Ref, "{}", dump_entry(e));
        }
    }

    #[test]
    fn two_dimensional_accesses() {
        let f = hli_of(
            "double m[8][8];\n\
             int main() {\n\
               int i; int j;\n\
               for (i = 0; i < 8; i++)\n\
                 for (j = 0; j < 8; j++)\n\
                   m[i][j] = m[i][j] + 1.0;\n\
               return 0;\n\
             }",
        );
        let e = entry(&f, "main");
        let q = HliQuery::new(e);
        let line6 = e.line_table.entry(6).unwrap();
        let ld = line6.items[0].id;
        let st = line6.items[1].id;
        assert_eq!(q.get_equiv_acc(ld, st), EquivAcc::Definite);
        assert!(
            q.get_lcdd(ld, st).is_none(),
            "m[i][j] never carried:\n{}",
            dump_entry(e)
        );
        assert!(e.validate().is_empty());
    }

    #[test]
    fn stencil_carried_dependence_found() {
        let f = hli_of(
            "double v[100];\n\
             int main() {\n\
               int i;\n\
               for (i = 1; i < 99; i++) v[i] = v[i-1] + v[i+1];\n\
               return 0;\n\
             }",
        );
        let e = entry(&f, "main");
        let q = HliQuery::new(e);
        let line4 = e.line_table.entry(4).unwrap();
        // loads v[i-1], v[i+1]; store v[i].
        let vm1 = line4.items[0].id;
        let vp1 = line4.items[1].id;
        let vst = line4.items[2].id;
        // Same-iteration: all distinct.
        assert_eq!(q.get_equiv_acc(vm1, vst), EquivAcc::None);
        assert_eq!(q.get_equiv_acc(vp1, vst), EquivAcc::None);
        // Carried: store v[i] reaches load v[i-1] one iteration later.
        let arc = q.get_lcdd(vst, vm1).expect("carried arc");
        assert_eq!(arc.distance, Distance::Const(1));
        assert!(e.validate().is_empty());
    }

    #[test]
    fn walking_pointer_goes_conservative() {
        let f = hli_of(
            "int a[16];\n\
             int main() {\n\
               int *p; int i;\n\
               p = a;\n\
               for (i = 0; i < 16; i++) { *p = i; p++; }\n\
               return a[3];\n\
             }",
        );
        let e = entry(&f, "main");
        assert!(e.validate().is_empty(), "{:?}", e.validate());
        // The deref class must be a vague pointer class with a self arc.
        let loop_region = e.region(RegionId(1));
        assert!(
            loop_region.lcdd_table.iter().any(|d| d.distance == Distance::Unknown),
            "{}",
            dump_entry(e)
        );
    }

    #[test]
    fn disabled_analysis_degrades_precision() {
        let src = "int a[10];\n\
             int main() {\n\
               int i;\n\
               for (i = 1; i < 10; i++) a[i] = a[i-1];\n\
               return 0;\n\
             }";
        let (p, s) = compile_to_ast(src).unwrap();
        let precise = generate_hli(&p, &s);
        let blunt = crate::generate_hli_with(
            &p,
            &s,
            FrontendOptions { array_analysis: false, ..Default::default() },
        );
        let ep = entry(&precise, "main");
        let eb = entry(&blunt, "main");
        let qp = HliQuery::new(ep);
        let qb = HliQuery::new(eb);
        let ids = |e: &HliEntry| {
            let l = e.line_table.entry(4).unwrap();
            (l.items[0].id, l.items[1].id)
        };
        let (ld_p, st_p) = ids(ep);
        let (ld_b, st_b) = ids(eb);
        assert_eq!(qp.get_equiv_acc(ld_p, st_p), EquivAcc::None, "precise disambiguates");
        assert_eq!(qb.get_equiv_acc(ld_b, st_b), EquivAcc::Maybe, "blunt does not");
    }

    #[test]
    fn serialized_size_reasonable() {
        let f = hli_of(
            "double u[32][32]; double v[32][32];\n\
             int main() {\n\
               int i; int j;\n\
               for (i = 1; i < 31; i++)\n\
                 for (j = 1; j < 31; j++)\n\
                   u[i][j] = v[i][j] + v[i-1][j] + v[i+1][j];\n\
               return 0;\n\
             }",
        );
        let bytes = hli_core::serialize::encode_file(&f, Default::default());
        assert!(bytes.len() > 50, "non-trivial HLI");
        assert!(bytes.len() < 4096, "stays compact: {} bytes", bytes.len());
        let back = hli_core::serialize::decode_file(&bytes, Default::default()).unwrap();
        assert_eq!(back.entries.len(), f.entries.len());
    }
}
