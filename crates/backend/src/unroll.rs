//! Loop unrolling with the Figure-6 HLI update.
//!
//! Section 3.2.3: *"In loop unrolling, the loop body is duplicated and
//! preconditioning code is generated. The entire HLI components (tables)
//! must be reconstructed using old information."* This pass unrolls
//! canonical constant-trip innermost loops in the RTL, then drives
//! [`hli_core::maintain::unroll_loop`] and binds every duplicated memory
//! reference to its duplicated item — keeping the mapping precise so the
//! scheduler can still disambiguate inside the unrolled body.
//!
//! Scope (documented in DESIGN.md): loops must be canonical `for`s with
//! compile-time constant trip counts, no nested loops, and no
//! `break`/`continue`. The remainder ("preconditioning") iterations run in
//! a copy of the original loop placed after the unrolled loop.

use crate::mapping::HliMap;
use crate::rtl::{CmpOp, Insn, InsnId, Label, Op, RtlFunc};
use hli_core::maintain;
use hli_core::{HliEntry, RegionKind};
use hli_lir::{MachineBackend, OpClass};
use std::collections::HashMap;

/// Metadata the lowerer records per canonical constant-trip loop.
#[derive(Debug, Clone, Copy)]
pub struct LoopMeta {
    pub l_cond: Label,
    pub l_step: Label,
    pub l_exit: Label,
    /// Register holding the induction variable.
    pub ivar_reg: u32,
    pub lower: i64,
    pub step: i64,
    pub trip: i64,
    /// Source line of the loop header (joins to the HLI region).
    pub header_line: u32,
}

/// Result of unrolling one function.
#[derive(Debug, Clone)]
pub struct UnrollResult {
    pub func: RtlFunc,
    /// Loops actually unrolled.
    pub unrolled: usize,
    /// Loops skipped (non-canonical shape, nested loops, too short...).
    pub skipped: usize,
}

/// Unroll every eligible loop of `f` by `factor`. `metas` comes from the
/// lowerer ([`crate::lower::lower_with_loops`]); HLI maintenance and
/// mapping updates are applied when `hli` is given.
pub fn unroll_function(
    f: &RtlFunc,
    metas: &[LoopMeta],
    factor: u32,
    mut hli: Option<(&mut HliEntry, &mut HliMap)>,
    mach: &dyn MachineBackend,
) -> UnrollResult {
    assert!(factor >= 2, "unroll factor must be >= 2");
    let mut func = f.clone();
    let mut unrolled = 0;
    let mut skipped = 0;
    // Process loops one at a time; indices shift, so re-locate each meta
    // against the current instruction vector.
    let prov = hli_obs::provenance::active();
    for meta in metas {
        let ok = unroll_one(&mut func, meta, factor, &mut hli).is_ok();
        if ok {
            unrolled += 1;
        } else {
            skipped += 1;
        }
        // Unroll legality is structural (shape + trip count), so the record
        // cites no queries; the paired `maintain.unroll_loop` record carries
        // the region whose tables were rebuilt (Figure 6).
        if let Some(sink) = prov.as_deref() {
            let verdict = if ok {
                hli_obs::Verdict::Applied
            } else {
                hli_obs::Verdict::Blocked {
                    reason: format!("non-canonical shape or trip < {factor}"),
                }
            };
            // Estimated benefit: the trip count is known here, so count
            // the loop-overhead (condition test + backward branch, at the
            // active machine's ALU and branch latencies) of the iterations
            // the unrolled body absorbs. The remainder loop keeps its own
            // overhead.
            let est_cycles = if ok {
                let trip = meta.trip as u64;
                let u = factor as u64;
                let kept_iters = trip / u + trip % u;
                let per_iter =
                    mach.class_latency(OpClass::IAlu) + mach.class_latency(OpClass::Branch);
                (trip - kept_iters) * per_iter
            } else {
                0
            };
            // One causal span per examined loop.
            let span = hli_obs::provenance::next_span_id();
            sink.record(hli_obs::DecisionRecord {
                pass: "unroll.loop".into(),
                function: func.name.clone(),
                region_id: None,
                order: meta.header_line,
                span,
                est_cycles,
                hli_queries: Vec::new(),
                verdict,
            });
        }
    }
    let reg = hli_obs::metrics::cur();
    reg.counter("backend.unroll.loops_unrolled").add(unrolled as u64);
    reg.counter("backend.unroll.loops_skipped").add(skipped as u64);
    UnrollResult { func, unrolled, skipped }
}

/// Allocator helpers living on the function being rewritten.
struct Alloc {
    next_insn: InsnId,
    next_label: Label,
}

impl Alloc {
    fn insn(&mut self) -> InsnId {
        let i = self.next_insn;
        self.next_insn += 1;
        i
    }

    fn label(&mut self) -> Label {
        let l = self.next_label;
        self.next_label += 1;
        l
    }
}

fn unroll_one(
    func: &mut RtlFunc,
    meta: &LoopMeta,
    factor: u32,
    hli: &mut Option<(&mut HliEntry, &mut HliMap)>,
) -> Result<(), ()> {
    let u = factor as i64;
    if meta.trip < u {
        return Err(());
    }
    let labels = func.label_index();
    let (&cond_at, &step_at, &exit_at) = match (
        labels.get(&meta.l_cond),
        labels.get(&meta.l_step),
        labels.get(&meta.l_exit),
    ) {
        (Some(a), Some(b), Some(c)) => (a, b, c),
        _ => return Err(()),
    };
    if !(cond_at < step_at && step_at < exit_at) {
        return Err(());
    }
    // Expected shape:
    //   cond_at:  Label(l_cond)
    //   cond_at+1..body_start: cond computation ending in Branch(_,_,_,l_exit)
    //   body_start..step_at: body
    //   step_at: Label(l_step); step insns; Jump(l_cond)
    //   exit_at: Label(l_exit)
    let branch_at = (cond_at + 1..step_at)
        .find(|&i| matches!(func.insns[i].op, Op::Branch(_, _, _, l) if l == meta.l_exit))
        .ok_or(())?;
    let body = branch_at + 1..step_at;
    let step_range = step_at + 1..exit_at - 1; // excludes Label and Jump
    if !matches!(func.insns[exit_at - 1].op, Op::Jump(l) if l == meta.l_cond) {
        return Err(());
    }
    // Reject nested loops / break / continue: no backward targets within
    // the body and no jumps out of it other than forward within body.
    for i in body.clone() {
        if let Op::Jump(l) | Op::Branch(_, _, _, l) = func.insns[i].op {
            match labels.get(&l) {
                Some(&t) if t > i && t < step_at => {} // forward, internal
                _ => return Err(()),
            }
        }
        if matches!(func.insns[i].op, Op::Ret(_)) {
            return Err(());
        }
    }

    let mut alloc = Alloc {
        next_insn: func.insns.iter().map(|i| i.id + 1).max().unwrap_or(0),
        next_label: labels.keys().copied().max().map(|l| l + 1).unwrap_or(0),
    };

    let m = meta.trip / u; // full unrolled iterations
    let r = meta.trip % u; // remainder iterations
    let main_bound = meta.lower + m * u * meta.step;
    let full_bound = meta.lower + meta.trip * meta.step;

    // HLI maintenance first (it tells us the new item ids).
    let mut item_maps: Option<hli_core::maintain::UnrollMaps> = None;
    if let Some((entry, _)) = hli.as_mut() {
        let region = entry
            .regions
            .iter()
            .find(|rg| matches!(rg.kind, RegionKind::Loop { header_line } if header_line == meta.header_line))
            .map(|rg| rg.id)
            .ok_or(())?;
        let maps = maintain::unroll_loop(entry, region, factor, r > 0).map_err(|_| ())?;
        item_maps = Some(maps);
    }

    // Build the replacement instruction sequence for [cond_at ..= exit_at].
    let mut seq: Vec<Insn> = Vec::new();
    let l_pre_cond = alloc.label();
    let orig_body: Vec<Insn> = func.insns[body.clone()].to_vec();
    let orig_step: Vec<Insn> = func.insns[step_range.clone()].to_vec();
    let cond_line = func.insns[cond_at].line;

    // Main unrolled loop: Label(l_cond); t = main_bound; branch out when
    // done — to the remainder loop when there is one, else straight out.
    let after_main = if r > 0 { l_pre_cond } else { meta.l_exit };
    seq.push(Insn {
        id: func.insns[cond_at].id,
        line: cond_line,
        op: Op::Label(meta.l_cond),
    });
    {
        let t = func.num_regs;
        func.num_regs += 1;
        seq.push(Insn {
            id: alloc.insn(),
            line: cond_line,
            op: Op::LiI(t, main_bound),
        });
        seq.push(Insn {
            id: alloc.insn(),
            line: cond_line,
            op: Op::Branch(CmpOp::Ge, meta.ivar_reg, t, after_main),
        });
    }
    // Copy 0 = original body + step (original ids keep their mappings).
    seq.extend(orig_body.iter().cloned());
    seq.extend(orig_step.iter().cloned());
    // Copies 1..u: fresh ids, fresh internal labels.
    for k in 1..factor {
        let copy = clone_insns(&orig_body, &mut alloc, func);
        // Bind the copies' memory refs to the duplicated items.
        if let (Some((_, map)), Some(maps)) = (hli.as_mut(), item_maps.as_ref()) {
            for (orig, new) in orig_body.iter().zip(&copy) {
                if let Some(item) = map.item_of(orig.id) {
                    if let Some(&copy_item) = maps.body_items[(k - 1) as usize].get(&item) {
                        map.bind(new.id, copy_item);
                    }
                }
            }
        }
        seq.extend(copy);
        seq.extend(clone_insns(&orig_step, &mut alloc, func));
    }
    seq.push(Insn { id: alloc.insn(), line: cond_line, op: Op::Jump(meta.l_cond) });

    // Preconditioning (remainder) loop: original structure, full bound.
    if r > 0 {
        seq.push(Insn { id: alloc.insn(), line: cond_line, op: Op::Label(l_pre_cond) });
        let t = func.num_regs;
        func.num_regs += 1;
        seq.push(Insn {
            id: alloc.insn(),
            line: cond_line,
            op: Op::LiI(t, full_bound),
        });
        seq.push(Insn {
            id: alloc.insn(),
            line: cond_line,
            op: Op::Branch(CmpOp::Ge, meta.ivar_reg, t, meta.l_exit),
        });
        let pre_body = clone_insns(&orig_body, &mut alloc, func);
        if let (Some((_, map)), Some(maps)) = (hli.as_mut(), item_maps.as_ref()) {
            for (orig, new) in orig_body.iter().zip(&pre_body) {
                if let Some(item) = map.item_of(orig.id) {
                    if let Some(&pre_item) = maps.precond_items.get(&item) {
                        map.bind(new.id, pre_item);
                    }
                }
            }
        }
        seq.extend(pre_body);
        seq.extend(clone_insns(&orig_step, &mut alloc, func));
        seq.push(Insn { id: alloc.insn(), line: cond_line, op: Op::Jump(l_pre_cond) });
    }
    seq.push(Insn {
        id: func.insns[exit_at].id,
        line: func.insns[exit_at].line,
        op: Op::Label(meta.l_exit),
    });

    // Splice: everything before l_cond + seq + everything after l_exit,
    // dropping the original cond/body/step instructions.
    let mut insns = Vec::with_capacity(func.insns.len() + seq.len());
    insns.extend(func.insns[..cond_at].iter().cloned());
    insns.extend(seq);
    insns.extend(func.insns[exit_at + 1..].iter().cloned());
    func.insns = insns;
    Ok(())
}

/// Clone a run of instructions with fresh ids and renamed internal labels.
fn clone_insns(src: &[Insn], alloc: &mut Alloc, _f: &RtlFunc) -> Vec<Insn> {
    // Internal labels (if/else shapes) must be unique per copy.
    let mut label_map: HashMap<Label, Label> = HashMap::new();
    for insn in src {
        if let Op::Label(l) = insn.op {
            label_map.insert(l, alloc.label());
        }
    }
    src.iter()
        .map(|insn| {
            let mut op = insn.op.clone();
            match &mut op {
                Op::Label(l) | Op::Jump(l) | Op::Branch(_, _, _, l) => {
                    if let Some(&n) = label_map.get(l) {
                        *l = n;
                    }
                }
                _ => {}
            }
            Insn { id: alloc.insn(), line: insn.line, op }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lower::lower_with_loops;
    use crate::mapping::map_function;
    use hli_frontend::generate_hli;
    use hli_lang::compile_to_ast;

    fn unrolled(
        src: &str,
        fname: &str,
        factor: u32,
        with_hli: bool,
    ) -> (UnrollResult, Option<(HliEntry, HliMap)>) {
        let (p, s) = compile_to_ast(src).unwrap();
        let (prog, loops) = lower_with_loops(&p, &s);
        let f = prog.func(fname).unwrap();
        let metas = &loops[&f.name];
        if with_hli {
            let hli = generate_hli(&p, &s);
            let mut entry = hli.entry(fname).unwrap().clone();
            let mut map = map_function(f, &entry);
            let r = unroll_function(
                f,
                metas,
                factor,
                Some((&mut entry, &mut map)),
                &hli_lir::TableBackend::scalar(),
            );
            (r, Some((entry, map)))
        } else {
            (
                unroll_function(f, metas, factor, None, &hli_lir::TableBackend::scalar()),
                None,
            )
        }
    }

    const STREAM: &str = "int a[16];\nint main() {\n int i;\n for (i = 0; i < 16; i++)\n  a[i] = i;\n return a[5];\n}";

    #[test]
    fn divisible_trip_unrolls_without_fuss() {
        let (r, _) = unrolled(STREAM, "main", 4, false);
        assert_eq!(r.unrolled, 1);
        assert_eq!(r.skipped, 0);
        // Four store copies in the unrolled body; trip divides evenly so
        // there is no remainder loop.
        let stores = r.func.insns.iter().filter(|i| i.op.is_store()).count();
        assert_eq!(stores, 4, "4 main copies, no remainder");
    }

    #[test]
    fn remainder_loop_generated_when_indivisible() {
        let src = "int a[10];\nint main() {\n int i;\n for (i = 0; i < 10; i++)\n  a[i] = i;\n return a[5];\n}";
        let (r, _) = unrolled(src, "main", 4, false);
        assert_eq!(r.unrolled, 1);
        let labels = r.func.label_index();
        assert!(labels.len() >= 3, "main cond, pre cond, exit: {labels:?}");
        // 4 main copies + 1 remainder copy of the store.
        let stores = r.func.insns.iter().filter(|i| i.op.is_store()).count();
        assert_eq!(stores, 5);
    }

    #[test]
    fn too_short_loops_skip() {
        let src =
            "int a[3];\nint main() {\n int i;\n for (i = 0; i < 3; i++) a[i] = i;\n return 0;\n}";
        let (r, _) = unrolled(src, "main", 4, false);
        assert_eq!(r.unrolled, 0);
        assert_eq!(r.skipped, 1);
    }

    #[test]
    fn nested_loops_skip_outer_unroll_inner() {
        let src = "int a[8];\nint main() {\n int i; int j;\n for (i = 0; i < 8; i++)\n  for (j = 0; j < 8; j++)\n   a[j] = i + j;\n return 0;\n}";
        let (r, _) = unrolled(src, "main", 2, false);
        // The inner loop unrolls; the outer is rejected (contains a loop).
        assert_eq!(r.unrolled, 1);
        assert_eq!(r.skipped, 1);
    }

    #[test]
    fn hli_maintenance_keeps_entry_valid_and_mapped() {
        let (r, hm) = unrolled(STREAM, "main", 2, true);
        assert_eq!(r.unrolled, 1);
        let (entry, map) = hm.unwrap();
        let errs = entry.validate();
        assert!(errs.is_empty(), "{errs:?}");
        // Every store in the unrolled code maps to an item.
        for insn in r.func.insns.iter().filter(|i| i.op.is_store()) {
            assert!(
                map.item_of(insn.id).is_some(),
                "store {} unmapped after unroll",
                insn.id
            );
        }
    }

    #[test]
    fn unrolled_stencil_keeps_lcdd_info() {
        let src = "int a[16];\nint main() {\n int i;\n for (i = 1; i < 16; i++)\n  a[i] = a[i-1] + 1;\n return a[15];\n}";
        let (r, hm) = unrolled(src, "main", 2, true);
        assert_eq!(r.unrolled, 1);
        let (entry, map) = hm.unwrap();
        assert!(entry.validate().is_empty());
        // Figure 6: within an unrolled iteration, copy 0's store a[i]
        // feeds copy 1's load a[i-1] — the remapped distance-0 arc became
        // an alias entry, so a same-iteration query must say "maybe".
        let q = hli_core::query::HliQuery::new(&entry);
        let stores: Vec<_> = r
            .func
            .insns
            .iter()
            .filter(|i| i.op.is_store())
            .filter_map(|i| map.item_of(i.id))
            .collect();
        let loads: Vec<_> = r
            .func
            .insns
            .iter()
            .filter(|i| i.op.is_load())
            .filter_map(|i| map.item_of(i.id))
            .collect();
        assert!(stores.len() >= 2 && loads.len() >= 2);
        let cross = q.get_equiv_acc(stores[0], loads[1]);
        assert!(
            cross.may_overlap(),
            "copy-0 store vs copy-1 load must stay ordered, got {cross:?}"
        );
    }

    #[test]
    fn while_loops_are_not_candidates() {
        let src =
            "int g;\nint main() {\n int i; i = 0;\n while (i < 8) { g += i; i++; }\n return g;\n}";
        let (p, s) = compile_to_ast(src).unwrap();
        let (prog, loops) = lower_with_loops(&p, &s);
        let f = prog.func("main").unwrap();
        assert!(loops[&f.name].is_empty(), "only canonical for loops carry metadata");
    }
}
