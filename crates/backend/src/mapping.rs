//! Importing and mapping HLI into the back-end (Section 3.2.1).
//!
//! *"Mapping the items listed in the line table onto memory references in
//! the GCC RTL chain is straightforward since the ITEMGEN phase in the
//! front-end follows the GCC rules for memory reference generation. A hash
//! table is constructed as the mapping procedure proceeds."*
//!
//! For every source line we pair the k-th item of the line's item list
//! with the k-th memory-reference/call instruction carrying that line.
//! Type mismatches or count mismatches leave the excess *unmapped* — the
//! paper's *unknown* dependence type — which downstream consumers treat
//! conservatively. Our RTL has at most one memory reference per
//! instruction, so the paper's `(IRInsn, RefSpec)` pair degenerates to the
//! instruction id.

use crate::rtl::{InsnId, Op, RtlFunc};
use hli_core::image::EntryRef;
use hli_core::{HliEntry, ItemEntry, ItemId, ItemType};
use std::collections::{HashMap, HashSet};

/// The bidirectional item ↔ instruction mapping for one function.
#[derive(Debug, Clone, Default)]
pub struct HliMap {
    pub insn_to_item: HashMap<InsnId, ItemId>,
    pub item_to_insn: HashMap<ItemId, InsnId>,
    /// Instructions with a memory reference (or call) that matched no item.
    pub unmapped_insns: Vec<InsnId>,
    /// Items that matched no instruction.
    pub unmapped_items: Vec<ItemId>,
}

impl HliMap {
    pub fn item_of(&self, insn: InsnId) -> Option<ItemId> {
        self.insn_to_item.get(&insn).copied()
    }

    pub fn insn_of(&self, item: ItemId) -> Option<InsnId> {
        self.item_to_insn.get(&item).copied()
    }

    /// Record that `insn` now carries `item` (maintenance after a pass
    /// generated or moved a reference).
    pub fn bind(&mut self, insn: InsnId, item: ItemId) {
        self.insn_to_item.insert(insn, item);
        self.item_to_insn.insert(item, insn);
    }

    /// Drop the binding of an item (e.g. CSE deleted the reference).
    pub fn unbind_item(&mut self, item: ItemId) {
        if let Some(insn) = self.item_to_insn.remove(&item) {
            self.insn_to_item.remove(&insn);
        }
    }
}

fn rtl_kind(op: &Op) -> Option<ItemType> {
    match op {
        Op::Load(..) => Some(ItemType::Load),
        Op::Store(..) => Some(ItemType::Store),
        Op::Call { .. } => Some(ItemType::Call),
        _ => None,
    }
}

/// Build the mapping for one function against its owned HLI entry.
pub fn map_function(f: &RtlFunc, entry: &HliEntry) -> HliMap {
    map_function_ref(f, EntryRef::Owned(entry))
}

/// Build the mapping for one function against an owned entry or a
/// zero-copy view. The line table is consumed through the flat
/// [`EntryRef::line_items`] stream (grouped back into per-line runs), so
/// a view is mapped without decoding any owned tables.
pub fn map_function_ref(f: &RtlFunc, entry: EntryRef<'_>) -> HliMap {
    let mut map = HliMap::default();
    // Group the function's memory/call instructions by line, preserving
    // chain order.
    let mut by_line: HashMap<u32, Vec<(InsnId, ItemType)>> = HashMap::new();
    for insn in &f.insns {
        if let Some(kind) = rtl_kind(&insn.op) {
            by_line.entry(insn.line).or_default().push((insn.id, kind));
        }
    }
    // Re-group the flat (line, item) stream into the per-line runs the
    // matching below consumes. Line entries left empty by maintenance
    // vanish here, which is behavior-preserving: an empty run binds
    // nothing and leaves every instruction of its line unmapped — exactly
    // what the "no line-table entry" fallthrough does.
    let mut line_groups: Vec<(u32, Vec<ItemEntry>)> = Vec::new();
    for (line, it) in entry.line_items() {
        match line_groups.last_mut() {
            Some((l, items)) if *l == line => items.push(it),
            _ => line_groups.push((line, vec![it])),
        }
    }
    let mut seen_lines: HashSet<u32> = HashSet::new();
    for (line, items) in &line_groups {
        seen_lines.insert(*line);
        let insns = by_line.get(line).map(|v| v.as_slice()).unwrap_or(&[]);
        let n = items.len().min(insns.len());
        for k in 0..n {
            let item = &items[k];
            let (insn, kind) = insns[k];
            if item.ty == kind {
                map.bind(insn, item.id);
            } else {
                // Order drift: the rest of this line cannot be trusted.
                map.unmapped_items.extend(items[k..].iter().map(|i| i.id));
                map.unmapped_insns.extend(insns[k..].iter().map(|(id, _)| *id));
                break;
            }
        }
        if items.len() > n {
            map.unmapped_items.extend(items[n..].iter().map(|i| i.id));
        }
        if insns.len() > n {
            map.unmapped_insns.extend(insns[n..].iter().map(|(id, _)| *id));
        }
    }
    // Lines with references but no line-table entry at all.
    for (line, insns) in &by_line {
        if !seen_lines.contains(line) {
            map.unmapped_insns.extend(insns.iter().map(|(id, _)| *id));
        }
    }
    // An item bound twice would be a bug; dedupe unmapped lists for
    // deterministic output.
    map.unmapped_insns.sort_unstable();
    map.unmapped_insns.dedup();
    map.unmapped_items.sort_unstable();
    map.unmapped_items.dedup();
    // Mapping quality: bound pairs are the paper's "hash hits"; the
    // unmapped lists are what forces conservative (Unknown) answers.
    let reg = hli_obs::metrics::cur();
    reg.counter("backend.map.bound").add(map.insn_to_item.len() as u64);
    reg.counter("backend.map.unmapped_insns").add(map.unmapped_insns.len() as u64);
    reg.counter("backend.map.unmapped_items").add(map.unmapped_items.len() as u64);
    map
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lower::lower_program;
    use hli_frontend::generate_hli;
    use hli_lang::compile_to_ast;

    fn mapped(src: &str, func: &str) -> (HliMap, RtlFunc, HliEntry) {
        let (p, s) = compile_to_ast(src).unwrap();
        let hli = generate_hli(&p, &s);
        let prog = lower_program(&p, &s);
        let f = prog.func(func).unwrap().clone();
        let e = hli.entry(func).unwrap().clone();
        let m = map_function(&f, &e);
        (m, f, e)
    }

    #[test]
    fn full_program_maps_completely() {
        let (m, f, e) = mapped(
            "int a[10]; int g;\nint sum(int *p, int n) { int i; int s; s = 0; for (i = 0; i < n; i++) s += p[i]; return s; }\nint main() {\n int i;\n for (i = 0; i < 10; i++) a[i] = g + i;\n return sum(a, 10);\n}",
            "main",
        );
        assert!(m.unmapped_insns.is_empty(), "unmapped insns: {:?}", m.unmapped_insns);
        assert!(m.unmapped_items.is_empty(), "unmapped items: {:?}", m.unmapped_items);
        // Every memory/call instruction is bound.
        let expected = f.insns.iter().filter(|i| rtl_kind(&i.op).is_some()).count();
        assert_eq!(m.insn_to_item.len(), expected);
        assert_eq!(m.insn_to_item.len(), e.line_table.item_count());
    }

    #[test]
    fn mapping_is_bijective() {
        let (m, _, _) =
            mapped("int g; int h;\nint main() { g = h; h = g + h; return g * h; }", "main");
        assert_eq!(m.insn_to_item.len(), m.item_to_insn.len());
        for (insn, item) in &m.insn_to_item {
            assert_eq!(m.item_to_insn[item], *insn);
        }
    }

    #[test]
    fn types_match_between_sides() {
        let (m, f, e) = mapped(
            "int a[4];\nint main() { a[0] = 1; a[1] = a[0] + 1; return a[1]; }",
            "main",
        );
        for (insn_id, item_id) in &m.insn_to_item {
            let insn = f.insns.iter().find(|i| i.id == *insn_id).unwrap();
            let (_, ty) = e.line_table.find(*item_id).unwrap();
            assert_eq!(rtl_kind(&insn.op), Some(ty));
        }
    }

    #[test]
    fn multiline_lvalue_expressions_still_map() {
        // The subscript sits on a different line than the assignment; the
        // memory reference must carry the assignment's line (regression:
        // cur_line drift broke the (line, order) mapping).
        let (m, _, _) = mapped(
            "int a[10]; int g;\nint main() {\n a[\n  g\n ] = a[\n  g + 1\n ] + 2;\n return a[0];\n}",
            "main",
        );
        assert!(m.unmapped_insns.is_empty(), "{:?}", m.unmapped_insns);
        assert!(m.unmapped_items.is_empty(), "{:?}", m.unmapped_items);
    }

    #[test]
    fn extra_items_degrade_to_unmapped() {
        let (_, f, mut e) = mapped("int g;\nint main() { g = 1; return g; }", "main");
        // Forge an extra item on line 2.
        let id = e.fresh_id();
        e.line_table.push_item(2, hli_core::ItemEntry { id, ty: ItemType::Load });
        let m = map_function(&f, &e);
        assert!(m.unmapped_items.contains(&id));
        // The legitimate prefix still mapped.
        assert!(!m.insn_to_item.is_empty());
    }

    #[test]
    fn type_drift_stops_line_mapping() {
        let (_, f, mut e) = mapped("int g; int h;\nint main() { g = h; return g; }", "main");
        // Swap the first line-2 item's type to Store (wrong: it's a load).
        let le = e.line_table.lines.iter_mut().find(|l| l.line == 2).unwrap();
        le.items[0].ty = ItemType::Store;
        let m = map_function(&f, &e);
        assert!(m.insn_to_item.is_empty() || !m.unmapped_insns.is_empty());
        assert!(!m.unmapped_items.is_empty());
    }

    #[test]
    fn unbind_and_rebind() {
        let (mut m, _, _) = mapped("int g;\nint main() { g = 2; return g; }", "main");
        let (&insn, &item) = m.insn_to_item.iter().next().unwrap();
        m.unbind_item(item);
        assert!(m.item_of(insn).is_none());
        m.bind(insn, item);
        assert_eq!(m.item_of(insn), Some(item));
    }
}
