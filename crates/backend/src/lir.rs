//! RTL → canonical LIR lowering.
//!
//! The LIR ([`hli_lir::LirFunc`]) is the pre-resolved view of a function
//! the scheduler and the benefit estimators price ops through: one
//! [`hli_lir::LirOp`] per RTL instruction, index-aligned with
//! `RtlFunc::insns`, carrying the opcode class, the operand kinds and the
//! provenance hooks (instruction id, source line). The lowering is a pure
//! per-instruction map — deterministic by construction, so parallel
//! workers lowering the same function agree byte-for-byte.
//!
//! [`op_class`] is the *only* place an RTL `Op` is classified for costing;
//! the machine models classify dynamic events with
//! [`hli_lir::DynKind::class`], and the latency-agreement test in
//! `hli-machine` pins that the two classifications land every op in the
//! same priced class.

use crate::rtl::{FBinOp, IBinOp, Op, RtlFunc};
use hli_lir::{LirFunc, LirOp, OpClass, OperandKind};

/// The opcode class a machine backend prices `op` at.
pub fn op_class(op: &Op) -> OpClass {
    match op {
        Op::Load(..) => OpClass::Load,
        Op::Store(..) => OpClass::Store,
        Op::IBin(IBinOp::Mul, ..) | Op::IBinI(IBinOp::Mul, ..) => OpClass::IMul,
        Op::IBin(IBinOp::Div | IBinOp::Rem, ..) | Op::IBinI(IBinOp::Div | IBinOp::Rem, ..) => {
            OpClass::IDiv
        }
        Op::FBin(FBinOp::Add | FBinOp::Sub, ..) => OpClass::FAdd,
        Op::FBin(FBinOp::Mul, ..) => OpClass::FMul,
        Op::FBin(FBinOp::Div, ..) => OpClass::FDiv,
        // FP compares and int<->double conversions share the FP adder,
        // matching the executor's DynKind mapping.
        Op::FCmp(..) | Op::CvtIF(..) | Op::CvtFI(..) => OpClass::FAdd,
        Op::Call { .. } => OpClass::Call,
        Op::Ret(..) => OpClass::Ret,
        Op::Jump(..) | Op::Branch(..) => OpClass::Branch,
        _ => OpClass::IAlu,
    }
}

/// Operand kinds of `op`: the destination kind and up to three sources.
fn operands(op: &Op) -> (OperandKind, [OperandKind; 3], u8) {
    use OperandKind as K;
    match op {
        Op::LiI(..) | Op::LiF(..) => (K::Reg, [K::Imm, K::None, K::None], 1),
        Op::Move(..) | Op::CvtIF(..) | Op::CvtFI(..) => (K::Reg, [K::Reg, K::None, K::None], 1),
        Op::IBin(..) | Op::FBin(..) | Op::ICmp(..) | Op::FCmp(..) => {
            (K::Reg, [K::Reg, K::Reg, K::None], 2)
        }
        Op::IBinI(..) => (K::Reg, [K::Reg, K::Imm, K::None], 2),
        Op::La(..) => (K::Reg, [K::Sym, K::Imm, K::None], 2),
        Op::Load(..) => (K::Reg, [K::Mem, K::None, K::None], 1),
        Op::Store(..) => (K::Mem, [K::Reg, K::None, K::None], 1),
        Op::Call { dst, .. } => (
            if dst.is_some() { K::Reg } else { K::None },
            [K::Sym, K::None, K::None],
            1,
        ),
        Op::Label(..) => (K::None, [K::Label, K::None, K::None], 1),
        Op::Jump(..) => (K::None, [K::Label, K::None, K::None], 1),
        Op::Branch(..) => (K::None, [K::Reg, K::Reg, K::Label], 3),
        Op::Ret(r) => (
            K::None,
            [if r.is_some() { K::Reg } else { K::None }, K::None, K::None],
            1,
        ),
    }
}

/// Lower one function to its canonical LIR (index-aligned with
/// `f.insns`).
pub fn lir_function(f: &RtlFunc) -> LirFunc {
    let ops = f
        .insns
        .iter()
        .map(|insn| {
            let (dst, srcs, n_srcs) = operands(&insn.op);
            LirOp {
                id: insn.id,
                line: insn.line,
                class: op_class(&insn.op),
                dst,
                srcs,
                n_srcs,
            }
        })
        .collect();
    LirFunc { name: f.name.clone(), ops }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lower::lower_program;
    use hli_lang::compile_to_ast;

    #[test]
    fn lir_is_index_aligned_and_deterministic() {
        let src = "double x[8]; int g;\n\
            int main() { int i; for (i = 0; i < 8; i++) x[i] = x[i] * 2.0; return g / 3; }";
        let (p, s) = compile_to_ast(src).unwrap();
        let prog = lower_program(&p, &s);
        let f = prog.func("main").unwrap();
        let a = lir_function(f);
        let b = lir_function(f);
        assert_eq!(a.ops, b.ops, "pure map: two lowerings agree");
        assert_eq!(a.ops.len(), f.insns.len(), "one LirOp per instruction");
        for (op, insn) in a.ops.iter().zip(&f.insns) {
            assert_eq!(op.id, insn.id);
            assert_eq!(op.class, op_class(&insn.op));
        }
    }

    #[test]
    fn classes_cover_the_op_vocabulary() {
        use crate::rtl::MemRef;
        assert_eq!(op_class(&Op::Load(0, MemRef::sym(0))), OpClass::Load);
        assert_eq!(op_class(&Op::Store(MemRef::sym(0), 0)), OpClass::Store);
        assert_eq!(op_class(&Op::IBin(crate::rtl::IBinOp::Mul, 0, 1, 2)), OpClass::IMul);
        assert_eq!(op_class(&Op::IBinI(crate::rtl::IBinOp::Rem, 0, 1, 3)), OpClass::IDiv);
        assert_eq!(op_class(&Op::FBin(crate::rtl::FBinOp::Sub, 0, 1, 2)), OpClass::FAdd);
        assert_eq!(op_class(&Op::FBin(crate::rtl::FBinOp::Div, 0, 1, 2)), OpClass::FDiv);
        assert_eq!(op_class(&Op::LiI(0, 7)), OpClass::IAlu);
        assert_eq!(op_class(&Op::Ret(None)), OpClass::Ret);
        assert_eq!(op_class(&Op::Jump(3)), OpClass::Branch);
    }
}
