//! Parallel per-function back-end driver.
//!
//! The paper's on-demand import (Section 3.2.1) makes each function's trip
//! through the back-end — fetch its HLI unit, map it onto RTL, build the
//! DDG, schedule — independent of every other function's. This module
//! shards that pipeline across an [`hli_pool`] work-stealing pool, one
//! work item per function, with each item running *all* requested
//! scheduling passes back to back so a per-function [`QueryCache`] warmed
//! by the first pass serves the second.
//!
//! ## Determinism contract
//!
//! `--jobs 1` and `--jobs N` must produce byte-identical `--stats json`
//! and `--provenance-out` output. Three mechanisms enforce that:
//!
//! * every work item runs under [`hli_obs::capture`], so its metrics and
//!   provenance records land in a private shard instead of interleaving
//!   with other workers';
//! * shards are [`hli_obs::commit`]ted on the calling thread in
//!   **name-sorted function order**, independent of which worker finished
//!   when — commit renumbers each shard's locally-stamped query ids into
//!   the parent id space in that same stable order;
//! * scheduled functions are reassembled in original program order from
//!   the pool's input-order result slots.
//!
//! Since a `--jobs 1` run takes the identical capture/commit path (the
//! pool runs inline on the caller thread), equality holds by construction
//! rather than by careful auditing of every counter.
//!
//! ## Trust boundary
//!
//! Each function's HLI unit is [`vet_unit`]-verified the first time a
//! work item resolves it. A unit failing [`hli_core::verify`] is
//! **quarantined**: the function compiles with HLI disabled (the pure
//! GCC-dependence conservative path — the paper's baseline) instead of
//! aborting the compile, with `backend.quarantine.*` counters and a
//! `Blocked` provenance record explaining what was refused. Because the
//! vet runs inside the item's observability capture, quarantine output
//! obeys the same determinism contract as everything else.

use crate::ddg::{DepMode, HliSide, QueryStats};
use crate::rtl::RtlProgram;
use crate::sched::{schedule_function, SchedResult};
use hli_core::image::EntryRef;
use hli_core::QueryCache;
use hli_lir::MachineBackend;
use std::collections::HashMap;

/// Record one quarantined unit: bump the `backend.quarantine.*` counters
/// and, when a provenance sink is active, append a `Blocked` decision
/// naming the function and the first violation. Counters are resolved
/// lazily *here*, in the failure branch only, so clean compiles create no
/// `backend.quarantine.*` keys at all (keeping `--stats` snapshots and
/// their pinned baselines unchanged).
pub fn record_quarantine(function: &str, region: Option<u32>, error_count: u64, reason: &str) {
    let r = hli_obs::metrics::cur();
    r.counter("backend.quarantine.units").inc();
    r.counter("backend.quarantine.errors").add(error_count);
    if let Some(sink) = hli_obs::provenance::active() {
        sink.record(hli_obs::DecisionRecord {
            pass: "quarantine.unit".to_string(),
            function: function.to_string(),
            region_id: region,
            order: 0,
            // Quarantine happens before any decision context exists: no
            // span, no benefit estimate (span 0 is the documented "none").
            span: 0,
            est_cycles: 0,
            hli_queries: Vec::new(),
            verdict: hli_obs::Verdict::Blocked { reason: reason.to_string() },
        });
    }
}

/// The import trust boundary (Section 3.2.3's hazard, made checkable):
/// verify a unit's tables before the back-end trusts any answer derived
/// from them. Returns `true` when the unit is safe to attach; on failure
/// records a quarantine ([`record_quarantine`]) and returns `false`, and
/// the caller must fall back to the pure GCC-dependence path — the
/// paper's no-HLI baseline — for that unit.
///
/// Zero-copy units take the same gate: a view is materialized into a
/// transient owned entry, semantically verified, and discarded — so
/// `hli_core::verify` stays the single trust boundary for blindly mapped
/// image bytes, at the cost of one short-lived decode per unit (never
/// all units resident at once, which is where the zero-copy RSS win
/// comes from).
pub fn vet_unit(function: &str, entry: EntryRef<'_>) -> bool {
    let errs = match entry {
        EntryRef::Owned(e) => e.verify(),
        EntryRef::View(_) => entry.materialize().verify(),
    };
    if errs.is_empty() {
        return true;
    }
    let first = &errs[0];
    record_quarantine(
        function,
        first.region.map(|r| r.0),
        errs.len() as u64,
        &first.to_string(),
    );
    false
}

/// One scheduling pass the driver should run over every function.
pub struct PassSpec<'c> {
    /// Dependence-combination mode for this pass.
    pub mode: DepMode,
    /// Per-function memo caches; functions missing from the map (or all of
    /// them, when `None`) get a throwaway cache. Passing the *same* map to
    /// two passes shares memos between them, the harness's
    /// "shared cache" configuration.
    pub caches: Option<&'c HashMap<String, QueryCache>>,
}

/// Run every pass in `passes` over every function of `prog`, fanning the
/// functions out over `jobs` pool workers (`0` = one per CPU, `1` =
/// inline sequential). Returns one `(scheduled program, total stats)` per
/// pass, functions in original program order.
///
/// `lookup` resolves a function's HLI entry and is called once per pass
/// per function — exactly the sequential driver's access pattern, so
/// `hli.reader.{units_decoded,reused}` counts are unchanged. It runs on
/// pool threads and must be `Sync`; an eagerly-decoded
/// [`hli_core::HliFile`] and a lazy [`hli_core::HliReader`] qualify
/// (wrap with [`EntryRef::Owned`]), as does a zero-copy
/// [`hli_core::HliImage`] (`img.get_ref(n).ok().flatten()` — a unit
/// whose bytes fail structural validation resolves to `None`, the same
/// conservative no-HLI path a quarantined unit takes).
pub fn schedule_program_passes<'h>(
    prog: &RtlProgram,
    lookup: &(dyn Fn(&str) -> Option<EntryRef<'h>> + Sync),
    passes: &[PassSpec<'_>],
    mach: &dyn MachineBackend,
    jobs: usize,
) -> Vec<(RtlProgram, QueryStats)> {
    let _t = hli_obs::phase::timed("backend.schedule");
    // Probed on the caller's thread: workers cannot see a thread-scoped
    // sink/tracer, and the verdict must not depend on item placement.
    let obs_cfg = hli_obs::CaptureCfg::from_env();
    let results = hli_pool::run(jobs, &prog.funcs, |_w, f| {
        hli_obs::capture_cfg(obs_cfg, || {
            // Trust boundary: the unit is verified once per work item, at
            // the first pass's lookup (memoized so later passes neither
            // re-verify nor re-record the quarantine). The quarantine
            // counters and provenance land in this item's capture shard,
            // so they commit in the same name-sorted order as everything
            // else — byte-identical across `--jobs` values.
            let mut vetted: Option<bool> = None;
            passes
                .iter()
                .map(|pass| {
                    let entry = lookup(&f.name)
                        .filter(|e| *vetted.get_or_insert_with(|| vet_unit(&f.name, *e)));
                    match entry {
                        Some(e) => {
                            let fresh;
                            let cache = match pass.caches.and_then(|c| c.get(&f.name)) {
                                Some(c) => c,
                                None => {
                                    fresh = QueryCache::new();
                                    &fresh
                                }
                            };
                            let q = cache.attach_ref(e);
                            let map = crate::mapping::map_function_ref(f, e);
                            let side = HliSide { query: &q, map: &map };
                            schedule_function(f, Some(&side), pass.mode, mach)
                        }
                        None => schedule_function(f, None, DepMode::GccOnly, mach),
                    }
                })
                .collect::<Vec<SchedResult>>()
        })
    });

    // Split results from their observability shards, then commit the
    // shards in name-sorted function order — the stable order that makes
    // provenance ids and record order identical across job counts.
    let mut per_func: Vec<std::vec::IntoIter<SchedResult>> = Vec::with_capacity(results.len());
    let mut shards: Vec<Option<hli_obs::ObsShard>> = Vec::with_capacity(results.len());
    for (rs, shard) in results {
        per_func.push(rs.into_iter());
        shards.push(Some(shard));
    }
    let mut order: Vec<usize> = (0..shards.len()).collect();
    order.sort_by(|&a, &b| prog.funcs[a].name.cmp(&prog.funcs[b].name));
    for i in order {
        hli_obs::commit(shards[i].take().unwrap());
    }

    // Reassemble one program + stats total per pass, functions in
    // original program order.
    passes
        .iter()
        .map(|_| {
            let mut out = prog.clone();
            let mut total = QueryStats::default();
            for (f, rs) in out.funcs.iter_mut().zip(per_func.iter_mut()) {
                let r = rs.next().expect("one SchedResult per pass per function");
                total.add(&r.stats);
                *f = r.func;
            }
            (out, total)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lower::lower_program;
    use hli_frontend::generate_hli;
    use hli_lang::compile_to_ast;
    use hli_obs::{metrics, provenance, MetricsRegistry, ProvenanceSink};
    use std::sync::atomic::AtomicU64;
    use std::sync::Arc;

    const SRC: &str = "int a[64]; int b[64]; int g;\n\
        void f1(int n) { int i; for (i = 0; i < n; i++) a[i] = b[i] + g; }\n\
        void f2(int n) { int i; for (i = 0; i < n; i++) b[i] = a[i] * 2; }\n\
        void f3(int n) { int i; for (i = 0; i < n; i++) g += a[i]; }\n\
        int main() { f1(32); f2(32); f3(32); return g; }";

    /// Run the two-pass driver at `jobs`, returning the scheduled
    /// programs, stats, a metrics JSON snapshot and the provenance JSONL.
    fn run_at(jobs: usize, prov: bool) -> (Vec<(RtlProgram, QueryStats)>, String, String) {
        let (p, s) = compile_to_ast(SRC).unwrap();
        let hli = generate_hli(&p, &s);
        let prog = lower_program(&p, &s);
        let reg = Arc::new(MetricsRegistry::new());
        let sink = Arc::new(ProvenanceSink::new());
        sink.set_enabled(prov);
        let ids = Arc::new(AtomicU64::new(1));
        let out = {
            let _m = metrics::scoped(reg.clone());
            let _s = provenance::scoped(sink.clone());
            let _i = provenance::scoped_ids(ids);
            let caches: HashMap<String, QueryCache> =
                prog.funcs.iter().map(|f| (f.name.clone(), QueryCache::new())).collect();
            let passes = [
                PassSpec { mode: DepMode::GccOnly, caches: Some(&caches) },
                PassSpec { mode: DepMode::Combined, caches: Some(&caches) },
            ];
            schedule_program_passes(
                &prog,
                &|n| hli.entry(n).map(EntryRef::Owned),
                &passes,
                &hli_lir::TableBackend::scalar(),
                jobs,
            )
        };
        let jsonl = provenance::to_jsonl(&sink.drain());
        (out, reg.snapshot().to_json(), jsonl)
    }

    #[test]
    fn parallel_driver_matches_sequential_bit_for_bit() {
        // Metrics phase (provenance off, memos active) and provenance
        // phase (sink on) both must be invariant in the job count.
        for prov in [false, true] {
            let (seq, seq_json, seq_prov) = run_at(1, prov);
            let (par, par_json, par_prov) = run_at(4, prov);
            assert_eq!(seq.len(), 2);
            for ((sp, ss), (pp, ps)) in seq.iter().zip(par.iter()) {
                assert_eq!(sp, pp, "scheduled programs diverge (prov={prov})");
                assert_eq!(ss, ps, "query stats diverge (prov={prov})");
            }
            assert_eq!(seq_json, par_json, "--stats json diverges (prov={prov})");
            assert_eq!(seq_prov, par_prov, "provenance JSONL diverges (prov={prov})");
            if prov {
                assert!(!seq_prov.is_empty(), "combined pass must record decisions");
            } else {
                assert!(seq_json.contains("backend.query_cache.hit"), "memos were exercised");
            }
        }
    }

    /// Like [`run_at`], but with `f2`'s unit corrupted (an LCDD entry in
    /// the non-loop unit region) so the trust boundary must quarantine it.
    fn run_quarantined_at(
        jobs: usize,
        prov: bool,
    ) -> (Vec<(RtlProgram, QueryStats)>, String, String) {
        let (p, s) = compile_to_ast(SRC).unwrap();
        let mut hli = generate_hli(&p, &s);
        let bad = hli.entry_mut("f2").unwrap();
        let (src, dst) = (bad.regions[0].equiv_classes[0].id, bad.regions[0].equiv_classes[1].id);
        bad.regions[0].lcdd_table.push(hli_core::LcddEntry {
            src,
            dst,
            kind: hli_core::DepKind::Maybe,
            distance: hli_core::Distance::Unknown,
        });
        assert!(
            !hli.entry("f2").unwrap().verify().is_empty(),
            "corruption must be detectable"
        );
        let prog = lower_program(&p, &s);
        let reg = Arc::new(MetricsRegistry::new());
        let sink = Arc::new(ProvenanceSink::new());
        sink.set_enabled(prov);
        let ids = Arc::new(AtomicU64::new(1));
        let out = {
            let _m = metrics::scoped(reg.clone());
            let _s = provenance::scoped(sink.clone());
            let _i = provenance::scoped_ids(ids);
            let passes = [
                PassSpec { mode: DepMode::GccOnly, caches: None },
                PassSpec { mode: DepMode::Combined, caches: None },
            ];
            schedule_program_passes(
                &prog,
                &|n| hli.entry(n).map(EntryRef::Owned),
                &passes,
                &hli_lir::TableBackend::scalar(),
                jobs,
            )
        };
        let jsonl = provenance::to_jsonl(&sink.drain());
        (out, reg.snapshot().to_json(), jsonl)
    }

    #[test]
    fn invalid_unit_is_quarantined_to_the_no_hli_path() {
        let (quarantined, json, jsonl) = run_quarantined_at(1, true);

        // The quarantined function must compile exactly as if its unit
        // were absent — the conservative no-HLI fallback.
        let (p, s) = compile_to_ast(SRC).unwrap();
        let hli = generate_hli(&p, &s);
        let prog = lower_program(&p, &s);
        let passes = [
            PassSpec { mode: DepMode::GccOnly, caches: None },
            PassSpec { mode: DepMode::Combined, caches: None },
        ];
        let control = schedule_program_passes(
            &prog,
            &|n| {
                if n == "f2" {
                    None
                } else {
                    hli.entry(n).map(EntryRef::Owned)
                }
            },
            &passes,
            &hli_lir::TableBackend::scalar(),
            1,
        );
        for ((qp, qs), (cp, cs)) in quarantined.iter().zip(control.iter()) {
            assert_eq!(qp, cp, "quarantined f2 must schedule like a missing unit");
            assert_eq!(qs, cs);
        }

        // One work item vets once: one quarantined unit, however many
        // passes ran, and a Blocked provenance record naming it.
        assert!(json.contains("\"backend.quarantine.units\": 1"), "{json}");
        assert!(jsonl.contains("quarantine.unit"), "{jsonl}");
        assert!(jsonl.contains("\"function\": \"f2\""), "{jsonl}");
        assert!(jsonl.contains("non-loop region"), "{jsonl}");
    }

    #[test]
    fn quarantine_is_deterministic_across_job_counts() {
        for prov in [false, true] {
            let (seq, seq_json, seq_prov) = run_quarantined_at(1, prov);
            let (par, par_json, par_prov) = run_quarantined_at(8, prov);
            for ((sp, ss), (pp, ps)) in seq.iter().zip(par.iter()) {
                assert_eq!(sp, pp, "scheduled programs diverge (prov={prov})");
                assert_eq!(ss, ps, "query stats diverge (prov={prov})");
            }
            assert_eq!(seq_json, par_json, "--stats json diverges (prov={prov})");
            assert_eq!(seq_prov, par_prov, "provenance JSONL diverges (prov={prov})");
        }
    }

    #[test]
    fn clean_compile_creates_no_quarantine_keys() {
        let (_, json, _) = run_at(1, false);
        assert!(
            !json.contains("backend.quarantine"),
            "clean runs must not grow the stats key set: {json}"
        );
    }

    #[test]
    fn functions_missing_from_caches_get_throwaway_memos() {
        let (p, s) = compile_to_ast(SRC).unwrap();
        let hli = generate_hli(&p, &s);
        let prog = lower_program(&p, &s);
        let empty = HashMap::new();
        let passes = [PassSpec { mode: DepMode::Combined, caches: Some(&empty) }];
        let with_map = schedule_program_passes(
            &prog,
            &|n| hli.entry(n).map(EntryRef::Owned),
            &passes,
            &hli_lir::TableBackend::scalar(),
            2,
        );
        let no_map = schedule_program_passes(
            &prog,
            &|n| hli.entry(n).map(EntryRef::Owned),
            &[PassSpec { mode: DepMode::Combined, caches: None }],
            &hli_lir::TableBackend::scalar(),
            2,
        );
        assert_eq!(with_map[0].0, no_map[0].0);
        assert_eq!(with_map[0].1, no_map[0].1);
    }
}
