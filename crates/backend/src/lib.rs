//! # hli-backend — the optimizing back-end substrate (the GCC side)
//!
//! The paper imports HLI into GCC 2.7's RTL world. GCC is not available as
//! a Rust library, so this crate implements the back-end the experiments
//! need, in GCC's image:
//!
//! * [`rtl`] — a low-level three-address IR with explicit memory references
//!   (RTL-like: every instruction has at most one memory reference, tagged
//!   with its source line);
//! * [`lower`] — AST → RTL code generation following the exact emission
//!   rules the front-end's ITEMGEN mirrors (pseudo-registers for local
//!   scalars, parameter/return-value ABI traffic, loop shapes);
//! * `cfg` — basic blocks over the instruction list;
//! * [`mapping`] — the Section 3.2.1 import: match line-table items to RTL
//!   memory references by (line, intra-line order), building the hash table
//!   both directions; unmatched references degrade to *unknown*;
//! * [`gccdep`] — the baseline dependence test in GCC 2.7's precision
//!   class (distinct named objects don't conflict, constant offsets
//!   disambiguate, anything through a pointer conflicts, calls clobber
//!   everything);
//! * [`ddg`] — data dependence graph construction for the scheduler with
//!   the Figure-5 combiner (`gcc_value * hli_value`) and the Table-2 query
//!   counters;
//! * [`lir`] — RTL → canonical-LIR lowering: the pre-resolved op-class /
//!   operand-kind view ([`hli_lir`]) the scheduler and benefit estimators
//!   price instructions through, against the active
//!   [`hli_lir::MachineBackend`];
//! * [`sched`] — a basic-block list scheduler (the paper's experiments
//!   schedule within basic blocks only); latencies and issue width come
//!   from the machine backend, never from a scheduler-private table;
//! * [`cse`] — local common-subexpression elimination with the Figure-4
//!   REF/MOD-selective purge on calls;
//! * [`licm`] — loop-invariant load hoisting with alias/REF/MOD legality
//!   and HLI maintenance;
//! * [`unroll`] — constant-trip loop unrolling with the Figure-6 HLI
//!   update (body copies, remainder loop, LCDD distance remap);
//! * [`swp`] — software-pipelining lower bounds (ResMII/RecMII) from the
//!   LCDD table, the paper's "indispensable for cyclic scheduling" use.

pub mod cfg;
pub mod cse;
pub mod ddg;
pub mod driver;
pub mod gccdep;
pub mod licm;
pub mod lir;
pub mod lower;
pub mod mapping;
pub mod rtl;
pub mod sched;
pub mod swp;
pub mod unroll;

pub use ddg::{DepMode, QueryStats};
pub use driver::{schedule_program_passes, PassSpec};
pub use lir::{lir_function, op_class};
pub use lower::lower_program;
pub use mapping::HliMap;
pub use rtl::{Insn, MemRef, Op, RtlFunc, RtlProgram};
