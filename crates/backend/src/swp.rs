//! Software-pipelining feasibility analysis driven by the LCDD table.
//!
//! Section 3.2.2 of the paper: *"LCDD information is indispensable for a
//! cyclic scheduling algorithm such as software pipelining."* A modulo
//! scheduler's lower bound is the **minimum initiation interval**:
//!
//! * `ResMII` — resource bound: operations per function-unit class divided
//!   by unit count;
//! * `RecMII` — recurrence bound: max over dependence cycles of
//!   ⌈Σlatency / Σdistance⌉, where loop-carried edges carry their
//!   dependence *distance*.
//!
//! Without HLI, a back-end must give every may-conflict memory pair a
//! conservative distance-1 arc in both directions — recurrences everywhere,
//! RecMII ≈ the loop's serial latency. With the LCDD table, carried arcs
//! have real distances (a distance-4 stencil divides its recurrence
//! latency by 4), and proven-independent pairs contribute no cycle at all.
//! This module computes both bounds so the benefit is measurable.

use crate::cfg::Block;
use crate::ddg::DepMode;
use crate::gccdep;
use crate::mapping::HliMap;
use crate::rtl::{FBinOp, IBinOp, Label, Op, RtlFunc};
use hli_core::query::HliQuery;
use hli_core::Distance;
use std::collections::HashMap;

/// Function-unit classes for the resource bound (R10000-shaped defaults).
#[derive(Debug, Clone, Copy)]
pub struct Resources {
    pub int_units: u32,
    pub fp_units: u32,
    pub ls_units: u32,
}

impl Default for Resources {
    fn default() -> Self {
        Resources { int_units: 2, fp_units: 2, ls_units: 1 }
    }
}

/// Latencies used for recurrence weights.
#[derive(Debug, Clone, Copy)]
pub struct SwpLatency {
    pub load: i64,
    pub ialu: i64,
    pub imul: i64,
    pub idiv: i64,
    pub fadd: i64,
    pub fmul: i64,
    pub fdiv: i64,
}

impl Default for SwpLatency {
    fn default() -> Self {
        SwpLatency {
            load: 2,
            ialu: 1,
            imul: 6,
            idiv: 35,
            fadd: 2,
            fmul: 3,
            fdiv: 19,
        }
    }
}

impl SwpLatency {
    fn of(&self, op: &Op) -> i64 {
        match op {
            Op::Load(..) => self.load,
            Op::IBin(IBinOp::Mul, ..) | Op::IBinI(IBinOp::Mul, ..) => self.imul,
            Op::IBin(IBinOp::Div | IBinOp::Rem, ..) | Op::IBinI(IBinOp::Div | IBinOp::Rem, ..) => {
                self.idiv
            }
            Op::FBin(FBinOp::Add | FBinOp::Sub, ..) => self.fadd,
            Op::FBin(FBinOp::Mul, ..) => self.fmul,
            Op::FBin(FBinOp::Div, ..) => self.fdiv,
            _ => self.ialu,
        }
    }
}

/// The MII estimate of one innermost loop.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LoopMii {
    /// Source line of the loop header.
    pub header_line: u32,
    /// Instructions in the loop body (steady-state kernel size).
    pub body_ops: u32,
    pub res_mii: u32,
    pub rec_mii: u32,
}

impl LoopMii {
    /// The modulo-scheduling lower bound.
    pub fn mii(&self) -> u32 {
        self.res_mii.max(self.rec_mii)
    }
}

/// Analyze every innermost natural loop of `f`.
pub fn analyze_function(
    f: &RtlFunc,
    hli: Option<(&HliQuery<'_>, &HliMap)>,
    mode: DepMode,
    lat: &SwpLatency,
    res: &Resources,
) -> Vec<LoopMii> {
    innermost_loops(f)
        .into_iter()
        .filter_map(|(head, tail)| estimate(f, head, tail, hli, mode, lat, res))
        .collect()
}

/// Innermost (no nested back-edge) natural loops as (head, tail) indices.
fn innermost_loops(f: &RtlFunc) -> Vec<(usize, usize)> {
    let labels: HashMap<Label, usize> = f.label_index();
    let mut loops = Vec::new();
    for (i, insn) in f.insns.iter().enumerate() {
        if let Op::Jump(l) | Op::Branch(_, _, _, l) = insn.op {
            if let Some(&h) = labels.get(&l) {
                if h < i {
                    loops.push((h, i));
                }
            }
        }
    }
    loops
        .iter()
        .copied()
        .filter(|&(h, t)| !loops.iter().any(|&(h2, t2)| (h2, t2) != (h, t) && h2 >= h && t2 <= t))
        .collect()
}

#[derive(Debug, Clone, Copy)]
struct Edge {
    from: usize,
    to: usize,
    latency: i64,
    distance: i64,
}

fn estimate(
    f: &RtlFunc,
    head: usize,
    tail: usize,
    hli: Option<(&HliQuery<'_>, &HliMap)>,
    mode: DepMode,
    lat: &SwpLatency,
    res: &Resources,
) -> Option<LoopMii> {
    // Body = non-control instructions inside the loop span.
    let block = Block { start: head, end: tail + 1 };
    let body: Vec<usize> = crate::cfg::schedulable(f, &block);
    if body.is_empty() {
        return None;
    }
    // Loops containing calls are not software-pipelining candidates.
    if body.iter().any(|&i| f.insns[i].op.is_call()) {
        return None;
    }
    let n = body.len();

    // --- ResMII ------------------------------------------------------------
    let (mut ints, mut fps, mut lss) = (0u32, 0u32, 0u32);
    for &i in &body {
        match &f.insns[i].op {
            Op::Load(..) | Op::Store(..) => lss += 1,
            Op::FBin(..) | Op::FCmp(..) | Op::CvtIF(..) | Op::CvtFI(..) => fps += 1,
            _ => ints += 1,
        }
    }
    let ceil_div = |a: u32, b: u32| a.div_ceil(b.max(1));
    let res_mii = ceil_div(ints, res.int_units)
        .max(ceil_div(fps, res.fp_units))
        .max(ceil_div(lss, res.ls_units))
        .max(1);

    // --- Recurrence edges ---------------------------------------------------
    let mut edges: Vec<Edge> = Vec::new();
    let lat_of = |k: usize| lat.of(&f.insns[body[k]].op);

    // Register deps: last def before each use (intra-iteration, dist 0);
    // use-before-def means the value crosses the backedge (dist 1).
    let mut defs: HashMap<u32, usize> = HashMap::new();
    for (k, &idx) in body.iter().enumerate() {
        if let Some(d) = f.insns[idx].op.def() {
            defs.entry(d).or_insert(k); // first def position
        }
    }
    let mut last_def: HashMap<u32, usize> = HashMap::new();
    for (k, &idx) in body.iter().enumerate() {
        for u in f.insns[idx].op.uses() {
            match last_def.get(&u) {
                Some(&d) => edges.push(Edge { from: d, to: k, latency: lat_of(d), distance: 0 }),
                None => {
                    // Defined later in the body? Then this use reads the
                    // previous iteration's value: a carried register edge.
                    if let Some(&d) = defs.get(&u) {
                        if d > k || (d == k && f.insns[idx].op.def() == Some(u)) {
                            edges.push(Edge { from: d, to: k, latency: lat_of(d), distance: 1 });
                        }
                    }
                }
            }
        }
        if let Some(d) = f.insns[idx].op.def() {
            last_def.insert(d, k);
        }
    }

    // Memory deps.
    for a in 0..n {
        let opa = &f.insns[body[a]].op;
        let Some(ma) = opa.mem_ref() else { continue };
        for b in 0..n {
            if a == b {
                continue;
            }
            let opb = &f.insns[body[b]].op;
            let Some(mb) = opb.mem_ref() else { continue };
            if !(opa.is_store() || opb.is_store()) {
                continue;
            }
            match (mode, hli) {
                (DepMode::GccOnly, _) | (_, None) => {
                    // Conservative: any may-conflict pair recurs at
                    // distance 1 (intra-iteration order is covered by the
                    // a<b direction at distance 0).
                    if gccdep::may_conflict(ma, mb) {
                        if a < b {
                            edges.push(Edge { from: a, to: b, latency: lat_of(a), distance: 0 });
                        }
                        edges.push(Edge { from: a, to: b, latency: lat_of(a), distance: 1 });
                    }
                }
                (_, Some((q, map))) => {
                    let ia = map.item_of(f.insns[body[a]].id);
                    let ib = map.item_of(f.insns[body[b]].id);
                    let (Some(ia), Some(ib)) = (ia, ib) else {
                        // Unknown: conservative as above.
                        edges.push(Edge { from: a, to: b, latency: lat_of(a), distance: 1 });
                        continue;
                    };
                    // Same-iteration overlap orders the pair textually.
                    if a < b && q.get_equiv_acc(ia, ib).may_overlap() {
                        edges.push(Edge { from: a, to: b, latency: lat_of(a), distance: 0 });
                    }
                    // Carried overlap at the table's distance.
                    if let Some(arc) = q.get_lcdd(ia, ib) {
                        let d = match arc.distance {
                            Distance::Const(k) => k as i64,
                            Distance::Unknown => 1,
                        };
                        let (from, to) = if arc.reversed { (b, a) } else { (a, b) };
                        edges.push(Edge { from, to, latency: lat_of(from), distance: d });
                    }
                }
            }
        }
    }

    // --- RecMII: smallest II with no positive cycle of (lat − II·dist). ----
    let max_lat: i64 = body.iter().enumerate().map(|(k, _)| lat_of(k)).sum::<i64>().max(1);
    let has_positive_cycle = |ii: i64| -> bool {
        // Bellman-Ford style longest-path relaxation; a further relaxation
        // after n rounds means a positive cycle.
        let mut dist = vec![0i64; n];
        for round in 0..=n {
            let mut changed = false;
            for e in &edges {
                let w = e.latency - ii * e.distance;
                let cand = dist[e.from] + w;
                if cand > dist[e.to] {
                    dist[e.to] = cand;
                    changed = true;
                }
            }
            if !changed {
                return false;
            }
            if round == n {
                return true;
            }
        }
        false
    };
    let mut lo = 1i64;
    let mut hi = max_lat;
    if has_positive_cycle(hi) {
        // Degenerate (shouldn't happen: II = total latency always works).
        hi = max_lat * 2;
    }
    while lo < hi {
        let mid = (lo + hi) / 2;
        if has_positive_cycle(mid) {
            lo = mid + 1;
        } else {
            hi = mid;
        }
    }

    Some(LoopMii {
        header_line: f.insns[head].line,
        body_ops: n as u32,
        res_mii,
        rec_mii: lo as u32,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lower::lower_program;
    use crate::mapping::map_function;
    use hli_frontend::generate_hli;
    use hli_lang::compile_to_ast;

    fn mii_both(src: &str, func: &str) -> (Vec<LoopMii>, Vec<LoopMii>) {
        let (p, s) = compile_to_ast(src).unwrap();
        let rtl = lower_program(&p, &s);
        let hli = generate_hli(&p, &s);
        let f = rtl.func(func).unwrap();
        let entry = hli.entry(func).unwrap();
        let q = HliQuery::new(entry);
        let map = map_function(f, entry);
        let lat = SwpLatency::default();
        let res = Resources::default();
        let gcc = analyze_function(f, None, DepMode::GccOnly, &lat, &res);
        let smart = analyze_function(f, Some((&q, &map)), DepMode::Combined, &lat, &res);
        (gcc, smart)
    }

    #[test]
    fn independent_stream_has_no_recurrence() {
        // a[i] = b[i] * 2: no loop-carried dependence at all — RecMII
        // collapses to ~1 with HLI; GCC's pointer paranoia keeps it high.
        let src = "double a[64]; double b[64];\n\
            void k(double *x, double *y) { int i; for (i = 0; i < 64; i++) x[i] = y[i] * 2.0; }\n\
            int main() { k(a, b); return 0; }";
        let (gcc, smart) = mii_both(src, "k");
        assert_eq!(gcc.len(), 1);
        assert_eq!(smart.len(), 1);
        assert!(
            smart[0].rec_mii < gcc[0].rec_mii,
            "HLI must break the false recurrence: {} vs {}",
            smart[0].rec_mii,
            gcc[0].rec_mii
        );
        // The only real recurrence is the induction variable (latency 1).
        assert!(smart[0].rec_mii <= 2, "{:?}", smart[0]);
    }

    #[test]
    fn distance_divides_recurrence_latency() {
        // v[i] = v[i-4] * x: recurrence latency ~fmul over distance 4.
        let src = "double v[128];\n\
            int main() { int i; for (i = 4; i < 128; i++) v[i] = v[i-4] * 1.5; return v[100]; }";
        let (gcc, smart) = mii_both(src, "main");
        let g = gcc.iter().find(|l| l.body_ops > 3).unwrap();
        let s = smart.iter().find(|l| l.body_ops > 3).unwrap();
        // GCC: distance-1 recurrence → RecMII ≈ full chain latency.
        // HLI: same chain divided by distance 4.
        assert!(s.rec_mii < g.rec_mii, "{s:?} vs {g:?}");
        let tight = "double v[128];\n\
            int main() { int i; for (i = 1; i < 128; i++) v[i] = v[i-1] * 1.5; return v[100]; }";
        let (_, tight_smart) = mii_both(tight, "main");
        let t = tight_smart.iter().find(|l| l.body_ops > 3).unwrap();
        assert!(
            s.rec_mii < t.rec_mii,
            "distance 4 must beat distance 1: {} vs {}",
            s.rec_mii,
            t.rec_mii
        );
    }

    #[test]
    fn res_mii_counts_units() {
        // A body with many loads is LS-bound on a single LS unit.
        let src = "double a[64]; double b[64]; double c[64]; double d[64];\n\
            void k(double *w, double *x, double *y, double *z) {\n\
              int i;\n\
              for (i = 0; i < 64; i++) w[i] = x[i] + y[i] + z[i];\n\
            }\n\
            int main() { k(a, b, c, d); return 0; }";
        let (_, smart) = mii_both(src, "k");
        let l = &smart[0];
        // 3 loads + 1 store on one LS port → ResMII ≥ 4.
        assert!(l.res_mii >= 4, "{l:?}");
        assert!(l.mii() >= l.res_mii);
    }

    #[test]
    fn accumulator_recurrence_survives_hli() {
        // s += a[i]: the scalar accumulation is a real distance-1 cycle;
        // HLI must NOT dissolve it.
        let src = "double a[64]; double s;\n\
            int main() { int i; for (i = 0; i < 64; i++) s = s + a[i]; return s; }";
        let (_, smart) = mii_both(src, "main");
        let l = smart.iter().find(|l| l.body_ops > 3).unwrap();
        assert!(
            l.rec_mii >= SwpLatency::default().fadd as u32,
            "the fadd recurrence bounds II: {l:?}"
        );
    }

    #[test]
    fn loops_with_calls_are_skipped() {
        let src = "int g;\nint f() { return g; }\nint main() { int i; int s; s = 0; for (i = 0; i < 4; i++) s += f(); return s; }";
        let (gcc, _) = mii_both(src, "main");
        assert!(gcc.is_empty());
    }

    #[test]
    fn hli_rec_mii_never_exceeds_gcc() {
        for b in hli_suite::all(hli_suite::Scale::tiny()) {
            let (p, s) = compile_to_ast(&b.source).unwrap();
            let rtl = lower_program(&p, &s);
            let hli = generate_hli(&p, &s);
            for f in &rtl.funcs {
                let entry = hli.entry(&f.name).unwrap();
                let q = HliQuery::new(entry);
                let map = map_function(f, entry);
                let lat = SwpLatency::default();
                let res = Resources::default();
                let gcc = analyze_function(f, None, DepMode::GccOnly, &lat, &res);
                let smart = analyze_function(f, Some((&q, &map)), DepMode::Combined, &lat, &res);
                for (g, h) in gcc.iter().zip(&smart) {
                    assert!(
                        h.rec_mii <= g.rec_mii,
                        "{} `{}` line {}: HLI RecMII {} > GCC {}",
                        b.name,
                        f.name,
                        g.header_line,
                        h.rec_mii,
                        g.rec_mii
                    );
                }
            }
        }
    }
}
