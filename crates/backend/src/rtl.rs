//! The RTL-like low-level IR.
//!
//! Modeled on the subset of GCC RTL the paper's mechanisms touch: a linear
//! instruction chain per function, virtual registers (the experiments
//! isolate scheduling effects, so register pressure is out of scope —
//! documented in DESIGN.md), and *at most one memory reference per
//! instruction* so a reference is addressed by its instruction id (the
//! paper's `(IRInsn, RefSpec)` 2-tuple with a trivial RefSpec).
//!
//! Every instruction carries the source line it was generated from; the
//! line is the join key of the whole HLI mapping.

use hli_lang::sema::SymId;
use std::collections::HashMap;
use std::fmt;

/// A virtual register.
pub type Reg = u32;
/// A branch-target label.
pub type Label = u32;
/// Instruction identity within a function (stable across scheduling).
pub type InsnId = u32;

/// Integer ALU operations.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum IBinOp {
    Add,
    Sub,
    Mul,
    Div,
    Rem,
    Shl,
    Shr,
    And,
    Or,
    Xor,
}

/// Floating-point ALU operations.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FBinOp {
    Add,
    Sub,
    Mul,
    Div,
}

/// Comparison predicates (signed for ints).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CmpOp {
    Eq,
    Ne,
    Lt,
    Le,
    Gt,
    Ge,
}

/// What a memory address is relative to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BaseAddr {
    /// A global object.
    Sym(SymId),
    /// A frame-local object at a fixed frame offset (arrays, address-taken
    /// scalars). The offset identifies the object within the frame.
    Stack(i64),
    /// A computed address held in a register (pointer accesses).
    Reg(Reg),
    /// Outgoing-argument slot `i` of a call about to be made.
    OutArg(u32),
    /// Incoming stack-parameter slot `i` of the current function.
    InArg(u32),
}

/// One memory reference: `base + index·scale + offset` bytes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MemRef {
    pub base: BaseAddr,
    pub index: Option<Reg>,
    pub scale: i64,
    pub offset: i64,
}

impl MemRef {
    pub fn sym(s: SymId) -> Self {
        MemRef { base: BaseAddr::Sym(s), index: None, scale: 8, offset: 0 }
    }

    pub fn stack(off: i64) -> Self {
        MemRef { base: BaseAddr::Stack(off), index: None, scale: 8, offset: 0 }
    }

    pub fn reg(r: Reg) -> Self {
        MemRef { base: BaseAddr::Reg(r), index: None, scale: 8, offset: 0 }
    }
}

/// Instruction operations.
#[derive(Debug, Clone, PartialEq)]
pub enum Op {
    /// Load immediate integer.
    LiI(Reg, i64),
    /// Load immediate float.
    LiF(Reg, f64),
    Move(Reg, Reg),
    /// `dst = a op b` (integer).
    IBin(IBinOp, Reg, Reg, Reg),
    /// `dst = a op imm` (integer).
    IBinI(IBinOp, Reg, Reg, i64),
    /// `dst = a op b` (double).
    FBin(FBinOp, Reg, Reg, Reg),
    /// `dst = (a cmp b) ? 1 : 0` (integer operands).
    ICmp(CmpOp, Reg, Reg, Reg),
    /// `dst = (a cmp b) ? 1 : 0` (double operands).
    FCmp(CmpOp, Reg, Reg, Reg),
    /// int → double.
    CvtIF(Reg, Reg),
    /// double → int (truncating).
    CvtFI(Reg, Reg),
    /// `dst = address-of(base) + offset`.
    La(Reg, BaseAddr, i64),
    /// `dst = mem[ref]` — the instruction's single memory reference.
    Load(Reg, MemRef),
    /// `mem[ref] = src`.
    Store(MemRef, Reg),
    /// Direct call; `args` are the register-passed arguments in order
    /// (stack-passed args were stored to `OutArg` slots beforehand).
    Call {
        dst: Option<Reg>,
        func: String,
        args: Vec<Reg>,
    },
    Label(Label),
    Jump(Label),
    /// Fused compare-and-branch on integer registers.
    Branch(CmpOp, Reg, Reg, Label),
    Ret(Option<Reg>),
}

impl Op {
    /// The single memory reference, if this instruction has one.
    pub fn mem_ref(&self) -> Option<&MemRef> {
        match self {
            Op::Load(_, m) | Op::Store(m, _) => Some(m),
            _ => None,
        }
    }

    pub fn is_load(&self) -> bool {
        matches!(self, Op::Load(..))
    }

    pub fn is_store(&self) -> bool {
        matches!(self, Op::Store(..))
    }

    pub fn is_call(&self) -> bool {
        matches!(self, Op::Call { .. })
    }

    /// Control-transfer instructions end basic blocks and are never
    /// reordered.
    pub fn is_control(&self) -> bool {
        matches!(self, Op::Jump(_) | Op::Branch(..) | Op::Ret(_) | Op::Label(_))
    }

    /// Registers read by this instruction.
    pub fn uses(&self) -> Vec<Reg> {
        match self {
            Op::LiI(..) | Op::LiF(..) | Op::Label(_) | Op::Jump(_) => vec![],
            Op::Move(_, s) | Op::CvtIF(_, s) | Op::CvtFI(_, s) => vec![*s],
            Op::IBin(_, _, a, b)
            | Op::FBin(_, _, a, b)
            | Op::ICmp(_, _, a, b)
            | Op::FCmp(_, _, a, b) => vec![*a, *b],
            Op::IBinI(_, _, a, _) => vec![*a],
            Op::La(..) => vec![],
            Op::Load(_, m) => m.index.iter().copied().chain(base_reg(m)).collect(),
            Op::Store(m, s) => {
                let mut v: Vec<Reg> = m.index.iter().copied().chain(base_reg(m)).collect();
                v.push(*s);
                v
            }
            Op::Call { args, .. } => args.clone(),
            Op::Branch(_, a, b, _) => vec![*a, *b],
            Op::Ret(r) => r.iter().copied().collect(),
        }
    }

    /// Register written by this instruction.
    pub fn def(&self) -> Option<Reg> {
        match self {
            Op::LiI(d, _)
            | Op::LiF(d, _)
            | Op::Move(d, _)
            | Op::IBin(_, d, _, _)
            | Op::IBinI(_, d, _, _)
            | Op::FBin(_, d, _, _)
            | Op::ICmp(_, d, _, _)
            | Op::FCmp(_, d, _, _)
            | Op::CvtIF(d, _)
            | Op::CvtFI(d, _)
            | Op::La(d, _, _)
            | Op::Load(d, _) => Some(*d),
            Op::Call { dst, .. } => *dst,
            _ => None,
        }
    }
}

fn base_reg(m: &MemRef) -> Option<Reg> {
    match m.base {
        BaseAddr::Reg(r) => Some(r),
        _ => None,
    }
}

/// One instruction with identity and source line.
#[derive(Debug, Clone, PartialEq)]
pub struct Insn {
    pub id: InsnId,
    pub line: u32,
    pub op: Op,
}

/// A lowered function.
#[derive(Debug, Clone, PartialEq)]
pub struct RtlFunc {
    pub name: String,
    /// Registers holding the register-passed parameters, in order. Stack
    /// parameters (index ≥ NUM_ARG_REGS) have no entry.
    pub param_regs: Vec<Reg>,
    /// Total parameter count (including stack-passed).
    pub num_params: usize,
    pub insns: Vec<Insn>,
    /// Bytes of frame-local storage (arrays, spilled scalars).
    pub frame_size: i64,
    /// Number of outgoing-argument slots this function needs.
    pub out_args: u32,
    pub num_regs: u32,
    /// Whether the function returns a value.
    pub has_ret_value: bool,
}

impl RtlFunc {
    /// Index of each label instruction.
    pub fn label_index(&self) -> HashMap<Label, usize> {
        self.insns
            .iter()
            .enumerate()
            .filter_map(|(i, insn)| match insn.op {
                Op::Label(l) => Some((l, i)),
                _ => None,
            })
            .collect()
    }

    /// Count of memory-reference instructions (loads + stores).
    pub fn mem_ref_count(&self) -> usize {
        self.insns.iter().filter(|i| i.op.mem_ref().is_some()).count()
    }
}

/// A lowered program: functions plus the global data layout (shared with
/// the machine models and consistent with the AST interpreter).
#[derive(Debug, Clone, PartialEq)]
pub struct RtlProgram {
    pub funcs: Vec<RtlFunc>,
    /// Global symbol → byte address.
    pub global_addr: HashMap<SymId, i64>,
    /// (address, initial bits) pairs for initialized globals.
    pub global_init: Vec<(i64, u64)>,
    /// One past the last global byte.
    pub globals_end: i64,
}

impl RtlProgram {
    pub fn func(&self, name: &str) -> Option<&RtlFunc> {
        self.funcs.iter().find(|f| f.name == name)
    }

    pub fn func_mut(&mut self, name: &str) -> Option<&mut RtlFunc> {
        self.funcs.iter_mut().find(|f| f.name == name)
    }
}

impl fmt::Display for Insn {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:>4} @{:<4} {:?}", self.id, self.line, self.op)
    }
}

/// Render a function's instruction chain (debugging aid).
pub fn dump_func(f: &RtlFunc) -> String {
    use std::fmt::Write;
    let mut out = String::new();
    let _ = writeln!(
        out,
        "func {} (frame {} bytes, {} regs):",
        f.name, f.frame_size, f.num_regs
    );
    for insn in &f.insns {
        let _ = writeln!(out, "  {insn}");
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uses_and_defs() {
        let m = MemRef { base: BaseAddr::Reg(5), index: Some(6), scale: 8, offset: 16 };
        let ld = Op::Load(7, m);
        assert_eq!(ld.def(), Some(7));
        let mut u = ld.uses();
        u.sort();
        assert_eq!(u, vec![5, 6]);
        let st = Op::Store(m, 9);
        assert_eq!(st.def(), None);
        let mut u = st.uses();
        u.sort();
        assert_eq!(u, vec![5, 6, 9]);
    }

    #[test]
    fn call_defs_and_uses() {
        let c = Op::Call { dst: Some(3), func: "f".into(), args: vec![1, 2] };
        assert_eq!(c.def(), Some(3));
        assert_eq!(c.uses(), vec![1, 2]);
        assert!(c.is_call());
        assert!(!c.is_control());
    }

    #[test]
    fn control_classification() {
        assert!(Op::Jump(0).is_control());
        assert!(Op::Branch(CmpOp::Lt, 1, 2, 0).is_control());
        assert!(Op::Ret(None).is_control());
        assert!(Op::Label(0).is_control());
        assert!(!Op::LiI(0, 1).is_control());
    }

    #[test]
    fn mem_ref_extraction() {
        assert!(Op::LiI(0, 1).mem_ref().is_none());
        let m = MemRef::sym(0);
        assert_eq!(Op::Load(1, m).mem_ref(), Some(&m));
    }
}
