//! Local common-subexpression elimination over memory loads, with the
//! paper's Figure-4 call treatment.
//!
//! GCC's CSE keeps a table of available expressions; without
//! interprocedural information *"all the subexpressions containing a
//! memory reference will be purged from the table when a function call
//! appears"*. With HLI, `HLI_GetCallAcc` purges selectively: only entries
//! the call may **modify** go.
//!
//! This implementation covers the memory-bearing part of CSE (redundant
//! load elimination with store forwarding-awareness), which is the part
//! HLI changes. Eliminated loads delete their items through
//! [`hli_core::maintain::delete_item`] — the first of the paper's
//! Section 3.2.3 maintenance cases.

use crate::ddg::DepMode;
use crate::gccdep;
use crate::mapping::HliMap;
use crate::rtl::{InsnId, MemRef, Op, RtlFunc};
use hli_core::maintain;
use hli_core::{CachedQuery, HliEntry, ItemId, QueryCache};
use hli_lir::{MachineBackend, OpClass};

/// Outcome of running CSE on one function.
#[derive(Debug, Clone)]
pub struct CseResult {
    pub func: RtlFunc,
    /// Redundant loads rewritten to register moves.
    pub loads_eliminated: usize,
    /// Available entries purged at calls.
    pub purged_by_call: usize,
    /// Entries that survived a call thanks to REF/MOD evidence.
    pub kept_across_call: usize,
    /// Items deleted from the HLI (already applied when HLI was supplied).
    pub deleted_items: Vec<ItemId>,
}

/// One available memory value.
#[derive(Debug, Clone)]
struct Avail {
    mem: MemRef,
    value_reg: u32,
    item: Option<ItemId>,
}

/// Run local CSE. When `hli` is provided, call purging uses REF/MOD and
/// eliminated loads are maintained out of the entry and the mapping.
pub fn cse_function(
    f: &RtlFunc,
    mut hli: Option<(&mut HliEntry, &mut HliMap)>,
    mode: DepMode,
    mach: &dyn MachineBackend,
) -> CseResult {
    // Estimated cycles saved by keeping one available entry across a
    // call: the reload it avoids, at the active machine's load latency
    // (DESIGN.md, "Estimated-benefit models").
    let est_load_cycles = mach.class_latency(OpClass::Load);
    let use_hli = matches!(mode, DepMode::HliOnly | DepMode::Combined) && hli.is_some();
    // Queries need an immutable view; clone the entry for querying and
    // apply maintenance afterwards.
    let query_entry = hli.as_ref().map(|(e, _)| (**e).clone());
    let cache = QueryCache::new();
    let query = query_entry.as_ref().map(|e| cache.attach(e));
    let item_of = |map: &HliMap, insn: InsnId| map.item_of(insn);
    let prov = hli_obs::provenance::active();

    let mut out: Vec<crate::rtl::Insn> = Vec::with_capacity(f.insns.len());
    let mut avail: Vec<Avail> = Vec::new();
    let mut loads_eliminated = 0;
    let mut purged_by_call = 0;
    let mut kept_across_call = 0;
    let mut deleted_items = Vec::new();

    for insn in &f.insns {
        // Control flow boundaries flush availability (local CSE).
        if insn.op.is_control() {
            avail.clear();
            out.push(insn.clone());
            continue;
        }
        match &insn.op {
            Op::Load(dst, m) => {
                let hit = avail.iter().find(|a| a.mem == *m).map(|a| a.value_reg);
                match hit {
                    Some(src) => {
                        loads_eliminated += 1;
                        if let Some((_, map)) = hli.as_mut() {
                            if let Some(item) = item_of(map, insn.id) {
                                deleted_items.push(item);
                                map.unbind_item(item);
                            }
                        }
                        let mut new = insn.clone();
                        new.op = Op::Move(*dst, src);
                        // The defined register invalidates dependents below.
                        invalidate_reg(&mut avail, *dst);
                        avail.push(Avail { mem: *m, value_reg: *dst, item: None });
                        out.push(new);
                        continue;
                    }
                    None => {
                        invalidate_reg(&mut avail, *dst);
                        avail.push(Avail {
                            mem: *m,
                            value_reg: *dst,
                            item: hli.as_ref().and_then(|(_, map)| item_of(map, insn.id)),
                        });
                    }
                }
            }
            Op::Store(m, src) => {
                // Invalidate conflicting entries, then record the stored
                // value as available (store-to-load forwarding).
                let store_item = hli.as_ref().and_then(|(_, map)| item_of(map, insn.id));
                avail.retain(|a| !may_conflict_for_cse(a, m, store_item, query.as_ref(), use_hli));
                avail.push(Avail { mem: *m, value_reg: *src, item: store_item });
            }
            Op::Call { dst, .. } => {
                let call_item = hli.as_ref().and_then(|(_, map)| item_of(map, insn.id));
                // One causal span per call site: every keep/purge decision
                // made at this call shares it.
                let span = if use_hli && prov.is_some() {
                    hli_obs::provenance::next_span_id()
                } else {
                    0
                };
                if use_hli {
                    if let (Some(q), Some(call)) = (query.as_ref(), call_item) {
                        // Figure 4: purge only what the call may modify.
                        avail.retain(|a| {
                            let mark = q.query_mark();
                            let purge = match a.item {
                                Some(it) => q.get_call_acc(it, call).may_modify(),
                                None => true,
                            };
                            if purge {
                                purged_by_call += 1;
                            } else {
                                kept_across_call += 1;
                            }
                            if let Some(sink) = prov.as_deref() {
                                let verdict = if purge {
                                    hli_obs::Verdict::Blocked {
                                        reason: if a.item.is_some() {
                                            "call may modify location".into()
                                        } else {
                                            "entry has no HLI item".into()
                                        },
                                    }
                                } else {
                                    hli_obs::Verdict::Applied
                                };
                                sink.record(hli_obs::DecisionRecord {
                                    pass: "cse.call".into(),
                                    function: f.name.clone(),
                                    region_id: a.item.and_then(|it| q.owner_of(it)).map(|r| r.0),
                                    order: insn.line,
                                    span,
                                    // A kept entry saves the reload the purge
                                    // would have forced: one load latency.
                                    est_cycles: if purge { 0 } else { est_load_cycles },
                                    hli_queries: q.queries_since(mark),
                                    verdict,
                                });
                            }
                            !purge
                        });
                    } else {
                        if let Some(sink) = prov.as_deref() {
                            for _ in &avail {
                                sink.record(hli_obs::DecisionRecord {
                                    pass: "cse.call".into(),
                                    function: f.name.clone(),
                                    region_id: None,
                                    order: insn.line,
                                    span,
                                    est_cycles: 0,
                                    hli_queries: Vec::new(),
                                    verdict: hli_obs::Verdict::Blocked {
                                        reason: "call has no HLI item".into(),
                                    },
                                });
                            }
                        }
                        purged_by_call += avail.len();
                        avail.clear();
                    }
                } else {
                    // GCC without HLI: the call may change any memory.
                    purged_by_call += avail.len();
                    avail.clear();
                }
                if let Some(d) = dst {
                    invalidate_reg(&mut avail, *d);
                }
            }
            other => {
                if let Some(d) = other.def() {
                    invalidate_reg(&mut avail, d);
                }
            }
        }
        out.push(insn.clone());
    }

    // Apply maintenance for the eliminated items, then drop the memos that
    // mention them so a reattached cache stays consistent with the
    // maintained entry.
    if let Some((entry, _)) = hli.as_mut() {
        for &item in &deleted_items {
            let _ = maintain::delete_item(entry, item);
        }
        cache.invalidate_items(entry, &deleted_items);
    }

    let mut func = f.clone();
    func.insns = out;
    let reg = hli_obs::metrics::cur();
    reg.counter("backend.cse.loads_eliminated").add(loads_eliminated as u64);
    reg.counter("backend.cse.purged_by_call").add(purged_by_call as u64);
    reg.counter("backend.cse.kept_across_call").add(kept_across_call as u64);
    reg.counter("backend.cse.items_deleted").add(deleted_items.len() as u64);
    CseResult {
        func,
        loads_eliminated,
        purged_by_call,
        kept_across_call,
        deleted_items,
    }
}

/// Conservative conflict for CSE invalidation at a store.
fn may_conflict_for_cse(
    a: &Avail,
    store: &MemRef,
    store_item: Option<ItemId>,
    query: Option<&CachedQuery<'_>>,
    use_hli: bool,
) -> bool {
    let gcc = gccdep::may_conflict(&a.mem, store);
    if !use_hli {
        return gcc;
    }
    let hli = match (query, a.item, store_item) {
        (Some(q), Some(x), Some(y)) => q.get_equiv_acc(x, y).may_overlap(),
        _ => true,
    };
    gcc && hli
}

/// A redefined register invalidates entries addressing through it or
/// holding their value in it.
fn invalidate_reg(avail: &mut Vec<Avail>, reg: u32) {
    avail.retain(|a| {
        let addr_uses = matches!(a.mem.base, crate::rtl::BaseAddr::Reg(r) if r == reg)
            || a.mem.index == Some(reg);
        !(addr_uses || a.value_reg == reg)
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lower::lower_program;
    use crate::mapping::map_function;
    use hli_frontend::generate_hli;
    use hli_lang::compile_to_ast;

    fn run_cse(src: &str, func: &str, mode: DepMode, with_hli: bool) -> CseResult {
        let (p, s) = compile_to_ast(src).unwrap();
        let prog = lower_program(&p, &s);
        let f = prog.func(func).unwrap();
        if with_hli {
            let hli = generate_hli(&p, &s);
            let mut entry = hli.entry(func).unwrap().clone();
            let mut map = map_function(f, &entry);
            let r = cse_function(
                f,
                Some((&mut entry, &mut map)),
                mode,
                &hli_lir::TableBackend::scalar(),
            );
            assert!(entry.validate().is_empty(), "{:?}", entry.validate());
            r
        } else {
            cse_function(f, None, mode, &hli_lir::TableBackend::scalar())
        }
    }

    #[test]
    fn redundant_global_load_eliminated() {
        let r = run_cse(
            "int g;\nint main() { int a; int b; a = g; b = g; return a + b; }",
            "main",
            DepMode::GccOnly,
            false,
        );
        assert_eq!(r.loads_eliminated, 1);
    }

    #[test]
    fn store_forwarding_supplies_value() {
        let r = run_cse(
            "int g;\nint main() { g = 5; return g; }",
            "main",
            DepMode::GccOnly,
            false,
        );
        // The load of g after the store is satisfied by forwarding.
        assert_eq!(r.loads_eliminated, 1);
    }

    #[test]
    fn intervening_conflicting_store_blocks_reuse() {
        let r = run_cse(
            "int g;\nint main() { int a; int b; a = g; g = 7; b = g; return a + b; }",
            "main",
            DepMode::GccOnly,
            false,
        );
        // `b = g` is satisfied by forwarding from `g = 7`, but the original
        // `a = g` availability must have been purged; eliminating with the
        // old value would be wrong. Check semantics via the rewritten ops:
        // exactly one Move-from-forwarding, no stale reuse.
        assert_eq!(r.loads_eliminated, 1);
    }

    #[test]
    fn call_purges_everything_without_hli() {
        let r = run_cse(
            "int g; int unrelated; void f() { unrelated = 1; }\nint main() { int a; int b; a = g; f(); b = g; return a + b; }",
            "main",
            DepMode::GccOnly,
            false,
        );
        assert_eq!(r.loads_eliminated, 0, "call conservatively kills availability");
        assert!(r.purged_by_call > 0);
    }

    #[test]
    fn refmod_keeps_unrelated_values_across_call() {
        let r = run_cse(
            "int g; int unrelated; void f() { unrelated = 1; }\nint main() { int a; int b; a = g; f(); b = g; return a + b; }",
            "main",
            DepMode::Combined,
            true,
        );
        assert_eq!(r.loads_eliminated, 1, "Figure 4: g survives the call");
        assert!(r.kept_across_call > 0);
        assert_eq!(r.deleted_items.len(), 1);
    }

    #[test]
    fn call_that_mods_still_purges_with_hli() {
        let r = run_cse(
            "int g; void f() { g = g + 1; }\nint main() { int a; int b; a = g; f(); b = g; return a + b; }",
            "main",
            DepMode::Combined,
            true,
        );
        assert_eq!(r.loads_eliminated, 0, "g is modified by the call");
    }

    #[test]
    fn hli_distinguishes_array_elements() {
        let r = run_cse(
            "int a[8];\nint main() { int x; int y; x = a[1]; a[2] = 9; y = a[1]; return x + y; }",
            "main",
            DepMode::Combined,
            true,
        );
        // a[1] reload after a store to a[2]: constant offsets let even GCC
        // keep it; verify HLI agrees and it is eliminated.
        assert_eq!(r.loads_eliminated, 1);
    }

    #[test]
    fn eliminated_items_leave_valid_hli() {
        let (p, s) =
            compile_to_ast("int g;\nint main() { int a; int b; a = g; b = g; return a + b; }")
                .unwrap();
        let prog = lower_program(&p, &s);
        let f = prog.func("main").unwrap();
        let hli = generate_hli(&p, &s);
        let mut entry = hli.entry("main").unwrap().clone();
        let before = entry.line_table.item_count();
        let mut map = map_function(f, &entry);
        let r = cse_function(
            f,
            Some((&mut entry, &mut map)),
            DepMode::Combined,
            &hli_lir::TableBackend::scalar(),
        );
        assert_eq!(entry.line_table.item_count(), before - r.deleted_items.len());
        assert!(entry.validate().is_empty());
        // The mapping no longer mentions deleted items.
        for it in &r.deleted_items {
            assert!(map.insn_of(*it).is_none());
        }
    }
}
