//! Loop-invariant load motion with HLI legality evidence.
//!
//! Section 3.2.2: *"In loop invariant code removal, a memory reference can
//! be moved out of a loop only when there remains no other memory
//! reference in the loop that can possibly alias the memory reference."*
//! GCC's local test can rarely prove that for anything addressed through a
//! pointer; the HLI's equivalence/alias/LCDD answers can. The moved item
//! is re-homed into the enclosing region via
//! [`hli_core::maintain::move_item_to_region`] — the second maintenance
//! case of Section 3.2.3.

use crate::ddg::DepMode;
use crate::gccdep;
use crate::mapping::HliMap;
use crate::rtl::{Label, Op, RtlFunc};
use hli_core::maintain;
use hli_core::{CachedQuery, HliEntry, QueryCache};
use hli_lir::{MachineBackend, OpClass};
use std::collections::HashSet;

/// Assumed iteration count for a loop whose trip is unknown at LICM time;
/// feeds the `licm.hoist` estimated-benefit model (DESIGN.md,
/// "Estimated-benefit models").
const NOMINAL_TRIP: u64 = 8;

/// Outcome of LICM on one function.
#[derive(Debug, Clone)]
pub struct LicmResult {
    pub func: RtlFunc,
    /// Loads hoisted out of loops.
    pub hoisted: usize,
}

/// A detected natural loop in the instruction chain: a backward jump to a
/// label.
#[derive(Debug, Clone, Copy)]
struct RtlLoop {
    /// Index of the `Label` instruction that heads the loop.
    head: usize,
    /// Index of the backward `Jump`/`Branch` instruction.
    tail: usize,
}

fn find_loops(f: &RtlFunc) -> Vec<RtlLoop> {
    let labels = f.label_index();
    let mut loops = Vec::new();
    for (i, insn) in f.insns.iter().enumerate() {
        let target: Option<Label> = match insn.op {
            Op::Jump(l) | Op::Branch(_, _, _, l) => Some(l),
            _ => None,
        };
        if let Some(l) = target {
            if let Some(&h) = labels.get(&l) {
                if h < i {
                    loops.push(RtlLoop { head: h, tail: i });
                }
            }
        }
    }
    loops
}

/// Innermost loops only: no other loop strictly inside.
fn innermost(loops: &[RtlLoop]) -> Vec<RtlLoop> {
    loops
        .iter()
        .copied()
        .filter(|a| {
            !loops.iter().any(|b| {
                (b.head > a.head && b.tail <= a.tail || b.head >= a.head && b.tail < a.tail)
                    && !(b.head == a.head && b.tail == a.tail)
            })
        })
        .collect()
}

/// Run LICM. With HLI, pointer loads can hoist when the tables prove no
/// conflicting store/call in the loop; item maintenance is applied.
pub fn licm_function(
    f: &RtlFunc,
    mut hli: Option<(&mut HliEntry, &mut HliMap)>,
    mode: DepMode,
    mach: &dyn MachineBackend,
) -> LicmResult {
    // Cycles one avoided in-loop load costs, at the active machine's load
    // latency — the same table the scheduler and simulator read.
    let est_load_cycles = mach.class_latency(OpClass::Load);
    let use_hli = matches!(mode, DepMode::HliOnly | DepMode::Combined) && hli.is_some();
    let query_entry = hli.as_ref().map(|(e, _)| (**e).clone());
    let cache = QueryCache::new();
    let query = query_entry.as_ref().map(|e| cache.attach(e));
    let prov = hli_obs::provenance::active();

    let loops = innermost(&find_loops(f));
    let mut hoist: Vec<(usize, usize)> = Vec::new(); // (insn index, insert-before index)
    let mut taken: HashSet<usize> = HashSet::new();

    for lp in &loops {
        let range = lp.head..=lp.tail;
        // Registers defined inside the loop.
        let defined: HashSet<u32> = range.clone().filter_map(|i| f.insns[i].op.def()).collect();
        // Instructions before the loop's first control transfer execute on
        // every trip of the header — including the final failing test — so
        // hoisting them can never introduce an execution the original
        // program did not perform. Anything after that point is
        // conditionally executed within the iteration.
        let first_ctrl =
            (lp.head + 1..=lp.tail).find(|&i| f.insns[i].op.is_control()).unwrap_or(lp.tail);
        for i in range.clone() {
            let Op::Load(dst, m) = &f.insns[i].op else { continue };
            if taken.contains(&i) {
                continue;
            }
            // Speculation safety: a pointer (register-based) load that is
            // only conditionally executed must not be hoisted — the guard
            // may be exactly what keeps its address valid. Named objects
            // (globals, frame slots) are always readable, and the load's
            // destination is a single-def temporary, so hoisting them is
            // both fault- and value-safe.
            if i >= first_ctrl && matches!(m.base, crate::rtl::BaseAddr::Reg(_)) {
                continue;
            }
            // Address must be loop-invariant.
            let addr_regs: Vec<u32> = match m.base {
                crate::rtl::BaseAddr::Reg(r) => std::iter::once(r).chain(m.index).collect(),
                _ => m.index.into_iter().collect(),
            };
            if addr_regs.iter().any(|r| defined.contains(r)) {
                continue;
            }
            // The destination must be defined only here within the loop.
            let dst_defs = range.clone().filter(|&j| f.insns[j].op.def() == Some(*dst)).count();
            if dst_defs != 1 {
                continue;
            }
            // No conflicting store or call in the loop.
            let mark = query.as_ref().map(|q| q.query_mark()).unwrap_or(0);
            // One causal span per hoist candidate's legality scan.
            let span = if use_hli && prov.is_some() {
                hli_obs::provenance::next_span_id()
            } else {
                0
            };
            let mut safe = true;
            let mut block_reason = "";
            for j in lp.head..=lp.tail {
                match &f.insns[j].op {
                    Op::Store(sm, _) => {
                        let gcc = gccdep::may_conflict(m, sm);
                        let conflict = if use_hli {
                            let h =
                                hli_pair(f, i, j, hli.as_ref().map(|(_, m)| &**m), query.as_ref());
                            gcc && h
                        } else {
                            gcc
                        };
                        if conflict {
                            safe = false;
                            block_reason = "conflicting store in loop";
                            break;
                        }
                    }
                    Op::Call { .. } => {
                        let conflict = if use_hli {
                            hli_call(f, i, j, hli.as_ref().map(|(_, m)| &**m), query.as_ref())
                        } else {
                            true
                        };
                        if conflict {
                            safe = false;
                            block_reason = "call in loop may modify location";
                            break;
                        }
                    }
                    _ => {}
                }
            }
            if safe {
                hoist.push((i, lp.head));
                taken.insert(i);
            }
            // One decision record per hoist candidate that reached the
            // legality scan (HLI-gated modes only — a GCC-only hoist cites
            // no queries and is not part of the audit trail).
            if use_hli {
                if let (Some(sink), Some(q)) = (prov.as_deref(), query.as_ref()) {
                    let region = hli
                        .as_ref()
                        .and_then(|(_, map)| map.item_of(f.insns[i].id))
                        .and_then(|it| q.owner_of(it))
                        .map(|r| r.0);
                    let verdict = if safe {
                        hli_obs::Verdict::Applied
                    } else {
                        hli_obs::Verdict::Blocked { reason: block_reason.to_string() }
                    };
                    sink.record(hli_obs::DecisionRecord {
                        pass: "licm.hoist".into(),
                        function: f.name.clone(),
                        region_id: region,
                        order: f.insns[i].line,
                        span,
                        // A hoisted load runs once instead of once per
                        // iteration; trip counts are unknown here, so the
                        // estimate assumes NOMINAL_TRIP iterations.
                        est_cycles: if safe {
                            (NOMINAL_TRIP - 1) * est_load_cycles
                        } else {
                            0
                        },
                        hli_queries: q.queries_since(mark),
                        verdict,
                    });
                }
            }
        }
    }

    if hoist.is_empty() {
        return LicmResult { func: f.clone(), hoisted: 0 };
    }

    // Rebuild: hoisted instructions move to just before their loop head.
    let mut func = f.clone();
    let mut insns = Vec::with_capacity(f.insns.len());
    let hoisted_set: HashSet<usize> = hoist.iter().map(|(i, _)| *i).collect();
    for (idx, insn) in f.insns.iter().enumerate() {
        for &(h, before) in &hoist {
            if before == idx {
                insns.push(f.insns[h].clone());
            }
        }
        if !hoisted_set.contains(&idx) {
            insns.push(insn.clone());
        }
    }
    func.insns = insns;

    // HLI maintenance: re-home each hoisted item to the parent region,
    // then invalidate the memos mentioning the moved items.
    if let Some((entry, map)) = hli.as_mut() {
        let mut moved = Vec::new();
        for &(i, _) in &hoist {
            let insn_id = f.insns[i].id;
            if let Some(item) = map.item_of(insn_id) {
                if let Some(owner) = entry.owning_region(item) {
                    if let Some(parent) = entry.region(owner).parent {
                        let line =
                            entry.line_table.find(item).map(|(l, _)| l).unwrap_or(f.insns[i].line);
                        if maintain::move_item_to_region(entry, item, parent, line).is_ok() {
                            moved.push(item);
                        }
                    }
                }
            }
        }
        cache.invalidate_items(entry, &moved);
    }

    hli_obs::metrics::cur().counter("backend.licm.hoisted").add(hoist.len() as u64);
    LicmResult { func, hoisted: hoist.len() }
}

fn hli_pair(
    f: &RtlFunc,
    i: usize,
    j: usize,
    map: Option<&HliMap>,
    query: Option<&CachedQuery<'_>>,
) -> bool {
    let (Some(map), Some(q)) = (map, query) else { return true };
    let (Some(a), Some(b)) = (map.item_of(f.insns[i].id), map.item_of(f.insns[j].id)) else {
        return true;
    };
    // Hoisting needs cross-iteration safety too: same-iteration overlap OR
    // any loop-carried arc blocks the move.
    q.get_equiv_acc(a, b).may_overlap() || q.get_lcdd(a, b).is_some()
}

fn hli_call(
    f: &RtlFunc,
    mem: usize,
    call: usize,
    map: Option<&HliMap>,
    query: Option<&CachedQuery<'_>>,
) -> bool {
    let (Some(map), Some(q)) = (map, query) else { return true };
    let (Some(m), Some(c)) = (map.item_of(f.insns[mem].id), map.item_of(f.insns[call].id)) else {
        return true;
    };
    q.get_call_acc(m, c).may_modify()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lower::lower_program;
    use crate::mapping::map_function;
    use hli_frontend::generate_hli;
    use hli_lang::compile_to_ast;

    fn run(src: &str, func: &str, mode: DepMode, with_hli: bool) -> (LicmResult, Option<HliEntry>) {
        let (p, s) = compile_to_ast(src).unwrap();
        let prog = lower_program(&p, &s);
        let f = prog.func(func).unwrap();
        if with_hli {
            let hli = generate_hli(&p, &s);
            let mut entry = hli.entry(func).unwrap().clone();
            let mut map = map_function(f, &entry);
            let r = licm_function(
                f,
                Some((&mut entry, &mut map)),
                mode,
                &hli_lir::TableBackend::scalar(),
            );
            (r, Some(entry))
        } else {
            (licm_function(f, None, mode, &hli_lir::TableBackend::scalar()), None)
        }
    }

    #[test]
    fn invariant_global_load_hoists_even_for_gcc() {
        // g is loaded every iteration, only a[] is stored: distinct named
        // objects, GCC can hoist.
        let (r, _) = run(
            "int g; int a[32];\nint main() { int i; for (i = 0; i < 32; i++) a[i] = g; return 0; }",
            "main",
            DepMode::GccOnly,
            false,
        );
        assert_eq!(r.hoisted, 1);
    }

    #[test]
    fn pointer_store_blocks_gcc_but_not_hli() {
        let src = "int g; int x[32];\n\
            void k(int *p) { int i; for (i = 0; i < 32; i++) p[i] = g; }\n\
            int main() { k(x); return 0; }";
        let (gcc, _) = run(src, "k", DepMode::GccOnly, false);
        assert_eq!(gcc.hoisted, 0, "GCC cannot disambiguate p[i] from g");
        let (hli, entry) = run(src, "k", DepMode::Combined, true);
        assert_eq!(hli.hoisted, 1, "HLI proves p never points at g");
        let entry = entry.unwrap();
        assert!(entry.validate().is_empty(), "{:?}", entry.validate());
    }

    #[test]
    fn hoisted_item_rehomed_to_parent_region() {
        let src = "int g; int x[32];\n\
            void k(int *p) { int i; for (i = 0; i < 32; i++) p[i] = g; }\n\
            int main() { k(x); return 0; }";
        let (p, s) = compile_to_ast(src).unwrap();
        let prog = lower_program(&p, &s);
        let f = prog.func("k").unwrap();
        let hli = generate_hli(&p, &s);
        let mut entry = hli.entry("k").unwrap().clone();
        let mut map = map_function(f, &entry);
        // Find g's load item before the move.
        let g_item = entry
            .line_table
            .items()
            .find(|(_, it)| it.ty == hli_core::ItemType::Load)
            .map(|(_, it)| it.id)
            .unwrap();
        let before_region = entry.owning_region(g_item).unwrap();
        let r = licm_function(
            f,
            Some((&mut entry, &mut map)),
            DepMode::Combined,
            &hli_lir::TableBackend::scalar(),
        );
        assert_eq!(r.hoisted, 1);
        let after_region = entry.owning_region(g_item).unwrap();
        assert_ne!(before_region, after_region);
        assert_eq!(entry.region(before_region).parent, Some(after_region));
    }

    #[test]
    fn store_to_same_location_blocks_hoist() {
        let (r, _) = run(
            "int g;\nint main() { int i; int s; s = 0; for (i = 0; i < 8; i++) { s += g; g = s; } return s; }",
            "main",
            DepMode::Combined,
            true,
        );
        assert_eq!(r.hoisted, 0, "g is stored in the loop");
    }

    #[test]
    fn call_in_loop_blocks_unless_refmod_clears() {
        let blocked = run(
            "int g; void touch() { g = g + 1; }\nint main() { int i; int s; s = 0; for (i = 0; i < 8; i++) { s += g; touch(); } return s; }",
            "main",
            DepMode::Combined,
            true,
        );
        assert_eq!(blocked.0.hoisted, 0);
        let freed = run(
            "int g; int other; void touch() { other = other + 1; }\nint main() { int i; int s; s = 0; for (i = 0; i < 8; i++) { s += g; touch(); } return s; }",
            "main",
            DepMode::Combined,
            true,
        );
        assert_eq!(freed.0.hoisted, 1, "REF/MOD clears the call");
    }

    #[test]
    fn hoisted_code_stays_a_permutation() {
        let (r, _) = run(
            "int g; int a[32];\nint main() { int i; for (i = 0; i < 32; i++) a[i] = g; return 0; }",
            "main",
            DepMode::GccOnly,
            false,
        );
        let mut ids: Vec<u32> = r.func.insns.iter().map(|i| i.id).collect();
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(ids.len(), r.func.insns.len());
    }

    #[test]
    fn loop_detection_finds_nesting() {
        let (p, s) = compile_to_ast(
            "int a[4];\nint main() { int i; int j; for (i=0;i<4;i++) for (j=0;j<4;j++) a[j] = i; return 0; }",
        )
        .unwrap();
        let prog = lower_program(&p, &s);
        let f = prog.func("main").unwrap();
        let all = find_loops(f);
        assert_eq!(all.len(), 2);
        let inner = innermost(&all);
        assert_eq!(inner.len(), 1);
        assert!(inner[0].head > all.iter().map(|l| l.head).min().unwrap() || all.len() == 1);
    }
}
