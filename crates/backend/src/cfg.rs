//! Basic blocks over the RTL instruction chain.
//!
//! The paper's experiments schedule within basic blocks only (Section 4.3
//! attributes part of the limited integer speedups to exactly this), so
//! blocks are the unit every downstream pass works on. Calls do *not* end
//! blocks — moving memory references across calls (with REF/MOD evidence)
//! is one of the paper's headline uses.

use crate::rtl::{Insn, Op, RtlFunc};

/// A basic block: a contiguous index range of a function's instruction
/// vector, plus how it ends.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Block {
    /// Index of the first instruction.
    pub start: usize,
    /// One past the last instruction.
    pub end: usize,
}

impl Block {
    pub fn range(&self) -> std::ops::Range<usize> {
        self.start..self.end
    }

    pub fn len(&self) -> usize {
        self.end - self.start
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// Partition a function into basic blocks. Labels start blocks; jumps,
/// branches and returns end them.
pub fn blocks(f: &RtlFunc) -> Vec<Block> {
    let mut out = Vec::new();
    let mut start = 0usize;
    for (i, insn) in f.insns.iter().enumerate() {
        match insn.op {
            Op::Label(_) => {
                if i > start {
                    out.push(Block { start, end: i });
                }
                start = i;
            }
            Op::Jump(_) | Op::Branch(..) | Op::Ret(_) => {
                out.push(Block { start, end: i + 1 });
                start = i + 1;
            }
            _ => {}
        }
    }
    if start < f.insns.len() {
        out.push(Block { start, end: f.insns.len() });
    }
    out
}

/// The schedulable instructions of a block: everything except labels and
/// the terminating control transfer (which stays last).
pub fn schedulable(f: &RtlFunc, b: &Block) -> Vec<usize> {
    b.range().filter(|&i| !f.insns[i].op.is_control()).collect()
}

/// Instructions of a block, for inspection.
pub fn block_insns<'a>(f: &'a RtlFunc, b: &Block) -> &'a [Insn] {
    &f.insns[b.range()]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lower::lower_program;
    use hli_lang::compile_to_ast;

    fn func_blocks(src: &str) -> (RtlFunc, Vec<Block>) {
        let (p, s) = compile_to_ast(src).unwrap();
        let prog = lower_program(&p, &s);
        let f = prog.func("main").unwrap().clone();
        let bs = blocks(&f);
        (f, bs)
    }

    #[test]
    fn straightline_is_one_block_plus_epilogue() {
        // The lowerer appends a safety-net `li 0; ret` after the explicit
        // return, which forms its own (unreachable) block.
        let (f, bs) = func_blocks("int g;\nint main() { g = 1; g = g + 2; return g; }");
        assert_eq!(bs.len(), 2);
        assert_eq!(bs[0].start, 0);
        assert!(matches!(f.insns[bs[0].end - 1].op, Op::Ret(_)));
        assert_eq!(bs[1].end, f.insns.len());
    }

    #[test]
    fn blocks_cover_all_insns_without_overlap() {
        let (f, bs) = func_blocks(
            "int a[10];\nint main() {\n int i;\n for (i = 0; i < 10; i++) {\n  if (i > 5) a[i] = 1; else a[i] = 2;\n }\n return a[0];\n}",
        );
        let mut covered = vec![false; f.insns.len()];
        for b in &bs {
            for i in b.range() {
                assert!(!covered[i], "overlap at {i}");
                covered[i] = true;
            }
        }
        assert!(covered.iter().all(|&c| c), "gap in coverage");
    }

    #[test]
    fn branches_end_blocks() {
        let (f, bs) = func_blocks("int g;\nint main() { if (g) g = 1; return g; }");
        for b in &bs {
            for i in b.start..b.end - 1 {
                assert!(
                    !matches!(f.insns[i].op, Op::Jump(_) | Op::Branch(..) | Op::Ret(_)),
                    "control op mid-block"
                );
            }
        }
        assert!(bs.len() >= 3);
    }

    #[test]
    fn calls_stay_inside_blocks() {
        let (f, bs) = func_blocks(
            "int g;\nint f2() { return g; }\nint main() { g = 1; g = f2() + g; return g; }",
        );
        // All of main's work is one block (no branches), despite the call.
        let with_call = bs.iter().find(|b| b.range().any(|i| f.insns[i].op.is_call())).unwrap();
        assert!(with_call.len() > 3, "call did not split the block");
        // Main body + unreachable epilogue only.
        assert_eq!(bs.len(), 2);
    }

    #[test]
    fn schedulable_excludes_control() {
        let (f, bs) = func_blocks("int g;\nint main() { if (g) g = 2; return g; }");
        for b in &bs {
            for i in schedulable(&f, b) {
                assert!(!f.insns[i].op.is_control());
            }
        }
    }
}
