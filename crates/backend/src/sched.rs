//! Basic-block list scheduling.
//!
//! The paper's performance experiment (Table 2's speedup columns) compiles
//! each benchmark twice — dependence edges from GCC alone vs. gated by HLI
//! (Figure 5) — and lets the scheduler reorder within basic blocks. This
//! module is that scheduler: classic latency-weighted critical-path list
//! scheduling over the [`crate::ddg`] graph. Labels stay at block starts,
//! control transfers stay at block ends, and instruction *ids* are
//! preserved so the HLI mapping survives scheduling.
//!
//! Latencies and issue width come from the active
//! [`hli_lir::MachineBackend`] — the scheduler owns **no** latency table
//! of its own (it used to, and the hand-copy drifted from the machine
//! models; the latency-agreement test in `hli-machine` pins that this
//! cannot recur). Ops are priced through the canonical LIR
//! ([`crate::lir::lir_function`]), and makespans are modeled at the
//! target's issue width.

use crate::cfg::{blocks, Block};
use crate::ddg::{build_block_ddg, DepMode, HliSide, QueryStats};
use crate::lir::lir_function;
use crate::rtl::{Insn, Op, RtlFunc};
use hli_lir::{LirFunc, MachineBackend};

/// Result of scheduling one function.
#[derive(Debug, Clone)]
pub struct SchedResult {
    pub func: RtlFunc,
    pub stats: QueryStats,
    /// Blocks whose instruction order actually changed.
    pub blocks_changed: usize,
    pub blocks_total: usize,
}

/// Schedule every basic block of `f` for the target `mach`. `hli` supplies
/// the mapping/query side when `mode` uses HLI answers; pass `None` for
/// the pure-GCC build (the counters then still see GCC results but HLI
/// columns count conservative answers).
pub fn schedule_function(
    f: &RtlFunc,
    hli: Option<&HliSide<'_>>,
    mode: DepMode,
    mach: &dyn MachineBackend,
) -> SchedResult {
    let reg = hli_obs::metrics::cur();
    let ready_hist = reg.histogram("backend.sched.ready_list");
    let prov = hli_obs::provenance::active();
    let mut stats = QueryStats::default();
    let mut new_insns: Vec<Insn> = Vec::with_capacity(f.insns.len());
    let mut blocks_changed = 0;
    let lir = lir_function(f);
    let bs = blocks(f);
    let blocks_total = bs.len();
    for b in &bs {
        let (order, span, est_cycles) =
            schedule_block(f, &lir, b, hli, mode, mach, &mut stats, &ready_hist);
        let mut emitted: Vec<Insn> = Vec::with_capacity(b.len());
        // Leading labels.
        let mut i = b.start;
        while i < b.end {
            if matches!(f.insns[i].op, Op::Label(_)) {
                emitted.push(f.insns[i].clone());
                i += 1;
            } else {
                break;
            }
        }
        for &idx in &order {
            emitted.push(f.insns[idx].clone());
        }
        // Trailing control (terminator) and any interior labels (none by
        // construction, but keep whatever schedulable() excluded).
        for j in i..b.end {
            if f.insns[j].op.is_control() && !matches!(f.insns[j].op, Op::Label(_)) {
                emitted.push(f.insns[j].clone());
            }
        }
        debug_assert_eq!(emitted.len(), b.len(), "block size preserved");
        let changed = emitted.iter().zip(&f.insns[b.range()]).any(|(a, b)| a.id != b.id);
        if changed {
            blocks_changed += 1;
            // Block-level outcome record: the per-pair sched.pair/sched.call
            // records say which reorders the DDG *permitted*; this one says
            // the block's issue order actually changed. Only HLI-gated modes
            // record it — a GccOnly reorder is not an HLI-justified decision.
            if let (Some(sink), true, Some(_)) = (prov.as_deref(), mode != DepMode::GccOnly, hli) {
                sink.record(hli_obs::DecisionRecord {
                    pass: "sched.block".into(),
                    function: f.name.clone(),
                    region_id: None,
                    order: f.insns[b.start].line,
                    // Same span as every sched.pair/sched.call record made
                    // while building this block's DDG: the emitted schedule
                    // is causally downstream of those answers.
                    span,
                    // Estimated benefit: original-program-order makespan
                    // minus scheduled makespan under the same DDG and the
                    // active machine's latency table (DESIGN.md,
                    // "Estimated-benefit models").
                    est_cycles,
                    hli_queries: Vec::new(),
                    verdict: hli_obs::Verdict::Applied,
                });
            }
        }
        new_insns.extend(emitted);
    }
    let mut func = f.clone();
    func.insns = new_insns;
    // Mirror the Table-2 counters (and scheduler effect totals) into the
    // registry; `stats` itself remains the harness's unit of aggregation.
    stats.record(&reg);
    reg.counter("backend.sched.funcs").inc();
    reg.counter("backend.sched.blocks_total").add(blocks_total as u64);
    reg.counter("backend.sched.blocks_changed").add(blocks_changed as u64);
    SchedResult { func, stats, blocks_changed, blocks_total }
}

/// List-schedule one block; returns function-relative indices in issue
/// order, the block's causal span id, and the estimated cycle benefit
/// (program-order makespan minus scheduled makespan; 0 when provenance is
/// off — the estimate only feeds `sched.block` records).
#[allow(clippy::too_many_arguments)]
fn schedule_block(
    f: &RtlFunc,
    lir: &LirFunc,
    b: &Block,
    hli: Option<&HliSide<'_>>,
    mode: DepMode,
    mach: &dyn MachineBackend,
    stats: &mut QueryStats,
    ready_hist: &hli_obs::Histogram,
) -> (Vec<usize>, u64, u64) {
    let g = build_block_ddg(f, b, hli, mode, stats);
    let n = g.nodes.len();
    if n == 0 {
        return (Vec::new(), g.span, 0);
    }
    let width = mach.schedule_constraints().issue_width.max(1) as u64;
    let lat = |k: usize| mach.latency(&lir.ops[g.nodes[k]]);
    // Priority: latency-weighted height (critical path to a sink).
    let mut height = vec![0u64; n];
    for k in (0..n).rev() {
        let best_succ = g.succs[k].iter().map(|&s| height[s]).max().unwrap_or(0);
        height[k] = lat(k) + best_succ;
    }
    let mut remaining_preds: Vec<usize> = g.preds.iter().map(|p| p.len()).collect();
    let mut ready: Vec<usize> = (0..n).filter(|&k| remaining_preds[k] == 0).collect();
    let mut finish = vec![0u64; n];
    let mut order = Vec::with_capacity(n);
    let mut scheduled = vec![false; n];
    let mut time: u64 = 0;
    let mut issued: u64 = 0;
    while order.len() < n {
        ready_hist.observe(ready.len() as u64);
        // Earliest start per ready node.
        let earliest =
            |k: usize| -> u64 { g.preds[k].iter().map(|&p| finish[p]).max().unwrap_or(0) };
        // Prefer nodes startable in the current cycle, by height then
        // program order — while the cycle has free issue slots.
        let pick = if issued < width {
            ready
                .iter()
                .copied()
                .filter(|&k| earliest(k) <= time)
                .max_by_key(|&k| (height[k], std::cmp::Reverse(k)))
        } else {
            None
        };
        match pick {
            Some(k) => {
                finish[k] = time + lat(k);
                issued += 1;
                scheduled[k] = true;
                ready.retain(|&r| r != k);
                order.push(g.nodes[k]);
                for &s in &g.succs[k] {
                    remaining_preds[s] -= 1;
                    if remaining_preds[s] == 0 && !scheduled[s] {
                        ready.push(s);
                    }
                }
            }
            None => {
                // Advance the clock: to the next cycle when this one is
                // merely full, or straight to the first cycle anything
                // becomes startable when nothing is.
                let soonest = ready.iter().copied().map(earliest).min().unwrap_or(0);
                time = if soonest > time {
                    soonest.max(time + 1)
                } else {
                    time + 1
                };
                issued = 0;
            }
        }
    }
    // Estimated benefit for the block's provenance record: what the same
    // DDG + latency table predict program order would have cost, minus
    // what the chosen schedule costs. Only computed when a record could be
    // written (g.span != 0 ⇔ provenance on).
    let est = if g.span != 0 {
        let sched_makespan = finish.iter().copied().max().unwrap_or(0);
        makespan(lir, &g, mach, &(0..n).collect::<Vec<_>>()).saturating_sub(sched_makespan)
    } else {
        0
    };
    (order, g.span, est)
}

/// Makespan of issuing the block's nodes in `seq` order (node positions),
/// up to the target's issue width per cycle, operands ready at their
/// producers' finish times — the same timing rule the list scheduler
/// itself uses.
fn makespan(lir: &LirFunc, g: &crate::ddg::Ddg, mach: &dyn MachineBackend, seq: &[usize]) -> u64 {
    let width = mach.schedule_constraints().issue_width.max(1) as u64;
    let mut finish = vec![0u64; g.nodes.len()];
    let mut time: u64 = 0;
    let mut issued: u64 = 0;
    let mut span = 0u64;
    for &k in seq {
        let earliest = g.preds[k].iter().map(|&p| finish[p]).max().unwrap_or(0);
        if issued >= width {
            time += 1;
            issued = 0;
        }
        if earliest > time {
            time = earliest;
            issued = 0;
        }
        finish[k] = time + mach.latency(&lir.ops[g.nodes[k]]);
        issued += 1;
        span = span.max(finish[k]);
    }
    span
}

/// Schedule every function of a program against its HLI file (the
/// harness's standard path). Returns the scheduled program and the
/// aggregated Table-2 query counters. Each call uses fresh per-function
/// query caches; use [`schedule_program_cached`] to share memos across
/// passes.
pub fn schedule_program(
    prog: &crate::rtl::RtlProgram,
    hli: &hli_core::HliFile,
    mode: DepMode,
    mach: &dyn MachineBackend,
) -> (crate::rtl::RtlProgram, QueryStats) {
    let caches: std::collections::HashMap<String, hli_core::QueryCache> = prog
        .funcs
        .iter()
        .map(|f| (f.name.clone(), hli_core::QueryCache::new()))
        .collect();
    schedule_program_cached(prog, |n| hli.entry(n), mode, mach, &caches)
}

/// Schedule every function, resolving HLI entries through `lookup` (so the
/// caller may serve them from an eagerly-decoded [`hli_core::HliFile`] or an
/// on-demand [`hli_core::HliReader`]) and memoizing query answers in the
/// per-function `caches`. Passing the same `caches` map to several
/// scheduling passes lets the second pass hit memos the first one filled;
/// functions absent from `caches` get a throwaway cache.
pub fn schedule_program_cached<'h>(
    prog: &crate::rtl::RtlProgram,
    lookup: impl Fn(&str) -> Option<&'h hli_core::HliEntry>,
    mode: DepMode,
    mach: &dyn MachineBackend,
    caches: &std::collections::HashMap<String, hli_core::QueryCache>,
) -> (crate::rtl::RtlProgram, QueryStats) {
    let mut out = prog.clone();
    let mut total = QueryStats::default();
    for f in &mut out.funcs {
        let entry = lookup(&f.name);
        let r = match entry {
            Some(e) => {
                let fresh;
                let cache = match caches.get(&f.name) {
                    Some(c) => c,
                    None => {
                        fresh = hli_core::QueryCache::new();
                        &fresh
                    }
                };
                let q = cache.attach(e);
                let map = crate::mapping::map_function(f, e);
                let side = HliSide { query: &q, map: &map };
                schedule_function(f, Some(&side), mode, mach)
            }
            None => schedule_function(f, None, DepMode::GccOnly, mach),
        };
        total.add(&r.stats);
        *f = r.func;
    }
    (out, total)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lower::lower_program;
    use crate::mapping::map_function;
    use crate::rtl::IBinOp;
    use hli_core::QueryCache;
    use hli_frontend::generate_hli;
    use hli_lang::compile_to_ast;
    use hli_lir::TableBackend;

    fn sched(src: &str, func: &str, mode: DepMode) -> (RtlFunc, RtlFunc, QueryStats) {
        let (p, s) = compile_to_ast(src).unwrap();
        let hli = generate_hli(&p, &s);
        let prog = lower_program(&p, &s);
        let f = prog.func(func).unwrap();
        let entry = hli.entry(func).unwrap();
        let cache = QueryCache::new();
        let q = cache.attach(entry);
        let map = map_function(f, entry);
        let side = HliSide { query: &q, map: &map };
        let r = schedule_function(f, Some(&side), mode, &TableBackend::scalar());
        (f.clone(), r.func, r.stats)
    }

    /// Verify the schedule is a permutation preserving all DDG edges.
    fn assert_legal(orig: &RtlFunc, new: &RtlFunc, mode: DepMode) {
        assert_eq!(orig.insns.len(), new.insns.len());
        let mut ids: Vec<u32> = new.insns.iter().map(|i| i.id).collect();
        ids.sort_unstable();
        let mut orig_ids: Vec<u32> = orig.insns.iter().map(|i| i.id).collect();
        orig_ids.sort_unstable();
        assert_eq!(ids, orig_ids, "permutation of the same instructions");
        // Rebuild the DDG on the original order and check the new order
        // respects every edge.
        let pos: std::collections::HashMap<u32, usize> =
            new.insns.iter().enumerate().map(|(i, insn)| (insn.id, i)).collect();
        let mut stats = QueryStats::default();
        for b in blocks(orig) {
            let g = build_block_ddg(orig, &b, None, mode, &mut stats);
            for (k, preds) in g.preds.iter().enumerate() {
                for &p in preds {
                    let from = orig.insns[g.nodes[p]].id;
                    let to = orig.insns[g.nodes[k]].id;
                    assert!(pos[&from] < pos[&to], "edge {from} -> {to} violated by schedule");
                }
            }
        }
    }

    #[test]
    fn schedule_is_legal_permutation() {
        let src = "int a[16]; int b[16]; int g;\n\
            int main() {\n int i;\n for (i = 0; i < 16; i++) {\n  a[i] = g * 3;\n  b[i] = a[i] + g;\n }\n return b[7];\n}";
        let (orig, new, _) = sched(src, "main", DepMode::GccOnly);
        assert_legal(&orig, &new, DepMode::GccOnly);
    }

    #[test]
    fn hli_schedule_hoists_independent_loads() {
        // Pointer stores block following loads under GCC; HLI frees them.
        let src = "double x[64]; double y[64];\n\
            void k(double *p, double *q) {\n\
              int i;\n\
              for (i = 0; i < 64; i++) {\n\
                p[i] = p[i] * 2.0;\n\
                q[i] = q[i] + 1.0;\n\
              }\n\
            }\n\
            int main() { k(x, y); return 0; }";
        let (_, gcc_f, gcc_stats) = sched(src, "k", DepMode::GccOnly);
        let (_, hli_f, hli_stats) = sched(src, "k", DepMode::Combined);
        assert_eq!(gcc_stats.total_tests, hli_stats.total_tests);
        assert!(hli_stats.combined_yes < gcc_stats.gcc_yes);
        // The instruction orders must differ in the loop body.
        let gcc_ids: Vec<u32> = gcc_f.insns.iter().map(|i| i.id).collect();
        let hli_ids: Vec<u32> = hli_f.insns.iter().map(|i| i.id).collect();
        assert_ne!(gcc_ids, hli_ids, "HLI should unlock a different schedule");
    }

    #[test]
    fn labels_and_terminators_stay_pinned() {
        let src = "int g;\nint main() { int i; for (i = 0; i < 4; i++) g += i; return g; }";
        let (orig, new, _) = sched(src, "main", DepMode::Combined);
        for (bo, bn) in blocks(&orig).iter().zip(blocks(&new).iter()) {
            assert_eq!(bo.start, bn.start);
            assert_eq!(bo.end, bn.end);
        }
        // Terminators in place.
        for b in blocks(&new) {
            for i in b.start..b.end.saturating_sub(1) {
                assert!(
                    !matches!(new.insns[i].op, Op::Jump(_) | Op::Branch(..) | Op::Ret(_)),
                    "control instruction migrated"
                );
            }
        }
    }

    #[test]
    fn single_block_critical_path_first() {
        // A long-latency divide feeding the return should be issued before
        // independent cheap ops when possible.
        let src = "int g; int h; int z;\nint main() { int a; int b; a = g / h; b = z + 1; z = b; return a; }";
        let (_, new, _) = sched(src, "main", DepMode::GccOnly);
        let div_pos = new
            .insns
            .iter()
            .position(|i| matches!(i.op, Op::IBin(IBinOp::Div, ..)))
            .unwrap();
        // The divide's operand loads + divide itself should come early; at
        // minimum the schedule is legal and the divide is not last.
        assert!(div_pos + 2 < new.insns.len());
    }

    #[test]
    fn wide_target_schedules_are_still_legal() {
        // A 4-issue in-order table: same latencies, four slots per cycle.
        let wide = TableBackend { issue_width: 4, ..TableBackend::scalar() };
        let src = "int a[16]; int b[16]; int g;\n\
            int main() {\n int i;\n for (i = 0; i < 16; i++) {\n  a[i] = g * 3;\n  b[i] = a[i] + g;\n }\n return b[7];\n}";
        let (p, s) = compile_to_ast(src).unwrap();
        let prog = lower_program(&p, &s);
        let f = prog.func("main").unwrap();
        let r = schedule_function(f, None, DepMode::GccOnly, &wide);
        assert_legal(f, &r.func, DepMode::GccOnly);
    }

    #[test]
    fn scheduler_latencies_come_from_the_backend() {
        // Two backends that differ only in the load latency must be able
        // to produce different critical-path heights — i.e. the scheduler
        // reads the backend's table, not a private copy.
        let a = TableBackend::scalar();
        let mut b = TableBackend::scalar();
        b.table[hli_lir::OpClass::Load.index()] = 40;
        let src = "int g; int h;\nint main() { return g + h; }";
        let (p, s) = compile_to_ast(src).unwrap();
        let prog = lower_program(&p, &s);
        let f = prog.func("main").unwrap();
        let lir = lir_function(f);
        let load = lir.ops.iter().find(|o| o.class == hli_lir::OpClass::Load).unwrap();
        assert_eq!(a.latency(load), 2);
        assert_eq!(b.latency(load), 40);
        // Both schedules stay legal permutations.
        for mach in [&a, &b] {
            let r = schedule_function(f, None, DepMode::GccOnly, mach);
            assert_legal(f, &r.func, DepMode::GccOnly);
        }
    }
}
