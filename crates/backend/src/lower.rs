//! AST → RTL lowering.
//!
//! This is the code generator whose emission rules the front-end's ITEMGEN
//! mirrors (Section 3.1.1 of the paper). The invariant that makes the whole
//! HLI mapping work: **for every source line, the memory references and
//! calls appear in this lowering in exactly the order
//! [`hli_lang::memwalk`] enumerates them.** Property tests in this crate
//! verify the invariant on arbitrary programs.
//!
//! Rules (shared with ITEMGEN):
//! * local scalars whose address is never taken live in virtual registers;
//!   globals, arrays, and address-taken locals live in memory;
//! * the first [`NUM_ARG_REGS`] arguments travel in registers; the rest are
//!   stored to outgoing-argument slots before the call and loaded from
//!   incoming slots at function entry;
//! * scalar returns use the value register (no memory traffic);
//! * `for` lowers as `init; Lcond: cond; brf exit; body; step; jump Lcond`,
//!   keeping the header line's static reference order = init, cond, step.

use crate::rtl::*;
use hli_lang::ast::*;
use hli_lang::interp::GLOBAL_BASE;
use hli_lang::memwalk::NUM_ARG_REGS;
use hli_lang::sema::{Sema, Storage, SymId};
use hli_lang::types::Type;
use std::collections::HashMap;

use crate::unroll::LoopMeta;

/// Lower a whole semantically-checked program.
pub fn lower_program(prog: &Program, sema: &Sema) -> RtlProgram {
    lower_with_loops(prog, sema).0
}

/// Lower and also return, per function, the canonical constant-trip loop
/// metadata the unroller consumes.
pub fn lower_with_loops(
    prog: &Program,
    sema: &Sema,
) -> (RtlProgram, HashMap<String, Vec<LoopMeta>>) {
    let mut global_addr = HashMap::new();
    let mut global_init = Vec::new();
    let mut addr = GLOBAL_BASE;
    for (gi, &sym) in sema.globals.iter().enumerate() {
        global_addr.insert(sym, addr);
        let g = &prog.globals[gi];
        if let Some(init) = &g.init {
            let bits = match (init, &g.ty) {
                (ConstInit::Int(v), Type::Double) => (*v as f64).to_bits(),
                (ConstInit::Int(v), _) => *v as u64,
                (ConstInit::Double(v), Type::Int) => (*v as i64) as u64,
                (ConstInit::Double(v), _) => v.to_bits(),
            };
            global_init.push((addr, bits));
        }
        addr += sema.sym(sym).ty.size().max(8) as i64;
    }
    let mut funcs = Vec::with_capacity(prog.funcs.len());
    let mut loop_metas = HashMap::new();
    let reg = hli_obs::metrics::cur();
    for f in &prog.funcs {
        let (rf, metas) = Lowerer::new(sema, &global_addr).func(f);
        reg.counter("backend.lower.funcs").inc();
        reg.counter("backend.lower.insns").add(rf.insns.len() as u64);
        loop_metas.insert(rf.name.clone(), metas);
        funcs.push(rf);
    }
    (
        RtlProgram { funcs, global_addr, global_init, globals_end: addr },
        loop_metas,
    )
}

/// Where a value lives.
#[derive(Debug, Clone, Copy)]
enum Place {
    Reg(Reg),
    Mem(MemRef),
}

/// An integer value that may still be a compile-time constant (lets
/// constant subscripts fold into the memory-reference offset, which is what
/// gives the GCC-style dependence test its constant-offset precision).
#[derive(Debug, Clone, Copy)]
enum Val {
    Const(i64),
    Reg(Reg),
}

struct Lowerer<'a> {
    sema: &'a Sema,
    #[allow(dead_code)]
    global_addr: &'a HashMap<SymId, i64>,
    insns: Vec<Insn>,
    next_reg: Reg,
    next_label: Label,
    next_insn: InsnId,
    cur_line: u32,
    reg_of: HashMap<SymId, Reg>,
    slot_of: HashMap<SymId, i64>,
    frame_size: i64,
    out_args: u32,
    /// (break target, continue target) stack.
    loop_stack: Vec<(Label, Label)>,
    /// Return type of the function being lowered.
    ret_ty: Type,
    /// Canonical constant-trip loops encountered (for the unroller).
    loop_metas: Vec<LoopMeta>,
}

impl<'a> Lowerer<'a> {
    fn new(sema: &'a Sema, global_addr: &'a HashMap<SymId, i64>) -> Self {
        Lowerer {
            sema,
            global_addr,
            insns: Vec::new(),
            next_reg: 0,
            next_label: 0,
            next_insn: 0,
            cur_line: 0,
            reg_of: HashMap::new(),
            slot_of: HashMap::new(),
            frame_size: 0,
            out_args: 0,
            loop_stack: Vec::new(),
            ret_ty: Type::Void,
            loop_metas: Vec::new(),
        }
    }

    fn reg(&mut self) -> Reg {
        let r = self.next_reg;
        self.next_reg += 1;
        r
    }

    fn label(&mut self) -> Label {
        let l = self.next_label;
        self.next_label += 1;
        l
    }

    fn emit(&mut self, op: Op) {
        let id = self.next_insn;
        self.next_insn += 1;
        self.insns.push(Insn { id, line: self.cur_line, op });
    }

    fn alloc_slot(&mut self, size: i64) -> i64 {
        let off = self.frame_size;
        self.frame_size += size.max(8);
        off
    }

    fn func(mut self, f: &FuncDef) -> (RtlFunc, Vec<LoopMeta>) {
        self.cur_line = f.line;
        self.ret_ty = f.ret.clone();
        let fidx = self.sema.func_sigs[&f.name].index as usize;
        let params = self.sema.func_params[fidx].clone();
        let mut param_regs = Vec::new();
        // Register parameters get their registers up front.
        for (i, &sym) in params.iter().enumerate() {
            if i < NUM_ARG_REGS {
                let r = self.reg();
                param_regs.push(r);
                self.reg_of.insert(sym, r);
            }
        }
        // Entry ABI traffic, in parameter order (matches memwalk):
        // stack-parameter loads, then address-taken spills.
        for (i, &sym) in params.iter().enumerate() {
            if i >= NUM_ARG_REGS {
                let r = self.reg();
                self.emit(Op::Load(
                    r,
                    MemRef {
                        base: BaseAddr::InArg(i as u32),
                        index: None,
                        scale: 8,
                        offset: 0,
                    },
                ));
                self.reg_of.insert(sym, r);
            }
            if self.sema.sym(sym).is_mem_resident() {
                let slot = self.alloc_slot(8);
                self.slot_of.insert(sym, slot);
                let r = self.reg_of[&sym];
                self.emit(Op::Store(MemRef::stack(slot), r));
            }
        }
        self.block(&f.body);
        // Safety net for functions that fall off the end.
        match f.ret {
            Type::Void => self.emit(Op::Ret(None)),
            _ => {
                let z = self.reg();
                self.emit(Op::LiI(z, 0));
                self.emit(Op::Ret(Some(z)));
            }
        }
        let rf = RtlFunc {
            name: f.name.clone(),
            param_regs,
            num_params: params.len(),
            insns: self.insns,
            frame_size: self.frame_size,
            out_args: self.out_args,
            num_regs: self.next_reg,
            has_ret_value: f.ret != Type::Void,
        };
        (rf, self.loop_metas)
    }

    fn block(&mut self, b: &Block) {
        for s in &b.stmts {
            self.stmt(s);
        }
    }

    fn stmt(&mut self, s: &Stmt) {
        self.cur_line = s.line;
        match &s.kind {
            StmtKind::Decl(d) => {
                let sym = self.sema.decl_sym[&s.id];
                let info = self.sema.sym(sym);
                if info.is_mem_resident() {
                    let slot = self.alloc_slot(info.ty.size() as i64);
                    self.slot_of.insert(sym, slot);
                } else {
                    let r = self.reg();
                    self.reg_of.insert(sym, r);
                }
                if let Some(init) = &d.init {
                    let v = self.rvalue(init);
                    let v = self.convert(v, self.sema.ty_of(init), &d.ty);
                    self.cur_line = s.line;
                    match self.place_of_sym(sym) {
                        Place::Reg(r) => self.emit(Op::Move(r, v)),
                        Place::Mem(m) => self.emit(Op::Store(m, v)),
                    }
                }
            }
            StmtKind::Expr(e) => {
                self.rvalue(e);
            }
            StmtKind::Block(b) => self.block(b),
            StmtKind::If { cond, then_body, else_body } => {
                let l_else = self.label();
                self.branch_if_false(cond, l_else);
                self.stmt(then_body);
                match else_body {
                    Some(eb) => {
                        let l_end = self.label();
                        self.emit(Op::Jump(l_end));
                        self.emit(Op::Label(l_else));
                        self.stmt(eb);
                        self.emit(Op::Label(l_end));
                    }
                    None => self.emit(Op::Label(l_else)),
                }
            }
            StmtKind::While { cond, body } => {
                let l_cond = self.label();
                let l_exit = self.label();
                self.emit(Op::Label(l_cond));
                self.cur_line = s.line;
                self.branch_if_false(cond, l_exit);
                self.loop_stack.push((l_exit, l_cond));
                self.stmt(body);
                self.loop_stack.pop();
                self.emit(Op::Jump(l_cond));
                self.emit(Op::Label(l_exit));
            }
            StmtKind::DoWhile { body, cond } => {
                let l_body = self.label();
                let l_cond = self.label();
                let l_exit = self.label();
                self.emit(Op::Label(l_body));
                self.loop_stack.push((l_exit, l_cond));
                self.stmt(body);
                self.loop_stack.pop();
                self.emit(Op::Label(l_cond));
                self.cur_line = s.line;
                self.branch_if_true(cond, l_body);
                self.emit(Op::Label(l_exit));
            }
            StmtKind::For { init, cond, step, body } => {
                if let Some(e) = init {
                    self.rvalue(e);
                }
                let l_cond = self.label();
                let l_step = self.label();
                let l_exit = self.label();
                // Record unroller metadata for canonical constant-trip loops.
                if let Some(cl) = self.sema.loops.get(&s.id) {
                    if let (Some(trip), hli_lang::sema::Bound::Const(lower)) =
                        (cl.trip_count(), cl.lower)
                    {
                        if let Some(&ivar_reg) = self.reg_of.get(&cl.ivar) {
                            self.loop_metas.push(LoopMeta {
                                l_cond,
                                l_step,
                                l_exit,
                                ivar_reg,
                                lower,
                                step: cl.step,
                                trip,
                                header_line: s.line,
                            });
                        }
                    }
                }
                self.emit(Op::Label(l_cond));
                if let Some(c) = cond {
                    self.cur_line = s.line;
                    self.branch_if_false(c, l_exit);
                }
                self.loop_stack.push((l_exit, l_step));
                self.stmt(body);
                self.loop_stack.pop();
                self.emit(Op::Label(l_step));
                if let Some(e) = step {
                    self.cur_line = s.line;
                    self.rvalue(e);
                }
                self.emit(Op::Jump(l_cond));
                self.emit(Op::Label(l_exit));
            }
            StmtKind::Return(v) => match v {
                Some(e) => {
                    let r = self.rvalue(e);
                    let ety = self.sema.ty_of(e).clone();
                    let rty = self.ret_ty.clone();
                    let r = self.convert(r, &ety, &rty);
                    self.emit(Op::Ret(Some(r)));
                }
                None => self.emit(Op::Ret(None)),
            },
            StmtKind::Break => {
                let (l_exit, _) = *self.loop_stack.last().expect("break inside loop");
                self.emit(Op::Jump(l_exit));
            }
            StmtKind::Continue => {
                let (_, l_cont) = *self.loop_stack.last().expect("continue inside loop");
                self.emit(Op::Jump(l_cont));
            }
            StmtKind::Empty => {}
        }
    }

    // ---- conditions --------------------------------------------------------

    fn branch_if_false(&mut self, e: &Expr, target: Label) {
        self.branch_cond(e, target, false);
    }

    fn branch_if_true(&mut self, e: &Expr, target: Label) {
        self.branch_cond(e, target, true);
    }

    /// Branch to `target` when `e`'s truth equals `when`.
    fn branch_cond(&mut self, e: &Expr, target: Label, when: bool) {
        match &e.kind {
            ExprKind::Binary(op, a, b)
                if op.is_boolean() && !matches!(op, BinOp::LogAnd | BinOp::LogOr) =>
            {
                let ta = self.sema.ty_of(a).decayed();
                let tb = self.sema.ty_of(b).decayed();
                let cmp = cmp_of(*op);
                if ta.is_float() || tb.is_float() {
                    let ra = self.rvalue(a);
                    let ra = self.as_float_reg(ra, &ta);
                    let rb = self.rvalue(b);
                    let rb = self.as_float_reg(rb, &tb);
                    let rc = self.reg();
                    self.emit(Op::FCmp(cmp, rc, ra, rb));
                    let z = self.reg();
                    self.emit(Op::LiI(z, 0));
                    let pred = if when { CmpOp::Ne } else { CmpOp::Eq };
                    self.emit(Op::Branch(pred, rc, z, target));
                } else {
                    let ra = self.rvalue(a);
                    let rb = self.rvalue(b);
                    let pred = if when { cmp } else { negate(cmp) };
                    self.emit(Op::Branch(pred, ra, rb, target));
                }
            }
            ExprKind::Binary(BinOp::LogAnd, a, b) => {
                if when {
                    // Jump to target iff a && b.
                    let l_no = self.label();
                    self.branch_if_false(a, l_no);
                    self.branch_if_true(b, target);
                    self.emit(Op::Label(l_no));
                } else {
                    self.branch_if_false(a, target);
                    self.branch_if_false(b, target);
                }
            }
            ExprKind::Binary(BinOp::LogOr, a, b) => {
                if when {
                    self.branch_if_true(a, target);
                    self.branch_if_true(b, target);
                } else {
                    let l_yes = self.label();
                    self.branch_if_true(a, l_yes);
                    self.branch_if_false(b, target);
                    self.emit(Op::Label(l_yes));
                }
            }
            ExprKind::Unary(UnOp::Not, x) => self.branch_cond(x, target, !when),
            _ => {
                let r = self.rvalue(e);
                let r = if self.sema.ty_of(e).is_float() {
                    // Compare against 0.0.
                    let zf = self.reg();
                    self.emit(Op::LiF(zf, 0.0));
                    let rc = self.reg();
                    self.emit(Op::FCmp(CmpOp::Ne, rc, r, zf));
                    rc
                } else {
                    r
                };
                let z = self.reg();
                self.emit(Op::LiI(z, 0));
                let pred = if when { CmpOp::Ne } else { CmpOp::Eq };
                self.emit(Op::Branch(pred, r, z, target));
            }
        }
    }

    // ---- places ------------------------------------------------------------

    fn place_of_sym(&mut self, sym: SymId) -> Place {
        let info = self.sema.sym(sym);
        if info.is_mem_resident() {
            match info.storage {
                Storage::Global => Place::Mem(MemRef::sym(sym)),
                _ => Place::Mem(MemRef::stack(self.slot_of[&sym])),
            }
        } else {
            Place::Reg(self.reg_of[&sym])
        }
    }

    /// Compute the place of an lvalue, emitting its address code. Emission
    /// order matches `memwalk::lvalue_address`.
    fn place(&mut self, e: &Expr) -> Place {
        match &e.kind {
            ExprKind::Ident(_) => self.place_of_sym(self.sema.sym_of(e)),
            ExprKind::Index(..) => {
                let m = self.index_memref(e);
                Place::Mem(m)
            }
            ExprKind::Deref(p) => {
                let r = self.rvalue(p);
                Place::Mem(MemRef::reg(r))
            }
            _ => unreachable!("not an lvalue"),
        }
    }

    /// Build the memory reference of a (fully-subscripted) `Index` chain.
    fn index_memref(&mut self, e: &Expr) -> MemRef {
        // Peel the chain.
        let mut subs: Vec<&Expr> = Vec::new();
        let mut cur = e;
        while let ExprKind::Index(b, i) = &cur.kind {
            subs.push(i);
            cur = b;
        }
        subs.reverse();
        // `cur` is the base: an array designator or a pointer expression.
        let (base, strides) = match &cur.kind {
            ExprKind::Ident(_) if self.sema.ty_of(cur).is_array() => {
                let sym = self.sema.sym_of(cur);
                let dims = self.sema.sym(sym).ty.array_dims();
                let strides = strides_for(&dims, subs.len());
                let base = match self.sema.sym(sym).storage {
                    Storage::Global => BaseAddr::Sym(sym),
                    _ => BaseAddr::Stack(self.slot_of[&sym]),
                };
                (base, strides)
            }
            _ => {
                // Pointer base: evaluate it (may emit its own loads).
                let pt = self.sema.ty_of(cur).decayed();
                let r = self.rvalue(cur);
                let pointee_dims = match &pt {
                    Type::Ptr(inner) => inner.array_dims(),
                    _ => vec![],
                };
                let mut dims = pointee_dims;
                dims.insert(0, 0); // outermost dimension is unbounded
                let strides = strides_for(&dims, subs.len());
                (BaseAddr::Reg(r), strides)
            }
        };
        // Linearize: value = Σ sub_k · stride_k, keeping constants folded.
        let mut const_part: i64 = 0;
        let mut reg_part: Option<Reg> = None;
        for (sub, stride) in subs.iter().zip(&strides) {
            match self.int_value(sub) {
                Val::Const(c) => const_part += c * stride,
                Val::Reg(r) => {
                    let scaled = if *stride == 1 {
                        r
                    } else {
                        let d = self.reg();
                        self.emit(Op::IBinI(IBinOp::Mul, d, r, *stride));
                        d
                    };
                    reg_part = Some(match reg_part {
                        None => scaled,
                        Some(prev) => {
                            let d = self.reg();
                            self.emit(Op::IBin(IBinOp::Add, d, prev, scaled));
                            d
                        }
                    });
                }
            }
        }
        MemRef { base, index: reg_part, scale: 8, offset: const_part * 8 }
    }

    /// Evaluate an integer expression, keeping literals symbolic.
    fn int_value(&mut self, e: &Expr) -> Val {
        match &e.kind {
            ExprKind::IntLit(v) => Val::Const(*v),
            ExprKind::Unary(UnOp::Neg, a) => {
                if let ExprKind::IntLit(v) = a.kind {
                    Val::Const(-v)
                } else {
                    Val::Reg(self.rvalue(e))
                }
            }
            _ => Val::Reg(self.rvalue(e)),
        }
    }

    fn load_place(&mut self, p: Place) -> Reg {
        match p {
            Place::Reg(r) => r,
            Place::Mem(m) => {
                let d = self.reg();
                self.emit(Op::Load(d, m));
                d
            }
        }
    }

    fn store_place(&mut self, p: Place, v: Reg) {
        match p {
            Place::Reg(r) => self.emit(Op::Move(r, v)),
            Place::Mem(m) => self.emit(Op::Store(m, v)),
        }
    }

    /// Materialize the address a memory place designates.
    fn addr_of_place(&mut self, p: Place) -> Reg {
        let Place::Mem(m) = p else { unreachable!("address of register value") };
        let base = self.reg();
        match m.base {
            BaseAddr::Reg(r) => self.emit(Op::Move(base, r)),
            b => self.emit(Op::La(base, b, 0)),
        }
        let mut acc = base;
        if let Some(idx) = m.index {
            let scaled = self.reg();
            self.emit(Op::IBinI(IBinOp::Mul, scaled, idx, m.scale));
            let d = self.reg();
            self.emit(Op::IBin(IBinOp::Add, d, acc, scaled));
            acc = d;
        }
        if m.offset != 0 {
            let d = self.reg();
            self.emit(Op::IBinI(IBinOp::Add, d, acc, m.offset));
            acc = d;
        }
        acc
    }

    // ---- conversions --------------------------------------------------------

    fn convert(&mut self, r: Reg, from: &Type, to: &Type) -> Reg {
        let from = from.decayed();
        match (from.is_float(), to.is_float()) {
            (false, true) => {
                let d = self.reg();
                self.emit(Op::CvtIF(d, r));
                d
            }
            (true, false) if !matches!(to, Type::Double) => {
                let d = self.reg();
                self.emit(Op::CvtFI(d, r));
                d
            }
            _ => r,
        }
    }

    fn as_float_reg(&mut self, r: Reg, ty: &Type) -> Reg {
        if ty.is_float() {
            r
        } else {
            let d = self.reg();
            self.emit(Op::CvtIF(d, r));
            d
        }
    }

    // ---- expressions ---------------------------------------------------------

    /// Lower an expression to a register. Memory/call emission order matches
    /// `memwalk::rvalue`.
    fn rvalue(&mut self, e: &Expr) -> Reg {
        self.cur_line = e.line;
        match &e.kind {
            ExprKind::IntLit(v) => {
                let d = self.reg();
                self.emit(Op::LiI(d, *v));
                d
            }
            ExprKind::FloatLit(v) => {
                let d = self.reg();
                self.emit(Op::LiF(d, *v));
                d
            }
            ExprKind::Ident(_) => {
                let ty = self.sema.ty_of(e).clone();
                if ty.is_array() {
                    // Decay to the array's address.
                    let sym = self.sema.sym_of(e);
                    let d = self.reg();
                    match self.sema.sym(sym).storage {
                        Storage::Global => self.emit(Op::La(d, BaseAddr::Sym(sym), 0)),
                        _ => {
                            let slot = self.slot_of[&sym];
                            self.emit(Op::La(d, BaseAddr::Stack(slot), 0));
                        }
                    }
                    d
                } else {
                    let p = self.place_of_sym(self.sema.sym_of(e));
                    self.load_place(p)
                }
            }
            ExprKind::Unary(op, a) => {
                let ta = self.sema.ty_of(a).decayed();
                let r = self.rvalue(a);
                let d = self.reg();
                match op {
                    UnOp::Neg => {
                        if ta.is_float() {
                            let z = self.reg();
                            self.emit(Op::LiF(z, 0.0));
                            self.emit(Op::FBin(FBinOp::Sub, d, z, r));
                        } else {
                            let z = self.reg();
                            self.emit(Op::LiI(z, 0));
                            self.emit(Op::IBin(IBinOp::Sub, d, z, r));
                        }
                    }
                    UnOp::Not => {
                        if ta.is_float() {
                            let z = self.reg();
                            self.emit(Op::LiF(z, 0.0));
                            self.emit(Op::FCmp(CmpOp::Eq, d, r, z));
                        } else {
                            let z = self.reg();
                            self.emit(Op::LiI(z, 0));
                            self.emit(Op::ICmp(CmpOp::Eq, d, r, z));
                        }
                    }
                    UnOp::BitNot => {
                        let m1 = self.reg();
                        self.emit(Op::LiI(m1, -1));
                        self.emit(Op::IBin(IBinOp::Xor, d, r, m1));
                    }
                }
                d
            }
            ExprKind::Binary(op, a, b) => self.binary(e, *op, a, b),
            ExprKind::Index(..) => {
                if self.sema.ty_of(e).is_array() {
                    // Partial index: an address.
                    let m = self.index_memref(e);
                    self.addr_of_place(Place::Mem(m))
                } else {
                    let p = self.place(e);
                    // Subscript lowering may have advanced cur_line; the
                    // reference itself belongs to this expression's line
                    // (the line-table mapping key).
                    self.cur_line = e.line;
                    self.load_place(p)
                }
            }
            ExprKind::Deref(_) => {
                let p = self.place(e);
                self.cur_line = e.line;
                self.load_place(p)
            }
            ExprKind::Addr(lv) => {
                let p = self.place(lv);
                self.addr_of_place(p)
            }
            ExprKind::Assign(lhs, rhs) => {
                let v = self.rvalue(rhs);
                let v = self.convert(v, self.sema.ty_of(rhs), self.sema.ty_of(lhs));
                let p = self.place(lhs);
                self.cur_line = e.line;
                self.store_place(p, v);
                v
            }
            ExprKind::CompoundAssign(op, lhs, rhs) => {
                let tl = self.sema.ty_of(lhs).clone();
                let p = self.place(lhs);
                self.cur_line = e.line;
                let old = self.load_place(p);
                let rv = self.rvalue(rhs);
                let tr = self.sema.ty_of(rhs).clone();
                let combined = self.apply_bin(*op, old, &tl, rv, &tr, &tl);
                self.cur_line = e.line;
                self.store_place(p, combined);
                combined
            }
            ExprKind::IncDec(kind, lv) => {
                let ty = self.sema.ty_of(lv).clone();
                let p = self.place(lv);
                self.cur_line = e.line;
                let old = self.load_place(p);
                let delta = match &ty {
                    Type::Ptr(t) => t.size().max(8) as i64,
                    _ => 1,
                };
                let delta = if kind.is_inc() { delta } else { -delta };
                let new = self.reg();
                if ty.is_float() {
                    let dr = self.reg();
                    self.emit(Op::LiF(dr, delta as f64));
                    self.emit(Op::FBin(FBinOp::Add, new, old, dr));
                } else {
                    self.emit(Op::IBinI(IBinOp::Add, new, old, delta));
                }
                self.store_place(p, new);
                if kind.is_pre() {
                    new
                } else {
                    old
                }
            }
            ExprKind::Call(name, args) => {
                let sig = self.sema.func_sigs[name].clone();
                let mut reg_args = Vec::new();
                for (i, a) in args.iter().enumerate() {
                    let r = self.rvalue(a);
                    let r = self.convert(r, self.sema.ty_of(a), &sig.params[i]);
                    self.cur_line = e.line;
                    if i < NUM_ARG_REGS {
                        reg_args.push(r);
                    } else {
                        self.out_args = self.out_args.max((i + 1 - NUM_ARG_REGS) as u32);
                        self.emit(Op::Store(
                            MemRef {
                                base: BaseAddr::OutArg(i as u32),
                                index: None,
                                scale: 8,
                                offset: 0,
                            },
                            r,
                        ));
                    }
                }
                let dst = if sig.ret == Type::Void {
                    None
                } else {
                    Some(self.reg())
                };
                self.emit(Op::Call { dst, func: name.clone(), args: reg_args });
                dst.unwrap_or_else(|| {
                    // Void calls in expression position only occur as
                    // statements; hand back a dummy.
                    let d = self.reg();
                    // No instruction needed: the register is never read.
                    d
                })
            }
        }
    }

    fn binary(&mut self, e: &Expr, op: BinOp, a: &Expr, b: &Expr) -> Reg {
        let ta = self.sema.ty_of(a).decayed();
        let tb = self.sema.ty_of(b).decayed();
        match op {
            BinOp::LogAnd => {
                let d = self.reg();
                let l_end = self.label();
                self.emit(Op::LiI(d, 0));
                self.branch_if_false_reg_chain(a, l_end);
                self.branch_if_false_reg_chain(b, l_end);
                self.emit(Op::LiI(d, 1));
                self.emit(Op::Label(l_end));
                return d;
            }
            BinOp::LogOr => {
                let d = self.reg();
                let l_true = self.label();
                let l_end = self.label();
                self.emit(Op::LiI(d, 0));
                self.branch_if_true(a, l_true);
                self.branch_if_true(b, l_true);
                self.emit(Op::Jump(l_end));
                self.emit(Op::Label(l_true));
                self.emit(Op::LiI(d, 1));
                self.emit(Op::Label(l_end));
                return d;
            }
            _ => {}
        }
        // Pointer arithmetic scales by pointee size.
        if matches!(op, BinOp::Add | BinOp::Sub) && (ta.is_pointer() || tb.is_pointer()) {
            return self.pointer_arith(op, a, &ta, b, &tb);
        }
        let ra = self.rvalue(a);
        let rb = self.rvalue(b);
        self.cur_line = e.line;
        let tr = self.sema.ty_of(e).clone();
        self.apply_bin(op, ra, &ta, rb, &tb, &tr)
    }

    /// Apply a binary operator to evaluated operands.
    fn apply_bin(&mut self, op: BinOp, ra: Reg, ta: &Type, rb: Reg, tb: &Type, tr: &Type) -> Reg {
        let float = ta.is_float() || tb.is_float();
        let d = self.reg();
        if op.is_boolean() {
            let cmp = cmp_of(op);
            if float {
                let fa = self.as_float_reg(ra, ta);
                let fb = self.as_float_reg(rb, tb);
                self.emit(Op::FCmp(cmp, d, fa, fb));
            } else {
                self.emit(Op::ICmp(cmp, d, ra, rb));
            }
            return d;
        }
        if float {
            let fa = self.as_float_reg(ra, ta);
            let fb = self.as_float_reg(rb, tb);
            let fop = match op {
                BinOp::Add => FBinOp::Add,
                BinOp::Sub => FBinOp::Sub,
                BinOp::Mul => FBinOp::Mul,
                BinOp::Div => FBinOp::Div,
                _ => unreachable!("integer-only op on floats rejected by sema"),
            };
            self.emit(Op::FBin(fop, d, fa, fb));
            // Truncate back when the result type is int (e.g. compound
            // assign into an int lvalue).
            if !tr.is_float() && tr.is_numeric() {
                let t = self.reg();
                self.emit(Op::CvtFI(t, d));
                return t;
            }
            return d;
        }
        let iop = match op {
            BinOp::Add => IBinOp::Add,
            BinOp::Sub => IBinOp::Sub,
            BinOp::Mul => IBinOp::Mul,
            BinOp::Div => IBinOp::Div,
            BinOp::Rem => IBinOp::Rem,
            BinOp::Shl => IBinOp::Shl,
            BinOp::Shr => IBinOp::Shr,
            BinOp::BitAnd => IBinOp::And,
            BinOp::BitOr => IBinOp::Or,
            BinOp::BitXor => IBinOp::Xor,
            _ => unreachable!(),
        };
        self.emit(Op::IBin(iop, d, ra, rb));
        // Integer op feeding a double slot converts at the consumer.
        if tr.is_float() {
            let t = self.reg();
            self.emit(Op::CvtIF(t, d));
            return t;
        }
        d
    }

    fn pointer_arith(&mut self, op: BinOp, a: &Expr, ta: &Type, b: &Expr, tb: &Type) -> Reg {
        let ra = self.rvalue(a);
        let rb = self.rvalue(b);
        let d = self.reg();
        match (ta, tb) {
            (Type::Ptr(t), Type::Ptr(_)) if op == BinOp::Sub => {
                let diff = self.reg();
                self.emit(Op::IBin(IBinOp::Sub, diff, ra, rb));
                self.emit(Op::IBinI(IBinOp::Div, d, diff, t.size().max(8) as i64));
            }
            (Type::Ptr(t), _) => {
                let scaled = self.reg();
                self.emit(Op::IBinI(IBinOp::Mul, scaled, rb, t.size().max(8) as i64));
                match op {
                    BinOp::Add => self.emit(Op::IBin(IBinOp::Add, d, ra, scaled)),
                    BinOp::Sub => self.emit(Op::IBin(IBinOp::Sub, d, ra, scaled)),
                    _ => unreachable!(),
                }
            }
            (_, Type::Ptr(t)) => {
                let scaled = self.reg();
                self.emit(Op::IBinI(IBinOp::Mul, scaled, ra, t.size().max(8) as i64));
                self.emit(Op::IBin(IBinOp::Add, d, rb, scaled));
            }
            _ => unreachable!("pointer_arith called without pointer operands"),
        }
        d
    }

    /// Like `branch_if_false`, but does not recurse into `&&`/`||` value
    /// lowering (used by the logical-value path to keep operand order).
    fn branch_if_false_reg_chain(&mut self, e: &Expr, target: Label) {
        self.branch_if_false(e, target);
    }
}

fn cmp_of(op: BinOp) -> CmpOp {
    match op {
        BinOp::Lt => CmpOp::Lt,
        BinOp::Le => CmpOp::Le,
        BinOp::Gt => CmpOp::Gt,
        BinOp::Ge => CmpOp::Ge,
        BinOp::Eq => CmpOp::Eq,
        BinOp::Ne => CmpOp::Ne,
        _ => unreachable!("not a comparison"),
    }
}

fn negate(c: CmpOp) -> CmpOp {
    match c {
        CmpOp::Eq => CmpOp::Ne,
        CmpOp::Ne => CmpOp::Eq,
        CmpOp::Lt => CmpOp::Ge,
        CmpOp::Le => CmpOp::Gt,
        CmpOp::Gt => CmpOp::Le,
        CmpOp::Ge => CmpOp::Lt,
    }
}

/// Element strides for a subscript chain over dimension lengths `dims`
/// (`dims[0]` may be 0 for the unbounded outer pointer dimension). The
/// k-th subscript's stride is the product of *all* dimensions beyond the
/// k-th — including ones not subscripted (partial indexing yields the
/// address of a whole sub-array).
fn strides_for(dims: &[usize], nsubs: usize) -> Vec<i64> {
    let mut strides = vec![1i64; nsubs];
    for (k, stride) in strides.iter_mut().enumerate() {
        let mut s = 1i64;
        for d in &dims[(k + 1).min(dims.len())..] {
            s *= (*d).max(1) as i64;
        }
        *stride = s;
    }
    strides
}

#[cfg(test)]
mod tests {
    use super::*;
    use hli_lang::compile_to_ast;
    use hli_lang::memwalk::{walk_function, AccessKind};

    fn lowered(src: &str) -> (RtlProgram, Program, Sema) {
        let (p, s) = compile_to_ast(src).unwrap();
        let r = lower_program(&p, &s);
        (r, p, s)
    }

    /// The load/store/call sequence per line must match memwalk exactly.
    fn check_contract(src: &str) {
        let (r, p, s) = lowered(src);
        for f in &p.funcs {
            let events: Vec<(u32, AccessKind)> =
                walk_function(f, &s).into_iter().map(|ev| (ev.line, ev.kind)).collect();
            let rf = r.func(&f.name).unwrap();
            let refs: Vec<(u32, AccessKind)> = rf
                .insns
                .iter()
                .filter_map(|i| match &i.op {
                    Op::Load(..) => Some((i.line, AccessKind::Load)),
                    Op::Store(..) => Some((i.line, AccessKind::Store)),
                    Op::Call { .. } => Some((i.line, AccessKind::Call)),
                    _ => None,
                })
                .collect();
            assert_eq!(
                events,
                refs,
                "ITEMGEN/lowering contract broken for `{}`:\n{}",
                f.name,
                dump_func(rf)
            );
        }
    }

    #[test]
    fn contract_scalar_globals() {
        check_contract("int g; int h;\nint main() {\n g = h + g;\n g += h;\n g++;\n return g;\n}");
    }

    #[test]
    fn contract_arrays_and_loops() {
        check_contract(
            "int a[10]; int b[10][4];\nint main() {\n int i; int j;\n for (i = 0; i < 10; i++) {\n  a[i] = a[i] + 1;\n  for (j = 0; j < 4; j++) b[i][j] = a[i];\n }\n return a[3] + b[2][1];\n}",
        );
    }

    #[test]
    fn contract_pointers() {
        check_contract(
            "int x; int *gp;\nint main() {\n int *p;\n p = &x;\n gp = p;\n *p = 3;\n *gp = *p + 1;\n return x;\n}",
        );
    }

    #[test]
    fn contract_calls_and_stack_args() {
        check_contract(
            "int g;\nint f(int a, int b, int c, int d, int e, int x) { return a + x + g; }\nint main() {\n return f(g, 2, 3, 4, g, 6);\n}",
        );
    }

    #[test]
    fn contract_conditionals_and_shortcircuit() {
        check_contract(
            "int g; int h;\nint main() {\n int r;\n if (g && h) r = 1; else r = 2;\n while (g || h) { r++; break; }\n r = g && (h || g);\n return r;\n}",
        );
    }

    #[test]
    fn contract_address_taken_locals_and_params() {
        check_contract(
            "void t(int *p) { *p = 1; }\nint f(int a) { t(&a); return a; }\nint main() {\n int x;\n int *q;\n q = &x;\n *q = 5;\n return f(x);\n}",
        );
    }

    #[test]
    fn contract_for_one_liner() {
        check_contract(
            "int a[8]; int g;\nint main() { int i; for (i = g; i < g + 4; i++) a[i] = g; return 0; }",
        );
    }

    #[test]
    fn contract_do_while() {
        check_contract(
            "int g;\nint main() {\n int i; i = 0;\n do { g += i; i++; }\n while (i < g);\n return g;\n}",
        );
    }

    #[test]
    fn constant_subscripts_fold_to_offsets() {
        let (r, _, _) = lowered("int a[10];\nint main() { a[3] = 1; return a[7]; }");
        let f = r.func("main").unwrap();
        let mems: Vec<&MemRef> = f.insns.iter().filter_map(|i| i.op.mem_ref()).collect();
        assert_eq!(mems.len(), 2);
        assert_eq!(mems[0].offset, 24);
        assert!(mems[0].index.is_none());
        assert_eq!(mems[1].offset, 56);
    }

    #[test]
    fn multidim_constant_folding() {
        let (r, _, _) = lowered("int m[4][8];\nint main() { m[2][3] = 1; return 0; }");
        let f = r.func("main").unwrap();
        let mem = f.insns.iter().find_map(|i| i.op.mem_ref()).unwrap();
        // (2*8 + 3) * 8 bytes.
        assert_eq!(mem.offset, 19 * 8);
        assert!(mem.index.is_none());
    }

    #[test]
    fn mixed_subscript_keeps_offset_and_index() {
        let (r, _, _) =
            lowered("int m[4][8];\nint main() { int i; for (i=0;i<4;i++) m[i][3] = 1; return 0; }");
        let f = r.func("main").unwrap();
        let mem = f.insns.iter().find_map(|i| i.op.mem_ref()).unwrap();
        assert_eq!(mem.offset, 24, "constant inner subscript folds");
        assert!(mem.index.is_some(), "variable outer subscript stays indexed");
    }

    #[test]
    fn frame_allocates_arrays_and_spills() {
        let (r, _, _) =
            lowered("int main() { int a[16]; int x; int *p; p = &x; a[0] = *p; return a[0]; }");
        let f = r.func("main").unwrap();
        assert!(f.frame_size >= 16 * 8 + 8, "frame {} too small", f.frame_size);
    }

    #[test]
    fn out_args_counted() {
        let (r, _, _) = lowered(
            "int f(int a,int b,int c,int d,int e,int g,int h) { return a; }\nint main() { return f(1,2,3,4,5,6,7); }",
        );
        assert_eq!(r.func("main").unwrap().out_args, 3);
        assert_eq!(r.func("f").unwrap().param_regs.len(), 4);
        assert_eq!(r.func("f").unwrap().num_params, 7);
    }

    #[test]
    fn partial_index_strides_cover_unsubscripted_dims() {
        // `m[1]` decays to a row pointer: its address is 1 × 8 elements in,
        // not 1 element in (regression: doduc miscompiled via this).
        let (r, _, _) = lowered(
            "double m[4][8];\nvoid f(double *row) { row[2] = 7.0; }\nint main() { f(m[1]); return 0; }",
        );
        let f = r.func("main").unwrap();
        let la_offsets: Vec<i64> = f
            .insns
            .iter()
            .filter_map(|i| match i.op {
                Op::IBinI(IBinOp::Add, _, _, k) => Some(k),
                Op::La(_, _, k) if k != 0 => Some(k),
                _ => None,
            })
            .collect();
        assert!(
            la_offsets.contains(&64),
            "row 1 must be 64 bytes in: {la_offsets:?}\n{}",
            dump_func(f)
        );
        assert_eq!(strides_for(&[4, 8], 1), vec![8]);
        assert_eq!(strides_for(&[4, 8], 2), vec![8, 1]);
        assert_eq!(strides_for(&[0, 8, 8], 1), vec![64]);
    }

    #[test]
    fn globals_laid_out_and_initialized() {
        let (r, _, s) = lowered("int g = 5; double d = 2.5; int a[4];\nint main() { return 0; }");
        assert_eq!(r.global_init.len(), 2);
        assert_eq!(r.global_init[0].1, 5);
        assert_eq!(r.global_init[1].1, 2.5f64.to_bits());
        // Layout is dense from GLOBAL_BASE.
        let mut addrs: Vec<i64> = s.globals.iter().map(|g| r.global_addr[g]).collect();
        addrs.sort();
        assert_eq!(addrs[0], GLOBAL_BASE);
        assert_eq!(r.globals_end, GLOBAL_BASE + 8 + 8 + 32);
    }
}
