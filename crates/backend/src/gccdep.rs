//! The baseline ("GCC") memory dependence test.
//!
//! GCC 2.7's `true_dependence`/`anti_dependence` family disambiguates with
//! purely local, syntactic information: distinct named objects cannot
//! conflict, constant offsets from the same base disambiguate, and anything
//! addressed through a register (a pointer) conflicts with everything that
//! isn't a provably different named object. Calls clobber all of memory.
//! This is the `gcc_value` side of Figure 5 and the "GCC result" column of
//! Table 2.

use crate::rtl::{BaseAddr, MemRef};

/// May two memory references touch the same location, by GCC-local rules?
pub fn may_conflict(a: &MemRef, b: &MemRef) -> bool {
    use BaseAddr::*;
    match (a.base, b.base) {
        // Distinct named objects never overlap; same object with constant
        // offsets disambiguates (8-byte accesses).
        (Sym(x), Sym(y)) => {
            if x != y {
                return false;
            }
            same_object_conflict(a, b)
        }
        (Stack(x), Stack(y)) => {
            if x != y {
                // Different frame objects.
                return false;
            }
            same_object_conflict(a, b)
        }
        // Globals and frame objects live in different segments.
        (Sym(_), Stack(_)) | (Stack(_), Sym(_)) => false,
        // The argument-passing areas are compiler-controlled: disjoint from
        // program objects and from each other unless the same slot.
        (OutArg(x), OutArg(y)) => x == y,
        (InArg(x), InArg(y)) => x == y,
        (OutArg(_) | InArg(_), Sym(_) | Stack(_)) => false,
        (Sym(_) | Stack(_), OutArg(_) | InArg(_)) => false,
        (OutArg(_), InArg(_)) | (InArg(_), OutArg(_)) => false,
        // A pointer can point anywhere the compiler can't refute — but not
        // into the ABI argument areas, whose addresses are never exposed.
        (Reg(_), OutArg(_) | InArg(_)) | (OutArg(_) | InArg(_), Reg(_)) => false,
        (Reg(_), _) | (_, Reg(_)) => true,
    }
}

/// Same base object: constant offsets (no index registers) disambiguate.
fn same_object_conflict(a: &MemRef, b: &MemRef) -> bool {
    if a.index.is_none() && b.index.is_none() {
        // 8-byte accesses at constant offsets overlap iff equal (aligned).
        return a.offset == b.offset;
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rtl::MemRef;

    fn sym(s: u32, off: i64) -> MemRef {
        MemRef { base: BaseAddr::Sym(s), index: None, scale: 8, offset: off }
    }

    fn sym_idx(s: u32, idx: u32) -> MemRef {
        MemRef {
            base: BaseAddr::Sym(s),
            index: Some(idx),
            scale: 8,
            offset: 0,
        }
    }

    #[test]
    fn distinct_globals_never_conflict() {
        assert!(!may_conflict(&sym(0, 0), &sym(1, 0)));
        assert!(!may_conflict(&sym_idx(0, 5), &sym_idx(1, 5)));
    }

    #[test]
    fn same_global_const_offsets() {
        assert!(may_conflict(&sym(0, 8), &sym(0, 8)));
        assert!(!may_conflict(&sym(0, 0), &sym(0, 8)));
    }

    #[test]
    fn same_global_with_index_conflicts() {
        assert!(may_conflict(&sym_idx(0, 3), &sym(0, 8)));
        assert!(may_conflict(&sym_idx(0, 3), &sym_idx(0, 4)));
    }

    #[test]
    fn stack_vs_global_never() {
        assert!(!may_conflict(&MemRef::stack(0), &sym(0, 0)));
    }

    #[test]
    fn distinct_stack_slots_never() {
        let a = MemRef {
            base: BaseAddr::Stack(0),
            index: Some(1),
            scale: 8,
            offset: 0,
        };
        let b = MemRef {
            base: BaseAddr::Stack(128),
            index: Some(2),
            scale: 8,
            offset: 0,
        };
        assert!(!may_conflict(&a, &b));
        assert!(may_conflict(&a, &MemRef::stack(0)));
    }

    #[test]
    fn pointer_conflicts_with_named_objects() {
        let p = MemRef::reg(7);
        assert!(may_conflict(&p, &sym(0, 0)));
        assert!(may_conflict(&p, &MemRef::stack(8)));
        assert!(may_conflict(&p, &MemRef::reg(9)));
    }

    #[test]
    fn arg_areas_are_private() {
        let out = MemRef { base: BaseAddr::OutArg(4), index: None, scale: 8, offset: 0 };
        let out5 = MemRef { base: BaseAddr::OutArg(5), index: None, scale: 8, offset: 0 };
        assert!(may_conflict(&out, &out));
        assert!(!may_conflict(&out, &out5));
        assert!(!may_conflict(&out, &sym(0, 0)));
        assert!(!may_conflict(&out, &MemRef::reg(3)));
    }
}
