//! Data dependence graph construction for the instruction scheduler.
//!
//! This pass is the instrumented decision point of the paper's Table 2:
//! for every pair of memory references in a basic block with at least one
//! write, a *dependence query* is made ("do A and B refer to the same
//! memory location?"). The GCC-local answer ([`crate::gccdep`]) and the
//! HLI answer (`HLI_GetEquivAcc`, through the mapping) are counted
//! separately, and the Figure-5 combiner (`gcc_value * hli_value`) decides
//! the edge in [`DepMode::Combined`]. Call ↔ memory queries go through
//! `HLI_GetCallAcc` (REF/MOD).

use crate::cfg::Block;
use crate::gccdep;
use crate::mapping::HliMap;
use crate::rtl::RtlFunc;
use hli_core::CachedQuery;

/// Which analyzer gates dependence edges.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DepMode {
    /// GCC's own test only (the baseline build).
    GccOnly,
    /// HLI only (the paper's "HLI result" column — measured, not shipped).
    HliOnly,
    /// `gcc_value * hli_value` (Figure 5; the paper's "Combined" column).
    Combined,
}

/// Query counters matching Table 2's columns.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct QueryStats {
    /// Memory-pair dependence tests (≥ 1 write in the pair).
    pub total_tests: u64,
    /// Times GCC had to answer "may conflict".
    pub gcc_yes: u64,
    /// Times the HLI answered "may overlap" (unknown counts as yes).
    pub hli_yes: u64,
    /// Times both said yes (the Figure-5 product).
    pub combined_yes: u64,
    /// Call ↔ memory REF/MOD queries (tracked separately; the paper's
    /// table counts location-pair tests).
    pub call_queries: u64,
}

impl QueryStats {
    pub fn add(&mut self, other: &QueryStats) {
        self.total_tests += other.total_tests;
        self.gcc_yes += other.gcc_yes;
        self.hli_yes += other.hli_yes;
        self.combined_yes += other.combined_yes;
        self.call_queries += other.call_queries;
    }

    /// Table 2's "Reduction" column: 1 − combined/gcc.
    pub fn reduction(&self) -> f64 {
        if self.gcc_yes == 0 {
            0.0
        } else {
            1.0 - self.combined_yes as f64 / self.gcc_yes as f64
        }
    }

    /// Mirror these totals into the `backend.ddg.*` counters of `reg`.
    /// The struct itself stays the unit of accumulation inside DDG
    /// construction (so Table-2 arithmetic is untouched); the registry gets
    /// the same totals for `--stats` output and cross-layer reports.
    pub fn record(&self, reg: &hli_obs::MetricsRegistry) {
        reg.counter("backend.ddg.total_tests").add(self.total_tests);
        reg.counter("backend.ddg.gcc_yes").add(self.gcc_yes);
        reg.counter("backend.ddg.hli_yes").add(self.hli_yes);
        reg.counter("backend.ddg.combined_yes").add(self.combined_yes);
        reg.counter("backend.ddg.call_queries").add(self.call_queries);
    }

    /// View constructor: rebuild Table-2 totals from a metrics snapshot
    /// (the inverse of [`QueryStats::record`]).
    pub fn from_registry(snap: &hli_obs::MetricsSnapshot) -> QueryStats {
        QueryStats {
            total_tests: snap.counter("backend.ddg.total_tests"),
            gcc_yes: snap.counter("backend.ddg.gcc_yes"),
            hli_yes: snap.counter("backend.ddg.hli_yes"),
            combined_yes: snap.counter("backend.ddg.combined_yes"),
            call_queries: snap.counter("backend.ddg.call_queries"),
        }
    }
}

/// The dependence graph of one basic block, over the block's schedulable
/// instruction positions.
#[derive(Debug, Clone)]
pub struct Ddg {
    /// Function-relative instruction indices of the nodes.
    pub nodes: Vec<usize>,
    /// `preds[k]` = node positions (indices into `nodes`) that must execute
    /// before node `k`.
    pub preds: Vec<Vec<usize>>,
    /// Inverse of `preds`.
    pub succs: Vec<Vec<usize>>,
    /// Number of memory-dependence edges (for reporting).
    pub mem_edges: usize,
    /// Causal span id covering this block's DDG construction: every
    /// `sched.pair`/`sched.call` record made while building it and the
    /// block's eventual `sched.block` record cite the same id, linking
    /// the dependence answers to the schedule they enabled. 0 when
    /// provenance is off.
    pub span: u64,
}

impl Ddg {
    /// Total edge count.
    pub fn edge_count(&self) -> usize {
        self.preds.iter().map(|p| p.len()).sum()
    }
}

/// Access to HLI facts during DDG construction. Queries go through the
/// memoizing [`CachedQuery`] layer, so repeated probes of the same item
/// pair (a second scheduling pass, a later pass over the same function)
/// are answered from the cache.
pub struct HliSide<'a> {
    pub query: &'a CachedQuery<'a>,
    pub map: &'a HliMap,
}

/// Build the dependence graph of one block.
pub fn build_block_ddg(
    f: &RtlFunc,
    block: &Block,
    hli: Option<&HliSide<'_>>,
    mode: DepMode,
    stats: &mut QueryStats,
) -> Ddg {
    let nodes: Vec<usize> = crate::cfg::schedulable(f, block);
    let n = nodes.len();
    let mut preds: Vec<Vec<usize>> = vec![Vec::new(); n];
    let mut succs: Vec<Vec<usize>> = vec![Vec::new(); n];
    let mut mem_edges = 0usize;

    let add_edge =
        |from: usize, to: usize, preds: &mut Vec<Vec<usize>>, succs: &mut Vec<Vec<usize>>| {
            if !preds[to].contains(&from) {
                preds[to].push(from);
                succs[from].push(to);
            }
        };

    // Register dependences.
    use std::collections::HashMap;
    let mut last_def: HashMap<u32, usize> = HashMap::new();
    let mut uses_since_def: HashMap<u32, Vec<usize>> = HashMap::new();
    for (k, &idx) in nodes.iter().enumerate() {
        let op = &f.insns[idx].op;
        for u in op.uses() {
            if let Some(&d) = last_def.get(&u) {
                add_edge(d, k, &mut preds, &mut succs); // RAW
            }
            uses_since_def.entry(u).or_default().push(k);
        }
        if let Some(d) = op.def() {
            if let Some(&pd) = last_def.get(&d) {
                add_edge(pd, k, &mut preds, &mut succs); // WAW
            }
            if let Some(us) = uses_since_def.get(&d) {
                for &u in us {
                    if u != k {
                        add_edge(u, k, &mut preds, &mut succs); // WAR
                    }
                }
            }
            last_def.insert(d, k);
            uses_since_def.insert(d, Vec::new());
        }
    }

    // Memory and call dependences.
    let ring = hli_obs::ring::global();
    let prov = hli_obs::provenance::active();
    // One causal span per block DDG. Allocated whenever provenance is on
    // (not only when records end up written) so the id stream — shared
    // with query ids — is identical across `--jobs` values.
    let span = if prov.is_some() {
        hli_obs::provenance::next_span_id()
    } else {
        0
    };
    for k in 0..n {
        let opk = &f.insns[nodes[k]].op;
        let k_mem = opk.mem_ref().copied();
        let k_call = opk.is_call();
        if k_mem.is_none() && !k_call {
            continue;
        }
        for j in 0..k {
            let opj = &f.insns[nodes[j]].op;
            let j_mem = opj.mem_ref().copied();
            let j_call = opj.is_call();
            let dep = match (&j_mem, j_call, &k_mem, k_call) {
                (Some(a), _, Some(b), _) => {
                    if !(opj.is_store() || opk.is_store()) {
                        continue; // read-read: no query, no edge
                    }
                    stats.total_tests += 1;
                    let mark = hli.map(|s| s.query.query_mark()).unwrap_or(0);
                    let gcc = gccdep::may_conflict(a, b);
                    let hli_ans = hli_pair_answer(f, nodes[j], nodes[k], hli);
                    if gcc {
                        stats.gcc_yes += 1;
                    }
                    if hli_ans {
                        stats.hli_yes += 1;
                    }
                    if gcc && hli_ans {
                        stats.combined_yes += 1;
                    }
                    ring.push_with("ddg.test", || {
                        format!(
                            "{}: mem pair insn#{} vs insn#{}: gcc={gcc} hli={hli_ans}",
                            f.name, nodes[j], nodes[k]
                        )
                    });
                    let dep = match mode {
                        DepMode::GccOnly => gcc,
                        DepMode::HliOnly => hli_ans,
                        DepMode::Combined => gcc && hli_ans,
                    };
                    if let (Some(sink), Some(side)) = (prov.as_deref(), hli) {
                        record_decision(
                            sink,
                            side,
                            f,
                            "sched.pair",
                            nodes[k],
                            mark,
                            span,
                            dep,
                            || format!("reorder blocked: gcc={gcc} hli={hli_ans}"),
                        );
                    }
                    dep
                }
                (_, true, _, true) => true, // calls stay ordered
                (Some(m), _, _, true) | (_, true, Some(m), _) => {
                    stats.call_queries += 1;
                    let mem_is_store = (j_call && opk.is_store()) || (k_call && opj.is_store());
                    let (mem_idx, call_idx) = if j_call {
                        (nodes[k], nodes[j])
                    } else {
                        (nodes[j], nodes[k])
                    };
                    let mark = hli.map(|s| s.query.query_mark()).unwrap_or(0);
                    let hli_ans = hli_call_answer(f, mem_idx, call_idx, mem_is_store, hli);
                    let _ = m;
                    let dep = match mode {
                        DepMode::GccOnly => true, // GCC: calls clobber memory
                        DepMode::HliOnly | DepMode::Combined => hli_ans,
                    };
                    if let (Some(sink), Some(side)) = (prov.as_deref(), hli) {
                        record_decision(
                            sink,
                            side,
                            f,
                            "sched.call",
                            mem_idx,
                            mark,
                            span,
                            dep,
                            || "call may touch location (REF/MOD)".to_string(),
                        );
                    }
                    dep
                }
                _ => continue,
            };
            if dep {
                add_edge(j, k, &mut preds, &mut succs);
                mem_edges += 1;
            }
        }
    }

    let reg = hli_obs::metrics::cur();
    reg.counter("backend.ddg.blocks").inc();
    reg.counter("backend.ddg.mem_edges").add(mem_edges as u64);

    Ddg { nodes, preds, succs, mem_edges, span }
}

/// Append one scheduling decision to the provenance sink: `Applied` when
/// no dependence edge was needed (the scheduler may reorder across this
/// pair — the Figure-5 hoist when one side is a call), `Blocked` when the
/// edge was kept. `mem_idx` is the instruction whose region/line the
/// record is attributed to; `mark` captures the query chain consumed by
/// this one decision.
#[allow(clippy::too_many_arguments)]
fn record_decision(
    sink: &hli_obs::ProvenanceSink,
    side: &HliSide<'_>,
    f: &RtlFunc,
    pass: &str,
    mem_idx: usize,
    mark: usize,
    span: u64,
    dep: bool,
    reason: impl FnOnce() -> String,
) {
    let region = side
        .map
        .item_of(f.insns[mem_idx].id)
        .and_then(|it| side.query.owner_of(it))
        .map(|r| r.0);
    let verdict = if dep {
        hli_obs::Verdict::Blocked { reason: reason() }
    } else {
        hli_obs::Verdict::Applied
    };
    sink.record(hli_obs::DecisionRecord {
        pass: pass.to_string(),
        function: f.name.clone(),
        region_id: region,
        order: f.insns[mem_idx].line,
        span,
        // Pair/call answers have no per-decision cycle estimate of their
        // own: their benefit materializes in the block's `sched.block`
        // record, which shares this span.
        est_cycles: 0,
        hli_queries: side.query.queries_since(mark),
        verdict,
    });
}

/// HLI answer for a memory pair: may they overlap (same iteration)?
/// Unmapped references answer *yes* (the paper's unknown).
fn hli_pair_answer(f: &RtlFunc, i: usize, j: usize, hli: Option<&HliSide<'_>>) -> bool {
    let Some(side) = hli else { return true };
    let (Some(a), Some(b)) = (side.map.item_of(f.insns[i].id), side.map.item_of(f.insns[j].id))
    else {
        return true;
    };
    side.query.get_equiv_acc(a, b).may_overlap()
}

/// HLI answer for a call ↔ memory pair via REF/MOD: a load conflicts when
/// the call may modify the location; a store also conflicts when the call
/// may reference it.
fn hli_call_answer(
    f: &RtlFunc,
    mem_idx: usize,
    call_idx: usize,
    mem_is_store: bool,
    hli: Option<&HliSide<'_>>,
) -> bool {
    let Some(side) = hli else { return true };
    let (Some(mem), Some(call)) = (
        side.map.item_of(f.insns[mem_idx].id),
        side.map.item_of(f.insns[call_idx].id),
    ) else {
        return true;
    };
    let acc = side.query.get_call_acc(mem, call);
    if mem_is_store {
        acc.may_modify() || acc.may_reference()
    } else {
        acc.may_modify()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cfg::blocks;
    use crate::lower::lower_program;
    use crate::mapping::map_function;
    use hli_frontend::generate_hli;
    use hli_lang::compile_to_ast;

    fn stats_for(src: &str, func: &str, mode: DepMode) -> (QueryStats, usize) {
        let (p, s) = compile_to_ast(src).unwrap();
        let hli = generate_hli(&p, &s);
        let prog = lower_program(&p, &s);
        let f = prog.func(func).unwrap();
        let entry = hli.entry(func).unwrap();
        let cache = hli_core::QueryCache::new();
        let q = cache.attach(entry);
        let map = map_function(f, entry);
        let side = HliSide { query: &q, map: &map };
        let mut stats = QueryStats::default();
        let mut edges = 0;
        for b in blocks(f) {
            let g = build_block_ddg(f, &b, Some(&side), mode, &mut stats);
            edges += g.mem_edges;
        }
        (stats, edges)
    }

    #[test]
    fn hli_disambiguates_distinct_arrays() {
        // Stores to a[] and loads from b[] — GCC disambiguates by symbol
        // already; make it pointer-based so GCC fails and HLI succeeds.
        let src = "double x[64]; double y[64];\n\
             void axpy(double *p, double *q) {\n\
               int i;\n\
               for (i = 0; i < 64; i++) p[i] = p[i] + q[i];\n\
             }\n\
             int main() { axpy(x, y); return 0; }";
        let (stats, _) = stats_for(src, "axpy", DepMode::Combined);
        assert!(stats.total_tests > 0);
        assert!(
            stats.hli_yes < stats.gcc_yes,
            "HLI must beat GCC on pointer accesses: {stats:?}"
        );
        assert!(stats.combined_yes <= stats.hli_yes.min(stats.gcc_yes));
    }

    #[test]
    fn reduction_matches_definition() {
        let src = "double x[64]; double y[64];\n\
             void axpy(double *p, double *q) {\n\
               int i;\n\
               for (i = 0; i < 64; i++) p[i] = p[i] + q[i];\n\
             }\n\
             int main() { axpy(x, y); return 0; }";
        let (stats, _) = stats_for(src, "axpy", DepMode::Combined);
        let expect = 1.0 - stats.combined_yes as f64 / stats.gcc_yes as f64;
        assert!((stats.reduction() - expect).abs() < 1e-12);
    }

    #[test]
    fn same_location_keeps_edge_in_all_modes() {
        let src = "int g;\nint main() { g = 1; g = g + 1; return g; }";
        for mode in [DepMode::GccOnly, DepMode::HliOnly, DepMode::Combined] {
            let (_, edges) = stats_for(src, "main", mode);
            assert!(edges > 0, "store/load of g must stay ordered in {mode:?}");
        }
    }

    #[test]
    fn gcc_only_mode_counts_but_keeps_gcc_edges() {
        let src = "int a[8]; int b[8];\nint main() { int i; for (i=0;i<8;i++) { a[i] = 1; b[i] = a[i]; } return 0; }";
        let (stats, _) = stats_for(src, "main", DepMode::GccOnly);
        // Counters accumulate regardless of mode.
        assert!(stats.total_tests > 0);
        assert!(stats.gcc_yes >= stats.combined_yes);
    }

    #[test]
    fn call_edges_respect_refmod() {
        // `pure_g` touches only g; stores to h around the call must not
        // depend on it under HLI.
        let src = "int g; int h;\n\
             int pure_g() { return g; }\n\
             int main() {\n h = 1; h = pure_g() + h; return h;\n}";
        let (p, s) = compile_to_ast(src).unwrap();
        let hli = generate_hli(&p, &s);
        let prog = lower_program(&p, &s);
        let f = prog.func("main").unwrap();
        let entry = hli.entry("main").unwrap();
        let cache = hli_core::QueryCache::new();
        let q = cache.attach(entry);
        let map = map_function(f, entry);
        let side = HliSide { query: &q, map: &map };
        let mut st_gcc = QueryStats::default();
        let mut st_hli = QueryStats::default();
        let mut gcc_edges = 0;
        let mut hli_edges = 0;
        for b in blocks(f) {
            gcc_edges +=
                build_block_ddg(f, &b, Some(&side), DepMode::GccOnly, &mut st_gcc).mem_edges;
            hli_edges +=
                build_block_ddg(f, &b, Some(&side), DepMode::Combined, &mut st_hli).mem_edges;
        }
        assert!(
            hli_edges < gcc_edges,
            "REF/MOD must relax call ordering: gcc {gcc_edges} vs hli {hli_edges}"
        );
        assert!(st_hli.call_queries > 0);
    }

    #[test]
    fn call_on_loop_line_keeps_mod_edge() {
        // Regression: when a loop and the statements after its closing brace
        // share one source line, the call's owning region must come from the
        // REF/MOD naming, not the line scope — otherwise `get_call_acc`
        // matches the loop's SubRegion summary (f1: reads g0 only) for f2
        // and the scheduler hoists the g1 load across the call.
        let src = "int g0; int g1;\n\
             int f1(int a) { return a + g0; }\n\
             void f2() { g1 = g1 + 1; }\n\
             int main() {\n\
             int i; int x;\n\
             x = 1;\n\
             for (i = 0; i < 1; i++) { g0 = f1(x); } f2(); g1 += x;\n\
             return g1;\n\
             }";
        let (p, s) = compile_to_ast(src).unwrap();
        let hli = generate_hli(&p, &s);
        let prog = lower_program(&p, &s);
        let f = prog.func("main").unwrap();
        let entry = hli.entry("main").unwrap();
        let cache = hli_core::QueryCache::new();
        let q = cache.attach(entry);
        let map = map_function(f, entry);
        let side = HliSide { query: &q, map: &map };
        let mut stats = QueryStats::default();
        for b in blocks(f) {
            let g = build_block_ddg(f, &b, Some(&side), DepMode::HliOnly, &mut stats);
            let call_pos = g.nodes.iter().position(
                |&i| matches!(&f.insns[i].op, crate::rtl::Op::Call { func, .. } if func == "f2"),
            );
            let Some(cp) = call_pos else { continue };
            let load_pos = g.nodes.iter().position(|&i| {
                i > g.nodes[cp] && matches!(&f.insns[i].op, crate::rtl::Op::Load(..))
            });
            let lp = load_pos.expect("a g1 load follows the f2 call");
            assert!(
                g.preds[lp].contains(&cp),
                "f2 modifies g1; the load must stay ordered after the call"
            );
            return;
        }
        panic!("no block contains the f2 call");
    }

    #[test]
    fn ddg_is_acyclic_and_respects_program_order() {
        let src =
            "int a[8];\nint main() { int i; for (i=1;i<8;i++) a[i] = a[i-1] + 1; return a[7]; }";
        let (p, s) = compile_to_ast(src).unwrap();
        let prog = lower_program(&p, &s);
        let f = prog.func("main").unwrap();
        let mut stats = QueryStats::default();
        for b in blocks(f) {
            let g = build_block_ddg(f, &b, None, DepMode::GccOnly, &mut stats);
            for (k, ps) in g.preds.iter().enumerate() {
                for &pp in ps {
                    assert!(pp < k, "edges point forward only");
                }
            }
        }
    }
}
