//! # hli-lir — the canonical low-level IR and the machine-backend contract
//!
//! The crates above this one used to disagree about what an instruction
//! costs: the scheduler carried its own latency table, each timing
//! simulator carried another, and the serve daemon carried a third.
//! Hand-copied tables drift (the scheduler's `imul`/`idiv`/`fdiv` entries
//! had already drifted from the R4600 model's), and a drifted table
//! silently corrupts every `est_cycles` estimate and every
//! decision-to-cycles rollup.
//!
//! This crate is the fix, in two layers:
//!
//! * **A canonical LIR.** [`OpClass`] is the closed set of opcode classes
//!   a machine model prices; [`LirOp`]/[`LirFunc`] are the pre-resolved,
//!   deterministically ordered view of a lowered function (one `LirOp`
//!   per RTL instruction, index-aligned, carrying the opcode class, the
//!   operand kinds and the source line that joins back to HLI items and
//!   provenance records). [`DynKind`]/[`DynInsn`] are the *dynamic* side:
//!   trace events the executor emits and the timing models consume.
//! * **The [`MachineBackend`] trait.** One object per target; its
//!   [`MachineBackend::class_latency`] table is the **single source of
//!   truth** for operation cost. The scheduler, the LICM/unroll/CSE
//!   benefit estimators and the cycle simulators all consume latencies
//!   through the trait, so scheduler/simulator drift is impossible by
//!   construction (pinned by the latency-agreement test in
//!   `hli-machine`).
//!
//! The crate is dependency-free on purpose: it sits *below* both the
//! back-end (which schedules against a backend) and the machine crate
//! (which implements backends), the same way a shared ASDL pickle sits
//! between lcc's front and back ends.

use std::collections::HashMap;

/// The closed set of opcode classes a machine model prices. Every RTL
/// `Op` and every dynamic [`DynKind`] maps into exactly one class.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum OpClass {
    /// Integer ALU work: adds, logicals, compares, moves, immediates,
    /// address formation.
    IAlu,
    IMul,
    IDiv,
    /// FP add/sub (and compares/conversions, which share the adder).
    FAdd,
    FMul,
    FDiv,
    Load,
    Store,
    /// Control transfer (jump or conditional branch).
    Branch,
    Call,
    Ret,
}

impl OpClass {
    /// Every class, in a fixed order (the latency-agreement test and
    /// [`TableBackend`] both iterate/index this).
    pub const ALL: [OpClass; 11] = [
        OpClass::IAlu,
        OpClass::IMul,
        OpClass::IDiv,
        OpClass::FAdd,
        OpClass::FMul,
        OpClass::FDiv,
        OpClass::Load,
        OpClass::Store,
        OpClass::Branch,
        OpClass::Call,
        OpClass::Ret,
    ];

    /// Stable dense index (position in [`OpClass::ALL`]).
    pub fn index(self) -> usize {
        match self {
            OpClass::IAlu => 0,
            OpClass::IMul => 1,
            OpClass::IDiv => 2,
            OpClass::FAdd => 3,
            OpClass::FMul => 4,
            OpClass::FDiv => 5,
            OpClass::Load => 6,
            OpClass::Store => 7,
            OpClass::Branch => 8,
            OpClass::Call => 9,
            OpClass::Ret => 10,
        }
    }

    pub fn name(self) -> &'static str {
        match self {
            OpClass::IAlu => "ialu",
            OpClass::IMul => "imul",
            OpClass::IDiv => "idiv",
            OpClass::FAdd => "fadd",
            OpClass::FMul => "fmul",
            OpClass::FDiv => "fdiv",
            OpClass::Load => "load",
            OpClass::Store => "store",
            OpClass::Branch => "branch",
            OpClass::Call => "call",
            OpClass::Ret => "ret",
        }
    }
}

/// Kind of a dynamic instruction, as the timing models see it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DynKind {
    IAlu,
    IMul,
    IDiv,
    FAdd,
    FMul,
    FDiv,
    Load,
    Store,
    Call,
    Ret,
    /// Control transfer (jump or branch; `taken` distinguishes fall-through
    /// branches for front-end bubbles).
    Branch {
        taken: bool,
    },
    /// Register-only bookkeeping (moves, immediates, address formation).
    Simple,
}

impl DynKind {
    /// The opcode class a machine model prices this event at.
    pub fn class(self) -> OpClass {
        match self {
            DynKind::IAlu | DynKind::Simple => OpClass::IAlu,
            DynKind::IMul => OpClass::IMul,
            DynKind::IDiv => OpClass::IDiv,
            DynKind::FAdd => OpClass::FAdd,
            DynKind::FMul => OpClass::FMul,
            DynKind::FDiv => OpClass::FDiv,
            DynKind::Load => OpClass::Load,
            DynKind::Store => OpClass::Store,
            DynKind::Call => OpClass::Call,
            DynKind::Ret => OpClass::Ret,
            DynKind::Branch { .. } => OpClass::Branch,
        }
    }
}

/// A register identity unique across frames (frame serial ⊕ register).
pub type RegKey = u64;

/// One dynamic instruction event.
#[derive(Debug, Clone, Copy)]
pub struct DynInsn {
    pub kind: DynKind,
    /// Destination register, if any.
    pub dst: Option<RegKey>,
    /// Up to three source registers.
    pub srcs: [RegKey; 3],
    pub n_srcs: u8,
    /// Effective byte address for loads/stores.
    pub addr: i64,
}

impl DynInsn {
    pub fn sources(&self) -> &[RegKey] {
        &self.srcs[..self.n_srcs as usize]
    }
}

/// What an operand *is*, statically. The LIR does not rename or renumber —
/// it only classifies, so a backend can price an op without looking at the
/// RTL it came from.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum OperandKind {
    /// No operand in this slot.
    #[default]
    None,
    /// A virtual register.
    Reg,
    /// An integer or FP immediate.
    Imm,
    /// A memory reference (the op's single load/store slot).
    Mem,
    /// A symbol (global address, call target).
    Sym,
    /// A branch/jump label.
    Label,
}

/// One pre-resolved low-level op: the opcode class, the operand kinds and
/// the provenance hooks (`id` joins to the RTL instruction and through it
/// to the HLI mapping; `line` joins to `DecisionRecord.order`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LirOp {
    /// The originating RTL instruction id (stable across scheduling).
    pub id: u32,
    /// Source line, for provenance joins.
    pub line: u32,
    pub class: OpClass,
    pub dst: OperandKind,
    pub srcs: [OperandKind; 3],
    pub n_srcs: u8,
}

/// The LIR view of one function: `ops[i]` describes the function's `i`-th
/// instruction, in instruction order. Deterministic by construction — the
/// lowering is a pure index-aligned map, so two workers lowering the same
/// function produce byte-identical LIR (pipeit ADR-025's property: keep
/// the IR pre-resolved and ordered so parallel determinism stays cheap).
#[derive(Debug, Clone, Default)]
pub struct LirFunc {
    pub name: String,
    pub ops: Vec<LirOp>,
}

/// Structural scheduling facts about a target — what the static scheduler
/// is allowed to assume.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ScheduleConstraints {
    /// Whether the machine issues strictly in program order (the schedule
    /// *is* the issue order) or reorders dynamically.
    pub in_order: bool,
    /// Instructions the machine can issue per cycle; the list scheduler
    /// models its makespans at this width.
    pub issue_width: u32,
    /// Dynamic lookahead (active-list size); 1 for pure in-order targets.
    pub window: u32,
}

/// Timing outcome of running a trace on a backend, in target-neutral
/// shape. `detail` carries the model-specific counters (stall cycles, LSQ
/// stalls, idle slots ...) keyed by their metric leaf names.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct MachStats {
    pub cycles: u64,
    pub insns: u64,
    pub detail: Vec<(&'static str, u64)>,
}

impl MachStats {
    /// Look up a model-specific counter by leaf name.
    pub fn detail(&self, name: &str) -> Option<u64> {
        self.detail.iter().find(|(k, _)| *k == name).map(|(_, v)| *v)
    }
}

/// A pluggable target machine: the one place its latency table, issue
/// shape and cycle simulator live.
///
/// The contract (DESIGN.md, "Machine description is the single latency
/// source"): [`MachineBackend::class_latency`] is the *only* latency
/// table. The default [`MachineBackend::latency`] derives per-op cost
/// from it, the scheduler and benefit estimators call through it, and a
/// conforming `cycles` implementation prices operands with it too — so a
/// scheduler and simulator handed the same backend cannot disagree.
pub trait MachineBackend: Sync {
    /// Stable target id ("r4600", "r10000", "w4"); used in CLI flags,
    /// metric keys (`machine.<name>.*`, `attr.*.<name>.*`) and the serve
    /// cache key.
    fn name(&self) -> &'static str;

    /// Cycles until a result of this class is usable — the single source
    /// of truth for this target's operation costs.
    fn class_latency(&self, class: OpClass) -> u64;

    /// Latency of one LIR op. Defaults to the class table; a backend may
    /// refine per-op (e.g. operand-kind-dependent costs) but must stay a
    /// pure function of the op.
    fn latency(&self, op: &LirOp) -> u64 {
        self.class_latency(op.class)
    }

    fn issue_width(&self) -> u32 {
        self.schedule_constraints().issue_width
    }

    fn schedule_constraints(&self) -> ScheduleConstraints;

    /// Run the dynamic trace through this target's timing model.
    fn cycles(&self, trace: &[DynInsn]) -> MachStats;

    /// Like [`MachineBackend::cycles`], but also attributes cycles to
    /// functions: `funcs[i]` is the index of the function owning
    /// `trace[i]`, and the returned vector has `nfuncs` bins whose sum
    /// equals `stats.cycles` exactly.
    fn cycles_per_func(
        &self,
        trace: &[DynInsn],
        funcs: &[u32],
        nfuncs: usize,
    ) -> (MachStats, Vec<u64>);
}

/// A minimal concrete backend: a named per-class latency table over a
/// scalar stall-on-use pipeline. This is the test double the back-end's
/// own unit tests schedule against (they cannot see `hli-machine`, which
/// sits above the back-end), and a convenient base for experiments.
#[derive(Debug, Clone)]
pub struct TableBackend {
    pub name: &'static str,
    /// Latency per class, indexed by [`OpClass::index`].
    pub table: [u64; OpClass::ALL.len()],
    pub issue_width: u32,
}

impl TableBackend {
    /// A scalar table matching classic in-order defaults (load 2, ialu 1,
    /// imul 10, idiv 42, fadd 4, fmul 8, fdiv 32, everything else 1).
    pub fn scalar() -> TableBackend {
        let mut table = [1u64; OpClass::ALL.len()];
        table[OpClass::Load.index()] = 2;
        table[OpClass::IMul.index()] = 10;
        table[OpClass::IDiv.index()] = 42;
        table[OpClass::FAdd.index()] = 4;
        table[OpClass::FMul.index()] = 8;
        table[OpClass::FDiv.index()] = 32;
        TableBackend { name: "table", table, issue_width: 1 }
    }
}

impl MachineBackend for TableBackend {
    fn name(&self) -> &'static str {
        self.name
    }

    fn class_latency(&self, class: OpClass) -> u64 {
        self.table[class.index()]
    }

    fn schedule_constraints(&self) -> ScheduleConstraints {
        ScheduleConstraints { in_order: true, issue_width: self.issue_width, window: 1 }
    }

    fn cycles(&self, trace: &[DynInsn]) -> MachStats {
        self.cycles_per_func(trace, &[], 0).0
    }

    fn cycles_per_func(
        &self,
        trace: &[DynInsn],
        funcs: &[u32],
        nfuncs: usize,
    ) -> (MachStats, Vec<u64>) {
        // Scalar in-order stall-on-use: one issue per cycle, an
        // instruction waits for its operands' producing latencies.
        let mut ready: HashMap<RegKey, u64> = HashMap::new();
        let mut bins = vec![0u64; nfuncs];
        let mut time: u64 = 0;
        let mut stalls: u64 = 0;
        for (i, ev) in trace.iter().enumerate() {
            let operands_ready = ev
                .sources()
                .iter()
                .map(|r| ready.get(r).copied().unwrap_or(0))
                .max()
                .unwrap_or(0);
            let issue = time.max(operands_ready);
            stalls += issue - time;
            let before = time;
            time = issue + 1;
            if let Some(d) = ev.dst {
                ready.insert(d, issue + self.class_latency(ev.kind.class()));
            }
            if let (Some(&f), true) = (funcs.get(i), nfuncs > 0) {
                bins[f as usize] += time - before;
            }
        }
        let stats = MachStats {
            cycles: time,
            insns: trace.len() as u64,
            detail: vec![("stall_cycles", stalls)],
        };
        (stats, bins)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ins(kind: DynKind, dst: Option<RegKey>, srcs: &[RegKey]) -> DynInsn {
        let mut s = [0u64; 3];
        for (i, &r) in srcs.iter().take(3).enumerate() {
            s[i] = r;
        }
        DynInsn { kind, dst, srcs: s, n_srcs: srcs.len() as u8, addr: 0 }
    }

    #[test]
    fn class_index_matches_all_order() {
        for (i, c) in OpClass::ALL.iter().enumerate() {
            assert_eq!(c.index(), i, "{c:?}");
        }
    }

    #[test]
    fn every_dynkind_has_a_class() {
        assert_eq!(DynKind::Simple.class(), OpClass::IAlu);
        assert_eq!(DynKind::Branch { taken: true }.class(), OpClass::Branch);
        assert_eq!(DynKind::Branch { taken: false }.class(), OpClass::Branch);
        assert_eq!(DynKind::Load.class(), OpClass::Load);
    }

    #[test]
    fn default_latency_is_the_class_table() {
        let b = TableBackend::scalar();
        let op = LirOp {
            id: 0,
            line: 1,
            class: OpClass::IDiv,
            dst: OperandKind::Reg,
            srcs: [OperandKind::Reg, OperandKind::Reg, OperandKind::None],
            n_srcs: 2,
        };
        assert_eq!(b.latency(&op), b.class_latency(OpClass::IDiv));
    }

    #[test]
    fn table_backend_stalls_on_use() {
        let b = TableBackend::scalar();
        let t = vec![
            ins(DynKind::Load, Some(1), &[]),
            ins(DynKind::IAlu, Some(2), &[1]),
        ];
        let s = b.cycles(&t);
        assert_eq!(s.cycles, 3);
        assert_eq!(s.detail("stall_cycles"), Some(1));
    }

    #[test]
    fn table_backend_bins_sum_to_total() {
        let b = TableBackend::scalar();
        let t = vec![
            ins(DynKind::Load, Some(1), &[]),
            ins(DynKind::IAlu, Some(2), &[1]),
            ins(DynKind::FDiv, Some(3), &[]),
            ins(DynKind::FAdd, Some(4), &[3]),
        ];
        let funcs = vec![0, 0, 1, 1];
        let (stats, bins) = b.cycles_per_func(&t, &funcs, 2);
        assert_eq!(bins.iter().sum::<u64>(), stats.cycles);
        assert_eq!(stats, b.cycles(&t));
    }
}
