//! Ablation benches for the design choices DESIGN.md calls out:
//!
//! * Figure 4 — CSE across calls with vs without REF/MOD evidence
//!   (measures both compile time and how many loads survive);
//! * LICM with vs without HLI legality;
//! * Figure 6 — unrolling factors with full HLI maintenance;
//! * front-end precision knobs (array analysis, pointer analysis) against
//!   the Table-2 combined-yes count.

use hli_backend::cse::cse_function;
use hli_backend::ddg::DepMode;
use hli_backend::licm::licm_function;
use hli_backend::mapping::map_function;
use hli_backend::sched::schedule_program;
use hli_backend::unroll::unroll_function;
use hli_bench::bench;
use hli_frontend::FrontendOptions;
use hli_suite::Scale;

fn bench_cse_refmod() {
    let p = hli_bench::prepare("015.doduc", Scale::tiny());
    let f = p.rtl.func("main").unwrap();
    bench("ablations/cse/gcc-purge-all", || {
        cse_function(
            f,
            None,
            DepMode::GccOnly,
            hli_machine::backend_by_name("r4600").unwrap(),
        )
    });
    bench("ablations/cse/hli-refmod-purge", || {
        let mut entry = p.hli.entry("main").unwrap().clone();
        let mut map = map_function(f, &entry);
        cse_function(
            f,
            Some((&mut entry, &mut map)),
            DepMode::Combined,
            hli_machine::backend_by_name("r4600").unwrap(),
        )
    });
}

fn bench_licm() {
    let p = hli_bench::prepare("101.tomcatv", Scale::tiny());
    let f = p.rtl.func("residuals").unwrap();
    bench("ablations/licm/gcc", || {
        licm_function(
            f,
            None,
            DepMode::GccOnly,
            hli_machine::backend_by_name("r4600").unwrap(),
        )
    });
    bench("ablations/licm/hli", || {
        let mut entry = p.hli.entry("residuals").unwrap().clone();
        let mut map = map_function(f, &entry);
        licm_function(
            f,
            Some((&mut entry, &mut map)),
            DepMode::Combined,
            hli_machine::backend_by_name("r4600").unwrap(),
        )
    });
}

fn bench_unroll_factors() {
    let b = hli_suite::by_name("034.mdljdp2", Scale::tiny()).unwrap();
    let (prog, sema) = hli_lang::compile_to_ast(&b.source).unwrap();
    let (rtl, loops) = hli_backend::lower::lower_with_loops(&prog, &sema);
    let hli = hli_frontend::generate_hli(&prog, &sema);
    let f = rtl.func("init_md").unwrap();
    let metas = &loops["init_md"];
    assert!(!metas.is_empty(), "init_md has a constant-trip loop");
    for factor in [2u32, 4, 8] {
        bench(&format!("ablations/unroll/factor-{factor}"), || {
            let mut entry = hli.entry("init_md").unwrap().clone();
            let mut map = map_function(f, &entry);
            unroll_function(
                f,
                metas,
                factor,
                Some((&mut entry, &mut map)),
                hli_machine::backend_by_name("r4600").unwrap(),
            )
        });
    }
}

fn bench_frontend_precision() {
    let b = hli_suite::by_name("077.mdljsp2", Scale::tiny()).unwrap();
    let (prog, sema) = hli_lang::compile_to_ast(&b.source).unwrap();
    let rtl = hli_backend::lower::lower_program(&prog, &sema);
    let lat = hli_machine::backend_by_name("r4600").unwrap();
    let variants = [
        ("full", FrontendOptions::default()),
        (
            "no-array-analysis",
            FrontendOptions { array_analysis: false, ..Default::default() },
        ),
        (
            "no-pointer-analysis",
            FrontendOptions { pointer_analysis: false, ..Default::default() },
        ),
        (
            "no-refmod",
            FrontendOptions { refmod_analysis: false, ..Default::default() },
        ),
    ];
    for (label, opts) in variants {
        bench(&format!("ablations/frontend-precision/{label}"), || {
            let hli = hli_frontend::generate_hli_with(&prog, &sema, opts);
            let (_, stats) = schedule_program(&rtl, &hli, DepMode::Combined, lat);
            stats.combined_yes
        });
    }
}

fn main() {
    hli_bench::quiesce_observability();
    bench_cse_refmod();
    bench_licm();
    bench_unroll_factors();
    bench_frontend_precision();
}
