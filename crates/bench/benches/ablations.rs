//! Ablation benches for the design choices DESIGN.md calls out:
//!
//! * Figure 4 — CSE across calls with vs without REF/MOD evidence
//!   (measures both compile time and how many loads survive);
//! * LICM with vs without HLI legality;
//! * Figure 6 — unrolling factors with full HLI maintenance;
//! * front-end precision knobs (array analysis, pointer analysis) against
//!   the Table-2 combined-yes count.

use criterion::{criterion_group, criterion_main, Criterion};
use hli_backend::cse::cse_function;
use hli_backend::ddg::DepMode;
use hli_backend::licm::licm_function;
use hli_backend::mapping::map_function;
use hli_backend::sched::{schedule_program, LatencyModel};
use hli_backend::unroll::unroll_function;
use hli_frontend::FrontendOptions;
use hli_suite::Scale;
use std::hint::black_box;

fn bench_cse_refmod(c: &mut Criterion) {
    let p = hli_bench::prepare("015.doduc", Scale::tiny());
    let f = p.rtl.func("main").unwrap();
    let mut g = c.benchmark_group("ablations/cse");
    g.bench_function("gcc-purge-all", |bench| {
        bench.iter(|| black_box(cse_function(f, None, DepMode::GccOnly)))
    });
    g.bench_function("hli-refmod-purge", |bench| {
        bench.iter(|| {
            let mut entry = p.hli.entry("main").unwrap().clone();
            let mut map = map_function(f, &entry);
            black_box(cse_function(f, Some((&mut entry, &mut map)), DepMode::Combined))
        })
    });
    g.finish();
}

fn bench_licm(c: &mut Criterion) {
    let p = hli_bench::prepare("101.tomcatv", Scale::tiny());
    let f = p.rtl.func("residuals").unwrap();
    let mut g = c.benchmark_group("ablations/licm");
    g.bench_function("gcc", |bench| {
        bench.iter(|| black_box(licm_function(f, None, DepMode::GccOnly)))
    });
    g.bench_function("hli", |bench| {
        bench.iter(|| {
            let mut entry = p.hli.entry("residuals").unwrap().clone();
            let mut map = map_function(f, &entry);
            black_box(licm_function(f, Some((&mut entry, &mut map)), DepMode::Combined))
        })
    });
    g.finish();
}

fn bench_unroll_factors(c: &mut Criterion) {
    let b = hli_suite::by_name("034.mdljdp2", Scale::tiny()).unwrap();
    let (prog, sema) = hli_lang::compile_to_ast(&b.source).unwrap();
    let (rtl, loops) = hli_backend::lower::lower_with_loops(&prog, &sema);
    let hli = hli_frontend::generate_hli(&prog, &sema);
    let f = rtl.func("init_md").unwrap();
    let metas = &loops["init_md"];
    assert!(!metas.is_empty(), "init_md has a constant-trip loop");
    let mut g = c.benchmark_group("ablations/unroll");
    for factor in [2u32, 4, 8] {
        g.bench_function(format!("factor-{factor}"), |bench| {
            bench.iter(|| {
                let mut entry = hli.entry("init_md").unwrap().clone();
                let mut map = map_function(f, &entry);
                black_box(unroll_function(f, metas, factor, Some((&mut entry, &mut map))))
            })
        });
    }
    g.finish();
}

fn bench_frontend_precision(c: &mut Criterion) {
    let b = hli_suite::by_name("077.mdljsp2", Scale::tiny()).unwrap();
    let (prog, sema) = hli_lang::compile_to_ast(&b.source).unwrap();
    let rtl = hli_backend::lower::lower_program(&prog, &sema);
    let lat = LatencyModel::default();
    let variants = [
        ("full", FrontendOptions::default()),
        (
            "no-array-analysis",
            FrontendOptions { array_analysis: false, ..Default::default() },
        ),
        (
            "no-pointer-analysis",
            FrontendOptions { pointer_analysis: false, ..Default::default() },
        ),
        (
            "no-refmod",
            FrontendOptions { refmod_analysis: false, ..Default::default() },
        ),
    ];
    let mut g = c.benchmark_group("ablations/frontend-precision");
    for (label, opts) in variants {
        g.bench_function(label, |bench| {
            bench.iter(|| {
                let hli = hli_frontend::generate_hli_with(&prog, &sema, opts);
                let (_, stats) = schedule_program(&rtl, &hli, DepMode::Combined, &lat);
                black_box(stats.combined_yes)
            })
        });
    }
    g.finish();
}

criterion_group!(
    benches,
    bench_cse_refmod,
    bench_licm,
    bench_unroll_factors,
    bench_frontend_precision
);
criterion_main!(benches);
