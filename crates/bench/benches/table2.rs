//! Table 2 bench: the back-end pipeline the paper instruments — item
//! mapping, DDG construction with dependence queries, and basic-block list
//! scheduling — compared with GCC-only vs Combined (Figure 5) gating, plus
//! machine-model replay throughput.

use hli_backend::ddg::DepMode;
use hli_backend::sched::schedule_program;
use hli_bench::bench;
use hli_machine::{r10000_cycles, r4600_cycles, R10000Config, R4600Config};
use hli_suite::Scale;

fn bench_schedule_modes() {
    for name in ["034.mdljdp2", "102.swim"] {
        let p = hli_bench::prepare(name, Scale::tiny());
        let lat = hli_machine::backend_by_name("r4600").unwrap();
        for (label, mode) in [("gcc", DepMode::GccOnly), ("combined", DepMode::Combined)] {
            bench(&format!("table2/schedule/{name}/{label}"), || {
                schedule_program(&p.rtl, &p.hli, mode, lat)
            });
        }
    }
}

fn bench_mapping() {
    let p = hli_bench::prepare("102.swim", Scale::tiny());
    bench("table2/map-all-functions", || {
        for f in &p.rtl.funcs {
            if let Some(e) = p.hli.entry(&f.name) {
                std::hint::black_box(hli_backend::mapping::map_function(f, e));
            }
        }
    });
}

fn bench_machines() {
    let p = hli_bench::prepare("129.compress", Scale::tiny());
    let (sched, _) = schedule_program(
        &p.rtl,
        &p.hli,
        DepMode::Combined,
        hli_machine::backend_by_name("r4600").unwrap(),
    );
    let (_, trace) = hli_machine::execute_with_trace(&sched).unwrap();
    println!("table2/machines: replaying {} dynamic insns", trace.len());
    bench("table2/machines/r4600-replay", || {
        r4600_cycles(&trace, &R4600Config::default())
    });
    bench("table2/machines/r10000-replay", || {
        r10000_cycles(&trace, &R10000Config::default())
    });
    bench("table2/machines/w4-replay", || {
        hli_machine::w4_cycles(&trace, &hli_machine::W4Config::default())
    });
    bench("table2/machines/functional-execute", || {
        hli_machine::execute(&sched).unwrap()
    });
}

fn main() {
    hli_bench::quiesce_observability();
    bench_schedule_modes();
    bench_mapping();
    bench_machines();
}
