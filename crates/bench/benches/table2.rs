//! Table 2 bench: the back-end pipeline the paper instruments — item
//! mapping, DDG construction with dependence queries, and basic-block list
//! scheduling — compared with GCC-only vs Combined (Figure 5) gating, plus
//! machine-model replay throughput.

use criterion::{criterion_group, criterion_main, Criterion};
use hli_backend::ddg::DepMode;
use hli_backend::sched::{schedule_program, LatencyModel};
use hli_machine::{r10000_cycles, r4600_cycles, R10000Config, R4600Config};
use hli_suite::Scale;
use std::hint::black_box;

fn bench_schedule_modes(c: &mut Criterion) {
    let mut g = c.benchmark_group("table2/schedule");
    for name in ["034.mdljdp2", "102.swim"] {
        let p = hli_bench::prepare(name, Scale::tiny());
        let lat = LatencyModel::default();
        for (label, mode) in [("gcc", DepMode::GccOnly), ("combined", DepMode::Combined)] {
            g.bench_function(format!("{name}/{label}"), |bench| {
                bench.iter(|| black_box(schedule_program(&p.rtl, &p.hli, mode, &lat)))
            });
        }
    }
    g.finish();
}

fn bench_mapping(c: &mut Criterion) {
    let p = hli_bench::prepare("102.swim", Scale::tiny());
    c.bench_function("table2/map-all-functions", |bench| {
        bench.iter(|| {
            for f in &p.rtl.funcs {
                if let Some(e) = p.hli.entry(&f.name) {
                    black_box(hli_backend::mapping::map_function(f, e));
                }
            }
        })
    });
}

fn bench_machines(c: &mut Criterion) {
    let p = hli_bench::prepare("129.compress", Scale::tiny());
    let (sched, _) = schedule_program(&p.rtl, &p.hli, DepMode::Combined, &LatencyModel::default());
    let (_, trace) = hli_machine::execute_with_trace(&sched).unwrap();
    let mut g = c.benchmark_group("table2/machines");
    g.throughput(criterion::Throughput::Elements(trace.len() as u64));
    g.bench_function("r4600-replay", |bench| {
        bench.iter(|| black_box(r4600_cycles(&trace, &R4600Config::default())))
    });
    g.bench_function("r10000-replay", |bench| {
        bench.iter(|| black_box(r10000_cycles(&trace, &R10000Config::default())))
    });
    g.bench_function("functional-execute", |bench| {
        bench.iter(|| black_box(hli_machine::execute(&sched).unwrap()))
    });
    g.finish();
}

criterion_group!(benches, bench_schedule_modes, bench_mapping, bench_machines);
criterion_main!(benches);
