//! Table 1 bench: the front-end cost of producing the HLI (generation and
//! compact serialization) for representative int and fp benchmarks.

use hli_bench::bench;
use hli_core::serialize::{encode_file, SerializeOpts};
use hli_suite::Scale;

fn bench_hli_generation() {
    for name in ["129.compress", "102.swim", "034.mdljdp2"] {
        let b = hli_suite::by_name(name, Scale::tiny()).unwrap();
        let (prog, sema) = hli_lang::compile_to_ast(&b.source).unwrap();
        bench(&format!("table1/hli-generation/{name}"), || {
            hli_frontend::generate_hli(&prog, &sema)
        });
    }
}

fn bench_serialization() {
    for name in ["102.swim", "141.apsi"] {
        let p = hli_bench::prepare(name, Scale::tiny());
        bench(&format!("table1/serialization/{name}/encode"), || {
            encode_file(&p.hli, SerializeOpts::default())
        });
        let bytes = encode_file(&p.hli, SerializeOpts::default());
        bench(&format!("table1/serialization/{name}/decode"), || {
            hli_core::serialize::decode_file(&bytes, SerializeOpts::default()).unwrap()
        });
    }
}

fn bench_full_frontend() {
    let b = hli_suite::by_name("101.tomcatv", Scale::tiny()).unwrap();
    bench("table1/source-to-hli-bytes", || {
        let (prog, sema) = hli_lang::compile_to_ast(&b.source).unwrap();
        let hli = hli_frontend::generate_hli(&prog, &sema);
        encode_file(&hli, SerializeOpts::default()).len()
    });
}

fn main() {
    hli_bench::quiesce_observability();
    bench_hli_generation();
    bench_serialization();
    bench_full_frontend();
}
