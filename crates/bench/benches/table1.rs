//! Table 1 bench: the front-end cost of producing the HLI (generation and
//! compact serialization) for representative int and fp benchmarks.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use hli_core::serialize::{encode_file, SerializeOpts};
use hli_suite::Scale;
use std::hint::black_box;

fn bench_hli_generation(c: &mut Criterion) {
    let mut g = c.benchmark_group("table1/hli-generation");
    for name in ["129.compress", "102.swim", "034.mdljdp2"] {
        let b = hli_suite::by_name(name, Scale::tiny()).unwrap();
        let (prog, sema) = hli_lang::compile_to_ast(&b.source).unwrap();
        g.bench_function(name, |bench| {
            bench.iter(|| black_box(hli_frontend::generate_hli(&prog, &sema)))
        });
    }
    g.finish();
}

fn bench_serialization(c: &mut Criterion) {
    let mut g = c.benchmark_group("table1/serialization");
    for name in ["102.swim", "141.apsi"] {
        let p = hli_bench::prepare(name, Scale::tiny());
        g.bench_function(format!("{name}/encode"), |bench| {
            bench.iter(|| black_box(encode_file(&p.hli, SerializeOpts::default())))
        });
        let bytes = encode_file(&p.hli, SerializeOpts::default());
        g.bench_function(format!("{name}/decode"), |bench| {
            bench.iter(|| {
                black_box(
                    hli_core::serialize::decode_file(&bytes, SerializeOpts::default()).unwrap(),
                )
            })
        });
    }
    g.finish();
}

fn bench_full_frontend(c: &mut Criterion) {
    let b = hli_suite::by_name("101.tomcatv", Scale::tiny()).unwrap();
    c.bench_function("table1/source-to-hli-bytes", |bench| {
        bench.iter_batched(
            || b.source.clone(),
            |src| {
                let (prog, sema) = hli_lang::compile_to_ast(&src).unwrap();
                let hli = hli_frontend::generate_hli(&prog, &sema);
                black_box(encode_file(&hli, SerializeOpts::default()).len())
            },
            BatchSize::SmallInput,
        )
    });
}

criterion_group!(benches, bench_hli_generation, bench_serialization, bench_full_frontend);
criterion_main!(benches);
