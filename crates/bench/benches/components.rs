//! Component microbenches: every analysis and data-structure layer the
//! pipeline is built from.

use hli_analysis::affine::Affine;
use hli_analysis::deptest::siv_test;
use hli_bench::bench;
use hli_core::query::HliQuery;
use hli_suite::Scale;
use std::hint::black_box;

fn bench_parse_and_sema() {
    let b = hli_suite::by_name("141.apsi", Scale::tiny()).unwrap();
    bench("components/parse", || hli_lang::parse_program(&b.source).unwrap());
    let prog = hli_lang::parse_program(&b.source).unwrap();
    bench("components/sema", || hli_lang::analyze(&prog).unwrap());
}

fn bench_analyses() {
    let b = hli_suite::by_name("103.su2cor", Scale::tiny()).unwrap();
    let (prog, sema) = hli_lang::compile_to_ast(&b.source).unwrap();
    bench("components/points-to", || hli_analysis::pointsto::analyze(&prog, &sema));
    let pts = hli_analysis::pointsto::analyze(&prog, &sema);
    bench("components/refmod", || {
        hli_analysis::refmod::analyze(&prog, &sema, &pts)
    });
}

fn bench_deptest() {
    // Strong-SIV ladder on synthetic affine pairs.
    let pairs: Vec<(Affine, Affine)> = (0..64)
        .map(|k| {
            let f = Affine::var(0).scale(1 + k % 3).add(&Affine::constant(k));
            let g = Affine::var(0).scale(1 + k % 3).add(&Affine::constant(k - (k % 7)));
            (f, g)
        })
        .collect();
    bench("components/siv-test-64-pairs", || {
        for (f, g) in &pairs {
            black_box(siv_test(f, g, 0, Some(100)));
        }
    });
}

fn bench_query_throughput() {
    let p = hli_bench::prepare("102.swim", Scale::tiny());
    let entry = p.hli.entries.iter().max_by_key(|e| e.line_table.item_count()).unwrap();
    let items: Vec<_> = entry.line_table.items().map(|(_, it)| it.id).collect();
    bench("components/query-index-build", || HliQuery::new(entry));
    let q = HliQuery::new(entry);
    bench("components/get-equiv-acc-all-pairs", || {
        let mut yes = 0u32;
        for (i, &a) in items.iter().enumerate() {
            for &b in &items[i + 1..] {
                if q.get_equiv_acc(a, b).may_overlap() {
                    yes += 1;
                }
            }
        }
        yes
    });
}

fn bench_lowering() {
    let b = hli_suite::by_name("015.doduc", Scale::tiny()).unwrap();
    let (prog, sema) = hli_lang::compile_to_ast(&b.source).unwrap();
    bench("components/lowering", || {
        hli_backend::lower::lower_program(&prog, &sema)
    });
}

fn main() {
    hli_bench::quiesce_observability();
    bench_parse_and_sema();
    bench_analyses();
    bench_deptest();
    bench_query_throughput();
    bench_lowering();
}
