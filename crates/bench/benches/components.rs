//! Component microbenches: every analysis and data-structure layer the
//! pipeline is built from.

use criterion::{criterion_group, criterion_main, Criterion};
use hli_analysis::affine::Affine;
use hli_analysis::deptest::siv_test;
use hli_core::query::HliQuery;
use hli_suite::Scale;
use std::hint::black_box;

fn bench_parse_and_sema(c: &mut Criterion) {
    let b = hli_suite::by_name("141.apsi", Scale::tiny()).unwrap();
    c.bench_function("components/parse", |bench| {
        bench.iter(|| black_box(hli_lang::parse_program(&b.source).unwrap()))
    });
    let prog = hli_lang::parse_program(&b.source).unwrap();
    c.bench_function("components/sema", |bench| {
        bench.iter(|| black_box(hli_lang::analyze(&prog).unwrap()))
    });
}

fn bench_analyses(c: &mut Criterion) {
    let b = hli_suite::by_name("103.su2cor", Scale::tiny()).unwrap();
    let (prog, sema) = hli_lang::compile_to_ast(&b.source).unwrap();
    c.bench_function("components/points-to", |bench| {
        bench.iter(|| black_box(hli_analysis::pointsto::analyze(&prog, &sema)))
    });
    let pts = hli_analysis::pointsto::analyze(&prog, &sema);
    c.bench_function("components/refmod", |bench| {
        bench.iter(|| black_box(hli_analysis::refmod::analyze(&prog, &sema, &pts)))
    });
}

fn bench_deptest(c: &mut Criterion) {
    // Strong-SIV ladder on synthetic affine pairs.
    let pairs: Vec<(Affine, Affine)> = (0..64)
        .map(|k| {
            let f = Affine::var(0).scale(1 + k % 3).add(&Affine::constant(k));
            let g = Affine::var(0).scale(1 + k % 3).add(&Affine::constant(k - (k % 7)));
            (f, g)
        })
        .collect();
    c.bench_function("components/siv-test-64-pairs", |bench| {
        bench.iter(|| {
            for (f, g) in &pairs {
                black_box(siv_test(f, g, 0, Some(100)));
            }
        })
    });
}

fn bench_query_throughput(c: &mut Criterion) {
    let p = hli_bench::prepare("102.swim", Scale::tiny());
    let entry = p
        .hli
        .entries
        .iter()
        .max_by_key(|e| e.line_table.item_count())
        .unwrap();
    let items: Vec<_> = entry.line_table.items().map(|(_, it)| it.id).collect();
    c.bench_function("components/query-index-build", |bench| {
        bench.iter(|| black_box(HliQuery::new(entry)))
    });
    let q = HliQuery::new(entry);
    c.bench_function("components/get-equiv-acc-all-pairs", |bench| {
        bench.iter(|| {
            let mut yes = 0u32;
            for (i, &a) in items.iter().enumerate() {
                for &b in &items[i + 1..] {
                    if q.get_equiv_acc(a, b).may_overlap() {
                        yes += 1;
                    }
                }
            }
            black_box(yes)
        })
    });
}

fn bench_lowering(c: &mut Criterion) {
    let b = hli_suite::by_name("015.doduc", Scale::tiny()).unwrap();
    let (prog, sema) = hli_lang::compile_to_ast(&b.source).unwrap();
    c.bench_function("components/lowering", |bench| {
        bench.iter(|| black_box(hli_backend::lower::lower_program(&prog, &sema)))
    });
}

criterion_group!(
    benches,
    bench_parse_and_sema,
    bench_analyses,
    bench_deptest,
    bench_query_throughput,
    bench_lowering
);
criterion_main!(benches);
