//! # hli-bench — Criterion benchmarks
//!
//! One bench target per paper table plus component microbenches and
//! ablations:
//!
//! * `table1` — HLI generation + serialization cost per benchmark (the
//!   front-end overhead behind Table 1's sizes);
//! * `table2` — the scheduling pipeline (map + DDG + list schedule) under
//!   GCC-only vs Combined dependence gating (Table 2's compile-time side);
//! * `components` — parser, sema, points-to, dependence tests, query
//!   throughput, mapping, machine-model replay;
//! * `ablations` — CSE with/without REF/MOD, LICM with/without HLI,
//!   unrolling factors with HLI maintenance, front-end precision knobs.
//!
//! The shared helpers here keep the bench targets small.

use hli_backend::rtl::RtlProgram;
use hli_core::HliFile;
use hli_lang::ast::Program;
use hli_lang::sema::Sema;

/// A fully front-ended benchmark ready for back-end work.
pub struct Prepared {
    pub name: &'static str,
    pub prog: Program,
    pub sema: Sema,
    pub hli: HliFile,
    pub rtl: RtlProgram,
}

/// Compile a suite benchmark end to end (panics on error — bench setup).
pub fn prepare(name: &'static str, scale: hli_suite::Scale) -> Prepared {
    let b = hli_suite::by_name(name, scale).expect("known benchmark");
    let (prog, sema) = hli_lang::compile_to_ast(&b.source).expect("compiles");
    let hli = hli_frontend::generate_hli(&prog, &sema);
    let rtl = hli_backend::lower::lower_program(&prog, &sema);
    Prepared { name, prog, sema, hli, rtl }
}
