//! # hli-bench — timing harness benchmarks
//!
//! One bench target per paper table plus component microbenches and
//! ablations (all plain `fn main()` programs, `harness = false`):
//!
//! * `table1` — HLI generation + serialization cost per benchmark (the
//!   front-end overhead behind Table 1's sizes);
//! * `table2` — the scheduling pipeline (map + DDG + list schedule) under
//!   GCC-only vs Combined dependence gating (Table 2's compile-time side);
//! * `components` — parser, sema, points-to, dependence tests, query
//!   throughput, mapping, machine-model replay;
//! * `ablations` — CSE with/without REF/MOD, LICM with/without HLI,
//!   unrolling factors with HLI maintenance, front-end precision knobs.
//!
//! The shared helpers here keep the bench targets small: [`prepare`] does
//! the common front-end work, [`bench()`] is a self-calibrating
//! wall-clock timer (run with `cargo bench`; results print as ns/iter).

use hli_backend::rtl::RtlProgram;
use hli_core::HliFile;
use hli_lang::ast::Program;
use hli_lang::sema::Sema;
use hli_obs::timing::{time, Samples};
use std::hint::black_box;
use std::time::{Duration, Instant};

/// A fully front-ended benchmark ready for back-end work.
pub struct Prepared {
    pub name: &'static str,
    pub prog: Program,
    pub sema: Sema,
    pub hli: HliFile,
    pub rtl: RtlProgram,
}

/// Compile a suite benchmark end to end (panics on error — bench setup).
pub fn prepare(name: &'static str, scale: hli_suite::Scale) -> Prepared {
    let b = hli_suite::by_name(name, scale).expect("known benchmark");
    let (prog, sema) = hli_lang::compile_to_ast(&b.source).expect("compiles");
    let hli = hli_frontend::generate_hli(&prog, &sema);
    let rtl = hli_backend::lower::lower_program(&prog, &sema);
    Prepared { name, prog, sema, hli, rtl }
}

/// Mute the observability layer for timing runs: spans and ring events
/// off, so benches measure the pipeline, not the instrumentation.
pub fn quiesce_observability() {
    hli_obs::trace::global().set_enabled(false);
    hli_obs::ring::global().set_enabled(false);
}

/// Minimum measurement window per bench.
const TARGET: Duration = Duration::from_millis(200);

/// Time `f` until the window fills (with warmup), collecting one sample
/// per iteration, and print a `min/median/p95` line — a single mean hides
/// the scheduling outliers that dominate small kernels, min/median/p95
/// does not. Dependency-free stand-in for a bench harness.
pub fn bench<R>(name: &str, mut f: impl FnMut() -> R) {
    for _ in 0..2 {
        black_box(f());
    }
    let start = Instant::now();
    let mut samples = Samples::new();
    while samples.len() < 5 || (start.elapsed() < TARGET && samples.len() < 1_000_000) {
        let (r, d) = time(&mut f);
        black_box(r);
        samples.push(d);
    }
    println!("{name:<48} {}", samples.summary());
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_runs_at_least_five_iters() {
        let mut n = 0u64;
        bench("test/no-op", || {
            n += 1;
            n
        });
        assert!(n >= 5);
    }
}
