//! Integration gates for `hlicc serve` over the generated corpus — the
//! docs/SERVE.md "Determinism contract" enforced in-process:
//!
//! * cold vs. warm runs are byte-identical in compile metrics and
//!   provenance (only `serve.*` may differ);
//! * `jobs = 1` vs `jobs = 8` runs are byte-identical in everything,
//!   `serve.*` included;
//! * the edit-recompile steady state misses exactly once per epoch
//!   (hit rate (N−1)/N ≥ 80% for any corpus with ≥ 5 functions).

use hli_obs::provenance::ProvenanceSink;
use hli_obs::{metrics, provenance, MetricsRegistry, MetricsSnapshot};
use hli_serve::{CompileFlags, ProgramReq, Request, Response, ServeConfig, Server};
use hli_suite::corpus::{edit_program, generate, CorpusSpec};
use std::path::{Path, PathBuf};
use std::sync::atomic::AtomicU64;
use std::sync::Arc;

fn tmp(name: &str) -> PathBuf {
    let d = std::env::temp_dir().join(format!("hli-serve-it-{}-{name}", std::process::id()));
    let _ = std::fs::remove_dir_all(&d);
    d
}

/// Three epochs of the servebench workload: pristine corpus, then two
/// one-function edits, whole corpus resubmitted each time.
fn workload() -> Vec<String> {
    let spec = CorpusSpec { programs: 2, funcs: 5, seed: 0xBEEF, ..Default::default() };
    let pristine: Vec<(String, String)> =
        generate(&spec).into_iter().map(|b| (b.name, b.source)).collect();
    let mut lines = Vec::new();
    for epoch in 0..3u64 {
        let programs = pristine
            .iter()
            .enumerate()
            .map(|(pi, (name, source))| {
                let src = match (epoch, pi) {
                    (1, 0) | (2, 0) => edit_program(source, 1, 10 * epoch).unwrap(),
                    _ => source.clone(),
                };
                ProgramReq {
                    name: name.clone(),
                    source: src,
                    flags: CompileFlags::default(),
                }
            })
            .collect();
        lines.push(Request::Compile { id: epoch, programs }.to_line());
    }
    lines
}

struct RunOut {
    responses: Vec<String>,
    outcomes: Vec<(u64, u64)>,
    snapshot: MetricsSnapshot,
    jsonl: String,
}

fn run_at(cache_dir: &Path, jobs: usize, lines: &[String]) -> RunOut {
    let reg = Arc::new(MetricsRegistry::new());
    let sink = Arc::new(ProvenanceSink::new());
    sink.set_enabled(true);
    let _m = metrics::scoped(reg.clone());
    let _s = provenance::scoped(sink.clone());
    let _i = provenance::scoped_ids(Arc::new(AtomicU64::new(1)));
    let server =
        Server::new(ServeConfig { cache_dir: cache_dir.to_path_buf(), cache_max_bytes: 0, jobs })
            .unwrap();
    let responses: Vec<String> = lines.iter().map(|l| server.handle_line(l).0).collect();
    let outcomes = responses
        .iter()
        .map(|r| match Response::parse(r).unwrap() {
            Response::Compile { hits, misses, results, .. } => {
                assert!(results.iter().all(|p| p.outcome.is_ok()));
                (hits, misses)
            }
            other => panic!("{other:?}"),
        })
        .collect();
    RunOut {
        responses,
        outcomes,
        snapshot: reg.snapshot(),
        jsonl: provenance::to_jsonl(&sink.drain()),
    }
}

fn strip_serve(snap: &MetricsSnapshot) -> String {
    let mut s = snap.clone();
    s.counters.retain(|k, _| !k.starts_with("serve."));
    s.gauges.retain(|k, _| !k.starts_with("serve."));
    s.histograms.retain(|k, _| !k.starts_with("serve."));
    s.to_json()
}

fn neutral(line: &str) -> String {
    let mut r = Response::parse(line).unwrap();
    if let Response::Compile { results, hits, misses, .. } = &mut r {
        (*hits, *misses) = (0, 0);
        for pr in results.iter_mut() {
            if let Ok(funcs) = &mut pr.outcome {
                for f in funcs {
                    f.cached = false;
                }
            }
        }
    }
    r.to_line()
}

#[test]
fn jobs_1_and_8_are_byte_identical_including_serve_metrics() {
    let lines = workload();
    let a = run_at(&tmp("j1"), 1, &lines);
    let b = run_at(&tmp("j8"), 8, &lines);
    assert_eq!(a.responses, b.responses, "wire payloads must not depend on pool size");
    assert_eq!(
        a.snapshot.to_json(),
        b.snapshot.to_json(),
        "metrics (serve.* included) must not depend on pool size"
    );
    assert_eq!(a.jsonl, b.jsonl, "provenance must not depend on pool size");
}

#[test]
fn warm_cache_answers_are_byte_identical_to_cold_outside_serve() {
    let dir = tmp("warmcold");
    let lines = workload();
    let cold = run_at(&dir, 2, &lines);
    let warm = run_at(&dir, 2, &lines);
    assert_eq!(
        warm.outcomes.iter().map(|&(_, m)| m).sum::<u64>(),
        0,
        "warm replay all-hit"
    );
    assert_eq!(
        cold.responses.iter().map(|l| neutral(l)).collect::<Vec<_>>(),
        warm.responses.iter().map(|l| neutral(l)).collect::<Vec<_>>(),
        "cached answers must be byte-identical to cold ones modulo cache markers"
    );
    assert_eq!(
        strip_serve(&cold.snapshot),
        strip_serve(&warm.snapshot),
        "compile metrics must not depend on cache state"
    );
    assert_eq!(cold.jsonl, warm.jsonl, "provenance must not depend on cache state");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn steady_state_edit_recompile_misses_exactly_once_per_epoch() {
    let dir = tmp("steady");
    let lines = workload();
    let run = run_at(&dir, 2, &lines);
    let per_batch = 2 * (5 + 1); // programs × (funcs + main)
    assert_eq!(run.outcomes[0], (0, per_batch), "epoch 0 is fully cold");
    assert_eq!(run.outcomes[1], (per_batch - 1, 1), "one edit ⇒ one miss");
    assert_eq!(run.outcomes[2], (per_batch - 1, 1), "accumulated edit ⇒ still one miss");
    let (hits, total) = (2 * (per_batch - 1), 2 * per_batch);
    assert!(
        hits as f64 / total as f64 >= 0.8,
        "steady-state hit rate below the 80% gate"
    );
    let _ = std::fs::remove_dir_all(&dir);
}
