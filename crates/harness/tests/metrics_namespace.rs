//! The metric-key namespace contract, enforced: every counter, gauge and
//! histogram a full pipeline run registers must live under one of the
//! prefixes documented in DESIGN.md ("Metric-key namespace"). A key
//! outside the list is either a typo or a new subsystem that needs a
//! documented prefix — both should fail CI here, with the offending key
//! named, rather than silently fragment the snapshot schema that
//! obsdiff, perfbench and obsreport all join on.

use hli_harness::{run_suite_jobs, ImportConfig};
use hli_obs::{metrics, provenance, MetricsRegistry, ProvenanceSink};
use hli_suite::Scale;
use std::sync::atomic::AtomicU64;
use std::sync::Arc;

/// The documented prefixes, verbatim from DESIGN.md. Keep the two lists
/// in sync: the doc is the contract, this test is the enforcement.
const DOCUMENTED_PREFIXES: &[&str] = &[
    "frontend.",   // AST → HLI generation and encoding
    "backend.",    // scheduling, CSE/LICM/unroll, query cache, quarantine
    "machine.",    // R4600/R10000 model execution
    "hli.",        // HLI decode/import and Table-2 query accounting
    "provenance.", // per-pass decision verdict tallies
    "obs.",        // the observability layer's own overhead (ring, trace, mem, phase)
    "attr.",       // decision-to-cycles attribution (per-function and total)
    "serve.",      // the hlicc serve daemon: batches, cache hits/misses/bytes
];

fn check(kind: &str, key: &str) {
    assert!(
        DOCUMENTED_PREFIXES.iter().any(|p| key.starts_with(p)),
        "{kind} key `{key}` is outside every documented metric namespace \
         ({DOCUMENTED_PREFIXES:?}); add the prefix to DESIGN.md's \
         \"Metric-key namespace\" table and to this test, or fix the key"
    );
}

#[test]
fn every_pipeline_metric_key_is_in_a_documented_namespace() {
    let reg = Arc::new(MetricsRegistry::new());
    let sink = Arc::new(ProvenanceSink::new());
    sink.set_enabled(true);
    let ids = Arc::new(AtomicU64::new(1));
    let reports = {
        let _m = metrics::scoped(reg.clone());
        let _s = provenance::scoped(sink.clone());
        let _i = provenance::scoped_ids(ids);
        // A serve batch rides the same scoped registry, so the daemon's
        // own keys (`serve.*`) are held to the same namespace contract.
        let dir = std::env::temp_dir()
            .join(format!("hli-metrics-namespace-serve-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let server = hli_serve::Server::new(hli_serve::ServeConfig {
            cache_dir: dir.clone(),
            cache_max_bytes: 0,
            jobs: 1,
        })
        .unwrap();
        let req = hli_serve::Request::Compile {
            id: 1,
            programs: vec![hli_serve::ProgramReq {
                name: "ns".into(),
                source: "int main() { return 0; }\n".into(),
                flags: hli_serve::CompileFlags::default(),
            }],
        };
        let (resp, _) = server.handle_line(&req.to_line());
        assert!(matches!(
            hli_serve::Response::parse(&resp),
            Ok(hli_serve::Response::Compile { .. })
        ));
        let _ = std::fs::remove_dir_all(&dir);
        run_suite_jobs(Scale::tiny(), ImportConfig::default(), 2)
    };
    for r in reports {
        assert!(r.expect("benchmark must compile").validated);
    }
    let snap = reg.snapshot();
    assert!(!snap.counters.is_empty(), "a suite run must register counters");
    for key in snap.counters.keys() {
        check("counter", key);
    }
    for key in snap.gauges.keys() {
        check("gauge", key);
    }
    for key in snap.histograms.keys() {
        check("histogram", key);
    }
}
