//! End-to-end contract of the perf-trajectory observatory: the generated
//! corpus runs the full pipeline correctly, the deterministic report
//! sections are jobs-invariant, and the `perfbench` binary's
//! emit → compare round trip gates the way CI relies on (self-compare
//! passes; a perturbed checkpoint fails; a foreign schema is refused).

use hli_harness::perf::{build_report, compare, CorpusEcho, PerfReport, Tolerances};
use hli_harness::{run_benchmarks_jobs, ImportConfig};
use hli_obs::MetricsRegistry;
use hli_suite::corpus::{generate, CallShape, CorpusSpec};
use std::process::Command;
use std::sync::Arc;
use std::time::Duration;

fn tiny_spec() -> CorpusSpec {
    CorpusSpec {
        seed: 11,
        programs: 3,
        funcs: 10,
        shape: CallShape::Balanced,
        ..Default::default()
    }
}

/// Run the tiny corpus at `jobs` workers under a fresh scoped registry,
/// returning the built perf report (wall time zeroed: only the
/// deterministic sections are compared here).
fn corpus_report_at(jobs: usize) -> (PerfReport, String) {
    let spec = tiny_spec();
    let benches = generate(&spec);
    let reg = Arc::new(MetricsRegistry::new());
    let reports: Vec<_> = {
        let _scope = hli_obs::metrics::scoped(reg.clone());
        run_benchmarks_jobs(&benches, ImportConfig::default(), jobs)
            .into_iter()
            .map(|r| r.expect("generated program must compile and validate"))
            .collect()
    };
    for r in &reports {
        assert!(
            r.validated,
            "{} miscompiled: schedules disagree with the interpreter",
            r.name
        );
    }
    let echo = CorpusEcho::new(&spec, &[spec.seed]);
    let snap = reg.snapshot();
    (build_report(echo, &reports, Duration::ZERO, &snap), snap.to_json())
}

#[test]
fn corpus_counters_are_jobs_invariant() {
    let (seq, seq_json) = corpus_report_at(1);
    let (par, par_json) = corpus_report_at(8);
    assert_eq!(
        seq.counters, par.counters,
        "deterministic perf counters diverge between --jobs 1 and --jobs 8"
    );
    assert_eq!(
        seq_json, par_json,
        "scoped corpus metrics diverge between --jobs 1 and --jobs 8"
    );
    assert!(seq.counters["query.total_tests"] > 0);
    assert_eq!(seq.counters["corpus.validated"], seq.counters["corpus.programs"]);
}

#[test]
fn every_call_shape_survives_the_full_pipeline() {
    for shape in [CallShape::Chain, CallShape::Balanced, CallShape::Wide] {
        let spec = CorpusSpec { shape, programs: 1, funcs: 8, seed: 3, ..Default::default() };
        for r in run_benchmarks_jobs(&generate(&spec), ImportConfig::default(), 1) {
            let r = r.expect("compiles");
            assert!(r.validated, "{} ({shape:?}) miscompiled", r.name);
            assert!(r.stats.total_tests > 0, "{} ({shape:?}) scheduled nothing", r.name);
        }
    }
}

#[test]
fn perfbench_binary_emit_compare_round_trip() {
    let dir = std::env::temp_dir();
    let out = dir.join(format!("hli_perfbench_{}.json", std::process::id()));
    let corpus_args = [
        "--seeds",
        "5",
        "--programs",
        "2",
        "--funcs",
        "8",
        "--jobs",
        "2",
    ];

    // Emit a checkpoint.
    let emit = Command::new(env!("CARGO_BIN_EXE_perfbench"))
        .args(corpus_args)
        .args(["--out", out.to_str().unwrap()])
        .output()
        .expect("perfbench runs");
    assert!(
        emit.status.success(),
        "emit failed: {}",
        String::from_utf8_lossy(&emit.stderr)
    );
    let text = std::fs::read_to_string(&out).unwrap();
    let report = PerfReport::parse_str(&text).expect("emitted checkpoint parses");
    assert_eq!(report.schema_version, hli_obs::SCHEMA_VERSION);
    assert_eq!(report.corpus.seeds, vec![5]);

    // Self-compare: same corpus, fresh run, must gate clean (exit 0).
    let ok = Command::new(env!("CARGO_BIN_EXE_perfbench"))
        .args(corpus_args)
        .args(["--compare", out.to_str().unwrap()])
        .output()
        .expect("perfbench runs");
    assert!(
        ok.status.success(),
        "self-compare regressed: {}",
        String::from_utf8_lossy(&ok.stderr)
    );

    // Perturb an exact-section counter: the gate must fail with exit 1.
    let bad = out.with_extension("perturbed.json");
    let perturbed = text.replacen("\"query.total_tests\": ", "\"query.total_tests\": 1", 1);
    assert_ne!(perturbed, text, "perturbation must hit the counter");
    std::fs::write(&bad, perturbed).unwrap();
    let fail = Command::new(env!("CARGO_BIN_EXE_perfbench"))
        .args(corpus_args)
        .args(["--compare", bad.to_str().unwrap()])
        .output()
        .expect("perfbench runs");
    assert_eq!(
        fail.status.code(),
        Some(1),
        "perturbed counter must fail the gate: {}",
        String::from_utf8_lossy(&fail.stderr)
    );
    assert!(String::from_utf8_lossy(&fail.stderr).contains("REGRESSION"));

    // Mangle the schema version: refused as a usage error (exit 2).
    let old = out.with_extension("v1.json");
    std::fs::write(&old, text.replacen("\"schema_version\": 2", "\"schema_version\": 1", 1))
        .unwrap();
    let refuse = Command::new(env!("CARGO_BIN_EXE_perfbench"))
        .args(corpus_args)
        .args(["--compare", old.to_str().unwrap()])
        .output()
        .expect("perfbench runs");
    assert_eq!(
        refuse.status.code(),
        Some(2),
        "schema mismatch must be refused: {}",
        String::from_utf8_lossy(&refuse.stderr)
    );

    // A different corpus spec is likewise refused, not diffed.
    let other = Command::new(env!("CARGO_BIN_EXE_perfbench"))
        .args([
            "--seeds",
            "5",
            "--programs",
            "2",
            "--funcs",
            "9",
            "--jobs",
            "2",
        ])
        .args(["--compare", out.to_str().unwrap()])
        .output()
        .expect("perfbench runs");
    assert_eq!(
        other.status.code(),
        Some(2),
        "corpus mismatch must be refused: {}",
        String::from_utf8_lossy(&other.stderr)
    );

    for f in [&out, &bad, &old] {
        let _ = std::fs::remove_file(f);
    }
}

#[test]
fn checked_in_bench_checkpoint_parses_and_self_compares() {
    // The repo-root checkpoint CI gates against: it must stay parseable,
    // carry the current schema generation, and describe a corpus of at
    // least 1000 functions (the acceptance floor for the perf gate).
    let text = std::fs::read_to_string(concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_6.json"))
        .expect("BENCH_6.json is checked in at the repo root");
    let report = PerfReport::parse_str(&text).unwrap();
    assert_eq!(report.schema_version, hli_obs::SCHEMA_VERSION);
    let funcs = report.corpus.seeds.len() * report.corpus.programs * report.corpus.funcs;
    assert!(funcs >= 1000, "checkpoint corpus too small: {funcs} functions");
    assert_eq!(
        report.counters["corpus.validated"], report.counters["corpus.programs"],
        "checkpoint was recorded with miscompiles"
    );
    assert!(compare(&report, &report, &Tolerances::default()).unwrap().is_empty());
}
