//! Cross-target differential suite (the MachineBackend contract, from the
//! outside).
//!
//! Retargeting the pipeline must change *timing only*. Every backend sees
//! the same source, the same HLI, and the same dependence answers; what a
//! target is allowed to change is which schedule wins and how many cycles
//! the two builds cost. These tests run the same benchmarks once per
//! target and assert both halves of that contract:
//!
//!  * functional half — the executed work is byte-identical: the exec
//!    oracle validates every build, the dynamic instruction count matches,
//!    and the Table-2 dependence-query counters match across all targets;
//!  * timing half — cycle totals are pairwise distinct (three genuinely
//!    different machine descriptions), ordered the way the
//!    microarchitectures predict, and the W4 speedup profile is measurably
//!    different from the MIPS pair.

use hli_frontend::FrontendOptions;
use hli_harness::{run_benchmark_on, BenchReport, ImportConfig};
use hli_machine::MachineBackend;
use hli_suite::{by_name, Scale};

const TARGETS: [&str; 3] = ["r4600", "r10000", "w4"];

/// Benchmarks covering the interesting shapes: branchy integer code
/// (`wc`), int with memory traffic (`129.compress`), FP loop nests
/// (`101.tomcatv`), and straight-line FP (`048.ora`).
const ROWS: [&str; 4] = ["wc", "129.compress", "101.tomcatv", "048.ora"];

fn run_on(bench: &str, target: &str) -> BenchReport {
    let b = by_name(bench, Scale::tiny()).expect("known benchmark row");
    let mach: &'static dyn MachineBackend =
        hli_machine::backend_by_name(target).expect("registered target");
    run_benchmark_on(&b, FrontendOptions::default(), ImportConfig::default(), &[mach])
        .expect("pipeline runs on every target")
}

/// One run per (row, target); reports grouped by row in `TARGETS` order.
fn matrix() -> Vec<[BenchReport; 3]> {
    ROWS.iter().map(|row| TARGETS.map(|t| run_on(row, t))).collect()
}

#[test]
fn functional_results_are_identical_on_every_target() {
    for reports in matrix() {
        let base = &reports[0];
        for r in &reports {
            assert!(r.validated, "{}: exec oracle must validate on every target", r.name);
            assert_eq!(
                r.dyn_insns, base.dyn_insns,
                "{}: retargeting changed the executed instruction stream",
                r.name
            );
            assert_eq!(
                r.stats, base.stats,
                "{}: retargeting changed the dependence-query counters",
                r.name
            );
            assert_eq!(
                r.hli_bytes, base.hli_bytes,
                "{}: HLI encoding is machine-independent",
                r.name
            );
        }
    }
}

#[test]
fn cycle_counts_are_pairwise_distinct_across_targets() {
    for reports in matrix() {
        for (i, a) in reports.iter().enumerate() {
            for b in &reports[i + 1..] {
                let (ca, cb) = (a.machines[0], b.machines[0]);
                assert_ne!(
                    (ca.gcc, ca.hli),
                    (cb.gcc, cb.hli),
                    "{}: {} and {} priced the run identically — the backends are not \
                     genuinely different machine descriptions",
                    a.name,
                    ca.machine,
                    cb.machine
                );
            }
        }
    }
}

#[test]
fn cycle_totals_order_the_way_the_microarchitectures_predict() {
    // Out-of-order R10000 hides latencies it can; in-order 4-issue W4
    // beats single-issue R4600 on width but pays every exposed stall, so
    // raw cycles land strictly between the two MIPS models.
    for [r4600, r10000, w4] in matrix() {
        let name = &r4600.name;
        let g = |r: &BenchReport| r.machines[0].gcc;
        assert!(
            g(&r10000) < g(&w4) && g(&w4) < g(&r4600),
            "{name}: expected r10000 < w4 < r4600 gcc cycles, got {} / {} / {}",
            g(&r10000),
            g(&w4),
            g(&r4600)
        );
    }
}

#[test]
fn w4_rewards_scheduling_hardest_on_schedulable_fp_code() {
    // 101.tomcatv is the suite's most schedulable FP loop nest. An
    // in-order machine can't reorder around exposed latencies at run
    // time, so the HLI-informed schedule buys strictly more there than on
    // either MIPS model — the "measurably different speedup profile" the
    // W4 target exists to provide.
    let [r4600, r10000, w4] = ROWS
        .iter()
        .find(|r| **r == "101.tomcatv")
        .map(|r| TARGETS.map(|t| run_on(r, t)))
        .unwrap();
    let (s4600, s10000, sw4) = (
        r4600.speedup_on("r4600"),
        r10000.speedup_on("r10000"),
        w4.speedup_on("w4"),
    );
    assert!(
        sw4 > s4600 && sw4 > s10000,
        "w4 speedup {sw4:.4} should exceed r4600 {s4600:.4} and r10000 {s10000:.4}"
    );
    // And it is a real win, not noise at the third decimal.
    assert!(
        sw4 > 1.10,
        "w4 tomcatv speedup {sw4:.4} should be a >10% win at tiny scale"
    );
}

#[test]
fn solo_target_reports_carry_exactly_that_machine() {
    for target in TARGETS {
        let r = run_on("wc", target);
        let names: Vec<&str> = r.machines.iter().map(|m| m.machine).collect();
        assert_eq!(names, vec![target]);
        for other in TARGETS.iter().filter(|t| **t != target) {
            assert!(r.cycles_on(other).is_none());
            assert_eq!(r.speedup_on(other), 1.0, "absent machine reads as neutral speedup");
        }
    }
}
