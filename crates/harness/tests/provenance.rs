//! Decision-provenance integration tests: the JSONL format round-trips,
//! in-process pipeline runs emit records whose query ids actually
//! occurred, the paper's Figure 4/Figure 5 examples produce the pinned
//! Applied/Blocked records, and `obsdiff` gates on snapshot regressions.

use hli_backend::cse::cse_function;
use hli_backend::ddg::{DepMode, HliSide};
use hli_backend::lower::{lower_program, lower_with_loops};
use hli_backend::mapping::map_function;
use hli_backend::sched::schedule_function;
use hli_backend::unroll::unroll_function;
use hli_core::QueryCache;
use hli_frontend::generate_hli;
use hli_lang::compile_to_ast;
use hli_obs::provenance::{self, query_id_watermark, DecisionRecord, ProvenanceSink, QueryRef};
use hli_obs::Verdict;
use std::process::Command;
use std::sync::Arc;

/// The paper's Figure 4 example: `side()` mods only `unrelated`, so CSE
/// may keep the value of `g` live across the call.
const FIG4_KEEP: &str = "int g; int unrelated;\n\
    void side() { unrelated = unrelated + 1; }\n\
    int main() { int a; int b; a = g; side(); b = g; return a + b; }";

/// Variant where the callee really does clobber `g`: the purge must fire.
const FIG4_PURGE: &str = "int g;\n\
    void side() { g = g + 1; }\n\
    int main() { int a; int b; a = g; side(); b = g; return a + b; }";

/// Figure 5 shape: `pure_g` only reads `g`, so stores to `h` on either
/// side of the call may move across it (the hoist-across-call decision).
const FIG5_SRC: &str = "int g; int h;\n\
    int pure_g() { return g; }\n\
    int main() {\n h = 1; h = pure_g() + h; return h;\n}";

struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.0 = x;
        x
    }
}

/// Run the Figure-4 style CSE pipeline over `src` under a fresh scoped
/// sink and return the records it produced.
fn cse_records(src: &str) -> Vec<DecisionRecord> {
    let sink = Arc::new(ProvenanceSink::new());
    let _scope = provenance::scoped(sink.clone());
    let (p, s) = compile_to_ast(src).unwrap();
    let rtl = lower_program(&p, &s);
    let f = rtl.func("main").unwrap();
    let hli = generate_hli(&p, &s);
    let mut entry = hli.entry("main").unwrap().clone();
    let mut map = map_function(f, &entry);
    let _ = cse_function(
        f,
        Some((&mut entry, &mut map)),
        DepMode::Combined,
        hli_machine::backend_by_name("r4600").unwrap(),
    );
    sink.drain()
}

#[test]
fn decision_records_round_trip_through_jsonl() {
    let mut rng = Rng(0x9e3779b97f4a7c15);
    let passes = [
        "sched.pair",
        "cse.call",
        "licm.hoist",
        "unroll.loop",
        "maintain.gen_item",
    ];
    let reasons = [
        "call may modify location",
        "gcc=true \"quoted\"",
        "tab\there\\done",
        "",
    ];
    let mut records = Vec::new();
    for i in 0..100 {
        let blocked = rng.next().is_multiple_of(2);
        records.push(DecisionRecord {
            pass: passes[(rng.next() % passes.len() as u64) as usize].to_string(),
            function: format!("fn_{}", rng.next() % 7),
            region_id: if rng.next().is_multiple_of(3) {
                None
            } else {
                Some((rng.next() % 50) as u32)
            },
            order: i,
            span: rng.next() % 1000,
            est_cycles: rng.next() % 64,
            hli_queries: (0..rng.next() % 4).map(|_| QueryRef(rng.next() % 10_000)).collect(),
            verdict: if blocked {
                Verdict::Blocked {
                    reason: reasons[(rng.next() % reasons.len() as u64) as usize].to_string(),
                }
            } else {
                Verdict::Applied
            },
        });
    }
    let jsonl = provenance::to_jsonl(&records);
    let parsed: Vec<DecisionRecord> = jsonl
        .lines()
        .map(|l| DecisionRecord::parse_line(l).expect("emitted line parses"))
        .collect();
    assert_eq!(parsed, records);
}

#[test]
fn pipeline_records_cite_query_ids_that_occurred() {
    let w0 = query_id_watermark();
    let records = cse_records(FIG4_KEEP);
    let w1 = query_id_watermark();
    assert!(!records.is_empty(), "CSE over Figure 4 emitted no records");
    assert!(
        records.iter().any(|r| !r.hli_queries.is_empty()),
        "no record cites an HLI query: {records:?}"
    );
    for r in &records {
        for q in &r.hli_queries {
            assert!(
                q.0 >= w0 && q.0 < w1,
                "record cites query id {} outside the run's window [{w0}, {w1}): {r:?}",
                q.0
            );
        }
    }
}

#[test]
fn figure4_cse_keep_and_purge_records_pinned() {
    // Paper behaviour: REF/MOD shows side() cannot touch g, the entry is
    // kept across the call (Applied, justified by >= 1 query), and the
    // now-redundant second load dies (the maintenance delete).
    let keep = cse_records(FIG4_KEEP);
    let applied: Vec<_> =
        keep.iter().filter(|r| r.pass == "cse.call" && r.verdict.is_applied()).collect();
    assert_eq!(applied.len(), 1, "exactly one entry kept across the call: {keep:?}");
    assert!(!applied[0].hli_queries.is_empty(), "keep decision must cite a query");
    assert_eq!(applied[0].function, "main");
    assert!(
        keep.iter().any(|r| r.pass == "maintain.delete_item" && r.verdict.is_applied()),
        "eliminated load must produce a maintenance record: {keep:?}"
    );

    // When the callee really clobbers g the same position is Blocked.
    let purge = cse_records(FIG4_PURGE);
    let blocked: Vec<_> = purge
        .iter()
        .filter(|r| r.pass == "cse.call" && !r.verdict.is_applied())
        .collect();
    assert_eq!(blocked.len(), 1, "the g entry must be purged at the call: {purge:?}");
    match &blocked[0].verdict {
        Verdict::Blocked { reason } => assert_eq!(reason, "call may modify location"),
        v => panic!("expected Blocked, got {v:?}"),
    }
    assert!(
        !purge.iter().any(|r| r.pass == "maintain.delete_item"),
        "no load is redundant when the call clobbers g: {purge:?}"
    );
}

#[test]
fn figure5_hoist_across_call_record_pinned() {
    let sink = Arc::new(ProvenanceSink::new());
    let records = {
        let _scope = provenance::scoped(sink.clone());
        let (p, s) = compile_to_ast(FIG5_SRC).unwrap();
        let rtl = lower_program(&p, &s);
        let f = rtl.func("main").unwrap();
        let hli = generate_hli(&p, &s);
        let entry = hli.entry("main").unwrap().clone();
        let map = map_function(f, &entry);
        let cache = QueryCache::new();
        let q = cache.attach(&entry);
        let side = HliSide { query: &q, map: &map };
        let _ = schedule_function(
            f,
            Some(&side),
            DepMode::Combined,
            hli_machine::backend_by_name("r4600").unwrap(),
        );
        sink.drain()
    };
    let hoists: Vec<_> = records
        .iter()
        .filter(|r| r.pass == "sched.call" && r.verdict.is_applied())
        .collect();
    assert!(
        !hoists.is_empty(),
        "pure call must free at least one mem op to move across it: {records:?}"
    );
    assert!(
        hoists.iter().all(|r| !r.hli_queries.is_empty()),
        "hoist-across-call must be justified by an HLI query: {hoists:?}"
    );
}

#[test]
fn unroll_emits_loop_and_maintenance_records() {
    let src = "int a[16];\n\
        int main() {\n    int i;\n    for (i = 1; i < 16; i++)\n        a[i] = a[i-1] + 1;\n    return a[15];\n}";
    let sink = Arc::new(ProvenanceSink::new());
    let records = {
        let _scope = provenance::scoped(sink.clone());
        let (p, s) = compile_to_ast(src).unwrap();
        let (rtl, loops) = lower_with_loops(&p, &s);
        let f = rtl.func("main").unwrap();
        let hli = generate_hli(&p, &s);
        let mut entry = hli.entry("main").unwrap().clone();
        let mut map = map_function(f, &entry);
        let r = unroll_function(
            f,
            &loops["main"],
            3,
            Some((&mut entry, &mut map)),
            hli_machine::backend_by_name("r4600").unwrap(),
        );
        assert_eq!(r.unrolled, 1);
        sink.drain()
    };
    assert!(
        records.iter().any(|r| r.pass == "unroll.loop" && r.verdict.is_applied()),
        "unrolled loop must be recorded: {records:?}"
    );
    assert!(
        records
            .iter()
            .any(|r| r.pass == "maintain.unroll_loop" && r.region_id.is_some()),
        "the Figure-6 table rebuild must name its region: {records:?}"
    );
}

#[test]
fn hlicc_provenance_out_is_parseable_and_cites_queries() {
    let dir = std::env::temp_dir();
    let src_path = dir.join(format!("hli_prov_{}.c", std::process::id()));
    let out_path = dir.join(format!("hli_prov_{}.jsonl", std::process::id()));
    std::fs::write(&src_path, FIG4_KEEP).unwrap();
    let out = Command::new(env!("CARGO_BIN_EXE_hlicc"))
        .args([
            "build",
            src_path.to_str().unwrap(),
            "--cse",
            "--provenance-out",
            out_path.to_str().unwrap(),
        ])
        .output()
        .expect("hlicc runs");
    assert!(
        out.status.success(),
        "hlicc failed: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let jsonl = std::fs::read_to_string(&out_path).unwrap();
    // First line is the schema header record; decision records follow.
    assert!(
        jsonl.lines().next().unwrap_or("").contains("\"schema_version\""),
        "provenance file must lead with a schema header: {jsonl}"
    );
    let records: Vec<DecisionRecord> = jsonl
        .lines()
        .skip(1)
        .map(|l| DecisionRecord::parse_line(l).expect("hlicc emits parseable JSONL"))
        .collect();
    assert!(
        records
            .iter()
            .any(|r| r.pass == "cse.call" && r.verdict.is_applied() && !r.hli_queries.is_empty()),
        "Figure-4 keep decision missing from {records:?}"
    );
    assert!(records.iter().any(|r| r.pass == "maintain.delete_item"));
    let _ = std::fs::remove_file(&src_path);
    let _ = std::fs::remove_file(&out_path);
    let _ = std::fs::remove_file(dir.join(format!("hli_prov_{}.hli", std::process::id())));
}

#[test]
fn obsdiff_gates_on_counter_regressions() {
    let dir = std::env::temp_dir();
    let base = dir.join(format!("hli_obsdiff_base_{}.json", std::process::id()));
    let same = dir.join(format!("hli_obsdiff_same_{}.json", std::process::id()));
    let worse = dir.join(format!("hli_obsdiff_worse_{}.json", std::process::id()));
    let snapshot = |cse: u64| {
        format!(
            "{{\n  \"schema_version\": {},\n  \"counters\": {{\n    \
             \"backend.cse.loads_eliminated\": {cse},\n    \
             \"provenance.cse.call.applied\": 1\n  }},\n  \"gauges\": {{}},\n  \
             \"histograms\": {{}}\n}}\n",
            hli_obs::SCHEMA_VERSION
        )
    };
    std::fs::write(&base, snapshot(12)).unwrap();
    // `current` may be a whole transcript; the table text before the JSON
    // block must be skipped.
    std::fs::write(&same, format!("Table 2. something\n\n{}", snapshot(12))).unwrap();
    std::fs::write(&worse, snapshot(9)).unwrap();

    let run = |args: &[&str]| {
        Command::new(env!("CARGO_BIN_EXE_obsdiff"))
            .args(args)
            .output()
            .expect("obsdiff runs")
    };
    let ok = run(&[base.to_str().unwrap(), same.to_str().unwrap()]);
    assert!(ok.status.success(), "identical snapshots must pass: {ok:?}");

    let bad = run(&[base.to_str().unwrap(), worse.to_str().unwrap()]);
    assert_eq!(bad.status.code(), Some(1), "regression must exit 1: {bad:?}");
    let text = String::from_utf8_lossy(&bad.stdout).to_string();
    assert!(
        text.contains("backend.cse.loads_eliminated") && text.contains("REGRESSION"),
        "{text}"
    );

    let tolerated = run(&[
        base.to_str().unwrap(),
        worse.to_str().unwrap(),
        "--tol",
        "50",
    ]);
    assert!(tolerated.status.success(), "within tolerance must pass: {tolerated:?}");

    let usage = run(&[base.to_str().unwrap()]);
    assert_eq!(usage.status.code(), Some(2), "bad usage must exit 2");

    for p in [&base, &same, &worse] {
        let _ = std::fs::remove_file(p);
    }
}
