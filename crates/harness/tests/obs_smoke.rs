//! End-to-end smoke test for the observability surface: drive the real
//! `hlicc` binary with `--stats json --trace-out` and check that every
//! pipeline layer shows up in the emitted JSON.

use hli_obs::json::{parse, Json};
use std::process::Command;

const SAMPLE: &str = "int g; int a[8];\n\
     int addg(int v) { return v + g; }\n\
     int main() {\n\
       int i; int s;\n\
       s = 0;\n\
       for (i = 0; i < 8; i++) a[i] = i * 2;\n\
       for (i = 0; i < 8; i++) s += addg(a[i]);\n\
       g = s;\n\
       return s & 255;\n\
     }";

fn tmp_path(name: &str) -> std::path::PathBuf {
    let mut p = std::env::temp_dir();
    p.push(format!("hli_obs_smoke_{}_{name}", std::process::id()));
    p
}

/// Everything after the first `{`-only line is the stats JSON (the normal
/// compiler output comes first and never starts a line with a brace).
fn stats_json(stdout: &str) -> Json {
    let start = stdout
        .lines()
        .scan(0usize, |off, l| {
            let here = *off;
            *off += l.len() + 1;
            Some((here, l))
        })
        .find(|(_, l)| *l == "{")
        .map(|(off, _)| off)
        .expect("stats JSON block in stdout");
    parse(&stdout[start..]).expect("stats output parses as JSON")
}

#[test]
fn hlicc_build_emits_stats_and_trace() {
    let src_path = tmp_path("sample.c");
    let trace_path = tmp_path("trace.json");
    std::fs::write(&src_path, SAMPLE).unwrap();

    let out = Command::new(env!("CARGO_BIN_EXE_hlicc"))
        .args([
            "build",
            src_path.to_str().unwrap(),
            "--stats",
            "json",
            "--trace-out",
            trace_path.to_str().unwrap(),
        ])
        .output()
        .expect("hlicc runs");
    assert!(
        out.status.success(),
        "hlicc failed: {}",
        String::from_utf8_lossy(&out.stderr)
    );

    // Metrics: every instrumented layer reported something.
    let stats = stats_json(&String::from_utf8(out.stdout).unwrap());
    let counters = match stats.get("counters") {
        Some(Json::Obj(kv)) => kv.clone(),
        other => panic!("no counters object: {other:?}"),
    };
    let prefix_sum = |prefix: &str| -> f64 {
        counters
            .iter()
            .filter(|(k, _)| k.starts_with(prefix))
            .filter_map(|(_, v)| v.as_num())
            .sum()
    };
    for layer in ["frontend.", "backend.", "hli.query.", "machine."] {
        assert!(prefix_sum(layer) > 0.0, "no nonzero {layer}* counter in {counters:?}");
    }

    // Trace: Chrome trace_event JSON with complete ("X") events.
    let trace =
        parse(&std::fs::read_to_string(&trace_path).unwrap()).expect("trace file parses as JSON");
    let events = trace.get("traceEvents").and_then(|e| e.as_arr()).expect("traceEvents array");
    assert!(!events.is_empty(), "trace has no events");
    for ev in events {
        assert!(ev.get("name").and_then(|v| v.as_str()).is_some());
        assert_eq!(ev.get("ph").and_then(|v| v.as_str()), Some("X"));
        assert!(ev.get("ts").and_then(|v| v.as_num()).is_some());
        assert!(ev.get("dur").and_then(|v| v.as_num()).is_some());
    }
    let names: Vec<&str> =
        events.iter().filter_map(|e| e.get("name").and_then(|v| v.as_str())).collect();
    assert!(names.iter().any(|n| n.starts_with("hlicc.front")), "{names:?}");
    assert!(names.iter().any(|n| n.starts_with("hlicc.back")), "{names:?}");

    let _ = std::fs::remove_file(&src_path);
    let _ = std::fs::remove_file(&trace_path);
    let _ = std::fs::remove_file(tmp_path("sample.hli"));
}

#[test]
fn plain_run_output_has_no_stats_block() {
    let src_path = tmp_path("plain.c");
    std::fs::write(&src_path, SAMPLE).unwrap();
    let out = Command::new(env!("CARGO_BIN_EXE_hlicc"))
        .args(["build", src_path.to_str().unwrap()])
        .output()
        .expect("hlicc runs");
    assert!(out.status.success());
    let stdout = String::from_utf8(out.stdout).unwrap();
    assert!(
        !stdout.lines().any(|l| l == "{"),
        "plain runs must not print stats: {stdout}"
    );
    let _ = std::fs::remove_file(&src_path);
    let _ = std::fs::remove_file(tmp_path("plain.hli"));
}
