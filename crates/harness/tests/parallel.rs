//! The parallel-driver determinism contract, pinned end to end: running
//! the suite on 1 worker and on 8 workers must produce **byte-identical**
//! `--stats json` metrics and `--provenance-out` JSONL.
//!
//! Both phases live in one `#[test]` on purpose: the provenance phase
//! installs thread-scoped sinks and id sources, and keeping the whole
//! scenario in a single test body keeps it self-contained no matter how
//! the test harness schedules other tests on sibling threads.

use hli_backend::ddg::DepMode;
use hli_backend::driver::{schedule_program_passes, PassSpec};
use hli_backend::lower::lower_program;
use hli_core::image::EntryRef;
use hli_harness::attr::rollup;
use hli_harness::{run_suite_jobs, run_suite_jobs_on, BenchReport, ImportConfig};
use hli_machine::MachineBackend;
use hli_obs::{
    metrics, provenance, trace, DecisionRecord, MetricsRegistry, MetricsSnapshot, ProvenanceSink,
    Tracer,
};
use hli_suite::Scale;
use std::sync::atomic::AtomicU64;
use std::sync::Arc;

/// Run the tiny suite at `jobs` under fresh scoped observability state,
/// returning the metrics snapshot and provenance-JSONL a binary would
/// emit (`snapshot.to_json()` is the `--stats json` output).
fn suite_obs_at(jobs: usize, cfg: ImportConfig) -> (MetricsSnapshot, String) {
    let reg = Arc::new(MetricsRegistry::new());
    let sink = Arc::new(ProvenanceSink::new());
    let ids = Arc::new(AtomicU64::new(1));
    let reports = {
        let _m = metrics::scoped(reg.clone());
        let _s = provenance::scoped(sink.clone());
        let _i = provenance::scoped_ids(ids);
        run_suite_jobs(Scale::tiny(), cfg, jobs)
    };
    for r in reports {
        assert!(r.expect("benchmark must compile").validated);
    }
    (reg.snapshot(), provenance::to_jsonl(&sink.drain()))
}

/// Compile a four-function program whose `f2` unit carries an injected
/// verifier violation, at `jobs` workers, returning stats JSON and
/// provenance JSONL.
fn quarantined_obs_at(jobs: usize) -> (String, String) {
    let src = "int a[64]; int b[64]; int g;\n\
        void f1(int n) { int i; for (i = 0; i < n; i++) a[i] = b[i] + g; }\n\
        void f2(int n) { int i; for (i = 0; i < n; i++) b[i] = a[i] * 2; }\n\
        void f3(int n) { int i; for (i = 0; i < n; i++) g += a[i]; }\n\
        int main() { f1(32); f2(32); f3(32); return g; }";
    let (p, s) = hli_lang::compile_to_ast(src).unwrap();
    let mut hli = hli_frontend::generate_hli(&p, &s);
    let bad = hli.entry_mut("f2").unwrap();
    let (c0, c1) = (bad.regions[0].equiv_classes[0].id, bad.regions[0].equiv_classes[1].id);
    bad.regions[0].lcdd_table.push(hli_core::LcddEntry {
        src: c0,
        dst: c1,
        kind: hli_core::DepKind::Maybe,
        distance: hli_core::Distance::Unknown,
    });
    let prog = lower_program(&p, &s);
    let reg = Arc::new(MetricsRegistry::new());
    let sink = Arc::new(ProvenanceSink::new());
    sink.set_enabled(true);
    let ids = Arc::new(AtomicU64::new(1));
    {
        let _m = metrics::scoped(reg.clone());
        let _s = provenance::scoped(sink.clone());
        let _i = provenance::scoped_ids(ids);
        let passes = [
            PassSpec { mode: DepMode::GccOnly, caches: None },
            PassSpec { mode: DepMode::Combined, caches: None },
        ];
        schedule_program_passes(
            &prog,
            &|n| hli.entry(n).map(EntryRef::Owned),
            &passes,
            hli_machine::backend_by_name("r4600").unwrap(),
            jobs,
        );
    }
    (reg.snapshot().to_json(), provenance::to_jsonl(&sink.drain()))
}

#[test]
fn quarantine_counters_and_provenance_are_jobs_invariant() {
    let (seq_json, seq_prov) = quarantined_obs_at(1);
    let (par_json, par_prov) = quarantined_obs_at(8);
    assert!(
        seq_json.contains("\"backend.quarantine.units\": 1"),
        "the injected-invalid unit must be quarantined exactly once: {seq_json}"
    );
    assert!(
        seq_prov.contains("quarantine.unit") && seq_prov.contains("\"function\": \"f2\""),
        "quarantine must leave a provenance record naming the unit: {seq_prov}"
    );
    assert_eq!(
        seq_json, par_json,
        "quarantine stats diverge between --jobs 1 and --jobs 8"
    );
    assert_eq!(
        seq_prov, par_prov,
        "quarantine provenance diverges between --jobs 1 and --jobs 8"
    );
}

#[test]
fn jobs_one_and_jobs_eight_are_byte_identical() {
    for cfg in [
        ImportConfig { lazy: false, zero_copy: false, shared_cache: true },
        ImportConfig { lazy: true, zero_copy: false, shared_cache: true },
        ImportConfig { lazy: false, zero_copy: true, shared_cache: true },
    ] {
        let (seq_snap, seq_prov) = suite_obs_at(1, cfg);
        let (par_snap, par_prov) = suite_obs_at(8, cfg);
        let (seq_json, par_json) = (seq_snap.to_json(), par_snap.to_json());
        assert!(
            seq_json.contains("backend.ddg.total_tests"),
            "snapshot must carry the pipeline's counters"
        );
        assert_eq!(
            seq_json, par_json,
            "--stats json diverges between --jobs 1 and --jobs 8 (lazy={}, zero_copy={})",
            cfg.lazy, cfg.zero_copy
        );
        assert!(
            !seq_prov.is_empty(),
            "an enabled sink must collect scheduling decisions"
        );
        assert_eq!(
            seq_prov, par_prov,
            "--provenance-out diverges between --jobs 1 and --jobs 8 (lazy={}, zero_copy={})",
            cfg.lazy, cfg.zero_copy
        );
    }
}

/// The determinism contract holds per machine list too: the whole
/// pipeline against the w4 backend (its latency table drives the
/// scheduler AND it is the simulated target) produces byte-identical
/// `--stats json` and provenance JSONL at `--jobs 1` and `--jobs 8`.
#[test]
fn w4_stats_and_provenance_are_jobs_invariant() {
    let machines: Vec<&'static dyn MachineBackend> =
        vec![hli_machine::backend_by_name("w4").unwrap()];
    let run = |jobs: usize| -> (String, String) {
        let reg = Arc::new(MetricsRegistry::new());
        let sink = Arc::new(ProvenanceSink::new());
        sink.set_enabled(true);
        let ids = Arc::new(AtomicU64::new(1));
        let reports = {
            let _m = metrics::scoped(reg.clone());
            let _s = provenance::scoped(sink.clone());
            let _i = provenance::scoped_ids(ids);
            run_suite_jobs_on(Scale::tiny(), ImportConfig::default(), jobs, &machines)
        };
        for r in reports {
            assert!(r.expect("benchmark must compile").validated, "w4 run must stay correct");
        }
        (reg.snapshot().to_json(), provenance::to_jsonl(&sink.drain()))
    };
    let (seq_json, seq_prov) = run(1);
    let (par_json, par_prov) = run(8);
    assert!(
        seq_json.contains("machine.w4.cycles"),
        "w4 run must meter its own counters: {seq_json}"
    );
    assert!(
        !seq_json.contains("attr.total.r4600") && !seq_json.contains("attr.total.r10000"),
        "a w4-only run must not attribute cycles to unselected machines"
    );
    assert_eq!(
        seq_json, par_json,
        "w4 --stats json diverges between --jobs 1 and --jobs 8"
    );
    assert!(!seq_prov.is_empty(), "w4 run must record scheduling decisions");
    assert_eq!(
        seq_prov, par_prov,
        "w4 provenance diverges between --jobs 1 and --jobs 8"
    );
}

/// Counters of the layers whose answers must not depend on the import
/// format. Import-layer metering (`hli.serialize.*`, `hli.deserialize.*`,
/// `hli.reader.*`, `hli.image.*`, `hli.cache.*`) is excluded: the three
/// formats meter different open/decode work *by design*, and that
/// difference is exactly what importbench's byte checks pin.
fn semantic_counters(snap: &MetricsSnapshot) -> Vec<(String, u64)> {
    const PREFIXES: [&str; 5] = ["hli.query.", "backend.", "attr.", "machine.", "frontend."];
    snap.counters
        .iter()
        .filter(|(k, _)| PREFIXES.iter().any(|p| k.starts_with(p)))
        .map(|(k, v)| (k.clone(), *v))
        .collect()
}

/// The zero-copy acceptance gate: serving queries from borrowed image
/// views instead of owned decoded tables changes *cost only, never
/// answers*. Every query/backend/attribution/machine/front-end counter
/// and the full provenance JSONL are byte-identical between the
/// eager-owned and zero-copy suite runs, at 1 and at 8 workers.
#[test]
fn zero_copy_answers_are_byte_identical_to_owned() {
    let owned_cfg = ImportConfig::default();
    let zcopy_cfg = ImportConfig { lazy: false, zero_copy: true, shared_cache: true };
    for jobs in [1usize, 8] {
        let (owned_snap, owned_prov) = suite_obs_at(jobs, owned_cfg);
        let (zcopy_snap, zcopy_prov) = suite_obs_at(jobs, zcopy_cfg);
        assert!(
            zcopy_snap.counter("hli.image.units_validated") > 0,
            "zero-copy run must actually validate views"
        );
        assert_eq!(
            zcopy_snap.counter("hli.reader.units_decoded"),
            0,
            "zero-copy run must not decode owned units"
        );
        assert_eq!(
            semantic_counters(&owned_snap),
            semantic_counters(&zcopy_snap),
            "query/backend counters diverge between owned and zero-copy at --jobs {jobs}"
        );
        assert!(!owned_prov.is_empty(), "provenance must record scheduling decisions");
        assert_eq!(
            owned_prov, zcopy_prov,
            "provenance JSONL diverges between owned and zero-copy at --jobs {jobs}"
        );
    }
}

/// Run the tiny suite at `jobs` with a scoped **logical-clock** tracer
/// installed, returning the Chrome JSON a `--trace-out` run would write.
fn trace_obs_at(jobs: usize) -> String {
    let reg = Arc::new(MetricsRegistry::new());
    let tracer = Arc::new(Tracer::logical());
    {
        let _m = metrics::scoped(reg.clone());
        let _t = trace::scoped(tracer.clone());
        for r in run_suite_jobs(Scale::tiny(), ImportConfig::default(), jobs) {
            assert!(r.expect("benchmark must compile").validated);
        }
    }
    tracer.to_chrome_json()
}

#[test]
fn chrome_trace_is_jobs_invariant_under_logical_clock() {
    let seq = trace_obs_at(1);
    let par = trace_obs_at(8);
    assert!(
        seq.contains("\"traceEvents\"") && seq.contains("bench."),
        "a traced suite run must record per-benchmark spans: {seq}"
    );
    assert_eq!(
        seq, par,
        "--trace-out Chrome JSON diverges between --jobs 1 and --jobs 8: shard \
         span absorption must renumber logical ticks in commit order"
    );
}

/// Run the tiny suite at `jobs` and return the raw attribution inputs an
/// `obsreport` invocation would ingest: the counter snapshot, the drained
/// decision records, and the per-benchmark reports.
fn attr_obs_at(jobs: usize) -> (MetricsSnapshot, Vec<DecisionRecord>, Vec<BenchReport>) {
    let reg = Arc::new(MetricsRegistry::new());
    let sink = Arc::new(ProvenanceSink::new());
    sink.set_enabled(true);
    let ids = Arc::new(AtomicU64::new(1));
    let reports = {
        let _m = metrics::scoped(reg.clone());
        let _s = provenance::scoped(sink.clone());
        let _i = provenance::scoped_ids(ids);
        run_suite_jobs(Scale::tiny(), ImportConfig::default(), jobs)
    };
    let reports: Vec<BenchReport> =
        reports.into_iter().map(|r| r.expect("benchmark must compile")).collect();
    (reg.snapshot(), sink.drain(), reports)
}

#[test]
fn obsreport_rollup_is_jobs_invariant_and_reconciles() {
    let (snap1, recs1, reports) = attr_obs_at(1);
    let (snap8, recs8, _) = attr_obs_at(8);
    let r1 = rollup(&snap1.counters, &recs1, 20);
    let r8 = rollup(&snap8.counters, &recs8, 20);

    // The acceptance criterion of the attribution layer: the rollup an
    // obsreport run produces is byte-identical across --jobs settings.
    assert_eq!(
        r1.to_json(),
        r8.to_json(),
        "obsreport rollup diverges between --jobs 1 and --jobs 8"
    );
    assert!(r1.totals.decisions > 0, "suite run must record decisions");
    assert!(r1.totals.spans > 0, "scheduling decisions must carry causal spans");

    // Reconciliation: the per-table measured-benefit apportionment must
    // sum back to the aggregate measured delta exactly, and that aggregate
    // must equal the Table-2 cycle delta of the same run.
    let by_table_r4600: u64 = r1.per_table.values().map(|t| t.measured_r4600).sum();
    let by_table_r10000: u64 = r1.per_table.values().map(|t| t.measured_r10000).sum();
    assert_eq!(by_table_r4600, r1.totals.measured_r4600);
    assert_eq!(by_table_r10000, r1.totals.measured_r10000);

    let on = |m: &str, pick: fn(hli_harness::MachineCycles) -> u64| -> u64 {
        reports.iter().filter_map(|r| r.cycles_on(m)).map(pick).sum()
    };
    let gcc_r4600 = on("r4600", |c| c.gcc);
    let hli_r4600 = on("r4600", |c| c.hli);
    let gcc_r10000 = on("r10000", |c| c.gcc);
    let hli_r10000 = on("r10000", |c| c.hli);
    assert_eq!(
        r1.totals.measured_r4600,
        gcc_r4600.saturating_sub(hli_r4600),
        "attr.total r4600 delta must reconcile with the Table-2 aggregate"
    );
    assert_eq!(
        r1.totals.measured_r10000,
        gcc_r10000.saturating_sub(hli_r10000),
        "attr.total r10000 delta must reconcile with the Table-2 aggregate"
    );
}
