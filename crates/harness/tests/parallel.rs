//! The parallel-driver determinism contract, pinned end to end: running
//! the suite on 1 worker and on 8 workers must produce **byte-identical**
//! `--stats json` metrics and `--provenance-out` JSONL.
//!
//! Both phases live in one `#[test]` on purpose: the provenance phase
//! installs thread-scoped sinks and id sources, and keeping the whole
//! scenario in a single test body keeps it self-contained no matter how
//! the test harness schedules other tests on sibling threads.

use hli_harness::{run_suite_jobs, ImportConfig};
use hli_obs::{metrics, provenance, MetricsRegistry, ProvenanceSink};
use hli_suite::Scale;
use std::sync::atomic::AtomicU64;
use std::sync::Arc;

/// Run the tiny suite at `jobs` under fresh scoped observability state,
/// returning the stats-JSON and provenance-JSONL a binary would emit.
fn suite_obs_at(jobs: usize, cfg: ImportConfig) -> (String, String) {
    let reg = Arc::new(MetricsRegistry::new());
    let sink = Arc::new(ProvenanceSink::new());
    let ids = Arc::new(AtomicU64::new(1));
    let reports = {
        let _m = metrics::scoped(reg.clone());
        let _s = provenance::scoped(sink.clone());
        let _i = provenance::scoped_ids(ids);
        run_suite_jobs(Scale::tiny(), cfg, jobs)
    };
    for r in reports {
        assert!(r.expect("benchmark must compile").validated);
    }
    (reg.snapshot().to_json(), provenance::to_jsonl(&sink.drain()))
}

#[test]
fn jobs_one_and_jobs_eight_are_byte_identical() {
    for cfg in [
        ImportConfig { lazy: false, shared_cache: true },
        ImportConfig { lazy: true, shared_cache: true },
    ] {
        let (seq_json, seq_prov) = suite_obs_at(1, cfg);
        let (par_json, par_prov) = suite_obs_at(8, cfg);
        assert!(
            seq_json.contains("backend.ddg.total_tests"),
            "snapshot must carry the pipeline's counters"
        );
        assert_eq!(
            seq_json, par_json,
            "--stats json diverges between --jobs 1 and --jobs 8 (lazy={})",
            cfg.lazy
        );
        assert!(
            !seq_prov.is_empty(),
            "an enabled sink must collect scheduling decisions"
        );
        assert_eq!(
            seq_prov, par_prov,
            "--provenance-out diverges between --jobs 1 and --jobs 8 (lazy={})",
            cfg.lazy
        );
    }
}
