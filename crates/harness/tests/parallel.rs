//! The parallel-driver determinism contract, pinned end to end: running
//! the suite on 1 worker and on 8 workers must produce **byte-identical**
//! `--stats json` metrics and `--provenance-out` JSONL.
//!
//! Both phases live in one `#[test]` on purpose: the provenance phase
//! installs thread-scoped sinks and id sources, and keeping the whole
//! scenario in a single test body keeps it self-contained no matter how
//! the test harness schedules other tests on sibling threads.

use hli_backend::ddg::DepMode;
use hli_backend::driver::{schedule_program_passes, PassSpec};
use hli_backend::lower::lower_program;
use hli_backend::sched::LatencyModel;
use hli_harness::{run_suite_jobs, ImportConfig};
use hli_obs::{metrics, provenance, MetricsRegistry, ProvenanceSink};
use hli_suite::Scale;
use std::sync::atomic::AtomicU64;
use std::sync::Arc;

/// Run the tiny suite at `jobs` under fresh scoped observability state,
/// returning the stats-JSON and provenance-JSONL a binary would emit.
fn suite_obs_at(jobs: usize, cfg: ImportConfig) -> (String, String) {
    let reg = Arc::new(MetricsRegistry::new());
    let sink = Arc::new(ProvenanceSink::new());
    let ids = Arc::new(AtomicU64::new(1));
    let reports = {
        let _m = metrics::scoped(reg.clone());
        let _s = provenance::scoped(sink.clone());
        let _i = provenance::scoped_ids(ids);
        run_suite_jobs(Scale::tiny(), cfg, jobs)
    };
    for r in reports {
        assert!(r.expect("benchmark must compile").validated);
    }
    (reg.snapshot().to_json(), provenance::to_jsonl(&sink.drain()))
}

/// Compile a four-function program whose `f2` unit carries an injected
/// verifier violation, at `jobs` workers, returning stats JSON and
/// provenance JSONL.
fn quarantined_obs_at(jobs: usize) -> (String, String) {
    let src = "int a[64]; int b[64]; int g;\n\
        void f1(int n) { int i; for (i = 0; i < n; i++) a[i] = b[i] + g; }\n\
        void f2(int n) { int i; for (i = 0; i < n; i++) b[i] = a[i] * 2; }\n\
        void f3(int n) { int i; for (i = 0; i < n; i++) g += a[i]; }\n\
        int main() { f1(32); f2(32); f3(32); return g; }";
    let (p, s) = hli_lang::compile_to_ast(src).unwrap();
    let mut hli = hli_frontend::generate_hli(&p, &s);
    let bad = hli.entry_mut("f2").unwrap();
    let (c0, c1) = (bad.regions[0].equiv_classes[0].id, bad.regions[0].equiv_classes[1].id);
    bad.regions[0].lcdd_table.push(hli_core::LcddEntry {
        src: c0,
        dst: c1,
        kind: hli_core::DepKind::Maybe,
        distance: hli_core::Distance::Unknown,
    });
    let prog = lower_program(&p, &s);
    let reg = Arc::new(MetricsRegistry::new());
    let sink = Arc::new(ProvenanceSink::new());
    sink.set_enabled(true);
    let ids = Arc::new(AtomicU64::new(1));
    {
        let _m = metrics::scoped(reg.clone());
        let _s = provenance::scoped(sink.clone());
        let _i = provenance::scoped_ids(ids);
        let passes = [
            PassSpec { mode: DepMode::GccOnly, caches: None },
            PassSpec { mode: DepMode::Combined, caches: None },
        ];
        schedule_program_passes(&prog, &|n| hli.entry(n), &passes, &LatencyModel::default(), jobs);
    }
    (reg.snapshot().to_json(), provenance::to_jsonl(&sink.drain()))
}

#[test]
fn quarantine_counters_and_provenance_are_jobs_invariant() {
    let (seq_json, seq_prov) = quarantined_obs_at(1);
    let (par_json, par_prov) = quarantined_obs_at(8);
    assert!(
        seq_json.contains("\"backend.quarantine.units\": 1"),
        "the injected-invalid unit must be quarantined exactly once: {seq_json}"
    );
    assert!(
        seq_prov.contains("quarantine.unit") && seq_prov.contains("\"function\": \"f2\""),
        "quarantine must leave a provenance record naming the unit: {seq_prov}"
    );
    assert_eq!(
        seq_json, par_json,
        "quarantine stats diverge between --jobs 1 and --jobs 8"
    );
    assert_eq!(
        seq_prov, par_prov,
        "quarantine provenance diverges between --jobs 1 and --jobs 8"
    );
}

#[test]
fn jobs_one_and_jobs_eight_are_byte_identical() {
    for cfg in [
        ImportConfig { lazy: false, shared_cache: true },
        ImportConfig { lazy: true, shared_cache: true },
    ] {
        let (seq_json, seq_prov) = suite_obs_at(1, cfg);
        let (par_json, par_prov) = suite_obs_at(8, cfg);
        assert!(
            seq_json.contains("backend.ddg.total_tests"),
            "snapshot must carry the pipeline's counters"
        );
        assert_eq!(
            seq_json, par_json,
            "--stats json diverges between --jobs 1 and --jobs 8 (lazy={})",
            cfg.lazy
        );
        assert!(
            !seq_prov.is_empty(),
            "an enabled sink must collect scheduling decisions"
        );
        assert_eq!(
            seq_prov, par_prov,
            "--provenance-out diverges between --jobs 1 and --jobs 8 (lazy={})",
            cfg.lazy
        );
    }
}
