//! Shared report aggregation — the one place suite-level totals are
//! computed. `table1`, `table2`, `ablation` and the library tests all go
//! through these helpers instead of hand-rolling their own loops over
//! [`BenchReport`]s.

use crate::cli::ObsArgs;
use crate::{default_machines, run_suite_jobs_on, BenchReport, ImportConfig};
use hli_backend::ddg::QueryStats;
use hli_machine::{backend_by_name, MachineBackend};
use hli_obs::MetricsSnapshot;
use hli_suite::Scale;

/// Everything the suite-level binaries parse from their command line.
pub struct BenchArgs {
    pub scale: Scale,
    pub obs: ObsArgs,
    pub cfg: ImportConfig,
    /// Pool workers for [`run_suite_jobs_on`] (`0` = one per CPU).
    pub jobs: usize,
    /// Machine models to simulate, in order; the first also supplies the
    /// scheduler's latency table.
    pub machines: Vec<&'static dyn MachineBackend>,
}

impl std::fmt::Debug for BenchArgs {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("BenchArgs")
            .field("scale", &(self.scale.n, self.scale.iters))
            .field("cfg", &self.cfg)
            .field("jobs", &self.jobs)
            .field("machines", &self.machines.iter().map(|m| m.name()).collect::<Vec<_>>())
            .finish_non_exhaustive()
    }
}

/// Parse the command line shared by every suite-level binary —
/// `[n iters]` plus the observability flags, `--lazy-import`,
/// `--zero-copy`, `--jobs N` and `--machine NAME[,NAME...]` — exiting
/// with a uniform usage message on a malformed flag or a conflicting
/// flag pair.
/// `table1`, `table2` and `ablation` call this instead of keeping their
/// own copies of the loop.
pub fn bench_args(bin: &str) -> BenchArgs {
    bench_args_from(bin, std::env::args().skip(1).collect()).unwrap_or_else(|e| {
        eprintln!("{bin}: {e}");
        eprintln!(
            "usage: {bin} [n iters] [--lazy-import] [--zero-copy] [--jobs N] \
             [--machine NAME[,NAME...]] [--stats text|json] [--trace-out t.json] \
             [--provenance-out p.jsonl]"
        );
        std::process::exit(1);
    })
}

/// Testable core of [`bench_args`]: same parse over an explicit vector,
/// returning the error instead of exiting.
pub fn bench_args_from(bin: &str, mut args: Vec<String>) -> Result<BenchArgs, String> {
    let _ = bin;
    let obs = ObsArgs::extract(&mut args)?;
    let jobs = extract_jobs(&mut args)?;
    let machines = extract_machines(&mut args)?;
    let mut cfg = ImportConfig::default();
    args.retain(|a| {
        let lazy = a == "--lazy-import";
        let zero = a == "--zero-copy";
        if lazy {
            cfg.lazy = true;
        }
        if zero {
            cfg.zero_copy = true;
        }
        !(lazy || zero)
    });
    if cfg.lazy && cfg.zero_copy {
        return Err(
            "--zero-copy and --lazy-import are conflicting import strategies; pick one".into(),
        );
    }
    let n = args.first().and_then(|a| a.parse().ok()).unwrap_or(64);
    let iters = args.get(1).and_then(|a| a.parse().ok()).unwrap_or(12);
    Ok(BenchArgs { scale: Scale { n, iters }, obs, cfg, jobs, machines })
}

/// Strip `--machine NAME[,NAME...]` from `args` and resolve every name
/// through the backend registry; absent flag means the default pair
/// (r4600 first, so it drives the scheduler).
pub fn extract_machines(
    args: &mut Vec<String>,
) -> Result<Vec<&'static dyn MachineBackend>, String> {
    let Some(i) = args.iter().position(|a| a == "--machine") else {
        return Ok(default_machines());
    };
    if i + 1 >= args.len() {
        return Err("--machine needs a target name (r4600, r10000 or w4)".into());
    }
    let spec = args[i + 1].clone();
    args.drain(i..=i + 1);
    if args.iter().any(|a| a == "--machine") {
        return Err("--machine given twice; pass one comma-separated list".into());
    }
    let mut machines = Vec::new();
    for name in spec.split(',') {
        let m = backend_by_name(name).ok_or_else(|| {
            format!(
                "--machine: unknown target `{name}` (known: {})",
                hli_machine::backend_names().join(", ")
            )
        })?;
        if machines.iter().any(|p: &&dyn MachineBackend| p.name() == m.name()) {
            return Err(format!("--machine: target `{name}` listed twice"));
        }
        machines.push(m);
    }
    Ok(machines)
}

/// Strip `--jobs N` from `args` and return the parsed count (`0` when the
/// flag is absent, meaning "all CPUs").
pub fn extract_jobs(args: &mut Vec<String>) -> Result<usize, String> {
    let Some(i) = args.iter().position(|a| a == "--jobs") else {
        return Ok(0);
    };
    if i + 1 >= args.len() {
        return Err("--jobs needs a worker count".into());
    }
    let jobs = args[i + 1]
        .parse::<usize>()
        .map_err(|_| format!("--jobs: `{}` is not a worker count", args[i + 1]))?;
    args.drain(i..=i + 1);
    Ok(jobs)
}

/// Run the whole suite and collect the reports, failing on the first
/// benchmark error (what the table binaries did individually before).
pub fn collect_suite(scale: Scale) -> Result<Vec<BenchReport>, String> {
    collect_suite_jobs(scale, ImportConfig::default(), 0)
}

/// [`collect_suite`] with an explicit import strategy.
pub fn collect_suite_cfg(scale: Scale, cfg: ImportConfig) -> Result<Vec<BenchReport>, String> {
    collect_suite_jobs(scale, cfg, 0)
}

/// [`collect_suite_cfg`] on an explicit pool-worker count.
pub fn collect_suite_jobs(
    scale: Scale,
    cfg: ImportConfig,
    jobs: usize,
) -> Result<Vec<BenchReport>, String> {
    collect_suite_jobs_on(scale, cfg, jobs, &default_machines())
}

/// [`collect_suite_jobs`] on an explicit machine list.
pub fn collect_suite_jobs_on(
    scale: Scale,
    cfg: ImportConfig,
    jobs: usize,
    machines: &[&'static dyn MachineBackend],
) -> Result<Vec<BenchReport>, String> {
    let mut reports = Vec::with_capacity(10);
    for r in run_suite_jobs_on(scale, cfg, jobs, machines) {
        reports.push(r?);
    }
    Ok(reports)
}

/// Sum the Table-2 scheduling-pass query counters across reports.
pub fn total_query_stats(reports: &[BenchReport]) -> QueryStats {
    let mut total = QueryStats::default();
    for r in reports {
        total.add(&r.stats);
    }
    total
}

/// Merge every report's per-run metrics snapshot into one suite-wide view.
pub fn merged_metrics(reports: &[BenchReport]) -> MetricsSnapshot {
    let mut merged = MetricsSnapshot::default();
    for r in reports {
        merged.merge(&r.metrics);
    }
    merged
}

#[cfg(test)]
mod tests {
    use super::*;
    use hli_backend::ddg::DepMode;
    use hli_backend::sched::schedule_program;
    use std::sync::Arc;

    /// The `backend.ddg.*` counters are a faithful view of the `QueryStats`
    /// struct: one scheduling pass over a known kernel produces identical
    /// totals through both paths.
    #[test]
    fn registry_view_matches_query_stats_on_known_kernel() {
        let b = hli_suite::by_name("101.tomcatv", Scale::tiny()).unwrap();
        let (prog, sema) = hli_lang::compile_to_ast(&b.source).unwrap();
        let hli = hli_frontend::generate_hli(&prog, &sema);
        let rtl = hli_backend::lower::lower_program(&prog, &sema);
        let local = Arc::new(hli_obs::MetricsRegistry::new());
        let stats = {
            let _scope = hli_obs::metrics::scoped(local.clone());
            let (_, stats) = schedule_program(
                &rtl,
                &hli,
                DepMode::Combined,
                hli_machine::backend_by_name("r4600").unwrap(),
            );
            stats
        };
        assert!(stats.total_tests > 0);
        let view = QueryStats::from_registry(&local.snapshot());
        assert_eq!(view, stats, "registry view must mirror the local struct");
    }

    /// Each report's snapshot carries both scheduling passes (GCC-only and
    /// Combined), so the registry view over a report is the sum of the two
    /// passes — always at least the Combined-pass struct the table prints.
    #[test]
    fn per_report_metrics_cover_both_passes() {
        let b = hli_suite::by_name("wc", Scale::tiny()).unwrap();
        let r = crate::run_benchmark(&b).unwrap();
        let view = QueryStats::from_registry(&r.metrics);
        assert!(view.total_tests >= r.stats.total_tests);
        assert!(view.combined_yes >= r.stats.combined_yes);
        // Layers below the scheduler reported through the same snapshot.
        assert!(r.metrics.counter_prefix_sum("frontend.") > 0);
        assert!(r.metrics.counter_prefix_sum("machine.") > 0);
        assert!(r.metrics.counter_prefix_sum("hli.query.") > 0);
        assert!(r.metrics.counter("hli.serialize.bytes") as usize >= r.hli_bytes);
    }

    /// The tiny-suite Table-2 totals, pinned. The aggregation refactor (and
    /// any future one) must not move these numbers: they are what the
    /// `table2` binary prints and what EXPERIMENTS.md quotes.
    #[test]
    fn table2_totals_pinned() {
        let reports = collect_suite(Scale::tiny()).unwrap();
        let total = total_query_stats(&reports);
        assert_eq!(
            total,
            QueryStats {
                total_tests: 370,
                gcc_yes: 290,
                hli_yes: 86,
                combined_yes: 86,
                call_queries: 147,
            },
            "Table-2 totals moved; if intentional, update this pin and EXPERIMENTS.md"
        );
    }

    /// The shared binary argument parse: scale positionals survive, obs
    /// flags are stripped, defaults match what the binaries documented.
    #[test]
    fn bench_args_parse_scale_and_obs_flags() {
        let v = |a: &[&str]| a.iter().map(|s| s.to_string()).collect::<Vec<_>>();
        let a = bench_args_from("table2", v(&["12", "2", "--stats", "json"])).unwrap();
        assert_eq!((a.scale.n, a.scale.iters), (12, 2));
        assert_eq!(a.obs.stats, Some(crate::cli::StatsFormat::Json));
        assert!(!a.cfg.lazy);
        assert_eq!(a.jobs, 0, "no --jobs flag means all CPUs");
        let a = bench_args_from("table1", v(&[])).unwrap();
        assert_eq!((a.scale.n, a.scale.iters), (64, 12));
        assert!(a.obs.stats.is_none() && a.obs.trace_out.is_none());
        assert!(a.obs.provenance_out.is_none());
        assert_eq!(a.cfg, ImportConfig::default());
        assert_eq!(a.jobs, 0);
        let names: Vec<_> = a.machines.iter().map(|m| m.name()).collect();
        assert_eq!(names, vec!["r4600", "r10000"], "default machine pair, r4600 first");
        // `--lazy-import` and `--jobs` may appear anywhere among the
        // positionals.
        let a = bench_args_from("table2", v(&["12", "--lazy-import", "--jobs", "3", "2"])).unwrap();
        assert_eq!((a.scale.n, a.scale.iters), (12, 2));
        assert!(a.cfg.lazy && a.cfg.shared_cache && !a.cfg.zero_copy);
        assert_eq!(a.jobs, 3);
        let a = bench_args_from("table2", v(&["--zero-copy"])).unwrap();
        assert!(a.cfg.zero_copy && !a.cfg.lazy);
    }

    /// Satellite bugfix: `--zero-copy --lazy-import` used to silently take
    /// whichever the `ImportConfig` precedence preferred; now it is a hard
    /// parse error, in either flag order.
    #[test]
    fn bench_args_reject_conflicting_import_flags() {
        let v = |a: &[&str]| a.iter().map(|s| s.to_string()).collect::<Vec<_>>();
        for order in [
            &["--zero-copy", "--lazy-import"][..],
            &["--lazy-import", "12", "--zero-copy"][..],
        ] {
            let err = bench_args_from("table2", v(order)).unwrap_err();
            assert!(
                err.contains("--zero-copy") && err.contains("--lazy-import"),
                "error must name both flags: {err}"
            );
            assert!(err.contains("conflict"), "error must say they conflict: {err}");
        }
    }

    /// `--machine` selects and orders the simulated targets; unknown or
    /// duplicate names are parse errors that list the known targets.
    #[test]
    fn bench_args_parse_machine_list() {
        let v = |a: &[&str]| a.iter().map(|s| s.to_string()).collect::<Vec<_>>();
        let a = bench_args_from("table2", v(&["12", "2", "--machine", "w4"])).unwrap();
        assert_eq!((a.scale.n, a.scale.iters), (12, 2));
        let names: Vec<_> = a.machines.iter().map(|m| m.name()).collect();
        assert_eq!(names, vec!["w4"]);
        let a = bench_args_from("table2", v(&["--machine", "w4,r4600"])).unwrap();
        let names: Vec<_> = a.machines.iter().map(|m| m.name()).collect();
        assert_eq!(names, vec!["w4", "r4600"], "order preserved; w4 drives the scheduler");
        let err = bench_args_from("table2", v(&["--machine", "r8000"])).unwrap_err();
        assert!(
            err.contains("r8000") && err.contains("w4"),
            "lists known targets: {err}"
        );
        assert!(bench_args_from("table2", v(&["--machine"])).is_err());
        assert!(bench_args_from("table2", v(&["--machine", "w4,w4"])).is_err());
        assert!(bench_args_from("t", v(&["--machine", "w4", "--machine", "r4600"])).is_err());
    }

    #[test]
    fn extract_jobs_strips_flag_and_rejects_garbage() {
        let v = |a: &[&str]| a.iter().map(|s| s.to_string()).collect::<Vec<_>>();
        let mut args = v(&["8", "--jobs", "4", "2"]);
        assert_eq!(extract_jobs(&mut args), Ok(4));
        assert_eq!(args, v(&["8", "2"]));
        let mut bad = v(&["--jobs", "many"]);
        assert!(extract_jobs(&mut bad).is_err());
        let mut missing = v(&["--jobs"]);
        assert!(extract_jobs(&mut missing).is_err());
    }

    /// Suite-level aggregation helpers agree with a hand-rolled loop.
    #[test]
    fn aggregation_matches_manual_loop() {
        let reports = collect_suite(Scale::tiny()).unwrap();
        let total = total_query_stats(&reports);
        let manual: u64 = reports.iter().map(|r| r.stats.total_tests).sum();
        assert_eq!(total.total_tests, manual);
        let merged = merged_metrics(&reports);
        let manual_ddg: u64 =
            reports.iter().map(|r| r.metrics.counter("backend.ddg.total_tests")).sum();
        assert_eq!(merged.counter("backend.ddg.total_tests"), manual_ddg);
    }
}
