//! Shared report aggregation — the one place suite-level totals are
//! computed. `table1`, `table2`, `ablation` and the library tests all go
//! through these helpers instead of hand-rolling their own loops over
//! [`BenchReport`]s.

use crate::cli::ObsArgs;
use crate::{run_suite_jobs, BenchReport, ImportConfig};
use hli_backend::ddg::QueryStats;
use hli_obs::MetricsSnapshot;
use hli_suite::Scale;

/// Parse the command line shared by every suite-level binary —
/// `[n iters]` plus the observability flags, `--lazy-import`,
/// `--zero-copy` and `--jobs N` — exiting with a uniform usage message on
/// a malformed flag.
/// `table1`, `table2` and `ablation` call this instead of keeping their
/// own copies of the loop. The returned job count feeds
/// [`run_suite_jobs`]: `0` (the default) means one worker per CPU.
pub fn bench_args(bin: &str) -> (Scale, ObsArgs, ImportConfig, usize) {
    bench_args_from(bin, std::env::args().skip(1).collect())
}

/// Testable core of [`bench_args`]: same parse over an explicit vector.
pub fn bench_args_from(bin: &str, mut args: Vec<String>) -> (Scale, ObsArgs, ImportConfig, usize) {
    let usage = |e: String| -> ! {
        eprintln!("{bin}: {e}");
        eprintln!(
            "usage: {bin} [n iters] [--lazy-import] [--zero-copy] [--jobs N] \
             [--stats text|json] [--trace-out t.json] [--provenance-out p.jsonl]"
        );
        std::process::exit(1);
    };
    let obs = ObsArgs::extract(&mut args).unwrap_or_else(|e| usage(e));
    let jobs = extract_jobs(&mut args).unwrap_or_else(|e| usage(e));
    let mut cfg = ImportConfig::default();
    args.retain(|a| {
        let lazy = a == "--lazy-import";
        let zero = a == "--zero-copy";
        if lazy {
            cfg.lazy = true;
        }
        if zero {
            cfg.zero_copy = true;
        }
        !(lazy || zero)
    });
    let n = args.first().and_then(|a| a.parse().ok()).unwrap_or(64);
    let iters = args.get(1).and_then(|a| a.parse().ok()).unwrap_or(12);
    (Scale { n, iters }, obs, cfg, jobs)
}

/// Strip `--jobs N` from `args` and return the parsed count (`0` when the
/// flag is absent, meaning "all CPUs").
pub fn extract_jobs(args: &mut Vec<String>) -> Result<usize, String> {
    let Some(i) = args.iter().position(|a| a == "--jobs") else {
        return Ok(0);
    };
    if i + 1 >= args.len() {
        return Err("--jobs needs a worker count".into());
    }
    let jobs = args[i + 1]
        .parse::<usize>()
        .map_err(|_| format!("--jobs: `{}` is not a worker count", args[i + 1]))?;
    args.drain(i..=i + 1);
    Ok(jobs)
}

/// Run the whole suite and collect the reports, failing on the first
/// benchmark error (what the table binaries did individually before).
pub fn collect_suite(scale: Scale) -> Result<Vec<BenchReport>, String> {
    collect_suite_jobs(scale, ImportConfig::default(), 0)
}

/// [`collect_suite`] with an explicit import strategy.
pub fn collect_suite_cfg(scale: Scale, cfg: ImportConfig) -> Result<Vec<BenchReport>, String> {
    collect_suite_jobs(scale, cfg, 0)
}

/// [`collect_suite_cfg`] on an explicit pool-worker count.
pub fn collect_suite_jobs(
    scale: Scale,
    cfg: ImportConfig,
    jobs: usize,
) -> Result<Vec<BenchReport>, String> {
    let mut reports = Vec::with_capacity(10);
    for r in run_suite_jobs(scale, cfg, jobs) {
        reports.push(r?);
    }
    Ok(reports)
}

/// Sum the Table-2 scheduling-pass query counters across reports.
pub fn total_query_stats(reports: &[BenchReport]) -> QueryStats {
    let mut total = QueryStats::default();
    for r in reports {
        total.add(&r.stats);
    }
    total
}

/// Merge every report's per-run metrics snapshot into one suite-wide view.
pub fn merged_metrics(reports: &[BenchReport]) -> MetricsSnapshot {
    let mut merged = MetricsSnapshot::default();
    for r in reports {
        merged.merge(&r.metrics);
    }
    merged
}

#[cfg(test)]
mod tests {
    use super::*;
    use hli_backend::ddg::DepMode;
    use hli_backend::sched::{schedule_program, LatencyModel};
    use std::sync::Arc;

    /// The `backend.ddg.*` counters are a faithful view of the `QueryStats`
    /// struct: one scheduling pass over a known kernel produces identical
    /// totals through both paths.
    #[test]
    fn registry_view_matches_query_stats_on_known_kernel() {
        let b = hli_suite::by_name("101.tomcatv", Scale::tiny()).unwrap();
        let (prog, sema) = hli_lang::compile_to_ast(&b.source).unwrap();
        let hli = hli_frontend::generate_hli(&prog, &sema);
        let rtl = hli_backend::lower::lower_program(&prog, &sema);
        let local = Arc::new(hli_obs::MetricsRegistry::new());
        let stats = {
            let _scope = hli_obs::metrics::scoped(local.clone());
            let (_, stats) =
                schedule_program(&rtl, &hli, DepMode::Combined, &LatencyModel::default());
            stats
        };
        assert!(stats.total_tests > 0);
        let view = QueryStats::from_registry(&local.snapshot());
        assert_eq!(view, stats, "registry view must mirror the local struct");
    }

    /// Each report's snapshot carries both scheduling passes (GCC-only and
    /// Combined), so the registry view over a report is the sum of the two
    /// passes — always at least the Combined-pass struct the table prints.
    #[test]
    fn per_report_metrics_cover_both_passes() {
        let b = hli_suite::by_name("wc", Scale::tiny()).unwrap();
        let r = crate::run_benchmark(&b).unwrap();
        let view = QueryStats::from_registry(&r.metrics);
        assert!(view.total_tests >= r.stats.total_tests);
        assert!(view.combined_yes >= r.stats.combined_yes);
        // Layers below the scheduler reported through the same snapshot.
        assert!(r.metrics.counter_prefix_sum("frontend.") > 0);
        assert!(r.metrics.counter_prefix_sum("machine.") > 0);
        assert!(r.metrics.counter_prefix_sum("hli.query.") > 0);
        assert!(r.metrics.counter("hli.serialize.bytes") as usize >= r.hli_bytes);
    }

    /// The tiny-suite Table-2 totals, pinned. The aggregation refactor (and
    /// any future one) must not move these numbers: they are what the
    /// `table2` binary prints and what EXPERIMENTS.md quotes.
    #[test]
    fn table2_totals_pinned() {
        let reports = collect_suite(Scale::tiny()).unwrap();
        let total = total_query_stats(&reports);
        assert_eq!(
            total,
            QueryStats {
                total_tests: 370,
                gcc_yes: 290,
                hli_yes: 86,
                combined_yes: 86,
                call_queries: 147,
            },
            "Table-2 totals moved; if intentional, update this pin and EXPERIMENTS.md"
        );
    }

    /// The shared binary argument parse: scale positionals survive, obs
    /// flags are stripped, defaults match what the binaries documented.
    #[test]
    fn bench_args_parse_scale_and_obs_flags() {
        let v = |a: &[&str]| a.iter().map(|s| s.to_string()).collect::<Vec<_>>();
        let (scale, obs, cfg, jobs) = bench_args_from("table2", v(&["12", "2", "--stats", "json"]));
        assert_eq!((scale.n, scale.iters), (12, 2));
        assert_eq!(obs.stats, Some(crate::cli::StatsFormat::Json));
        assert!(!cfg.lazy);
        assert_eq!(jobs, 0, "no --jobs flag means all CPUs");
        let (scale, obs, cfg, jobs) = bench_args_from("table1", v(&[]));
        assert_eq!((scale.n, scale.iters), (64, 12));
        assert!(obs.stats.is_none() && obs.trace_out.is_none() && obs.provenance_out.is_none());
        assert_eq!(cfg, ImportConfig::default());
        assert_eq!(jobs, 0);
        // `--lazy-import` and `--jobs` may appear anywhere among the
        // positionals.
        let (scale, _, cfg, jobs) =
            bench_args_from("table2", v(&["12", "--lazy-import", "--jobs", "3", "2"]));
        assert_eq!((scale.n, scale.iters), (12, 2));
        assert!(cfg.lazy && cfg.shared_cache && !cfg.zero_copy);
        assert_eq!(jobs, 3);
        let (_, _, cfg, _) = bench_args_from("table2", v(&["--zero-copy"]));
        assert!(cfg.zero_copy && !cfg.lazy);
    }

    #[test]
    fn extract_jobs_strips_flag_and_rejects_garbage() {
        let v = |a: &[&str]| a.iter().map(|s| s.to_string()).collect::<Vec<_>>();
        let mut args = v(&["8", "--jobs", "4", "2"]);
        assert_eq!(extract_jobs(&mut args), Ok(4));
        assert_eq!(args, v(&["8", "2"]));
        let mut bad = v(&["--jobs", "many"]);
        assert!(extract_jobs(&mut bad).is_err());
        let mut missing = v(&["--jobs"]);
        assert!(extract_jobs(&mut missing).is_err());
    }

    /// Suite-level aggregation helpers agree with a hand-rolled loop.
    #[test]
    fn aggregation_matches_manual_loop() {
        let reports = collect_suite(Scale::tiny()).unwrap();
        let total = total_query_stats(&reports);
        let manual: u64 = reports.iter().map(|r| r.stats.total_tests).sum();
        assert_eq!(total.total_tests, manual);
        let merged = merged_metrics(&reports);
        let manual_ddg: u64 =
            reports.iter().map(|r| r.metrics.counter("backend.ddg.total_tests")).sum();
        assert_eq!(merged.counter("backend.ddg.total_tests"), manual_ddg);
    }
}
