//! Decision-to-cycles attribution rollups — the data model behind the
//! `obsreport` binary.
//!
//! The back-end stamps every [`DecisionRecord`] with a causal span id and
//! an **estimated** benefit at decision time (see DESIGN.md "Attribution
//! records"); the harness charges every simulated cycle to the function it
//! retired in (`attr.func.*` / `attr.total.*` counters). [`rollup`] joins
//! the two views:
//!
//! * per **pass** — applied/blocked decisions, estimated cycles, distinct
//!   causal spans, query citations;
//! * per **HLI table** — the estimated benefit of the decisions that table
//!   justified, the share of the *measured* GCC-vs-HLI cycle delta it
//!   earned, and what computing its facts cost (`hli.query.*` invocation
//!   counts);
//! * per **function** — measured cycle win on each machine model, joined
//!   to the decisions made there;
//! * **totals** — the estimated-vs-measured divergence that bounds how
//!   seriously the per-table split may be read.
//!
//! The measured total is apportioned to tables proportionally to their
//! estimated benefit using cumulative flooring, so the per-table measured
//! cycles **sum to the aggregate Table-2 delta exactly** — reconciliation
//! is by construction, and the estimated-vs-measured divergence is the
//! honest error bar on the split itself.

use hli_obs::json::{escape_into, push_f64, Json};
use hli_obs::provenance::DecisionRecord;
use std::collections::{BTreeMap, BTreeSet};
use std::fmt::Write as _;

/// The five HLI fact tables of the paper (Section 2.2), as rollup keys.
pub const TABLES: &[&str] = &["equiv", "alias", "lcdd", "call_refmod", "region"];

/// Which tables justify a pass's decisions. The split is static: a
/// [`DecisionRecord`] cites query *ids*, not the table each query hit, so
/// a pass's estimated benefit is divided equally over the tables its
/// queries consult (see the per-query counters in docs/QUERYBOOK.md).
pub fn tables_of(pass: &str) -> &'static [&'static str] {
    match pass {
        // Block scheduling benefit materializes on sched.block; the
        // pair/call probes under the same span cite the actual queries.
        "sched.pair" | "sched.block" => &["equiv", "alias", "lcdd"],
        "sched.call" | "cse.call" => &["call_refmod"],
        "licm.hoist" => &["call_refmod", "equiv", "lcdd"],
        "unroll.loop" => &["region", "lcdd"],
        _ => &[],
    }
}

/// The `hli.query.*` invocation counter feeding each table.
pub fn cost_counter_of(table: &str) -> &'static str {
    match table {
        "equiv" => "hli.query.get_equiv_acc",
        "alias" => "hli.query.get_alias",
        "lcdd" => "hli.query.get_lcdd",
        "call_refmod" => "hli.query.get_call_acc",
        "region" => "hli.query.region_info",
        _ => "",
    }
}

/// Per-pass decision rollup.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct PassRollup {
    pub applied: u64,
    pub blocked: u64,
    /// Estimated cycles saved by the Applied decisions.
    pub est_cycles: u64,
    /// Distinct non-zero causal span ids.
    pub spans: u64,
    /// Total query citations across the pass's records.
    pub queries: u64,
}

/// Per-HLI-table benefit/cost rollup.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct TableRollup {
    /// Estimated cycles saved by decisions this table justified.
    pub est_cycles: u64,
    /// This table's share of the measured R4600 cycle win.
    pub measured_r4600: u64,
    /// This table's share of the measured R10000 cycle win.
    pub measured_r10000: u64,
    /// `hli.query.*` invocations that computed this table's facts.
    pub cost_queries: u64,
}

/// Per-function measured win joined to the decisions made there.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FuncWin {
    pub name: String,
    pub r4600_gcc: u64,
    pub r4600_hli: u64,
    pub r10000_gcc: u64,
    pub r10000_hli: u64,
    pub decisions: u64,
    pub est_cycles: u64,
}

impl FuncWin {
    /// Measured R10000 cycle win (the sort key; negative clamps to 0).
    pub fn win_r10000(&self) -> u64 {
        self.r10000_gcc.saturating_sub(self.r10000_hli)
    }

    pub fn win_r4600(&self) -> u64 {
        self.r4600_gcc.saturating_sub(self.r4600_hli)
    }
}

/// Aggregate joins and the estimated-vs-measured error bar.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Totals {
    pub decisions: u64,
    pub applied: u64,
    pub blocked: u64,
    pub spans: u64,
    pub query_citations: u64,
    /// All `hli.query.*` invocations (the fact-computation cost).
    pub query_invocations: u64,
    pub est_cycles: u64,
    /// `attr.total.*`: aggregate GCC-minus-HLI cycle delta per model.
    pub measured_r4600: u64,
    pub measured_r10000: u64,
    /// `100 * (est - measured) / measured`; how far decision-time
    /// estimates sit from the simulated truth.
    pub divergence_r4600_pct: f64,
    pub divergence_r10000_pct: f64,
}

/// One obsreport rollup — everything `obsreport` prints or gates on.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct AttrReport {
    pub schema_version: u64,
    pub totals: Totals,
    pub per_pass: BTreeMap<String, PassRollup>,
    pub per_table: BTreeMap<String, TableRollup>,
    /// Top functions by measured R10000 win, descending (name-sorted on
    /// ties, truncated to the caller's `top`).
    pub top_functions: Vec<FuncWin>,
}

fn divergence_pct(est: u64, measured: u64) -> f64 {
    if measured == 0 {
        if est == 0 {
            0.0
        } else {
            100.0
        }
    } else {
        100.0 * (est as f64 - measured as f64) / measured as f64
    }
}

/// Join a `--stats json` counter map with the decision records of a
/// `--provenance-out` run. Both inputs come from the *same* run; the
/// counters carry the measured (`attr.*`) and cost (`hli.query.*`) sides,
/// the records the estimated side.
pub fn rollup(
    counters: &BTreeMap<String, u64>,
    records: &[DecisionRecord],
    top: usize,
) -> AttrReport {
    let mut per_pass: BTreeMap<String, PassRollup> = BTreeMap::new();
    let mut pass_spans: BTreeMap<String, BTreeSet<u64>> = BTreeMap::new();
    let mut func_decisions: BTreeMap<String, (u64, u64)> = BTreeMap::new();
    let mut totals = Totals::default();
    let mut all_spans: BTreeSet<u64> = BTreeSet::new();
    for r in records {
        let p = per_pass.entry(r.pass.clone()).or_default();
        totals.decisions += 1;
        if r.verdict.is_applied() {
            p.applied += 1;
            totals.applied += 1;
            p.est_cycles += r.est_cycles;
        } else {
            p.blocked += 1;
            totals.blocked += 1;
        }
        p.queries += r.hli_queries.len() as u64;
        totals.query_citations += r.hli_queries.len() as u64;
        if r.span != 0 {
            pass_spans.entry(r.pass.clone()).or_default().insert(r.span);
            all_spans.insert(r.span);
        }
        let f = func_decisions.entry(r.function.clone()).or_default();
        f.0 += 1;
        if r.verdict.is_applied() {
            f.1 += r.est_cycles;
        }
    }
    for (pass, spans) in pass_spans {
        per_pass.get_mut(&pass).expect("pass seen").spans = spans.len() as u64;
    }
    totals.spans = all_spans.len() as u64;
    totals.est_cycles = per_pass.values().map(|p| p.est_cycles).sum();

    let c = |k: &str| counters.get(k).copied().unwrap_or(0);
    totals.measured_r4600 =
        c("attr.total.r4600.gcc_cycles").saturating_sub(c("attr.total.r4600.hli_cycles"));
    totals.measured_r10000 =
        c("attr.total.r10000.gcc_cycles").saturating_sub(c("attr.total.r10000.hli_cycles"));
    totals.query_invocations = TABLES.iter().map(|t| c(cost_counter_of(t))).sum();
    totals.divergence_r4600_pct = divergence_pct(totals.est_cycles, totals.measured_r4600);
    totals.divergence_r10000_pct = divergence_pct(totals.est_cycles, totals.measured_r10000);

    // Per-table estimated benefit: each pass's estimate divided equally
    // over its tables, remainder to the first (integer cycles stay exact).
    let mut per_table: BTreeMap<String, TableRollup> = TABLES
        .iter()
        .map(|&t| {
            (
                t.to_string(),
                TableRollup { cost_queries: c(cost_counter_of(t)), ..Default::default() },
            )
        })
        .collect();
    for (pass, p) in &per_pass {
        let ts = tables_of(pass);
        if ts.is_empty() || p.est_cycles == 0 {
            continue;
        }
        let share = p.est_cycles / ts.len() as u64;
        let rem = p.est_cycles % ts.len() as u64;
        for (i, t) in ts.iter().enumerate() {
            let tr = per_table.get_mut(*t).expect("known table");
            tr.est_cycles += share + if i == 0 { rem } else { 0 };
        }
    }
    // Measured share: proportional to estimated benefit, apportioned by
    // cumulative flooring so the per-table values sum to the aggregate
    // delta *exactly* (the reconciliation the acceptance gate pins).
    let est_total: u64 = per_table.values().map(|t| t.est_cycles).sum();
    if est_total > 0 {
        let apportion = |total: u64,
                         pick: fn(&mut TableRollup) -> &mut u64,
                         per_table: &mut BTreeMap<String, TableRollup>| {
            let mut acc_est: u64 = 0;
            let mut acc_out: u64 = 0;
            for t in per_table.values_mut() {
                acc_est += t.est_cycles;
                let upto = (total as u128 * acc_est as u128 / est_total as u128) as u64;
                *pick(t) = upto - acc_out;
                acc_out = upto;
            }
        };
        apportion(totals.measured_r4600, |t| &mut t.measured_r4600, &mut per_table);
        apportion(totals.measured_r10000, |t| &mut t.measured_r10000, &mut per_table);
    }

    // Per-function measured wins from the attr.func.* counters.
    let mut funcs: BTreeMap<String, FuncWin> = BTreeMap::new();
    for (k, &v) in counters {
        let Some(rest) = k.strip_prefix("attr.func.") else { continue };
        let (name, field) = match rest.rfind(".r4600.").or_else(|| rest.rfind(".r10000.")) {
            Some(i) => (&rest[..i], &rest[i + 1..]),
            None => continue,
        };
        let w = funcs
            .entry(name.to_string())
            .or_insert_with(|| FuncWin { name: name.to_string(), ..Default::default() });
        match field {
            "r4600.gcc_cycles" => w.r4600_gcc += v,
            "r4600.hli_cycles" => w.r4600_hli += v,
            "r10000.gcc_cycles" => w.r10000_gcc += v,
            "r10000.hli_cycles" => w.r10000_hli += v,
            _ => {}
        }
    }
    for (name, (n, est)) in func_decisions {
        if let Some(w) = funcs.get_mut(&name) {
            w.decisions = n;
            w.est_cycles = est;
        }
    }
    let mut top_functions: Vec<FuncWin> = funcs.into_values().collect();
    top_functions
        .sort_by(|a, b| b.win_r10000().cmp(&a.win_r10000()).then_with(|| a.name.cmp(&b.name)));
    top_functions.truncate(top);

    AttrReport {
        schema_version: hli_obs::SCHEMA_VERSION,
        totals,
        per_pass,
        per_table,
        top_functions,
    }
}

impl AttrReport {
    /// Pretty JSON (sorted keys, trailing newline) — the format of a
    /// checked-in `obsreport` baseline.
    pub fn to_json(&self) -> String {
        let mut o = String::from("{\n");
        let _ = writeln!(o, "  \"schema_version\": {},", self.schema_version);
        let _ = writeln!(o, "  \"kind\": \"obsreport\",");
        o.push_str("  \"totals\": {\n");
        let t = &self.totals;
        let _ = writeln!(o, "    \"decisions\": {},", t.decisions);
        let _ = writeln!(o, "    \"applied\": {},", t.applied);
        let _ = writeln!(o, "    \"blocked\": {},", t.blocked);
        let _ = writeln!(o, "    \"spans\": {},", t.spans);
        let _ = writeln!(o, "    \"query_citations\": {},", t.query_citations);
        let _ = writeln!(o, "    \"query_invocations\": {},", t.query_invocations);
        let _ = writeln!(o, "    \"est_cycles\": {},", t.est_cycles);
        let _ = writeln!(o, "    \"measured_r4600\": {},", t.measured_r4600);
        let _ = writeln!(o, "    \"measured_r10000\": {},", t.measured_r10000);
        o.push_str("    \"divergence_r4600_pct\": ");
        push_f64(&mut o, round2(t.divergence_r4600_pct));
        o.push_str(",\n    \"divergence_r10000_pct\": ");
        push_f64(&mut o, round2(t.divergence_r10000_pct));
        o.push_str("\n  },\n");
        o.push_str("  \"per_pass\": {\n");
        let mut first = true;
        for (pass, p) in &self.per_pass {
            if !first {
                o.push_str(",\n");
            }
            first = false;
            o.push_str("    ");
            escape_into(&mut o, pass);
            let _ = write!(
                o,
                ": {{\"applied\": {}, \"blocked\": {}, \"est_cycles\": {}, \
                 \"spans\": {}, \"queries\": {}}}",
                p.applied, p.blocked, p.est_cycles, p.spans, p.queries
            );
        }
        o.push_str("\n  },\n  \"per_table\": {\n");
        first = true;
        for (table, tr) in &self.per_table {
            if !first {
                o.push_str(",\n");
            }
            first = false;
            o.push_str("    ");
            escape_into(&mut o, table);
            let _ = write!(
                o,
                ": {{\"est_cycles\": {}, \"measured_r4600\": {}, \
                 \"measured_r10000\": {}, \"cost_queries\": {}}}",
                tr.est_cycles, tr.measured_r4600, tr.measured_r10000, tr.cost_queries
            );
        }
        o.push_str("\n  },\n  \"top_functions\": [\n");
        for (i, f) in self.top_functions.iter().enumerate() {
            if i > 0 {
                o.push_str(",\n");
            }
            o.push_str("    {\"name\": ");
            escape_into(&mut o, &f.name);
            let _ = write!(
                o,
                ", \"win_r4600\": {}, \"win_r10000\": {}, \"decisions\": {}, \
                 \"est_cycles\": {}}}",
                f.win_r4600(),
                f.win_r10000(),
                f.decisions,
                f.est_cycles
            );
        }
        o.push_str("\n  ]\n}\n");
        o
    }

    /// Human-readable rollup.
    pub fn to_text(&self) -> String {
        let mut o = String::new();
        let t = &self.totals;
        let _ = writeln!(o, "obsreport (schema v{})", self.schema_version);
        let _ = writeln!(
            o,
            "  decisions: {} ({} applied, {} blocked) across {} causal span(s)",
            t.decisions, t.applied, t.blocked, t.spans
        );
        let _ = writeln!(
            o,
            "  facts: {} query citation(s), {} table-query invocation(s)",
            t.query_citations, t.query_invocations
        );
        let _ = writeln!(
            o,
            "  benefit: est {} cycles | measured r4600 {} (div {:+.1}%) | \
             r10000 {} (div {:+.1}%)",
            t.est_cycles,
            t.measured_r4600,
            t.divergence_r4600_pct,
            t.measured_r10000,
            t.divergence_r10000_pct
        );
        let _ = writeln!(o, "\nper pass:");
        let _ = writeln!(
            o,
            "  {:<18} {:>8} {:>8} {:>10} {:>7} {:>8}",
            "pass", "applied", "blocked", "est_cyc", "spans", "queries"
        );
        for (pass, p) in &self.per_pass {
            let _ = writeln!(
                o,
                "  {:<18} {:>8} {:>8} {:>10} {:>7} {:>8}",
                pass, p.applied, p.blocked, p.est_cycles, p.spans, p.queries
            );
        }
        let _ = writeln!(o, "\nper HLI table (benefit vs cost):");
        let _ = writeln!(
            o,
            "  {:<12} {:>10} {:>12} {:>13} {:>12}",
            "table", "est_cyc", "meas_r4600", "meas_r10000", "cost_qrys"
        );
        for (table, tr) in &self.per_table {
            let _ = writeln!(
                o,
                "  {:<12} {:>10} {:>12} {:>13} {:>12}",
                table, tr.est_cycles, tr.measured_r4600, tr.measured_r10000, tr.cost_queries
            );
        }
        let _ = writeln!(o, "\ntop functions by measured r10000 win:");
        let _ = writeln!(
            o,
            "  {:<20} {:>10} {:>11} {:>10} {:>9}",
            "function", "win_r4600", "win_r10000", "decisions", "est_cyc"
        );
        for f in &self.top_functions {
            let _ = writeln!(
                o,
                "  {:<20} {:>10} {:>11} {:>10} {:>9}",
                f.name,
                f.win_r4600(),
                f.win_r10000(),
                f.decisions,
                f.est_cycles
            );
        }
        o
    }
}

fn round2(v: f64) -> f64 {
    (v * 100.0).round() / 100.0
}

/// Flatten a parsed JSON document into `path -> scalar` pairs, for the
/// exact `--compare` gate (arrays index numerically).
pub fn flatten_json(doc: &Json, prefix: &str, out: &mut BTreeMap<String, String>) {
    match doc {
        Json::Obj(m) => {
            for (k, v) in m {
                let p = if prefix.is_empty() {
                    k.clone()
                } else {
                    format!("{prefix}.{k}")
                };
                flatten_json(v, &p, out);
            }
        }
        Json::Arr(a) => {
            for (i, v) in a.iter().enumerate() {
                flatten_json(v, &format!("{prefix}[{i}]"), out);
            }
        }
        Json::Num(n) => {
            out.insert(prefix.to_string(), format!("{n}"));
        }
        Json::Str(s) => {
            out.insert(prefix.to_string(), s.clone());
        }
        Json::Bool(b) => {
            out.insert(prefix.to_string(), b.to_string());
        }
        Json::Null => {
            out.insert(prefix.to_string(), "null".to_string());
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hli_obs::provenance::QueryRef;
    use hli_obs::Verdict;

    fn rec(pass: &str, func: &str, span: u64, est: u64, applied: bool) -> DecisionRecord {
        DecisionRecord {
            pass: pass.into(),
            function: func.into(),
            region_id: None,
            order: 1,
            span,
            est_cycles: est,
            hli_queries: vec![QueryRef(1), QueryRef(2)],
            verdict: if applied {
                Verdict::Applied
            } else {
                Verdict::Blocked { reason: "no".into() }
            },
        }
    }

    fn counters() -> BTreeMap<String, u64> {
        let mut c = BTreeMap::new();
        c.insert("attr.total.r4600.gcc_cycles".into(), 1000u64);
        c.insert("attr.total.r4600.hli_cycles".into(), 900u64);
        c.insert("attr.total.r10000.gcc_cycles".into(), 800u64);
        c.insert("attr.total.r10000.hli_cycles".into(), 600u64);
        c.insert("attr.func.main.r4600.gcc_cycles".into(), 1000u64);
        c.insert("attr.func.main.r4600.hli_cycles".into(), 900u64);
        c.insert("attr.func.main.r10000.gcc_cycles".into(), 800u64);
        c.insert("attr.func.main.r10000.hli_cycles".into(), 600u64);
        c.insert("hli.query.get_call_acc".into(), 40u64);
        c.insert("hli.query.get_equiv_acc".into(), 30u64);
        c
    }

    #[test]
    fn per_table_measured_sums_to_aggregate_delta() {
        let records = vec![
            rec("cse.call", "main", 3, 2, true),
            rec("licm.hoist", "main", 4, 14, true),
            rec("sched.block", "main", 5, 7, true),
            rec("cse.call", "main", 6, 0, false),
        ];
        let r = rollup(&counters(), &records, 10);
        let sum4: u64 = r.per_table.values().map(|t| t.measured_r4600).sum();
        let sum10: u64 = r.per_table.values().map(|t| t.measured_r10000).sum();
        assert_eq!(sum4, r.totals.measured_r4600, "r4600 reconciliation");
        assert_eq!(sum10, r.totals.measured_r10000, "r10000 reconciliation");
        assert_eq!(r.totals.measured_r4600, 100);
        assert_eq!(r.totals.measured_r10000, 200);
        assert_eq!(r.totals.est_cycles, 2 + 14 + 7);
        let est_sum: u64 = r.per_table.values().map(|t| t.est_cycles).sum();
        assert_eq!(est_sum, r.totals.est_cycles, "est split loses no cycles");
    }

    #[test]
    fn pass_and_span_counts_roll_up() {
        let records = vec![
            rec("cse.call", "main", 3, 2, true),
            rec("cse.call", "main", 3, 2, true),
            rec("cse.call", "f", 0, 0, false),
        ];
        let r = rollup(&counters(), &records, 10);
        let p = &r.per_pass["cse.call"];
        assert_eq!((p.applied, p.blocked), (2, 1));
        assert_eq!(p.spans, 1, "span 3 shared, span 0 never counts");
        assert_eq!(p.queries, 6);
        assert_eq!(r.totals.query_invocations, 70);
    }

    #[test]
    fn top_functions_sorted_by_r10000_win() {
        let mut c = counters();
        c.insert("attr.func.helper.r10000.gcc_cycles".into(), 5000u64);
        c.insert("attr.func.helper.r10000.hli_cycles".into(), 4000u64);
        let r = rollup(&c, &[rec("cse.call", "helper", 1, 2, true)], 10);
        assert_eq!(r.top_functions[0].name, "helper");
        assert_eq!(r.top_functions[0].win_r10000(), 1000);
        assert_eq!(r.top_functions[0].decisions, 1);
        let r1 = rollup(&c, &[], 1);
        assert_eq!(r1.top_functions.len(), 1, "--top truncates");
    }

    #[test]
    fn json_is_parseable_and_flattens_stably() {
        let records = vec![rec("unroll.loop", "main", 9, 12, true)];
        let r = rollup(&counters(), &records, 5);
        let doc = hli_obs::json::parse(&r.to_json()).expect("obsreport JSON parses");
        assert_eq!(doc.get("kind").and_then(Json::as_str), Some("obsreport"));
        assert_eq!(
            doc.get("schema_version").and_then(Json::as_num),
            Some(hli_obs::SCHEMA_VERSION as f64)
        );
        let mut a = BTreeMap::new();
        flatten_json(&doc, "", &mut a);
        let mut b = BTreeMap::new();
        flatten_json(&hli_obs::json::parse(&r.to_json()).unwrap(), "", &mut b);
        assert_eq!(a, b);
        assert!(a.contains_key("per_table.region.est_cycles"));
        assert!(a.contains_key("top_functions[0].name"));
    }

    #[test]
    fn divergence_handles_zero_measured() {
        assert_eq!(divergence_pct(0, 0), 0.0);
        assert_eq!(divergence_pct(5, 0), 100.0);
        assert_eq!(divergence_pct(150, 100), 50.0);
    }
}
