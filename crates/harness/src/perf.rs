//! The `BENCH_*.json` perf-checkpoint format and its comparison policy —
//! the data model behind the `perfbench` binary.
//!
//! A [`PerfReport`] freezes one full-pipeline run over a generated corpus
//! (see [`hli_suite::corpus`]) into four sections with *different*
//! comparison rules:
//!
//! * `counters` — work done: dependence tests, scheduled-cycle totals,
//!   dynamic instructions, HLI bytes. Deterministic per corpus spec
//!   (derived from scoped per-report metrics, which the `--jobs` contract
//!   pins), so [`compare`] demands **exact** equality;
//! * `times_ms` — per-stage wall clock from the `obs.phase.*` histograms.
//!   Machine dependent, so compared **softly**: only a slowdown beyond
//!   both a relative tolerance and an absolute floor counts, and getting
//!   faster is never a failure;
//! * `rates` — derived throughput (queries/sec). Soft, direction-aware:
//!   only a *drop* beyond tolerance fails;
//! * `mem_kb` — peak RSS. Soft, growth beyond tolerance plus floor fails.
//!
//! The report also echoes the generating [`CorpusSpec`]s: comparing runs
//! of different workloads is a usage error ([`compare`] refuses), not a
//! regression, and the echo is what makes a checked-in `BENCH_6.json`
//! reproducible from the file alone. `schema_version` mismatches are
//! likewise refused — a stale baseline fails loudly.

use hli_obs::json::{escape_into, parse, push_f64, Json};
use hli_obs::MetricsSnapshot;
use hli_suite::corpus::{CallShape, CorpusSpec};
use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::time::Duration;

use crate::report::total_query_stats;
use crate::BenchReport;

/// The corpus parameters a report was measured over, echoed verbatim so
/// the run is reproducible from the artifact and so [`compare`] can
/// refuse cross-workload comparisons.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CorpusEcho {
    pub seeds: Vec<u64>,
    pub programs: usize,
    pub funcs: usize,
    pub max_loop_depth: usize,
    pub alias_pct: u8,
    pub shape: String,
    pub arrays: usize,
    pub array_len: usize,
    pub stmts: usize,
}

impl CorpusEcho {
    /// Echo of `spec` run once per seed in `seeds` (the spec's own seed
    /// field is ignored; `specs` reconstructs the per-seed variants).
    pub fn new(spec: &CorpusSpec, seeds: &[u64]) -> Self {
        CorpusEcho {
            seeds: seeds.to_vec(),
            programs: spec.programs,
            funcs: spec.funcs,
            max_loop_depth: spec.max_loop_depth,
            alias_pct: spec.alias_pct,
            shape: shape_name(spec.shape).to_string(),
            arrays: spec.arrays,
            array_len: spec.array_len,
            stmts: spec.stmts,
        }
    }

    /// The per-seed [`CorpusSpec`]s this echo describes.
    pub fn specs(&self) -> Result<Vec<CorpusSpec>, String> {
        let shape = parse_shape(&self.shape)?;
        Ok(self
            .seeds
            .iter()
            .map(|&seed| CorpusSpec {
                seed,
                programs: self.programs,
                funcs: self.funcs,
                max_loop_depth: self.max_loop_depth,
                alias_pct: self.alias_pct,
                shape,
                arrays: self.arrays,
                array_len: self.array_len,
                stmts: self.stmts,
            })
            .collect())
    }
}

pub fn shape_name(s: CallShape) -> &'static str {
    match s {
        CallShape::Chain => "chain",
        CallShape::Balanced => "balanced",
        CallShape::Wide => "wide",
    }
}

pub fn parse_shape(s: &str) -> Result<CallShape, String> {
    match s {
        "chain" => Ok(CallShape::Chain),
        "balanced" => Ok(CallShape::Balanced),
        "wide" => Ok(CallShape::Wide),
        other => Err(format!("unknown call shape `{other}` (chain|balanced|wide)")),
    }
}

/// One frozen perf checkpoint (see module docs for section semantics).
#[derive(Debug, Clone, PartialEq)]
pub struct PerfReport {
    pub schema_version: u64,
    pub corpus: CorpusEcho,
    pub counters: BTreeMap<String, u64>,
    pub times_ms: BTreeMap<String, f64>,
    pub rates: BTreeMap<String, f64>,
    pub mem_kb: BTreeMap<String, u64>,
}

/// Soft-section tolerances for [`compare`]. Defaults are deliberately
/// loose: CI machines differ in load and clock, and the exact sections
/// carry the regression-gating weight.
#[derive(Debug, Clone, Copy)]
pub struct Tolerances {
    /// Allowed relative slowdown per `times_ms` key, percent.
    pub time_pct: f64,
    /// Slowdowns below this absolute delta never fail (milliseconds).
    pub time_floor_ms: f64,
    /// Allowed relative drop per `rates` key, percent.
    pub rate_pct: f64,
    /// Allowed relative growth per `mem_kb` key, percent.
    pub rss_pct: f64,
    /// RSS growth below this absolute delta never fails (kilobytes).
    pub rss_floor_kb: u64,
}

impl Default for Tolerances {
    fn default() -> Self {
        Tolerances {
            time_pct: 75.0,
            time_floor_ms: 100.0,
            rate_pct: 60.0,
            rss_pct: 50.0,
            rss_floor_kb: 16 * 1024,
        }
    }
}

/// Build a report from the measured pipeline outputs: `reports` carry the
/// deterministic counters, `phase_snap` (the global registry) carries the
/// stage wall-clock, `total_wall` the end-to-end run time.
pub fn build_report(
    corpus: CorpusEcho,
    reports: &[BenchReport],
    total_wall: Duration,
    phase_snap: &MetricsSnapshot,
) -> PerfReport {
    let stats = total_query_stats(reports);
    let mut counters = BTreeMap::new();
    let mut c = |k: &str, v: u64| {
        counters.insert(k.to_string(), v);
    };
    c("corpus.programs", reports.len() as u64);
    c(
        "corpus.validated",
        reports.iter().filter(|r| r.validated).count() as u64,
    );
    c("corpus.source_lines", reports.iter().map(|r| r.code_lines as u64).sum());
    c("hli.bytes", reports.iter().map(|r| r.hli_bytes as u64).sum());
    c("query.total_tests", stats.total_tests);
    c("query.gcc_yes", stats.gcc_yes);
    c("query.hli_yes", stats.hli_yes);
    c("query.combined_yes", stats.combined_yes);
    c("query.call_queries", stats.call_queries);
    c("machine.dyn_insns", reports.iter().map(|r| r.dyn_insns).sum());
    if let Some(first) = reports.first() {
        for mc in &first.machines {
            let m = mc.machine;
            let sum = |pick: fn(crate::MachineCycles) -> u64| -> u64 {
                reports.iter().filter_map(|r| r.cycles_on(m)).map(pick).sum()
            };
            c(&format!("cycles.{m}.gcc"), sum(|mc| mc.gcc));
            c(&format!("cycles.{m}.hli"), sum(|mc| mc.hli));
        }
    }

    let mut times_ms = BTreeMap::new();
    for (k, h) in &phase_snap.histograms {
        if let Some(stage) = k.strip_prefix("obs.phase.").and_then(|s| s.strip_suffix(".ns")) {
            times_ms.insert(stage.to_string(), h.sum as f64 / 1e6);
        }
    }
    times_ms.insert("total_wall".to_string(), total_wall.as_secs_f64() * 1e3);

    let mut rates = BTreeMap::new();
    let sched_s = hli_obs::phase::total_ns(phase_snap, "backend.schedule") as f64 / 1e9;
    if sched_s > 0.0 && stats.total_tests > 0 {
        rates.insert("queries_per_sec".to_string(), stats.total_tests as f64 / sched_s);
    }

    let mut mem_kb = BTreeMap::new();
    if let Some(kb) = hli_obs::mem::peak_rss_kb() {
        mem_kb.insert("peak_rss_kb".to_string(), kb);
    }

    PerfReport {
        schema_version: hli_obs::SCHEMA_VERSION,
        corpus,
        counters,
        times_ms,
        rates,
        mem_kb,
    }
}

impl PerfReport {
    /// Serialize as pretty JSON (sorted keys, trailing newline) — the
    /// format of a checked-in `BENCH_*.json`.
    pub fn to_json(&self) -> String {
        let mut o = String::from("{\n");
        let _ = writeln!(o, "  \"schema_version\": {},", self.schema_version);
        let _ = writeln!(o, "  \"kind\": \"perfbench\",");
        o.push_str("  \"corpus\": {\n");
        let seeds = self.corpus.seeds.iter().map(|s| s.to_string()).collect::<Vec<_>>().join(", ");
        let _ = writeln!(o, "    \"seeds\": [{seeds}],");
        let _ = writeln!(o, "    \"programs\": {},", self.corpus.programs);
        let _ = writeln!(o, "    \"funcs\": {},", self.corpus.funcs);
        let _ = writeln!(o, "    \"max_loop_depth\": {},", self.corpus.max_loop_depth);
        let _ = writeln!(o, "    \"alias_pct\": {},", self.corpus.alias_pct);
        let _ = writeln!(o, "    \"shape\": \"{}\",", self.corpus.shape);
        let _ = writeln!(o, "    \"arrays\": {},", self.corpus.arrays);
        let _ = writeln!(o, "    \"array_len\": {},", self.corpus.array_len);
        let _ = writeln!(o, "    \"stmts\": {}", self.corpus.stmts);
        o.push_str("  },\n");
        section_u64(&mut o, "counters", &self.counters, ",");
        section_f64(&mut o, "times_ms", &self.times_ms, ",");
        section_f64(&mut o, "rates", &self.rates, ",");
        section_u64(&mut o, "mem_kb", &self.mem_kb, "");
        o.push_str("}\n");
        o
    }

    /// Parse a `BENCH_*.json` document (leading non-JSON lines skipped the
    /// way `obsdiff` does, so transcripts work too).
    pub fn parse_str(text: &str) -> Result<PerfReport, String> {
        let start = text
            .lines()
            .position(|l| l.trim_end() == "{")
            .ok_or("no JSON document found (no `{` line)")?;
        let json: String = text.lines().skip(start).collect::<Vec<_>>().join("\n");
        let doc = parse(&json)?;
        let num = |j: &Json, key: &str| -> Result<f64, String> {
            j.get(key)
                .and_then(Json::as_num)
                .ok_or(format!("missing numeric field `{key}`"))
        };
        let corpus_doc = doc.get("corpus").ok_or("missing `corpus` object")?;
        let seeds = corpus_doc
            .get("seeds")
            .and_then(Json::as_arr)
            .ok_or("missing `corpus.seeds` array")?
            .iter()
            .map(|j| j.as_num().map(|n| n as u64).ok_or("non-numeric seed".to_string()))
            .collect::<Result<Vec<_>, _>>()?;
        let corpus = CorpusEcho {
            seeds,
            programs: num(corpus_doc, "programs")? as usize,
            funcs: num(corpus_doc, "funcs")? as usize,
            max_loop_depth: num(corpus_doc, "max_loop_depth")? as usize,
            alias_pct: num(corpus_doc, "alias_pct")? as u8,
            shape: corpus_doc
                .get("shape")
                .and_then(Json::as_str)
                .ok_or("missing `corpus.shape`")?
                .to_string(),
            arrays: num(corpus_doc, "arrays")? as usize,
            array_len: num(corpus_doc, "array_len")? as usize,
            stmts: num(corpus_doc, "stmts")? as usize,
        };
        Ok(PerfReport {
            // Absent field = pre-versioning artifact = version 1.
            schema_version: doc
                .get("schema_version")
                .and_then(Json::as_num)
                .map(|n| n as u64)
                .unwrap_or(1),
            corpus,
            counters: num_map(&doc, "counters")?.into_iter().map(|(k, v)| (k, v as u64)).collect(),
            times_ms: num_map(&doc, "times_ms")?,
            rates: num_map(&doc, "rates")?,
            mem_kb: num_map(&doc, "mem_kb")?.into_iter().map(|(k, v)| (k, v as u64)).collect(),
        })
    }
}

/// Read and parse a `BENCH_*.json` checkpoint for `--compare`, with
/// diagnostics that name the file and the expected schema generation —
/// a missing or pre-versioning baseline must say how to regenerate, not
/// surface as a bare I/O or parse error.
pub fn load_baseline(path: &str) -> Result<PerfReport, String> {
    let text = std::fs::read_to_string(path).map_err(|e| {
        format!(
            "cannot read baseline {path}: {e} — regenerate it with \
             `perfbench --out {path}` (expected schema v{})",
            hli_obs::SCHEMA_VERSION
        )
    })?;
    if !text.contains("\"schema_version\"") {
        return Err(format!(
            "{path}: baseline has no `schema_version` field (expected v{}) — not a \
             perfbench checkpoint, or one predating versioning; regenerate it with \
             `perfbench --out {path}`",
            hli_obs::SCHEMA_VERSION
        ));
    }
    let report = PerfReport::parse_str(&text).map_err(|e| format!("{path}: {e}"))?;
    if report.schema_version != hli_obs::SCHEMA_VERSION {
        return Err(format!(
            "{path}: baseline is schema v{}, this perfbench expects v{} — regenerate \
             it with `perfbench --out {path}`",
            report.schema_version,
            hli_obs::SCHEMA_VERSION
        ));
    }
    Ok(report)
}

fn num_map(doc: &Json, key: &str) -> Result<BTreeMap<String, f64>, String> {
    match doc.get(key) {
        Some(Json::Obj(m)) => {
            Ok(m.iter().filter_map(|(k, v)| v.as_num().map(|n| (k.clone(), n))).collect())
        }
        _ => Err(format!("missing `{key}` object")),
    }
}

fn section_u64(o: &mut String, name: &str, m: &BTreeMap<String, u64>, trail: &str) {
    let _ = writeln!(o, "  \"{name}\": {{");
    let mut first = true;
    for (k, v) in m {
        if !first {
            o.push_str(",\n");
        }
        first = false;
        o.push_str("    ");
        escape_into(o, k);
        let _ = write!(o, ": {v}");
    }
    if !first {
        o.push('\n');
    }
    let _ = writeln!(o, "  }}{trail}");
}

fn section_f64(o: &mut String, name: &str, m: &BTreeMap<String, f64>, trail: &str) {
    let _ = writeln!(o, "  \"{name}\": {{");
    let mut first = true;
    for (k, v) in m {
        if !first {
            o.push_str(",\n");
        }
        first = false;
        o.push_str("    ");
        escape_into(o, k);
        o.push_str(": ");
        // Two decimals keep checked-in files diff-friendly.
        push_f64(o, (v * 100.0).round() / 100.0);
    }
    if !first {
        o.push('\n');
    }
    let _ = writeln!(o, "  }}{trail}");
}

/// Compare a fresh run (`cur`) against a stored checkpoint (`prev`).
///
/// `Err` is a *usage* error — mismatched schema generation or a different
/// corpus, where a diff would be meaningless (callers exit 2). `Ok(v)`
/// returns the regression descriptions, empty when the gate passes.
pub fn compare(
    prev: &PerfReport,
    cur: &PerfReport,
    tol: &Tolerances,
) -> Result<Vec<String>, String> {
    if prev.schema_version != cur.schema_version {
        return Err(format!(
            "schema_version mismatch: baseline v{}, current v{} — regenerate the baseline",
            prev.schema_version, cur.schema_version
        ));
    }
    if prev.corpus != cur.corpus {
        return Err(format!(
            "corpus mismatch: baseline {:?} vs current {:?} — these runs measured \
             different workloads",
            prev.corpus, cur.corpus
        ));
    }
    let mut regressions = Vec::new();

    // Counters: exact. Both directions fail — a counter that *dropped*
    // still means the pipeline did different work than the checkpoint.
    let keys: std::collections::BTreeSet<&String> =
        prev.counters.keys().chain(cur.counters.keys()).collect();
    for k in keys {
        match (prev.counters.get(k), cur.counters.get(k)) {
            (Some(p), Some(c)) if p == c => {}
            (Some(p), Some(c)) => {
                regressions.push(format!("counter {k}: {p} -> {c} (exact-match section)"))
            }
            (Some(p), None) => regressions.push(format!("counter {k}: {p} -> missing")),
            // New counters are new instrumentation, not a regression.
            (None, Some(_)) | (None, None) => {}
        }
    }

    for (k, p) in &prev.times_ms {
        let Some(c) = cur.times_ms.get(k) else {
            regressions.push(format!("time {k}: {p:.1} ms -> missing"));
            continue;
        };
        let delta = c - p;
        if delta > p * tol.time_pct / 100.0 && delta > tol.time_floor_ms {
            regressions.push(format!(
                "time {k}: {p:.1} ms -> {c:.1} ms (+{:.0}% > tol {:.0}%)",
                delta / p.max(1e-9) * 100.0,
                tol.time_pct
            ));
        }
    }

    for (k, p) in &prev.rates {
        let Some(c) = cur.rates.get(k) else {
            regressions.push(format!("rate {k}: {p:.1} -> missing"));
            continue;
        };
        if *c < p * (1.0 - tol.rate_pct / 100.0) {
            regressions.push(format!(
                "rate {k}: {p:.1} -> {c:.1} (-{:.0}% > tol {:.0}%)",
                (p - c) / p.max(1e-9) * 100.0,
                tol.rate_pct
            ));
        }
    }

    for (k, p) in &prev.mem_kb {
        // A baseline from a platform with RSS sampling compared on one
        // without (or vice versa) should not fail the gate.
        let Some(c) = cur.mem_kb.get(k) else { continue };
        let grow = c.saturating_sub(*p);
        if grow as f64 > *p as f64 * tol.rss_pct / 100.0 && grow > tol.rss_floor_kb {
            regressions.push(format!(
                "mem {k}: {p} kB -> {c} kB (+{:.0}% > tol {:.0}%)",
                grow as f64 / (*p).max(1) as f64 * 100.0,
                tol.rss_pct
            ));
        }
    }

    Ok(regressions)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> PerfReport {
        let spec = CorpusSpec::default();
        let corpus = CorpusEcho::new(&spec, &[1, 2]);
        let mut counters = BTreeMap::new();
        counters.insert("query.total_tests".into(), 1234u64);
        counters.insert("cycles.r4600.hli".into(), 98765u64);
        let mut times_ms = BTreeMap::new();
        times_ms.insert("backend.schedule".into(), 250.0);
        let mut rates = BTreeMap::new();
        rates.insert("queries_per_sec".into(), 4936.0);
        let mut mem_kb = BTreeMap::new();
        mem_kb.insert("peak_rss_kb".into(), 40000u64);
        PerfReport {
            schema_version: hli_obs::SCHEMA_VERSION,
            corpus,
            counters,
            times_ms,
            rates,
            mem_kb,
        }
    }

    #[test]
    fn json_round_trips() {
        let r = sample();
        let parsed = PerfReport::parse_str(&r.to_json()).unwrap();
        assert_eq!(r, parsed);
    }

    #[test]
    fn parse_skips_leading_transcript_lines() {
        let text = format!("perfbench: running...\nsome table\n{}", sample().to_json());
        assert_eq!(PerfReport::parse_str(&text).unwrap(), sample());
    }

    #[test]
    fn self_compare_is_clean() {
        let r = sample();
        assert!(compare(&r, &r, &Tolerances::default()).unwrap().is_empty());
    }

    #[test]
    fn counter_drift_fails_exactly() {
        let prev = sample();
        let mut cur = sample();
        *cur.counters.get_mut("query.total_tests").unwrap() += 1;
        let regs = compare(&prev, &cur, &Tolerances::default()).unwrap();
        assert_eq!(regs.len(), 1);
        assert!(regs[0].contains("query.total_tests"));
    }

    #[test]
    fn small_or_improving_times_pass_large_slowdowns_fail() {
        let prev = sample();
        let tol = Tolerances::default();
        let mut faster = sample();
        *faster.times_ms.get_mut("backend.schedule").unwrap() = 10.0;
        assert!(compare(&prev, &faster, &tol).unwrap().is_empty());
        // +80% but only +50 ms: under the absolute floor, passes.
        let mut small = sample();
        *small.times_ms.get_mut("backend.schedule").unwrap() = 300.0;
        assert!(compare(&prev, &small, &tol).unwrap().is_empty());
        let mut slow = sample();
        *slow.times_ms.get_mut("backend.schedule").unwrap() = 900.0;
        let regs = compare(&prev, &slow, &tol).unwrap();
        assert!(regs.iter().any(|r| r.contains("backend.schedule")), "{regs:?}");
    }

    #[test]
    fn rate_drops_and_rss_growth_fail() {
        let prev = sample();
        let tol = Tolerances::default();
        let mut cur = sample();
        *cur.rates.get_mut("queries_per_sec").unwrap() = 100.0;
        *cur.mem_kb.get_mut("peak_rss_kb").unwrap() = 400000;
        let regs = compare(&prev, &cur, &tol).unwrap();
        assert_eq!(regs.len(), 2, "{regs:?}");
    }

    #[test]
    fn schema_and_corpus_mismatches_are_hard_errors() {
        let prev = sample();
        let mut wrong_ver = sample();
        wrong_ver.schema_version = 1;
        assert!(compare(&prev, &wrong_ver, &Tolerances::default()).is_err());
        let mut wrong_corpus = sample();
        wrong_corpus.corpus.funcs += 1;
        assert!(compare(&prev, &wrong_corpus, &Tolerances::default()).is_err());
    }

    #[test]
    fn load_baseline_diagnoses_missing_and_schema_less_files() {
        let missing = "/nonexistent/BENCH_void.json";
        let err = load_baseline(missing).unwrap_err();
        assert!(err.contains(missing), "must name the file: {err}");
        assert!(err.contains("regenerate"), "must say how to recover: {err}");
        assert!(
            err.contains(&format!("v{}", hli_obs::SCHEMA_VERSION)),
            "must name the expected schema: {err}"
        );

        let dir = std::env::temp_dir();
        let stale = dir.join(format!("hli_bench_stale_{}.json", std::process::id()));
        // A structurally valid checkpoint predating the version field.
        let body = sample()
            .to_json()
            .replace(&format!("  \"schema_version\": {},\n", hli_obs::SCHEMA_VERSION), "");
        assert!(!body.contains("schema_version"));
        std::fs::write(&stale, body).unwrap();
        let err = load_baseline(stale.to_str().unwrap()).unwrap_err();
        assert!(
            err.contains("no `schema_version`") && err.contains("regenerate"),
            "schema-less baseline needs a clear diagnostic: {err}"
        );
        let _ = std::fs::remove_file(&stale);
    }

    #[test]
    fn load_baseline_round_trips_a_good_checkpoint() {
        let dir = std::env::temp_dir();
        let good = dir.join(format!("hli_bench_good_{}.json", std::process::id()));
        std::fs::write(&good, sample().to_json()).unwrap();
        assert_eq!(load_baseline(good.to_str().unwrap()).unwrap(), sample());
        let _ = std::fs::remove_file(&good);
    }

    #[test]
    fn echo_reconstructs_specs() {
        let spec = CorpusSpec { seed: 0, ..Default::default() };
        let echo = CorpusEcho::new(&spec, &[7, 9]);
        let specs = echo.specs().unwrap();
        assert_eq!(specs.len(), 2);
        assert_eq!(specs[0].seed, 7);
        assert_eq!(specs[1].seed, 9);
        assert_eq!(specs[0].funcs, spec.funcs);
        assert!(parse_shape("nonesuch").is_err());
    }
}
