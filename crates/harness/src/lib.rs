//! # hli-harness — the experiment driver
//!
//! Regenerates every table and figure of the paper's evaluation
//! (Section 4) over the synthetic suite:
//!
//! * `table1` — program characteristics: code size, HLI size in bytes,
//!   HLI bytes per source line (paper Table 1);
//! * `table2` — dependence-query counts (total, per line, GCC-yes,
//!   HLI-yes, combined-yes), the edge-reduction percentage, and simulated
//!   R4600/R10000 speedups of HLI-scheduled vs GCC-scheduled code
//!   (paper Table 2);
//! * `figures` binary — the Figure 2 region dump, the Figure 4 CSE-purge
//!   demonstration, and the Figure 6 unrolling-maintenance demonstration.
//!
//! Every run cross-checks correctness: the GCC-scheduled and HLI-scheduled
//! binaries must produce identical results, equal to the AST interpreter's
//! (the differential oracle), or the harness reports the benchmark as
//! miscompiled instead of mis-reporting a speedup.

use hli_backend::ddg::{DepMode, QueryStats};
use hli_backend::driver::{schedule_program_passes, PassSpec};
use hli_backend::lower::lower_program;
use hli_core::image::EntryRef;
use hli_core::serialize::{decode_file, encode_file, encode_file_v2, SerializeOpts};
use hli_core::{HliImage, HliReader, QueryCache};
use hli_frontend::{generate_hli_with, FrontendOptions};
use hli_lang::compile_to_ast;
use hli_machine::{backend_by_name, MachineBackend};
use hli_obs::{MetricsRegistry, MetricsSnapshot};
use hli_suite::{Benchmark, Scale};
use std::collections::HashMap;
use std::sync::Arc;

pub mod attr;
pub mod cli;
pub mod perf;
pub mod report;

/// Simulated cycles of the two builds (GCC-scheduled vs HLI-scheduled) on
/// one machine model.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MachineCycles {
    /// Canonical backend name (`"r4600"`, `"r10000"`, `"w4"`).
    pub machine: &'static str,
    /// Cycles of the GCC-scheduled build.
    pub gcc: u64,
    /// Cycles of the HLI-scheduled build.
    pub hli: u64,
}

impl MachineCycles {
    pub fn speedup(&self) -> f64 {
        self.gcc as f64 / self.hli.max(1) as f64
    }
}

/// The machine models a pipeline run times on when none are named: the
/// paper's two MIPS cores, with the R4600 (first entry) as the scheduler's
/// latency source.
pub fn default_machines() -> Vec<&'static dyn MachineBackend> {
    vec![
        backend_by_name("r4600").unwrap(),
        backend_by_name("r10000").unwrap(),
    ]
}

/// Everything measured about one benchmark.
#[derive(Debug, Clone)]
pub struct BenchReport {
    pub name: String,
    pub suite: String,
    pub is_fp: bool,
    /// Source lines (Table 1 "Code size").
    pub code_lines: usize,
    /// Compact HLI encoding size (Table 1 "HLI size").
    pub hli_bytes: usize,
    /// Table 2 dependence-query counters (from the scheduling pass).
    pub stats: QueryStats,
    /// Simulated cycles on every selected machine model, in selection
    /// order. The first entry's model also supplied the scheduler's
    /// latencies (the single-source contract — see DESIGN.md).
    pub machines: Vec<MachineCycles>,
    /// Dynamic instructions executed (identical for both schedules).
    pub dyn_insns: u64,
    /// Correctness: all executions agreed with the AST interpreter.
    pub validated: bool,
    /// Metrics recorded by every layer while this benchmark ran (the
    /// pipeline runs under a scoped [`MetricsRegistry`], so the snapshot
    /// contains only this run's counters).
    pub metrics: MetricsSnapshot,
}

impl BenchReport {
    /// Table 2 "Reduction": 1 − combined/gcc.
    pub fn reduction(&self) -> f64 {
        self.stats.reduction()
    }

    pub fn tests_per_line(&self) -> f64 {
        self.stats.total_tests as f64 / self.code_lines.max(1) as f64
    }

    /// Cycle pair on the named machine, if it was selected for this run.
    pub fn cycles_on(&self, machine: &str) -> Option<MachineCycles> {
        self.machines.iter().copied().find(|m| m.machine == machine)
    }

    /// HLI-over-GCC speedup on the named machine (`1.0` if not selected).
    pub fn speedup_on(&self, machine: &str) -> f64 {
        self.cycles_on(machine).map(|m| m.speedup()).unwrap_or(1.0)
    }

    pub fn speedup_r4600(&self) -> f64 {
        self.speedup_on("r4600")
    }

    pub fn speedup_r10000(&self) -> f64 {
        self.speedup_on("r10000")
    }

    pub fn hli_bytes_per_line(&self) -> f64 {
        self.hli_bytes as f64 / self.code_lines.max(1) as f64
    }
}

/// How the pipeline imports the encoded HLI back into the back-end.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ImportConfig {
    /// Open the `HLI\x02` indexed image through [`HliReader`] and decode
    /// units on first request, instead of eagerly decoding the whole v1
    /// image up front.
    pub lazy: bool,
    /// Open the `HLI\x03` word-aligned image through [`HliImage`] and
    /// serve queries from borrowed views of the image bytes — no owned
    /// tables are decoded at all. Takes precedence over `lazy`.
    pub zero_copy: bool,
    /// Keep one query-memo cache per function across the two scheduling
    /// passes (GCC-only then Combined) instead of starting each pass cold.
    pub shared_cache: bool,
}

impl Default for ImportConfig {
    fn default() -> Self {
        ImportConfig { lazy: false, zero_copy: false, shared_cache: true }
    }
}

/// Run the full measurement pipeline on one benchmark.
pub fn run_benchmark(b: &Benchmark) -> Result<BenchReport, String> {
    run_benchmark_with(b, FrontendOptions::default())
}

/// [`run_benchmark`] with explicit front-end precision options (the
/// ablation knob).
pub fn run_benchmark_with(b: &Benchmark, opts: FrontendOptions) -> Result<BenchReport, String> {
    run_benchmark_cfg(b, opts, ImportConfig::default())
}

/// [`run_benchmark_with`] with an explicit import strategy, on the
/// default machine list.
pub fn run_benchmark_cfg(
    b: &Benchmark,
    opts: FrontendOptions,
    cfg: ImportConfig,
) -> Result<BenchReport, String> {
    run_benchmark_on(b, opts, cfg, &default_machines())
}

/// [`run_benchmark_cfg`] on an explicit machine list. The first machine is
/// the scheduler's latency source; every listed machine is simulated and
/// reported.
///
/// The pipeline runs under a scoped per-run [`MetricsRegistry`]; the
/// resulting snapshot is carried on the report and also absorbed into the
/// registry that was current at entry (normally the global one), so both
/// per-benchmark and whole-suite totals stay available.
pub fn run_benchmark_on(
    b: &Benchmark,
    opts: FrontendOptions,
    cfg: ImportConfig,
    machines: &[&'static dyn MachineBackend],
) -> Result<BenchReport, String> {
    let parent = hli_obs::metrics::cur();
    let local = Arc::new(MetricsRegistry::new());
    let result = {
        let _scope = hli_obs::metrics::scoped(local.clone());
        run_pipeline(b, opts, cfg, machines)
    };
    let metrics = local.snapshot();
    parent.absorb(&metrics);
    let mut report = result?;
    report.metrics = metrics;
    Ok(report)
}

/// The measurement pipeline proper, writing to whatever registry is
/// current. Phase spans land on the global tracer.
fn run_pipeline(
    b: &Benchmark,
    opts: FrontendOptions,
    cfg: ImportConfig,
    machines: &[&'static dyn MachineBackend],
) -> Result<BenchReport, String> {
    let _run = hli_obs::span(format!("bench.{}", b.name));
    let (prog, sema) = {
        let _s = hli_obs::span("harness.compile");
        let _t = hli_obs::phase::timed("frontend.parse");
        compile_to_ast(&b.source).map_err(|e| format!("{}: {e}", b.name))?
    };

    // Reference semantics.
    let oracle = {
        let _s = hli_obs::span("harness.oracle");
        let _t = hli_obs::phase::timed("harness.oracle");
        hli_lang::interp::run_program(&prog, &sema)
            .map_err(|e| format!("{}: interpreter: {e}", b.name))?
    };

    // Front-end: HLI generation + Table 1 size.
    let hli = generate_hli_with(&prog, &sema, opts);
    let errs = hli_core::verify_file(&hli);
    if let Some((unit, err)) = errs.first() {
        return Err(format!("{}: invalid HLI for `{unit}`: {err}", b.name));
    }
    let v1_bytes = {
        let _s = hli_obs::span("harness.encode_hli");
        encode_file(&hli, SerializeOpts::default())
    };
    let hli_bytes = v1_bytes.len();

    // Back-end import: round-trip the HLI through its encoded image, the
    // way a separately-invoked back-end receives it (Section 3.2.1).
    // Eager decodes every unit of the v1 image up front; lazy opens the
    // indexed `HLI\x02` image and decodes units on first request;
    // zero-copy opens the word-aligned `HLI\x03` image and serves borrowed
    // views straight from the image bytes.
    let _import_span = hli_obs::span("harness.import_hli");
    let (imported, reader, image) = if cfg.zero_copy {
        let bytes = hli_core::encode_file_v3(&hli, SerializeOpts::default());
        let img = HliImage::open(bytes, SerializeOpts::default())
            .map_err(|e| format!("{}: v3 import: {e}", b.name))?;
        (None, None, Some(img))
    } else if cfg.lazy {
        let bytes = encode_file_v2(&hli, SerializeOpts::default());
        let r = HliReader::open(bytes, SerializeOpts::default())
            .map_err(|e| format!("{}: v2 import: {e}", b.name))?;
        (None, Some(r), None)
    } else {
        let f = decode_file(&v1_bytes, SerializeOpts::default())
            .map_err(|e| format!("{}: v1 import: {e}", b.name))?;
        (Some(f), None, None)
    };
    drop(_import_span);
    let lookup = |name: &str| -> Option<EntryRef<'_>> {
        match (&imported, &reader, &image) {
            (Some(f), _, _) => f.entry(name).map(EntryRef::Owned),
            (_, Some(r), _) => r.get(name).ok().flatten().map(EntryRef::Owned),
            (_, _, Some(img)) => img.get_ref(name).ok().flatten(),
            _ => None,
        }
    };

    // Back-end: lower once, schedule twice (the two compiler builds) via
    // the per-function driver. Both passes run inside one work item per
    // function, so a shared cache warms across them exactly as the old
    // sequential two-call driver did. The suite already fans benchmarks
    // out across the pool, so the per-benchmark driver stays sequential
    // (`jobs = 1`); `hlicc back` is the per-function parallel entry.
    let rtl = {
        let _s = hli_obs::span("backend.lower");
        lower_program(&prog, &sema)
    };
    // The first selected machine is the scheduler's latency source — the
    // same table the simulator below prices the resulting trace with.
    let mach0 = *machines
        .first()
        .ok_or_else(|| format!("{}: no machine models selected", b.name))?;
    let _sched_span = hli_obs::span("backend.schedule");
    let fresh_caches = || -> HashMap<String, QueryCache> {
        rtl.funcs.iter().map(|f| (f.name.clone(), QueryCache::new())).collect()
    };
    let caches = fresh_caches();
    let second_pass;
    let caches2 = if cfg.shared_cache {
        &caches
    } else {
        second_pass = fresh_caches();
        &second_pass
    };
    let passes = [
        PassSpec { mode: DepMode::GccOnly, caches: Some(&caches) },
        PassSpec { mode: DepMode::Combined, caches: Some(caches2) },
    ];
    let mut builds = schedule_program_passes(&rtl, &lookup, &passes, mach0, 1).into_iter();
    let (gcc_build, _) = builds.next().expect("GccOnly pass result");
    let (hli_build, stats) = builds.next().expect("Combined pass result");
    drop(_sched_span);

    // Machines: trace each build once (with the owning-function index of
    // every event), time on both models, and attribute simulated cycles to
    // functions. The attribution counters join `DecisionRecord.function`
    // to measured cycle deltas in `obsreport`; being simulated quantities
    // they are deterministic and identical across `--jobs` values.
    let _mach_span = hli_obs::span("machine.execute");
    let (gcc_res, gcc_trace, gcc_funcs) = hli_machine::execute_with_func_trace(&gcc_build)
        .map_err(|e| format!("{}: gcc build: {e}", b.name))?;
    let (hli_res, hli_trace, hli_funcs) = hli_machine::execute_with_func_trace(&hli_build)
        .map_err(|e| format!("{}: hli build: {e}", b.name))?;
    drop(_mach_span);

    let validated = gcc_res.ret == oracle.ret
        && hli_res.ret == oracle.ret
        && gcc_res.global_checksum == oracle.global_checksum
        && hli_res.global_checksum == oracle.global_checksum;

    let _time_span = hli_obs::span("machine.models");
    let nfuncs = rtl.funcs.len();
    let reg = hli_obs::metrics::cur();
    let mut cycles = Vec::with_capacity(machines.len());
    for mach in machines {
        let (gs, g_per) = mach.cycles_per_func(&gcc_trace, &gcc_funcs, nfuncs);
        let (hs, h_per) = mach.cycles_per_func(&hli_trace, &hli_funcs, nfuncs);
        let name = mach.name();
        for (fi, f) in rtl.funcs.iter().enumerate() {
            reg.counter(&format!("attr.func.{}.{name}.gcc_cycles", f.name)).add(g_per[fi]);
            reg.counter(&format!("attr.func.{}.{name}.hli_cycles", f.name)).add(h_per[fi]);
        }
        reg.counter(&format!("attr.total.{name}.gcc_cycles")).add(gs.cycles);
        reg.counter(&format!("attr.total.{name}.hli_cycles")).add(hs.cycles);
        cycles.push(MachineCycles { machine: name, gcc: gs.cycles, hli: hs.cycles });
    }
    drop(_time_span);

    Ok(BenchReport {
        name: b.name.to_string(),
        suite: b.suite.to_string(),
        is_fp: b.is_fp,
        code_lines: b.source.lines().count(),
        hli_bytes,
        stats,
        machines: cycles,
        dyn_insns: gcc_res.dyn_insns,
        validated,
        metrics: MetricsSnapshot::default(),
    })
}

/// Ordered parallel map over a slice on the work-stealing pool, with all
/// available CPUs; results come back in input order.
pub fn par_map<T, R, F>(items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    hli_pool::run(0, items, |_w, t| f(t))
}

/// Run the whole suite in parallel.
pub fn run_suite(scale: Scale) -> Vec<Result<BenchReport, String>> {
    run_suite_cfg(scale, ImportConfig::default())
}

/// [`run_suite`] with an explicit import strategy (the `--lazy-import`
/// path of the table binaries), on all available CPUs.
pub fn run_suite_cfg(scale: Scale, cfg: ImportConfig) -> Vec<Result<BenchReport, String>> {
    run_suite_jobs(scale, cfg, 0)
}

/// Run the suite on `jobs` pool workers (`0` = one per CPU, `1` = inline
/// sequential), one benchmark per work item.
///
/// Each benchmark runs under an [`hli_obs::capture`] shard; the shards
/// are committed on the calling thread in suite order, so metrics totals,
/// gauge values, provenance record order and query-id numbering are all
/// identical for `--jobs 1` and `--jobs N` — the reports (and therefore
/// the table rows, whose int/fp split is positional) stay in suite order
/// regardless of worker completion order.
pub fn run_suite_jobs(
    scale: Scale,
    cfg: ImportConfig,
    jobs: usize,
) -> Vec<Result<BenchReport, String>> {
    run_benchmarks_jobs(&hli_suite::all(scale), cfg, jobs)
}

/// [`run_suite_jobs`] on an explicit machine list (the `--machine` path of
/// the table binaries).
pub fn run_suite_jobs_on(
    scale: Scale,
    cfg: ImportConfig,
    jobs: usize,
    machines: &[&'static dyn MachineBackend],
) -> Vec<Result<BenchReport, String>> {
    run_benchmarks_jobs_on(&hli_suite::all(scale), cfg, jobs, machines)
}

/// The suite driver generalized over any benchmark list (the fixed paper
/// suite, or a generated [`hli_suite::corpus`]): parallel over `jobs`
/// workers, shard capture/commit in input order, same determinism
/// guarantees as [`run_suite_jobs`].
pub fn run_benchmarks_jobs(
    benches: &[Benchmark],
    cfg: ImportConfig,
    jobs: usize,
) -> Vec<Result<BenchReport, String>> {
    run_benchmarks_jobs_on(benches, cfg, jobs, &default_machines())
}

/// [`run_benchmarks_jobs`] on an explicit machine list; the determinism
/// guarantees hold per machine list (shard capture/commit is in input
/// order regardless of which machines are simulated).
pub fn run_benchmarks_jobs_on(
    benches: &[Benchmark],
    cfg: ImportConfig,
    jobs: usize,
    machines: &[&'static dyn MachineBackend],
) -> Vec<Result<BenchReport, String>> {
    let obs_cfg = hli_obs::CaptureCfg::from_env();
    let results = hli_pool::run(jobs, benches, |_w, b| {
        hli_obs::capture_cfg(obs_cfg, || {
            run_benchmark_on(b, FrontendOptions::default(), cfg, machines)
        })
    });
    results
        .into_iter()
        .map(|(r, shard)| {
            hli_obs::commit(shard);
            r
        })
        .collect()
}

/// Format Table 1 (program characteristics).
pub fn format_table1(reports: &[BenchReport]) -> String {
    use std::fmt::Write;
    let mut out = String::new();
    let _ = writeln!(
        out,
        "{:<14} {:<7} {:>10} {:>10} {:>14}",
        "Benchmark", "Suite", "Code lines", "HLI (B)", "HLI per line"
    );
    let _ = writeln!(out, "{}", "-".repeat(60));
    let mut int_bpl = Vec::new();
    let mut fp_bpl = Vec::new();
    for (i, r) in reports.iter().enumerate() {
        if i == 4 {
            let _ = writeln!(
                out,
                "{:<14} {:<7} {:>10} {:>10} {:>14.0}   (int mean)",
                "mean",
                "-",
                "-",
                "-",
                mean(&int_bpl)
            );
        }
        let _ = writeln!(
            out,
            "{:<14} {:<7} {:>10} {:>10} {:>14.0}",
            r.name,
            r.suite,
            r.code_lines,
            r.hli_bytes,
            r.hli_bytes_per_line()
        );
        if r.is_fp {
            fp_bpl.push(r.hli_bytes_per_line());
        } else {
            int_bpl.push(r.hli_bytes_per_line());
        }
    }
    let _ = writeln!(
        out,
        "{:<14} {:<7} {:>10} {:>10} {:>14.0}   (fp mean)",
        "mean",
        "-",
        "-",
        "-",
        mean(&fp_bpl)
    );
    out
}

/// Format Table 2 (dependence tests and speedups): one speedup column per
/// machine the reports were timed on, in selection order.
pub fn format_table2(reports: &[BenchReport]) -> String {
    use std::fmt::Write;
    let machs: Vec<&'static str> = reports
        .first()
        .map(|r| r.machines.iter().map(|m| m.machine).collect())
        .unwrap_or_default();
    let mut out = String::new();
    let _ = write!(
        out,
        "{:<14} {:>7} {:>9} {:>12} {:>12} {:>12} {:>6}",
        "Benchmark", "Tests", "Per line", "GCC yes", "HLI yes", "Combined", "Red%",
    );
    for m in &machs {
        let _ = write!(out, " {:>8}", m.to_uppercase());
    }
    let _ = writeln!(out, " {:>3}", "OK");
    let _ = writeln!(out, "{}", "-".repeat(78 + 9 * machs.len() + 4));
    let split = |rs: &[&BenchReport], label: &str, out: &mut String| {
        let red: Vec<f64> = rs.iter().map(|r| r.reduction() * 100.0).collect();
        let tpl: Vec<f64> = rs.iter().map(|r| r.tests_per_line()).collect();
        let _ = write!(
            out,
            "{:<14} {:>7} {:>9.2} {:>12} {:>12} {:>12} {:>6.0}",
            "mean",
            "-",
            mean(&tpl),
            "-",
            "-",
            "-",
            mean(&red)
        );
        for m in &machs {
            let sp: Vec<f64> = rs.iter().map(|r| r.speedup_on(m)).collect();
            let _ = write!(out, " {:>8.2}", geomean(&sp));
        }
        let _ = writeln!(out, "      ({label} mean)");
    };
    for (i, r) in reports.iter().enumerate() {
        if i == 4 {
            let ints: Vec<&BenchReport> = reports[..4].iter().collect();
            split(&ints, "int", &mut out);
        }
        let pct = |num: u64| {
            if r.stats.total_tests == 0 {
                0.0
            } else {
                100.0 * num as f64 / r.stats.total_tests as f64
            }
        };
        let _ = write!(
            out,
            "{:<14} {:>7} {:>9.2} {:>6} ({:>3.0}%) {:>6} ({:>3.0}%) {:>6} ({:>3.0}%) {:>6.0}",
            r.name,
            r.stats.total_tests,
            r.tests_per_line(),
            r.stats.gcc_yes,
            pct(r.stats.gcc_yes),
            r.stats.hli_yes,
            pct(r.stats.hli_yes),
            r.stats.combined_yes,
            pct(r.stats.combined_yes),
            r.reduction() * 100.0,
        );
        for m in &machs {
            let _ = write!(out, " {:>8.2}", r.speedup_on(m));
        }
        let _ = writeln!(out, " {:>3}", if r.validated { "ok" } else { "BAD" });
    }
    let fps: Vec<&BenchReport> = reports[4..].iter().collect();
    split(&fps, "fp", &mut out);
    out
}

pub fn mean(v: &[f64]) -> f64 {
    if v.is_empty() {
        0.0
    } else {
        v.iter().sum::<f64>() / v.len() as f64
    }
}

pub fn geomean(v: &[f64]) -> f64 {
    if v.is_empty() {
        0.0
    } else {
        (v.iter().map(|x| x.max(1e-9).ln()).sum::<f64>() / v.len() as f64).exp()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn one_fp_benchmark_end_to_end() {
        let b = hli_suite::by_name("034.mdljdp2", Scale::tiny()).unwrap();
        let r = run_benchmark(&b).unwrap();
        assert!(r.validated, "schedules must preserve semantics");
        assert!(r.stats.total_tests > 0);
        assert!(r.stats.combined_yes <= r.stats.gcc_yes);
        assert!(r.hli_bytes > 0);
        assert!(r.cycles_on("r4600").unwrap().gcc > 0);
        assert!(r.cycles_on("r10000").unwrap().gcc > 0);
        assert!(r.cycles_on("w4").is_none(), "w4 is opt-in via --machine");
    }

    #[test]
    fn one_int_benchmark_end_to_end() {
        let b = hli_suite::by_name("wc", Scale::tiny()).unwrap();
        let r = run_benchmark(&b).unwrap();
        assert!(r.validated);
        assert!(r.reduction() >= 0.0);
    }

    #[test]
    fn hli_never_slower_than_gcc_schedule_on_pointer_kernel() {
        let b = hli_suite::by_name("077.mdljsp2", Scale::tiny()).unwrap();
        let r = run_benchmark(&b).unwrap();
        // HLI freed edges: schedule quality must not regress.
        assert!(
            r.speedup_r10000() > 0.95,
            "r10000 speedup {:.3} collapsed",
            r.speedup_r10000()
        );
    }

    #[test]
    fn ablation_reduces_precision() {
        let b = hli_suite::by_name("034.mdljdp2", Scale::tiny()).unwrap();
        let full = run_benchmark(&b).unwrap();
        let blunt = run_benchmark_with(
            &b,
            FrontendOptions { pointer_analysis: false, ..Default::default() },
        )
        .unwrap();
        assert!(
            blunt.stats.combined_yes >= full.stats.combined_yes,
            "turning off points-to cannot improve the combined column"
        );
    }

    #[test]
    fn table_formatters_cover_all_rows() {
        let reports: Vec<BenchReport> = hli_suite::all(Scale::tiny())
            .iter()
            .map(|b| run_benchmark(b).unwrap())
            .collect();
        let t1 = format_table1(&reports);
        let t2 = format_table2(&reports);
        for b in hli_suite::all(Scale::tiny()) {
            assert!(t1.contains(b.name.as_str()), "table1 missing {}", b.name);
            assert!(t2.contains(b.name.as_str()), "table2 missing {}", b.name);
        }
        assert!(t1.contains("(fp mean)"));
        assert!(t2.contains("(int mean)"));
    }

    #[test]
    fn stat_helpers() {
        assert_eq!(mean(&[1.0, 3.0]), 2.0);
        assert!((geomean(&[1.0, 4.0]) - 2.0).abs() < 1e-12);
        assert_eq!(mean(&[]), 0.0);
    }
}
