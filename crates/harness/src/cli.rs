//! Shared handling of the observability flags every harness binary
//! accepts:
//!
//! * `--stats [text|json]` — after the normal output, print the metrics
//!   registry (everything the instrumented crates counted during the run);
//! * `--trace-out <file.json>` — write the phase trace as Chrome
//!   `trace_event` JSON (loadable in `chrome://tracing` / Perfetto);
//! * `--provenance-out <file.jsonl>` — enable the decision-provenance sink
//!   and write every [`hli_obs::DecisionRecord`] the optimizers emitted as
//!   one JSON object per line.
//!
//! [`ObsArgs::extract`] strips the flags out of an argument vector before
//! the binary's own parsing, so every binary gains them with two lines.

use hli_obs::MetricsSnapshot;

/// Output format for `--stats`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StatsFormat {
    Text,
    Json,
}

/// The parsed observability flags.
#[derive(Debug, Clone, Default)]
pub struct ObsArgs {
    pub stats: Option<StatsFormat>,
    pub trace_out: Option<String>,
    pub provenance_out: Option<String>,
}

impl ObsArgs {
    /// Remove `--stats [text|json]`, `--trace-out <file>` and
    /// `--provenance-out <file>` from `args` (leaving the binary's own
    /// arguments untouched) and return them. Seeing `--provenance-out`
    /// enables the global decision sink, so the passes that run afterwards
    /// record; without the flag they take the disabled fast path.
    pub fn extract(args: &mut Vec<String>) -> Result<ObsArgs, String> {
        let mut obs = ObsArgs::default();
        let mut i = 0;
        while i < args.len() {
            match args[i].as_str() {
                "--stats" => {
                    args.remove(i);
                    obs.stats = Some(match args.get(i).map(String::as_str) {
                        Some("json") => {
                            args.remove(i);
                            StatsFormat::Json
                        }
                        Some("text") => {
                            args.remove(i);
                            StatsFormat::Text
                        }
                        // Bare `--stats` defaults to the human format.
                        _ => StatsFormat::Text,
                    });
                }
                "--trace-out" => {
                    args.remove(i);
                    if i >= args.len() {
                        return Err("--trace-out needs a file path".into());
                    }
                    obs.trace_out = Some(args.remove(i));
                }
                "--provenance-out" => {
                    args.remove(i);
                    if i >= args.len() {
                        return Err("--provenance-out needs a file path".into());
                    }
                    obs.provenance_out = Some(args.remove(i));
                    hli_obs::provenance::global().set_enabled(true);
                }
                _ => i += 1,
            }
        }
        Ok(obs)
    }

    /// Emit whatever was requested, reading the global registry/tracer.
    pub fn emit(&self) {
        let mut snap = hli_obs::metrics::global().snapshot();
        if self.stats.is_some() {
            // Surface the lossy-buffer drop counts alongside the metrics so
            // a truncated ring/trace is visible in the same snapshot that
            // would otherwise silently under-report.
            let ring = hli_obs::ring::global().dropped();
            if ring > 0 {
                snap.counters.insert("obs.ring.dropped".into(), ring);
            }
            let trace = hli_obs::trace::global().dropped();
            if trace > 0 {
                snap.counters.insert("obs.trace.dropped".into(), trace);
            }
            // Memory gauges ride the same snapshot: machine/run dependent,
            // so they are gauges (`obsdiff` skips gauges by default and the
            // jobs-determinism gates only compare scoped snapshots, which
            // never pass through this global-emit path).
            hli_obs::mem::stamp_rss(&mut snap);
            hli_obs::alloc_count::stamp_alloc(&mut snap);
        }
        self.emit_snapshot(&snap);
    }

    /// Emit with an explicit metrics snapshot (stats go to stdout after
    /// the normal output; the trace goes to the requested file).
    pub fn emit_snapshot(&self, snap: &MetricsSnapshot) {
        match self.stats {
            Some(StatsFormat::Text) => print!("{}", snap.to_text()),
            Some(StatsFormat::Json) => print!("{}", snap.to_json()),
            None => {}
        }
        if let Some(path) = &self.trace_out {
            let tracer = hli_obs::trace::global();
            match std::fs::write(path, tracer.to_chrome_json()) {
                Ok(()) => eprintln!(
                    "wrote {} span(s) to {path} (chrome://tracing format)",
                    tracer.finished_spans().len()
                ),
                Err(e) => {
                    eprintln!("cannot write trace to {path}: {e}");
                    std::process::exit(1);
                }
            }
        }
        if let Some(path) = &self.provenance_out {
            let records = hli_obs::provenance::global().drain();
            // A header record leads the file so consumers can reject
            // artifacts from a different schema generation. It is added at
            // the file-write layer only: in-memory `to_jsonl` output (what
            // the determinism tests byte-compare) stays header-free.
            let body = format!(
                "{{\"schema_version\": {}, \"kind\": \"provenance\"}}\n{}",
                hli_obs::SCHEMA_VERSION,
                hli_obs::provenance::to_jsonl(&records)
            );
            match std::fs::write(path, body) {
                Ok(()) => eprintln!("wrote {} decision record(s) to {path} (JSONL)", records.len()),
                Err(e) => {
                    eprintln!("cannot write provenance to {path}: {e}");
                    std::process::exit(1);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn v(args: &[&str]) -> Vec<String> {
        args.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn extract_strips_obs_flags_only() {
        let mut args = v(&["64", "--stats", "json", "12", "--trace-out", "t.json"]);
        let obs = ObsArgs::extract(&mut args).unwrap();
        assert_eq!(obs.stats, Some(StatsFormat::Json));
        assert_eq!(obs.trace_out.as_deref(), Some("t.json"));
        assert_eq!(args, v(&["64", "12"]));
    }

    #[test]
    fn bare_stats_defaults_to_text() {
        let mut args = v(&["--stats"]);
        let obs = ObsArgs::extract(&mut args).unwrap();
        assert_eq!(obs.stats, Some(StatsFormat::Text));
        assert!(args.is_empty());
    }

    #[test]
    fn trace_out_requires_a_path() {
        let mut args = v(&["--trace-out"]);
        assert!(ObsArgs::extract(&mut args).is_err());
    }

    #[test]
    fn provenance_out_extracts_and_enables_the_global_sink() {
        let mut args = v(&["build", "x.c", "--provenance-out", "p.jsonl", "--cse"]);
        let obs = ObsArgs::extract(&mut args).unwrap();
        assert_eq!(obs.provenance_out.as_deref(), Some("p.jsonl"));
        assert_eq!(args, v(&["build", "x.c", "--cse"]));
        assert!(hli_obs::provenance::global().is_enabled());
        // Other unit tests in this process assert plain-run behaviour;
        // put the global sink back the way the process started.
        hli_obs::provenance::global().set_enabled(false);
        hli_obs::provenance::global().drain();
        let mut bare = v(&["--provenance-out"]);
        assert!(ObsArgs::extract(&mut bare).is_err());
    }

    #[test]
    fn untouched_without_flags() {
        let mut args = v(&["build", "x.c", "--cse"]);
        let obs = ObsArgs::extract(&mut args).unwrap();
        assert!(obs.stats.is_none() && obs.trace_out.is_none());
        assert_eq!(args, v(&["build", "x.c", "--cse"]));
    }
}
