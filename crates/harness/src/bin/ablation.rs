//! Ablation study (beyond the paper's tables, quantifying its Section 4.2
//! discussion): how much of the Table-2 edge reduction does each front-end
//! analysis contribute? Runs the whole suite under four precision settings
//! and prints the reduction each achieves.
//!
//! Usage: `cargo run --release -p hli-harness --bin ablation [n iters]
//! [--stats text|json] [--trace-out t.json]`

use hli_frontend::FrontendOptions;
use hli_harness::cli::ObsArgs;
use hli_harness::{mean, par_map, run_benchmark_with};
use hli_suite::Scale;

fn main() {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    let obs = ObsArgs::extract(&mut args).unwrap_or_else(|e| {
        eprintln!("ablation: {e}");
        std::process::exit(1);
    });
    let n = args.first().and_then(|a| a.parse().ok()).unwrap_or(64);
    let iters = args.get(1).and_then(|a| a.parse().ok()).unwrap_or(12);
    let scale = Scale { n, iters };
    let variants: Vec<(&str, FrontendOptions)> = vec![
        ("full HLI", FrontendOptions::default()),
        (
            "no array analysis",
            FrontendOptions { array_analysis: false, ..Default::default() },
        ),
        (
            "no pointer analysis",
            FrontendOptions { pointer_analysis: false, ..Default::default() },
        ),
        (
            "no REF/MOD",
            FrontendOptions { refmod_analysis: false, ..Default::default() },
        ),
        (
            "nothing (HLI present but blind)",
            FrontendOptions {
                array_analysis: false,
                pointer_analysis: false,
                refmod_analysis: false,
            },
        ),
    ];

    eprintln!(
        "running {} suite passes at scale n={n} iters={iters}...",
        variants.len()
    );
    let suite = hli_suite::all(scale);

    println!(
        "{:<14} {:>10} {:>10} {:>10} {:>10} {:>10}",
        "Benchmark", "full", "-array", "-pointer", "-refmod", "blind"
    );
    println!("{}", "-".repeat(70));

    // benchmark-major, variant-minor; parallel over the benchmarks.
    let cells: Vec<Vec<f64>> = par_map(&suite, |b| {
        variants
            .iter()
            .map(|(_, opts)| {
                run_benchmark_with(b, *opts).map(|r| r.reduction() * 100.0).unwrap_or(f64::NAN)
            })
            .collect()
    });

    let mut means = vec![Vec::new(); variants.len()];
    for (b, row) in suite.iter().zip(&cells) {
        print!("{:<14}", b.name);
        for (vi, red) in row.iter().enumerate() {
            print!(" {red:>9.0}%");
            means[vi].push(*red);
        }
        println!();
    }
    println!("{}", "-".repeat(70));
    print!("{:<14}", "mean");
    for m in &means {
        print!(" {:>9.0}%", mean(m));
    }
    println!();
    println!(
        "\ncolumns = dependence-edge reduction (1 - combined/GCC) with each front-end\n\
         analysis disabled; the paper's Section 4.2 attributes its HLI-vs-combined gap\n\
         to exactly these front-end precision limits."
    );
    obs.emit();
}
