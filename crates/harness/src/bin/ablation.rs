//! Ablation study (beyond the paper's tables, quantifying its Section 4.2
//! discussion): how much of the Table-2 edge reduction does each front-end
//! analysis contribute? Runs the whole suite under four precision settings
//! and prints the reduction each achieves.
//!
//! Usage: `cargo run --release -p hli-harness --bin ablation [n iters]
//! [--lazy-import] [--jobs N] [--stats text|json] [--trace-out t.json]
//! [--provenance-out p.jsonl]`

use hli_frontend::FrontendOptions;
use hli_harness::report::bench_args;
use hli_harness::{mean, run_benchmark_on};

fn main() {
    let a = bench_args("ablation");
    let (scale, obs, cfg, jobs) = (a.scale, a.obs, a.cfg, a.jobs);
    let machines = a.machines;
    let variants: Vec<(&str, FrontendOptions)> = vec![
        ("full HLI", FrontendOptions::default()),
        (
            "no array analysis",
            FrontendOptions { array_analysis: false, ..Default::default() },
        ),
        (
            "no pointer analysis",
            FrontendOptions { pointer_analysis: false, ..Default::default() },
        ),
        (
            "no REF/MOD",
            FrontendOptions { refmod_analysis: false, ..Default::default() },
        ),
        (
            "nothing (HLI present but blind)",
            FrontendOptions {
                array_analysis: false,
                pointer_analysis: false,
                refmod_analysis: false,
            },
        ),
    ];

    eprintln!(
        "running {} suite passes at scale n={} iters={}...",
        variants.len(),
        scale.n,
        scale.iters
    );
    let suite = hli_suite::all(scale);

    println!(
        "{:<14} {:>10} {:>10} {:>10} {:>10} {:>10}",
        "Benchmark", "full", "-array", "-pointer", "-refmod", "blind"
    );
    println!("{}", "-".repeat(70));

    // benchmark-major, variant-minor; parallel over the benchmarks, with
    // per-item observability shards committed in suite order so `--stats`
    // output is independent of the job count.
    let prov_on = hli_obs::provenance::active().is_some();
    let cells: Vec<Vec<f64>> = hli_pool::run(jobs, &suite, |_w, b| {
        hli_obs::capture(prov_on, || {
            variants
                .iter()
                .map(|(_, opts)| {
                    run_benchmark_on(b, *opts, cfg, &machines)
                        .map(|r| r.reduction() * 100.0)
                        .unwrap_or(f64::NAN)
                })
                .collect()
        })
    })
    .into_iter()
    .map(|(row, shard)| {
        hli_obs::commit(shard);
        row
    })
    .collect();

    let mut means = vec![Vec::new(); variants.len()];
    for (b, row) in suite.iter().zip(&cells) {
        print!("{:<14}", b.name);
        for (vi, red) in row.iter().enumerate() {
            print!(" {red:>9.0}%");
            means[vi].push(*red);
        }
        println!();
    }
    println!("{}", "-".repeat(70));
    print!("{:<14}", "mean");
    for m in &means {
        print!(" {:>9.0}%", mean(m));
    }
    println!();
    println!(
        "\ncolumns = dependence-edge reduction (1 - combined/GCC) with each front-end\n\
         analysis disabled; the paper's Section 4.2 attributes its HLI-vs-combined gap\n\
         to exactly these front-end precision limits."
    );
    obs.emit();
}
