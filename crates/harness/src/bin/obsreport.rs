//! `obsreport` — join one run's `--stats json` snapshot with its
//! `--provenance-out` decision records and answer, per pass / HLI table /
//! function: *how many cycles did the HLI-justified decisions save, and
//! what did computing the facts cost?*
//!
//! ```text
//! obsreport --stats run.json --provenance run.jsonl [options]
//!   --trace t.json     also report the span count of a --trace-out file
//!   --json             emit the schema-versioned JSON rollup (else text)
//!   --out FILE         write the rollup to FILE instead of stdout
//!   --compare BASE     gate the JSON rollup against a pinned baseline:
//!                      exact match exits 0, any drift exits 1
//!   --top N            keep the N biggest functions by R10000 win (20)
//! ```
//!
//! Both inputs must come from the *same* run: the stats snapshot carries
//! the measured `attr.*` cycle counters and the `hli.query.*` cost
//! counters, the JSONL the decision-time estimates and causal spans. The
//! provenance file must lead with its `{"schema_version": N, "kind":
//! "provenance"}` header (every `--provenance-out` writer emits one); a
//! missing or stale header is a usage error, not a silent mis-join.
//!
//! Exit codes: 0 ok, 1 `--compare` drift, 2 usage/parse error.

use hli_harness::attr::{flatten_json, rollup, AttrReport};
use hli_obs::json::{parse, Json};
use hli_obs::provenance::DecisionRecord;
use std::collections::BTreeMap;

const USAGE: &str = "usage: obsreport --stats run.json --provenance run.jsonl \
    [--trace t.json] [--json] [--out FILE] [--compare BASE] [--top N]";

fn fail(msg: &str) -> ! {
    eprintln!("obsreport: {msg}");
    std::process::exit(2)
}

#[derive(Default)]
struct Opts {
    stats: String,
    provenance: String,
    trace: Option<String>,
    json: bool,
    out: Option<String>,
    compare: Option<String>,
    top: usize,
}

fn parse_opts(args: Vec<String>) -> Opts {
    let mut o = Opts { top: 20, ..Default::default() };
    let mut it = args.into_iter();
    let val = |it: &mut std::vec::IntoIter<String>, flag: &str| {
        it.next().unwrap_or_else(|| fail(&format!("{flag} needs a value\n{USAGE}")))
    };
    while let Some(a) = it.next() {
        match a.as_str() {
            "--stats" => o.stats = val(&mut it, "--stats"),
            "--provenance" => o.provenance = val(&mut it, "--provenance"),
            "--trace" => o.trace = Some(val(&mut it, "--trace")),
            "--json" => o.json = true,
            "--out" => o.out = Some(val(&mut it, "--out")),
            "--compare" => o.compare = Some(val(&mut it, "--compare")),
            "--top" => {
                o.top =
                    val(&mut it, "--top").parse().unwrap_or_else(|_| fail("--top needs a count"));
            }
            other => fail(&format!("unknown argument `{other}`\n{USAGE}")),
        }
    }
    if o.stats.is_empty() || o.provenance.is_empty() {
        fail(USAGE);
    }
    o
}

/// Read a `--stats json` snapshot (leading table/log lines skipped) and
/// return its counters. Refuses snapshots from another schema generation.
fn load_counters(path: &str) -> BTreeMap<String, u64> {
    let text =
        std::fs::read_to_string(path).unwrap_or_else(|e| fail(&format!("cannot read {path}: {e}")));
    let start = text
        .lines()
        .position(|l| l.trim_end() == "{")
        .unwrap_or_else(|| fail(&format!("{path}: no JSON snapshot found (no `{{` line)")));
    let json: String = text.lines().skip(start).collect::<Vec<_>>().join("\n");
    let doc = parse(&json).unwrap_or_else(|e| fail(&format!("{path}: {e}")));
    let ver = doc.get("schema_version").and_then(Json::as_num).map(|n| n as u64).unwrap_or(1);
    if ver != hli_obs::SCHEMA_VERSION {
        fail(&format!(
            "{path}: stats snapshot is schema v{ver}, this obsreport expects v{} — \
             regenerate it with a current binary's `--stats json`",
            hli_obs::SCHEMA_VERSION
        ));
    }
    match doc.get("counters") {
        Some(Json::Obj(m)) => m
            .iter()
            .filter_map(|(k, v)| v.as_num().map(|n| (k.clone(), n as u64)))
            .collect(),
        _ => fail(&format!("{path}: snapshot has no `counters` object")),
    }
}

/// Read a `--provenance-out` JSONL file: validate the leading schema
/// header, parse the decision records after it.
fn load_records(path: &str) -> Vec<DecisionRecord> {
    let text =
        std::fs::read_to_string(path).unwrap_or_else(|e| fail(&format!("cannot read {path}: {e}")));
    let mut lines = text.lines();
    let header = lines.next().unwrap_or_else(|| fail(&format!("{path}: empty provenance file")));
    let doc = parse(header)
        .unwrap_or_else(|e| fail(&format!("{path}: provenance header is not JSON: {e}")));
    if doc.get("kind").and_then(Json::as_str) != Some("provenance") {
        fail(&format!(
            "{path}: first line is not a provenance header \
             (expected {{\"schema_version\": {}, \"kind\": \"provenance\"}}; \
             was this file written by `--provenance-out`?)",
            hli_obs::SCHEMA_VERSION
        ));
    }
    let ver = doc.get("schema_version").and_then(Json::as_num).map(|n| n as u64).unwrap_or(1);
    if ver != hli_obs::SCHEMA_VERSION {
        fail(&format!(
            "{path}: provenance file is schema v{ver}, this obsreport expects v{} — \
             regenerate it with a current binary's `--provenance-out`",
            hli_obs::SCHEMA_VERSION
        ));
    }
    lines
        .enumerate()
        .filter(|(_, l)| !l.trim().is_empty())
        .map(|(i, l)| {
            DecisionRecord::parse_line(l)
                .unwrap_or_else(|e| fail(&format!("{path}:{}: {e}", i + 2)))
        })
        .collect()
}

/// Count the events of a `--trace-out` Chrome trace.
fn load_trace_events(path: &str) -> usize {
    let text =
        std::fs::read_to_string(path).unwrap_or_else(|e| fail(&format!("cannot read {path}: {e}")));
    let doc = parse(&text).unwrap_or_else(|e| fail(&format!("{path}: {e}")));
    doc.get("traceEvents")
        .and_then(Json::as_arr)
        .unwrap_or_else(|| {
            fail(&format!("{path}: no `traceEvents` array — not a --trace-out file"))
        })
        .len()
}

/// Gate the fresh rollup against a pinned baseline; returns the drift
/// descriptions (empty = pass).
fn compare_against(baseline_path: &str, report: &AttrReport) -> Vec<String> {
    let text = std::fs::read_to_string(baseline_path).unwrap_or_else(|e| {
        fail(&format!(
            "cannot read baseline {baseline_path}: {e} — generate it with \
             `obsreport --stats ... --provenance ... --json --out {baseline_path}` \
             (see EXPERIMENTS.md)"
        ))
    });
    let doc = parse(&text).unwrap_or_else(|e| fail(&format!("{baseline_path}: {e}")));
    match doc.get("schema_version").and_then(Json::as_num).map(|n| n as u64) {
        Some(v) if v == hli_obs::SCHEMA_VERSION => {}
        Some(v) => fail(&format!(
            "{baseline_path}: baseline is schema v{v}, expected v{} — regenerate it \
             (see EXPERIMENTS.md)",
            hli_obs::SCHEMA_VERSION
        )),
        None => fail(&format!(
            "{baseline_path}: baseline has no `schema_version` field, expected v{} — \
             not an obsreport baseline, or one predating versioning; regenerate it",
            hli_obs::SCHEMA_VERSION
        )),
    }
    if doc.get("kind").and_then(Json::as_str) != Some("obsreport") {
        fail(&format!("{baseline_path}: `kind` is not \"obsreport\""));
    }
    let mut want = BTreeMap::new();
    flatten_json(&doc, "", &mut want);
    let cur_doc = parse(&report.to_json()).expect("own JSON parses");
    let mut got = BTreeMap::new();
    flatten_json(&cur_doc, "", &mut got);
    let mut drift = Vec::new();
    for (k, w) in &want {
        match got.get(k) {
            Some(g) if g == w => {}
            Some(g) => drift.push(format!("{k}: baseline {w} -> current {g}")),
            None => drift.push(format!("{k}: baseline {w} -> missing")),
        }
    }
    for k in got.keys() {
        if !want.contains_key(k) {
            drift.push(format!("{k}: new key (not in baseline)"));
        }
    }
    drift
}

fn main() {
    let opts = parse_opts(std::env::args().skip(1).collect());
    let counters = load_counters(&opts.stats);
    let records = load_records(&opts.provenance);
    let report = rollup(&counters, &records, opts.top);

    let mut body = if opts.json {
        report.to_json()
    } else {
        report.to_text()
    };
    if let Some(t) = &opts.trace {
        let n = load_trace_events(t);
        if !opts.json {
            body.push_str(&format!("\ntrace: {n} span(s) in {t}\n"));
        } else {
            eprintln!("obsreport: {n} trace span(s) in {t}");
        }
    }
    match &opts.out {
        Some(path) => std::fs::write(path, &body)
            .unwrap_or_else(|e| fail(&format!("cannot write {path}: {e}"))),
        None => print!("{body}"),
    }

    if let Some(base) = &opts.compare {
        let drift = compare_against(base, &report);
        if drift.is_empty() {
            eprintln!("obsreport: rollup matches baseline {base}");
        } else {
            eprintln!("obsreport: rollup drifted from baseline {base}:");
            for d in &drift {
                eprintln!("  {d}");
            }
            std::process::exit(1);
        }
    }
}
