//! Regenerate the paper's **Table 2** — dependence-query counts from the
//! first scheduling pass (total / per line / GCC-yes / HLI-yes / combined),
//! the dependence-edge reduction, and execution speedups of HLI-scheduled
//! vs GCC-scheduled code on the R4600-like and R10000-like machine models.
//!
//! Usage: `cargo run --release -p hli-harness --bin table2 [n iters]
//! [--lazy-import] [--jobs N] [--machine NAME[,NAME...]]
//! [--stats text|json] [--trace-out t.json] [--provenance-out p.jsonl]`
//!
//! `--machine` picks the simulated targets (r4600, r10000, w4); the first
//! one also drives the scheduler's latency table, so e.g.
//! `--machine w4` regenerates the whole table for the wide in-order core.

use hli_harness::format_table2;
use hli_harness::report::{bench_args, collect_suite_jobs_on};

fn main() {
    let a = bench_args("table2");
    let (scale, obs, cfg, jobs) = (a.scale, a.obs, a.cfg, a.jobs);
    eprintln!("running suite at scale n={} iters={}...", scale.n, scale.iters);
    let reports = collect_suite_jobs_on(scale, cfg, jobs, &a.machines).unwrap_or_else(|e| {
        eprintln!("error: {e}");
        std::process::exit(1);
    });
    println!("Table 2. Dependence queries, edge reduction, and speedups.");
    println!("(speedups = cycles of GCC-scheduled / cycles of HLI-scheduled)");
    println!();
    print!("{}", format_table2(&reports));
    println!();
    println!("paper shape checks:");
    println!(" - fp rows make more dependence tests per line than int rows (0.42 vs 0.10);");
    println!(" - mean reduction around half of GCC's edges (48% int / 54% fp);");
    println!(" - mdljdp2/mdljsp2-class rows reduce >80% and win most on the R10000;");
    println!(" - tomcatv-class rows reduce heavily yet barely speed up (serial fp chain);");
    println!(" - R10000 speedups >= R4600 speedups (LSQ rewards scheduling);");
    println!(" - W4 rewards scheduling hardest (4-issue in-order exposes every stall).");
    obs.emit();
    if reports.iter().any(|r| !r.validated) {
        eprintln!("WARNING: some benchmarks failed semantic validation!");
        std::process::exit(2);
    }
}
