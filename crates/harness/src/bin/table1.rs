//! Regenerate the paper's **Table 1** — benchmark program characteristics:
//! code size in lines, HLI size, and HLI bytes per source line.
//!
//! Usage: `cargo run --release -p hli-harness --bin table1 [n iters]
//! [--stats text|json] [--trace-out t.json]`

use hli_harness::cli::ObsArgs;
use hli_harness::format_table1;
use hli_harness::report::collect_suite;
use hli_suite::Scale;

fn main() {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    let obs = ObsArgs::extract(&mut args).unwrap_or_else(|e| {
        eprintln!("table1: {e}");
        std::process::exit(1);
    });
    let n = args.first().and_then(|a| a.parse().ok()).unwrap_or(64);
    let iters = args.get(1).and_then(|a| a.parse().ok()).unwrap_or(12);
    let scale = Scale { n, iters };
    eprintln!("running suite at scale n={n} iters={iters}...");
    let reports = collect_suite(scale).unwrap_or_else(|e| {
        eprintln!("error: {e}");
        std::process::exit(1);
    });
    println!("Table 1. Benchmark program characteristics.");
    println!();
    print!("{}", format_table1(&reports));
    println!();
    println!(
        "paper shape check: fp programs need more HLI bytes per line than int programs \
         (paper: 27 vs 13)."
    );
    obs.emit();
}
