//! Regenerate the paper's **Table 1** — benchmark program characteristics:
//! code size in lines, HLI size, and HLI bytes per source line.
//!
//! Usage: `cargo run --release -p hli-harness --bin table1 [n iters]`

use hli_harness::{format_table1, run_suite};
use hli_suite::Scale;

fn main() {
    let mut args = std::env::args().skip(1);
    let n = args.next().and_then(|a| a.parse().ok()).unwrap_or(64);
    let iters = args.next().and_then(|a| a.parse().ok()).unwrap_or(12);
    let scale = Scale { n, iters };
    eprintln!("running suite at scale n={n} iters={iters}...");
    let mut reports = Vec::new();
    for r in run_suite(scale) {
        match r {
            Ok(rep) => reports.push(rep),
            Err(e) => {
                eprintln!("error: {e}");
                std::process::exit(1);
            }
        }
    }
    println!("Table 1. Benchmark program characteristics.");
    println!();
    print!("{}", format_table1(&reports));
    println!();
    println!(
        "paper shape check: fp programs need more HLI bytes per line than int programs \
         (paper: 27 vs 13)."
    );
}
