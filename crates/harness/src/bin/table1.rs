//! Regenerate the paper's **Table 1** — benchmark program characteristics:
//! code size in lines, HLI size, and HLI bytes per source line.
//!
//! Usage: `cargo run --release -p hli-harness --bin table1 [n iters]
//! [--lazy-import] [--jobs N] [--machine NAME[,NAME...]]
//! [--stats text|json] [--trace-out t.json] [--provenance-out p.jsonl]`
//!
//! Table 1 reports machine-independent characteristics; `--machine` only
//! selects which models the underlying pipeline simulates (visible in
//! `--stats` counters), never the table itself.

use hli_harness::format_table1;
use hli_harness::report::{bench_args, collect_suite_jobs_on};

fn main() {
    let a = bench_args("table1");
    let (scale, obs, cfg, jobs) = (a.scale, a.obs, a.cfg, a.jobs);
    eprintln!("running suite at scale n={} iters={}...", scale.n, scale.iters);
    let reports = collect_suite_jobs_on(scale, cfg, jobs, &a.machines).unwrap_or_else(|e| {
        eprintln!("error: {e}");
        std::process::exit(1);
    });
    println!("Table 1. Benchmark program characteristics.");
    println!();
    print!("{}", format_table1(&reports));
    println!();
    println!(
        "paper shape check: fp programs need more HLI bytes per line than int programs \
         (paper: 27 vs 13)."
    );
    obs.emit();
}
