//! `perfbench` — the perf-trajectory harness: run the full pipeline
//! (front end → HLI encode/import → cached queries → parallel back end →
//! machine models) over a seeded generated corpus and freeze the result
//! as a `BENCH_*.json` checkpoint, or gate a fresh run against one.
//!
//! ```text
//! perfbench [options]
//!   --seeds A,B,...    corpus seeds, one full corpus per seed (default 1,2,3)
//!   --programs P       programs per seed            (default 12)
//!   --funcs F          functions per program        (default 28)
//!   --shape S          chain|balanced|wide          (default balanced)
//!   --alias PCT        aliasing density at call sites (default 30)
//!   --depth D          max loop-nest depth 1..3     (default 2)
//!   --jobs N           pool workers (0 = all CPUs)  (default 0)
//!   --machine M[,M..]  machine models to simulate    (default r4600,r10000;
//!                      first named model drives the scheduler; --compare
//!                      needs baseline and run to use the same list)
//!   --out FILE         write the report JSON to FILE (default: stdout)
//!   --compare FILE     additionally gate against a stored checkpoint
//!   --time-tol PCT     soft tolerance for times_ms   (default 75)
//!   --rss-tol PCT      soft tolerance for mem_kb     (default 50)
//!   plus the shared --stats/--trace-out/--provenance-out flags
//! ```
//!
//! The checked-in repo checkpoint is regenerated with:
//!
//! ```text
//! cargo run --release -p hli-harness --bin perfbench -- --out BENCH_6.json
//! ```
//!
//! Every generated program is validated against the AST interpreter (the
//! faultbench differential oracle): one miscompile fails the run with
//! exit 1 before any perf number is reported. `--compare` exits 1 on a
//! regression and 2 on a meaningless comparison (schema or corpus
//! mismatch). Counter sections are derived from scoped per-report
//! metrics, so they are byte-identical across `--jobs` settings; only the
//! soft time/rate/memory sections move run to run.

use hli_harness::cli::ObsArgs;
use hli_harness::perf::{
    build_report, compare, load_baseline, parse_shape, CorpusEcho, Tolerances,
};
use hli_harness::report::{extract_jobs, extract_machines};
use hli_harness::{run_benchmarks_jobs_on, BenchReport, ImportConfig};
use hli_machine::MachineBackend;
use hli_suite::corpus::{generate, CorpusSpec};

fn usage(msg: &str) -> ! {
    eprintln!("perfbench: {msg}");
    eprintln!(
        "usage: perfbench [--seeds A,B,..] [--programs P] [--funcs F] \
         [--shape chain|balanced|wide] [--alias PCT] [--depth D] [--jobs N] \
         [--machine NAME[,NAME...]] [--out FILE] [--compare FILE] \
         [--time-tol PCT] [--rss-tol PCT] \
         [--stats text|json] [--trace-out t.json] [--provenance-out p.jsonl]"
    );
    std::process::exit(2)
}

struct Args {
    seeds: Vec<u64>,
    spec: CorpusSpec,
    jobs: usize,
    machines: Vec<&'static dyn MachineBackend>,
    out: Option<String>,
    cmp: Option<String>,
    tol: Tolerances,
    obs: ObsArgs,
}

fn parse_args() -> Args {
    let mut raw: Vec<String> = std::env::args().skip(1).collect();
    let obs = ObsArgs::extract(&mut raw).unwrap_or_else(|e| usage(&e));
    let jobs = extract_jobs(&mut raw).unwrap_or_else(|e| usage(&e));
    let machines = extract_machines(&mut raw).unwrap_or_else(|e| usage(&e));
    let mut a = Args {
        seeds: vec![1, 2, 3],
        spec: CorpusSpec { seed: 0, programs: 12, funcs: 28, ..Default::default() },
        jobs,
        machines,
        out: None,
        cmp: None,
        tol: Tolerances::default(),
        obs,
    };
    let mut it = raw.into_iter();
    while let Some(flag) = it.next() {
        let mut val =
            |what: &str| it.next().unwrap_or_else(|| usage(&format!("{flag} needs {what}")));
        match flag.as_str() {
            "--seeds" => {
                a.seeds = val("a comma-separated list")
                    .split(',')
                    .map(|s| s.trim().parse().unwrap_or_else(|_| usage("--seeds: bad integer")))
                    .collect();
                if a.seeds.is_empty() {
                    usage("--seeds: need at least one seed");
                }
            }
            "--programs" => {
                a.spec.programs =
                    val("a count").parse().unwrap_or_else(|_| usage("--programs: bad count"))
            }
            "--funcs" => {
                a.spec.funcs =
                    val("a count").parse().unwrap_or_else(|_| usage("--funcs: bad count"))
            }
            "--shape" => a.spec.shape = parse_shape(&val("a shape")).unwrap_or_else(|e| usage(&e)),
            "--alias" => {
                a.spec.alias_pct =
                    val("a percent").parse().unwrap_or_else(|_| usage("--alias: bad percent"))
            }
            "--depth" => {
                a.spec.max_loop_depth =
                    val("a depth").parse().unwrap_or_else(|_| usage("--depth: bad depth"))
            }
            "--out" => a.out = Some(val("a file path")),
            "--compare" => a.cmp = Some(val("a file path")),
            "--time-tol" => {
                a.tol.time_pct =
                    val("a percent").parse().unwrap_or_else(|_| usage("--time-tol: bad percent"))
            }
            "--rss-tol" => {
                a.tol.rss_pct =
                    val("a percent").parse().unwrap_or_else(|_| usage("--rss-tol: bad percent"))
            }
            other => usage(&format!("unknown argument `{other}`")),
        }
    }
    a
}

/// Run the corpus for every seed, in seed order, and collect the reports.
/// Exits 1 on the first compile/verify error or differential miscompile.
fn run_corpus(args: &Args) -> Vec<BenchReport> {
    let mut reports = Vec::new();
    for &seed in &args.seeds {
        let spec = CorpusSpec { seed, ..args.spec };
        let benches = generate(&spec);
        for r in
            run_benchmarks_jobs_on(&benches, ImportConfig::default(), args.jobs, &args.machines)
        {
            match r {
                Ok(rep) => reports.push(rep),
                Err(e) => {
                    eprintln!("perfbench: pipeline error: {e}");
                    std::process::exit(1);
                }
            }
        }
    }
    let miscompiled: Vec<&str> =
        reports.iter().filter(|r| !r.validated).map(|r| r.name.as_str()).collect();
    if !miscompiled.is_empty() {
        eprintln!(
            "perfbench: {} generated program(s) MISCOMPILED (schedules disagree with the \
             interpreter): {}",
            miscompiled.len(),
            miscompiled.join(", ")
        );
        std::process::exit(1);
    }
    reports
}

fn main() {
    let args = parse_args();
    let total_funcs = args.seeds.len() * args.spec.programs * args.spec.funcs;
    eprintln!(
        "perfbench: {} seed(s) x {} program(s) x {} function(s) = {} functions, shape {:?}...",
        args.seeds.len(),
        args.spec.programs,
        args.spec.funcs,
        total_funcs,
        args.spec.shape
    );

    let (reports, wall) = hli_obs::timing::time(|| run_corpus(&args));
    eprintln!(
        "perfbench: {} program(s) validated against the interpreter in {}",
        reports.len(),
        hli_obs::timing::fmt_ms(wall)
    );

    let echo = CorpusEcho::new(&args.spec, &args.seeds);
    let snap = hli_obs::metrics::global().snapshot();
    let report = build_report(echo, &reports, wall, &snap);

    let json = report.to_json();
    match &args.out {
        Some(path) => {
            if let Err(e) = std::fs::write(path, &json) {
                eprintln!("perfbench: cannot write {path}: {e}");
                std::process::exit(2);
            }
            eprintln!("perfbench: wrote {path}");
        }
        None => print!("{json}"),
    }

    let mut exit = 0;
    if let Some(path) = &args.cmp {
        let prev = load_baseline(path).unwrap_or_else(|e| {
            eprintln!("perfbench: {e}");
            std::process::exit(2);
        });
        match compare(&prev, &report, &args.tol) {
            Err(e) => {
                eprintln!("perfbench: {e}");
                std::process::exit(2);
            }
            Ok(regs) if regs.is_empty() => {
                eprintln!(
                    "perfbench: no regression against {path} ({} counters exact, soft \
                     sections within tolerance)",
                    report.counters.len()
                );
            }
            Ok(regs) => {
                for r in &regs {
                    eprintln!("perfbench: REGRESSION: {r}");
                }
                eprintln!("perfbench: {} regression(s) against {path}", regs.len());
                exit = 1;
            }
        }
    }
    args.obs.emit();
    std::process::exit(exit);
}
