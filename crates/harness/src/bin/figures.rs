//! Regenerate the paper's worked figures:
//!
//! * **Figure 2** — the region/equivalence-class structure of the paper's
//!   example procedure, printed from an actual front-end run;
//! * **Figure 4** — CSE keeping subexpressions alive across a call using
//!   REF/MOD information;
//! * **Figure 6** — loop unrolling with the LCDD distance remap.

use hli_backend::cse::cse_function;
use hli_backend::ddg::DepMode;
use hli_backend::lower::{lower_program, lower_with_loops};
use hli_backend::mapping::map_function;
use hli_backend::unroll::unroll_function;
use hli_core::textdump::dump_entry;
use hli_frontend::generate_hli;
use hli_lang::compile_to_ast;

/// The paper's Figure 2 example, line numbers arranged to match.
const FIGURE2_SRC: &str = "int a[10];
int b[10];
int sum;




int foo()
{
    int i;
    int j;
    for (i = 0; i < 10; i++) {
        sum += a[i];
    }

    for (i = 0; i < 10; i++) {
        a[i] = b[0];

        for (j = 1; j < 10; j++) {
            b[j] = b[j] + b[j-1];
            sum = sum + a[i];
        }
    }
    return sum;
}

int main() { return foo(); }
";

fn figure2() {
    println!("==== Figure 2: regions and equivalent access classes ====\n");
    let (p, s) = compile_to_ast(FIGURE2_SRC).unwrap();
    let hli = generate_hli(&p, &s);
    let e = hli.entry("foo").unwrap();
    print!("{}", dump_entry(e));
    println!();
}

fn figure4() {
    println!("==== Figure 4: REF/MOD-selective CSE purge on calls ====\n");
    let src = "int g; int unrelated;\n\
        void side() { unrelated = unrelated + 1; }\n\
        int main() { int a; int b; a = g; side(); b = g; return a + b; }";
    let (p, s) = compile_to_ast(src).unwrap();
    let rtl = lower_program(&p, &s);
    let f = rtl.func("main").unwrap();
    let mach = hli_machine::backend_by_name("r4600").unwrap();
    let without = cse_function(f, None, DepMode::GccOnly, mach);
    let hli = generate_hli(&p, &s);
    let mut entry = hli.entry("main").unwrap().clone();
    let mut map = map_function(f, &entry);
    let with = cse_function(f, Some((&mut entry, &mut map)), DepMode::Combined, mach);
    println!("source: load g; call side() [mods only `unrelated`]; load g again");
    println!(
        "GCC alone : {} loads eliminated, {} entries purged at the call",
        without.loads_eliminated, without.purged_by_call
    );
    println!(
        "with HLI  : {} loads eliminated, {} entries kept across the call",
        with.loads_eliminated, with.kept_across_call
    );
    println!();
}

fn figure6() {
    println!("==== Figure 6: HLI update under loop unrolling ====\n");
    let src = "int a[16];\n\
        int main() {\n    int i;\n    for (i = 1; i < 16; i++)\n        a[i] = a[i-1] + 1;\n    return a[15];\n}";
    let (p, s) = compile_to_ast(src).unwrap();
    let hli = generate_hli(&p, &s);
    let entry0 = hli.entry("main").unwrap().clone();
    println!("-- before unrolling --");
    print!("{}", dump_entry(&entry0));
    let (rtl, loops) = lower_with_loops(&p, &s);
    let f = rtl.func("main").unwrap();
    let mut entry = entry0.clone();
    let mut map = map_function(f, &entry);
    let mach = hli_machine::backend_by_name("r4600").unwrap();
    let r = unroll_function(f, &loops["main"], 3, Some((&mut entry, &mut map)), mach);
    println!("\n-- after unrolling by 3 ({} loop(s) unrolled) --", r.unrolled);
    print!("{}", dump_entry(&entry));
    let errs = entry.verify();
    println!(
        "\nvalidation: {}",
        if errs.is_empty() {
            "ok".to_string()
        } else {
            errs.iter().map(|e| e.to_string()).collect::<Vec<_>>().join("; ")
        }
    );
}

fn main() {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    let obs = hli_harness::cli::ObsArgs::extract(&mut args).unwrap_or_else(|e| {
        eprintln!("figures: {e}");
        std::process::exit(1);
    });
    if let Some(extra) = args.first() {
        eprintln!("figures: unexpected argument `{extra}`");
        eprintln!(
            "usage: figures [--stats text|json] [--trace-out t.json] [--provenance-out p.jsonl]"
        );
        std::process::exit(1);
    }
    figure2();
    figure4();
    figure6();
    obs.emit();
}
