//! `obsdiff` — diff two `--stats json` snapshots, or a run against a
//! pinned baseline under `tests/baselines/`, and fail on regressions.
//!
//! ```text
//! obsdiff <baseline.json> <current.json> [options]
//!   --tol PCT          global tolerance, percent (default 0 = exact)
//!   --tol-key PFX=PCT  per-key tolerance for every counter whose name
//!                      starts with PFX (longest matching prefix wins)
//!   --allow-new        new keys in `current` are not regressions
//!   --gauges           also diff gauges (skipped by default: last-write
//!                      -wins under the parallel suite, so nondeterministic)
//! ```
//!
//! Either input may be a bare snapshot or a full binary transcript — the
//! JSON block is found by scanning for the first line that is exactly `{`,
//! so `table2 12 2 --stats json > current.txt` diffs directly. Histograms
//! are ignored (they hold wall-clock durations). After the per-key deltas
//! the per-pass decision-count groups are summed so a scheduling or CSE
//! decision drift is visible even when no single counter moved much.
//!
//! Exit codes: 0 no regression, 1 regression, 2 usage or parse error.

use hli_obs::json::{parse, Json};
use std::collections::BTreeMap;

/// Pass groups summed for the decision-count overview, mirroring the
/// provenance pass-name namespace plus the counters each pass maintains.
const GROUPS: &[&str] = &[
    "attr.",
    "backend.ddg.",
    "backend.sched.",
    "backend.cse.",
    "backend.licm.",
    "backend.unroll.",
    "backend.query_cache.",
    "backend.quarantine.",
    "hli.maintain.",
    "hli.query.",
    "hli.reader.",
    "provenance.",
];

const USAGE: &str = "usage: obsdiff <baseline.json> <current.json> \
    [--tol PCT] [--tol-key PFX=PCT] [--allow-new] [--gauges]";

fn fail(msg: &str) -> ! {
    eprintln!("obsdiff: {msg}");
    std::process::exit(2)
}

struct Opts {
    baseline: String,
    current: String,
    tol: f64,
    tol_keys: Vec<(String, f64)>,
    allow_new: bool,
    gauges: bool,
}

fn parse_opts(args: Vec<String>) -> Opts {
    let mut pos = Vec::new();
    let mut opts = Opts {
        baseline: String::new(),
        current: String::new(),
        tol: 0.0,
        tol_keys: Vec::new(),
        allow_new: false,
        gauges: false,
    };
    let mut it = args.into_iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--tol" => {
                opts.tol = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| fail("--tol needs a percentage"));
            }
            "--tol-key" => {
                let spec = it.next().unwrap_or_else(|| fail("--tol-key needs PFX=PCT"));
                let (k, v) =
                    spec.split_once('=').unwrap_or_else(|| fail("--tol-key needs PFX=PCT"));
                let pct: f64 = v.parse().unwrap_or_else(|_| fail("--tol-key needs PFX=PCT"));
                opts.tol_keys.push((k.to_string(), pct));
            }
            "--allow-new" => opts.allow_new = true,
            "--gauges" => opts.gauges = true,
            _ if a.starts_with("--") => fail(&format!("unknown flag `{a}`\n{USAGE}")),
            _ => pos.push(a),
        }
    }
    if pos.len() != 2 {
        fail(USAGE);
    }
    opts.current = pos.pop().unwrap();
    opts.baseline = pos.pop().unwrap();
    opts
}

impl Opts {
    /// Tolerance for one key: the longest `--tol-key` prefix that matches,
    /// else the global `--tol`.
    fn tol_for(&self, key: &str) -> f64 {
        self.tol_keys
            .iter()
            .filter(|(p, _)| key.starts_with(p.as_str()))
            .max_by_key(|(p, _)| p.len())
            .map(|(_, t)| *t)
            .unwrap_or(self.tol)
    }
}

/// Read a snapshot file, skipping any leading table/log output before the
/// JSON block (first line that is exactly `{`). A missing file or a
/// snapshot without a `schema_version` field produces a diagnostic naming
/// the file, the expected schema generation, and how to regenerate —
/// never a bare parse failure.
fn try_load(path: &str) -> Result<(Json, u64), String> {
    let text = std::fs::read_to_string(path).map_err(|e| {
        format!(
            "cannot read {path}: {e} — regenerate the snapshot with a current \
             binary's `--stats json` (expected schema v{})",
            hli_obs::SCHEMA_VERSION
        )
    })?;
    let start = text
        .lines()
        .position(|l| l.trim_end() == "{")
        .ok_or_else(|| format!("{path}: no JSON snapshot found (no `{{` line)"))?;
    let json: String = text.lines().skip(start).collect::<Vec<_>>().join("\n");
    let doc = parse(&json).map_err(|e| format!("{path}: {e}"))?;
    let ver = doc
        .get("schema_version")
        .and_then(|v| v.as_num())
        .map(|n| n as u64)
        .ok_or_else(|| {
            format!(
                "{path}: snapshot has no `schema_version` field (expected v{}) — \
                 it predates snapshot versioning; regenerate it with a current \
                 binary's `--stats json`",
                hli_obs::SCHEMA_VERSION
            )
        })?;
    Ok((doc, ver))
}

fn load(path: &str) -> (Json, u64) {
    try_load(path).unwrap_or_else(|e| fail(&e))
}

/// Pull one numeric section (`counters` or `gauges`) out of a snapshot.
fn numbers(doc: &Json, section: &str, path: &str) -> BTreeMap<String, f64> {
    match doc.get(section) {
        Some(Json::Obj(m)) => {
            m.iter().filter_map(|(k, v)| v.as_num().map(|n| (k.clone(), n))).collect()
        }
        _ => fail(&format!("{path}: snapshot has no `{section}` object")),
    }
}

fn group_sum(map: &BTreeMap<String, f64>, prefix: &str) -> f64 {
    map.iter().filter(|(k, _)| k.starts_with(prefix)).map(|(_, v)| v).sum()
}

fn main() {
    let opts = parse_opts(std::env::args().skip(1).collect());
    let (base_doc, bv) = load(&opts.baseline);
    let (cur_doc, cv) = load(&opts.current);

    if bv != cv {
        fail(&format!(
            "schema_version mismatch: {} is v{bv}, {} is v{cv} — regenerate the baseline",
            opts.baseline, opts.current
        ));
    }

    let mut base = numbers(&base_doc, "counters", &opts.baseline);
    let mut cur = numbers(&cur_doc, "counters", &opts.current);
    if opts.gauges {
        base.extend(numbers(&base_doc, "gauges", &opts.baseline));
        cur.extend(numbers(&cur_doc, "gauges", &opts.current));
    }

    let mut regressions = 0u32;
    let mut tolerated = 0u32;
    let mut new_keys = 0u32;

    let keys: std::collections::BTreeSet<&String> = base.keys().chain(cur.keys()).collect();
    for key in keys {
        match (base.get(key), cur.get(key)) {
            (Some(b), Some(c)) if b == c => {}
            (Some(b), Some(c)) => {
                let tol = opts.tol_for(key);
                let pct = if *b == 0.0 {
                    f64::INFINITY
                } else {
                    (c - b) / b.abs() * 100.0
                };
                let over = pct.abs() > tol;
                println!(
                    " {key:<44} {b} -> {c} ({pct:+.1}% vs tol {tol}%){}",
                    if over { "  REGRESSION" } else { "" }
                );
                if over {
                    regressions += 1;
                } else {
                    tolerated += 1;
                }
            }
            (Some(b), None) => {
                println!(" {key:<44} {b} -> (missing)  REGRESSION");
                regressions += 1;
            }
            (None, Some(c)) => {
                let over = !opts.allow_new;
                println!(" {key:<44} (new) -> {c}{}", if over { "  REGRESSION" } else { "" });
                new_keys += 1;
                if over {
                    regressions += 1;
                }
            }
            (None, None) => unreachable!(),
        }
    }

    println!("\nper-pass decision counts:");
    for prefix in GROUPS {
        let (b, c) = (group_sum(&base, prefix), group_sum(&cur, prefix));
        if b == 0.0 && c == 0.0 {
            continue;
        }
        println!(
            " {:<44} {b} -> {c}{}",
            format!("{prefix}*"),
            if b == c { "" } else { "  CHANGED" }
        );
    }

    println!(
        "\nobsdiff: {regressions} regression(s), {tolerated} tolerated change(s), \
         {new_keys} new key(s) ({} vs {})",
        opts.baseline, opts.current
    );
    std::process::exit(if regressions > 0 { 1 } else { 0 });
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn missing_snapshot_diagnostic_names_file_and_schema() {
        let missing = "/nonexistent/obsdiff_base.json";
        let err = try_load(missing).unwrap_err();
        assert!(err.contains(missing), "must name the file: {err}");
        assert!(
            err.contains(&format!("v{}", hli_obs::SCHEMA_VERSION)),
            "must name the expected schema: {err}"
        );
        assert!(err.contains("--stats json"), "must say how to regenerate: {err}");
    }

    #[test]
    fn schema_less_snapshot_diagnostic_is_clear() {
        let dir = std::env::temp_dir();
        let p = dir.join(format!("hli_obsdiff_noschema_{}.json", std::process::id()));
        std::fs::write(&p, "{\n  \"counters\": {\"a\": 1},\n  \"gauges\": {}\n}\n").unwrap();
        let err = try_load(p.to_str().unwrap()).unwrap_err();
        assert!(
            err.contains("no `schema_version`") && err.contains("regenerate"),
            "schema-less baseline needs a clear diagnostic: {err}"
        );
        let _ = std::fs::remove_file(&p);
    }

    #[test]
    fn versioned_snapshot_loads_with_leading_transcript() {
        let dir = std::env::temp_dir();
        let p = dir.join(format!("hli_obsdiff_ok_{}.json", std::process::id()));
        std::fs::write(
            &p,
            format!(
                "Table 2. rows...\n{{\n  \"schema_version\": {},\n  \"counters\": {{}}\n}}\n",
                hli_obs::SCHEMA_VERSION
            ),
        )
        .unwrap();
        let (doc, ver) = try_load(p.to_str().unwrap()).unwrap();
        assert_eq!(ver, hli_obs::SCHEMA_VERSION);
        assert!(matches!(doc.get("counters"), Some(Json::Obj(_))));
        let _ = std::fs::remove_file(&p);
    }
}
